(* The late lowering driver: optimized ozo_ir module -> virtual machine
   code plus a resource summary.

   Per function, the driver runs linear-scan register allocation against
   the machine's per-thread register budget (reusing the pipeline's
   cached liveness via the analysis manager), then destructs SSA into
   the VM form ([Vm]). When the budget forces spills it also rewrites
   the *IR*: every spilled virtual register gets an 8-byte local-memory
   slot ([Alloca] in the entry block), a store after its definition and
   a reload before every use. The virtual GPU executes this rewritten
   module, so spill traffic flows through the engine's local-memory
   cost path and the run stays bit-identical to the unlimited-register
   run — the differential property the backend test suite pins. With no
   spills the module is returned physically unchanged, so the default
   builds (budget 255) execute exactly the bytes they executed before
   this stage existed.

   The module-level summary mirrors what ptxas -v prints per kernel:
   registers (own pressure plus the worst surviving callee chain, the
   same ABI model as [Liveness.kernel_register_estimate]), static SMem
   footprint, spill loads/stores and the local frame size. *)

open Ozo_ir.Types
module Liveness = Ozo_ir.Liveness
module RSet = Liveness.RSet
module Analysis = Ozo_opt.Analysis
module Trace = Ozo_obs.Trace

type func_lowering = {
  fl_func : string;
  fl_ra : Regalloc.result;
  fl_vm : Vm.vfunc;
}

type summary = {
  lw_machine : Machine.t;
  lw_kernel : string;
  lw_module : modul;        (* the module the vGPU should execute *)
  lw_layout : Smem.layout;
  lw_program : Vm.program;
  lw_funcs : func_lowering list;
  lw_kernel_regs : int;     (* per-thread registers incl. callee chain *)
  lw_spilled_regs : int;    (* virtual registers demoted to the frame *)
  lw_spill_loads : int;     (* static reload instructions *)
  lw_spill_stores : int;    (* static spill-store instructions *)
  lw_frame_bytes : int;     (* largest per-function spill frame *)
  (* virtual→physical rename plans over the *executed* module
     ([lw_module]), one per spill-free function — what the engine's
     threaded-code path compiles against (see [Threaded]) *)
  lw_plan : (string * Ozo_vgpu.Engine.reg_plan) list;
}

(* ---------- spill-type inference --------------------------------------- *)

(* The IR carries no per-register type table, and for spill code only one
   bit matters: does the value live in the float or the integer register
   file? (The engine dispatches loads/stores on [is_float_typ]; integers,
   booleans and pointers all round-trip losslessly through an I64 slot.) *)
let is_float_binop = function
  | Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax -> true
  | Add | Sub | Mul | Sdiv | Srem | Udiv | Urem | And | Or | Xor | Shl
  | Ashr | Lshr | Smin | Smax -> false

let is_float_unop = function
  | Fneg | Fsqrt | Fexp | Flog | Fsin | Fcos | Fabs | Sitofp -> true
  | Not | Fptosi | Zext32to64 | Trunc64to32 -> false

let slot_typ_of_typ t = if t = F64 then F64 else I64

let spill_types (m : modul) (f : func) (spilled : RSet.t) : (reg, typ) Hashtbl.t
    =
  let tys = Hashtbl.create 16 in
  let note r t = if RSet.mem r spilled then Hashtbl.replace tys r t in
  List.iter (fun (r, t) -> note r (slot_typ_of_typ t)) f.f_params;
  List.iter
    (fun b ->
      List.iter (fun p -> note p.phi_reg (slot_typ_of_typ p.phi_typ)) b.b_phis;
      List.iter
        (fun i ->
          match i with
          | Binop (r, op, _, _) -> note r (if is_float_binop op then F64 else I64)
          | Unop (r, op, _) -> note r (if is_float_unop op then F64 else I64)
          | Icmp (r, _, _, _) | Fcmp (r, _, _, _) -> note r I64
          | Select (r, t, _, _, _) | Load (r, t, _) -> note r (slot_typ_of_typ t)
          | Ptradd (r, _, _) | Alloca (r, _) | Intrinsic (r, _) | Malloc (r, _) ->
            note r I64
          | Call (Some r, callee, _) ->
            let t =
              match find_func m callee with
              | Some cf -> Option.value ~default:I64 cf.f_ret
              | None -> I64
            in
            note r (slot_typ_of_typ t)
          | Call_indirect (Some r, rt, _, _) ->
            note r (slot_typ_of_typ (Option.value ~default:I64 rt))
          | Atomic (Some r, _, t, _, _) -> note r (slot_typ_of_typ t)
          | Call (None, _, _) | Call_indirect (None, _, _, _)
          | Atomic (None, _, _, _, _)
          | Store _ | Barrier _ | Assume _ | Trap _ | Free _ | Debug_print _ ->
            ())
        b.b_insts)
    f.f_blocks;
  tys

(* ---------- IR spill materialization ----------------------------------- *)

(* Rewrite [f] so every spilled register lives in an 8-byte local-memory
   slot: slot allocas in the entry block, a store right after each def
   (params: after the allocas; phi defs: at the head of their block), a
   fresh-register reload before each use. The result is verifier-clean
   SSA the engine executes directly — uses of a spilled value go through
   new registers whose live ranges span a single instruction, which is
   what keeps the allocator's budget honest at runtime. *)
let rewrite_func (m : modul) (ra : Regalloc.result) (f : func) : func =
  let spilled = List.fold_left (fun s r -> RSet.add r s) RSet.empty ra.ra_spilled in
  let tys = spill_types m f spilled in
  let typ_of r = Option.value ~default:I64 (Hashtbl.find_opt tys r) in
  let next = ref f.f_next_reg in
  let fresh () =
    let r = !next in
    incr next;
    r
  in
  (* one slot pointer per spilled register, in sorted (deterministic) order *)
  let slot_reg : (reg, reg) Hashtbl.t = Hashtbl.create 16 in
  let prologue_allocas =
    List.map
      (fun r ->
        let sr = fresh () in
        Hashtbl.replace slot_reg r sr;
        Alloca (sr, Regalloc.slot_bytes))
      ra.ra_spilled
  in
  let slot_of r = Reg (Hashtbl.find slot_reg r) in
  let store_of r = Store (typ_of r, Reg r, slot_of r) in
  let spilled_uses ops =
    RSet.elements
      (RSet.inter
         (List.fold_left
            (fun acc o ->
              List.fold_left (fun acc r -> RSet.add r acc) acc (operand_regs o))
            RSet.empty ops)
         spilled)
  in
  (* reload each spilled register [ops] reads into a fresh register;
     returns the loads plus the substitution *)
  let reloads ops =
    let subst = Hashtbl.create 4 in
    let loads =
      List.map
        (fun r ->
          let r' = fresh () in
          Hashtbl.replace subst r r';
          Load (r', typ_of r, slot_of r))
        (spilled_uses ops)
    in
    let map_op = function
      | Reg r as o -> (
        match Hashtbl.find_opt subst r with Some r' -> Reg r' | None -> o)
      | o -> o
    in
    (loads, map_op)
  in
  (* phi-edge reloads live in the predecessor block; collect the
     substitution per (pred, reg) while rewriting blocks, then rewrite
     every phi's incoming list in a second pass *)
  let edge_reload : (label * reg, reg) Hashtbl.t = Hashtbl.create 16 in
  let entry_label = (entry_block f).b_label in
  let param_stores =
    List.filter_map
      (fun (r, _) -> if RSet.mem r spilled then Some (store_of r) else None)
      f.f_params
  in
  let blocks =
    List.map
      (fun b ->
        let phi_def_stores =
          List.filter_map
            (fun p ->
              if RSet.mem p.phi_reg spilled then Some (store_of p.phi_reg)
              else None)
            b.b_phis
        in
        let insts =
          List.concat_map
            (fun i ->
              let loads, map_op = reloads (inst_uses i) in
              let i = map_inst_operands map_op i in
              let stores =
                match inst_def i with
                | Some r when RSet.mem r spilled -> [ store_of r ]
                | _ -> []
              in
              loads @ (i :: stores))
            b.b_insts
        in
        let term_loads, term_map = reloads (term_uses b.b_term) in
        let term = map_term_operands term_map b.b_term in
        (* reloads for spilled phi sources of the successors *)
        let succ_phi_loads =
          List.concat_map
            (fun succ ->
              match find_block f succ with
              | None -> []
              | Some sb ->
                List.filter_map
                  (fun p ->
                    match List.assoc_opt b.b_label p.phi_incoming with
                    | Some (Reg r)
                      when RSet.mem r spilled
                           && not (Hashtbl.mem edge_reload (b.b_label, r)) ->
                      let r' = fresh () in
                      Hashtbl.replace edge_reload (b.b_label, r) r';
                      Some (Load (r', typ_of r, slot_of r))
                    | _ -> None)
                  sb.b_phis)
            (term_succs b.b_term)
        in
        let prologue =
          if b.b_label = entry_label then prologue_allocas @ param_stores else []
        in
        { b with
          b_insts =
            prologue @ phi_def_stores @ insts @ term_loads @ succ_phi_loads;
          b_term = term })
      f.f_blocks
  in
  let blocks =
    List.map
      (fun b ->
        { b with
          b_phis =
            List.map
              (fun p ->
                { p with
                  phi_incoming =
                    List.map
                      (fun (pred, o) ->
                        match o with
                        | Reg r when RSet.mem r spilled -> (
                          match Hashtbl.find_opt edge_reload (pred, r) with
                          | Some r' -> (pred, Reg r')
                          | None -> (pred, o))
                        | _ -> (pred, o))
                      p.phi_incoming })
              b.b_phis })
      blocks
  in
  { f with f_blocks = blocks; f_next_reg = !next }

(* ---------- the driver -------------------------------------------------- *)

let run ?(machine = Machine.vgpu) ?am ?(trace = Trace.null) (m : modul)
    ~(kernel : string) : summary =
  let am = match am with Some a -> a | None -> Analysis.create () in
  Trace.with_span trace ~cat:"backend"
    ~args:
      [ ("machine", Trace.Str machine.Machine.mc_name);
        ("kernel", Trace.Str kernel) ]
    "backend:lower"
    (fun () ->
      let layout = Smem.of_module m in
      let budget = machine.Machine.mc_max_regs_per_thread in
      let allocated =
        List.map
          (fun f ->
            let lv = Analysis.liveness am f in
            (f, Regalloc.run ~budget lv f))
          m.m_funcs
      in
      (* spill-rewrite only the functions that need it; with no spills
         the module is returned physically unchanged *)
      let m' =
        List.fold_left
          (fun acc (f, ra) ->
            if ra.Regalloc.ra_spilled = [] then acc
            else update_func acc (rewrite_func m ra f))
          m allocated
      in
      if m' != m then
        Analysis.invalidate am ~preserved:Analysis.preserve_none ~before:m
          ~after:m';
      let funcs =
        List.map
          (fun (f, ra) ->
            { fl_func = f.f_name; fl_ra = ra; fl_vm = Vm.lower_func ~ra ~layout f })
          allocated
      in
      let regs_of = Hashtbl.create 16 in
      List.iter
        (fun fl -> Hashtbl.replace regs_of fl.fl_func fl.fl_vm.Vm.vf_regs_used)
        funcs;
      (* same call-chain ABI model as the liveness estimate, but over the
         allocator's actual register counts *)
      let kernel_regs =
        match find_func m kernel with
        | None -> 0
        | Some kf ->
          Liveness.kernel_register_estimate
            ~pressure_of:(fun f ->
              Option.value ~default:0 (Hashtbl.find_opt regs_of f.f_name))
            m kf
      in
      let sum get = List.fold_left (fun a fl -> a + get fl) 0 funcs in
      (* rename plans must describe the module the engine *executes*
         ([m']): spill-free functions are physically unchanged there, so
         their allocation is reused; spill-rewritten functions get a
         fresh allocation over the rewritten body (whose single-
         instruction reload ranges fit the budget by construction — if
         one still spills, it is simply left off the plan and the
         threaded path interprets it) *)
      let ra_by_name = Hashtbl.create 16 in
      List.iter
        (fun (f, ra) -> Hashtbl.replace ra_by_name f.f_name ra)
        allocated;
      let plan =
        List.filter_map
          (fun f' ->
            let ra =
              match Hashtbl.find_opt ra_by_name f'.f_name with
              | Some ra when ra.Regalloc.ra_spilled = [] -> ra
              | _ -> Regalloc.run ~budget (Analysis.liveness am f') f'
            in
            Option.map
              (fun p -> (f'.f_name, p))
              (Threaded.plan_of_alloc f' ra))
          m'.m_funcs
      in
      let summary =
        { lw_machine = machine;
          lw_kernel = kernel;
          lw_module = m';
          lw_layout = layout;
          lw_program =
            { Vm.pr_name = m.m_name; pr_funcs = List.map (fun fl -> fl.fl_vm) funcs;
              pr_layout = layout };
          lw_funcs = funcs;
          lw_kernel_regs = kernel_regs;
          lw_spilled_regs =
            sum (fun fl -> List.length fl.fl_ra.Regalloc.ra_spilled);
          lw_spill_loads = sum (fun fl -> fl.fl_vm.Vm.vf_spill_loads);
          lw_spill_stores = sum (fun fl -> fl.fl_vm.Vm.vf_spill_stores);
          lw_frame_bytes =
            List.fold_left
              (fun a fl -> max a fl.fl_ra.Regalloc.ra_frame_bytes)
              0 funcs;
          lw_plan = plan }
      in
      Trace.instant trace ~cat:"backend"
        ~args:
          [ ("kernel_regs", Trace.Int summary.lw_kernel_regs);
            ("smem_bytes", Trace.Int layout.Smem.ly_total);
            ("spilled", Trace.Int summary.lw_spilled_regs);
            ("spill_loads", Trace.Int summary.lw_spill_loads);
            ("spill_stores", Trace.Int summary.lw_spill_stores) ]
        "backend:resources";
      summary)

(* Occupancy of [kernel] under this lowering at a given team size. *)
let occupancy (s : summary) ~threads_per_team : Machine.occupancy =
  Machine.occupancy s.lw_machine ~threads_per_team
    ~regs_per_thread:s.lw_kernel_regs ~shared_per_team:s.lw_layout.Smem.ly_total
