(* Linear-scan register allocation (Poletto & Sarkar) over a finite
   per-thread register file.

   The allocator runs on the optimized SSA IR, one function at a time,
   driven by the liveness analysis the pipeline already computed (and
   cached in the analysis manager — callers pass the cached result in).
   It produces a location for every virtual register: a physical
   register index below the machine's [mc_max_regs_per_thread] budget,
   or a spill slot in the per-thread local-memory frame.

   Live intervals are built over a linearization of the function (blocks
   in layout order, one program point per instruction plus explicit
   block-entry and block-exit points). The entry point of a block
   extends not just the live-in set but also the phi destinations and
   *all* incoming phi sources: during the edge's parallel copy, sources
   and destinations overlap — the same boundary overlap
   [Liveness.max_pressure_with] counts. Intervals are conservative
   [min, max] ranges (holes are not exploited), which is exactly the
   classic linear-scan trade-off.

   Spill heuristic: at each conflict the interval with the furthest end
   point is spilled (it blocks the register file for the longest), which
   is the original linear-scan choice. Every spilled value gets its own
   8-byte slot in the frame; static spill cost (one store after the def,
   one reload per use) is reported so the harness can surface it the way
   ptxas reports spill stores/loads. *)

open Ozo_ir.Types
module Liveness = Ozo_ir.Liveness
module RSet = Liveness.RSet
module SMap = Ozo_ir.Cfg.SMap

type loc = Phys of int | Slot of int

type interval = {
  iv_reg : reg;
  iv_start : int;
  iv_end : int;
  mutable iv_loc : loc;
}

type result = {
  ra_func : string;
  ra_budget : int;                    (* registers available to the scan *)
  ra_loc : (reg, loc) Hashtbl.t;      (* every live vreg's final location *)
  ra_intervals : interval list;       (* sorted by start point *)
  ra_regs_used : int;                 (* distinct physical registers assigned *)
  ra_pressure : int;                  (* max simultaneously live intervals *)
  ra_spilled : reg list;              (* vregs demoted to the frame *)
  ra_frame_bytes : int;               (* local-memory spill frame *)
  ra_spill_stores : int;              (* static: one per spilled def *)
  ra_spill_loads : int;               (* static: one per spilled use site *)
}

let slot_bytes = 8

(* ---------- interval construction ------------------------------------- *)

let operand_regs_set ops =
  List.fold_left
    (fun acc o ->
      List.fold_left (fun acc r -> RSet.add r acc) acc (operand_regs o))
    RSet.empty ops

let build_intervals (lv : Liveness.t) (f : func) : interval list =
  let lo : (reg, int) Hashtbl.t = Hashtbl.create 64 in
  let hi : (reg, int) Hashtbl.t = Hashtbl.create 64 in
  let touch p r =
    (match Hashtbl.find_opt lo r with
    | Some v when v <= p -> ()
    | _ -> Hashtbl.replace lo r p);
    match Hashtbl.find_opt hi r with
    | Some v when v >= p -> ()
    | _ -> Hashtbl.replace hi r p
  in
  let touch_set p s = RSet.iter (fun r -> touch p r) s in
  let point = ref 0 in
  let next () =
    let p = !point in
    incr point;
    p
  in
  List.iter
    (fun b ->
      let live_in =
        Option.value ~default:RSet.empty (SMap.find_opt b.b_label lv.Liveness.live_in)
      in
      let live_out =
        Option.value ~default:RSet.empty (SMap.find_opt b.b_label lv.Liveness.live_out)
      in
      (* block entry: live-through values, phi destinations and every
         incoming phi source overlap here (the parallel-copy moment) *)
      let entry = next () in
      touch_set entry live_in;
      List.iter
        (fun p ->
          touch entry p.phi_reg;
          List.iter (fun (_, o) -> touch_set entry (operand_regs_set [ o ])) p.phi_incoming)
        b.b_phis;
      (* per-instruction points: the def is born at its point; uses must
         survive up to it. Live-through values are pinned by the entry
         and exit points, so per-point live sets are not needed here. *)
      List.iter
        (fun i ->
          let p = next () in
          (match inst_def i with Some r -> touch p r | None -> ());
          touch_set p (operand_regs_set (inst_uses i)))
        b.b_insts;
      (* block exit: terminator operands and everything live out *)
      let exit_ = next () in
      touch_set exit_ (operand_regs_set (term_uses b.b_term));
      touch_set exit_ live_out)
    f.f_blocks;
  let ivs =
    Hashtbl.fold
      (fun r s acc ->
        { iv_reg = r; iv_start = s; iv_end = Hashtbl.find hi r; iv_loc = Phys (-1) }
        :: acc)
      lo []
  in
  List.sort
    (fun a b ->
      match compare a.iv_start b.iv_start with 0 -> compare a.iv_reg b.iv_reg | c -> c)
    ivs

(* ---------- the scan --------------------------------------------------- *)

(* Count each spilled register's static spill code: one store per def
   (params and phis included) and one reload per instruction, terminator
   or phi-edge that reads it. *)
let static_spill_counts (f : func) (spilled : RSet.t) =
  let stores = ref 0 and loads = ref 0 in
  let count_uses ops =
    let used = RSet.inter (operand_regs_set ops) spilled in
    loads := !loads + RSet.cardinal used
  in
  List.iter (fun (r, _) -> if RSet.mem r spilled then incr stores) f.f_params;
  List.iter
    (fun b ->
      List.iter
        (fun p ->
          if RSet.mem p.phi_reg spilled then incr stores;
          List.iter (fun (_, o) -> count_uses [ o ]) p.phi_incoming)
        b.b_phis;
      List.iter
        (fun i ->
          (match inst_def i with
          | Some r when RSet.mem r spilled -> incr stores
          | _ -> ());
          count_uses (inst_uses i))
        b.b_insts;
      count_uses (term_uses b.b_term))
    f.f_blocks;
  (!stores, !loads)

let run ?(budget = 255) (lv : Liveness.t) (f : func) : result =
  let budget = max 1 budget in
  let intervals = build_intervals lv f in
  let loc_of : (reg, loc) Hashtbl.t = Hashtbl.create 64 in
  (* free physical registers, lowest first so reg indices stay dense *)
  let free = ref (List.init budget (fun i -> i)) in
  let take () =
    match !free with
    | r :: rest ->
      free := rest;
      r
    | [] -> assert false
  in
  let give r = free := List.sort compare (r :: !free) in
  (* active intervals sorted by increasing end point *)
  let active = ref [] in
  let insert_active iv =
    let rec go = function
      | [] -> [ iv ]
      | a :: rest as l -> if iv.iv_end <= a.iv_end then iv :: l else a :: go rest
    in
    active := go !active
  in
  let regs_used = ref 0 in
  let pressure = ref 0 in
  let slots = ref 0 in
  let spilled = ref RSet.empty in
  let assign_phys iv =
    let r = take () in
    iv.iv_loc <- Phys r;
    regs_used := max !regs_used (r + 1);
    insert_active iv
  in
  let assign_slot iv =
    let s = !slots in
    incr slots;
    iv.iv_loc <- Slot s;
    spilled := RSet.add iv.iv_reg !spilled
  in
  List.iter
    (fun iv ->
      (* expire intervals that ended before this one starts *)
      let rec expire = function
        | a :: rest when a.iv_end < iv.iv_start ->
          (match a.iv_loc with Phys r -> give r | Slot _ -> ());
          expire rest
        | l -> l
      in
      active := expire !active;
      pressure := max !pressure (List.length !active + 1);
      if List.length !active < budget then assign_phys iv
      else begin
        (* furthest-end heuristic: spill whichever of {the active set,
           the new interval} is live the longest *)
        match List.rev !active with
        | last :: _ when last.iv_end > iv.iv_end ->
          let phys = match last.iv_loc with Phys r -> r | Slot _ -> assert false in
          assign_slot last;
          active := List.filter (fun a -> a != last) !active;
          give phys;
          assign_phys iv
        | _ -> assign_slot iv
      end)
    intervals;
  List.iter (fun iv -> Hashtbl.replace loc_of iv.iv_reg iv.iv_loc) intervals;
  let stores, loads = static_spill_counts f !spilled in
  { ra_func = f.f_name;
    ra_budget = budget;
    ra_loc = loc_of;
    ra_intervals = intervals;
    ra_regs_used = !regs_used;
    ra_pressure = !pressure;
    ra_spilled = RSet.elements !spilled;
    ra_frame_bytes = !slots * slot_bytes;
    ra_spill_stores = stores;
    ra_spill_loads = loads }

let loc r t =
  match Hashtbl.find_opt t.ra_loc r with
  | Some l -> l
  | None -> Phys 0 (* dead register: never live, any location works *)
