(* The virtual machine form: what an ozo_ir function looks like after the
   late lowering stage has run.

   This is the reproduction's stand-in for SASS/PTX-after-ptxas: SSA is
   destructed (phis become per-edge parallel copies, sequentialized with
   a scratch register when the copy graph has cycles), every virtual
   register is replaced by its allocated location (physical register or
   spill slot), spill code is explicit ([V_reload]/[V_spill]), and
   shared-memory symbols are resolved to their byte offsets in the
   static SMem layout. Blocks are laid out in reverse post-order — the
   backend's block schedule.

   The VM form is a *resource model*, not a second interpreter: the
   virtual GPU keeps executing IR (spill-rewritten IR when the register
   budget forces spills, see [Lower]), and the VM form is where register
   counts, frame sizes and static spill instructions are read off — the
   quantities ptxas/Nsight report and the paper's resource tables use. *)

open Ozo_ir.Types

type vopd =
  | Vloc of Regalloc.loc
  | Vint of int64
  | Vfloat of float
  | Vglobal of string          (* global/constant-space symbol *)
  | Vshared of string * int    (* shared symbol, resolved SMem offset *)
  | Vfunc of string
  | Vundef

type vinst =
  | V_op of { vd : Regalloc.loc option; vop : string; vsrcs : vopd list }
  | V_copy of Regalloc.loc * vopd            (* phi-lowered move *)
  | V_reload of { vto : int; vslot : int }   (* frame slot -> scratch reg *)
  | V_spill of { vslot : int; vfrom : int }  (* scratch reg -> frame slot *)

type vterm = {
  vt_op : string;
  vt_srcs : vopd list;
  (* per-edge parallel copies, already sequentialized *)
  vt_edges : (label * vinst list) list;
}

type vblock = {
  vb_label : label;
  vb_insts : vinst list;
  vb_term : vterm;
}

type vfunc = {
  vf_name : string;
  vf_blocks : vblock list; (* RPO layout order *)
  vf_regs_used : int;      (* physical registers, scratches included *)
  vf_frame_bytes : int;    (* per-thread local spill frame *)
  vf_spill_loads : int;    (* static reload count *)
  vf_spill_stores : int;   (* static spill-store count *)
}

type program = {
  pr_name : string;
  pr_funcs : vfunc list;
  pr_layout : Smem.layout;
}

(* ---------- mnemonics -------------------------------------------------- *)

let low = String.lowercase_ascii

let typ_suffix = function
  | I1 -> "i1"
  | I32 -> "i32"
  | I64 -> "i64"
  | F64 -> "f64"
  | Ptr _ -> "ptr"

let inst_mnemonic = function
  | Binop (_, op, _, _) -> low (show_binop op)
  | Unop (_, op, _) -> low (show_unop op)
  | Icmp (_, op, _, _) -> "setp." ^ low (show_icmp op)
  | Fcmp (_, op, _, _) -> "setp." ^ low (show_fcmp op)
  | Select (_, ty, _, _, _) -> "sel." ^ typ_suffix ty
  | Load (_, ty, _) -> "ld." ^ typ_suffix ty
  | Store (ty, _, _) -> "st." ^ typ_suffix ty
  | Ptradd _ -> "ptradd"
  | Alloca (_, n) -> Fmt.str "frame.alloc.%d" n
  | Call (_, callee, _) -> "call " ^ callee
  | Call_indirect _ -> "call.ind"
  | Intrinsic (_, i) -> "mov." ^ low (show_intrinsic i)
  | Barrier { aligned } -> if aligned then "bar.sync.aligned" else "bar.sync"
  | Atomic (_, op, ty, _, _) -> low (show_atomic_op op) ^ "." ^ typ_suffix ty
  | Assume _ -> "assume"
  | Trap _ -> "trap"
  | Malloc _ -> "malloc"
  | Free _ -> "free"
  | Debug_print _ -> "printf"

let term_mnemonic = function
  | Ret _ -> "ret"
  | Br _ -> "bra"
  | Cond_br _ -> "bra.cond"
  | Switch _ -> "brx"
  | Unreachable -> "trap.unreachable"

(* ---------- lowering --------------------------------------------------- *)

(* Scratch registers above the allocated file: up to three reload
   scratches (an instruction reads at most three register operands; the
   define-then-spill scratch shares slot 0) and one parallel-copy
   cycle-breaking temporary. A real backend reserves these before
   scheduling spill code the same way. *)
let reload_scratches = 3

type emitter = {
  em_ra : Regalloc.result;
  em_layout : Smem.layout;
  mutable em_scratch_hi : int; (* scratches actually used *)
  mutable em_loads : int;
  mutable em_stores : int;
}

let scratch em k =
  em.em_scratch_hi <- max em.em_scratch_hi (k + 1);
  em.em_ra.Regalloc.ra_regs_used + k

(* Map an operand to its VM form without touching spill state — used for
   phi sources, where slot-resident values are read by the copy itself. *)
let resolve_operand em (o : operand) : vopd =
  match o with
  | Reg r -> Vloc (Regalloc.loc r em.em_ra)
  | Imm_int (v, _) -> Vint v
  | Imm_float v -> Vfloat v
  | Global_addr g -> (
    match
      List.find_opt (fun s -> s.Smem.sl_name = g) em.em_layout.Smem.ly_slots
    with
    | Some s -> Vshared (g, s.Smem.sl_offset)
    | None -> Vglobal g)
  | Func_addr fn -> Vfunc fn
  | Undef _ -> Vundef

(* Map operands for an instruction: slot-resident registers are reloaded
   into scratch registers first (one scratch per source position). *)
let lower_operands em (ops : operand list) : vopd list * vinst list =
  let reloads = ref [] in
  let outs =
    List.mapi
      (fun k o ->
        match resolve_operand em o with
        | Vloc (Regalloc.Slot s) ->
          let r = scratch em (min k (reload_scratches - 1)) in
          em.em_loads <- em.em_loads + 1;
          reloads := V_reload { vto = r; vslot = s } :: !reloads;
          Vloc (Regalloc.Phys r)
        | v -> v)
      ops
  in
  (outs, List.rev !reloads)

let lower_inst em (i : inst) : vinst list =
  let srcs, reloads = lower_operands em (inst_uses i) in
  let vd, stores =
    match inst_def i with
    | None -> (None, [])
    | Some r -> (
      match Regalloc.loc r em.em_ra with
      | Regalloc.Phys _ as l -> (Some l, [])
      | Regalloc.Slot s ->
        (* define into scratch 0, then store to the frame *)
        let sc = scratch em 0 in
        em.em_stores <- em.em_stores + 1;
        (Some (Regalloc.Phys sc), [ V_spill { vslot = s; vfrom = sc } ]))
  in
  reloads @ (V_op { vd; vop = inst_mnemonic i; vsrcs = srcs } :: stores)

let loc_is_slot = function Regalloc.Slot _ -> true | Regalloc.Phys _ -> false

let reads_loc l = function Vloc l' -> l' = l | _ -> false

(* Sequentialize one edge's parallel copy. Hazard: a pending copy reads
   a location another pending copy writes. Emit hazard-free copies
   first; on a cycle, save the blocking destination into the
   cycle-breaking temporary ([temp], called once per cycle broken) and
   redirect its readers there.

   This is the pure core — no emitter state — so the property suite can
   drive it directly: for any copy set, executing the returned sequence
   one move at a time must leave every destination holding the value its
   source held *before* the copy (parallel semantics). *)
let sequentialize_copies ~(temp : unit -> Regalloc.loc)
    (copies : (Regalloc.loc * vopd) list) : (Regalloc.loc * vopd) list =
  let rec go acc pending =
    match pending with
    | [] -> List.rev acc
    | _ -> (
      let free, blocked =
        List.partition
          (fun (d, _) ->
            not (List.exists (fun (_, s) -> reads_loc d s) pending))
          pending
      in
      match free with
      | _ :: _ -> go (List.rev_append free acc) blocked
      | [] ->
        (* pure cycle: every pending destination is read by someone *)
        let d0, s0 = List.hd blocked in
        let t = temp () in
        let rest =
          List.map
            (fun (d, s) -> (d, if reads_loc d0 s then Vloc t else s))
            (List.tl blocked)
        in
        go ((t, Vloc d0) :: acc) ((d0, s0) :: rest))
  in
  go []
    (List.filter
       (fun (d, s) -> match s with Vloc l -> l <> d | _ -> true)
       copies)

(* Emitter wrapper: copies into spill slots count as spill stores,
   copies out of slots as reloads; cycles break through the reserved
   scratch above the reload scratches. *)
let sequentialize em (copies : (Regalloc.loc * vopd) list) : vinst list =
  List.map
    (fun (d, s) ->
      if loc_is_slot d then em.em_stores <- em.em_stores + 1;
      (match s with
      | Vloc l when loc_is_slot l -> em.em_loads <- em.em_loads + 1
      | _ -> ());
      V_copy (d, s))
    (sequentialize_copies
       ~temp:(fun () -> Regalloc.Phys (scratch em reload_scratches))
       copies)

let lower_block em (by_label : (label, block) Hashtbl.t) (b : block) : vblock =
  let insts = List.concat_map (lower_inst em) b.b_insts in
  let srcs, term_reloads = lower_operands em (term_uses b.b_term) in
  let edges =
    List.map
      (fun succ ->
        let copies =
          match Hashtbl.find_opt by_label succ with
          | None -> []
          | Some sb ->
            List.filter_map
              (fun p ->
                match List.assoc_opt b.b_label p.phi_incoming with
                | None -> None
                | Some o ->
                  Some (Regalloc.loc p.phi_reg em.em_ra, resolve_operand em o))
              sb.b_phis
        in
        (succ, sequentialize em copies))
      (term_succs b.b_term)
  in
  { vb_label = b.b_label;
    vb_insts = insts @ term_reloads;
    vb_term =
      { vt_op = term_mnemonic b.b_term; vt_srcs = srcs; vt_edges = edges } }

let lower_func ~(ra : Regalloc.result) ~(layout : Smem.layout) (f : func) :
    vfunc =
  let em =
    { em_ra = ra; em_layout = layout; em_scratch_hi = 0; em_loads = 0;
      em_stores = 0 }
  in
  let by_label = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace by_label b.b_label b) f.f_blocks;
  (* the CFG's rpo lists reachable blocks first, then unreachable ones
     in source order — a total layout over the function *)
  let cfg = Ozo_ir.Cfg.of_func f in
  let ordered = List.filter_map (Hashtbl.find_opt by_label) cfg.Ozo_ir.Cfg.rpo in
  let blocks = List.map (lower_block em by_label) ordered in
  { vf_name = f.f_name;
    vf_blocks = blocks;
    vf_regs_used = ra.Regalloc.ra_regs_used + em.em_scratch_hi;
    vf_frame_bytes = ra.Regalloc.ra_frame_bytes;
    vf_spill_loads = em.em_loads;
    vf_spill_stores = em.em_stores }

(* ---------- stream statistics ------------------------------------------ *)

(* Coarse instruction mix of a lowered function — what `ozo vm` tabulates
   alongside the resource numbers. *)
type vstats = {
  vs_ops : int;     (* real operations (V_op) *)
  vs_moves : int;   (* phi-lowered parallel-copy moves *)
  vs_reloads : int; (* frame reloads *)
  vs_spills : int;  (* frame spill stores *)
  vs_blocks : int;
  vs_edges : int;   (* CFG edges carrying a nonempty copy sequence *)
}

let func_stats (vf : vfunc) : vstats =
  let ops = ref 0 and moves = ref 0 and reloads = ref 0 and spills = ref 0 in
  let edges = ref 0 in
  let count = function
    | V_op _ -> incr ops
    | V_copy _ -> incr moves
    | V_reload _ -> incr reloads
    | V_spill _ -> incr spills
  in
  List.iter
    (fun vb ->
      List.iter count vb.vb_insts;
      List.iter
        (fun (_, copies) ->
          if copies <> [] then incr edges;
          List.iter count copies)
        vb.vb_term.vt_edges)
    vf.vf_blocks;
  { vs_ops = !ops; vs_moves = !moves; vs_reloads = !reloads;
    vs_spills = !spills; vs_blocks = List.length vf.vf_blocks;
    vs_edges = !edges }

(* ---------- printing --------------------------------------------------- *)

let pp_loc ppf = function
  | Regalloc.Phys r -> Fmt.pf ppf "r%d" r
  | Regalloc.Slot s -> Fmt.pf ppf "[frame+%d]" (s * Regalloc.slot_bytes)

let pp_opd ppf = function
  | Vloc l -> pp_loc ppf l
  | Vint v -> Fmt.pf ppf "%Ld" v
  | Vfloat v -> Fmt.pf ppf "%g" v
  | Vglobal g -> Fmt.pf ppf "@%s" g
  | Vshared (g, off) -> Fmt.pf ppf "smem+%d(@%s)" off g
  | Vfunc fn -> Fmt.pf ppf "&%s" fn
  | Vundef -> Fmt.pf ppf "undef"

let pp_vinst ppf = function
  | V_op { vd; vop; vsrcs } -> (
    match vd with
    | Some d ->
      Fmt.pf ppf "%a = %s %a" pp_loc d vop
        (Fmt.list ~sep:Fmt.comma pp_opd) vsrcs
    | None -> Fmt.pf ppf "%s %a" vop (Fmt.list ~sep:Fmt.comma pp_opd) vsrcs)
  | V_copy (d, s) -> Fmt.pf ppf "%a = mov %a" pp_loc d pp_opd s
  | V_reload { vto; vslot } ->
    Fmt.pf ppf "r%d = ld.frame [frame+%d]" vto (vslot * Regalloc.slot_bytes)
  | V_spill { vslot; vfrom } ->
    Fmt.pf ppf "st.frame [frame+%d], r%d" (vslot * Regalloc.slot_bytes) vfrom

let pp_vfunc ppf vf =
  Fmt.pf ppf "@[<v>%s: regs=%d frame=%dB spill(ld/st)=%d/%d@," vf.vf_name
    vf.vf_regs_used vf.vf_frame_bytes vf.vf_spill_loads vf.vf_spill_stores;
  List.iter
    (fun vb ->
      Fmt.pf ppf "%s:@," vb.vb_label;
      List.iter (fun i -> Fmt.pf ppf "  %a@," pp_vinst i) vb.vb_insts;
      Fmt.pf ppf "  %s %a@," vb.vb_term.vt_op
        (Fmt.list ~sep:Fmt.comma pp_opd) vb.vb_term.vt_srcs;
      List.iter
        (fun (succ, copies) ->
          if copies <> [] then begin
            Fmt.pf ppf "  -> %s:@," succ;
            List.iter (fun c -> Fmt.pf ppf "     %a@," pp_vinst c) copies
          end)
        vb.vb_term.vt_edges)
    vf.vf_blocks;
  Fmt.pf ppf "@]"
