(* Machine descriptors and the occupancy calculator.

   A [t] captures the per-SM resource limits the late lowering stage
   allocates against: the register file and its allocation granularity,
   the shared-memory scratchpad and its granularity, and the residency
   ceilings (threads, warps, thread blocks). Two descriptors are
   provided:

   - [vgpu] mirrors [Ozo_vgpu.Cost.default] exactly (it is *derived*
     from it, so the two cannot drift): granularity 1, no warp rounding.
     Under [vgpu] the occupancy numbers below are bit-identical to the
     cost model's original [Cost.occupancy], which keeps every default
     simulation unchanged while routing the calculation through the
     backend.

   - [a100] models an NVIDIA A100 (GA100) SM: 64K 32-bit registers
     allocated per warp in units of 256, at most 255 registers per
     thread before the compiler must spill, 164 KB of configurable
     shared memory, 2048 resident threads / 64 warps / 32 blocks. These
     are the limits the paper's Nsight-reported register and SMem
     figures are judged against.

   The portability matrix (PR 10) adds three more, following the
   cross-architecture assessments in the portability literature (Davis
   et al. on V100, Fridman et al. on state-of-the-art accelerators):

   - [v100] (GV100-ish): 80 SMs, 64K registers in units of 256, 96 KB
     shared memory in units of 256.
   - [mi250] (CDNA2-ish): **64-wide wavefronts** — the descriptor that
     exercises reconvergence, coalescing buckets and uniform-strand
     scalarization at a different granularity, not just the occupancy
     arithmetic — 110 CUs, a 128K VGPR file allocated per wavefront in
     units of 512, 64 KB LDS in units of 512, 16 workgroups per CU.
   - [h100] (GH100-ish): 132 SMs, 64K registers, 228 KB shared memory
     in units of 1024.

   [max_regs_per_thread] doubles as the register allocator's budget:
   virtual registers beyond it spill to local memory (Regalloc). *)

type t = {
  mc_name : string;
  mc_warp_size : int;
  mc_n_sm : int;
  mc_max_threads_per_sm : int;
  mc_max_warps_per_sm : int;
  mc_max_teams_per_sm : int;
  mc_regfile_per_sm : int;       (* registers *)
  mc_max_regs_per_thread : int;  (* allocator budget; spill beyond *)
  mc_reg_alloc_unit : int;       (* per-warp register allocation rounding *)
  mc_shared_per_sm : int;        (* bytes *)
  mc_shared_alloc_unit : int;    (* per-block SMem allocation rounding *)
}

(* Derive the descriptor the virtual GPU itself implements. Granularity
   1 everywhere: the cost model allocates registers per thread and SMem
   per byte, so the calculator below reduces to exactly its formulas. *)
let of_cost_params ?(name = "vgpu") (p : Ozo_vgpu.Cost.params) : t =
  { mc_name = name;
    mc_warp_size = p.Ozo_vgpu.Cost.warp_size;
    mc_n_sm = p.Ozo_vgpu.Cost.n_sm;
    mc_max_threads_per_sm = p.Ozo_vgpu.Cost.max_threads_per_sm;
    mc_max_warps_per_sm = p.Ozo_vgpu.Cost.max_threads_per_sm / p.Ozo_vgpu.Cost.warp_size;
    mc_max_teams_per_sm = p.Ozo_vgpu.Cost.max_teams_per_sm;
    mc_regfile_per_sm = p.Ozo_vgpu.Cost.regfile_per_sm;
    mc_max_regs_per_thread = 255;
    mc_reg_alloc_unit = 1;
    mc_shared_per_sm = p.Ozo_vgpu.Cost.shared_per_sm;
    mc_shared_alloc_unit = 1 }

let vgpu = of_cost_params Ozo_vgpu.Cost.default

let a100 =
  { mc_name = "a100";
    mc_warp_size = 32;
    mc_n_sm = 108;
    mc_max_threads_per_sm = 2048;
    mc_max_warps_per_sm = 64;
    mc_max_teams_per_sm = 32;
    mc_regfile_per_sm = 65536;
    mc_max_regs_per_thread = 255;
    mc_reg_alloc_unit = 256;
    mc_shared_per_sm = 164 * 1024;
    mc_shared_alloc_unit = 1024 }

let v100 =
  { mc_name = "v100";
    mc_warp_size = 32;
    mc_n_sm = 80;
    mc_max_threads_per_sm = 2048;
    mc_max_warps_per_sm = 64;
    mc_max_teams_per_sm = 32;
    mc_regfile_per_sm = 65536;
    mc_max_regs_per_thread = 255;
    mc_reg_alloc_unit = 256;
    mc_shared_per_sm = 96 * 1024;
    mc_shared_alloc_unit = 256 }

let mi250 =
  { mc_name = "mi250";
    mc_warp_size = 64;
    mc_n_sm = 110;
    mc_max_threads_per_sm = 2048;
    mc_max_warps_per_sm = 32;   (* 64-wide wavefronts: 2048 / 64 *)
    mc_max_teams_per_sm = 16;
    mc_regfile_per_sm = 131072; (* CDNA2 doubles the VGPR file *)
    mc_max_regs_per_thread = 255;
    mc_reg_alloc_unit = 512;    (* 8 VGPRs x 64 lanes per allocation step *)
    mc_shared_per_sm = 64 * 1024;
    mc_shared_alloc_unit = 512 }

let h100 =
  { mc_name = "h100";
    mc_warp_size = 32;
    mc_n_sm = 132;
    mc_max_threads_per_sm = 2048;
    mc_max_warps_per_sm = 64;
    mc_max_teams_per_sm = 32;
    mc_regfile_per_sm = 65536;
    mc_max_regs_per_thread = 255;
    mc_reg_alloc_unit = 256;
    mc_shared_per_sm = 228 * 1024;
    mc_shared_alloc_unit = 1024 }

(* every descriptor, in the fixed order reports and [ozo matrix] use *)
let all = [ vgpu; a100; v100; mi250; h100 ]

let names = List.map (fun m -> m.mc_name) all

let find name = List.find_opt (fun m -> String.equal m.mc_name name) all

(* Engine/cost parameters of a machine: the structural fields (wavefront
   width, SM count, residency ceilings, register file, scratchpad) come
   from the descriptor; the per-instruction issue costs stay those of
   [base] so cross-machine comparisons isolate *architecture*, not a
   retuned instruction table. For [vgpu] this is the identity on
   [Cost.default] (the descriptor is derived from it), which keeps every
   default simulation bit-identical. *)
let cost_params ?(base = Ozo_vgpu.Cost.default) (m : t) : Ozo_vgpu.Cost.params =
  { base with
    Ozo_vgpu.Cost.warp_size = m.mc_warp_size;
    n_sm = m.mc_n_sm;
    max_threads_per_sm = m.mc_max_threads_per_sm;
    max_teams_per_sm = m.mc_max_teams_per_sm;
    regfile_per_sm = m.mc_regfile_per_sm;
    shared_per_sm = m.mc_shared_per_sm }

(* Override the spill budget (CLI --max-regs, differential spill tests). *)
let with_reg_budget budget m = { m with mc_max_regs_per_thread = max 1 budget }

(* ---------- occupancy ------------------------------------------------- *)

type limiter = Threads | Warps | Registers | Smem | Teams

let limiter_name = function
  | Threads -> "threads"
  | Warps -> "warps"
  | Registers -> "regs"
  | Smem -> "smem"
  | Teams -> "teams"

type occupancy = {
  occ_teams_per_sm : int;    (* resident thread blocks per SM *)
  occ_warps_per_sm : int;    (* resident warps per SM *)
  occ_fraction : float;      (* resident threads / max threads *)
  occ_limiter : limiter;     (* the resource that ran out first *)
}

let round_up v unit_ = if unit_ <= 1 then v else (v + unit_ - 1) / unit_ * unit_

(* Registers consumed by one team: per-thread exact when the allocation
   unit is 1 (the vGPU), per-warp rounded otherwise (real hardware
   allocates regs_per_thread x warp_size rounded up to the unit, for
   every resident warp, whether or not its last warp is full). *)
let team_registers m ~threads_per_team ~regs_per_thread =
  if m.mc_reg_alloc_unit <= 1 then regs_per_thread * threads_per_team
  else
    let warps = (threads_per_team + m.mc_warp_size - 1) / m.mc_warp_size in
    warps * round_up (regs_per_thread * m.mc_warp_size) m.mc_reg_alloc_unit

let team_smem m ~shared_per_team = round_up shared_per_team m.mc_shared_alloc_unit

(* Resident teams per SM: the binding constraint is whichever of
   threads, warps, registers, shared memory or the block ceiling runs
   out first. Mirrors the CUDA occupancy calculator; under [vgpu]
   (granularity 1, warp bound implied by the thread bound for
   warp-multiple team sizes) the result equals
   [Ozo_vgpu.Cost.teams_per_sm]. *)
let occupancy m ~threads_per_team ~regs_per_thread ~shared_per_team : occupancy =
  let warps_per_team = (threads_per_team + m.mc_warp_size - 1) / m.mc_warp_size in
  let by_threads = m.mc_max_threads_per_sm / max 1 threads_per_team in
  let by_warps = m.mc_max_warps_per_sm / max 1 warps_per_team in
  let by_regs =
    m.mc_regfile_per_sm
    / max 1 (team_registers m ~threads_per_team ~regs_per_thread)
  in
  let by_smem =
    let s = team_smem m ~shared_per_team in
    if s <= 0 then max_int (* no SMem use: not a constraint *)
    else m.mc_shared_per_sm / s
  in
  let bounds =
    [ (by_threads, Threads); (by_warps, Warps); (by_regs, Registers);
      (by_smem, Smem); (m.mc_max_teams_per_sm, Teams) ]
  in
  let binding, limiter =
    List.fold_left
      (fun (bv, bl) (v, l) -> if v < bv then (v, l) else (bv, bl))
      (List.hd bounds) (List.tl bounds)
  in
  let teams = max 1 binding in
  { occ_teams_per_sm = teams;
    occ_warps_per_sm = teams * warps_per_team;
    occ_fraction =
      float_of_int (teams * threads_per_team)
      /. float_of_int m.mc_max_threads_per_sm;
    occ_limiter = limiter }

(* Bridge into the cost model's occupancy record, which [kernel_time]
   consumes for wave counting and latency hiding. *)
let to_cost_occupancy (o : occupancy) : Ozo_vgpu.Cost.occupancy =
  { Ozo_vgpu.Cost.o_teams_per_sm = o.occ_teams_per_sm;
    o_occupancy = o.occ_fraction }

let pp_occupancy ppf o =
  Fmt.pf ppf "%d teams/SM, %d warps/SM, %.2f occupancy (limited by %s)"
    o.occ_teams_per_sm o.occ_warps_per_sm o.occ_fraction
    (limiter_name o.occ_limiter)
