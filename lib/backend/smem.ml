(* Static shared-memory layout.

   Assigns every [Shared] global of a module a byte offset in the
   per-team scratchpad, 8-byte aligned in declaration order — the same
   packing [Ozo_vgpu.Engine.assign_addresses] uses at launch, so the
   layout computed at compile time is the layout the device actually
   runs with (asserted by the backend test suite). Each slot is tagged
   with its provenance, mirroring [Ozo_runtime.Layout]'s naming scheme:
   runtime state (`__omp_*` / `__old_omp_*` — ICVs, the SMem sharing
   stack, worksharing descriptors) versus globalized user buffers. The
   paper's Fig. 11 SMem reductions are precisely the runtime-state slots
   the co-designed optimizations fold away, so the split is what the
   `ozo regs` table reports. *)

open Ozo_ir.Types

type origin =
  | Runtime_state     (* __omp_* / __old_omp_*: ICVs, stacks, descriptors *)
  | Globalized        (* everything else: (globalized) user data *)

let origin_name = function
  | Runtime_state -> "runtime"
  | Globalized -> "globalized"

type slot = {
  sl_name : string;
  sl_origin : origin;
  sl_offset : int;   (* bytes from the team's SMem base *)
  sl_size : int;     (* bytes *)
}

type layout = {
  ly_slots : slot list; (* in declaration (= placement) order *)
  ly_raw : int;         (* sum of sizes, no alignment (Engine.shared_bytes) *)
  ly_total : int;       (* end offset after aligned packing *)
  ly_runtime : int;     (* bytes attributed to runtime state *)
  ly_globalized : int;  (* bytes attributed to globalized buffers *)
}

let align8 v = (v + 7) land lnot 7

let classify name =
  let starts p = String.length name >= String.length p
                 && String.sub name 0 (String.length p) = p in
  if starts "__omp_" || starts "__old_omp_" then Runtime_state else Globalized

let of_module (m : modul) : layout =
  let slots = ref [] in
  let off = ref 0 in
  let raw = ref 0 in
  let rt = ref 0 and gl = ref 0 in
  List.iter
    (fun g ->
      match g.g_space with
      | Shared ->
        let aligned = align8 !off in
        let origin = classify g.g_name in
        slots :=
          { sl_name = g.g_name; sl_origin = origin; sl_offset = aligned;
            sl_size = g.g_size }
          :: !slots;
        off := aligned + g.g_size;
        raw := !raw + g.g_size;
        (match origin with
        | Runtime_state -> rt := !rt + g.g_size
        | Globalized -> gl := !gl + g.g_size)
      | Global | Constant | Local -> ())
    m.m_globals;
  { ly_slots = List.rev !slots; ly_raw = !raw; ly_total = !off;
    ly_runtime = !rt; ly_globalized = !gl }

(* SMem bytes one team reserves on [machine] (allocation-unit rounded);
   what the occupancy calculation divides the scratchpad by. *)
let reserved (machine : Machine.t) (l : layout) : int =
  Machine.team_smem machine ~shared_per_team:l.ly_total

(* No two slots overlap and every slot lies inside the footprint —
   checked by the test suite against arbitrary modules. *)
let check_non_overlap (l : layout) : (unit, string) result =
  let rec go = function
    | a :: (b :: _ as rest) ->
      if a.sl_offset + a.sl_size > b.sl_offset then
        Error
          (Fmt.str "%s [%d,%d) overlaps %s at %d" a.sl_name a.sl_offset
             (a.sl_offset + a.sl_size) b.sl_name b.sl_offset)
      else go rest
    | [ a ] ->
      if a.sl_offset + a.sl_size > l.ly_total then
        Error (Fmt.str "%s ends past the footprint" a.sl_name)
      else Ok ()
    | [] -> Ok ()
  in
  go l.ly_slots

let pp ppf l =
  Fmt.pf ppf "@[<v>smem %d B (raw %d; runtime %d, globalized %d)@," l.ly_total
    l.ly_raw l.ly_runtime l.ly_globalized;
  List.iter
    (fun s ->
      Fmt.pf ppf "  +%-6d %-10s %6d B  %s@," s.sl_offset
        (origin_name s.sl_origin) s.sl_size s.sl_name)
    l.ly_slots;
  Fmt.pf ppf "@]"
