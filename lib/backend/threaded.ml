(* Threaded-code lowering: bridge from the backend's register allocation
   to the engine's closure-array executor.

   The engine's `--exec vm` path runs the *same* instruction stream the
   resource model prices: each function whose allocation needed no spill
   slots is renamed onto its allocated physical registers (an IR-level
   rewrite inside the engine, see [Engine.make_fn_info]) and its decoded
   instructions are compiled into a flat, preallocated closure array —
   classic indirect-threaded code. Functions that spill keep the spill-
   rewritten IR the interpreter already executes; the plan simply omits
   them and the engine falls back to interpretation for those frames.

   This module computes the rename plans. It deliberately contains no
   execution machinery — the closures live next to the interpreter in
   [Engine] so both executors share counters, faults, sanitizer hooks,
   watchdog polling and per-domain state by construction. *)

module Engine = Ozo_vgpu.Engine
open Ozo_ir.Types

(* Build the virtual→physical rename plan for [f] from its allocation.
   Returns [None] when the allocation spilled: a spilled register has no
   physical home, and the engine interprets the spill-rewritten IR for
   that function instead. *)
let plan_of_alloc (f : func) (ra : Regalloc.result) : Engine.reg_plan option =
  if ra.Regalloc.ra_spilled <> [] then None
  else begin
    let n = max 1 f.f_next_reg in
    let map = Array.make n 0 in
    (* dead registers (no interval) share index 0, mirroring
       [Regalloc.loc]'s default for dead definitions *)
    Hashtbl.iter
      (fun r l ->
        match l with
        | Regalloc.Phys p -> if r >= 0 && r < n then map.(r) <- p
        | Regalloc.Slot _ -> assert false)
      ra.Regalloc.ra_loc;
    let next = ref ra.Regalloc.ra_regs_used in
    (* a parameter the allocator never saw is still *written* at call or
       kernel-argument binding time: give each its own private index so
       the binding store cannot clobber a live register that legitimately
       owns physical index 0 *)
    List.iter
      (fun (r, _) ->
        if not (Hashtbl.mem ra.Regalloc.ra_loc r) then begin
          map.(r) <- !next;
          incr next
        end)
      f.f_params;
    Some { Engine.rp_map = map; rp_nregs = max 1 !next }
  end
