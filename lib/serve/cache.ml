(* Content-addressed compile cache over [Codesign.keyed_compile_request].

   The key is the canonical fingerprint of everything that feeds a
   compile — the linked IR printout, the pipeline configuration, the
   build-ladder rung, the machine descriptor and the cost-model
   parameters (see [Codesign.Compile_key]) — so a lookup can only hit
   when the cached [compiled] artifact is bit-identical to what a cold
   compile would produce. That makes hits safe to serve without any
   validation pass: same key, same artifact, same metrics.

   Eviction is LRU over a fixed entry cap (unbounded when [cap] is
   [None]). Because a hit and a recompile are indistinguishable by
   construction, eviction can change only *when* work happens, never
   what it produces — the property the eviction test pins.

   Fallback-ladder recompiles flow through the same [compile_request]
   entry point under their own keys (a weakened pipeline changes the
   key's pipeline part), so a campaign that degrades rows still caches
   each rung it actually visited. *)

module C = Ozo_core.Codesign
module Request = Ozo_core.Request
module Ast = Ozo_frontend.Ast
module Trace = Ozo_obs.Trace

type entry = {
  en_compiled : C.compiled;
  mutable en_tick : int; (* last-use stamp, drives LRU eviction *)
}

type t = {
  tbl : (string, entry) Hashtbl.t; (* keyed by [Compile_key.hex] *)
  cap : int option;
  trace : Trace.ctx;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = {
  cs_entries : int;
  cs_hits : int;
  cs_misses : int;
  cs_evictions : int;
}

let create ?(trace = Trace.null) ?cap () : t =
  (match cap with
  | Some c when c < 1 -> invalid_arg "Cache.create: cap must be >= 1"
  | _ -> ());
  { tbl = Hashtbl.create 64; cap; trace; tick = 0; hits = 0; misses = 0;
    evictions = 0 }

let stats (t : t) : stats =
  { cs_entries = Hashtbl.length t.tbl; cs_hits = t.hits; cs_misses = t.misses;
    cs_evictions = t.evictions }

let hit_rate (s : stats) : float =
  let total = s.cs_hits + s.cs_misses in
  if total = 0 then 0.0
  else float_of_int s.cs_hits /. float_of_int total

(* O(entries) min-scan; caps are small enough that an intrusive list
   would be structure for structure's sake *)
let evict_lru (t : t) =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, best) when best.en_tick <= e.en_tick -> acc
        | _ -> Some (k, e))
      t.tbl None
  in
  match victim with
  | Some (k, _) ->
    Hashtbl.remove t.tbl k;
    t.evictions <- t.evictions + 1
  | None -> ()

let note (t : t) disp key =
  if Trace.enabled t.trace then
    Trace.instant t.trace ~cat:"serve" "compile-cache"
      ~args:
        [ ("disp", Trace.Str disp); ("key", Trace.Str (String.sub key 0 8));
          ("hits", Trace.Int t.hits); ("misses", Trace.Int t.misses);
          ("evictions", Trace.Int t.evictions) ]

(* The cache-backed compile entry point: same signature as
   [Codesign.compile_request], plus the disposition. Key derivation runs
   the cheap link stage either way; only the pipeline + backend stages
   are skipped on a hit. *)
let compile_request (t : t) (r : Request.t) (k : Ast.kernel) :
    C.compiled * [ `Hit | `Miss ] =
  let key, finish = C.keyed_compile_request r k in
  let hex = C.Compile_key.hex key in
  t.tick <- t.tick + 1;
  match Hashtbl.find_opt t.tbl hex with
  | Some e ->
    e.en_tick <- t.tick;
    t.hits <- t.hits + 1;
    note t "hit" hex;
    (e.en_compiled, `Hit)
  | None ->
    let c = finish () in
    t.misses <- t.misses + 1;
    (match t.cap with
    | Some cap when Hashtbl.length t.tbl >= cap -> evict_lru t
    | _ -> ());
    Hashtbl.replace t.tbl hex { en_compiled = c; en_tick = t.tick };
    note t "miss" hex;
    (c, `Miss)
