(* The batched campaign service: a work queue of launch requests drained
   in order through the content-addressed compile [Cache], each request
   supervised and optionally journaled.

   Queue semantics are deliberately simple and deterministic: requests
   run in file order, and "batching" is the cache doing its job — the
   first occurrence of a (linked IR, pipeline, rung, machine, cost) key
   compiles cold, every duplicate after it skips straight to the cached
   backend artifact. Because a hit returns the very artifact a cold
   compile would have produced, served measurement rows are bit-identical
   to the sequential harness modulo the trailing cache/latency columns.

   Concurrency lives *inside* each launch: [sv_domains] shards every
   request's team loop across the OCaml domain pool (PR 7), which keeps
   results independent of the domain count while the queue order stays
   the journal's row order.

   Stats report the cache hit rate, end-to-end launches/sec, and
   nearest-rank p50/p95/p99 over per-request wall-clock latency. *)

module E = Ozo_harness.Experiments
module C = Ozo_core.Codesign
module Request = Ozo_core.Request
module Proxy = Ozo_proxies.Proxy
module Device = Ozo_vgpu.Device
module Trace = Ozo_obs.Trace
module Supervisor = Ozo_resilience.Supervisor
module Journal = Ozo_resilience.Journal

type opts = {
  sv_small : bool; (* use the reduced test-size workloads *)
  sv_repeat : int; (* extra passes over the request list; >1 warms the cache *)
  sv_domains : int; (* OCaml domains per launch; results identical at any value *)
  sv_cache_cap : int option; (* max cached compiles; None = unbounded *)
  sv_check_assumes : bool;
  sv_sanitize : bool;
  sv_journal : string option;
  sv_machine : Ozo_backend.Machine.t; (* machine every queued request runs under *)
  sv_sup : Supervisor.opts;
}

let default =
  { sv_small = false; sv_repeat = 1; sv_domains = 1; sv_cache_cap = None;
    sv_check_assumes = false; sv_sanitize = false; sv_journal = None;
    sv_machine = Ozo_backend.Machine.vgpu; sv_sup = Supervisor.default }

type stats = {
  st_requests : int;
  st_cache : Cache.stats;
  st_hit_rate : float; (* hits / (hits + misses), over compile lookups *)
  st_wall_us : float; (* queue drain, end to end *)
  st_launches_per_sec : float;
  st_p50_us : float; (* nearest-rank percentiles of per-request latency *)
  st_p95_us : float;
  st_p99_us : float;
}

exception Service_error of string

(* ---- the request file -------------------------------------------------- *)

(* One request per line: "<proxy> <build>", '#' starts a comment, blank
   lines are skipped. Build names are the standard rows of
   [Experiments.build_names]. *)
let parse_requests (text : string) : (string * string) list =
  let lines = String.split_on_char '\n' text in
  List.concat
    (List.mapi
       (fun i line ->
         let line =
           match String.index_opt line '#' with
           | Some j -> String.sub line 0 j
           | None -> line
         in
         match
           String.split_on_char ' ' line
           |> List.concat_map (String.split_on_char '\t')
           |> List.filter (fun s -> s <> "")
         with
         | [] -> []
         | [ proxy; build ] -> [ (proxy, build) ]
         | _ ->
           raise
             (Service_error
                (Printf.sprintf
                   "requests line %d: expected \"<proxy> <build>\"" (i + 1))))
       lines)

let load_requests (path : string) : (string * string) list =
  let ic =
    try open_in path
    with Sys_error e -> raise (Service_error ("cannot read requests: " ^ e))
  in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse_requests (In_channel.input_all ic))

let resolve_proxy (o : opts) name : Proxy.t =
  let pool =
    if o.sv_small then Ozo_proxies.Registry.all_small ()
    else Ozo_proxies.Registry.all ()
  in
  match List.find_opt (fun p -> p.Proxy.p_name = name) pool with
  | Some p -> p
  | None -> raise (Service_error ("unknown proxy " ^ name))

(* service identity for the journal header, queue content included: a
   journal written against one request list must not silently continue
   another *)
let fingerprint (o : opts) (queue : (string * string) list) : string =
  Printf.sprintf
    "serve;queue=%s;small=%b;repeat=%d;sanitize=%b;assumes=%b;domains=%d;cap=%s"
    (Digest.to_hex
       (Digest.string
          (String.concat ";" (List.map (fun (p, b) -> p ^ " " ^ b) queue))))
    o.sv_small o.sv_repeat o.sv_sanitize o.sv_check_assumes o.sv_domains
    (match o.sv_cache_cap with Some c -> string_of_int c | None -> "-")
  (* appended only off the default so pre-matrix journals still resume *)
  ^
  if o.sv_machine.Ozo_backend.Machine.mc_name = "vgpu" then ""
  else ";machine=" ^ o.sv_machine.Ozo_backend.Machine.mc_name

(* ---- percentiles ------------------------------------------------------- *)

(* nearest-rank percentile over a sorted sample: the smallest value with
   at least p% of the sample at or below it *)
let percentile (sorted : float array) (p : float) : float =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

(* ---- the queue drain --------------------------------------------------- *)

(* Drain the queue once. [cache] lets a caller keep the compile cache
   alive across calls (cold pass / warm pass benchmarking); stats always
   cover only this run's lookups, so a warm pass over a pre-filled cache
   reports its own 100% hit rate rather than the cumulative one. *)
let run ?cache ?clock ?sleep ?(trace = Trace.null) (o : opts)
    (queue : (string * string) list) : E.measurement list * stats =
  let wall = match clock with Some c -> c | None -> fun () -> Unix.gettimeofday () *. 1e6 in
  let cache =
    match cache with
    | Some c -> c
    | None -> Cache.create ~trace ?cap:o.sv_cache_cap ()
  in
  let cs0 = Cache.stats cache in
  let sup = Supervisor.create ?clock ?sleep ~trace o.sv_sup in
  let writer =
    Option.map
      (fun path ->
        Journal.start ~path ~fingerprint:(fingerprint o queue))
      o.sv_journal
  in
  let rows =
    List.concat_map
      (fun _ -> queue)
      (List.init (max 1 o.sv_repeat) Fun.id)
  in
  let latencies = ref [] in
  let t_start = wall () in
  let out =
    List.mapi
      (fun i (proxy_name, build_name) ->
        let p = resolve_proxy o proxy_name in
        let b =
          match E.build_of_name p build_name with
          | Ok b -> b
          | Error e -> raise (Service_error e)
        in
        (* the primary compile's disposition labels the row; ladder
           recompiles after a fault hit the cache under their own keys *)
        let disp = ref "-" in
        let compiler r k =
          let c, d = Cache.compile_request cache r k in
          (if !disp = "-" then
             disp := match d with `Hit -> "hit" | `Miss -> "miss");
          c
        in
        Trace.begin_span trace ~cat:"serve" "serve-request"
          ~args:
            [ ("proxy", Trace.Str proxy_name); ("build", Trace.Str build_name);
              ("seq", Trace.Int i) ];
        let t0 = wall () in
        let m =
          Supervisor.supervise sup ~proxy:proxy_name ~build:build_name
            (fun ~attempt:_ ~watchdog ->
              let req =
                E.request_for ~check_assumes:o.sv_check_assumes
                  ~sanitize:o.sv_sanitize ?watchdog ~trace
                  ~domains:o.sv_domains ~machine:o.sv_machine p b
              in
              E.measure_request ~compiler p req)
        in
        let latency = wall () -. t0 in
        Trace.end_span trace ~args:[ ("cache", Trace.Str !disp) ] ();
        latencies := latency :: !latencies;
        let m = { m with E.r_cache_disp = !disp; r_latency_us = latency } in
        (match writer with Some w -> Journal.append w ~seq:i m | None -> ());
        m)
      rows
  in
  let wall_us = wall () -. t_start in
  (match writer with Some w -> Journal.close w | None -> ());
  let cs_end = Cache.stats cache in
  (* this run's lookups only: the cache may predate us *)
  let cs =
    { Cache.cs_entries = cs_end.Cache.cs_entries;
      cs_hits = cs_end.Cache.cs_hits - cs0.Cache.cs_hits;
      cs_misses = cs_end.Cache.cs_misses - cs0.Cache.cs_misses;
      cs_evictions = cs_end.Cache.cs_evictions - cs0.Cache.cs_evictions }
  in
  let sorted = Array.of_list !latencies in
  Array.sort compare sorted;
  let n = List.length rows in
  (if Trace.enabled trace then
     Trace.instant trace ~cat:"serve" "serve-stats"
       ~args:
         [ ("requests", Trace.Int n); ("hits", Trace.Int cs.Cache.cs_hits);
           ("misses", Trace.Int cs.Cache.cs_misses);
           ("evictions", Trace.Int cs.Cache.cs_evictions) ]);
  let stats =
    { st_requests = n; st_cache = cs; st_hit_rate = Cache.hit_rate cs;
      st_wall_us = wall_us;
      st_launches_per_sec =
        (if wall_us > 0.0 then float_of_int n /. (wall_us /. 1e6) else 0.0);
      st_p50_us = percentile sorted 50.0; st_p95_us = percentile sorted 95.0;
      st_p99_us = percentile sorted 99.0 }
  in
  (out, stats)

let pp_stats ppf (s : stats) =
  Fmt.pf ppf
    "serve: %d requests, cache %d hit / %d miss / %d evicted (%.0f%% hit \
     rate), %d live entries@.serve: %.1f launches/sec, latency p50 %.1fus \
     p95 %.1fus p99 %.1fus@."
    s.st_requests s.st_cache.Cache.cs_hits s.st_cache.Cache.cs_misses
    s.st_cache.Cache.cs_evictions
    (100.0 *. s.st_hit_rate)
    s.st_cache.Cache.cs_entries s.st_launches_per_sec s.st_p50_us s.st_p95_us
    s.st_p99_us
