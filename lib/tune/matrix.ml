(* The cross-machine campaign matrix: every proxy x build x machine,
   measured through the standard [Request.t] path with one serving-tier
   compile cache shared across the whole sweep (machine is part of
   [Compile_key], so per-machine compiles cache-separate automatically).

   Reporting reproduces the performance-portability methodology of the
   portability literature on the simulated stack:

   - *relative performance*: within one (proxy, machine) column, each
     build's speedup over the Old RT (Nightly) baseline *on that same
     machine* — the Fig. 10 normalization, repeated per machine;

   - *application efficiency*: each cell's cycles relative to the best
     build for that (proxy, machine) — in [0,1], 1 = this build is the
     fastest way to run this proxy on this machine;

   - *performance portability* (PP, Pennycook et al.): the harmonic mean
     of a build's application efficiencies across the machine set, 0 if
     the build fails anywhere — one number summarizing "does this
     runtime stay near-best everywhere?". The paper's near-zero-overhead
     claim predicts PP(New RT) ~ PP(CUDA) >> PP(Old RT).

   Cycle counts are NOT comparable across machines (each machine prices
   against its own SM count and wavefront width); every derived column
   normalizes within a machine first. *)

module E = Ozo_harness.Experiments
module Proxy = Ozo_proxies.Proxy
module Machine = Ozo_backend.Machine
module Cache = Ozo_serve.Cache
module Trace = Ozo_obs.Trace

type cell = {
  x_proxy : string;
  x_build : string;       (* canonical build name *)
  x_machine : string;
  x_m : E.measurement;    (* the full measured row *)
}

type t = {
  mx_machines : string list;      (* column order *)
  mx_builds : string list;        (* row order per proxy *)
  mx_proxies : string list;
  mx_cells : cell list;           (* proxy-major, build, machine order *)
}

let default_machines = [ "vgpu"; "a100"; "v100"; "mi250"; "h100" ]

exception Matrix_error of string

let machine_of_name n =
  match Machine.find n with
  | Some m -> m
  | None ->
    raise
      (Matrix_error
         ("unknown machine " ^ n ^ " (" ^ String.concat "|" Machine.names ^ ")"))

(* Run the full sweep. [domains]/[exec] ride along like in a campaign:
   results are bit-identical at any value, only wall-clock changes. *)
let run ?(small = false) ?(machines = default_machines) ?proxies
    ?(domains = 1) ?exec ?cache ?(trace = Trace.null) () : t =
  let pool =
    if small then Ozo_proxies.Registry.all_small ()
    else Ozo_proxies.Registry.all ()
  in
  let pool =
    match proxies with
    | None -> pool
    | Some names ->
      List.map
        (fun n ->
          match List.find_opt (fun p -> p.Proxy.p_name = n) pool with
          | Some p -> p
          | None -> raise (Matrix_error ("unknown proxy " ^ n)))
        names
  in
  let cache =
    match cache with Some c -> c | None -> Cache.create ~trace ()
  in
  let compiler r k = fst (Cache.compile_request cache r k) in
  let cells =
    List.concat_map
      (fun p ->
        List.concat_map
          (fun bname ->
            let b =
              match E.build_of_name p bname with
              | Ok b -> b
              | Error e -> raise (Matrix_error e)
            in
            List.map
              (fun mname ->
                let machine = machine_of_name mname in
                let req =
                  E.request_for ~trace ~domains ?exec ~machine p b
                in
                let m = E.measure_request ~compiler p req in
                { x_proxy = p.Proxy.p_name; x_build = bname;
                  x_machine = mname; x_m = m })
              machines)
          E.build_names)
      pool
  in
  { mx_machines = machines; mx_builds = E.build_names;
    mx_proxies = List.map (fun p -> p.Proxy.p_name) pool;
    mx_cells = cells }

let cell_ok (c : cell) =
  c.x_m.E.r_fault = None && c.x_m.E.r_check = Ok ()

let find_cell (t : t) ~proxy ~build ~machine =
  List.find_opt
    (fun c ->
      c.x_proxy = proxy && c.x_build = build && c.x_machine = machine)
    t.mx_cells

(* speedup over the Old RT (Nightly) baseline on the same machine *)
let rel_perf (t : t) (c : cell) : float option =
  match find_cell t ~proxy:c.x_proxy ~build:"old-rt" ~machine:c.x_machine with
  | Some base when cell_ok base && cell_ok c && c.x_m.E.r_cycles > 0.0 ->
    Some (base.x_m.E.r_cycles /. c.x_m.E.r_cycles)
  | _ -> None

(* cycles of the fastest valid build for (proxy, machine) *)
let best_cycles (t : t) ~proxy ~machine : float option =
  List.fold_left
    (fun acc c ->
      if c.x_proxy = proxy && c.x_machine = machine && cell_ok c then
        match acc with
        | None -> Some c.x_m.E.r_cycles
        | Some b -> Some (Float.min b c.x_m.E.r_cycles)
      else acc)
    None t.mx_cells

let app_efficiency (t : t) (c : cell) : float option =
  match best_cycles t ~proxy:c.x_proxy ~machine:c.x_machine with
  | Some best when cell_ok c && c.x_m.E.r_cycles > 0.0 ->
    Some (best /. c.x_m.E.r_cycles)
  | _ -> None

(* Pennycook harmonic mean over the machine set; 0.0 when the build
   failed (or has no valid baseline) on any machine *)
let pp_metric (t : t) ~proxy ~build : float =
  let effs =
    List.map
      (fun machine ->
        match find_cell t ~proxy ~build ~machine with
        | Some c -> app_efficiency t c
        | None -> None)
      t.mx_machines
  in
  if List.exists (fun e -> e = None || e = Some 0.0) effs then 0.0
  else
    let n = float_of_int (List.length effs) in
    n
    /. List.fold_left
         (fun acc e -> acc +. (1.0 /. Option.get e))
         0.0 effs

(* ---- reporting --------------------------------------------------------- *)

let csv_columns =
  [ "proxy"; "build"; "machine"; "cycles"; "rel_perf"; "app_eff"; "regs";
    "smem"; "occupancy"; "warp_insts"; "check" ]

let pp_csv_header ppf () = Fmt.pf ppf "%s@." (String.concat "," csv_columns)

let pp_csv ppf (t : t) =
  List.iter
    (fun c ->
      let opt = function Some v -> Printf.sprintf "%.3f" v | None -> "-" in
      Fmt.pf ppf "%s,%s,%s,%.0f,%s,%s,%d,%d,%.3f,%d,%s@." c.x_proxy c.x_build
        c.x_machine c.x_m.E.r_cycles
        (opt (rel_perf t c))
        (opt (app_efficiency t c))
        c.x_m.E.r_regs c.x_m.E.r_smem c.x_m.E.r_occupancy
        c.x_m.E.r_counters.Ozo_vgpu.Counters.warp_instructions
        (if cell_ok c then "ok" else "fail"))
    t.mx_cells

(* per-proxy table: builds x machines, relative performance + PP column *)
let pp_table ppf (t : t) =
  List.iter
    (fun proxy ->
      Fmt.pf ppf
        "@.%s — relative performance per machine (Old RT = 1.00) + PP@."
        proxy;
      Fmt.pf ppf "  %-24s" "build";
      List.iter (fun m -> Fmt.pf ppf " %8s" m) t.mx_machines;
      Fmt.pf ppf " %8s@." "PP";
      List.iter
        (fun build ->
          Fmt.pf ppf "  %-24s" build;
          List.iter
            (fun machine ->
              match find_cell t ~proxy ~build ~machine with
              | Some c -> (
                match rel_perf t c with
                | Some r -> Fmt.pf ppf " %7.2fx" r
                | None -> Fmt.pf ppf " %8s" "fail")
              | None -> Fmt.pf ppf " %8s" "-")
            t.mx_machines;
          Fmt.pf ppf " %8.2f@." (pp_metric t ~proxy ~build))
        t.mx_builds)
    t.mx_proxies
