(* Launch-configuration autotuner (DESIGN.md §16).

   The search space is team x thread shapes for one (proxy, build,
   machine) triple. Candidates are scored *statically* against the
   backend's occupancy calculator plus a predicted-cycles estimate from
   the cost model, calibrated by one probe launch at the proxy's default
   shape:

   - The probe supplies the kernel's resource demands (registers, SMem —
     shape-independent: the compile does not depend on the launch
     geometry) and its total cycle mass M (the sum of per-team simulated
     cycles) plus the memory share of that mass.

   - A candidate (T teams, H threads) is priced as
     [Cost.kernel_time ~occupancy:(occ for H) ~team_cycles:(T x M/T)
     ~mem_cycles:M_mem]: work conservation spreads the probe's mass
     uniformly over the candidate's teams, so the prediction captures
     exactly the two effects the shape controls — wave quantization over
     [n_sm x teams_per_sm] concurrent teams, and occupancy-driven memory
     latency hiding. (Per-team fixed runtime overhead is *not* modeled;
     the opt-in measured refinement below exists to catch it.)

   - Candidate thread counts are multiples of the machine's wavefront
     width (a partial trailing warp issues like a full one); candidate
     team counts at least cover the proxy's default iteration space
     (teams x threads >= default total), which is the precondition of
     the CUDA one-thread-per-element style and of the OpenMP
     oversubscription flags — a non-covering shape would change results,
     not just performance.

   The search is deterministic: candidates are enumerated in a fixed
   order, scored by (predicted cycles, occupancy), and exact ties broken
   by a seeded hash — the same request and seed always choose the same
   shape. With [measure_top = k > 0] the top-k candidates are launched
   for real through the standard [Request.t] path (so a serving-tier
   compile cache sees one compile, k launches) and the winner is the
   lowest *simulated* kernel time among the candidates that validated. *)

module C = Ozo_core.Codesign
module Request = Ozo_core.Request
module E = Ozo_harness.Experiments
module Proxy = Ozo_proxies.Proxy
module Machine = Ozo_backend.Machine
module Cost = Ozo_vgpu.Cost
module Counters = Ozo_vgpu.Counters
module Engine = Ozo_vgpu.Engine
module Spmdize = Ozo_opt.Spmdize
module Trace = Ozo_obs.Trace

type candidate = {
  cd_teams : int;
  cd_threads : int;            (* user-visible threads per team *)
  cd_hw_threads : int;         (* +1 warp in generic mode *)
  cd_occ : Machine.occupancy;  (* modeled residency at this shape *)
  cd_cycles : float;           (* predicted kernel cycles (cost model) *)
}

type verdict = {
  tv_proxy : string;
  tv_build : string;           (* canonical build name, e.g. "new-rt" *)
  tv_machine : string;
  tv_seed : int;
  tv_default : candidate;      (* the proxy's own shape, scored *)
  tv_chosen : candidate;
  tv_candidates : candidate list; (* every scored candidate, best first *)
  tv_pruned : int;             (* shapes dropped by the occupancy prune *)
  tv_measured : (candidate * float) list;
  (* measured-refinement rows (simulated cycles), model order; [] in
     model-only mode *)
  tv_probe_cycles : float;     (* measured kernel cycles at the default shape *)
}

let improved (v : verdict) =
  v.tv_chosen.cd_cycles < v.tv_default.cd_cycles
  || v.tv_chosen.cd_occ.Machine.occ_fraction
     > v.tv_default.cd_occ.Machine.occ_fraction

(* deterministic tie-break: a seeded hash of the shape, so equal-scored
   candidates order the same way on every run with the same seed *)
let tie_hash ~seed (teams, threads) = Hashtbl.hash (seed, teams, threads)

let compare_candidates ~seed a b =
  match compare a.cd_cycles b.cd_cycles with
  | 0 -> (
    match
      compare b.cd_occ.Machine.occ_fraction a.cd_occ.Machine.occ_fraction
    with
    | 0 ->
      compare
        (tie_hash ~seed (a.cd_teams, a.cd_threads))
        (tie_hash ~seed (b.cd_teams, b.cd_threads))
    | c -> c)
  | c -> c

(* candidate thread counts: wavefront multiples up to the residency
   ceiling (and 1024, the familiar block-size limit), plus the proxy's
   own thread count so the default shape is always a member *)
let thread_candidates (machine : Machine.t) ~default_threads ~spmd =
  let ws = machine.Machine.mc_warp_size in
  let hw t = if spmd then t else t + ws in
  let cap = min 1024 machine.Machine.mc_max_threads_per_sm in
  let muls = List.map (fun m -> ws * m) [ 1; 2; 4; 8; 16; 32 ] in
  List.sort_uniq compare
    (default_threads :: List.filter (fun t -> hw t <= cap) muls)

let team_candidates ~total ~threads =
  let t_min = max 1 ((total + threads - 1) / threads) in
  List.sort_uniq compare
    (List.filter (fun t -> t <= 4096) [ t_min; 2 * t_min; 4 * t_min ])

exception Tune_error of string

(* predicted kernel cycles for one shape, from the probe's cycle mass *)
let predict ~(cp : Cost.params) ~(occ : Machine.occupancy) ~mass ~mem_mass
    ~teams =
  let per_team = mass / max 1 teams in
  Cost.kernel_time cp
    ~occupancy:(Machine.to_cost_occupancy occ)
    ~team_cycles:(List.init teams (fun _ -> per_team))
    ~mem_cycles:(min mass mem_mass)

let search ?(seed = 0) ?(measure_top = 0) ?(domains = 1) ?exec ?compiler
    ?(trace = Trace.null) ~(machine : Machine.t) (p : Proxy.t)
    ~(build_name : string) : verdict =
  let b =
    match E.build_of_name p build_name with
    | Ok b -> b
    | Error e -> raise (Tune_error e)
  in
  let compiler =
    match compiler with Some f -> f | None -> C.compile_request
  in
  let request ~teams ~threads =
    let r = E.request_for ~trace ~domains ?exec ~machine p b in
    { r with Request.rq_teams = teams; rq_threads = threads }
  in
  (* one compile tells us the execution mode and the shape-independent
     resource demands; under a serving-tier compiler this is the only
     cold compile the whole search performs *)
  let rq0 = request ~teams:p.Proxy.p_teams ~threads:p.Proxy.p_threads in
  let c0 = compiler rq0 (Proxy.kernel_for p b.C.b_abi) in
  let spmd = c0.C.c_mode = Spmdize.Spmd in
  (* probe: one real measurement at the proxy's default shape. Its
     counters calibrate every static prediction *)
  let probe = E.measure_request ~compiler p rq0 in
  (match (probe.E.r_fault, probe.E.r_check) with
  | None, Ok () -> ()
  | Some f, _ ->
    raise
      (Tune_error
         ("probe launch faulted: " ^ Ozo_vgpu.Fault.to_line f))
  | None, Error e -> raise (Tune_error ("probe check failed: " ^ e)));
  let cp = Machine.cost_params machine in
  let regs = c0.C.c_regs and smem = c0.C.c_smem in
  let mass = probe.E.r_counters.Counters.cycles in
  let mem_mass = Counters.memory_cycles cp probe.E.r_counters in
  (* generic-mode kernels host the main thread in one extra warp *)
  let hw t = if spmd then t else t + machine.Machine.mc_warp_size in
  let score ~teams ~threads =
    let occ =
      Machine.occupancy machine ~threads_per_team:(hw threads)
        ~regs_per_thread:regs ~shared_per_team:smem
    in
    { cd_teams = teams; cd_threads = threads; cd_hw_threads = hw threads;
      cd_occ = occ;
      cd_cycles = predict ~cp ~occ ~mass ~mem_mass ~teams }
  in
  let total = p.Proxy.p_teams * p.Proxy.p_threads in
  let shapes =
    List.concat_map
      (fun threads ->
        List.map
          (fun teams -> (teams, threads))
          (team_candidates ~total ~threads))
      (thread_candidates machine ~default_threads:p.Proxy.p_threads ~spmd)
  in
  let shapes =
    if List.mem (p.Proxy.p_teams, p.Proxy.p_threads) shapes then shapes
    else (p.Proxy.p_teams, p.Proxy.p_threads) :: shapes
  in
  (* occupancy prune: shapes whose modeled residency is under a quarter
     of the best seen never win on latency hiding — skip the cycle
     prediction (the default shape is always kept for the comparison) *)
  let with_occ =
    List.map
      (fun (teams, threads) ->
        ( (teams, threads),
          (Machine.occupancy machine ~threads_per_team:(hw threads)
             ~regs_per_thread:regs ~shared_per_team:smem)
            .Machine.occ_fraction ))
      shapes
  in
  let best_occ = List.fold_left (fun a (_, f) -> Float.max a f) 0.0 with_occ in
  let keep ((teams, threads), f) =
    f >= 0.25 *. best_occ || (teams, threads) = (p.Proxy.p_teams, p.Proxy.p_threads)
  in
  let kept, pruned = List.partition keep with_occ in
  let scored =
    List.map (fun ((teams, threads), _) -> score ~teams ~threads) kept
  in
  let sorted = List.sort (compare_candidates ~seed) scored in
  let default_c = score ~teams:p.Proxy.p_teams ~threads:p.Proxy.p_threads in
  let model_choice = match sorted with c :: _ -> c | [] -> default_c in
  (* opt-in measured refinement: launch the top-k for real, pick the
     lowest simulated kernel time among the rows that validated *)
  let measured =
    if measure_top <= 0 then []
    else
      List.filteri (fun i _ -> i < measure_top) sorted
      |> List.map (fun c ->
             let m =
               E.measure_request ~compiler p
                 (request ~teams:c.cd_teams ~threads:c.cd_threads)
             in
             let cycles =
               match (m.E.r_fault, m.E.r_check) with
               | None, Ok () -> m.E.r_cycles
               | _ -> Float.infinity (* failed candidates never win *)
             in
             (c, cycles))
  in
  let chosen =
    match measured with
    | [] -> model_choice
    | rows ->
      let best =
        List.fold_left
          (fun (bc, bv) (c, v) -> if v < bv then (c, v) else (bc, bv))
          (List.hd rows) (List.tl rows)
      in
      if Float.is_finite (snd best) then fst best else model_choice
  in
  let v =
    { tv_proxy = p.Proxy.p_name; tv_build = build_name;
      tv_machine = machine.Machine.mc_name; tv_seed = seed;
      tv_default = default_c; tv_chosen = chosen; tv_candidates = sorted;
      tv_pruned = List.length pruned; tv_measured = measured;
      tv_probe_cycles = probe.E.r_cycles }
  in
  if Trace.enabled trace then
    Trace.instant trace ~cat:"tune" "tune-verdict"
      ~args:
        [ ("proxy", Trace.Str v.tv_proxy); ("build", Trace.Str v.tv_build);
          ("machine", Trace.Str v.tv_machine);
          ("teams", Trace.Int chosen.cd_teams);
          ("threads", Trace.Int chosen.cd_threads);
          ("pred_cycles", Trace.Int (int_of_float chosen.cd_cycles)) ];
  v

(* ---- journaling -------------------------------------------------------- *)

(* one JSON line per verdict, append-only: the tuner's decisions are a
   record worth keeping next to the campaign journal. Self-contained
   (no decode path needed — the verdict is reproducible from the seed) *)
let verdict_json (v : verdict) : string =
  let c = v.tv_chosen and d = v.tv_default in
  Printf.sprintf
    "{\"kind\":\"tune\",\"proxy\":%S,\"build\":%S,\"machine\":%S,\"seed\":%d,\
     \"teams\":%d,\"threads\":%d,\"pred_cycles\":%.0f,\"occupancy\":%.3f,\
     \"limiter\":%S,\"default_teams\":%d,\"default_threads\":%d,\
     \"default_pred_cycles\":%.0f,\"probe_cycles\":%.0f,\"candidates\":%d,\
     \"pruned\":%d,\"measured\":%d}"
    v.tv_proxy v.tv_build v.tv_machine v.tv_seed c.cd_teams c.cd_threads
    c.cd_cycles c.cd_occ.Machine.occ_fraction
    (Machine.limiter_name c.cd_occ.Machine.occ_limiter)
    d.cd_teams d.cd_threads d.cd_cycles v.tv_probe_cycles
    (List.length v.tv_candidates) v.tv_pruned (List.length v.tv_measured)

let append_journal ~path (v : verdict) : unit =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (verdict_json v ^ "\n"))

(* ---- reporting --------------------------------------------------------- *)

let csv_columns =
  [ "proxy"; "build"; "machine"; "teams"; "threads"; "hw_threads";
    "occupancy"; "limiter"; "pred_cycles"; "measured_cycles"; "chosen" ]

let pp_csv_header ppf () = Fmt.pf ppf "%s@." (String.concat "," csv_columns)

let pp_csv ppf (v : verdict) =
  let measured_of c =
    match
      List.find_opt
        (fun (c', _) ->
          c'.cd_teams = c.cd_teams && c'.cd_threads = c.cd_threads)
        v.tv_measured
    with
    | Some (_, cy) when Float.is_finite cy -> Printf.sprintf "%.0f" cy
    | Some _ -> "failed"
    | None -> "-"
  in
  List.iter
    (fun c ->
      Fmt.pf ppf "%s,%s,%s,%d,%d,%d,%.3f,%s,%.0f,%s,%s@." v.tv_proxy
        v.tv_build v.tv_machine c.cd_teams c.cd_threads c.cd_hw_threads
        c.cd_occ.Machine.occ_fraction
        (Machine.limiter_name c.cd_occ.Machine.occ_limiter)
        c.cd_cycles (measured_of c)
        (if c.cd_teams = v.tv_chosen.cd_teams
            && c.cd_threads = v.tv_chosen.cd_threads
         then "yes"
         else "no"))
    v.tv_candidates

let pp_verdict ppf (v : verdict) =
  Fmt.pf ppf "@.%s / %s on %s — launch-shape search (seed %d)@." v.tv_proxy
    v.tv_build v.tv_machine v.tv_seed;
  Fmt.pf ppf "  %-18s %8s %9s %7s %9s %14s %10s@." "" "teams" "threads"
    "hw-thr" "occup" "pred(cyc)" "limiter";
  let row name c =
    Fmt.pf ppf "  %-18s %8d %9d %7d %9.2f %14.0f %10s@." name c.cd_teams
      c.cd_threads c.cd_hw_threads c.cd_occ.Machine.occ_fraction c.cd_cycles
      (Machine.limiter_name c.cd_occ.Machine.occ_limiter)
  in
  row "default" v.tv_default;
  row "chosen" v.tv_chosen;
  Fmt.pf ppf "  %d candidates scored, %d pruned by occupancy%s@."
    (List.length v.tv_candidates)
    v.tv_pruned
    (match v.tv_measured with
    | [] -> ""
    | ms -> Printf.sprintf ", top-%d measured" (List.length ms));
  if improved v then
    Fmt.pf ppf "  -> %.2fx predicted vs default (occupancy %.2f -> %.2f)@."
      (v.tv_default.cd_cycles /. Float.max 1.0 v.tv_chosen.cd_cycles)
      v.tv_default.cd_occ.Machine.occ_fraction
      v.tv_chosen.cd_occ.Machine.occ_fraction
  else Fmt.pf ppf "  -> default shape already optimal under the model@."
