(* Execution statistics collected by the SIMT engine, the reproduction's
   stand-in for Nsight Compute counters.

   Counting granularity — per-lane vs per-transaction. The memory
   counters deliberately use two different units, mirroring the hardware
   counters they stand in for:

   - [shared_accesses] is *per active lane*: a warp-wide shared-memory
     load with 32 active lanes bumps it by 32. Shared memory on real
     hardware is banked per lane, so lane count is the natural unit
     (and what `smsp__inst_executed_op_shared_*` reports).

   - [global_transactions] is *per 128-byte segment per warp access*:
     the engine coalesces the active lanes' addresses and counts the
     number of distinct segments touched — 1 for a fully-coalesced
     access, up to one per lane for a scattered one. This is the DRAM
     transaction count (`l1tex__t_sectors`-style), which is what the
     paper's coalescing-sensitive optimizations actually move.

   [atomics] counts per *warp access* that reaches global memory,
   regardless of active-lane count; [barriers] per warp arrival;
   [warp_instructions] per strand issue; [lane_instructions] per active
   lane. As a consequence, [memory_cycles] below weights shared traffic
   by lanes but global traffic by segments — so a shared-heavy kernel's
   memory share is overweighted relative to a coalesced global-heavy
   one. That skew is intentional and baked into the golden snapshots:
   changing any counting unit changes simulated results and requires a
   deliberate golden-counters regeneration (see test/test_golden.ml). *)

type t = {
  mutable warp_instructions : int;  (* instruction issues (per strand) *)
  mutable lane_instructions : int;  (* instruction executions (per active lane) *)
  mutable barriers : int;           (* per warp arrival *)
  mutable aligned_barriers : int;   (* subset of [barriers]: aligned form *)
  mutable global_transactions : int;(* per 128B segment per warp access *)
  mutable shared_accesses : int;    (* per active lane *)
  mutable local_accesses : int;     (* per active lane (stack + spill traffic) *)
  mutable atomics : int;            (* per warp access to global memory *)
  mutable mallocs : int;
  mutable calls : int;
  mutable divergent_branches : int;
  mutable cycles : int;             (* accumulated cost-model cycles *)
  mutable traps : int;
}

let create () =
  { warp_instructions = 0; lane_instructions = 0; barriers = 0; aligned_barriers = 0;
    global_transactions = 0; shared_accesses = 0; local_accesses = 0; atomics = 0;
    mallocs = 0; calls = 0; divergent_branches = 0; cycles = 0; traps = 0 }

(* structural equality over every field; used by the golden-counters
   determinism tests to pin that perf work never changes simulated results *)
let equal a b =
  a.warp_instructions = b.warp_instructions
  && a.lane_instructions = b.lane_instructions
  && a.barriers = b.barriers
  && a.aligned_barriers = b.aligned_barriers
  && a.global_transactions = b.global_transactions
  && a.shared_accesses = b.shared_accesses
  && a.local_accesses = b.local_accesses
  && a.atomics = b.atomics
  && a.mallocs = b.mallocs
  && a.calls = b.calls
  && a.divergent_branches = b.divergent_branches
  && a.cycles = b.cycles
  && a.traps = b.traps

let add a b =
  { warp_instructions = a.warp_instructions + b.warp_instructions;
    lane_instructions = a.lane_instructions + b.lane_instructions;
    barriers = a.barriers + b.barriers;
    aligned_barriers = a.aligned_barriers + b.aligned_barriers;
    global_transactions = a.global_transactions + b.global_transactions;
    shared_accesses = a.shared_accesses + b.shared_accesses;
    local_accesses = a.local_accesses + b.local_accesses;
    atomics = a.atomics + b.atomics;
    mallocs = a.mallocs + b.mallocs;
    calls = a.calls + b.calls;
    divergent_branches = a.divergent_branches + b.divergent_branches;
    cycles = a.cycles + b.cycles;
    traps = a.traps + b.traps }

(* cycles attributable to the memory system under the cost model [p];
   the latency-hiding part of the makespan estimate. [local_accesses]
   stays out: local traffic is charged as issue-side [c_local_access]
   cycles in the engine (stack/L1-resident), exactly as before the
   counter existed, which keeps the golden cycle totals stable. *)
let memory_cycles (p : Cost.params) c =
  (c.global_transactions * p.Cost.c_global_segment)
  + (c.shared_accesses * p.Cost.c_shared_access)
  + (c.atomics * p.Cost.c_atomic_global)
  + (c.mallocs * p.Cost.c_malloc)

let pp ppf c =
  Fmt.pf ppf
    "@[<v>warp insts   %d@,lane insts   %d@,barriers     %d (aligned %d)@,\
     global txns  %d@,shared accs  %d@,local accs   %d@,atomics      %d@,\
     mallocs      %d@,calls        %d@,div branches %d@,cycles       %d@]"
    c.warp_instructions c.lane_instructions c.barriers c.aligned_barriers
    c.global_transactions c.shared_accesses c.local_accesses c.atomics
    c.mallocs c.calls c.divergent_branches c.cycles
