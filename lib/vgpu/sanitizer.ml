(* SIMT sanitizer: opt-in shadow state layered on [Memory] via its watcher
   hook. Tracks, per address space:

   - live allocations (bump-ordered interval list) — accesses outside any
     allocation fault as out-of-bounds;
   - per-byte initialized bits — reads of never-written bytes fault as
     uninit-read;
   - per-byte last writer (thread id + barrier epoch + atomic flag) —
     conflicting accesses by different threads with no barrier in between
     fault as a data race.

   The barrier epoch increments at every team-wide barrier release and at
   every team start, so cross-team and cross-phase accesses never alias as
   races. Writes of identical bytes are exempt from the write-write race
   check: the runtime's exclusive-execution forwarding makes inactive
   lanes broadcast-write the same value into a dummy slot, which is benign
   by construction (cf. paper §IV-C).

   Host-phase (pre-launch) accesses are never checked; host-phase global
   and constant allocations count as initialized, matching the vGPU's
   zero-filled buffers the proxies' accumulators rely on. Kernel-phase
   allocations (alloca, malloc, per-team shared memory) start out
   uninitialized.

   Faults raised here carry only the access decode; the engine annotates
   them with function/block/instruction/strand context from its own
   [Fault.ctx] at the launch boundary.

   For domain-parallel execution each domain gets a [fork]: a snapshot
   of the host-initialized global/constant shadows plus fresh per-team
   (shared/local) shadows, watching that domain's forked [Memory]. Teams
   are independent by construction, so per-domain shadows see exactly
   the accesses the sequential sanitizer would attribute to their teams;
   for programs that (erroneously) communicate across teams the shadows
   may diverge from the sequential interleaving — acceptable, since any
   such program is already outside the model the sanitizer checks. *)

open Ozo_ir.Types
module F = Fault

(* per-byte shadow metadata, packed into one int:
   bit 0        initialized
   bit 1        last write was atomic
   bits 2..21   writer + 2 (0 = never written, 1 = host)
   bits 22..62  barrier epoch of the last write *)
let init_bit = 1
let atomic_bit = 2
let writer_shift = 2
let writer_mask = 0xFFFFF
let epoch_shift = 22
let host_writer = 1

type shadow = {
  mutable meta : int array;
  mutable a_off : int array;  (* allocation offsets, ascending *)
  mutable a_size : int array;
  mutable a_n : int;
}

let new_shadow () = { meta = [||]; a_off = [||]; a_size = [||]; a_n = 0 }

let ensure_meta sh n =
  if n > Array.length sh.meta then begin
    let cap = max n (max 64 (2 * Array.length sh.meta)) in
    let m = Array.make cap 0 in
    Array.blit sh.meta 0 m 0 (Array.length sh.meta);
    sh.meta <- m
  end

let clear_shadow sh =
  Array.fill sh.meta 0 (Array.length sh.meta) 0;
  sh.a_n <- 0

let register sh ~offset ~size =
  if sh.a_n = Array.length sh.a_off then begin
    let cap = max 16 (2 * sh.a_n) in
    let o = Array.make cap 0 and s = Array.make cap 0 in
    Array.blit sh.a_off 0 o 0 sh.a_n;
    Array.blit sh.a_size 0 s 0 sh.a_n;
    sh.a_off <- o;
    sh.a_size <- s
  end;
  (* bump allocation delivers ascending offsets; insert from the back to
     stay sorted if it ever does not *)
  let i = ref sh.a_n in
  while !i > 0 && sh.a_off.(!i - 1) > offset do
    sh.a_off.(!i) <- sh.a_off.(!i - 1);
    sh.a_size.(!i) <- sh.a_size.(!i - 1);
    decr i
  done;
  sh.a_off.(!i) <- offset;
  sh.a_size.(!i) <- size;
  sh.a_n <- sh.a_n + 1;
  ensure_meta sh (offset + size);
  Array.fill sh.meta offset size 0

let drop_above sh sp =
  while sh.a_n > 0 && sh.a_off.(sh.a_n - 1) >= sp do
    sh.a_n <- sh.a_n - 1
  done

(* does some live allocation cover [off, off+n)? *)
let covered sh off n =
  let lo = ref 0 and hi = ref sh.a_n in
  while !hi - !lo > 0 do
    let mid = (!lo + !hi) / 2 in
    if sh.a_off.(mid) <= off then lo := mid + 1 else hi := mid
  done;
  let i = !lo - 1 in
  i >= 0 && off + n <= sh.a_off.(i) + sh.a_size.(i)

type t = {
  mem : Memory.t;
  global : shadow;
  constant : shadow;
  shared : shadow;
  local : shadow array; (* per thread in the current team *)
  (* shared-space ranges exempt from race checks: runtime-internal state
     (team ICVs, the exclusive-execution dummy sink) uses benign
     last-writer-wins idioms the runtime is co-designed around *)
  mutable no_race : (int * int) list;
  mutable epoch : int;
  mutable in_kernel : bool;
  mutable in_atomic : bool;
}

let create (mem : Memory.t) : t =
  { mem;
    global = new_shadow ();
    constant = new_shadow ();
    shared = new_shadow ();
    local = Array.init (Memory.threads_per_team mem) (fun _ -> new_shadow ());
    no_race = [];
    epoch = 0;
    in_kernel = false;
    in_atomic = false }

let copy_shadow sh =
  { meta = Array.copy sh.meta;
    a_off = Array.copy sh.a_off;
    a_size = Array.copy sh.a_size;
    a_n = sh.a_n }

(* Per-domain sanitizer over a forked [Memory]: device-wide shadows
   (global/constant — host allocations and initializations) are copied
   from the parent at launch time; per-team shadows start empty, exactly
   as they would at the team boundaries the domain is about to run. *)
let fork (t : t) (mem : Memory.t) : t =
  { mem;
    global = copy_shadow t.global;
    constant = copy_shadow t.constant;
    shared = new_shadow ();
    local = Array.init (Memory.threads_per_team mem) (fun _ -> new_shadow ());
    no_race = [];
    epoch = t.epoch;
    in_kernel = t.in_kernel;
    in_atomic = false }

let shadow_for t space ~thread =
  match space with
  | Global -> t.global
  | Constant -> t.constant
  | Shared -> t.shared
  | Local -> t.local.(thread)

let set_atomic t b = t.in_atomic <- b

let enter_kernel t =
  t.in_kernel <- true;
  t.in_atomic <- false

let exit_kernel t = t.in_kernel <- false

let barrier_release t = t.epoch <- t.epoch + 1

(* teams execute sequentially: a team boundary is a full synchronization
   point, and shared/local memory is re-initialized per team *)
let team_start t =
  t.epoch <- t.epoch + 1;
  clear_shadow t.shared;
  Array.iter clear_shadow t.local;
  t.no_race <- [];
  t.in_atomic <- false

let register_shared t ?(race_checked = true) ~offset ~size () =
  register t.shared ~offset ~size;
  if not race_checked then t.no_race <- (offset, size) :: t.no_race

let race_exempt t space i =
  space = Shared && List.exists (fun (o, s) -> i >= o && i < o + s) t.no_race

let access ptr space off n =
  { F.a_ptr = ptr; a_space = Memory.space_name space; a_offset = off; a_bytes = n }

let mark_init sh ~offset ~size ~writer ~epoch ~atomic =
  ensure_meta sh (offset + size);
  let v =
    init_bit
    lor (if atomic then atomic_bit else 0)
    lor (writer lsl writer_shift)
    lor (epoch lsl epoch_shift)
  in
  Array.fill sh.meta offset size v

let on_alloc t space ~thread ~offset ~size =
  let sh = shadow_for t space ~thread in
  register sh ~offset ~size;
  if not t.in_kernel then
    mark_init sh ~offset ~size ~writer:host_writer ~epoch:t.epoch ~atomic:false

let on_init t space ~offset ~size =
  mark_init (shadow_for t space ~thread:0) ~offset ~size ~writer:host_writer
    ~epoch:t.epoch ~atomic:false

let on_sp_reset t ~thread ~sp = drop_above t.local.(thread) sp

let check_bounds sh space ~thread ~offset ~ptr ~bytes =
  if not (covered sh offset bytes) then
    F.fail F.Oob
      ~access:(access ptr space offset bytes)
      "%s access of %dB at offset 0x%x outside any live allocation%s"
      (Memory.space_name space) bytes offset
      (match space with Local -> Printf.sprintf " (thread %d)" thread | _ -> "")

let check_aligned space ~offset ~ptr ~bytes =
  if (bytes = 4 || bytes = 8) && offset mod bytes <> 0 then
    F.fail F.Misaligned
      ~access:(access ptr space offset bytes)
      "misaligned %d-byte %s access at offset 0x%x" bytes (Memory.space_name space)
      offset

let on_read t ~thread ~space ~offset ~ptr ~bytes =
  if t.in_kernel then begin
    let sh = shadow_for t space ~thread in
    check_bounds sh space ~thread ~offset ~ptr ~bytes;
    check_aligned space ~offset ~ptr ~bytes;
    for i = offset to offset + bytes - 1 do
      let m = if i < Array.length sh.meta then sh.meta.(i) else 0 in
      if m land init_bit = 0 then
        F.fail F.Uninit_read
          ~access:(access ptr space offset bytes)
          "read of uninitialized %s memory at offset 0x%x (byte %d of %d)"
          (Memory.space_name space) offset (i - offset) bytes;
      if space <> Local then begin
        let w = (m lsr writer_shift) land writer_mask in
        (* reads of atomically-written locations are treated as
           synchronized; a plain cross-thread write in the same epoch is a
           race *)
        if w >= 2 && w - 2 <> thread && m lsr epoch_shift = t.epoch
           && m land atomic_bit = 0
           && not (race_exempt t space i)
        then
          F.fail F.Race
            ~access:(access ptr space offset bytes)
            ~threads:[ w - 2; thread ]
            "data race: thread %d reads %s byte 0x%x written by thread %d with no \
             intervening barrier"
            thread (Memory.space_name space) i (w - 2)
      end
    done
  end

let on_write t ~thread ~space ~offset ~ptr ~src =
  let bytes = Bytes.length src in
  let sh = shadow_for t space ~thread in
  if t.in_kernel then begin
    check_bounds sh space ~thread ~offset ~ptr ~bytes;
    check_aligned space ~offset ~ptr ~bytes;
    if space <> Local then
      for i = offset to offset + bytes - 1 do
        let m = if i < Array.length sh.meta then sh.meta.(i) else 0 in
        let w = (m lsr writer_shift) land writer_mask in
        if w >= 2 && w - 2 <> thread && m lsr epoch_shift = t.epoch
           && not (m land atomic_bit <> 0 && t.in_atomic)
           && (not (race_exempt t space i))
           && Memory.peek_byte t.mem ~thread space i <> Bytes.get src (i - offset)
        then
          F.fail F.Race
            ~access:(access ptr space offset bytes)
            ~threads:[ w - 2; thread ]
            "data race: threads %d and %d write different values to %s byte 0x%x with \
             no intervening barrier"
            (w - 2) thread (Memory.space_name space) i
      done;
    mark_init sh ~offset ~size:bytes ~writer:(thread + 2) ~epoch:t.epoch
      ~atomic:t.in_atomic
  end
  else mark_init sh ~offset ~size:bytes ~writer:host_writer ~epoch:t.epoch ~atomic:false

let watcher (t : t) : Memory.watcher =
  { Memory.w_alloc =
      (fun space ~thread ~offset ~size -> on_alloc t space ~thread ~offset ~size);
    w_init = (fun space ~offset ~size -> on_init t space ~offset ~size);
    w_read =
      (fun ~thread ~space ~offset ~ptr ~bytes ->
        on_read t ~thread ~space ~offset ~ptr ~bytes);
    w_write =
      (fun ~thread ~space ~offset ~ptr ~src -> on_write t ~thread ~space ~offset ~ptr ~src);
    w_sp_reset = (fun ~thread ~sp -> on_sp_reset t ~thread ~sp) }
