(* Structured fault reports for the virtual GPU.

   Every abnormal termination of a kernel — an explicit trap, an engine-
   detected misuse (deadlock, bad pointer, budget blow-up) or a sanitizer
   finding — is described by a [t]: the fault class plus everything the
   engine knows about the faulting site (function, block, instruction
   index, team/warp/lane mask) and, for memory faults, a decode of the
   offending address. [Device.launch] returns [Error of t]; the harness
   records it and degrades gracefully instead of aborting a campaign.

   The execution context is a mutable record *owned by each engine
   instance* and updated as it issues instructions. Layers below the
   engine — [Memory], the sanitizer — raise faults without site
   information; the engine annotates escaping faults with its own
   context at the launch boundary ([annotate]). This keeps the accessor
   signatures free of site plumbing while leaving no module-level
   mutable state, so independent engines can execute concurrently on
   separate domains. *)

type kind =
  | Oob                (* access outside any live allocation / bad pointer *)
  | Misaligned         (* natural alignment violated *)
  | Uninit_read        (* read of never-written memory *)
  | Race               (* conflicting access, no barrier in between *)
  | Divergent_barrier  (* barrier not reached by all live threads *)
  | Assume_violation   (* a declared assumption did not hold *)
  | Unreachable        (* control flow reached `unreachable` *)
  | Trap               (* explicit trap / failed runtime assertion *)
  | Budget_exhausted   (* instruction budget blown (runaway kernel) *)
  | Deadline           (* wall-clock watchdog deadline exceeded *)
  | Invalid            (* other engine-detected misuse of the machine *)
  | Validation         (* differential check against the host reference failed *)
  | Internal           (* host-side crash (compiler/backend exception) captured
                          by the supervisor instead of aborting the campaign *)

let kind_name = function
  | Oob -> "out-of-bounds"
  | Misaligned -> "misaligned"
  | Uninit_read -> "uninit-read"
  | Race -> "race"
  | Divergent_barrier -> "divergent-barrier"
  | Assume_violation -> "assume-violation"
  | Unreachable -> "unreachable"
  | Trap -> "trap"
  | Budget_exhausted -> "budget-exhausted"
  | Deadline -> "deadline"
  | Invalid -> "invalid"
  | Validation -> "validation"
  | Internal -> "internal"

(* every kind, for classification round-trips (journal, property tests) *)
let all_kinds =
  [ Oob; Misaligned; Uninit_read; Race; Divergent_barrier; Assume_violation;
    Unreachable; Trap; Budget_exhausted; Deadline; Invalid; Validation; Internal ]

let kind_of_name n = List.find_opt (fun k -> kind_name k = n) all_kinds

(* decode of the pointer an access faulted on *)
type access = {
  a_ptr : int;       (* the raw encoded pointer *)
  a_space : string;  (* address-space name, or "?" when the tag is bad *)
  a_offset : int;    (* offset within the space *)
  a_bytes : int;     (* access width; 0 when not an access *)
}

type t = {
  f_kind : kind;
  f_msg : string;
  f_fn : string option;      (* function executing at the fault *)
  f_blk : string option;     (* basic block *)
  f_idx : int option;        (* instruction index within the block *)
  f_team : int option;
  f_warp : int option;
  f_lanes : int64;           (* active-lane mask of the faulting strand *)
  f_access : access option;
  f_threads : int list;      (* implicated threads: racing pair, stuck ids *)
}

type report = t

(* --- execution context ------------------------------------------------- *)

(* The execution context is engine-owned (one per engine instance, one
   engine per domain): the engine stamps it on every instruction issue
   and [annotate]s any fault escaping the launch with it. No module
   global remains, so engines on separate domains cannot observe each
   other's sites. *)
type ctx = {
  mutable c_site : bool;     (* site fields valid *)
  mutable c_strand : bool;   (* strand fields valid *)
  mutable c_fn : string;
  mutable c_blk : string;
  mutable c_idx : int;
  mutable c_team : int;
  mutable c_warp : int;
  mutable c_mask : bool array;
}

let make_ctx () =
  { c_site = false; c_strand = false; c_fn = ""; c_blk = ""; c_idx = 0;
    c_team = 0; c_warp = 0; c_mask = [||] }

let set_site ctx ~fn ~blk ~idx =
  ctx.c_site <- true;
  ctx.c_fn <- fn;
  ctx.c_blk <- blk;
  ctx.c_idx <- idx

let set_strand ctx ~team ~warp ~mask =
  ctx.c_strand <- true;
  ctx.c_team <- team;
  ctx.c_warp <- warp;
  ctx.c_mask <- mask

let mask_bits (m : bool array) : int64 =
  let v = ref 0L in
  Array.iteri (fun i b -> if b && i < 64 then v := Int64.logor !v (Int64.shift_left 1L i)) m;
  !v

let make ?access ?(threads = []) kind msg : t =
  { f_kind = kind;
    f_msg = msg;
    f_fn = None;
    f_blk = None;
    f_idx = None;
    f_team = None;
    f_warp = None;
    f_lanes = 0L;
    f_access = access;
    f_threads = threads }

(* Fill in site/strand fields a raw fault is missing from the engine's
   context. Idempotent, and never overwrites fields already present, so
   faults constructed with explicit context survive unchanged. *)
let annotate ctx (f : t) : t =
  { f with
    f_fn = (if f.f_fn = None && ctx.c_site then Some ctx.c_fn else f.f_fn);
    f_blk = (if f.f_blk = None && ctx.c_site then Some ctx.c_blk else f.f_blk);
    f_idx = (if f.f_idx = None && ctx.c_site then Some ctx.c_idx else f.f_idx);
    f_team = (if f.f_team = None && ctx.c_strand then Some ctx.c_team else f.f_team);
    f_warp = (if f.f_warp = None && ctx.c_strand then Some ctx.c_warp else f.f_warp);
    f_lanes =
      (if f.f_lanes = 0L && ctx.c_strand then mask_bits ctx.c_mask else f.f_lanes) }

exception Kernel_trap of t
exception Kernel_fault of t

(* [fail] raises an engine/sanitizer-detected fault; [trap] raises the
   trap flavor (explicit traps, failed assertions, violated assumptions).
   The distinction mirrors the seed's two exceptions and is preserved in
   [is_trap] for callers that told them apart. *)
let fail ?access ?threads kind fmt =
  Format.kasprintf (fun s -> raise (Kernel_fault (make ?access ?threads kind s))) fmt

let trap ?access ?threads kind fmt =
  Format.kasprintf (fun s -> raise (Kernel_trap (make ?access ?threads kind s))) fmt

let is_trap t =
  match t.f_kind with Trap | Assume_violation | Unreachable -> true | _ -> false

(* --- rendering ---------------------------------------------------------- *)

let pp_access ppf a =
  if a.a_bytes > 0 then
    Fmt.pf ppf "%s+0x%x (%dB, ptr 0x%x)" a.a_space a.a_offset a.a_bytes a.a_ptr
  else Fmt.pf ppf "%s+0x%x (ptr 0x%x)" a.a_space a.a_offset a.a_ptr

(* stable one-line rendering, suitable for CSV cells and test matching *)
let to_line t =
  let b = Buffer.create 96 in
  Buffer.add_string b ("[" ^ kind_name t.f_kind ^ "] " ^ t.f_msg);
  (match (t.f_fn, t.f_blk, t.f_idx) with
  | Some fn, Some blk, Some idx ->
    Buffer.add_string b (Printf.sprintf " @ %s:%s:%d" fn blk idx)
  | Some fn, _, _ -> Buffer.add_string b (" @ " ^ fn)
  | _ -> ());
  (match (t.f_team, t.f_warp) with
  | Some team, Some warp ->
    Buffer.add_string b (Printf.sprintf " [team %d warp %d lanes 0x%Lx]" team warp t.f_lanes)
  | _ -> ());
  (match t.f_access with
  | Some a -> Buffer.add_string b (Fmt.str " addr=%a" pp_access a)
  | None -> ());
  (match t.f_threads with
  | [] -> ()
  | ts ->
    Buffer.add_string b
      (" threads=" ^ String.concat "," (List.map string_of_int ts)));
  Buffer.contents b

(* multi-line pretty report *)
let pp_report ppf t =
  Fmt.pf ppf "kernel fault: %s@.  %s@." (kind_name t.f_kind) t.f_msg;
  (match (t.f_fn, t.f_blk, t.f_idx) with
  | Some fn, Some blk, Some idx ->
    Fmt.pf ppf "  at: function %s, block %s, instruction %d@." fn blk idx
  | Some fn, _, _ -> Fmt.pf ppf "  at: function %s@." fn
  | _ -> ());
  (match (t.f_team, t.f_warp) with
  | Some team, Some warp ->
    Fmt.pf ppf "  strand: team %d, warp %d, lane mask 0x%Lx@." team warp t.f_lanes
  | _ -> ());
  (match t.f_access with
  | Some a -> Fmt.pf ppf "  address: %a@." pp_access a
  | None -> ());
  match t.f_threads with
  | [] -> ()
  | ts ->
    Fmt.pf ppf "  threads: %a@." Fmt.(list ~sep:(Fmt.any ", ") int) ts

(* default printer: the one-line form (printf call sites expect one line) *)
let pp ppf t = Fmt.string ppf (to_line t)
