(* Cycle cost model and occupancy calculator.

   The absolute numbers are not calibrated against any real GPU; what
   matters for the reproduction is the *relative* sensitivity: extra
   instructions, barriers, memory traffic, register pressure and shared
   memory consumption must all cost something, because those are exactly
   the quantities the paper's co-designed optimizations reduce. *)

type params = {
  warp_size : int;
  n_sm : int;                  (* streaming multiprocessors *)
  max_threads_per_sm : int;
  max_teams_per_sm : int;
  regfile_per_sm : int;        (* registers *)
  shared_per_sm : int;         (* bytes *)
  (* instruction costs, in cycles per warp issue *)
  c_alu : int;
  c_falu : int;
  c_special : int;             (* sqrt/exp/log/sin/cos *)
  c_branch : int;
  c_shared_access : int;
  c_local_access : int;        (* per-thread stack / L1 local *)
  c_global_segment : int;      (* per 128-byte segment touched by a warp *)
  c_barrier : int;
  c_call : int;
  c_ret : int;
  c_atomic_shared : int;
  c_atomic_global : int;
  c_malloc : int;
  c_alloca : int;
  segment_bytes : int;
}

let default =
  { warp_size = 32;
    n_sm = 8;
    max_threads_per_sm = 2048;
    max_teams_per_sm = 32;
    (* scaled so that ~16 registers per thread fill the file at full
       thread residency: register pressure above that costs occupancy *)
    regfile_per_sm = 32768;
    shared_per_sm = 100 * 1024;
    c_alu = 1;
    c_falu = 2;
    c_special = 8;
    c_branch = 2;
    c_shared_access = 4;
    c_local_access = 4;
    c_global_segment = 40;
    c_barrier = 60;
    c_call = 12;
    c_ret = 6;
    c_atomic_shared = 12;
    c_atomic_global = 80;
    c_malloc = 600;
    c_alloca = 2;
    segment_bytes = 128 }

(* Issue cost of a unary op, and whether it runs on the special-function
   unit (those are the profitable targets for uniform-strand
   scalarization in the engine). *)
let unop_cost p (op : Ozo_ir.Types.unop) =
  match op with
  | Not | Sitofp | Fptosi | Zext32to64 | Trunc64to32 -> p.c_alu
  | Fneg | Fabs -> p.c_falu
  | Fsqrt | Fexp | Flog | Fsin | Fcos -> p.c_special

let is_special_unop (op : Ozo_ir.Types.unop) =
  match op with
  | Fsqrt | Fexp | Flog | Fsin | Fcos -> true
  | Not | Sitofp | Fptosi | Zext32to64 | Trunc64to32 | Fneg | Fabs -> false

(* Number of team instances that fit on one SM given the kernel's resource
   demands. Mirrors the CUDA occupancy calculation: the binding constraint
   is whichever of threads, registers or shared memory runs out first. *)
let teams_per_sm p ~threads_per_team ~regs_per_thread ~shared_per_team =
  let by_threads = p.max_threads_per_sm / max 1 threads_per_team in
  let by_regs = p.regfile_per_sm / max 1 (regs_per_thread * threads_per_team) in
  let by_shared =
    if shared_per_team <= 0 then p.max_teams_per_sm else p.shared_per_sm / shared_per_team
  in
  max 1 (min (min by_threads by_regs) (min by_shared p.max_teams_per_sm))

type occupancy = {
  o_teams_per_sm : int;
  o_occupancy : float; (* resident threads / max threads *)
}

let occupancy p ~threads_per_team ~regs_per_thread ~shared_per_team =
  let tps = teams_per_sm p ~threads_per_team ~regs_per_thread ~shared_per_team in
  { o_teams_per_sm = tps;
    o_occupancy =
      float_of_int (tps * threads_per_team) /. float_of_int p.max_threads_per_sm }

(* Kernel makespan estimate. [team_cycles] are the simulated cycle counts
   of every team. Teams are distributed over SMs in waves of
   [n_sm * teams_per_sm] concurrent teams; each wave costs the mean team
   duration (the simulator interleaves warps within a team; across teams
   we assume load balance, which holds for the regular proxy kernels).

   Occupancy additionally controls *latency hiding* within a wave: an SM
   with fewer resident threads has fewer warps to switch to while memory
   operations are in flight. The throughput factor (0.5 + 0.5*occupancy)
   applies to the *memory* share of the cycles ([mem_cycles], total over
   all teams): compute-bound kernels tolerate low occupancy (the paper's
   RSBench), bandwidth-bound ones do not (XSBench). This is the mechanism
   through which the paper's register-count and shared-memory reductions
   (Fig. 11) become kernel-time improvements. *)
let kernel_time p ~occupancy:o ~team_cycles ~mem_cycles =
  let n_teams = List.length team_cycles in
  if n_teams = 0 then 0.0
  else
    let nt = float_of_int n_teams in
    let total = List.fold_left ( + ) 0 team_cycles in
    let mean = float_of_int total /. nt in
    let mean_mem = Float.min mean (float_of_int mem_cycles /. nt) in
    let concurrent = p.n_sm * o.o_teams_per_sm in
    let waves = (n_teams + concurrent - 1) / concurrent in
    let hiding = 0.5 +. (0.5 *. o.o_occupancy) in
    float_of_int waves *. (mean -. mean_mem +. (mean_mem /. hiding))
