(* Public virtual-GPU API: load a module, allocate device buffers, copy
   data, launch kernels and read back metrics. This plays the role of the
   CUDA driver + Nsight Compute in the paper's evaluation setup. *)

open Ozo_ir.Types

type t = {
  d_module : modul;
  d_params : Cost.params;
  d_mem : Memory.t;
  d_gaddr : (string, int) Hashtbl.t;
  d_shared_globals : (global * int) list;
  d_static_shared : int; (* bytes of static shared memory per team *)
  d_san : Sanitizer.t option; (* SIMT sanitizer, when created with ~sanitize *)
  d_exec : Engine.exec; (* executor: IR interpreter or threaded code *)
  d_plan : (string * Engine.reg_plan) list; (* rename plans for Exec_vm *)
  mutable d_last : Engine.result option;
}

type buffer = { buf_ptr : int; buf_bytes : int }

(* structured fault report; [Fault.is_trap] distinguishes the historical
   Trap (explicit trap / assertion / assumption) vs Fault classification *)
type error = Fault.t

let pp_error = Fault.pp

let create ?(params = Cost.default) ?(sanitize = false)
    ?(exec = Engine.Exec_ir) ?(plan = []) (m : modul) : t =
  let mem = Memory.create ~threads_per_team:params.max_threads_per_sm in
  let san = if sanitize then Some (Sanitizer.create mem) else None in
  (match san with Some s -> Memory.set_watcher mem (Sanitizer.watcher s) | None -> ());
  let gaddr, shared_globals, shared_size = Engine.assign_addresses mem m in
  mem.Memory.shared_size <- shared_size;
  { d_module = m; d_params = params; d_mem = mem; d_gaddr = gaddr;
    d_shared_globals = shared_globals; d_static_shared = shared_size; d_san = san;
    d_exec = exec; d_plan = plan; d_last = None }

let sanitized t = t.d_san <> None

(* Allocate a device buffer in global memory. *)
let alloc t bytes = { buf_ptr = Memory.alloc_global t.d_mem bytes; buf_bytes = bytes }

let alloc_const t bytes =
  { buf_ptr = Memory.alloc_const t.d_mem bytes; buf_bytes = bytes }

let ptr b = b.buf_ptr

let write_i64s t buf vals =
  List.iteri
    (fun i v -> Memory.store_int t.d_mem ~thread:0 (buf.buf_ptr + (i * 8)) I64 v)
    vals

let write_f64s t buf vals =
  List.iteri
    (fun i v -> Memory.store_float t.d_mem ~thread:0 (buf.buf_ptr + (i * 8)) v)
    vals

let write_i64_array t buf vals =
  Array.iteri
    (fun i v -> Memory.store_int t.d_mem ~thread:0 (buf.buf_ptr + (i * 8)) I64 v)
    vals

let write_f64_array t buf vals =
  Array.iteri
    (fun i v -> Memory.store_float t.d_mem ~thread:0 (buf.buf_ptr + (i * 8)) v)
    vals

let read_i64 t buf i = Memory.load_int t.d_mem ~thread:0 (buf.buf_ptr + (i * 8)) I64
let read_f64 t buf i = Memory.load_float t.d_mem ~thread:0 (buf.buf_ptr + (i * 8))

let read_i64_array t buf n = Array.init n (read_i64 t buf)
let read_f64_array t buf n = Array.init n (read_f64 t buf)

let static_shared_bytes t = t.d_static_shared

(* Encoded device address of a module-level global, when it exists.
   Differential harnesses (the IR fuzzer) use this to read back
   accumulator globals that are not reachable through any buffer. *)
let global_ptr t name = Hashtbl.find_opt t.d_gaddr name

let read_global_i64 t name =
  Option.map (fun ptr -> Memory.load_int t.d_mem ~thread:0 ptr Ozo_ir.Types.I64)
    (global_ptr t name)

(* Launch-time options, replacing the old optional-flag soup
   (?check_assumes ?trace ?budget ?inject). Build one with record update
   on [default]:
     Device.launch ~opts:{ Device.Launch_opts.default with check_assumes = true } ...
   Note [sanitize] stays on [create]: the sanitizer's shadow state must
   watch allocations made while the host sets up buffers, before any
   launch exists. *)
module Launch_opts = struct
  type t = {
    check_assumes : bool; (* validate __omp_assume facts at runtime *)
    debug_print : bool; (* print Debug_print instructions as they execute *)
    budget : int; (* per-team instruction-issue budget (runaway-kernel guard) *)
    inject : Faultinject.spec option; (* seeded fault injection *)
    trace : Ozo_obs.Trace.ctx; (* span/event destination; Trace.null = off *)
    profile : bool; (* collect the per-block hot-spot profile *)
    watchdog : (unit -> bool) option;
    (* wall-clock watchdog polled by the engine scheduler: returns true
       once the launch deadline has passed, turning a wedged launch into
       a structured [Fault.Deadline] error instead of a hung campaign.
       Polled per domain; the first deadline wins deterministically (the
       fault on the lowest team id is the one reported). *)
    domains : int;
    (* OCaml domains to shard team execution over; 1 = the exact
       sequential path. Results are bit-identical at every count; capped
       at the team count *)
  }

  let default =
    { check_assumes = false; debug_print = false; budget = 400_000_000;
      inject = None; trace = Ozo_obs.Trace.null; profile = false;
      watchdog = None; domains = 1 }
end

let launch ?(opts = Launch_opts.default) t ~teams ~threads args :
    (Engine.result, error) Result.t =
  let l =
    { Engine.l_teams = teams; l_threads = threads; l_args = args;
      l_check_assumes = opts.Launch_opts.check_assumes;
      l_debug = opts.Launch_opts.debug_print }
  in
  let trace = opts.Launch_opts.trace in
  (match t.d_san with Some s -> Sanitizer.enter_kernel s | None -> ());
  Ozo_obs.Trace.begin_span trace ~cat:"launch"
    ~args:
      [ ("teams", Ozo_obs.Trace.Int teams);
        ("threads", Ozo_obs.Trace.Int threads) ]
    "launch";
  let finish () =
    match t.d_san with Some s -> Sanitizer.exit_kernel s | None -> ()
  in
  match
    Engine.run ~budget:opts.Launch_opts.budget ~params:t.d_params ?san:t.d_san
      ?inject:opts.Launch_opts.inject ~trace ~profile:opts.Launch_opts.profile
      ?watchdog:opts.Launch_opts.watchdog ~domains:opts.Launch_opts.domains
      ~exec:t.d_exec ~plan:t.d_plan t.d_module ~mem:t.d_mem ~gaddr:t.d_gaddr
      ~shared_globals:t.d_shared_globals l
  with
  | r ->
    Ozo_obs.Trace.end_span trace ();
    finish ();
    t.d_last <- Some r;
    Ok r
  | exception Fault.Kernel_trap f ->
    Ozo_obs.Trace.end_span trace
      ~args:[ ("fault", Ozo_obs.Trace.Str (Fault.kind_name f.Fault.f_kind)) ]
      ();
    finish ();
    Error f
  | exception Fault.Kernel_fault f ->
    Ozo_obs.Trace.end_span trace
      ~args:[ ("fault", Ozo_obs.Trace.Str (Fault.kind_name f.Fault.f_kind)) ]
      ();
    finish ();
    Error f

let last_result t = t.d_last

(* Kernel-time estimate for the last launch, given the register estimate
   of the kernel (from IR liveness) and its shared-memory footprint. *)
let kernel_time_cycles t ~threads ~regs_per_thread =
  match t.d_last with
  | None -> 0.0
  | Some r ->
    let occ =
      Cost.occupancy t.d_params ~threads_per_team:threads ~regs_per_thread
        ~shared_per_team:t.d_static_shared
    in
    Cost.kernel_time t.d_params ~occupancy:occ
      ~team_cycles:(List.map (fun c -> c.Counters.cycles) r.Engine.r_counters)
      ~mem_cycles:(Counters.memory_cycles t.d_params r.Engine.r_total)
