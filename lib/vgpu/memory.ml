(* Byte-addressed memory for the virtual GPU.

   Pointers are 63-bit integers carrying the address space in the top tag
   bits: [tag << tag_shift | offset]. Global and constant memories are
   device-wide; shared memory is one instance per team (each engine
   executes its teams sequentially, so a single buffer per engine is
   re-initialized per team); local memory is a per-thread stack.

   [fork] derives a per-domain view for the parallel engine: the global
   and constant buffers are physically shared (teams address disjoint
   allocations by construction, so concurrent byte access is
   well-defined), while shared/local memory — per-team by definition —
   is private to the fork.

   All accesses funnel through [read_bytes]/[write_bytes]; an optional
   [watcher] observes allocations, initializations and accesses so the
   SIMT sanitizer can maintain shadow state without this module knowing
   anything about it. Invalid pointers raise structured [Fault.t] reports
   instead of untyped errors. *)

open Ozo_ir.Types

let tag_shift = 44
let tag_global = 1
let tag_shared = 2
let tag_local = 3
let tag_const = 4

let tag_of_space = function
  | Global -> tag_global
  | Shared -> tag_shared
  | Local -> tag_local
  | Constant -> tag_const

let space_name = function
  | Global -> "global"
  | Shared -> "shared"
  | Local -> "local"
  | Constant -> "constant"

let encode space offset =
  (* an offset that spills into the tag bits would silently change the
     address space of the pointer; fault structurally instead *)
  if offset < 0 || offset lsr tag_shift <> 0 then
    Fault.fail Fault.Oob
      ~access:{ Fault.a_ptr = offset; a_space = space_name space;
                a_offset = offset; a_bytes = 0 }
      "offset 0x%x overflows the %s address space (max 0x%x)" offset
      (space_name space)
      ((1 lsl tag_shift) - 1)
  else (tag_of_space space lsl tag_shift) lor offset

let decode ptr =
  let tag = ptr lsr tag_shift in
  let offset = ptr land ((1 lsl tag_shift) - 1) in
  let space =
    if tag = tag_global then Global
    else if tag = tag_shared then Shared
    else if tag = tag_local then Local
    else if tag = tag_const then Constant
    else
      Fault.fail Fault.Oob
        ~access:{ Fault.a_ptr = ptr; a_space = "?"; a_offset = offset; a_bytes = 0 }
        "invalid pointer 0x%x (bad address-space tag %d)" ptr tag
  in
  (space, offset)

(* Split decode for callers that cache the two halves separately (the
   engine's coalescing scratch); same faulting behaviour as [decode]. *)
let decode_off ptr = ptr land ((1 lsl tag_shift) - 1)

let decode_space ptr =
  let tag = ptr lsr tag_shift in
  if tag = tag_global then Global
  else if tag = tag_shared then Shared
  else if tag = tag_local then Local
  else if tag = tag_const then Constant
  else
    Fault.fail Fault.Oob
      ~access:{ Fault.a_ptr = ptr; a_space = "?"; a_offset = decode_off ptr;
                a_bytes = 0 }
      "invalid pointer 0x%x (bad address-space tag %d)" ptr tag

let null = 0

type buf = { mutable data : Bytes.t; mutable used : int }

let create_buf initial = { data = Bytes.make initial '\000'; used = 0 }

(* Hard ceiling on any one device buffer: a corrupted pointer may carry an
   offset up to 2^44, which must fault instead of asking the host OS for
   terabytes. Well above every proxy's working set. *)
let max_buf_bytes = 1 lsl 28

let ensure buf size =
  if size > max_buf_bytes then
    Fault.fail Fault.Oob "access at 0x%x exceeds the device memory limit (0x%x bytes)"
      size max_buf_bytes;
  if size > Bytes.length buf.data then begin
    let cap = min max_buf_bytes (max size (2 * Bytes.length buf.data)) in
    let data = Bytes.make cap '\000' in
    Bytes.blit buf.data 0 data 0 (Bytes.length buf.data);
    buf.data <- data
  end

(* Bump allocation; [free] is a no-op (the device heap is released when the
   device is destroyed, like a simple arena allocator). *)
let bump buf size =
  let aligned = (buf.used + 7) land lnot 7 in
  ensure buf (aligned + size);
  buf.used <- aligned + size;
  aligned

(* Observer interface for the sanitizer's shadow state. [w_read]/[w_write]
   run before the access is performed (so a write observer still sees the
   old contents); [w_write] additionally receives the bytes about to be
   written. [w_alloc] announces a new live allocation, [w_init] a
   host/loader-side initialization of a byte range, [w_sp_reset] a
   thread-local stack-pointer rewind (allocas above it die). *)
type watcher = {
  w_alloc : addrspace -> thread:int -> offset:int -> size:int -> unit;
  w_init : addrspace -> offset:int -> size:int -> unit;
  w_read : thread:int -> space:addrspace -> offset:int -> ptr:int -> bytes:int -> unit;
  w_write : thread:int -> space:addrspace -> offset:int -> ptr:int -> src:Bytes.t -> unit;
  w_sp_reset : thread:int -> sp:int -> unit;
}

type t = {
  global : buf;
  constant : buf;
  shared : buf; (* current team's instance *)
  mutable shared_size : int; (* static shared allocation per team *)
  locals : Bytes.t array; (* per thread in the current team *)
  local_sp : int array;   (* per-thread stack pointer *)
  mutable watch : watcher option;
}

let local_stack_bytes = 16 * 1024

(* Thread-local stacks materialize on first touch: a device sized for
   2048 resident threads would otherwise pay 32MB of zeroed buffers at
   creation even though a typical launch touches at most a block's worth.
   An untouched stack reads as zeros either way, so laziness is
   unobservable. *)
let create ~threads_per_team =
  { global = create_buf (1 lsl 16);
    constant = create_buf (1 lsl 12);
    shared = create_buf (1 lsl 12);
    shared_size = 0;
    locals = Array.make threads_per_team Bytes.empty;
    local_sp = Array.make threads_per_team 0;
    watch = None }

let local_buf t thread =
  let b = t.locals.(thread) in
  if Bytes.length b <> 0 then b
  else begin
    let nb = Bytes.make local_stack_bytes '\000' in
    t.locals.(thread) <- nb;
    nb
  end

let set_watcher t w = t.watch <- Some w
let has_watcher t = t.watch <> None
let threads_per_team t = Array.length t.locals

let buf_of t = function
  | Global -> t.global
  | Constant -> t.constant
  | Shared -> t.shared
  | Local -> Fault.fail Fault.Invalid "local memory access requires a thread index"

let oob_access ptr space off n =
  { Fault.a_ptr = ptr; a_space = space_name space; a_offset = off; a_bytes = n }

let check_local_bounds ptr off n =
  if off + n > local_stack_bytes then
    Fault.fail Fault.Oob
      ~access:(oob_access ptr Local off n)
      "local access at 0x%x (%dB) beyond the %dB thread stack" off n local_stack_bytes

(* sanitizer support: current content of one byte, without growing the
   buffer ([ensure] has not necessarily run for this offset yet) *)
let peek_byte t ~thread space off =
  match space with
  | Local ->
    let b = t.locals.(thread) in
    if off < Bytes.length b then Bytes.get b off else '\000'
  | _ ->
    let b = buf_of t space in
    if off < Bytes.length b.data then Bytes.get b.data off else '\000'

(* Raw accessors. Local space needs the in-team thread index. *)

let read_bytes t ~thread ptr n =
  let space, off = decode ptr in
  (match t.watch with
  | Some w -> w.w_read ~thread ~space ~offset:off ~ptr ~bytes:n
  | None -> ());
  match space with
  | Local ->
    check_local_bounds ptr off n;
    Bytes.sub (local_buf t thread) off n
  | _ ->
    let b = buf_of t space in
    ensure b (off + n);
    Bytes.sub b.data off n

let write_bytes t ~thread ptr src =
  let space, off = decode ptr in
  let n = Bytes.length src in
  (match t.watch with
  | Some w -> w.w_write ~thread ~space ~offset:off ~ptr ~src
  | None -> ());
  match space with
  | Local ->
    check_local_bounds ptr off n;
    Bytes.blit src 0 (local_buf t thread) off n
  | Constant ->
    Fault.fail Fault.Invalid
      ~access:(oob_access ptr Constant off n)
      "store to read-only constant memory at 0x%x" ptr
  | _ ->
    let b = buf_of t space in
    ensure b (off + n);
    Bytes.blit src 0 b.data off n

let load_int t ~thread ptr = function
  | I1 -> Char.code (Bytes.get (read_bytes t ~thread ptr 1) 0) land 1
  | I32 -> Int32.to_int (Bytes.get_int32_le (read_bytes t ~thread ptr 4) 0)
  | I64 | Ptr _ -> Int64.to_int (Bytes.get_int64_le (read_bytes t ~thread ptr 8) 0)
  | F64 -> Fault.fail Fault.Invalid "integer load of f64"

let store_int t ~thread ptr typ v =
  let b =
    match typ with
    | I1 -> Bytes.make 1 (Char.chr (v land 1))
    | I32 ->
      let b = Bytes.create 4 in
      Bytes.set_int32_le b 0 (Int32.of_int v);
      b
    | I64 | Ptr _ ->
      let b = Bytes.create 8 in
      Bytes.set_int64_le b 0 (Int64.of_int v);
      b
    | F64 -> Fault.fail Fault.Invalid "integer store of f64"
  in
  write_bytes t ~thread ptr b

let load_float t ~thread ptr =
  Int64.float_of_bits (Bytes.get_int64_le (read_bytes t ~thread ptr 8) 0)

let store_float t ~thread ptr v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.bits_of_float v);
  write_bytes t ~thread ptr b

(* Allocation-free accessors for the engine's hot path. Callers pass the
   pre-decoded [space]/[off] (the engine caches [decode] results in its
   coalescing scratch) plus the original [ptr] for fault messages.

   LEGAL ONLY when no watcher is installed — they skip the watcher hooks
   that [read_bytes]/[write_bytes] run, so a sanitized run must use the
   byte-string accessors above. Fault behaviour is otherwise identical:
   local bounds checks, the constant-store fault and buffer growth all
   mirror the slow path.

   The 64/32-bit raw accessors are compiler primitives rather than the
   [Bytes.get_int64_le] wrappers: on a non-flambda compiler the wrappers
   are real calls that box their int64 on every access, which is most of
   the interpreter's allocation. The unaligned primitives are
   native-endian; bounds are guaranteed by [ensure]/[check_local_bounds]
   at every call site, and the little-endian assumption (matching the
   seed's _le accessors) is asserted at engine start via [check_host]. *)
external get64 : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external set64 : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"
external get32 : Bytes.t -> int -> int32 = "%caml_bytes_get32u"
external set32 : Bytes.t -> int -> int32 -> unit = "%caml_bytes_set32u"

let check_host () =
  if Sys.big_endian then
    Fault.fail Fault.Invalid "the fast-path memory accessors require a little-endian host"

let fast_load_int t ~thread ~space ~off ~ptr typ =
  match space with
  | Local -> (
    let data = local_buf t thread in
    match typ with
    | I1 ->
      check_local_bounds ptr off 1;
      Char.code (Bytes.get data off) land 1
    | I32 ->
      check_local_bounds ptr off 4;
      Int32.to_int (get32 data off)
    | I64 | Ptr _ ->
      check_local_bounds ptr off 8;
      Int64.to_int (get64 data off)
    | F64 -> Fault.fail Fault.Invalid "integer load of f64")
  | _ -> (
    let b = buf_of t space in
    match typ with
    | I1 ->
      ensure b (off + 1);
      Char.code (Bytes.get b.data off) land 1
    | I32 ->
      ensure b (off + 4);
      Int32.to_int (get32 b.data off)
    | I64 | Ptr _ ->
      ensure b (off + 8);
      Int64.to_int (get64 b.data off)
    | F64 -> Fault.fail Fault.Invalid "integer load of f64")

(* The float variants read into / write from a caller-provided float
   array slot instead of returning the value: a float returned (or
   passed) across a module boundary is boxed on every call, while an
   unboxed-array element write is free. *)
let fast_load_float_at t ~thread ~space ~off ~ptr (dst : float array) i =
  match space with
  | Local ->
    check_local_bounds ptr off 8;
    dst.(i) <- Int64.float_of_bits (get64 (local_buf t thread) off)
  | _ ->
    let b = buf_of t space in
    ensure b (off + 8);
    dst.(i) <- Int64.float_of_bits (get64 b.data off)

let fast_store_int t ~thread ~space ~off ~ptr typ v =
  match space with
  | Local -> (
    let data = local_buf t thread in
    match typ with
    | I1 ->
      check_local_bounds ptr off 1;
      Bytes.set data off (Char.chr (v land 1))
    | I32 ->
      check_local_bounds ptr off 4;
      set32 data off (Int32.of_int v)
    | I64 | Ptr _ ->
      check_local_bounds ptr off 8;
      set64 data off (Int64.of_int v)
    | F64 -> Fault.fail Fault.Invalid "integer store of f64")
  | Constant ->
    let n = match typ with I1 -> 1 | I32 -> 4 | _ -> 8 in
    Fault.fail Fault.Invalid
      ~access:(oob_access ptr Constant off n)
      "store to read-only constant memory at 0x%x" ptr
  | _ -> (
    let b = buf_of t space in
    match typ with
    | I1 ->
      ensure b (off + 1);
      Bytes.set b.data off (Char.chr (v land 1))
    | I32 ->
      ensure b (off + 4);
      set32 b.data off (Int32.of_int v)
    | I64 | Ptr _ ->
      ensure b (off + 8);
      set64 b.data off (Int64.of_int v)
    | F64 -> Fault.fail Fault.Invalid "integer store of f64")

let fast_store_float_from t ~thread ~space ~off ~ptr (src : float array) i =
  match space with
  | Local ->
    check_local_bounds ptr off 8;
    set64 (local_buf t thread) off (Int64.bits_of_float src.(i))
  | Constant ->
    Fault.fail Fault.Invalid
      ~access:(oob_access ptr Constant off 8)
      "store to read-only constant memory at 0x%x" ptr
  | _ ->
    let b = buf_of t space in
    ensure b (off + 8);
    set64 b.data off (Int64.bits_of_float src.(i))

(* Initialize a global variable's storage at [offset] in its space. *)
let init_global t g offset =
  let write_words buf ws =
    ensure buf (offset + g.g_size);
    List.iteri
      (fun i w ->
        if (i * 8) + 8 <= g.g_size then Bytes.set_int64_le buf.data (offset + (i * 8)) w)
      ws
  in
  match g.g_space with
  | Local -> Fault.fail Fault.Invalid "global %s in local address space" g.g_name
  | space -> (
    let buf = buf_of t space in
    ensure buf (offset + g.g_size);
    (match g.g_init with
    | No_init -> ()
    | Zero_init -> Bytes.fill buf.data offset g.g_size '\000'
    | Words_init ws -> write_words buf ws);
    match (t.watch, g.g_init) with
    | Some w, (Zero_init | Words_init _) -> w.w_init space ~offset ~size:g.g_size
    | _ -> ())

(* Reset per-team state before a team starts executing. *)
let reset_team t ~shared_globals =
  Bytes.fill t.shared.data 0 (Bytes.length t.shared.data) '\000';
  List.iter (fun (g, off) -> init_global t g off) shared_globals;
  Array.fill t.local_sp 0 (Array.length t.local_sp) 0

let alloca t ~thread size =
  let sp = t.local_sp.(thread) in
  let aligned = (sp + 7) land lnot 7 in
  if aligned + size > local_stack_bytes then
    Fault.fail Fault.Oob
      ~access:(oob_access (encode Local aligned) Local aligned size)
      "thread-local stack overflow (alloca of %dB at sp 0x%x, stack is %dB)" size sp
      local_stack_bytes;
  t.local_sp.(thread) <- aligned + size;
  (match t.watch with
  | Some w -> w.w_alloc Local ~thread ~offset:aligned ~size
  | None -> ());
  encode Local aligned

let local_sp t ~thread = t.local_sp.(thread)

let set_local_sp t ~thread sp =
  t.local_sp.(thread) <- sp;
  match t.watch with Some w -> w.w_sp_reset ~thread ~sp | None -> ()

let alloc_in t space buf size =
  let off = bump buf size in
  (match t.watch with
  | Some w -> w.w_alloc space ~thread:0 ~offset:off ~size
  | None -> ());
  encode space off

let malloc t size = alloc_in t Global t.global size
let alloc_const t size = alloc_in t Constant t.constant size
let alloc_global t size = alloc_in t Global t.global size

(* --- domain-parallel support ------------------------------------------- *)

(* Reserve a contiguous per-team kernel-malloc arena above the host
   allocations: [teams * cap] bytes, base aligned to a 128-byte segment
   boundary so every team window starts at the same phase of the
   coalescing segmentation regardless of prior host allocations. The
   region is claimed ([used] advances) and pre-grown, so no [ensure]
   growth can happen concurrently during team execution for in-bounds
   programs. Returns the base offset. *)
let reserve_arena t ~teams ~cap =
  let base = (t.global.used + 127) land lnot 127 in
  ensure t.global (base + (teams * cap));
  t.global.used <- base + (teams * cap);
  base

(* Announce a kernel-side allocation carved out of the arena: fires the
   sanitizer's allocation hook (which also clears stale shadow state for
   the range) and returns the encoded pointer. The bump itself is done
   by the engine's per-team cursor, not here. *)
let mark_alloc t space ~offset ~size =
  (match t.watch with
  | Some w -> w.w_alloc space ~thread:0 ~offset ~size
  | None -> ());
  encode space offset

(* Per-domain view for the parallel engine: global/constant buffers are
   the parent's (physically shared — teams touch disjoint allocations by
   construction, and [reserve_arena] pre-grows the global buffer so the
   backing [Bytes.t] is not replaced mid-run); shared and local memory
   are fresh per-fork instances since they are per-team state. The fork
   starts with no watcher — a sanitizing launch installs each domain's
   own forked sanitizer. *)
let fork t =
  { global = t.global;
    constant = t.constant;
    shared = create_buf (Bytes.length t.shared.data);
    shared_size = t.shared_size;
    locals = Array.make (Array.length t.locals) Bytes.empty;
    local_sp = Array.make (Array.length t.local_sp) 0;
    watch = None }
