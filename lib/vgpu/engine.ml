(* SIMT execution engine.

   Execution model: each warp starts as a single *strand* — an active-lane
   mask plus a call stack. A divergent branch splits the strand into
   children and (when an immediate post-dominator exists) registers a join
   at the reconvergence point; children that reach the join die and, once
   all have arrived, a merged strand resumes. This is a deterministic
   version of post-Volta "independent thread scheduling": sibling strands
   can make progress while one waits at a barrier, which the OpenMP
   generic-mode state machine (main thread vs. worker threads in the same
   warp) requires.

   Teams are independent by construction (team-wide barriers only,
   per-team shared memory) and execute deterministically. With
   [~domains:1] they run sequentially on the calling domain; with
   [~domains:n] team ids are statically chunked over n OCaml domains
   (contiguous balanced ranges, [Pool.chunk]), each domain owning a
   complete engine instance — its own decode caches, scratch, memory
   view and fault context — and executing its teams in ascending order.
   Per-team counters, faults and profile data are merged in team order
   at readback, so results are bit-identical to the sequential engine at
   every domain count. Within a team, runnable strands are scheduled in
   creation order, each running until it blocks at a barrier, dies, or
   splits. Costs are charged per strand instruction issue (so divergence
   costs extra issues) plus per-access memory costs with global-memory
   coalescing.

   Interpretation strategy: functions are decoded once per engine into a
   flat pre-resolved form ([dinst]/[dterm]) — operands become direct
   register indices or constants, binops become closures, globals and
   function addresses are resolved up front. Operands that cannot be
   resolved statically (unknown global, float immediate in an integer
   slot) decode to [IBad]/[FBad] carrying the exact fault message, raised
   only if the instruction actually executes, so malformed-but-dead code
   behaves as before. On top of that the interpreter scalarizes
   uniform-strand work: a load/store whose address is identical across
   all active lanes becomes one memory operation, and a transcendental
   whose operand is uniform is evaluated once and broadcast. Scalarization
   changes *how* a result is computed, never the result, the charged
   cycles, or the counters — the golden-counters tests pin this. *)

open Ozo_ir.Types
module Dominance = Ozo_ir.Dominance
module Cfg = Ozo_ir.Cfg

(* faults carry structured [Fault.t] reports; the exception aliases keep
   the engine's historical names working for external catchers *)
exception Kernel_trap = Fault.Kernel_trap
exception Kernel_fault = Fault.Kernel_fault

let fault fmt = Fault.fail Fault.Invalid fmt

type arg = Ai of int | Af of float

type launch = {
  l_teams : int;
  l_threads : int;
  l_args : arg list;
  l_check_assumes : bool;
  l_debug : bool; (* print Debug_print instructions as they execute *)
}

(* --- execution paths --------------------------------------------------- *)

(* Which executor drives the per-strand inner loop. [Exec_ir] interprets
   the pre-decoded [dinst] stream through one big dispatch match.
   [Exec_vm] runs the threaded-code form: per-block arrays of
   pre-specialized closures compiled from the same decoded stream, with
   virtual registers renamed to the backend's dense physical indices.
   Both paths share decoding, counters, faults, sanitizer hooks, watchdog
   polling, scheduling and per-domain state; results are bit-identical
   (the differential suite pins this). *)
type exec = Exec_ir | Exec_vm

let exec_name = function Exec_ir -> "ir" | Exec_vm -> "vm"
let exec_of_name = function "ir" -> Some Exec_ir | "vm" -> Some Exec_vm | _ -> None

(* Per-function register-rename plan derived from the backend's
   linear-scan allocation: [rp_map.(vreg)] is the physical index the
   engine's flat register file uses under [Exec_vm], and [rp_nregs] sizes
   the frame (typically far below [f_next_reg], so frames shrink).
   Only spill-free functions carry a plan; a function the register budget
   forced to spill executes its (already spill-rewritten) stream with
   virtual indices, exactly as under [Exec_ir]. *)
type reg_plan = { rp_map : int array; rp_nregs : int }

(* --- growable strand vector ------------------------------------------- *)

(* Strand bookkeeping used to be a [strand list] with quadratic
   [xs @ [x]] appends and a full list rebuild per scheduler step; this is
   the minimal growable array the scheduler actually needs. *)
module Svec = struct
  type 'a t = { mutable arr : 'a array; mutable len : int }

  let create () = { arr = [||]; len = 0 }
  let length t = t.len
  let get t i = t.arr.(i)

  let push t x =
    if t.len = Array.length t.arr then begin
      let a = Array.make (max 8 (2 * t.len)) x in
      Array.blit t.arr 0 a 0 t.len;
      t.arr <- a
    end;
    t.arr.(t.len) <- x;
    t.len <- t.len + 1

  let iter f t =
    for i = 0 to t.len - 1 do
      f t.arr.(i)
    done

  let exists f t =
    let rec go i = i < t.len && (f t.arr.(i) || go (i + 1)) in
    go 0

  let find_opt f t =
    let rec go i =
      if i >= t.len then None
      else if f t.arr.(i) then Some t.arr.(i)
      else go (i + 1)
    in
    go 0

  (* stable in-place filter, preserving creation order *)
  let compact t keep =
    let j = ref 0 in
    for i = 0 to t.len - 1 do
      let x = t.arr.(i) in
      if keep x then begin
        t.arr.(!j) <- x;
        incr j
      end
    done;
    t.len <- !j
end

(* --- pre-decoded instruction form ------------------------------------- *)

(* A decoded operand: a register index into the frame's flat register
   file, a pre-resolved constant (immediates, global/function addresses,
   undef), or a deferred decode failure carrying the exact message the
   AST interpreter would have raised at execution time. *)
type iop = IReg of reg | IConst of int | IBad of string
type fop = FReg of reg | FConst of float | FBad of string

(* one phi of a parallel-copy edge *)
type dphi = PE_i of reg * iop | PE_f of reg * fop | PE_bad of string

(* a call argument bound to the callee's parameter register *)
type darg = DA_i of reg * iop | DA_f of reg * fop

type dcall =
  | DC_ok of {
      dc_callee : string;
      dc_entry : label;
      dc_ret : (reg * bool) option; (* destination in the caller, is_float *)
      dc_args : darg array;
    }
  (* statically malformed call (unknown callee, arity or void/value
     mismatch): charged like a call, then the thunk raises the fault the
     dynamic path would have raised *)
  | DC_fail of (unit -> unit)

(* Float operations dispatch on small tags matched *inside* the per-lane
   loops rather than through closures: a call through a
   [float -> float -> float] closure boxes both arguments and the result
   on every lane, while a monomorphic match compiles to straight unboxed
   float code. Integer ops keep closures — ints never box. *)
type fbink = KFadd | KFsub | KFmul | KFdiv | KFmin | KFmax
type funk = KFneg | KFabs | KFsqrt | KFexp | KFlog | KFsin | KFcos

type dinst =
  | D_ibin of reg * (int -> int -> int) * iop * iop
  | D_fbin of reg * fbink * fop * fop
  | D_icmp of reg * (int -> int -> bool) * iop * iop
  | D_fcmp of reg * fcmp * fop * fop
  | D_un_i of reg * (int -> int) * iop
  (* float unop: is-SFU flag (scalarizable when uniform), issue cost *)
  | D_un_f of reg * bool * int * funk * fop
  | D_i2f of reg * iop
  | D_f2i of reg * fop
  | D_sel_i of reg * iop * iop * iop
  | D_sel_f of reg * iop * fop * fop
  | D_load_i of reg * typ * iop
  | D_load_f of reg * iop
  | D_store_i of typ * iop * iop (* type, value, address *)
  | D_store_f of fop * iop
  | D_alloca of reg * int
  | D_intr of reg * intrinsic
  | D_malloc of reg * iop
  | D_free
  | D_assume of iop
  | D_trap of string
  | D_debug of string * iop list
  | D_atomic_i of reg option * atomic_op * typ * iop * iop array
  | D_atomic_f of reg option * atomic_op * iop * fop array
  | D_barrier of bool
  | D_call of dcall
  (* indirect call: target must be resolved per execution, so arguments
     stay as AST operands and bind through the dynamic path *)
  | D_icall of reg option * iop * operand list

type dterm =
  | T_ret_none
  | T_ret_i of iop
  | T_ret_f of fop
  | T_br of label
  | T_cond of iop * label * label
  | T_switch of iop * (int * label) array * label
  | T_unreach

(* --- per-function static caches & dynamic structures ------------------- *)

(* [cblock] carries the threaded code ([cb_code], an [engine]-consuming
   closure per instruction), so the whole static/dynamic structure chain
   down to [engine] is one mutually recursive group. *)

type barrier_site = { bs_fn : string; bs_blk : label; bs_idx : int; bs_aligned : bool }

type status = Run | At_barrier of barrier_site | Dead

(* pseudo-label for joins that reconverge at function return: divergent
   paths that all return from the current function merge at the call's
   continuation, as real SIMT hardware does *)
let ret_marker = "<ret>"

type cblock = {
  cb_insts : dinst array;
  (* threaded code: one pre-specialized closure per instruction of
     [cb_insts], built only under [Exec_vm] ([[||]] otherwise). The VM
     inner loop indexes this array directly instead of dispatching on the
     [dinst] constructor. *)
  cb_code : code array;
  cb_term : dterm;
  cb_nphis : int;
  cb_first_phi : reg; (* first phi's *original* register, for fault messages *)
  cb_edges : (label, dphi array) Hashtbl.t; (* from-label -> parallel copy *)
  cb_ti : int array; (* phi parallel-copy staging, one slot per phi *)
  cb_tf : float array;
  (* opt-in hot-spot profile, accumulated only when the engine runs with
     [profile]: entries into this block across all strands (a strand that
     suspends at a barrier and resumes counts again), and the
     warp-instruction / cost-model-cycle deltas attributed to it *)
  mutable cb_hits : int;
  mutable cb_wi : int;
  mutable cb_cyc : int;
}

and code = engine -> team_ctx -> strand -> slot -> [ `Continue | `Suspend ]

and fn_info = {
  fi_func : func; (* under [Exec_vm] with a plan: the *renamed* function *)
  fi_nregs : int; (* register-file height: plan's [rp_nregs] or [f_next_reg] *)
  fi_blocks : (label, cblock) Hashtbl.t;
  fi_reconv : (label, label option) Hashtbl.t; (* immediate post-dominator *)
}

(* Per-frame registers live in two flat register-major arrays indexed
   [(reg * warp_size) + lane]: one bounds-checked load instead of two
   dereferences per access, and a broadcast write is a contiguous run. *)
and frame = {
  fr_info : fn_info;
  fr_ws : int; (* warp width = lane stride *)
  fr_ints : int array;
  fr_floats : float array;
  fr_sp_save : int array; (* per-lane local stack pointer at entry *)
  fr_id : int;
}

and slot = {
  sl_frame : frame;
  mutable sl_blk : label;
  mutable sl_idx : int;
  sl_ret_dst : (reg * bool) option; (* destination in the caller, is_float *)
}

and join = {
  j_id : int;
  j_frame : int;
  j_rpc : label;
  mutable j_expected : int;
  mutable j_arrived : int;
  j_mask : bool array;
  j_cont : slot list;
  j_outer : join list;
}

and strand = {
  st_seq : int;
  st_warp : int;
  st_active : int; (* popcount of st_mask; masks are fixed at creation *)
  mutable st_mask : bool array;
  mutable st_stack : slot list;
  mutable st_joins : join list; (* innermost first *)
  mutable st_status : status;
}

and team_ctx = {
  tc_team : int;
  tc_threads : int;
  tc_warp_size : int;
  tc_done : bool array; (* per thread in team *)
  tc_strands : strand Svec.t; (* in creation order *)
  mutable tc_next_seq : int;
  mutable tc_next_frame : int;
  mutable tc_next_join : int;
  tc_counters : Counters.t;
}

and engine = {
  e_module : modul;
  e_params : Cost.params;
  e_mem : Memory.t;
  e_launch : launch;
  e_exec : exec; (* which inner-loop executor drives strands *)
  (* per-function register-rename plans (built once at [run], shared
     read-only across domain engines); consulted only under [Exec_vm] *)
  e_plan : (string, reg_plan) Hashtbl.t;
  e_fn_infos : (string, fn_info) Hashtbl.t;
  e_gaddr : (string, int) Hashtbl.t;      (* global name -> encoded address *)
  e_ftable : func array;                  (* function pointer table *)
  e_fidx : (string, int) Hashtbl.t;       (* function name -> index+1 (0 = null) *)
  e_shared_globals : (global * int) list; (* shared-space globals and offsets *)
  e_san : Sanitizer.t option;             (* opt-in SIMT sanitizer *)
  e_spec : Faultinject.spec option;       (* opt-in fault injection *)
  (* per-team injection stream, re-derived from [e_spec] at every team
     start; None for non-target teams *)
  mutable e_inject : Faultinject.t option;
  e_fastmem : bool; (* no memory watcher: direct-access fast path is legal *)
  e_trace : Ozo_obs.Trace.ctx; (* phase spans + hot-spot instants *)
  e_prof : bool; (* accumulate per-block hot-spot counters *)
  (* warp-sized scratch, reused across every memory instruction so the
     hot path allocates nothing: per-lane addresses and their cached
     [Memory.decode] results, the coalescing segment set, and per-lane
     branch conditions.
     DOMAIN-SAFETY: this scratch — like every mutable field below, the
     decode caches above and the fault context — is per-engine, and the
     parallel path builds one engine per domain, so no execution state
     is ever shared across domains. *)
  e_addr : int array;
  e_space : addrspace array;
  e_off : int array;
  e_segs : int array;
  e_cond : bool array;
  e_fscr : float array; (* single-slot staging for constant float stores *)
  e_budget0 : int; (* per-team instruction-issue budget *)
  mutable e_budget : int; (* remaining issues for the current team *)
  (* per-team kernel-malloc arena: (base offset, bytes per team) in global
     memory, reserved before execution so allocation addresses are a pure
     function of (team, allocation order) — independent of the domain
     schedule. [e_arena_cur] is the current team's bump cursor. *)
  e_arena : (int * int) option;
  mutable e_arena_cur : int;
  (* fault context stamped at every issue; escaping faults are annotated
     with it at the launch boundary *)
  e_fctx : Fault.ctx;
  (* wall-clock watchdog: polled every [wd_poll_interval] block visits;
     the closure returns true once the launch deadline has passed *)
  e_watchdog : (unit -> bool) option;
  mutable e_wd_fuel : int;
  (* parallel-run abort channel: the lowest faulting team id across all
     domains (max_int = none). A domain stops early only for teams the
     sequential engine would never have reached. *)
  e_abort : int Atomic.t option;
  mutable e_cur_team : int;
}

let copy_slot s =
  { sl_frame = s.sl_frame; sl_blk = s.sl_blk; sl_idx = s.sl_idx;
    sl_ret_dst = s.sl_ret_dst }

let is_float_typ = function F64 -> true | I1 | I32 | I64 | Ptr _ -> false

(* --- decoding ---------------------------------------------------------- *)

let decode_iop e = function
  | Reg r -> IReg r
  | Imm_int (v, _) -> IConst (Int64.to_int v)
  | Imm_float _ -> IBad "float immediate in integer context"
  | Global_addr g -> (
    match Hashtbl.find_opt e.e_gaddr g with
    | Some a -> IConst a
    | None -> IBad (Printf.sprintf "unknown global @%s" g))
  | Func_addr f -> (
    match Hashtbl.find_opt e.e_fidx f with
    | Some i -> IConst i
    | None -> IBad (Printf.sprintf "unknown function &%s" f))
  | Undef _ -> IConst 0

let decode_fop _e = function
  | Reg r -> FReg r
  | Imm_float x -> FConst x
  | Imm_int (v, _) -> FConst (Int64.to_float v)
  | Undef _ -> FConst 0.0
  | Global_addr _ | Func_addr _ -> FBad "address in float context"

let ibinop_fn : binop -> int -> int -> int = function
  | Add -> ( + )
  | Sub -> ( - )
  | Mul -> ( * )
  | Sdiv -> fun a b -> if b = 0 then fault "division by zero" else a / b
  | Srem -> fun a b -> if b = 0 then fault "remainder by zero" else a mod b
  | Udiv -> fun a b -> if b = 0 then fault "division by zero" else abs a / abs b
  | Urem -> fun a b -> if b = 0 then fault "remainder by zero" else abs a mod abs b
  | And -> ( land )
  | Or -> ( lor )
  | Xor -> ( lxor )
  | Shl -> fun a b -> a lsl (b land 62)
  | Ashr -> fun a b -> a asr (b land 62)
  | Lshr -> fun a b -> (a lsr (b land 62)) land max_int
  | Smin -> min
  | Smax -> max
  | Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax -> fun _ _ -> fault "float binop in int context"

let fbink_of : binop -> fbink = function
  | Fadd -> KFadd
  | Fsub -> KFsub
  | Fmul -> KFmul
  | Fdiv -> KFdiv
  | Fmin -> KFmin
  | Fmax -> KFmax
  | _ -> assert false

let is_float_binop = function
  | Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax -> true
  | _ -> false

(* out-of-loop applications (constant folding, scalarized broadcast);
   Fmin/Fmax spell out stdlib [min]/[max] so NaN and signed-zero handling
   is bit-identical to the polymorphic compare they replace *)
let fbin_apply k x y =
  match k with
  | KFadd -> x +. y
  | KFsub -> x -. y
  | KFmul -> x *. y
  | KFdiv -> x /. y
  | KFmin -> if x <= y then x else y
  | KFmax -> if x >= y then x else y

let fun_apply k x =
  match k with
  | KFneg -> -.x
  | KFabs -> Float.abs x
  | KFsqrt -> sqrt x
  | KFexp -> exp x
  | KFlog -> log x
  | KFsin -> sin x
  | KFcos -> cos x

(* 63-bit unsigned comparisons: negative = huge *)
let icmp_ult a b =
  (a >= 0 && b >= 0 && a < b) || (a >= 0 && b < 0) || (a < 0 && b < 0 && a < b)

let icmp_to_fn : icmp -> int -> int -> bool = function
  | Eq -> ( = )
  | Ne -> ( <> )
  | Slt -> ( < )
  | Sle -> ( <= )
  | Sgt -> ( > )
  | Sge -> ( >= )
  | Ult -> icmp_ult
  | Ule -> fun a b -> a = b || icmp_ult a b
  | Ugt -> fun a b -> icmp_ult b a
  | Uge -> fun a b -> a = b || icmp_ult b a

let funk_of : unop -> funk = function
  | Fneg -> KFneg
  | Fabs -> KFabs
  | Fsqrt -> KFsqrt
  | Fexp -> KFexp
  | Flog -> KFlog
  | Fsin -> KFsin
  | Fcos -> KFcos
  | Not | Sitofp | Fptosi | Zext32to64 | Trunc64to32 -> assert false

(* Under [Exec_vm], the frame of a planned function is indexed by renamed
   physical registers, so anything that binds values into such a frame
   from the *original* IR (call-argument binding, kernel-argument
   binding) must rename the target register the same way. *)
let plan_reg e fname r =
  match e.e_exec with
  | Exec_ir -> r
  | Exec_vm -> (
    match Hashtbl.find_opt e.e_plan fname with
    | Some p -> p.rp_map.(r)
    | None -> r)

(* Statically validate a direct call. A failure must surface exactly when
   (and only when) the call executes, with the message the dynamic lookup
   would have produced — hence the deferred [DC_fail] thunks. *)
let decode_call e dst callee args =
  match find_func e.e_module callee with
  | None -> DC_fail (fun () -> ignore (find_func_exn e.e_module callee))
  | Some cf ->
    let nparams = List.length cf.f_params and nargs = List.length args in
    if nparams <> nargs then
      DC_fail
        (fun () ->
          fault "call to %s with %d args (expects %d)" callee nargs nparams)
    else if dst <> None && cf.f_ret = None then
      DC_fail (fun () -> fault "call to void function %s expects a value" callee)
    else if cf.f_blocks = [] then
      DC_fail (fun () -> ignore (entry_block cf))
    else
      let dc_ret =
        match (dst, cf.f_ret) with
        | Some r, Some t -> Some (r, is_float_typ t)
        | _ -> None
      in
      let dc_args =
        List.map2
          (fun (preg, pty) op ->
            let preg = plan_reg e callee preg in
            if is_float_typ pty then DA_f (preg, decode_fop e op)
            else DA_i (preg, decode_iop e op))
          cf.f_params args
        |> Array.of_list
      in
      DC_ok { dc_callee = callee; dc_entry = (entry_block cf).b_label; dc_ret; dc_args }

let decode_inst e (i : inst) : dinst =
  let p = e.e_params in
  match i with
  | Binop (r, op, a, b) ->
    if is_float_binop op then D_fbin (r, fbink_of op, decode_fop e a, decode_fop e b)
    else D_ibin (r, ibinop_fn op, decode_iop e a, decode_iop e b)
  | Unop (r, op, a) -> (
    match op with
    | Not -> D_un_i (r, lnot, decode_iop e a)
    | Sitofp -> D_i2f (r, decode_iop e a)
    | Fptosi -> D_f2i (r, decode_fop e a)
    | Zext32to64 | Trunc64to32 ->
      D_un_i (r, (fun x -> x land 0xFFFFFFFF), decode_iop e a)
    | Fneg | Fabs | Fsqrt | Fexp | Flog | Fsin | Fcos ->
      D_un_f
        (r, Cost.is_special_unop op, Cost.unop_cost p op, funk_of op, decode_fop e a))
  | Icmp (r, op, a, b) -> D_icmp (r, icmp_to_fn op, decode_iop e a, decode_iop e b)
  | Fcmp (r, op, a, b) -> D_fcmp (r, op, decode_fop e a, decode_fop e b)
  | Select (r, ty, c, x, y) ->
    if is_float_typ ty then D_sel_f (r, decode_iop e c, decode_fop e x, decode_fop e y)
    else D_sel_i (r, decode_iop e c, decode_iop e x, decode_iop e y)
  | Ptradd (r, base, off) -> D_ibin (r, ( + ), decode_iop e base, decode_iop e off)
  | Load (r, ty, addr) ->
    if is_float_typ ty then D_load_f (r, decode_iop e addr)
    else D_load_i (r, ty, decode_iop e addr)
  | Store (ty, v, addr) ->
    if is_float_typ ty then D_store_f (decode_fop e v, decode_iop e addr)
    else D_store_i (ty, decode_iop e v, decode_iop e addr)
  | Alloca (r, size) -> D_alloca (r, size)
  | Intrinsic (r, i) -> D_intr (r, i)
  | Malloc (r, size) -> D_malloc (r, decode_iop e size)
  | Free _ -> D_free
  | Assume o -> D_assume (decode_iop e o)
  | Trap msg -> D_trap msg
  | Debug_print (msg, ops) -> D_debug (msg, List.map (decode_iop e) ops)
  | Atomic (dst, op, ty, addr, ops) ->
    if is_float_typ ty then
      D_atomic_f (dst, op, decode_iop e addr, Array.of_list (List.map (decode_fop e) ops))
    else
      D_atomic_i
        (dst, op, ty, decode_iop e addr, Array.of_list (List.map (decode_iop e) ops))
  | Barrier { aligned } -> D_barrier aligned
  | Call (dst, callee, args) -> D_call (decode_call e dst callee args)
  | Call_indirect (dst, _, callee_op, args) ->
    D_icall (dst, decode_iop e callee_op, args)

let decode_term e f : terminator -> dterm = function
  | Ret o -> (
    match f.f_ret with
    | None -> T_ret_none
    | Some t -> (
      match o with
      | None -> T_ret_none (* faults at execution if the caller expects a value *)
      | Some op -> if is_float_typ t then T_ret_f (decode_fop e op) else T_ret_i (decode_iop e op)))
  | Br l -> T_br l
  | Cond_br (c, lt, lf) -> T_cond (decode_iop e c, lt, lf)
  | Switch (o, cases, default) ->
    T_switch
      ( decode_iop e o,
        Array.of_list (List.map (fun (cv, l) -> (Int64.to_int cv, l)) cases),
        default )
  | Unreachable -> T_unreach

(* [orig_regs] are the block's phi destination registers *before* any
   register renaming (positionally aligned with [b.b_phis]): fault
   messages must name the registers the programmer's IR uses, so the VM
   path reports byte-identically to the IR path. *)
let decode_phis e ~orig_regs b =
  let phis = b.b_phis in
  let edges = Hashtbl.create (max 4 (List.length phis)) in
  (* union of incoming labels across all phis of the block *)
  List.iter
    (fun p ->
      List.iter
        (fun (lbl, _) ->
          if not (Hashtbl.mem edges lbl) then Hashtbl.replace edges lbl [||])
        p.phi_incoming)
    phis;
  Hashtbl.iter
    (fun lbl _ ->
      let copy =
        Array.of_list
          (List.mapi
             (fun i p ->
               match List.assoc_opt lbl p.phi_incoming with
               | None ->
                 PE_bad
                   (Printf.sprintf "phi %%%d in %s lacks incoming for %s" orig_regs.(i)
                      b.b_label lbl)
               | Some op ->
                 if is_float_typ p.phi_typ then PE_f (p.phi_reg, decode_fop e op)
                 else PE_i (p.phi_reg, decode_iop e op))
             phis)
      in
      Hashtbl.replace edges lbl copy)
    (Hashtbl.copy edges);
  edges

(* --- register renaming (Exec_vm) --------------------------------------- *)

(* Rewrite every register of [f] through [map] (total over
   [0, f_next_reg)). The renamed function is what gets decoded under
   [Exec_vm], so every downstream consumer — operand evaluation, phi
   staging, call-argument binding, return deposit — works on dense
   physical indices with no per-access indirection and no further
   changes. Renaming is sound against the engine's evaluation order
   because the allocator only merges registers whose live ranges are
   disjoint, and every per-lane loop reads its operands before writing
   its destination. *)
let remap_inst_def m i =
  match i with
  | Binop (r, op, a, b) -> Binop (m r, op, a, b)
  | Unop (r, op, a) -> Unop (m r, op, a)
  | Icmp (r, op, a, b) -> Icmp (m r, op, a, b)
  | Fcmp (r, op, a, b) -> Fcmp (m r, op, a, b)
  | Select (r, ty, c, t, f) -> Select (m r, ty, c, t, f)
  | Load (r, t, addr) -> Load (m r, t, addr)
  | Ptradd (r, a, b) -> Ptradd (m r, a, b)
  | Alloca (r, sz) -> Alloca (m r, sz)
  | Intrinsic (r, intr) -> Intrinsic (m r, intr)
  | Malloc (r, sz) -> Malloc (m r, sz)
  | Call (d, callee, args) -> Call (Option.map m d, callee, args)
  | Call_indirect (d, rt, callee, args) ->
    Call_indirect (Option.map m d, rt, callee, args)
  | Atomic (d, op, t, addr, ops) -> Atomic (Option.map m d, op, t, addr, ops)
  | Store _ | Barrier _ | Assume _ | Trap _ | Free _ | Debug_print _ -> i

let remap_func (map : int array) (f : func) : func =
  let m r = map.(r) in
  let mop = function Reg r -> Reg (m r) | op -> op in
  let blocks =
    List.map
      (fun b ->
        { b with
          b_phis =
            List.map
              (fun p -> map_phi_operands mop { p with phi_reg = m p.phi_reg })
              b.b_phis;
          b_insts =
            List.map (fun i -> remap_inst_def m (map_inst_operands mop i)) b.b_insts;
          b_term = map_term_operands mop b.b_term })
      f.f_blocks
  in
  { f with
    f_params = List.map (fun (r, t) -> (m r, t)) f.f_params;
    f_blocks = blocks }

(* --- operand evaluation ------------------------------------------------ *)

let gaddr e g =
  match Hashtbl.find_opt e.e_gaddr g with
  | Some a -> a
  | None -> fault "unknown global @%s" g

let fidx e f =
  match Hashtbl.find_opt e.e_fidx f with
  | Some i -> i
  | None -> fault "unknown function &%s" f

(* AST-operand evaluation, kept for the dynamic (indirect-call) path *)
let eval_i e (fr : frame) lane = function
  | Reg r -> fr.fr_ints.((r * fr.fr_ws) + lane)
  | Imm_int (v, _) -> Int64.to_int v
  | Imm_float _ -> fault "float immediate in integer context"
  | Global_addr g -> gaddr e g
  | Func_addr f -> fidx e f
  | Undef _ -> 0

let eval_f _e (fr : frame) lane = function
  | Reg r -> fr.fr_floats.((r * fr.fr_ws) + lane)
  | Imm_float x -> x
  | Imm_int (v, _) -> Int64.to_float v
  | Undef _ -> 0.0
  | Global_addr _ | Func_addr _ -> fault "address in float context"

(* decoded-operand evaluation: the hot path *)
let[@inline] ieval (fr : frame) lane = function
  | IReg r -> fr.fr_ints.((r * fr.fr_ws) + lane)
  | IConst v -> v
  | IBad msg -> fault "%s" msg

let[@inline] feval (fr : frame) lane = function
  | FReg r -> fr.fr_floats.((r * fr.fr_ws) + lane)
  | FConst v -> v
  | FBad msg -> fault "%s" msg

(* NOTE: this compiler is non-flambda, so [feval] is a real call whose
   float result is boxed on every lane. The per-lane loops below therefore
   spell the operand match out inline — keep them in sync with [feval]. *)

let[@inline] um (m : bool array) i = Array.unsafe_get m i

let rec first_active (mask : bool array) n i =
  if i >= n then -1 else if um mask i then i else first_active mask n (i + 1)

let rec last_active (mask : bool array) i =
  if i < 0 then -1 else if um mask i then i else last_active mask (i - 1)

(* Bit-identical float equality without boxing: IEEE equality plus a
   signed-zero check (sqrt(-0.) is -0., not 0., so a -0./+0. mix must not
   scalarize). NaN compares unequal to itself and therefore falls back to
   the always-correct per-lane path. *)
let[@inline] fsame a b = a = b && (a <> 0.0 || 1.0 /. a = 1.0 /. b)

(* --- cost helpers ------------------------------------------------------ *)

let charge tc n = tc.tc_counters.cycles <- tc.tc_counters.cycles + n

let rec seg_seen (segs : int array) nsegs seg i =
  i < nsegs && (Array.unsafe_get segs i = seg || seg_seen segs nsegs seg (i + 1))

(* Global-memory coalescing over the per-lane addresses staged in
   [e.e_addr], decoding each pointer once into [e.e_space]/[e.e_off] for
   the access loop to reuse. Lanes are visited in DESCENDING order: the
   list-based implementation this replaces consed addresses up in lane
   order and then charged over the reversed list, so the fault order for
   multiple bad pointers (and the counter updates) ran high-lane-first
   and must stay that way. *)
let charge_mem_lanes e tc (mask : bool array) n =
  let p = e.e_params in
  let sa0 = tc.tc_counters.shared_accesses in
  let rec go lane nsegs =
    if lane < 0 then nsegs
    else if um mask lane then begin
      let a = e.e_addr.(lane) in
      let space = Memory.decode_space a in
      e.e_space.(lane) <- space;
      e.e_off.(lane) <- Memory.decode_off a;
      match space with
      | Global | Constant ->
        let seg = e.e_off.(lane) / p.segment_bytes in
        if seg_seen e.e_segs nsegs seg 0 then go (lane - 1) nsegs
        else begin
          e.e_segs.(nsegs) <- seg;
          go (lane - 1) (nsegs + 1)
        end
      | Shared ->
        tc.tc_counters.shared_accesses <- tc.tc_counters.shared_accesses + 1;
        go (lane - 1) nsegs
      | Local ->
        tc.tc_counters.local_accesses <- tc.tc_counters.local_accesses + 1;
        go (lane - 1) nsegs
    end
    else go (lane - 1) nsegs
  in
  let nsegs = go (n - 1) 0 in
  tc.tc_counters.global_transactions <- tc.tc_counters.global_transactions + nsegs;
  charge tc (nsegs * p.c_global_segment);
  let shared = tc.tc_counters.shared_accesses > sa0 in
  if shared then charge tc p.c_shared_access;
  if nsegs = 0 && not shared then charge tc p.c_local_access (* stack / L1 *)

(* Charge a scalarized uniform-address access exactly as [charge_mem_lanes]
   would have charged [active] identical per-lane accesses: one global
   segment, or [active] shared accesses. (Local space never scalarizes.) *)
let charge_mem_uniform e tc ~space ~active =
  let p = e.e_params in
  match space with
  | Global | Constant ->
    tc.tc_counters.global_transactions <- tc.tc_counters.global_transactions + 1;
    charge tc p.c_global_segment
  | Shared ->
    tc.tc_counters.shared_accesses <- tc.tc_counters.shared_accesses + active;
    charge tc p.c_shared_access
  | Local -> assert false

(* Evaluate [addr] for every active lane into [e.e_addr]; returns true
   when all active lanes agree. Precondition: [l0] is the first active
   lane. *)
let fill_addrs e fr (mask : bool array) n addr l0 =
  let a0 = ieval fr l0 addr in
  e.e_addr.(l0) <- a0;
  let rec go lane uni =
    if lane >= n then uni
    else if um mask lane then begin
      let a = ieval fr lane addr in
      e.e_addr.(lane) <- a;
      go (lane + 1) (uni && a = a0)
    end
    else go (lane + 1) uni
  in
  go (l0 + 1) true

(* --- threaded-code compilation (Exec_vm) -------------------------------- *)

(* Shared issue prologue: instruction counters, fault-site stamp, issue
   budget. This must stay byte-identical between the interpreter
   ([exec_dinst]) and every compiled closure — factoring it here is what
   lets the two executors share one observable cost/fault model. *)
let[@inline] issue e tc (st : strand) (slot : slot) =
  tc.tc_counters.warp_instructions <- tc.tc_counters.warp_instructions + 1;
  tc.tc_counters.lane_instructions <- tc.tc_counters.lane_instructions + st.st_active;
  Fault.set_site e.e_fctx ~fn:slot.sl_frame.fr_info.fi_func.f_name ~blk:slot.sl_blk
    ~idx:slot.sl_idx;
  Fault.set_strand e.e_fctx ~team:tc.tc_team ~warp:st.st_warp ~mask:st.st_mask;
  e.e_budget <- e.e_budget - 1;
  if e.e_budget <= 0 then
    Fault.fail Fault.Budget_exhausted "instruction budget exceeded (runaway kernel?)"

(* The compiled stream falls back to the interpreter for every operation
   with nontrivial semantics (memory, control, calls, barriers, atomics,
   faulting arithmetic, malformed operands): same code path, same
   charges, same faults. [exec_dinst] is defined further down — forward-
   reference it through a ref tied right after its definition. *)
let exec_fallback :
    (engine -> team_ctx -> strand -> slot -> dinst -> [ `Continue | `Suspend ]) ref =
  ref (fun _ _ _ _ _ -> assert false)

(* Non-faulting integer binops specialize to a small tag applied by a
   direct call inside the per-lane loop; the interpreter pays a generic
   closure application (caml_apply2 on this non-flambda compiler) per
   lane. Faulting ops (division by zero) keep the interpreter's closures
   so fault sites and messages cannot drift. *)
type ibk =
  | KAdd | KSub | KMul | KAnd | KOr | KXor | KShl | KAshr | KLshr | KSmin | KSmax

let ibk_of : binop -> ibk option = function
  | Add -> Some KAdd
  | Sub -> Some KSub
  | Mul -> Some KMul
  | And -> Some KAnd
  | Or -> Some KOr
  | Xor -> Some KXor
  | Shl -> Some KShl
  | Ashr -> Some KAshr
  | Lshr -> Some KLshr
  | Smin -> Some KSmin
  | Smax -> Some KSmax
  | Sdiv | Srem | Udiv | Urem | Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax -> None

(* results bit-identical to [ibinop_fn]'s closures; min/max are spelled
   out so the specialized path never calls the polymorphic compare *)
let[@inline] ibk_apply k a b =
  match k with
  | KAdd -> a + b
  | KSub -> a - b
  | KMul -> a * b
  | KAnd -> a land b
  | KOr -> a lor b
  | KXor -> a lxor b
  | KShl -> a lsl (b land 62)
  | KAshr -> a asr (b land 62)
  | KLshr -> (a lsr (b land 62)) land max_int
  | KSmin -> if a <= b then a else b
  | KSmax -> if a >= b then a else b

type ick = KEq | KNe | KSlt | KSle | KSgt | KSge | KUlt | KUle | KUgt | KUge

let ick_of : icmp -> ick = function
  | Eq -> KEq
  | Ne -> KNe
  | Slt -> KSlt
  | Sle -> KSle
  | Sgt -> KSgt
  | Sge -> KSge
  | Ult -> KUlt
  | Ule -> KUle
  | Ugt -> KUgt
  | Uge -> KUge

let[@inline] ick_apply k a b =
  match k with
  | KEq -> a = b
  | KNe -> a <> b
  | KSlt -> a < b
  | KSle -> a <= b
  | KSgt -> a > b
  | KSge -> a >= b
  | KUlt -> icmp_ult a b
  | KUle -> a = b || icmp_ult a b
  | KUgt -> icmp_ult b a
  | KUge -> a = b || icmp_ult b a

(* Compile one decoded instruction into a closure. [ir] is the (renamed)
   IR instruction the [dinst] was decoded from — needed to recover the
   binop/icmp kind hidden inside the interpreter's opaque closures.
   Specialized: non-faulting int ALU, int compares, int unops,
   int-to-float, each with register/constant operand shapes hoisted out
   of the lane loop. Everything else runs through the interpreter. *)
let compile_dinst (ir : inst) (di : dinst) : code =
  let fallback e tc st slot = !exec_fallback e tc st slot di in
  let prologue e tc st slot =
    issue e tc st slot;
    tc.tc_counters.cycles <- tc.tc_counters.cycles + e.e_params.c_alu
  in
  match di with
  | D_ibin (r, _, a, b) -> (
    let k =
      match ir with
      | Binop (_, op, _, _) -> ibk_of op
      | Ptradd _ -> Some KAdd (* decodes to [( + )] *)
      | _ -> None
    in
    match (k, a, b) with
    | None, _, _ | _, IBad _, _ | _, _, IBad _ -> fallback
    | Some k, IReg ra, IReg rb ->
      fun e tc st slot ->
        prologue e tc st slot;
        let fr = slot.sl_frame in
        let mask = st.st_mask in
        let ws = fr.fr_ws in
        let regs = fr.fr_ints in
        let dbase = r * ws and abase = ra * ws and bbase = rb * ws in
        for lane = 0 to Array.length mask - 1 do
          if um mask lane then
            regs.(dbase + lane) <- ibk_apply k regs.(abase + lane) regs.(bbase + lane)
        done;
        `Continue
    | Some k, IReg ra, IConst y ->
      fun e tc st slot ->
        prologue e tc st slot;
        let fr = slot.sl_frame in
        let mask = st.st_mask in
        let ws = fr.fr_ws in
        let regs = fr.fr_ints in
        let dbase = r * ws and abase = ra * ws in
        for lane = 0 to Array.length mask - 1 do
          if um mask lane then
            regs.(dbase + lane) <- ibk_apply k regs.(abase + lane) y
        done;
        `Continue
    | Some k, IConst x, IReg rb ->
      fun e tc st slot ->
        prologue e tc st slot;
        let fr = slot.sl_frame in
        let mask = st.st_mask in
        let ws = fr.fr_ws in
        let regs = fr.fr_ints in
        let dbase = r * ws and bbase = rb * ws in
        for lane = 0 to Array.length mask - 1 do
          if um mask lane then
            regs.(dbase + lane) <- ibk_apply k x regs.(bbase + lane)
        done;
        `Continue
    | Some k, IConst x, IConst y ->
      (* non-faulting, so folding at compile time matches the
         interpreter's broadcast (and its empty-mask no-op) exactly *)
      let v = ibk_apply k x y in
      fun e tc st slot ->
        prologue e tc st slot;
        let fr = slot.sl_frame in
        let mask = st.st_mask in
        let regs = fr.fr_ints in
        let dbase = r * fr.fr_ws in
        for lane = 0 to Array.length mask - 1 do
          if um mask lane then regs.(dbase + lane) <- v
        done;
        `Continue)
  | D_icmp (r, _, a, b) -> (
    let k = match ir with Icmp (_, op, _, _) -> Some (ick_of op) | _ -> None in
    match (k, a, b) with
    | None, _, _ | _, IBad _, _ | _, _, IBad _ -> fallback
    | Some k, IReg ra, IReg rb ->
      fun e tc st slot ->
        prologue e tc st slot;
        let fr = slot.sl_frame in
        let mask = st.st_mask in
        let ws = fr.fr_ws in
        let regs = fr.fr_ints in
        let dbase = r * ws and abase = ra * ws and bbase = rb * ws in
        for lane = 0 to Array.length mask - 1 do
          if um mask lane then
            regs.(dbase + lane) <-
              (if ick_apply k regs.(abase + lane) regs.(bbase + lane) then 1 else 0)
        done;
        `Continue
    | Some k, IReg ra, IConst y ->
      fun e tc st slot ->
        prologue e tc st slot;
        let fr = slot.sl_frame in
        let mask = st.st_mask in
        let ws = fr.fr_ws in
        let regs = fr.fr_ints in
        let dbase = r * ws and abase = ra * ws in
        for lane = 0 to Array.length mask - 1 do
          if um mask lane then
            regs.(dbase + lane) <-
              (if ick_apply k regs.(abase + lane) y then 1 else 0)
        done;
        `Continue
    | Some k, IConst x, IReg rb ->
      fun e tc st slot ->
        prologue e tc st slot;
        let fr = slot.sl_frame in
        let mask = st.st_mask in
        let ws = fr.fr_ws in
        let regs = fr.fr_ints in
        let dbase = r * ws and bbase = rb * ws in
        for lane = 0 to Array.length mask - 1 do
          if um mask lane then
            regs.(dbase + lane) <-
              (if ick_apply k x regs.(bbase + lane) then 1 else 0)
        done;
        `Continue
    | Some k, IConst x, IConst y ->
      let v = if ick_apply k x y then 1 else 0 in
      fun e tc st slot ->
        prologue e tc st slot;
        let fr = slot.sl_frame in
        let mask = st.st_mask in
        let regs = fr.fr_ints in
        let dbase = r * fr.fr_ws in
        for lane = 0 to Array.length mask - 1 do
          if um mask lane then regs.(dbase + lane) <- v
        done;
        `Continue)
  | D_un_i (r, _, a) -> (
    (* the two int unop kinds the decoder emits: Not and the 32-bit mask *)
    let k =
      match ir with
      | Unop (_, Not, _) -> Some `Not
      | Unop (_, (Zext32to64 | Trunc64to32), _) -> Some `Mask32
      | _ -> None
    in
    match (k, a) with
    | None, _ | _, IBad _ -> fallback
    | Some k, IReg ra ->
      fun e tc st slot ->
        prologue e tc st slot;
        let fr = slot.sl_frame in
        let mask = st.st_mask in
        let ws = fr.fr_ws in
        let regs = fr.fr_ints in
        let dbase = r * ws and abase = ra * ws in
        (match k with
        | `Not ->
          for lane = 0 to Array.length mask - 1 do
            if um mask lane then regs.(dbase + lane) <- lnot regs.(abase + lane)
          done
        | `Mask32 ->
          for lane = 0 to Array.length mask - 1 do
            if um mask lane then
              regs.(dbase + lane) <- regs.(abase + lane) land 0xFFFFFFFF
          done);
        `Continue
    | Some k, IConst x ->
      let v = match k with `Not -> lnot x | `Mask32 -> x land 0xFFFFFFFF in
      fun e tc st slot ->
        prologue e tc st slot;
        let fr = slot.sl_frame in
        let mask = st.st_mask in
        let regs = fr.fr_ints in
        let dbase = r * fr.fr_ws in
        for lane = 0 to Array.length mask - 1 do
          if um mask lane then regs.(dbase + lane) <- v
        done;
        `Continue)
  | D_i2f (r, a) -> (
    match a with
    | IBad _ -> fallback
    | IReg ra ->
      fun e tc st slot ->
        prologue e tc st slot;
        let fr = slot.sl_frame in
        let mask = st.st_mask in
        let ws = fr.fr_ws in
        let dbase = r * ws and abase = ra * ws in
        for lane = 0 to Array.length mask - 1 do
          if um mask lane then
            fr.fr_floats.(dbase + lane) <- float_of_int fr.fr_ints.(abase + lane)
        done;
        `Continue
    | IConst x ->
      let v = float_of_int x in
      fun e tc st slot ->
        prologue e tc st slot;
        let fr = slot.sl_frame in
        let mask = st.st_mask in
        let dbase = r * fr.fr_ws in
        for lane = 0 to Array.length mask - 1 do
          if um mask lane then fr.fr_floats.(dbase + lane) <- v
        done;
        `Continue)
  | _ -> fallback

let compile_insts irs (dis : dinst array) : code array =
  let irs = Array.of_list irs in
  Array.init (Array.length dis) (fun i -> compile_dinst irs.(i) dis.(i))

(* --- per-function decode ------------------------------------------------ *)

let make_fn_info e f =
  (* Under [Exec_vm], a backend register plan renames the function's
     virtual registers to dense physical indices *before* decoding: the
     decoded stream carries physical indices everywhere, the frame
     shrinks to [rp_nregs] rows, and the threaded code below runs over
     it. Fault messages keep the original register numbers (the
     [~orig_regs]/[cb_first_phi] plumbing), byte-identical to [Exec_ir]. *)
  let plan =
    match e.e_exec with
    | Exec_vm -> Hashtbl.find_opt e.e_plan f.f_name
    | Exec_ir -> None
  in
  let df = match plan with Some p -> remap_func p.rp_map f | None -> f in
  let nregs =
    match plan with Some p -> max p.rp_nregs 1 | None -> max f.f_next_reg 1
  in
  let blocks = Hashtbl.create 16 in
  List.iter2
    (fun (ob : block) (b : block) ->
      let nphis = List.length b.b_phis in
      let insts = Array.of_list (List.map (decode_inst e) b.b_insts) in
      Hashtbl.replace blocks b.b_label
        { cb_insts = insts;
          cb_code =
            (match e.e_exec with
            | Exec_vm -> compile_insts b.b_insts insts
            | Exec_ir -> [||]);
          cb_term = decode_term e df b.b_term;
          cb_nphis = nphis;
          cb_first_phi = (match ob.b_phis with p :: _ -> p.phi_reg | [] -> 0);
          cb_edges =
            decode_phis e
              ~orig_regs:(Array.of_list (List.map (fun p -> p.phi_reg) ob.b_phis))
              b;
          cb_ti = Array.make nphis 0;
          cb_tf = Array.make nphis 0.0;
          cb_hits = 0; cb_wi = 0; cb_cyc = 0 })
    f.f_blocks df.f_blocks;
  let cfg = Cfg.of_func df in
  let pdom = Dominance.post_dominators cfg in
  let reconv = Hashtbl.create 16 in
  List.iter
    (fun b ->
      Hashtbl.replace reconv b.b_label (Dominance.reconvergence_point pdom b.b_label))
    df.f_blocks;
  { fi_func = df; fi_nregs = nregs; fi_blocks = blocks; fi_reconv = reconv }

let fn_info e name =
  match Hashtbl.find_opt e.e_fn_infos name with
  | Some fi -> fi
  | None ->
    let f = find_func_exn e.e_module name in
    let fi = make_fn_info e f in
    Hashtbl.replace e.e_fn_infos name fi;
    fi

(* --- strand management ------------------------------------------------- *)

let popcount mask = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 mask

(* Create a strand. If the strand materializes exactly at the
   reconvergence point of its innermost pending join (a merged strand can
   resume at a block that is simultaneously the rpc of an *outer* join —
   chains of loop-exit joins produce this), it arrives there immediately
   instead of executing past the join. *)
let rec new_strand tc ~warp ~mask ~stack ~joins =
  let s =
    { st_seq = tc.tc_next_seq; st_warp = warp; st_active = popcount mask;
      st_mask = mask; st_stack = stack; st_joins = joins; st_status = Run }
  in
  tc.tc_next_seq <- tc.tc_next_seq + 1;
  Svec.push tc.tc_strands s;
  (match (stack, joins) with
  | slot :: _, j :: _
    when j.j_frame = slot.sl_frame.fr_id && j.j_rpc = slot.sl_blk && slot.sl_idx = 0 ->
    arrive_join tc s j
  | _ -> ());
  s

(* Arrival of a strand at the join [j]; kills the strand and spawns the
   merged continuation when everyone has arrived. *)
and arrive_join tc st (j : join) =
  let n = Array.length st.st_mask in
  for lane = 0 to n - 1 do
    if st.st_mask.(lane) then j.j_mask.(lane) <- true
  done;
  j.j_arrived <- j.j_arrived + 1;
  st.st_status <- Dead;
  if j.j_arrived = j.j_expected then
    ignore
      (new_strand tc ~warp:st.st_warp ~mask:(Array.copy j.j_mask)
         ~stack:(List.map copy_slot j.j_cont) ~joins:j.j_outer)

let make_frame tc e fname ~warp_size =
  let fi = fn_info e fname in
  let n = fi.fi_nregs in
  let fr =
    { fr_info = fi; fr_ws = warp_size;
      fr_ints = Array.make (n * warp_size) 0;
      fr_floats = Array.make (n * warp_size) 0.0;
      fr_sp_save = Array.make warp_size 0;
      fr_id = tc.tc_next_frame }
  in
  tc.tc_next_frame <- tc.tc_next_frame + 1;
  fr

(* global thread id of a lane in this warp within the team *)
let lane_tid tc st lane = (st.st_warp * tc.tc_warp_size) + lane

(* Evaluate the phi nodes of [to_blk] for the lanes in [mask], coming from
   [from_blk]; parallel-copy semantics via the per-block staging scratch
   (all reads of a lane happen before any write of that lane; decoded
   operands only read registers, so per-lane staging is equivalent to the
   per-phi staging it replaces, without the per-edge array allocations). *)
let eval_phis (fr : frame) ~mask ~from_blk ~to_blk =
  match Hashtbl.find_opt fr.fr_info.fi_blocks to_blk with
  | None -> fault "edge to unknown block %s" to_blk
  | Some cb ->
    if cb.cb_nphis > 0 then begin
      let copy =
        match Hashtbl.find_opt cb.cb_edges from_blk with
        | Some c -> c
        | None ->
          fault "phi %%%d in %s lacks incoming for %s" cb.cb_first_phi to_blk from_blk
      in
      let np = Array.length copy in
      let n = Array.length mask in
      let ws = fr.fr_ws in
      for lane = 0 to n - 1 do
        if um mask lane then begin
          for i = 0 to np - 1 do
            match Array.unsafe_get copy i with
            | PE_i (_, op) -> cb.cb_ti.(i) <- ieval fr lane op
            | PE_f (_, op) ->
              cb.cb_tf.(i) <-
                (match op with
                | FReg r -> fr.fr_floats.((r * ws) + lane)
                | FConst v -> v
                | FBad msg -> fault "%s" msg)
            | PE_bad msg -> fault "%s" msg
          done;
          for i = 0 to np - 1 do
            match Array.unsafe_get copy i with
            | PE_i (r, _) -> fr.fr_ints.((r * ws) + lane) <- cb.cb_ti.(i)
            | PE_f (r, _) -> fr.fr_floats.((r * ws) + lane) <- cb.cb_tf.(i)
            | PE_bad _ -> ()
          done
        end
      done
    end

(* Transfer the strand's top slot to [to_blk] (uniform within the strand),
   handling phis and join arrival. *)
let transfer tc st slot ~to_blk =
  eval_phis slot.sl_frame ~mask:st.st_mask ~from_blk:slot.sl_blk ~to_blk;
  match st.st_joins with
  | j :: _ when j.j_frame = slot.sl_frame.fr_id && j.j_rpc = to_blk ->
    arrive_join tc st j
  | _ ->
    slot.sl_blk <- to_blk;
    slot.sl_idx <- 0

(* Split a strand into groups (label, mask) diverging at [slot.sl_blk]. *)
let diverge tc st slot groups =
  tc.tc_counters.divergent_branches <- tc.tc_counters.divergent_branches + 1;
  let from_blk = slot.sl_blk in
  let reconv =
    match Hashtbl.find_opt slot.sl_frame.fr_info.fi_reconv from_blk with
    | Some r -> r
    | None -> None
  in
  (* evaluate the phis of every target for that edge's lanes first *)
  List.iter
    (fun (lbl, mask) -> eval_phis slot.sl_frame ~mask ~from_blk ~to_blk:lbl)
    groups;
  (match reconv with
  | Some rpc ->
    let cont =
      List.map copy_slot st.st_stack
      |> function
      | top :: rest ->
        top.sl_blk <- rpc;
        top.sl_idx <- 0;
        top :: rest
      | [] -> assert false
    in
    let j =
      { j_id = tc.tc_next_join; j_frame = slot.sl_frame.fr_id; j_rpc = rpc;
        j_expected = List.length groups; j_arrived = 0;
        j_mask = Array.make (Array.length st.st_mask) false; j_cont = cont;
        j_outer = st.st_joins }
    in
    tc.tc_next_join <- tc.tc_next_join + 1;
    List.iter
      (fun (lbl, mask) ->
        (* a child whose target is the rpc itself arrives instantly —
           new_strand detects and handles that *)
        let child_slot = copy_slot slot in
        child_slot.sl_blk <- lbl;
        child_slot.sl_idx <- 0;
        ignore
          (new_strand tc ~warp:st.st_warp ~mask ~stack:[ child_slot ]
             ~joins:(j :: st.st_joins)))
      groups
  | None -> (
    match st.st_stack with
    | _ :: (_ :: _ as caller_stack) ->
      (* every path returns from this function: reconverge at the call's
         continuation in the caller, like hardware does *)
      let j =
        { j_id = tc.tc_next_join; j_frame = slot.sl_frame.fr_id; j_rpc = ret_marker;
          j_expected = List.length groups; j_arrived = 0;
          j_mask = Array.make (Array.length st.st_mask) false;
          j_cont = List.map copy_slot caller_stack; j_outer = st.st_joins }
      in
      tc.tc_next_join <- tc.tc_next_join + 1;
      List.iter
        (fun (lbl, mask) ->
          let child_slot = copy_slot slot in
          child_slot.sl_blk <- lbl;
          child_slot.sl_idx <- 0;
          ignore
            (new_strand tc ~warp:st.st_warp ~mask ~stack:[ child_slot ]
               ~joins:(j :: st.st_joins)))
        groups
    | _ ->
      (* kernel frame: no reconvergence before kernel exit — children run
         independently; every outer join now expects one extra arrival per
         additional child *)
      let extra = List.length groups - 1 in
      List.iter (fun j -> j.j_expected <- j.j_expected + extra) st.st_joins;
      List.iter
        (fun (lbl, mask) ->
          let stack = List.map copy_slot st.st_stack in
          (match stack with
          | top :: _ ->
            top.sl_blk <- lbl;
            top.sl_idx <- 0
          | [] -> assert false);
          ignore (new_strand tc ~warp:st.st_warp ~mask ~stack ~joins:st.st_joins))
        groups));
  st.st_status <- Dead

(* --- ret handling ------------------------------------------------------- *)

type rval = R_none | R_i of iop | R_f of fop

let do_ret e tc st slot rv =
  charge tc e.e_params.c_ret;
  let fr = slot.sl_frame in
  let mask = st.st_mask in
  let n = Array.length mask in
  (* a pending return-reconvergence join for this frame? *)
  let ret_join =
    match st.st_joins with
    | j :: _ when j.j_frame = fr.fr_id && j.j_rpc = ret_marker -> Some j
    | _ -> None
  in
  (match st.st_joins with
  | j :: _ when j.j_frame = fr.fr_id && j.j_rpc <> ret_marker ->
    fault "ret in %s before reconvergence at %s" fr.fr_info.fi_func.f_name j.j_rpc
  | _ -> ());
  (* restore the per-lane local stack pointers *)
  for lane = 0 to n - 1 do
    if um mask lane then
      Memory.set_local_sp e.e_mem ~thread:(lane_tid tc st lane) fr.fr_sp_save.(lane)
  done;
  (* deposit the return value into the caller's frame *)
  let deposit (caller : slot) =
    match (slot.sl_ret_dst, rv) with
    | Some (dst, false), R_i op ->
      let cfr = caller.sl_frame in
      let base = dst * cfr.fr_ws in
      for lane = 0 to n - 1 do
        if um mask lane then cfr.fr_ints.(base + lane) <- ieval fr lane op
      done
    | Some (dst, true), R_f op ->
      let cfr = caller.sl_frame in
      let base = dst * cfr.fr_ws in
      let ws = fr.fr_ws in
      for lane = 0 to n - 1 do
        if um mask lane then
          cfr.fr_floats.(base + lane) <-
            (match op with
            | FReg r -> fr.fr_floats.((r * ws) + lane)
            | FConst v -> v
            | FBad msg -> fault "%s" msg)
      done
    | Some _, R_none ->
      fault "function %s returns no value but caller expects one"
        fr.fr_info.fi_func.f_name
    | None, _ -> ()
    | Some _, _ ->
      (* decode derives both sides from the callee's f_ret; they can't
         disagree *)
      assert false
  in
  match ret_join with
  | Some j ->
    (match j.j_cont with caller :: _ -> deposit caller | [] -> ());
    arrive_join tc st j
  | None -> (
    match st.st_stack with
    | [] -> assert false
    | [ _ ] ->
      (* kernel-level return: these lanes are done *)
      for lane = 0 to n - 1 do
        if um mask lane then tc.tc_done.(lane_tid tc st lane) <- true
      done;
      st.st_status <- Dead
    | _ :: (caller :: _ as rest) ->
      deposit caller;
      st.st_stack <- rest)

(* --- instruction execution --------------------------------------------- *)

(* Execute one instruction for a strand. Returns [`Continue] to proceed to
   the next instruction, [`Suspend] when the strand suspended (barrier) or
   changed shape (call/death). *)
let rec exec_dinst e tc (st : strand) (slot : slot) (di : dinst) :
    [ `Continue | `Suspend ] =
  let p = e.e_params in
  let fr = slot.sl_frame in
  let mask = st.st_mask in
  let n = Array.length mask in
  let ws = fr.fr_ws in
  issue e tc st slot;
  match di with
  | D_ibin (r, f, a, b) ->
    charge tc p.c_alu;
    let base = r * ws in
    (match (a, b) with
    | IConst x, IConst y when st.st_active > 0 ->
      (* constant-constant: evaluate once, broadcast (division by zero
         still faults here, exactly as the first active lane would) *)
      let v = f x y in
      for lane = 0 to n - 1 do
        if um mask lane then fr.fr_ints.(base + lane) <- v
      done
    | _ ->
      for lane = 0 to n - 1 do
        if um mask lane then
          fr.fr_ints.(base + lane) <- f (ieval fr lane a) (ieval fr lane b)
      done);
    `Continue
  | D_fbin (r, k, a, b) ->
    charge tc p.c_falu;
    let base = r * ws in
    (match (a, b) with
    | FConst x, FConst y when st.st_active > 0 ->
      let v = fbin_apply k x y in
      for lane = 0 to n - 1 do
        if um mask lane then fr.fr_floats.(base + lane) <- v
      done
    | _ ->
      for lane = 0 to n - 1 do
        if um mask lane then begin
          let x =
            match a with
            | FReg r -> fr.fr_floats.((r * ws) + lane)
            | FConst v -> v
            | FBad msg -> fault "%s" msg
          and y =
            match b with
            | FReg r -> fr.fr_floats.((r * ws) + lane)
            | FConst v -> v
            | FBad msg -> fault "%s" msg
          in
          fr.fr_floats.(base + lane) <-
            (match k with
            | KFadd -> x +. y
            | KFsub -> x -. y
            | KFmul -> x *. y
            | KFdiv -> x /. y
            | KFmin -> if x <= y then x else y
            | KFmax -> if x >= y then x else y)
        end
      done);
    `Continue
  | D_icmp (r, f, a, b) ->
    charge tc p.c_alu;
    let base = r * ws in
    for lane = 0 to n - 1 do
      if um mask lane then
        fr.fr_ints.(base + lane) <- (if f (ieval fr lane a) (ieval fr lane b) then 1 else 0)
    done;
    `Continue
  | D_fcmp (r, k, a, b) ->
    charge tc p.c_falu;
    let base = r * ws in
    for lane = 0 to n - 1 do
      if um mask lane then begin
        let x =
          match a with
          | FReg r -> fr.fr_floats.((r * ws) + lane)
          | FConst v -> v
          | FBad msg -> fault "%s" msg
        and y =
          match b with
          | FReg r -> fr.fr_floats.((r * ws) + lane)
          | FConst v -> v
          | FBad msg -> fault "%s" msg
        in
        fr.fr_ints.(base + lane) <-
          (if
             match k with
             | Feq -> x = y
             | Fne -> x <> y
             | Flt -> x < y
             | Fle -> x <= y
             | Fgt -> x > y
             | Fge -> x >= y
           then 1
           else 0)
      end
    done;
    `Continue
  | D_un_i (r, f, a) ->
    charge tc p.c_alu;
    let base = r * ws in
    for lane = 0 to n - 1 do
      if um mask lane then fr.fr_ints.(base + lane) <- f (ieval fr lane a)
    done;
    `Continue
  | D_un_f (r, special, cost, k, a) ->
    charge tc cost;
    let base = r * ws in
    let broadcast v =
      for lane = 0 to n - 1 do
        if um mask lane then fr.fr_floats.(base + lane) <- v
      done
    in
    let per_lane () =
      for lane = 0 to n - 1 do
        if um mask lane then begin
          let x =
            match a with
            | FReg r -> fr.fr_floats.((r * ws) + lane)
            | FConst v -> v
            | FBad msg -> fault "%s" msg
          in
          fr.fr_floats.(base + lane) <-
            (match k with
            | KFneg -> -.x
            | KFabs -> Float.abs x
            | KFsqrt -> sqrt x
            | KFexp -> exp x
            | KFlog -> log x
            | KFsin -> sin x
            | KFcos -> cos x)
        end
      done
    in
    (* uniform-strand scalarization of SFU ops: one evaluation instead of
       [active] when the operand is bit-identical across active lanes *)
    if special && st.st_active > 0 then begin
      match a with
      | FConst v -> broadcast (fun_apply k v)
      | FReg reg ->
        let sbase = reg * ws in
        let l0 = first_active mask n 0 in
        let v0 = fr.fr_floats.(sbase + l0) in
        let rec uni lane =
          lane >= n
          || ((not (um mask lane)) || fsame fr.fr_floats.(sbase + lane) v0)
             && uni (lane + 1)
        in
        if uni (l0 + 1) then broadcast (fun_apply k v0) else per_lane ()
      | FBad msg -> fault "%s" msg
    end
    else per_lane ();
    `Continue
  | D_i2f (r, a) ->
    charge tc p.c_alu;
    let base = r * ws in
    for lane = 0 to n - 1 do
      if um mask lane then fr.fr_floats.(base + lane) <- float_of_int (ieval fr lane a)
    done;
    `Continue
  | D_f2i (r, a) ->
    charge tc p.c_alu;
    let base = r * ws in
    for lane = 0 to n - 1 do
      if um mask lane then
        fr.fr_ints.(base + lane) <-
          int_of_float
            (match a with
            | FReg r -> fr.fr_floats.((r * ws) + lane)
            | FConst v -> v
            | FBad msg -> fault "%s" msg)
    done;
    `Continue
  | D_sel_i (r, c, x, y) ->
    charge tc p.c_alu;
    let base = r * ws in
    for lane = 0 to n - 1 do
      if um mask lane then
        fr.fr_ints.(base + lane) <-
          (if ieval fr lane c <> 0 then ieval fr lane x else ieval fr lane y)
    done;
    `Continue
  | D_sel_f (r, c, x, y) ->
    charge tc p.c_alu;
    let base = r * ws in
    for lane = 0 to n - 1 do
      if um mask lane then begin
        let sel = if ieval fr lane c <> 0 then x else y in
        fr.fr_floats.(base + lane) <-
          (match sel with
          | FReg r -> fr.fr_floats.((r * ws) + lane)
          | FConst v -> v
          | FBad msg -> fault "%s" msg)
      end
    done;
    `Continue
  | D_load_i (r, ty, addr) ->
    let base = r * ws in
    let l0 = first_active mask n 0 in
    if l0 < 0 then charge tc p.c_local_access (* empty access set *)
    else begin
      let uni = fill_addrs e fr mask n addr l0 in
      let a0 = e.e_addr.(l0) in
      let space0 = Memory.decode_space a0 in
      if uni && e.e_fastmem && space0 <> Local then begin
        (* scalarized: one memory operation feeds every active lane *)
        charge_mem_uniform e tc ~space:space0 ~active:st.st_active;
        let v =
          Memory.fast_load_int e.e_mem ~thread:(lane_tid tc st l0) ~space:space0
            ~off:(Memory.decode_off a0) ~ptr:a0 ty
        in
        for lane = 0 to n - 1 do
          if um mask lane then fr.fr_ints.(base + lane) <- v
        done
      end
      else begin
        charge_mem_lanes e tc mask n;
        if e.e_fastmem then
          for lane = 0 to n - 1 do
            if um mask lane then
              fr.fr_ints.(base + lane) <-
                Memory.fast_load_int e.e_mem ~thread:(lane_tid tc st lane)
                  ~space:e.e_space.(lane) ~off:e.e_off.(lane) ~ptr:e.e_addr.(lane) ty
          done
        else
          for lane = 0 to n - 1 do
            if um mask lane then
              fr.fr_ints.(base + lane) <-
                Memory.load_int e.e_mem ~thread:(lane_tid tc st lane) e.e_addr.(lane) ty
          done
      end
    end;
    (match e.e_inject with
    | Some inj
      when Faultinject.fire inj Faultinject.Corrupt_load ~fn:fr.fr_info.fi_func.f_name
      ->
      (* perturb the value the first active lane just loaded *)
      if l0 >= 0 then
        fr.fr_ints.(base + l0) <- Faultinject.corrupt_int inj fr.fr_ints.(base + l0)
    | _ -> ());
    `Continue
  | D_load_f (r, addr) ->
    let base = r * ws in
    let l0 = first_active mask n 0 in
    if l0 < 0 then charge tc p.c_local_access
    else begin
      let uni = fill_addrs e fr mask n addr l0 in
      let a0 = e.e_addr.(l0) in
      let space0 = Memory.decode_space a0 in
      if uni && e.e_fastmem && space0 <> Local then begin
        charge_mem_uniform e tc ~space:space0 ~active:st.st_active;
        Memory.fast_load_float_at e.e_mem ~thread:(lane_tid tc st l0) ~space:space0
          ~off:(Memory.decode_off a0) ~ptr:a0 fr.fr_floats (base + l0);
        let v = fr.fr_floats.(base + l0) in
        for lane = 0 to n - 1 do
          if um mask lane then fr.fr_floats.(base + lane) <- v
        done
      end
      else begin
        charge_mem_lanes e tc mask n;
        if e.e_fastmem then
          for lane = 0 to n - 1 do
            if um mask lane then
              Memory.fast_load_float_at e.e_mem ~thread:(lane_tid tc st lane)
                ~space:e.e_space.(lane) ~off:e.e_off.(lane) ~ptr:e.e_addr.(lane)
                fr.fr_floats (base + lane)
          done
        else
          for lane = 0 to n - 1 do
            if um mask lane then
              fr.fr_floats.(base + lane) <-
                Memory.load_float e.e_mem ~thread:(lane_tid tc st lane) e.e_addr.(lane)
          done
      end
    end;
    (match e.e_inject with
    | Some inj
      when Faultinject.fire inj Faultinject.Corrupt_load ~fn:fr.fr_info.fi_func.f_name
      ->
      if l0 >= 0 then
        fr.fr_floats.(base + l0) <-
          Faultinject.corrupt_float inj fr.fr_floats.(base + l0)
    | _ -> ());
    `Continue
  | D_store_i (ty, v, addr) -> (
    match e.e_inject with
    | Some inj
      when Faultinject.fire inj Faultinject.Drop_store ~fn:fr.fr_info.fi_func.f_name ->
      `Continue (* the store silently never happens *)
    | _ ->
      let l0 = first_active mask n 0 in
      if l0 < 0 then charge tc p.c_local_access
      else begin
        let uni = fill_addrs e fr mask n addr l0 in
        let a0 = e.e_addr.(l0) in
        let space0 = Memory.decode_space a0 in
        if uni && e.e_fastmem && space0 <> Local then begin
          (* all lanes write the same cell in lane order; only the last
             active lane's value survives, so store exactly that once *)
          charge_mem_uniform e tc ~space:space0 ~active:st.st_active;
          let ll = last_active mask (n - 1) in
          Memory.fast_store_int e.e_mem ~thread:(lane_tid tc st ll) ~space:space0
            ~off:(Memory.decode_off a0) ~ptr:a0 ty (ieval fr ll v)
        end
        else begin
          charge_mem_lanes e tc mask n;
          if e.e_fastmem then
            for lane = 0 to n - 1 do
              if um mask lane then
                Memory.fast_store_int e.e_mem ~thread:(lane_tid tc st lane)
                  ~space:e.e_space.(lane) ~off:e.e_off.(lane) ~ptr:e.e_addr.(lane) ty
                  (ieval fr lane v)
            done
          else
            for lane = 0 to n - 1 do
              if um mask lane then
                Memory.store_int e.e_mem ~thread:(lane_tid tc st lane) e.e_addr.(lane)
                  ty (ieval fr lane v)
            done
        end
      end;
      `Continue)
  | D_store_f (v, addr) -> (
    match e.e_inject with
    | Some inj
      when Faultinject.fire inj Faultinject.Drop_store ~fn:fr.fr_info.fi_func.f_name ->
      `Continue
    | _ ->
      let l0 = first_active mask n 0 in
      if l0 < 0 then charge tc p.c_local_access
      else begin
        let uni = fill_addrs e fr mask n addr l0 in
        let a0 = e.e_addr.(l0) in
        let space0 = Memory.decode_space a0 in
        (if uni && e.e_fastmem && space0 <> Local then begin
           charge_mem_uniform e tc ~space:space0 ~active:st.st_active;
           let ll = last_active mask (n - 1) in
           let off0 = Memory.decode_off a0 in
           match v with
           | FReg rv ->
             Memory.fast_store_float_from e.e_mem ~thread:(lane_tid tc st ll)
               ~space:space0 ~off:off0 ~ptr:a0 fr.fr_floats ((rv * ws) + ll)
           | FConst c ->
             e.e_fscr.(0) <- c;
             Memory.fast_store_float_from e.e_mem ~thread:(lane_tid tc st ll)
               ~space:space0 ~off:off0 ~ptr:a0 e.e_fscr 0
           | FBad msg -> fault "%s" msg
         end
         else begin
           charge_mem_lanes e tc mask n;
           if e.e_fastmem then (
             match v with
             | FReg rv ->
               for lane = 0 to n - 1 do
                 if um mask lane then
                   Memory.fast_store_float_from e.e_mem ~thread:(lane_tid tc st lane)
                     ~space:e.e_space.(lane) ~off:e.e_off.(lane) ~ptr:e.e_addr.(lane)
                     fr.fr_floats ((rv * ws) + lane)
               done
             | FConst c ->
               e.e_fscr.(0) <- c;
               for lane = 0 to n - 1 do
                 if um mask lane then
                   Memory.fast_store_float_from e.e_mem ~thread:(lane_tid tc st lane)
                     ~space:e.e_space.(lane) ~off:e.e_off.(lane) ~ptr:e.e_addr.(lane)
                     e.e_fscr 0
               done
             | FBad msg -> fault "%s" msg)
           else
             for lane = 0 to n - 1 do
               if um mask lane then
                 Memory.store_float e.e_mem ~thread:(lane_tid tc st lane)
                   e.e_addr.(lane) (feval fr lane v)
             done
         end)
      end;
      `Continue)
  | D_alloca (r, size) ->
    charge tc p.c_alloca;
    let base = r * ws in
    for lane = 0 to n - 1 do
      if um mask lane then
        fr.fr_ints.(base + lane) <-
          Memory.alloca e.e_mem ~thread:(lane_tid tc st lane) size
    done;
    `Continue
  | D_intr (r, i) ->
    charge tc p.c_alu;
    let base = r * ws in
    let broadcast v =
      for lane = 0 to n - 1 do
        if um mask lane then fr.fr_ints.(base + lane) <- v
      done
    in
    (match i with
    | Thread_id ->
      for lane = 0 to n - 1 do
        if um mask lane then fr.fr_ints.(base + lane) <- lane_tid tc st lane
      done
    | Lane_id ->
      for lane = 0 to n - 1 do
        if um mask lane then
          fr.fr_ints.(base + lane) <- lane_tid tc st lane mod p.warp_size
      done
    (* launch-geometry intrinsics are lane-invariant: broadcast *)
    | Block_id -> broadcast tc.tc_team
    | Block_dim -> broadcast tc.tc_threads
    | Grid_dim -> broadcast e.e_launch.l_teams
    | Warp_size -> broadcast p.warp_size);
    `Continue
  | D_malloc (r, size) ->
    charge tc p.c_malloc;
    tc.tc_counters.mallocs <- tc.tc_counters.mallocs + 1;
    let base = r * ws in
    (match e.e_arena with
    | Some (abase, cap) ->
      (* bump within the team's pre-reserved arena window: addresses
         depend only on (team, allocation order), never on which other
         teams have run — required for domain-count bit-identity *)
      let limit = abase + ((tc.tc_team + 1) * cap) in
      for lane = 0 to n - 1 do
        if um mask lane then begin
          let sz = ieval fr lane size in
          let off = (e.e_arena_cur + 7) land lnot 7 in
          if sz < 0 || off + sz > limit then
            Fault.fail Fault.Oob
              "kernel malloc of %dB exhausts the team's %dB arena" sz cap;
          e.e_arena_cur <- off + sz;
          fr.fr_ints.(base + lane) <-
            Memory.mark_alloc e.e_mem Global ~offset:off ~size:sz
        end
      done
    | None ->
      (* unreachable when the module was scanned for Malloc at launch;
         kept as the legacy device-wide bump for direct [run] callers *)
      for lane = 0 to n - 1 do
        if um mask lane then
          fr.fr_ints.(base + lane) <- Memory.malloc e.e_mem (ieval fr lane size)
      done);
    `Continue
  | D_free ->
    charge tc p.c_alu;
    `Continue
  | D_assume o ->
    let forced =
      match e.e_inject with
      | Some inj ->
        Faultinject.fire inj Faultinject.Violate_assume ~fn:fr.fr_info.fi_func.f_name
      | None -> false
    in
    if e.e_launch.l_check_assumes then
      for lane = 0 to n - 1 do
        if um mask lane && (forced || ieval fr lane o = 0) then
          Fault.trap Fault.Assume_violation
            "assumption violated in %s at %s:%d (thread %d)%s"
            fr.fr_info.fi_func.f_name slot.sl_blk slot.sl_idx (lane_tid tc st lane)
            (if forced then " [injected]" else "")
      done;
    `Continue
  | D_trap msg -> Fault.trap Fault.Trap "%s" msg
  | D_debug (msg, ops) ->
    if e.e_launch.l_debug then begin
      let l = first_active mask n 0 in
      if l >= 0 then
        Fmt.epr "[vgpu team %d thread %d] %s %a@." tc.tc_team (lane_tid tc st l) msg
          (Fmt.list ~sep:Fmt.sp Fmt.int)
          (List.map (ieval fr l) ops)
    end;
    `Continue
  | D_atomic_i (dst, op, ty, addr, ops) ->
    let rec scan lane any =
      if lane >= n then any
      else if um mask lane then begin
        let a = ieval fr lane addr in
        e.e_addr.(lane) <- a;
        scan (lane + 1) (any || Memory.decode_space a = Global)
      end
      else scan (lane + 1) any
    in
    let global = scan 0 false in
    charge tc (if global then p.c_atomic_global else p.c_atomic_shared);
    tc.tc_counters.atomics <- tc.tc_counters.atomics + 1;
    (* the RMW below is a plain load/store pair; tell the sanitizer these
       accesses are one indivisible atomic operation *)
    (match e.e_san with Some s -> Sanitizer.set_atomic s true | None -> ());
    (* lanes perform the RMW sequentially in lane order *)
    for lane = 0 to n - 1 do
      if um mask lane then begin
        let tid = lane_tid tc st lane in
        let a = e.e_addr.(lane) in
        let old = Memory.load_int e.e_mem ~thread:tid a ty in
        (match dst with
        | Some r -> fr.fr_ints.((r * ws) + lane) <- old
        | None -> ());
        let nv =
          match op with
          | Atomic_add when Array.length ops = 1 -> old + ieval fr lane ops.(0)
          | Atomic_exch when Array.length ops = 1 -> ieval fr lane ops.(0)
          | Atomic_max when Array.length ops = 1 -> max old (ieval fr lane ops.(0))
          | Atomic_cas when Array.length ops = 2 ->
            if old = ieval fr lane ops.(0) then ieval fr lane ops.(1) else old
          | _ -> fault "malformed atomic"
        in
        Memory.store_int e.e_mem ~thread:tid a ty nv
      end
    done;
    (match e.e_san with Some s -> Sanitizer.set_atomic s false | None -> ());
    `Continue
  | D_atomic_f (dst, op, addr, ops) ->
    let rec scan lane any =
      if lane >= n then any
      else if um mask lane then begin
        let a = ieval fr lane addr in
        e.e_addr.(lane) <- a;
        scan (lane + 1) (any || Memory.decode_space a = Global)
      end
      else scan (lane + 1) any
    in
    let global = scan 0 false in
    charge tc (if global then p.c_atomic_global else p.c_atomic_shared);
    tc.tc_counters.atomics <- tc.tc_counters.atomics + 1;
    (match e.e_san with Some s -> Sanitizer.set_atomic s true | None -> ());
    for lane = 0 to n - 1 do
      if um mask lane then begin
        let tid = lane_tid tc st lane in
        let a = e.e_addr.(lane) in
        let old = Memory.load_float e.e_mem ~thread:tid a in
        (match dst with
        | Some r -> fr.fr_floats.((r * ws) + lane) <- old
        | None -> ());
        let nv =
          match op with
          | Atomic_add when Array.length ops = 1 -> old +. feval fr lane ops.(0)
          | Atomic_exch when Array.length ops = 1 -> feval fr lane ops.(0)
          | Atomic_max when Array.length ops = 1 -> Float.max old (feval fr lane ops.(0))
          | Atomic_cas when Array.length ops = 2 ->
            if old = feval fr lane ops.(0) then feval fr lane ops.(1) else old
          | _ -> fault "malformed atomic"
        in
        Memory.store_float e.e_mem ~thread:tid a nv
      end
    done;
    (match e.e_san with Some s -> Sanitizer.set_atomic s false | None -> ());
    `Continue
  | D_barrier aligned -> (
    charge tc p.c_barrier;
    tc.tc_counters.barriers <- tc.tc_counters.barriers + 1;
    if aligned then
      tc.tc_counters.aligned_barriers <- tc.tc_counters.aligned_barriers + 1;
    match e.e_inject with
    | Some inj
      when Faultinject.fire inj Faultinject.Skip_barrier ~fn:fr.fr_info.fi_func.f_name
      ->
      (* the strand sails past the barrier without waiting (the main loop
         advances past the barrier instruction on `Continue) *)
      `Continue
    | _ ->
      slot.sl_idx <- slot.sl_idx + 1;
      st.st_status <-
        At_barrier
          { bs_fn = fr.fr_info.fi_func.f_name; bs_blk = slot.sl_blk;
            bs_idx = slot.sl_idx - 1; bs_aligned = aligned };
      `Suspend)
  | D_call dc -> do_call_fast e tc st slot dc
  | D_icall (dst, cop, args) ->
    (* indirect targets must be uniform across the strand *)
    let rec scan lane target got =
      if lane >= n then target
      else if um mask lane then begin
        let v = ieval fr lane cop in
        if not got then scan (lane + 1) v true
        else if v <> target then fault "divergent indirect call target"
        else scan (lane + 1) target got
      end
      else scan (lane + 1) target got
    in
    let target = scan 0 0 false in
    if target = 0 then fault "indirect call through null function pointer";
    let callee =
      if target >= 1 && target <= Array.length e.e_ftable then
        e.e_ftable.(target - 1).f_name
      else fault "indirect call to invalid function pointer %d" target
    in
    do_call_dyn e tc st slot ~dst ~callee ~args

(* Direct call through the pre-decoded descriptor: validity was checked at
   decode time, so this only binds arguments and pushes the frame. *)
and do_call_fast e tc st slot dc =
  charge tc e.e_params.c_call;
  tc.tc_counters.calls <- tc.tc_counters.calls + 1;
  match dc with
  | DC_fail raise_it ->
    raise_it ();
    assert false
  | DC_ok { dc_callee; dc_entry; dc_ret; dc_args } ->
    let fr = slot.sl_frame in
    let mask = st.st_mask in
    let n = Array.length mask in
    (* advance the caller past the call before pushing *)
    slot.sl_idx <- slot.sl_idx + 1;
    let frame = make_frame tc e dc_callee ~warp_size:n in
    for lane = 0 to n - 1 do
      if um mask lane then
        frame.fr_sp_save.(lane) <- Memory.local_sp e.e_mem ~thread:(lane_tid tc st lane)
    done;
    Array.iter
      (function
        | DA_i (preg, op) ->
          let base = preg * frame.fr_ws in
          for lane = 0 to n - 1 do
            if um mask lane then frame.fr_ints.(base + lane) <- ieval fr lane op
          done
        | DA_f (preg, op) ->
          let base = preg * frame.fr_ws in
          for lane = 0 to n - 1 do
            if um mask lane then frame.fr_floats.(base + lane) <- feval fr lane op
          done)
      dc_args;
    st.st_stack <-
      { sl_frame = frame; sl_blk = dc_entry; sl_idx = 0; sl_ret_dst = dc_ret }
      :: st.st_stack;
    `Suspend (* re-enter the main loop so the new top slot is picked up *)

(* Dynamic call path for indirect calls: the callee is only known at
   execution time, so lookup, arity check and argument binding all happen
   here, against the AST operands. *)
and do_call_dyn e tc st slot ~dst ~callee ~args =
  charge tc e.e_params.c_call;
  tc.tc_counters.calls <- tc.tc_counters.calls + 1;
  let fr = slot.sl_frame in
  let mask = st.st_mask in
  let n = Array.length mask in
  let fi = fn_info e callee in
  let cf = fi.fi_func in
  if List.length cf.f_params <> List.length args then
    fault "call to %s with %d args (expects %d)" callee (List.length args)
      (List.length cf.f_params);
  (* advance the caller past the call before pushing *)
  slot.sl_idx <- slot.sl_idx + 1;
  let frame = make_frame tc e callee ~warp_size:n in
  for lane = 0 to n - 1 do
    if um mask lane then
      frame.fr_sp_save.(lane) <- Memory.local_sp e.e_mem ~thread:(lane_tid tc st lane)
  done;
  List.iter2
    (fun (preg, pty) argop ->
      let base = preg * frame.fr_ws in
      if is_float_typ pty then
        for lane = 0 to n - 1 do
          if um mask lane then frame.fr_floats.(base + lane) <- eval_f e fr lane argop
        done
      else
        for lane = 0 to n - 1 do
          if um mask lane then frame.fr_ints.(base + lane) <- eval_i e fr lane argop
        done)
    cf.f_params args;
  let ret_dst =
    match (dst, cf.f_ret) with
    | Some r, Some t -> Some (r, is_float_typ t)
    | Some _, None -> fault "call to void function %s expects a value" callee
    | None, _ -> None
  in
  let entry = (entry_block cf).b_label in
  let callee_slot =
    { sl_frame = frame; sl_blk = entry; sl_idx = 0; sl_ret_dst = ret_dst }
  in
  st.st_stack <- callee_slot :: st.st_stack;
  `Suspend

(* tie the threaded-code fallback to the interpreter *)
let () = exec_fallback := exec_dinst

(* --- terminators -------------------------------------------------------- *)

let exec_dterm e tc st slot (dt : dterm) =
  let fr = slot.sl_frame in
  let mask = st.st_mask in
  let n = Array.length mask in
  charge tc e.e_params.c_branch;
  Fault.set_site e.e_fctx ~fn:fr.fr_info.fi_func.f_name ~blk:slot.sl_blk ~idx:slot.sl_idx;
  Fault.set_strand e.e_fctx ~team:tc.tc_team ~warp:st.st_warp ~mask;
  e.e_budget <- e.e_budget - 1;
  if e.e_budget <= 0 then
    Fault.fail Fault.Budget_exhausted "instruction budget exceeded (runaway kernel?)";
  match dt with
  | T_ret_none -> do_ret e tc st slot R_none
  | T_ret_i op -> do_ret e tc st slot (R_i op)
  | T_ret_f op -> do_ret e tc st slot (R_f op)
  | T_br l -> transfer tc st slot ~to_blk:l
  | T_unreach -> Fault.trap Fault.Unreachable "reached unreachable"
  | T_cond (c, lt, lf) -> (
    (* stage per-lane conditions in scratch; allocate the split masks only
       on actual divergence *)
    let rec scan lane acc =
      if lane >= n then acc
      else if um mask lane then begin
        let t = ieval fr lane c <> 0 in
        Array.unsafe_set e.e_cond lane t;
        scan (lane + 1) (acc lor if t then 1 else 2)
      end
      else scan (lane + 1) acc
    in
    match scan 0 0 with
    | 1 -> transfer tc st slot ~to_blk:lt
    | 2 -> transfer tc st slot ~to_blk:lf
    | _ ->
      let mt = Array.make n false and mf = Array.make n false in
      for lane = 0 to n - 1 do
        if um mask lane then
          if e.e_cond.(lane) then mt.(lane) <- true else mf.(lane) <- true
      done;
      diverge tc st slot [ (lt, mt); (lf, mf) ])
  | T_switch (op, cases, default) ->
    let ncases = Array.length cases in
    let rec find_case v i =
      if i >= ncases then default
      else
        let cv, l = cases.(i) in
        if cv = v then l else find_case v (i + 1)
    in
    (* groups in first-seen order, as the divergence order is scheduling
       order *)
    let groups = ref [] in
    for lane = 0 to n - 1 do
      if um mask lane then begin
        let lbl = find_case (ieval fr lane op) 0 in
        match List.assoc_opt lbl !groups with
        | Some m -> m.(lane) <- true
        | None ->
          let m = Array.make n false in
          m.(lane) <- true;
          groups := !groups @ [ (lbl, m) ]
      end
    done;
    (match !groups with
    | [ (lbl, _) ] -> transfer tc st slot ~to_blk:lbl
    | gs -> diverge tc st slot gs)

(* --- strand / team scheduling ------------------------------------------- *)

(* Run one strand until it suspends, dies or splits. The block lookup is
   hoisted out of the instruction loop: one hash probe per block entry
   instead of one per instruction. *)
(* Watchdog granularity: one clock read per 256 block visits keeps the
   overhead invisible while still bounding a runaway kernel's overshoot
   to a few thousand instructions past its deadline. The cycle budget
   ([e_budget]) guards simulated work; this guards host wall-clock.
   Each domain polls the (shared, read-only) watchdog closure itself;
   the same fuel counter also rate-limits the parallel-run abort check. *)
let wd_poll_interval = 256

(* a sibling domain recorded a fault on an earlier team: this domain's
   current team would never have run sequentially, so stop silently *)
exception Sibling_abort

let poll_watchdog e =
  match (e.e_watchdog, e.e_abort) with
  | None, None -> ()
  | wd, ab ->
    e.e_wd_fuel <- e.e_wd_fuel - 1;
    if e.e_wd_fuel <= 0 then begin
      e.e_wd_fuel <- wd_poll_interval;
      (match ab with
      | Some a when Atomic.get a < e.e_cur_team -> raise Sibling_abort
      | _ -> ());
      match wd with
      | Some expired when expired () ->
        Fault.fail Fault.Deadline "wall-clock watchdog deadline exceeded"
      | _ -> ()
    end

let run_strand e tc st =
  let continue_ = ref true in
  while !continue_ && st.st_status = Run do
    poll_watchdog e;
    match st.st_stack with
    | [] ->
      st.st_status <- Dead;
      continue_ := false
    | slot :: _ ->
      let b =
        match Hashtbl.find_opt slot.sl_frame.fr_info.fi_blocks slot.sl_blk with
        | Some b -> b
        | None -> fault "missing block %s" slot.sl_blk
      in
      let ninsts = Array.length b.cb_insts in
      (* hot-spot accounting sits at block granularity, outside the
         per-instruction loop, so the disabled-path cost is this one
         branch per block visit and golden counters cannot change *)
      let prof = e.e_prof in
      let wi0 = if prof then tc.tc_counters.Counters.warp_instructions else 0 in
      let cyc0 = if prof then tc.tc_counters.Counters.cycles else 0 in
      let inner = ref true in
      (* the two executors share everything around this dispatch point:
         the VM loop indexes the pre-compiled closure array, the IR loop
         matches on the decoded constructor; terminators, suspension and
         profiling are common *)
      if e.e_exec = Exec_vm then begin
        let code = b.cb_code in
        while !inner do
          if slot.sl_idx < ninsts then begin
            match (Array.unsafe_get code slot.sl_idx) e tc st slot with
            | `Continue -> slot.sl_idx <- slot.sl_idx + 1
            | `Suspend ->
              inner := false;
              continue_ := false
          end
          else begin
            exec_dterm e tc st slot b.cb_term;
            inner := false;
            match st.st_status with Run -> () | _ -> continue_ := false
          end
        done
      end
      else
        while !inner do
          if slot.sl_idx < ninsts then begin
            match exec_dinst e tc st slot (Array.unsafe_get b.cb_insts slot.sl_idx) with
            | `Continue -> slot.sl_idx <- slot.sl_idx + 1
            | `Suspend ->
              inner := false;
              continue_ := false
          end
          else begin
            exec_dterm e tc st slot b.cb_term;
            inner := false;
            (* after a terminator the outer loop re-examines status/stack *)
            match st.st_status with Run -> () | _ -> continue_ := false
          end
        done;
      if prof then begin
        b.cb_hits <- b.cb_hits + 1;
        b.cb_wi <- b.cb_wi + (tc.tc_counters.Counters.warp_instructions - wi0);
        b.cb_cyc <- b.cb_cyc + (tc.tc_counters.Counters.cycles - cyc0)
      end
  done

let release_barriers e tc =
  (* aligned-barrier discipline: if any waiting strand is at an aligned
     barrier, every waiting strand must be at the same site *)
  let sites = ref [] in
  Svec.iter
    (fun s -> match s.st_status with At_barrier b -> sites := b :: !sites | _ -> ())
    tc.tc_strands;
  let sites = List.rev !sites in
  let aligned = List.exists (fun b -> b.bs_aligned) sites in
  (match sites with
  | first :: rest when aligned ->
    List.iter
      (fun b ->
        if b.bs_fn <> first.bs_fn || b.bs_blk <> first.bs_blk || b.bs_idx <> first.bs_idx
        then
          Fault.fail Fault.Divergent_barrier
            "aligned barrier divergence: %s:%s:%d vs %s:%s:%d" first.bs_fn first.bs_blk
            first.bs_idx b.bs_fn b.bs_blk b.bs_idx)
      rest
  | _ -> ());
  (* a team-wide release is a synchronization point: advance the epoch *)
  (match e.e_san with Some s -> Sanitizer.barrier_release s | None -> ());
  Svec.iter
    (fun s -> match s.st_status with At_barrier _ -> s.st_status <- Run | _ -> ())
    tc.tc_strands

(* Check partial-warp arrival at aligned barriers: a strand waiting at an
   aligned barrier must carry every still-alive lane of its warp. *)
let check_aligned_mask tc st site =
  if site.bs_aligned then begin
    let n = Array.length st.st_mask in
    for lane = 0 to n - 1 do
      let tid = lane_tid tc st lane in
      if tid < tc.tc_threads && not tc.tc_done.(tid) && not st.st_mask.(lane) then begin
        (* the lane is alive but not in this strand: only legal if another
           strand of the same warp is waiting at the same site *)
        let covered =
          Svec.exists
            (fun s' ->
              s' != st && s'.st_warp = st.st_warp && s'.st_mask.(lane)
              &&
              match s'.st_status with
              | At_barrier b' ->
                b'.bs_fn = site.bs_fn && b'.bs_blk = site.bs_blk && b'.bs_idx = site.bs_idx
              | _ -> false)
            tc.tc_strands
        in
        if not covered then
          Fault.fail Fault.Divergent_barrier ~threads:[ tid ]
            "aligned barrier at %s:%s:%d reached divergently by warp %d (thread %d \
             alive but absent)"
            site.bs_fn site.bs_blk site.bs_idx st.st_warp tid
      end
    done
  end

(* Forced partial reconvergence (independent thread scheduling): when a
   join has arrivals but its remaining siblings are blocked (e.g. the main
   thread executes team barriers while the rest of its warp waits at the
   reconvergence point of the `if (target_init() == 1)` split), the parked
   lanes must make forward progress, as Volta-class hardware guarantees.
   The join splits: arrived lanes resume from the continuation as their
   own strand; the remaining siblings will form another. Outer joins then
   expect one extra arrival. Returns true if a join was split. *)
let force_partial_reconvergence tc : bool =
  (* collect pending joins reachable from live strands, innermost first *)
  let candidates = ref [] in
  let seen = Hashtbl.create 8 in
  Svec.iter
    (fun s ->
      if s.st_status <> Dead then
        List.iter
          (fun j ->
            if not (Hashtbl.mem seen j.j_id) then begin
              Hashtbl.replace seen j.j_id ();
              if j.j_arrived > 0 && j.j_arrived < j.j_expected then
                candidates := j :: !candidates
            end)
          s.st_joins)
    tc.tc_strands;
  match List.sort (fun a b -> compare a.j_id b.j_id) !candidates with
  | [] -> false
  | j :: _ ->
    let mask = Array.copy j.j_mask in
    Array.fill j.j_mask 0 (Array.length j.j_mask) false;
    j.j_expected <- j.j_expected - j.j_arrived;
    j.j_arrived <- 0;
    List.iter (fun outer -> outer.j_expected <- outer.j_expected + 1) j.j_outer;
    let warp =
      (* recover the warp index from any set lane (mask lanes are within
         one warp by construction) *)
      if Svec.length tc.tc_strands > 0 then (Svec.get tc.tc_strands 0).st_warp else 0
    in
    (* find the true warp: the strand still holding this join *)
    let warp =
      match
        Svec.find_opt
          (fun s -> s.st_status <> Dead && List.memq j s.st_joins)
          tc.tc_strands
      with
      | Some s -> s.st_warp
      | None -> warp
    in
    ignore
      (new_strand tc ~warp ~mask ~stack:(List.map copy_slot j.j_cont) ~joins:j.j_outer);
    true

let run_team e ~team =
  let p = e.e_params in
  let threads = e.e_launch.l_threads in
  (* Per-team execution state. The issue budget is per team (not per
     launch) so that whether a team blows it never depends on how many
     teams ran before it — a prerequisite for domain-count bit-identity.
     The injection stream and the malloc-arena cursor are re-derived per
     team for the same reason. *)
  e.e_cur_team <- team;
  e.e_budget <- e.e_budget0;
  e.e_inject <-
    (match e.e_spec with
    | Some s -> Faultinject.start_team s ~team ~teams:e.e_launch.l_teams
    | None -> None);
  (match e.e_arena with
  | Some (base, cap) -> e.e_arena_cur <- base + (team * cap)
  | None -> ());
  let tc =
    { tc_team = team; tc_threads = threads; tc_warp_size = p.warp_size;
      tc_done = Array.make threads false; tc_strands = Svec.create ();
      tc_next_seq = 0; tc_next_frame = 0; tc_next_join = 0;
      tc_counters = Counters.create () }
  in
  (* announce the team's shared allocations to the sanitizer before the
     shared globals are (re-)initialized; the trunc-shared injection shaves
     bytes off the allocation it targets so in-bounds accesses of the real
     global become OOB in the shadow state *)
  (match e.e_san with
  | Some san ->
    Sanitizer.team_start san;
    List.iter
      (fun ((g : global), off) ->
        let size =
          match e.e_inject with
          | Some inj when Faultinject.fire inj Faultinject.Trunc_shared ~fn:g.g_name ->
            max 0 (g.g_size - 8)
          | _ -> g.g_size
        in
        (* runtime-internal shared state (team ICVs, the exclusive-execution
           dummy sink) uses benign last-writer-wins idioms; exempt it from
           race checks, not from bounds checks *)
        let internal =
          String.length g.g_name >= 6 && String.sub g.g_name 0 6 = "__omp_"
        in
        Sanitizer.register_shared san ~race_checked:(not internal) ~offset:off ~size ())
      e.e_shared_globals
  | None -> ());
  Memory.reset_team e.e_mem ~shared_globals:e.e_shared_globals;
  (* spawn one strand per warp *)
  let kernel =
    match List.find_opt (fun f -> f.f_is_kernel) e.e_module.m_funcs with
    | Some k -> k
    | None -> fault "module has no kernel"
  in
  let nwarps = (threads + p.warp_size - 1) / p.warp_size in
  for w = 0 to nwarps - 1 do
    let lanes = min p.warp_size (threads - (w * p.warp_size)) in
    let mask = Array.init p.warp_size (fun l -> l < lanes) in
    let frame = make_frame tc e kernel.f_name ~warp_size:p.warp_size in
    (* kernel arguments are uniform across all threads *)
    List.iteri
      (fun i ((preg, pty), arg) ->
        ignore i;
        let base = preg * p.warp_size in
        for lane = 0 to p.warp_size - 1 do
          match (arg, is_float_typ pty) with
          | Ai v, false -> frame.fr_ints.(base + lane) <- v
          | Af v, true -> frame.fr_floats.(base + lane) <- v
          | Ai v, true -> frame.fr_floats.(base + lane) <- float_of_int v
          | Af _, false -> fault "float argument for integer kernel parameter"
        done)
      (* bind against the frame's function: under [Exec_vm] its params
         carry the renamed register indices the frame is laid out by *)
      (try List.combine frame.fr_info.fi_func.f_params e.e_launch.l_args
       with Invalid_argument _ ->
         fault "kernel %s expects %d args, got %d" kernel.f_name
           (List.length kernel.f_params)
           (List.length e.e_launch.l_args));
    let slot =
      { sl_frame = frame; sl_blk = (entry_block kernel).b_label; sl_idx = 0;
        sl_ret_dst = None }
    in
    ignore (new_strand tc ~warp:w ~mask ~stack:[ slot ] ~joins:[])
  done;
  (* scheduler loop *)
  let finished = ref false in
  while not !finished do
    Svec.compact tc.tc_strands (fun s -> s.st_status <> Dead);
    match Svec.find_opt (fun s -> s.st_status = Run) tc.tc_strands with
    | Some s -> run_strand e tc s
    | None ->
      let alive = ref 0 in
      Array.iter (fun d -> if not d then incr alive) tc.tc_done;
      if !alive = 0 then finished := true
      else begin
        (* count lanes waiting at barriers, remembering who waits where *)
        let waiting = ref 0 in
        let waiting_tids = Hashtbl.create 16 in
        let sites = ref [] in
        Svec.iter
          (fun s ->
            match s.st_status with
            | At_barrier site ->
              check_aligned_mask tc s site;
              if not
                   (List.exists
                      (fun b ->
                        b.bs_fn = site.bs_fn && b.bs_blk = site.bs_blk
                        && b.bs_idx = site.bs_idx)
                      !sites)
              then sites := site :: !sites;
              Array.iteri
                (fun lane b ->
                  let tid = lane_tid tc s lane in
                  if b && tid < threads && not tc.tc_done.(tid) then begin
                    incr waiting;
                    Hashtbl.replace waiting_tids tid ()
                  end)
                s.st_mask
            | _ -> ())
          tc.tc_strands;
        if !waiting = !alive then release_barriers e tc
        else if not (force_partial_reconvergence tc) then begin
          (* divergent-barrier watchdog: the hang becomes a structured
             fault naming the threads that never arrived *)
          let stuck = ref [] in
          for tid = threads - 1 downto 0 do
            if (not tc.tc_done.(tid)) && not (Hashtbl.mem waiting_tids tid) then
              stuck := tid :: !stuck
          done;
          let site_str =
            match !sites with
            | [] -> "?"
            | ss ->
              String.concat ", "
                (List.rev_map
                   (fun b -> Printf.sprintf "%s:%s:%d" b.bs_fn b.bs_blk b.bs_idx)
                   ss)
          in
          Fault.fail Fault.Divergent_barrier ~threads:!stuck
            "barrier deadlock in team %d: %d threads waiting at %s, %d alive; threads \
             [%s] never arrived"
            team !waiting site_str !alive
            (String.concat ";" (List.map string_of_int !stuck))
        end
      end
  done;
  tc.tc_counters

(* Per-block hot-spot row from the opt-in profile: where warp
   instructions and cost-model cycles were spent, block by block. *)
type hotspot = {
  h_fn : string;
  h_blk : label;
  h_hits : int; (* block entries across all strands *)
  h_winsts : int;
  h_cycles : int;
}

type result = {
  r_counters : Counters.t list; (* per team *)
  r_total : Counters.t;
  r_hotspots : hotspot list; (* hottest first; [] unless profiling *)
}

let assign_addresses mem (m : modul) =
  let gaddr = Hashtbl.create 16 in
  let shared_globals = ref [] in
  let shared_off = ref 0 in
  List.iter
    (fun g ->
      match g.g_space with
      | Shared ->
        let aligned = (!shared_off + 7) land lnot 7 in
        Hashtbl.replace gaddr g.g_name (Memory.encode Shared aligned);
        shared_globals := (g, aligned) :: !shared_globals;
        shared_off := aligned + g.g_size
      | Global ->
        let off = Memory.alloc_global mem g.g_size in
        Hashtbl.replace gaddr g.g_name off;
        Memory.init_global mem g (snd (Memory.decode off))
      | Constant ->
        let off = Memory.alloc_const mem g.g_size in
        Hashtbl.replace gaddr g.g_name off;
        Memory.init_global mem g (snd (Memory.decode off))
      | Local -> ir_error "global %s in local space" g.g_name)
    m.m_globals;
  (gaddr, List.rev !shared_globals, !shared_off)

(* Static shared-memory footprint of a module (bytes per team). *)
let shared_bytes (m : modul) =
  List.fold_left
    (fun acc g -> match g.g_space with Shared -> acc + g.g_size | _ -> acc)
    0 m.m_globals

(* Gather the per-block profile accumulated in the decoded blocks of one
   or more engines (one per domain — each holds its own decode caches),
   summed by (function, block) and sorted hottest (most cycles) first
   with a deterministic tie-break. The merge is order-insensitive
   (integer sums), so the profile is identical at every domain count. *)
let collect_hotspots (engines : engine list) : hotspot list =
  let tbl : (string * label, int * int * int) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun e ->
      Hashtbl.iter
        (fun fn fi ->
          Hashtbl.iter
            (fun blk cb ->
              if cb.cb_hits > 0 then begin
                let h0, w0, c0 =
                  match Hashtbl.find_opt tbl (fn, blk) with
                  | Some v -> v
                  | None -> (0, 0, 0)
                in
                Hashtbl.replace tbl (fn, blk)
                  (h0 + cb.cb_hits, w0 + cb.cb_wi, c0 + cb.cb_cyc)
              end)
            fi.fi_blocks)
        e.e_fn_infos)
    engines;
  let acc = ref [] in
  Hashtbl.iter
    (fun (fn, blk) (h, w, c) ->
      acc := { h_fn = fn; h_blk = blk; h_hits = h; h_winsts = w; h_cycles = c } :: !acc)
    tbl;
  List.sort
    (fun a b ->
      match compare b.h_cycles a.h_cycles with
      | 0 -> compare (a.h_fn, a.h_blk) (b.h_fn, b.h_blk)
      | c -> c)
    !acc

(* Per-team kernel-malloc arena window, a pure function of the module
   and the launch geometry (never of the domain count):

   - a small floor covers the data-sharing slots the generic-mode
     runtime allocates (a few dozen bytes per launch);
   - twice the sum of all constant [Malloc] sizes covers kernels that
     bump buffers the scan can see;
   - a [2 MiB / teams] boost gives small-team launches headroom for
     sizes that reach malloc through a register (e.g. the runtime's
     alloc_shared fallback takes its size as a call argument).

   The window is deliberately tight — it is reserved for every team of
   every launch, so an over-generous cap would dominate the launch's
   allocation profile. A kernel that outgrows its window faults with a
   structured Oob naming the limit. Rounded to a multiple of 128 so
   every team window keeps the 128-byte transaction phase of the
   aligned arena base. Returns None for malloc-free modules (no arena
   is reserved at all). *)
let malloc_arena_cap (m : modul) ~teams : int option =
  let found = ref false and const_bytes = ref 0 in
  List.iter
    (fun f ->
      List.iter
        (fun b ->
          List.iter
            (function
              | Malloc (_, sz) ->
                found := true;
                (match sz with
                | Imm_int (n, _) when n > 0L && n < 0x10000000L ->
                  const_bytes := !const_bytes + ((Int64.to_int n + 7) land lnot 7)
                | _ -> ())
              | _ -> ())
            b.b_insts)
        f.f_blocks)
    m.m_funcs;
  if not !found then None
  else
    let cap = max 1024 (max (2 * !const_bytes) ((1 lsl 21) / max 1 teams)) in
    Some ((cap + 127) land lnot 127)

let make_engine ~params ~mem ~san ~spec ~trace ~profile ~watchdog ~budget ~arena
    ~abort ~exec ~plan m launch gaddr ftable fidx shared_globals =
  let ws = params.Cost.warp_size in
  { e_module = m; e_params = params; e_mem = mem; e_launch = launch;
    e_exec = exec; e_plan = plan;
    e_fn_infos = Hashtbl.create 16; e_gaddr = gaddr; e_ftable = ftable;
    e_fidx = fidx; e_shared_globals = shared_globals; e_san = san;
    e_spec = spec; e_inject = None; e_fastmem = not (Memory.has_watcher mem);
    e_trace = trace; e_prof = profile;
    e_addr = Array.make ws 0; e_space = Array.make ws Global;
    e_off = Array.make ws 0; e_segs = Array.make ws 0;
    e_cond = Array.make ws false; e_fscr = Array.make 1 0.0;
    e_budget0 = budget; e_budget = budget; e_arena = arena; e_arena_cur = 0;
    e_fctx = Fault.make_ctx (); e_watchdog = watchdog;
    e_wd_fuel = wd_poll_interval; e_abort = abort; e_cur_team = 0 }

(* annotate an escaping fault with the engine's execution context; any
   other exception passes through untouched *)
let annotated e = function
  | Fault.Kernel_fault f -> Fault.Kernel_fault (Fault.annotate e.e_fctx f)
  | Fault.Kernel_trap f -> Fault.Kernel_trap (Fault.annotate e.e_fctx f)
  | exn -> exn

let run ?(params = Cost.default) ?(budget = 400_000_000) ?san ?inject
    ?(trace = Ozo_obs.Trace.null) ?(profile = false) ?watchdog ?(domains = 1)
    ?(exec = Exec_ir) ?(plan = [])
    (m : modul) ~(mem : Memory.t)
    ~(gaddr : (string, int) Hashtbl.t) ~(shared_globals : (global * int) list)
    (launch : launch) : result =
  Memory.check_host ();
  let ftable = Array.of_list m.m_funcs in
  let fidx = Hashtbl.create 16 in
  Array.iteri (fun i f -> Hashtbl.replace fidx f.f_name (i + 1)) ftable;
  (* register plans, built once and shared read-only across domain engines *)
  let plan_tbl : (string, reg_plan) Hashtbl.t =
    Hashtbl.create (max 8 (List.length plan))
  in
  List.iter (fun (fname, rp) -> Hashtbl.replace plan_tbl fname rp) plan;
  (* Kernel mallocs bump inside a per-team arena reserved up front (at
     every domain count, including 1, so allocation addresses agree).
     Reserving claims the range and pre-grows the global buffer: the
     backing Bytes.t is never replaced while domains execute. *)
  let arena =
    match malloc_arena_cap m ~teams:launch.l_teams with
    | Some cap ->
      Some (Memory.reserve_arena mem ~teams:(max 1 launch.l_teams) ~cap, cap)
    | None -> None
  in
  let ndom = max 1 (min domains launch.l_teams) in
  let abort = if ndom > 1 then Some (Atomic.make max_int) else None in
  let mk ~mem ~san ~trace =
    make_engine ~params ~mem ~san ~spec:inject ~trace ~profile ~watchdog ~budget
      ~arena ~abort ~exec ~plan:plan_tbl m launch gaddr ftable fidx shared_globals
  in
  let e0 = mk ~mem ~san ~trace in
  let module T = Ozo_obs.Trace in
  (* decode: pre-decode the kernel up front so instruction decoding is
     visible as its own phase (callees still decode lazily on first call
     and land inside "execute"; worker domains decode into their own
     caches, also inside "execute") *)
  T.with_span trace ~cat:"phase" "decode" (fun () ->
      match List.find_opt (fun f -> f.f_is_kernel) m.m_funcs with
      | Some k -> ignore (fn_info e0 k.f_name)
      | None -> ());
  let engines, counters =
    T.with_span trace ~cat:"phase" "execute" (fun () ->
        if ndom = 1 then
          ( [ e0 ],
            List.init launch.l_teams (fun team ->
                try run_team e0 ~team with exn -> raise (annotated e0 exn)) )
        else begin
          (* Parallel path: one complete engine per domain (own decode
             caches, scratch, fault context, forked memory/sanitizer);
             contiguous balanced team chunks in ascending order. Per-team
             results land in disjoint slots of [results]; [Domain.join]
             (inside [Pool.run]) publishes them to this domain. *)
          let teams = launch.l_teams in
          let abort_a = Option.get abort in
          let results : Counters.t option array = Array.make teams None in
          let faults : (int * exn) option array = Array.make ndom None in
          let engines = Array.make ndom e0 in
          let rec note_abort v =
            let cur = Atomic.get abort_a in
            if v < cur && not (Atomic.compare_and_set abort_a cur v) then
              note_abort v
          in
          let work w =
            let e =
              if w = 0 then e0
              else begin
                let fmem = Memory.fork mem in
                let fsan =
                  Option.map
                    (fun s ->
                      let s' = Sanitizer.fork s fmem in
                      Memory.set_watcher fmem (Sanitizer.watcher s');
                      s')
                    san
                in
                (* workers trace nothing: Trace.ctx is not domain-safe,
                   and the phase spans belong to the launch as a whole *)
                mk ~mem:fmem ~san:fsan ~trace:T.null
              end
            in
            engines.(w) <- e;
            let lo, hi = Ozo_util.Pool.chunk ~items:teams ~workers:ndom w in
            try
              let t = ref lo in
              while !t < hi do
                (* stop only for teams the sequential engine would never
                   have reached (a sibling fault on an earlier team) *)
                if Atomic.get abort_a < !t then raise Sibling_abort;
                results.(!t) <- Some (run_team e ~team:!t);
                incr t
              done
            with
            | Sibling_abort -> ()
            | exn ->
              faults.(w) <- Some (e.e_cur_team, annotated e exn);
              note_abort e.e_cur_team
          in
          Ozo_util.Pool.run ~workers:ndom work;
          (* deterministic merge: the fault on the lowest team id wins —
             exactly the fault the sequential engine would have raised
             first. Counters past a faulting team are discarded, matching
             sequential execution never reaching them. *)
          let first_fault =
            Array.fold_left
              (fun acc f ->
                match (f, acc) with
                | Some (t, _), Some (t', _) when t < t' -> f
                | Some _, None -> f
                | _ -> acc)
              None faults
          in
          (match first_fault with Some (_, exn) -> raise exn | None -> ());
          ( Array.to_list engines,
            Array.to_list results |> List.map Option.get )
        end)
  in
  T.with_span trace ~cat:"phase" "readback" (fun () ->
      let total = List.fold_left Counters.add (Counters.create ()) counters in
      let hotspots = if profile then collect_hotspots engines else [] in
      List.iter
        (fun h ->
          T.instant trace ~cat:"hotspot"
            ~args:
              [ ("fn", T.Str h.h_fn); ("blk", T.Str h.h_blk);
                ("hits", T.Int h.h_hits); ("winsts", T.Int h.h_winsts);
                ("cycles", T.Int h.h_cycles) ]
            ("hot:" ^ h.h_fn ^ ":" ^ h.h_blk))
        hotspots;
      { r_counters = counters; r_total = total; r_hotspots = hotspots })
