(* SIMT execution engine.

   Execution model: each warp starts as a single *strand* — an active-lane
   mask plus a call stack. A divergent branch splits the strand into
   children and (when an immediate post-dominator exists) registers a join
   at the reconvergence point; children that reach the join die and, once
   all have arrived, a merged strand resumes. This is a deterministic
   version of post-Volta "independent thread scheduling": sibling strands
   can make progress while one waits at a barrier, which the OpenMP
   generic-mode state machine (main thread vs. worker threads in the same
   warp) requires.

   Teams execute sequentially and deterministically; within a team,
   runnable strands are scheduled in creation order, each running until it
   blocks at a barrier, dies, or splits. Costs are charged per strand
   instruction issue (so divergence costs extra issues) plus per-access
   memory costs with global-memory coalescing. *)

open Ozo_ir.Types
module Dominance = Ozo_ir.Dominance
module Cfg = Ozo_ir.Cfg

(* faults carry structured [Fault.t] reports; the exception aliases keep
   the engine's historical names working for external catchers *)
exception Kernel_trap = Fault.Kernel_trap
exception Kernel_fault = Fault.Kernel_fault

let fault fmt = Fault.fail Fault.Invalid fmt

type arg = Ai of int | Af of float

type launch = {
  l_teams : int;
  l_threads : int;
  l_args : arg list;
  l_check_assumes : bool;
  l_trace : bool;
}

(* --- per-function static caches ------------------------------------- *)

type cblock = {
  cb_phis : phi list;
  cb_insts : inst array;
  cb_term : terminator;
}

type fn_info = {
  fi_func : func;
  fi_blocks : (label, cblock) Hashtbl.t;
  fi_reconv : (label, label option) Hashtbl.t; (* immediate post-dominator *)
}

let make_fn_info f =
  let blocks = Hashtbl.create 16 in
  List.iter
    (fun b ->
      Hashtbl.replace blocks b.b_label
        { cb_phis = b.b_phis; cb_insts = Array.of_list b.b_insts; cb_term = b.b_term })
    f.f_blocks;
  let cfg = Cfg.of_func f in
  let pdom = Dominance.post_dominators cfg in
  let reconv = Hashtbl.create 16 in
  List.iter
    (fun b ->
      Hashtbl.replace reconv b.b_label (Dominance.reconvergence_point pdom b.b_label))
    f.f_blocks;
  { fi_func = f; fi_blocks = blocks; fi_reconv = reconv }

(* --- dynamic structures ---------------------------------------------- *)

type lane_regs = { ints : int array; floats : float array }

type frame = {
  fr_info : fn_info;
  fr_regs : lane_regs array; (* indexed by lane *)
  fr_sp_save : int array;    (* per-lane local stack pointer at entry *)
  fr_id : int;
}

type slot = {
  sl_frame : frame;
  mutable sl_blk : label;
  mutable sl_idx : int;
  sl_ret_dst : (reg * bool) option; (* destination in the caller, is_float *)
}

let copy_slot s =
  { sl_frame = s.sl_frame; sl_blk = s.sl_blk; sl_idx = s.sl_idx;
    sl_ret_dst = s.sl_ret_dst }

type join = {
  j_id : int;
  j_frame : int;
  j_rpc : label;
  mutable j_expected : int;
  mutable j_arrived : int;
  j_mask : bool array;
  j_cont : slot list;
  j_outer : join list;
}

(* pseudo-label for joins that reconverge at function return: divergent
   paths that all return from the current function merge at the call's
   continuation, as real SIMT hardware does *)
let ret_marker = "<ret>"

type barrier_site = { bs_fn : string; bs_blk : label; bs_idx : int; bs_aligned : bool }

type status = Run | At_barrier of barrier_site | Dead

type strand = {
  st_seq : int;
  st_warp : int;
  mutable st_mask : bool array;
  mutable st_stack : slot list;
  mutable st_joins : join list; (* innermost first *)
  mutable st_status : status;
}

type team_ctx = {
  tc_team : int;
  tc_threads : int;
  tc_warp_size : int;
  tc_done : bool array;         (* per thread in team *)
  mutable tc_strands : strand list; (* in creation order *)
  mutable tc_next_seq : int;
  mutable tc_next_frame : int;
  mutable tc_next_join : int;
  tc_counters : Counters.t;
}

type engine = {
  e_module : modul;
  e_params : Cost.params;
  e_mem : Memory.t;
  e_launch : launch;
  e_fn_infos : (string, fn_info) Hashtbl.t;
  e_gaddr : (string, int) Hashtbl.t;       (* global name -> encoded address *)
  e_ftable : func array;                   (* function pointer table *)
  e_fidx : (string, int) Hashtbl.t;        (* function name -> index+1 (0 = null) *)
  e_shared_globals : (global * int) list;  (* shared-space globals and offsets *)
  e_san : Sanitizer.t option;              (* opt-in SIMT sanitizer *)
  e_inject : Faultinject.t option;         (* opt-in fault injection *)
  mutable e_budget : int;                  (* remaining instruction issues *)
}

let fn_info e name =
  match Hashtbl.find_opt e.e_fn_infos name with
  | Some fi -> fi
  | None ->
    let f = find_func_exn e.e_module name in
    let fi = make_fn_info f in
    Hashtbl.replace e.e_fn_infos name fi;
    fi

let popcount mask = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 mask

(* --- operand evaluation ---------------------------------------------- *)

let gaddr e g =
  match Hashtbl.find_opt e.e_gaddr g with
  | Some a -> a
  | None -> fault "unknown global @%s" g

let fidx e f =
  match Hashtbl.find_opt e.e_fidx f with
  | Some i -> i
  | None -> fault "unknown function &%s" f

let eval_i e (fr : frame) lane = function
  | Reg r -> fr.fr_regs.(lane).ints.(r)
  | Imm_int (v, _) -> Int64.to_int v
  | Imm_float _ -> fault "float immediate in integer context"
  | Global_addr g -> gaddr e g
  | Func_addr f -> fidx e f
  | Undef _ -> 0

let eval_f _e (fr : frame) lane = function
  | Reg r -> fr.fr_regs.(lane).floats.(r)
  | Imm_float x -> x
  | Imm_int (v, _) -> Int64.to_float v
  | Undef _ -> 0.0
  | Global_addr _ | Func_addr _ -> fault "address in float context"

let is_float_typ = function F64 -> true | I1 | I32 | I64 | Ptr _ -> false

(* --- cost helpers ----------------------------------------------------- *)

let charge tc n = tc.tc_counters.cycles <- tc.tc_counters.cycles + n

(* Global-memory coalescing: cost per distinct segment touched. *)
let charge_mem e tc addrs =
  let p = e.e_params in
  let segs = Hashtbl.create 8 in
  let shared = ref false in
  List.iter
    (fun a ->
      let space, off = Memory.decode a in
      match space with
      | Global | Constant ->
        Hashtbl.replace segs (off / p.segment_bytes) ()
      | Shared ->
        shared := true;
        tc.tc_counters.shared_accesses <- tc.tc_counters.shared_accesses + 1
      | Local -> ())
    addrs;
  let nsegs = Hashtbl.length segs in
  tc.tc_counters.global_transactions <- tc.tc_counters.global_transactions + nsegs;
  charge tc (nsegs * p.c_global_segment);
  if !shared then charge tc p.c_shared_access;
  if nsegs = 0 && not !shared then charge tc p.c_local_access (* stack / L1 *)

(* --- strand management ------------------------------------------------ *)

(* Create a strand. If the strand materializes exactly at the
   reconvergence point of its innermost pending join (a merged strand can
   resume at a block that is simultaneously the rpc of an *outer* join —
   chains of loop-exit joins produce this), it arrives there immediately
   instead of executing past the join. *)
let rec new_strand tc ~warp ~mask ~stack ~joins =
  let s =
    { st_seq = tc.tc_next_seq; st_warp = warp; st_mask = mask; st_stack = stack;
      st_joins = joins; st_status = Run }
  in
  tc.tc_next_seq <- tc.tc_next_seq + 1;
  tc.tc_strands <- tc.tc_strands @ [ s ];
  (match (stack, joins) with
  | slot :: _, j :: _
    when j.j_frame = slot.sl_frame.fr_id && j.j_rpc = slot.sl_blk && slot.sl_idx = 0 ->
    arrive_join tc s j
  | _ -> ());
  s

(* Arrival of a strand at the join [j]; kills the strand and spawns the
   merged continuation when everyone has arrived. *)
and arrive_join tc st (j : join) =
  let n = Array.length st.st_mask in
  for lane = 0 to n - 1 do
    if st.st_mask.(lane) then j.j_mask.(lane) <- true
  done;
  j.j_arrived <- j.j_arrived + 1;
  st.st_status <- Dead;
  if j.j_arrived = j.j_expected then
    ignore
      (new_strand tc ~warp:st.st_warp ~mask:(Array.copy j.j_mask)
         ~stack:(List.map copy_slot j.j_cont) ~joins:j.j_outer)

let make_frame tc e fname ~warp_size =
  let fi = fn_info e fname in
  let n = fi.fi_func.f_next_reg in
  let regs =
    Array.init warp_size (fun _ ->
        { ints = Array.make (max n 1) 0; floats = Array.make (max n 1) 0.0 })
  in
  let fr =
    { fr_info = fi; fr_regs = regs; fr_sp_save = Array.make warp_size 0;
      fr_id = tc.tc_next_frame }
  in
  tc.tc_next_frame <- tc.tc_next_frame + 1;
  fr

(* Warp width of the engine currently running (set once per [run]; the
   engine is single-threaded). Needed to map (warp, lane) to thread ids in
   contexts that only see a strand. *)
let cur_warp_size = ref 32

(* global thread id of a lane in this warp within the team *)
let lane_tid st lane = (st.st_warp * !cur_warp_size) + lane

(* Evaluate the phi nodes of [to_blk] for the lanes in [mask], coming from
   [from_blk]; parallel-copy semantics. *)
let eval_phis e (fr : frame) ~mask ~from_blk ~to_blk =
  match Hashtbl.find_opt fr.fr_info.fi_blocks to_blk with
  | None -> fault "edge to unknown block %s" to_blk
  | Some b ->
    if b.cb_phis <> [] then begin
      let n = Array.length mask in
      let staged =
        List.map
          (fun p ->
            let incoming =
              match List.assoc_opt from_blk p.phi_incoming with
              | Some o -> o
              | None -> fault "phi %%%d in %s lacks incoming for %s" p.phi_reg to_blk from_blk
            in
            let fl = is_float_typ p.phi_typ in
            let vals_i = Array.make n 0 and vals_f = Array.make n 0.0 in
            for lane = 0 to n - 1 do
              if mask.(lane) then
                if fl then vals_f.(lane) <- eval_f e fr lane incoming
                else vals_i.(lane) <- eval_i e fr lane incoming
            done;
            (p.phi_reg, fl, vals_i, vals_f))
          b.cb_phis
      in
      List.iter
        (fun (r, fl, vals_i, vals_f) ->
          for lane = 0 to n - 1 do
            if mask.(lane) then
              if fl then fr.fr_regs.(lane).floats.(r) <- vals_f.(lane)
              else fr.fr_regs.(lane).ints.(r) <- vals_i.(lane)
          done)
        staged
    end

(* Transfer the strand's top slot to [to_blk] (uniform within the strand),
   handling phis and join arrival. *)
let transfer e tc st slot ~to_blk =
  eval_phis e slot.sl_frame ~mask:st.st_mask ~from_blk:slot.sl_blk ~to_blk;
  match st.st_joins with
  | j :: _ when j.j_frame = slot.sl_frame.fr_id && j.j_rpc = to_blk ->
    arrive_join tc st j
  | _ ->
    slot.sl_blk <- to_blk;
    slot.sl_idx <- 0

(* Split a strand into groups (label, mask) diverging at [slot.sl_blk]. *)
let diverge e tc st slot groups =
  tc.tc_counters.divergent_branches <- tc.tc_counters.divergent_branches + 1;
  let from_blk = slot.sl_blk in
  let reconv =
    match Hashtbl.find_opt slot.sl_frame.fr_info.fi_reconv from_blk with
    | Some r -> r
    | None -> None
  in
  (* evaluate the phis of every target for that edge's lanes first *)
  List.iter
    (fun (lbl, mask) -> eval_phis e slot.sl_frame ~mask ~from_blk ~to_blk:lbl)
    groups;
  (match reconv with
  | Some rpc ->
    let cont =
      List.map copy_slot st.st_stack
      |> function
      | top :: rest ->
        top.sl_blk <- rpc;
        top.sl_idx <- 0;
        top :: rest
      | [] -> assert false
    in
    let j =
      { j_id = tc.tc_next_join; j_frame = slot.sl_frame.fr_id; j_rpc = rpc;
        j_expected = List.length groups; j_arrived = 0;
        j_mask = Array.make (Array.length st.st_mask) false; j_cont = cont;
        j_outer = st.st_joins }
    in
    tc.tc_next_join <- tc.tc_next_join + 1;
    List.iter
      (fun (lbl, mask) ->
        (* a child whose target is the rpc itself arrives instantly —
           new_strand detects and handles that *)
        let child_slot = copy_slot slot in
        child_slot.sl_blk <- lbl;
        child_slot.sl_idx <- 0;
        ignore
          (new_strand tc ~warp:st.st_warp ~mask ~stack:[ child_slot ]
             ~joins:(j :: st.st_joins)))
      groups
  | None -> (
    match st.st_stack with
    | _ :: (_ :: _ as caller_stack) ->
      (* every path returns from this function: reconverge at the call's
         continuation in the caller, like hardware does *)
      let j =
        { j_id = tc.tc_next_join; j_frame = slot.sl_frame.fr_id; j_rpc = ret_marker;
          j_expected = List.length groups; j_arrived = 0;
          j_mask = Array.make (Array.length st.st_mask) false;
          j_cont = List.map copy_slot caller_stack; j_outer = st.st_joins }
      in
      tc.tc_next_join <- tc.tc_next_join + 1;
      List.iter
        (fun (lbl, mask) ->
          let child_slot = copy_slot slot in
          child_slot.sl_blk <- lbl;
          child_slot.sl_idx <- 0;
          ignore
            (new_strand tc ~warp:st.st_warp ~mask ~stack:[ child_slot ]
               ~joins:(j :: st.st_joins)))
        groups
    | _ ->
      (* kernel frame: no reconvergence before kernel exit — children run
         independently; every outer join now expects one extra arrival per
         additional child *)
      let extra = List.length groups - 1 in
      List.iter (fun j -> j.j_expected <- j.j_expected + extra) st.st_joins;
      List.iter
        (fun (lbl, mask) ->
          let stack = List.map copy_slot st.st_stack in
          (match stack with
          | top :: _ ->
            top.sl_blk <- lbl;
            top.sl_idx <- 0
          | [] -> assert false);
          ignore (new_strand tc ~warp:st.st_warp ~mask ~stack ~joins:st.st_joins))
        groups));
  st.st_status <- Dead

(* --- ret handling ------------------------------------------------------ *)

let do_ret e tc st slot ret_op =
  charge tc e.e_params.c_ret;
  let fr = slot.sl_frame in
  let n = Array.length st.st_mask in
  (* a pending return-reconvergence join for this frame? *)
  let ret_join =
    match st.st_joins with
    | j :: _ when j.j_frame = fr.fr_id && j.j_rpc = ret_marker -> Some j
    | _ -> None
  in
  (match st.st_joins with
  | j :: _ when j.j_frame = fr.fr_id && j.j_rpc <> ret_marker ->
    fault "ret in %s before reconvergence at %s" fr.fr_info.fi_func.f_name j.j_rpc
  | _ -> ());
  (* restore the per-lane local stack pointers *)
  for lane = 0 to n - 1 do
    if st.st_mask.(lane) then
      Memory.set_local_sp e.e_mem ~thread:(lane_tid st lane) fr.fr_sp_save.(lane)
  done;
  match ret_join with
  | Some j ->
    (* deposit this strand's return values in the caller frame recorded in
       the join continuation, then arrive *)
    (match (slot.sl_ret_dst, ret_op, j.j_cont) with
    | Some (dst, fl), Some o, caller :: _ ->
      for lane = 0 to n - 1 do
        if st.st_mask.(lane) then
          if fl then caller.sl_frame.fr_regs.(lane).floats.(dst) <- eval_f e fr lane o
          else caller.sl_frame.fr_regs.(lane).ints.(dst) <- eval_i e fr lane o
      done
    | Some _, None, _ ->
      fault "function %s returns no value but caller expects one"
        fr.fr_info.fi_func.f_name
    | _, _, _ -> ());
    arrive_join tc st j
  | None -> (
    match st.st_stack with
  | [] -> assert false
  | [ _ ] ->
    (* kernel-level return: these lanes are done *)
    for lane = 0 to n - 1 do
      if st.st_mask.(lane) then tc.tc_done.(lane_tid st lane) <- true
    done;
    st.st_status <- Dead
  | _ :: (caller :: _ as rest) ->
    (match (slot.sl_ret_dst, ret_op) with
    | Some (dst, fl), Some o ->
      for lane = 0 to n - 1 do
        if st.st_mask.(lane) then
          if fl then caller.sl_frame.fr_regs.(lane).floats.(dst) <- eval_f e fr lane o
          else caller.sl_frame.fr_regs.(lane).ints.(dst) <- eval_i e fr lane o
      done
    | Some (dst, fl), None ->
      ignore dst;
      ignore fl;
      fault "function %s returns no value but caller expects one"
        fr.fr_info.fi_func.f_name
    | None, _ -> ());
    st.st_stack <- rest)

(* --- instruction execution -------------------------------------------- *)

let exec_binop op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Sdiv -> if b = 0 then fault "division by zero" else a / b
  | Srem -> if b = 0 then fault "remainder by zero" else a mod b
  | Udiv -> if b = 0 then fault "division by zero" else abs a / abs b
  | Urem -> if b = 0 then fault "remainder by zero" else abs a mod abs b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> a lsl (b land 62)
  | Ashr -> a asr (b land 62)
  | Lshr -> (a lsr (b land 62)) land max_int
  | Smin -> min a b
  | Smax -> max a b
  | Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax -> fault "float binop in int context"

let exec_fbinop op a b =
  match op with
  | Fadd -> a +. b
  | Fsub -> a -. b
  | Fmul -> a *. b
  | Fdiv -> a /. b
  | Fmin -> min a b
  | Fmax -> max a b
  | _ -> fault "int binop in float context"

let is_float_binop = function
  | Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax -> true
  | _ -> false

(* 63-bit unsigned comparisons: negative = huge *)
let icmp_ult a b =
  (a >= 0 && b >= 0 && a < b) || (a >= 0 && b < 0) || (a < 0 && b < 0 && a < b)

let icmp_fn op a b =
  match op with
  | Eq -> a = b
  | Ne -> a <> b
  | Slt -> a < b
  | Sle -> a <= b
  | Sgt -> a > b
  | Sge -> a >= b
  | Ult -> icmp_ult a b
  | Ule -> a = b || icmp_ult a b
  | Ugt -> icmp_ult b a
  | Uge -> a = b || icmp_ult b a

let fcmp_fn op a b =
  match op with
  | Feq -> a = b
  | Fne -> a <> b
  | Flt -> a < b
  | Fle -> a <= b
  | Fgt -> a > b
  | Fge -> a >= b

(* Execute one instruction for a strand. Returns [`Continue] to proceed to
   the next instruction, [`Blocked] when the strand suspended (barrier) or
   changed shape (call/death). *)
let rec exec_inst e tc (st : strand) (slot : slot) (inst : inst) :
    [ `Continue | `Suspend ] =
  let p = e.e_params in
  let fr = slot.sl_frame in
  let mask = st.st_mask in
  let n = Array.length mask in
  tc.tc_counters.warp_instructions <- tc.tc_counters.warp_instructions + 1;
  tc.tc_counters.lane_instructions <- tc.tc_counters.lane_instructions + popcount mask;
  Fault.set_site ~fn:fr.fr_info.fi_func.f_name ~blk:slot.sl_blk ~idx:slot.sl_idx;
  Fault.set_strand ~team:tc.tc_team ~warp:st.st_warp ~mask;
  e.e_budget <- e.e_budget - 1;
  if e.e_budget <= 0 then
    Fault.fail Fault.Budget_exhausted "instruction budget exceeded (runaway kernel?)";
  let each f =
    for lane = 0 to n - 1 do
      if mask.(lane) then f lane
    done
  in
  match inst with
  | Binop (r, op, a, b) ->
    if is_float_binop op then begin
      charge tc p.c_falu;
      each (fun l ->
          fr.fr_regs.(l).floats.(r) <- exec_fbinop op (eval_f e fr l a) (eval_f e fr l b))
    end
    else begin
      charge tc p.c_alu;
      each (fun l ->
          fr.fr_regs.(l).ints.(r) <- exec_binop op (eval_i e fr l a) (eval_i e fr l b))
    end;
    `Continue
  | Unop (r, op, a) ->
    (match op with
    | Not ->
      charge tc p.c_alu;
      each (fun l -> fr.fr_regs.(l).ints.(r) <- lnot (eval_i e fr l a))
    | Fneg ->
      charge tc p.c_falu;
      each (fun l -> fr.fr_regs.(l).floats.(r) <- -.eval_f e fr l a)
    | Fabs ->
      charge tc p.c_falu;
      each (fun l -> fr.fr_regs.(l).floats.(r) <- Float.abs (eval_f e fr l a))
    | Fsqrt ->
      charge tc p.c_special;
      each (fun l -> fr.fr_regs.(l).floats.(r) <- sqrt (eval_f e fr l a))
    | Fexp ->
      charge tc p.c_special;
      each (fun l -> fr.fr_regs.(l).floats.(r) <- exp (eval_f e fr l a))
    | Flog ->
      charge tc p.c_special;
      each (fun l -> fr.fr_regs.(l).floats.(r) <- log (eval_f e fr l a))
    | Fsin ->
      charge tc p.c_special;
      each (fun l -> fr.fr_regs.(l).floats.(r) <- sin (eval_f e fr l a))
    | Fcos ->
      charge tc p.c_special;
      each (fun l -> fr.fr_regs.(l).floats.(r) <- cos (eval_f e fr l a))
    | Sitofp ->
      charge tc p.c_alu;
      each (fun l -> fr.fr_regs.(l).floats.(r) <- float_of_int (eval_i e fr l a))
    | Fptosi ->
      charge tc p.c_alu;
      each (fun l -> fr.fr_regs.(l).ints.(r) <- int_of_float (eval_f e fr l a))
    | Zext32to64 ->
      charge tc p.c_alu;
      each (fun l -> fr.fr_regs.(l).ints.(r) <- eval_i e fr l a land 0xFFFFFFFF)
    | Trunc64to32 ->
      charge tc p.c_alu;
      each (fun l -> fr.fr_regs.(l).ints.(r) <- eval_i e fr l a land 0xFFFFFFFF));
    `Continue
  | Icmp (r, op, a, b) ->
    charge tc p.c_alu;
    each (fun l ->
        fr.fr_regs.(l).ints.(r) <-
          (if icmp_fn op (eval_i e fr l a) (eval_i e fr l b) then 1 else 0));
    `Continue
  | Fcmp (r, op, a, b) ->
    charge tc p.c_falu;
    each (fun l ->
        fr.fr_regs.(l).ints.(r) <-
          (if fcmp_fn op (eval_f e fr l a) (eval_f e fr l b) then 1 else 0));
    `Continue
  | Select (r, ty, c, x, y) ->
    charge tc p.c_alu;
    if is_float_typ ty then
      each (fun l ->
          fr.fr_regs.(l).floats.(r) <-
            (if eval_i e fr l c <> 0 then eval_f e fr l x else eval_f e fr l y))
    else
      each (fun l ->
          fr.fr_regs.(l).ints.(r) <-
            (if eval_i e fr l c <> 0 then eval_i e fr l x else eval_i e fr l y));
    `Continue
  | Ptradd (r, base, off) ->
    charge tc p.c_alu;
    each (fun l -> fr.fr_regs.(l).ints.(r) <- eval_i e fr l base + eval_i e fr l off);
    `Continue
  | Load (r, ty, addr) ->
    let addrs = ref [] in
    each (fun l -> addrs := eval_i e fr l addr :: !addrs);
    charge_mem e tc !addrs;
    if is_float_typ ty then
      each (fun l ->
          fr.fr_regs.(l).floats.(r) <-
            Memory.load_float e.e_mem ~thread:(lane_tid st l) (eval_i e fr l addr))
    else
      each (fun l ->
          fr.fr_regs.(l).ints.(r) <-
            Memory.load_int e.e_mem ~thread:(lane_tid st l) (eval_i e fr l addr) ty);
    (match e.e_inject with
    | Some inj
      when Faultinject.fire inj Faultinject.Corrupt_load ~fn:fr.fr_info.fi_func.f_name
      ->
      (* perturb the value the first active lane just loaded *)
      let l = ref (-1) in
      each (fun lane -> if !l < 0 then l := lane);
      if !l >= 0 then
        if is_float_typ ty then
          fr.fr_regs.(!l).floats.(r) <-
            Faultinject.corrupt_float inj fr.fr_regs.(!l).floats.(r)
        else
          fr.fr_regs.(!l).ints.(r) <- Faultinject.corrupt_int inj fr.fr_regs.(!l).ints.(r)
    | _ -> ());
    `Continue
  | Store (ty, v, addr) -> (
    match e.e_inject with
    | Some inj
      when Faultinject.fire inj Faultinject.Drop_store ~fn:fr.fr_info.fi_func.f_name ->
      `Continue (* the store silently never happens *)
    | _ ->
      let addrs = ref [] in
      each (fun l -> addrs := eval_i e fr l addr :: !addrs);
      charge_mem e tc !addrs;
      if is_float_typ ty then
        each (fun l ->
            Memory.store_float e.e_mem ~thread:(lane_tid st l) (eval_i e fr l addr)
              (eval_f e fr l v))
      else
        each (fun l ->
            Memory.store_int e.e_mem ~thread:(lane_tid st l) (eval_i e fr l addr) ty
              (eval_i e fr l v));
      `Continue)
  | Alloca (r, size) ->
    charge tc p.c_alloca;
    each (fun l ->
        fr.fr_regs.(l).ints.(r) <- Memory.alloca e.e_mem ~thread:(lane_tid st l) size);
    `Continue
  | Intrinsic (r, i) ->
    charge tc p.c_alu;
    each (fun l ->
        fr.fr_regs.(l).ints.(r) <-
          (match i with
          | Thread_id -> lane_tid st l
          | Block_id -> tc.tc_team
          | Block_dim -> tc.tc_threads
          | Grid_dim -> e.e_launch.l_teams
          | Warp_size -> p.warp_size
          | Lane_id -> lane_tid st l mod p.warp_size));
    `Continue
  | Malloc (r, size) ->
    charge tc p.c_malloc;
    tc.tc_counters.mallocs <- tc.tc_counters.mallocs + 1;
    each (fun l ->
        fr.fr_regs.(l).ints.(r) <- Memory.malloc e.e_mem (eval_i e fr l size));
    `Continue
  | Free _ ->
    charge tc p.c_alu;
    `Continue
  | Assume o ->
    let forced =
      match e.e_inject with
      | Some inj ->
        Faultinject.fire inj Faultinject.Violate_assume ~fn:fr.fr_info.fi_func.f_name
      | None -> false
    in
    if e.e_launch.l_check_assumes then
      each (fun l ->
          if forced || eval_i e fr l o = 0 then
            Fault.trap Fault.Assume_violation
              "assumption violated in %s at %s:%d (thread %d)%s"
              fr.fr_info.fi_func.f_name slot.sl_blk slot.sl_idx (lane_tid st l)
              (if forced then " [injected]" else ""));
    `Continue
  | Trap msg -> Fault.trap Fault.Trap "%s" msg
  | Debug_print (msg, ops) ->
    if e.e_launch.l_trace then begin
      let l = ref (-1) in
      each (fun lane -> if !l < 0 then l := lane);
      if !l >= 0 then
        Fmt.epr "[vgpu team %d thread %d] %s %a@." tc.tc_team (lane_tid st !l) msg
          (Fmt.list ~sep:Fmt.sp Fmt.int)
          (List.map (eval_i e fr !l) ops)
    end;
    `Continue
  | Atomic (dst, op, ty, addr, ops) ->
    let global =
      let any = ref false in
      each (fun l ->
          let space, _ = Memory.decode (eval_i e fr l addr) in
          if space = Global then any := true);
      !any
    in
    charge tc (if global then p.c_atomic_global else p.c_atomic_shared);
    tc.tc_counters.atomics <- tc.tc_counters.atomics + 1;
    (* the RMW below is a plain load/store pair; tell the sanitizer these
       accesses are one indivisible atomic operation *)
    (match e.e_san with Some s -> Sanitizer.set_atomic s true | None -> ());
    (* lanes perform the RMW sequentially in lane order *)
    each (fun l ->
        let tid = lane_tid st l in
        let a = eval_i e fr l addr in
        if is_float_typ ty then begin
          let old = Memory.load_float e.e_mem ~thread:tid a in
          (match dst with
          | Some r -> fr.fr_regs.(l).floats.(r) <- old
          | None -> ());
          let nv =
            match (op, ops) with
            | Atomic_add, [ v ] -> old +. eval_f e fr l v
            | Atomic_exch, [ v ] -> eval_f e fr l v
            | Atomic_max, [ v ] -> Float.max old (eval_f e fr l v)
            | Atomic_cas, [ exp; des ] ->
              if old = eval_f e fr l exp then eval_f e fr l des else old
            | _ -> fault "malformed atomic"
          in
          Memory.store_float e.e_mem ~thread:tid a nv
        end
        else begin
          let old = Memory.load_int e.e_mem ~thread:tid a ty in
          (match dst with
          | Some r -> fr.fr_regs.(l).ints.(r) <- old
          | None -> ());
          let nv =
            match (op, ops) with
            | Atomic_add, [ v ] -> old + eval_i e fr l v
            | Atomic_exch, [ v ] -> eval_i e fr l v
            | Atomic_max, [ v ] -> max old (eval_i e fr l v)
            | Atomic_cas, [ exp; des ] ->
              if old = eval_i e fr l exp then eval_i e fr l des else old
            | _ -> fault "malformed atomic"
          in
          Memory.store_int e.e_mem ~thread:tid a ty nv
        end);
    (match e.e_san with Some s -> Sanitizer.set_atomic s false | None -> ());
    `Continue
  | Barrier { aligned } ->
    charge tc p.c_barrier;
    tc.tc_counters.barriers <- tc.tc_counters.barriers + 1;
    if aligned then
      tc.tc_counters.aligned_barriers <- tc.tc_counters.aligned_barriers + 1;
    (match e.e_inject with
    | Some inj
      when Faultinject.fire inj Faultinject.Skip_barrier ~fn:fr.fr_info.fi_func.f_name
      ->
      (* the strand sails past the barrier without waiting (the main loop
         advances past the barrier instruction on `Continue) *)
      `Continue
    | _ ->
      slot.sl_idx <- slot.sl_idx + 1;
      st.st_status <-
        At_barrier
          { bs_fn = fr.fr_info.fi_func.f_name; bs_blk = slot.sl_blk;
            bs_idx = slot.sl_idx - 1; bs_aligned = aligned };
      `Suspend)
  | Call (dst, callee, args) -> do_call e tc st slot ~dst ~callee ~args
  | Call_indirect (dst, _, callee_op, args) ->
    (* indirect targets must be uniform across the strand *)
    let target = ref 0 and got = ref false in
    each (fun l ->
        let v = eval_i e fr l callee_op in
        if not !got then begin
          target := v;
          got := true
        end
        else if v <> !target then fault "divergent indirect call target");
    if !target = 0 then fault "indirect call through null function pointer";
    let callee =
      if !target >= 1 && !target <= Array.length e.e_ftable then
        e.e_ftable.(!target - 1).f_name
      else fault "indirect call to invalid function pointer %d" !target
    in
    do_call e tc st slot ~dst ~callee ~args

and do_call e tc st slot ~dst ~callee ~args =
  charge tc e.e_params.c_call;
  tc.tc_counters.calls <- tc.tc_counters.calls + 1;
  let fr = slot.sl_frame in
  let mask = st.st_mask in
  let n = Array.length mask in
  let fi = fn_info e callee in
  let cf = fi.fi_func in
  if List.length cf.f_params <> List.length args then
    fault "call to %s with %d args (expects %d)" callee (List.length args)
      (List.length cf.f_params);
  (* advance the caller past the call before pushing *)
  slot.sl_idx <- slot.sl_idx + 1;
  let frame = make_frame tc e callee ~warp_size:n in
  for lane = 0 to n - 1 do
    if mask.(lane) then
      frame.fr_sp_save.(lane) <- Memory.local_sp e.e_mem ~thread:(lane_tid st lane)
  done;
  List.iteri
    (fun i ((preg, pty), argop) ->
      ignore i;
      let fl = is_float_typ pty in
      for lane = 0 to n - 1 do
        if mask.(lane) then
          if fl then frame.fr_regs.(lane).floats.(preg) <- eval_f e fr lane argop
          else frame.fr_regs.(lane).ints.(preg) <- eval_i e fr lane argop
      done)
    (List.combine cf.f_params args);
  let ret_dst =
    match (dst, cf.f_ret) with
    | Some r, Some t -> Some (r, is_float_typ t)
    | Some _, None -> fault "call to void function %s expects a value" callee
    | None, _ -> None
  in
  let entry = (entry_block cf).b_label in
  let callee_slot =
    { sl_frame = frame; sl_blk = entry; sl_idx = 0; sl_ret_dst = ret_dst }
  in
  st.st_stack <- callee_slot :: st.st_stack;
  `Suspend (* re-enter the main loop so the new top slot is picked up *)

(* --- terminators -------------------------------------------------------- *)

let exec_term e tc st slot term =
  let fr = slot.sl_frame in
  let mask = st.st_mask in
  let n = Array.length mask in
  charge tc e.e_params.c_branch;
  Fault.set_site ~fn:fr.fr_info.fi_func.f_name ~blk:slot.sl_blk ~idx:slot.sl_idx;
  Fault.set_strand ~team:tc.tc_team ~warp:st.st_warp ~mask;
  e.e_budget <- e.e_budget - 1;
  if e.e_budget <= 0 then
    Fault.fail Fault.Budget_exhausted "instruction budget exceeded (runaway kernel?)";
  match term with
  | Ret o -> do_ret e tc st slot o
  | Br l -> transfer e tc st slot ~to_blk:l
  | Unreachable -> Fault.trap Fault.Unreachable "reached unreachable"
  | Cond_br (c, lt, lf) ->
    let mt = Array.make n false and mf = Array.make n false in
    let any_t = ref false and any_f = ref false in
    for lane = 0 to n - 1 do
      if mask.(lane) then
        if eval_i e fr lane c <> 0 then begin
          mt.(lane) <- true;
          any_t := true
        end
        else begin
          mf.(lane) <- true;
          any_f := true
        end
    done;
    if !any_t && not !any_f then transfer e tc st slot ~to_blk:lt
    else if !any_f && not !any_t then transfer e tc st slot ~to_blk:lf
    else diverge e tc st slot [ (lt, mt); (lf, mf) ]
  | Switch (o, cases, default) ->
    let groups : (label, bool array) Hashtbl.t = Hashtbl.create 4 in
    let order = ref [] in
    for lane = 0 to n - 1 do
      if mask.(lane) then begin
        let v = eval_i e fr lane o in
        let lbl =
          match List.find_opt (fun (cv, _) -> Int64.to_int cv = v) cases with
          | Some (_, l) -> l
          | None -> default
        in
        (match Hashtbl.find_opt groups lbl with
        | Some m -> m.(lane) <- true
        | None ->
          let m = Array.make n false in
          m.(lane) <- true;
          Hashtbl.replace groups lbl m;
          order := lbl :: !order)
      end
    done;
    (match !order with
    | [ lbl ] -> transfer e tc st slot ~to_blk:lbl
    | lbls -> diverge e tc st slot (List.rev_map (fun l -> (l, Hashtbl.find groups l)) lbls))

(* --- strand / team scheduling ------------------------------------------ *)

(* Run one strand until it suspends, dies or splits. *)
let run_strand e tc st =
  let continue_ = ref true in
  while !continue_ && st.st_status = Run do
    match st.st_stack with
    | [] ->
      st.st_status <- Dead;
      continue_ := false
    | slot :: _ -> (
      let b =
        match Hashtbl.find_opt slot.sl_frame.fr_info.fi_blocks slot.sl_blk with
        | Some b -> b
        | None -> fault "missing block %s" slot.sl_blk
      in
      let ninsts = Array.length b.cb_insts in
      if slot.sl_idx < ninsts then begin
        let inst = b.cb_insts.(slot.sl_idx) in
        match exec_inst e tc st slot inst with
        | `Continue -> slot.sl_idx <- slot.sl_idx + 1
        | `Suspend -> continue_ := false
      end
      else begin
        exec_term e tc st slot b.cb_term;
        (* after a terminator the loop re-examines status/stack *)
        match st.st_status with Run -> () | _ -> continue_ := false
      end)
  done

let release_barriers e tc =
  (* aligned-barrier discipline: if any waiting strand is at an aligned
     barrier, every waiting strand must be at the same site *)
  let sites =
    List.filter_map
      (fun s -> match s.st_status with At_barrier b -> Some b | _ -> None)
      tc.tc_strands
  in
  let aligned = List.exists (fun b -> b.bs_aligned) sites in
  (match sites with
  | first :: rest when aligned ->
    List.iter
      (fun b ->
        if b.bs_fn <> first.bs_fn || b.bs_blk <> first.bs_blk || b.bs_idx <> first.bs_idx
        then
          Fault.fail Fault.Divergent_barrier
            "aligned barrier divergence: %s:%s:%d vs %s:%s:%d" first.bs_fn first.bs_blk
            first.bs_idx b.bs_fn b.bs_blk b.bs_idx)
      rest
  | _ -> ());
  (* a team-wide release is a synchronization point: advance the epoch *)
  (match e.e_san with Some s -> Sanitizer.barrier_release s | None -> ());
  List.iter
    (fun s -> match s.st_status with At_barrier _ -> s.st_status <- Run | _ -> ())
    tc.tc_strands

(* Check partial-warp arrival at aligned barriers: a strand waiting at an
   aligned barrier must carry every still-alive lane of its warp. *)
let check_aligned_mask tc st site =
  if site.bs_aligned then begin
    let n = Array.length st.st_mask in
    for lane = 0 to n - 1 do
      let tid = lane_tid st lane in
      if tid < tc.tc_threads && not tc.tc_done.(tid) && not st.st_mask.(lane) then begin
        (* the lane is alive but not in this strand: only legal if another
           strand of the same warp is waiting at the same site *)
        let covered =
          List.exists
            (fun s' ->
              s' != st && s'.st_warp = st.st_warp && s'.st_mask.(lane)
              &&
              match s'.st_status with
              | At_barrier b' ->
                b'.bs_fn = site.bs_fn && b'.bs_blk = site.bs_blk && b'.bs_idx = site.bs_idx
              | _ -> false)
            tc.tc_strands
        in
        if not covered then
          Fault.fail Fault.Divergent_barrier ~threads:[ tid ]
            "aligned barrier at %s:%s:%d reached divergently by warp %d (thread %d \
             alive but absent)"
            site.bs_fn site.bs_blk site.bs_idx st.st_warp tid
      end
    done
  end

(* Forced partial reconvergence (independent thread scheduling): when a
   join has arrivals but its remaining siblings are blocked (e.g. the main
   thread executes team barriers while the rest of its warp waits at the
   reconvergence point of the `if (target_init() == 1)` split), the parked
   lanes must make forward progress, as Volta-class hardware guarantees.
   The join splits: arrived lanes resume from the continuation as their
   own strand; the remaining siblings will form another. Outer joins then
   expect one extra arrival. Returns true if a join was split. *)
let force_partial_reconvergence tc : bool =
  (* collect pending joins reachable from live strands, innermost first *)
  let candidates = ref [] in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun s ->
      if s.st_status <> Dead then
        List.iter
          (fun j ->
            if not (Hashtbl.mem seen j.j_id) then begin
              Hashtbl.replace seen j.j_id ();
              if j.j_arrived > 0 && j.j_arrived < j.j_expected then
                candidates := j :: !candidates
            end)
          s.st_joins)
    tc.tc_strands;
  match List.sort (fun a b -> compare a.j_id b.j_id) !candidates with
  | [] -> false
  | j :: _ ->
    let mask = Array.copy j.j_mask in
    Array.fill j.j_mask 0 (Array.length j.j_mask) false;
    j.j_expected <- j.j_expected - j.j_arrived;
    j.j_arrived <- 0;
    List.iter (fun outer -> outer.j_expected <- outer.j_expected + 1) j.j_outer;
    let warp =
      (* recover the warp index from any set lane (mask lanes are within
         one warp by construction) *)
      match tc.tc_strands with
      | s :: _ -> s.st_warp
      | [] -> 0
    in
    (* find the true warp: the strand still holding this join *)
    let warp =
      match
        List.find_opt
          (fun s -> s.st_status <> Dead && List.memq j s.st_joins)
          tc.tc_strands
      with
      | Some s -> s.st_warp
      | None -> warp
    in
    ignore
      (new_strand tc ~warp ~mask ~stack:(List.map copy_slot j.j_cont) ~joins:j.j_outer);
    true

let run_team e ~team =
  let p = e.e_params in
  let threads = e.e_launch.l_threads in
  let tc =
    { tc_team = team; tc_threads = threads; tc_warp_size = p.warp_size;
      tc_done = Array.make threads false; tc_strands = []; tc_next_seq = 0;
      tc_next_frame = 0; tc_next_join = 0; tc_counters = Counters.create () }
  in
  (* announce the team's shared allocations to the sanitizer before the
     shared globals are (re-)initialized; the trunc-shared injection shaves
     bytes off the allocation it targets so in-bounds accesses of the real
     global become OOB in the shadow state *)
  (match e.e_san with
  | Some san ->
    Sanitizer.team_start san;
    List.iter
      (fun ((g : global), off) ->
        let size =
          match e.e_inject with
          | Some inj when Faultinject.fire inj Faultinject.Trunc_shared ~fn:g.g_name ->
            max 0 (g.g_size - 8)
          | _ -> g.g_size
        in
        (* runtime-internal shared state (team ICVs, the exclusive-execution
           dummy sink) uses benign last-writer-wins idioms; exempt it from
           race checks, not from bounds checks *)
        let internal =
          String.length g.g_name >= 6 && String.sub g.g_name 0 6 = "__omp_"
        in
        Sanitizer.register_shared san ~race_checked:(not internal) ~offset:off ~size ())
      e.e_shared_globals
  | None -> ());
  Memory.reset_team e.e_mem ~shared_globals:e.e_shared_globals;
  (* spawn one strand per warp *)
  let kernel =
    match List.find_opt (fun f -> f.f_is_kernel) e.e_module.m_funcs with
    | Some k -> k
    | None -> fault "module has no kernel"
  in
  let nwarps = (threads + p.warp_size - 1) / p.warp_size in
  for w = 0 to nwarps - 1 do
    let lanes = min p.warp_size (threads - (w * p.warp_size)) in
    let mask = Array.init p.warp_size (fun l -> l < lanes) in
    let frame = make_frame tc e kernel.f_name ~warp_size:p.warp_size in
    (* kernel arguments are uniform across all threads *)
    List.iteri
      (fun i ((preg, pty), arg) ->
        ignore i;
        for lane = 0 to p.warp_size - 1 do
          match (arg, is_float_typ pty) with
          | Ai v, false -> frame.fr_regs.(lane).ints.(preg) <- v
          | Af v, true -> frame.fr_regs.(lane).floats.(preg) <- v
          | Ai v, true -> frame.fr_regs.(lane).floats.(preg) <- float_of_int v
          | Af _, false -> fault "float argument for integer kernel parameter"
        done)
      (try List.combine kernel.f_params e.e_launch.l_args
       with Invalid_argument _ ->
         fault "kernel %s expects %d args, got %d" kernel.f_name
           (List.length kernel.f_params)
           (List.length e.e_launch.l_args));
    let slot =
      { sl_frame = frame; sl_blk = (entry_block kernel).b_label; sl_idx = 0;
        sl_ret_dst = None }
    in
    ignore (new_strand tc ~warp:w ~mask ~stack:[ slot ] ~joins:[])
  done;
  (* scheduler loop *)
  let finished = ref false in
  while not !finished do
    tc.tc_strands <- List.filter (fun s -> s.st_status <> Dead) tc.tc_strands;
    match List.find_opt (fun s -> s.st_status = Run) tc.tc_strands with
    | Some s -> run_strand e tc s
    | None ->
      let alive = ref 0 in
      Array.iter (fun d -> if not d then incr alive) tc.tc_done;
      if !alive = 0 then finished := true
      else begin
        (* count lanes waiting at barriers, remembering who waits where *)
        let waiting = ref 0 in
        let waiting_tids = Hashtbl.create 16 in
        let sites = ref [] in
        List.iter
          (fun s ->
            match s.st_status with
            | At_barrier site ->
              check_aligned_mask tc s site;
              if not
                   (List.exists
                      (fun b ->
                        b.bs_fn = site.bs_fn && b.bs_blk = site.bs_blk
                        && b.bs_idx = site.bs_idx)
                      !sites)
              then sites := site :: !sites;
              Array.iteri
                (fun lane b ->
                  let tid = lane_tid s lane in
                  if b && tid < threads && not tc.tc_done.(tid) then begin
                    incr waiting;
                    Hashtbl.replace waiting_tids tid ()
                  end)
                s.st_mask
            | _ -> ())
          tc.tc_strands;
        if !waiting = !alive then release_barriers e tc
        else if not (force_partial_reconvergence tc) then begin
          (* divergent-barrier watchdog: the hang becomes a structured
             fault naming the threads that never arrived *)
          let stuck = ref [] in
          for tid = threads - 1 downto 0 do
            if (not tc.tc_done.(tid)) && not (Hashtbl.mem waiting_tids tid) then
              stuck := tid :: !stuck
          done;
          let site_str =
            match !sites with
            | [] -> "?"
            | ss ->
              String.concat ", "
                (List.rev_map
                   (fun b -> Printf.sprintf "%s:%s:%d" b.bs_fn b.bs_blk b.bs_idx)
                   ss)
          in
          Fault.fail Fault.Divergent_barrier ~threads:!stuck
            "barrier deadlock in team %d: %d threads waiting at %s, %d alive; threads \
             [%s] never arrived"
            team !waiting site_str !alive
            (String.concat ";" (List.map string_of_int !stuck))
        end
      end
  done;
  tc.tc_counters

type result = {
  r_counters : Counters.t list; (* per team *)
  r_total : Counters.t;
}

let assign_addresses mem (m : modul) =
  let gaddr = Hashtbl.create 16 in
  let shared_globals = ref [] in
  let shared_off = ref 0 in
  List.iter
    (fun g ->
      match g.g_space with
      | Shared ->
        let aligned = (!shared_off + 7) land lnot 7 in
        Hashtbl.replace gaddr g.g_name (Memory.encode Shared aligned);
        shared_globals := (g, aligned) :: !shared_globals;
        shared_off := aligned + g.g_size
      | Global ->
        let off = Memory.alloc_global mem g.g_size in
        Hashtbl.replace gaddr g.g_name off;
        Memory.init_global mem g (snd (Memory.decode off))
      | Constant ->
        let off = Memory.alloc_const mem g.g_size in
        Hashtbl.replace gaddr g.g_name off;
        Memory.init_global mem g (snd (Memory.decode off))
      | Local -> ir_error "global %s in local space" g.g_name)
    m.m_globals;
  (gaddr, List.rev !shared_globals, !shared_off)

(* Static shared-memory footprint of a module (bytes per team). *)
let shared_bytes (m : modul) =
  List.fold_left
    (fun acc g -> match g.g_space with Shared -> acc + g.g_size | _ -> acc)
    0 m.m_globals

let run ?(params = Cost.default) ?(budget = 400_000_000) ?san ?inject (m : modul)
    ~(mem : Memory.t) ~(gaddr : (string, int) Hashtbl.t)
    ~(shared_globals : (global * int) list) (launch : launch) : result =
  cur_warp_size := params.warp_size;
  let ftable = Array.of_list m.m_funcs in
  let fidx = Hashtbl.create 16 in
  Array.iteri (fun i f -> Hashtbl.replace fidx f.f_name (i + 1)) ftable;
  let e =
    { e_module = m; e_params = params; e_mem = mem; e_launch = launch;
      e_fn_infos = Hashtbl.create 16; e_gaddr = gaddr; e_ftable = ftable;
      e_fidx = fidx; e_shared_globals = shared_globals; e_san = san;
      e_inject = inject; e_budget = budget }
  in
  let counters = List.init launch.l_teams (fun team -> run_team e ~team) in
  let total = List.fold_left Counters.add (Counters.create ()) counters in
  { r_counters = counters; r_total = total }
