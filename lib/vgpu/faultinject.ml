(* Deterministic fault injection: seeded campaigns that perturb execution
   at a chosen site, used to prove the sanitizer catches each hazard class
   and to exercise the harness fallback ladder.

   An injection spec selects one action, an optional site filter and a
   dynamic occurrence:

     corrupt-load[@fn][:nth]    flip the value a load produced
     drop-store[@fn][:nth]      silently skip a store
     skip-barrier[@fn][:nth]    a strand sails past a barrier
     trunc-shared[@name][:nth]  shave 8 bytes off a shared allocation
     violate-assume[@fn][:nth]  force a declared assume to read false

   [@fn] restricts to a function (for trunc-shared: a shared global) by
   name; [:nth] picks the nth matching dynamic occurrence (1-based). When
   [:nth] is omitted it is drawn from the seeded PRNG, so a campaign over
   seeds explores different sites deterministically. Exactly one injection
   fires per launch.

   Injection state is a *per-team stream* split deterministically from
   the spec seed: the seed picks one target team, and that team's PRNG
   and occurrence countdown are pure functions of (seed, team id). The
   injected site is therefore identical whether teams run sequentially
   or sharded across domains in any schedule. *)

module Prng = Ozo_util.Prng

type action = Corrupt_load | Drop_store | Skip_barrier | Trunc_shared | Violate_assume

let action_name = function
  | Corrupt_load -> "corrupt-load"
  | Drop_store -> "drop-store"
  | Skip_barrier -> "skip-barrier"
  | Trunc_shared -> "trunc-shared"
  | Violate_assume -> "violate-assume"

let action_of_string = function
  | "corrupt-load" -> Some Corrupt_load
  | "drop-store" -> Some Drop_store
  | "skip-barrier" -> Some Skip_barrier
  | "trunc-shared" -> Some Trunc_shared
  | "violate-assume" -> Some Violate_assume
  | _ -> None

type spec = {
  s_action : action;
  s_fn : string option; (* restrict to this function / shared-global name *)
  s_nth : int option;   (* 1-based dynamic occurrence; seeded when absent *)
  s_seed : int;
}

let spec_to_string s =
  action_name s.s_action
  ^ (match s.s_fn with Some f -> "@" ^ f | None -> "")
  ^ (match s.s_nth with Some n -> ":" ^ string_of_int n | None -> "")

(* "action[@fn][:nth]" *)
let parse ~seed str : (spec, string) result =
  let str = String.trim str in
  let body, nth =
    match String.rindex_opt str ':' with
    | Some i -> (
      let tail = String.sub str (i + 1) (String.length str - i - 1) in
      match int_of_string_opt tail with
      | Some n when n >= 1 -> (String.sub str 0 i, Some n)
      | _ -> (str, None))
    | None -> (str, None)
  in
  let action_s, fn =
    match String.index_opt body '@' with
    | Some i ->
      ( String.sub body 0 i,
        Some (String.sub body (i + 1) (String.length body - i - 1)) )
    | None -> (body, None)
  in
  match action_of_string action_s with
  | Some a -> Ok { s_action = a; s_fn = fn; s_nth = nth; s_seed = seed }
  | None ->
    Error
      (Printf.sprintf
         "bad injection spec %S (expected \
          corrupt-load|drop-store|skip-barrier|trunc-shared|violate-assume[@fn][:nth])"
         str)

(* Per-team state: a one-shot countdown over matching dynamic sites
   within one team. The PRNG stream and the countdown live in this
   per-team value ([Engine.run_team] calls [start_team] for every team,
   and [spec] is immutable) — there is no module-level mutable injection
   state, and a team's stream never depends on what other teams (or
   domains) executed before it. *)
type t = {
  t_spec : spec;
  t_prng : Prng.t;
  mutable t_countdown : int;
  mutable t_fired : bool;
}

(* The one team the injection targets, drawn from the raw seed. *)
let target_team (s : spec) ~teams =
  if teams <= 1 then 0 else Prng.int (Prng.create s.s_seed) teams

(* Per-team stream seed: mix the team id in with a large odd constant
   (the splitmix64 golden-ratio increment) so neighbouring teams get
   unrelated streams. *)
let team_seed (s : spec) ~team = s.s_seed + ((team + 1) * 0x9E3779B9)

(* [start_team] returns injection state for [team], or [None] when the
   seed targets a different team. Pure in (spec, team, teams). *)
let start_team (s : spec) ~team ~teams : t option =
  if team <> target_team s ~teams then None
  else begin
    let prng = Prng.create (team_seed s ~team) in
    let nth = match s.s_nth with Some n -> n | None -> 1 + Prng.int prng 8 in
    Some { t_spec = s; t_prng = prng; t_countdown = nth; t_fired = false }
  end

(* called at each candidate site; true when the perturbation triggers *)
let fire t action ~fn =
  (not t.t_fired)
  && t.t_spec.s_action = action
  && (match t.t_spec.s_fn with None -> true | Some f -> f = fn)
  &&
  (t.t_countdown <- t.t_countdown - 1;
   if t.t_countdown = 0 then begin
     t.t_fired <- true;
     true
   end
   else false)

let corrupt_int t v =
  let r = Int64.to_int (Prng.next t.t_prng) land max_int in
  v lxor (if r = 0 then 1 else r)

let corrupt_float t v = (v *. 1e6) +. (1e6 *. (1.0 +. Prng.float t.t_prng))

let describe t =
  Printf.sprintf "%s (seed %d)%s" (spec_to_string t.t_spec) t.t_spec.s_seed
    (if t.t_fired then "" else " [did not fire]")
