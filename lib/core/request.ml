(* The unified request record: one value describing compile target,
   machine, launch shape and launch options. Defined inside [Codesign]
   (the entry points consume it there); re-exported here so callers can
   say [Ozo_core.Request.t] and build requests without spelling the
   [Codesign.Request] path. *)

include Codesign.Request
