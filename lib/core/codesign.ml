(* Public entry point of the library: compile a kernel under one of the
   paper's build configurations, launch it on the virtual GPU and read
   back the Nsight-style metrics.

   The five standard build rows correspond to Fig. 10/11 of the paper:
   CUDA (NVCC), Old RT (Nightly), New RT (Nightly), New RT without
   assumptions, and New RT. *)

open Ozo_ir.Types
module Ast = Ozo_frontend.Ast
module Lower = Ozo_frontend.Lower
module Rt_config = Ozo_runtime.Config
module Pipeline = Ozo_opt.Pipeline
module Spmdize = Ozo_opt.Spmdize
module Device = Ozo_vgpu.Device
module Engine = Ozo_vgpu.Engine
module Counters = Ozo_vgpu.Counters
module Cost = Ozo_vgpu.Cost
module Trace = Ozo_obs.Trace
module Remarks = Ozo_opt.Remarks
module Machine = Ozo_backend.Machine
module Backend = Ozo_backend.Lower

type build = {
  b_label : string;
  b_abi : Lower.abi;
  b_rt : Rt_config.t option; (* None for CUDA *)
  b_pipe : Pipeline.config;
}

(* nvcc performs the generic optimizations (register promotion of locals,
   inlining, folding) too: the full pipeline's OpenMP-specific passes are
   no-ops on runtime-free CUDA code *)
let cuda = { b_label = "CUDA (NVCC)"; b_abi = Lower.Cuda; b_rt = None; b_pipe = Pipeline.full }

let old_rt_nightly =
  { b_label = "Old RT (Nightly)"; b_abi = Lower.Omp Lower.Old_abi;
    b_rt = Some Rt_config.old_rt; b_pipe = Pipeline.full }
(* the old runtime is opaque (no_inline, global state), so even the full
   pipeline cannot do anything to it — exactly the nightly situation *)

let new_rt_nightly =
  { b_label = "New RT (Nightly)"; b_abi = Lower.Omp Lower.New_abi;
    b_rt = Some Rt_config.default; b_pipe = Pipeline.nightly }

let new_rt_no_assumptions =
  { b_label = "New RT - w/o Assumptions"; b_abi = Lower.Omp Lower.New_abi;
    b_rt = Some Rt_config.default; b_pipe = Pipeline.full }

let new_rt =
  { b_label = "New RT"; b_abi = Lower.Omp Lower.New_abi;
    b_rt = Some Rt_config.(with_assumptions default); b_pipe = Pipeline.full }

(* per-application assumption profile: the oversubscription flags are
   user promises, so "New RT" means "with the flags this application can
   honestly pass" *)
let new_rt_teams_only =
  { b_label = "New RT"; b_abi = Lower.Omp Lower.New_abi;
    b_rt = Some Rt_config.(with_teams_assumption default); b_pipe = Pipeline.full }

let standard_builds =
  [ old_rt_nightly; new_rt_nightly; new_rt_no_assumptions; new_rt; cuda ]

(* debug variants: runtime assertion checking enabled at compile time *)
let with_debug b =
  match b.b_rt with
  | None -> b
  | Some rt -> { b with b_label = b.b_label ^ " [debug]"; b_rt = Some (Rt_config.with_debug rt) }

(* ablation variant: one co-designed optimization disabled *)
let without feature b =
  { b with
    b_label = b.b_label ^ " w/o " ^ Pipeline.feature_name feature;
    b_pipe = Pipeline.disable feature b.b_pipe }

type compiled = {
  c_build : build;
  c_module : modul;  (* post-backend module the device executes *)
  c_kernel : string;
  c_mode : Spmdize.exec_mode;
  c_machine : Machine.t;
  c_lower : Backend.summary;  (* late-lowering result: VM code + resources *)
  c_regs : int;  (* per-thread registers after allocation, incl. callee chain *)
  c_smem : int;  (* static shared memory bytes per team (aligned layout) *)
  c_remarks : Remarks.t list; (* optimization remarks from this compile *)
}

exception Compile_error of string

let compile ?(trace = Trace.null) ?(machine = Machine.vgpu) (b : build)
    (k : Ast.kernel) : compiled =
  Trace.with_span trace ~cat:"compile"
    ~args:[ ("build", Trace.Str b.b_label) ]
    "compile"
    (fun () ->
      let sink = Remarks.make ~trace () in
      let app = Lower.lower ~abi:b.b_abi k in
      let linked =
        match b.b_rt with
        | None -> app
        | Some rt_cfg -> Ozo_ir.Linker.link app (Ozo_runtime.Runtime.build rt_cfg)
      in
      (match Ozo_ir.Verifier.check linked with
      | Ok () -> ()
      | Error vs ->
        raise
          (Compile_error
             (Fmt.str "%a" (Fmt.list ~sep:Fmt.semi Ozo_ir.Verifier.pp_violation) vs)));
      (* one analysis manager for the whole compile: the pipeline fills it,
         and the register estimate below reuses its cached liveness *)
      let am = Ozo_opt.Analysis.create () in
      let optimized = Pipeline.run ~am ~trace ~sink b.b_pipe linked in
      (match Ozo_ir.Verifier.check optimized with
      | Ok () -> ()
      | Error vs ->
        raise
          (Compile_error
             (Fmt.str "post-opt: %a" (Fmt.list ~sep:Fmt.semi Ozo_ir.Verifier.pp_violation) vs)));
      let mode =
        match b.b_abi with
        | Lower.Cuda -> Spmdize.Spmd
        | Lower.Omp _ -> Spmdize.kernel_mode optimized k.Ast.k_name
      in
      (* late lowering: register allocation against the machine's budget,
         SMem layout, spill materialization. The device executes the
         lowered module, so a budget-forced spill shows up both in the
         resource columns and in the simulated local-memory traffic. *)
      let lower =
        Backend.run ~machine ~am ~trace optimized ~kernel:k.Ast.k_name
      in
      (if lower.Backend.lw_module != optimized then
         match Ozo_ir.Verifier.check lower.Backend.lw_module with
         | Ok () -> ()
         | Error vs ->
           raise
             (Compile_error
                (Fmt.str "post-backend: %a"
                   (Fmt.list ~sep:Fmt.semi Ozo_ir.Verifier.pp_violation) vs)));
      { c_build = b; c_module = lower.Backend.lw_module;
        c_kernel = k.Ast.k_name; c_mode = mode; c_machine = machine;
        c_lower = lower;
        c_regs = lower.Backend.lw_kernel_regs;
        c_smem = lower.Backend.lw_layout.Ozo_backend.Smem.ly_total;
        c_remarks = Remarks.items sink })

(* hardware threads per team for a user-visible thread count: generic mode
   hosts the main thread in one extra warp *)
let hw_threads (c : compiled) ~threads =
  match c.c_mode with
  | Spmdize.Spmd -> threads
  | Spmdize.Generic -> threads + Ozo_runtime.Layout.warp_size

type metrics = {
  m_counters : Counters.t;           (* totals over all teams *)
  m_kernel_cycles : float;           (* occupancy-adjusted makespan *)
  m_regs : int;
  m_smem : int;
  m_occupancy : float;
  m_spills : int;                    (* static spill loads + stores *)
  m_hotspots : Engine.hotspot list;  (* [] unless profiling was requested *)
}

(* static spill instructions of a compile (ptxas' "spill loads/stores") *)
let spill_count (c : compiled) =
  c.c_lower.Backend.lw_spill_loads + c.c_lower.Backend.lw_spill_stores

(* Create a device for a compiled kernel (callers allocate buffers on it
   before launching). [~sanitize] arms the SIMT sanitizer's shadow state. *)
let device ?(params = Cost.default) ?(sanitize = false) (c : compiled) =
  Device.create ~params ~sanitize c.c_module

let launch ?(opts = Device.Launch_opts.default) (c : compiled) (dev : Device.t)
    ~teams ~threads (args : Engine.arg list) : (metrics, Device.error) result =
  let hw = hw_threads c ~threads in
  match Device.launch ~opts dev ~teams ~threads:hw args with
  | Error e -> Error e
  | Ok r ->
    (* residency via the backend's occupancy calculator (under the
       default [Machine.vgpu] descriptor this computes exactly what
       [Cost.occupancy] did) *)
    let occ =
      Machine.to_cost_occupancy
        (Machine.occupancy c.c_machine ~threads_per_team:hw
           ~regs_per_thread:c.c_regs ~shared_per_team:c.c_smem)
    in
    let cycles =
      Cost.kernel_time Cost.default ~occupancy:occ
        ~team_cycles:(List.map (fun ct -> ct.Counters.cycles) r.Engine.r_counters)
        ~mem_cycles:(Counters.memory_cycles Cost.default r.Engine.r_total)
    in
    Ok
      { m_counters = r.Engine.r_total; m_kernel_cycles = cycles; m_regs = c.c_regs;
        m_smem = c.c_smem; m_occupancy = occ.Cost.o_occupancy;
        m_spills = spill_count c;
        m_hotspots = r.Engine.r_hotspots }
