(* Public entry point of the library: compile a kernel under one of the
   paper's build configurations, launch it on the virtual GPU and read
   back the Nsight-style metrics.

   The five standard build rows correspond to Fig. 10/11 of the paper:
   CUDA (NVCC), Old RT (Nightly), New RT (Nightly), New RT without
   assumptions, and New RT. *)

open Ozo_ir.Types
module Ast = Ozo_frontend.Ast
module Lower = Ozo_frontend.Lower
module Rt_config = Ozo_runtime.Config
module Pipeline = Ozo_opt.Pipeline
module Spmdize = Ozo_opt.Spmdize
module Device = Ozo_vgpu.Device
module Engine = Ozo_vgpu.Engine
module Counters = Ozo_vgpu.Counters
module Cost = Ozo_vgpu.Cost
module Trace = Ozo_obs.Trace
module Remarks = Ozo_opt.Remarks
module Machine = Ozo_backend.Machine
module Backend = Ozo_backend.Lower

type build = {
  b_label : string;
  b_abi : Lower.abi;
  b_rt : Rt_config.t option; (* None for CUDA *)
  b_pipe : Pipeline.config;
}

(* nvcc performs the generic optimizations (register promotion of locals,
   inlining, folding) too: the full pipeline's OpenMP-specific passes are
   no-ops on runtime-free CUDA code *)
let cuda = { b_label = "CUDA (NVCC)"; b_abi = Lower.Cuda; b_rt = None; b_pipe = Pipeline.full }

let old_rt_nightly =
  { b_label = "Old RT (Nightly)"; b_abi = Lower.Omp Lower.Old_abi;
    b_rt = Some Rt_config.old_rt; b_pipe = Pipeline.full }
(* the old runtime is opaque (no_inline, global state), so even the full
   pipeline cannot do anything to it — exactly the nightly situation *)

let new_rt_nightly =
  { b_label = "New RT (Nightly)"; b_abi = Lower.Omp Lower.New_abi;
    b_rt = Some Rt_config.default; b_pipe = Pipeline.nightly }

let new_rt_no_assumptions =
  { b_label = "New RT - w/o Assumptions"; b_abi = Lower.Omp Lower.New_abi;
    b_rt = Some Rt_config.default; b_pipe = Pipeline.full }

let new_rt =
  { b_label = "New RT"; b_abi = Lower.Omp Lower.New_abi;
    b_rt = Some Rt_config.(with_assumptions default); b_pipe = Pipeline.full }

(* per-application assumption profile: the oversubscription flags are
   user promises, so "New RT" means "with the flags this application can
   honestly pass" *)
let new_rt_teams_only =
  { b_label = "New RT"; b_abi = Lower.Omp Lower.New_abi;
    b_rt = Some Rt_config.(with_teams_assumption default); b_pipe = Pipeline.full }

let standard_builds =
  [ old_rt_nightly; new_rt_nightly; new_rt_no_assumptions; new_rt; cuda ]

(* debug variants: runtime assertion checking enabled at compile time *)
let with_debug b =
  match b.b_rt with
  | None -> b
  | Some rt -> { b with b_label = b.b_label ^ " [debug]"; b_rt = Some (Rt_config.with_debug rt) }

(* ablation variant: one co-designed optimization disabled *)
let without feature b =
  { b with
    b_label = b.b_label ^ " w/o " ^ Pipeline.feature_name feature;
    b_pipe = Pipeline.disable feature b.b_pipe }

type compiled = {
  c_build : build;
  c_module : modul;  (* post-backend module the device executes *)
  c_kernel : string;
  c_mode : Spmdize.exec_mode;
  c_machine : Machine.t;
  c_lower : Backend.summary;  (* late-lowering result: VM code + resources *)
  c_exec : Engine.exec; (* executor the device will run: IR or threaded code *)
  c_regs : int;  (* per-thread registers after allocation, incl. callee chain *)
  c_smem : int;  (* static shared memory bytes per team (aligned layout) *)
  c_remarks : Remarks.t list; (* optimization remarks from this compile *)
}

exception Compile_error of string

(* ---------- compile stages --------------------------------------------- *)

(* Stage 1: lower the kernel under the build's ABI, link the runtime and
   verify. The linked (pre-pipeline) module is the *content* a compile
   is a pure function of — the serving tier's cache keys on its printout
   ([Compile_key.of_linked]) plus everything stage 2 consumes. *)
let link_stage ?(machine = Machine.vgpu) (b : build) (k : Ast.kernel) : modul =
  let app = Lower.lower ~abi:b.b_abi k in
  let linked =
    match b.b_rt with
    | None -> app
    | Some rt_cfg ->
      (* the runtime is built for the target machine's wavefront width:
         generic-mode worker counts (bdim - warp_size) must match the
         engine's warp granularity. For 32-wide machines this emits IR
         byte-identical to the historical [Runtime.build cfg]. *)
      Ozo_ir.Linker.link app
        (Ozo_runtime.Runtime.build ~warp_size:machine.Machine.mc_warp_size rt_cfg)
  in
  (match Ozo_ir.Verifier.check linked with
  | Ok () -> ()
  | Error vs ->
    raise
      (Compile_error
         (Fmt.str "%a" (Fmt.list ~sep:Fmt.semi Ozo_ir.Verifier.pp_violation) vs)));
  linked

(* Canonical fingerprint of one compile: every input stage 2 reads.
   Two requests with equal keys produce bit-identical [compiled]
   artifacts, so the serving tier may return a cached artifact for a
   key hit without changing any simulated result.

   Ingredients (each length-prefixed so fields cannot alias):
   - the linked IR printout — covers the kernel source, the ABI and the
     linked runtime variant byte-for-byte;
   - the pipeline config (marshaled [Pipeline.config], so every
     bool/rounds/memfold flag participates, including ablation variants);
   - the build-ladder rung (label + ABI + runtime config), belt and
     braces on top of the printout so a label-only distinction still
     separates rows in stats;
   - the machine descriptor (register budget, granularities, residency
     ceilings — all of it drives regalloc/SMem/occupancy);
   - the cost-model parameters the metrics are priced under;
   - the execution path ([ir] or [vm]): the cached artifact records which
     executor it was compiled for, so a threaded-form artifact is never
     returned to an interpreter request (and vice versa). *)
module Compile_key = struct
  type t = { ck_hex : string }

  let hex k = k.ck_hex
  let equal a b = String.equal a.ck_hex b.ck_hex
  let pp ppf k = Fmt.string ppf k.ck_hex

  let of_linked ?(cost = Cost.default) ?(exec = Engine.Exec_ir)
      ~(machine : Machine.t) (b : build) (linked : modul) : t =
    let buf = Buffer.create 8192 in
    let part s =
      Buffer.add_string buf (string_of_int (String.length s));
      Buffer.add_char buf ':';
      Buffer.add_string buf s
    in
    part (Ozo_ir.Printer.module_to_string linked);
    part (Marshal.to_string b.b_pipe []);
    part b.b_label;
    part (Marshal.to_string (b.b_abi, b.b_rt) []);
    part (Marshal.to_string machine []);
    part (Marshal.to_string cost []);
    part (Engine.exec_name exec);
    { ck_hex = Digest.to_hex (Digest.string (Buffer.contents buf)) }
end

(* Stage 2: optimization pipeline + late lowering over a linked module.
   This is the expensive, cacheable part; [compile] is stage 1 + stage 2. *)
let compile_linked ?(trace = Trace.null) ?(machine = Machine.vgpu)
    ?(exec = Engine.Exec_ir) (b : build) ~(kernel : Ast.kernel)
    (linked : modul) : compiled =
  let k = kernel in
  Trace.with_span trace ~cat:"compile"
    ~args:[ ("build", Trace.Str b.b_label) ]
    "compile"
    (fun () ->
      let sink = Remarks.make ~trace () in
      (* one analysis manager for the whole compile: the pipeline fills it,
         and the register estimate below reuses its cached liveness *)
      let am = Ozo_opt.Analysis.create () in
      let optimized = Pipeline.run ~am ~trace ~sink b.b_pipe linked in
      (match Ozo_ir.Verifier.check optimized with
      | Ok () -> ()
      | Error vs ->
        raise
          (Compile_error
             (Fmt.str "post-opt: %a" (Fmt.list ~sep:Fmt.semi Ozo_ir.Verifier.pp_violation) vs)));
      let mode =
        match b.b_abi with
        | Lower.Cuda -> Spmdize.Spmd
        | Lower.Omp _ -> Spmdize.kernel_mode optimized k.Ast.k_name
      in
      (* late lowering: register allocation against the machine's budget,
         SMem layout, spill materialization. The device executes the
         lowered module, so a budget-forced spill shows up both in the
         resource columns and in the simulated local-memory traffic. *)
      let lower =
        Backend.run ~machine ~am ~trace optimized ~kernel:k.Ast.k_name
      in
      (if lower.Backend.lw_module != optimized then
         match Ozo_ir.Verifier.check lower.Backend.lw_module with
         | Ok () -> ()
         | Error vs ->
           raise
             (Compile_error
                (Fmt.str "post-backend: %a"
                   (Fmt.list ~sep:Fmt.semi Ozo_ir.Verifier.pp_violation) vs)));
      { c_build = b; c_module = lower.Backend.lw_module;
        c_kernel = k.Ast.k_name; c_mode = mode; c_machine = machine;
        c_lower = lower; c_exec = exec;
        c_regs = lower.Backend.lw_kernel_regs;
        c_smem = lower.Backend.lw_layout.Ozo_backend.Smem.ly_total;
        c_remarks = Remarks.items sink })

let compile ?trace ?machine ?exec (b : build) (k : Ast.kernel) : compiled =
  compile_linked ?trace ?machine ?exec b ~kernel:k (link_stage ?machine b k)

(* hardware threads per team for a user-visible thread count: generic mode
   hosts the main thread in one extra warp *)
let hw_threads (c : compiled) ~threads =
  match c.c_mode with
  | Spmdize.Spmd -> threads
  | Spmdize.Generic -> threads + c.c_machine.Machine.mc_warp_size

type metrics = {
  m_counters : Counters.t;           (* totals over all teams *)
  m_kernel_cycles : float;           (* occupancy-adjusted makespan *)
  m_regs : int;
  m_smem : int;
  m_occupancy : float;
  m_spills : int;                    (* static spill loads + stores *)
  m_hotspots : Engine.hotspot list;  (* [] unless profiling was requested *)
}

(* static spill instructions of a compile (ptxas' "spill loads/stores") *)
let spill_count (c : compiled) =
  c.c_lower.Backend.lw_spill_loads + c.c_lower.Backend.lw_spill_stores

(* Create a device for a compiled kernel (callers allocate buffers on it
   before launching). [~sanitize] arms the SIMT sanitizer's shadow state. *)
let device ?params ?(sanitize = false) (c : compiled) =
  (* the engine runs under the compile's machine: wavefront width drives
     reconvergence, coalescing buckets and uniform-strand scalarization,
     not just the occupancy arithmetic (identity on [Cost.default] for
     the default [Machine.vgpu]) *)
  let params =
    match params with
    | Some p -> p
    | None -> Machine.cost_params c.c_machine
  in
  Device.create ~params ~sanitize ~exec:c.c_exec
    ~plan:c.c_lower.Backend.lw_plan c.c_module

let launch ?(opts = Device.Launch_opts.default) (c : compiled) (dev : Device.t)
    ~teams ~threads (args : Engine.arg list) : (metrics, Device.error) result =
  let hw = hw_threads c ~threads in
  match Device.launch ~opts dev ~teams ~threads:hw args with
  | Error e -> Error e
  | Ok r ->
    (* residency via the backend's occupancy calculator (under the
       default [Machine.vgpu] descriptor this computes exactly what
       [Cost.occupancy] did) *)
    let occ =
      Machine.to_cost_occupancy
        (Machine.occupancy c.c_machine ~threads_per_team:hw
           ~regs_per_thread:c.c_regs ~shared_per_team:c.c_smem)
    in
    let cp = Machine.cost_params c.c_machine in
    let cycles =
      Cost.kernel_time cp ~occupancy:occ
        ~team_cycles:(List.map (fun ct -> ct.Counters.cycles) r.Engine.r_counters)
        ~mem_cycles:(Counters.memory_cycles cp r.Engine.r_total)
    in
    Ok
      { m_counters = r.Engine.r_total; m_kernel_cycles = cycles; m_regs = c.c_regs;
        m_smem = c.c_smem; m_occupancy = occ.Cost.o_occupancy;
        m_spills = spill_count c;
        m_hotspots = r.Engine.r_hotspots }

(* ---------- the unified request API ------------------------------------ *)

(* One record describing a complete unit of work — what to compile (build
   × machine), how to launch it (shape × [Launch_opts.t]) and which
   workload it belongs to. This replaces the old optional-argument split
   between [compile ?trace ?machine] and [launch ?opts ~teams ~threads]:
   both the one-shot harness path and the serving tier's work queue
   consume the same [Request.t], so a queued request is exactly a
   first-class value of the ad-hoc parameter soup it displaced. The
   legacy entry points above survive as thin wrappers. *)
module Request = struct
  type t = {
    rq_proxy : string;            (* workload name, for reporting/stats *)
    rq_build : build;
    rq_machine : Machine.t;
    rq_teams : int;
    rq_threads : int;             (* user-visible threads; hw sizing is per-mode *)
    rq_sanitize : bool;           (* arm the SIMT sanitizer at device creation *)
    rq_exec : Engine.exec;        (* executor: IR interpreter or threaded code *)
    rq_opts : Device.Launch_opts.t;
  }

  let make ?(proxy = "-") ?(machine = Machine.vgpu) ?(sanitize = false)
      ?(exec = Engine.Exec_ir) ?(opts = Device.Launch_opts.default) ~build
      ~teams ~threads () : t =
    { rq_proxy = proxy; rq_build = build; rq_machine = machine;
      rq_teams = teams; rq_threads = threads; rq_sanitize = sanitize;
      rq_exec = exec; rq_opts = opts }

  (* the compile trace is the launch trace: one ctx spans the request *)
  let trace (r : t) = r.rq_opts.Device.Launch_opts.trace
end

(* Compile the request's build on its machine; the serving tier replaces
   this with a cache-backed equivalent of the same signature. *)
let compile_request (r : Request.t) (k : Ast.kernel) : compiled =
  compile ~trace:(Request.trace r) ~machine:r.Request.rq_machine
    ~exec:r.Request.rq_exec r.Request.rq_build k

(* Stage the request's compile through the explicit (link, key, finish)
   steps — what a content-addressed cache needs: the key is derived from
   the linked module before any expensive work happens. *)
let keyed_compile_request (r : Request.t) (k : Ast.kernel) :
    Compile_key.t * (unit -> compiled) =
  let linked = link_stage ~machine:r.Request.rq_machine r.Request.rq_build k in
  let key =
    Compile_key.of_linked ~machine:r.Request.rq_machine ~exec:r.Request.rq_exec
      r.Request.rq_build linked
  in
  ( key,
    fun () ->
      compile_linked ~trace:(Request.trace r) ~machine:r.Request.rq_machine
        ~exec:r.Request.rq_exec r.Request.rq_build ~kernel:k linked )

let device_request (r : Request.t) (c : compiled) : Device.t =
  device ~sanitize:r.Request.rq_sanitize c

let launch_request (r : Request.t) (c : compiled) (dev : Device.t)
    (args : Engine.arg list) : (metrics, Device.error) result =
  launch ~opts:r.Request.rq_opts c dev ~teams:r.Request.rq_teams
    ~threads:r.Request.rq_threads args
