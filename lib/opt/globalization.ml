(* Globalization elimination (paper Section IV-A2, LLVM's AAHeapToShared /
   AAHeapToStack analog): the frontend conservatively routes mutable
   locals and outlined-region argument packs through __kmpc_alloc_shared.
   When the allocation is provably used by only the allocating thread —
   its pointer never escapes into memory, another call, a return or a phi
   — it is demoted to a private stack allocation and its matching
   __kmpc_free_shared calls are dropped.

   The demoted Alloca is hoisted to the function entry: the alloc_shared
   may sit inside a loop after inlining, and per-iteration private
   allocations are equivalent once the pointer cannot escape an
   iteration. *)

open Ozo_ir.Types
module L = Ozo_runtime.Layout

let pass = "openmp-opt:globalization"

(* alloc_shared entry points, pre- or post-internalization *)
let is_alloc_shared n =
  n = L.alloc_shared || n = L.alloc_shared ^ Internalize.clone_suffix

let is_free_shared n = n = L.free_shared || n = L.free_shared ^ Internalize.clone_suffix

(* Check every use of [r] (an alloc_shared result) in [f]. Returns the
   list of free_shared call locations if all uses are benign. Uses allowed:
   address of loads/stores/atomics, ptradd derivation (recursively
   checked), icmp, free_shared(p, _). *)
let private_uses (f : func) (r : reg) : (label * int) list option =
  (* set of registers that denote the allocation's address *)
  let aliases = Hashtbl.create 8 in
  Hashtbl.replace aliases r ();
  (* collect ptradd aliases to a fixpoint *)
  let grew = ref true in
  while !grew do
    grew := false;
    List.iter
      (fun b ->
        List.iter
          (fun i ->
            match i with
            | Ptradd (d, Reg base, _) when Hashtbl.mem aliases base && not (Hashtbl.mem aliases d) ->
              Hashtbl.replace aliases d ();
              grew := true
            | Select (d, _, _, Reg a, Reg b') when (Hashtbl.mem aliases a || Hashtbl.mem aliases b') && not (Hashtbl.mem aliases d) ->
              Hashtbl.replace aliases d ();
              grew := true
            | _ -> ())
          b.b_insts)
      f.f_blocks
  done;
  let is_alias = function Reg x -> Hashtbl.mem aliases x | _ -> false in
  let frees = ref [] in
  let ok = ref true in
  List.iter
    (fun b ->
      List.iter
        (fun p ->
          if List.exists (fun (_, o) -> is_alias o) p.phi_incoming then ok := false)
        b.b_phis;
      List.iteri
        (fun idx i ->
          match i with
          | Load (_, _, _) -> () (* address use: fine *)
          | Store (_, v, _) -> if is_alias v then ok := false
          | Atomic (_, _, _, _, ops) -> if List.exists is_alias ops then ok := false
          | Call (_, callee, args) when is_free_shared callee -> (
            match args with
            | [ p; _ ] when is_alias p -> frees := (b.b_label, idx) :: !frees
            | _ -> if List.exists is_alias args then ok := false)
          | Call (_, _, args) -> if List.exists is_alias args then ok := false
          | Call_indirect (_, _, callee, args) ->
            if is_alias callee || List.exists is_alias args then ok := false
          | Free p -> if is_alias p then ok := false
          | Malloc _ | Alloca _ | Barrier _ | Trap _ | Debug_print _ -> ()
          | Assume _ | Icmp _ | Fcmp _ -> () (* comparisons are benign *)
          | Binop (_, _, a, b') ->
            (* arithmetic on the raw pointer other than ptradd: reject
               unless it is a recognized alias (handled above) *)
            if is_alias a || is_alias b' then ok := false
          | Unop (_, _, a) -> if is_alias a then ok := false
          | Select _ | Ptradd _ -> () (* handled via the alias set *)
          | Intrinsic _ -> ())
        b.b_insts;
      match b.b_term with
      | Ret (Some o) -> if is_alias o then ok := false
      | Cond_br (c, _, _) -> if is_alias c then ok := false
      | Switch (o, _, _) -> if is_alias o then ok := false
      | Ret None | Br _ | Unreachable -> ())
    f.f_blocks;
  if !ok then Some !frees else None

let run ?(sink = Remarks.drop) (m : modul) : modul * bool =
  let changed = ref false in
  let process f =
    (* find candidate allocations *)
    let candidates =
      List.concat_map
        (fun b ->
          List.filter_map
            (function
              | Call (Some r, callee, [ Imm_int (size, _) ])
                when is_alloc_shared callee ->
                Some (r, Int64.to_int size)
              | _ -> None)
            b.b_insts)
        f.f_blocks
    in
    let to_demote =
      List.filter_map
        (fun (r, size) ->
          match private_uses f r with
          | Some frees -> Some (r, size, frees)
          | None ->
            Remarks.missed sink ~pass ~func:f.f_name
              "allocation %%%d stays globalized: pointer may be shared with other threads"
              r;
            None)
        candidates
    in
    if to_demote = [] then f
    else begin
      changed := true;
      let demote = Hashtbl.create 8 in
      List.iter (fun (r, size, _) -> Hashtbl.replace demote r size) to_demote;
      let dead_frees = Hashtbl.create 8 in
      List.iter
        (fun (_, _, frees) -> List.iter (fun l -> Hashtbl.replace dead_frees l ()) frees)
        to_demote;
      let hoisted = ref [] in
      let blocks =
        List.map
          (fun b ->
            let insts =
              List.filteri
                (fun idx i ->
                  match i with
                  | Call (Some r, callee, _)
                    when is_alloc_shared callee && Hashtbl.mem demote r ->
                    hoisted := Alloca (r, Hashtbl.find demote r) :: !hoisted;
                    Remarks.applied sink ~pass ~func:f.f_name
                      "demoted globalized allocation %%%d (%d bytes) to private stack"
                      r (Hashtbl.find demote r);
                    false
                  | _ -> not (Hashtbl.mem dead_frees (b.b_label, idx)))
                b.b_insts
            in
            { b with b_insts = insts })
          f.f_blocks
      in
      let blocks =
        match blocks with
        | e :: rest -> { e with b_insts = List.rev !hoisted @ e.b_insts } :: rest
        | [] -> []
      in
      { f with f_blocks = blocks }
    end
  in
  let funcs = List.map process m.m_funcs in
  if !changed then ({ m with m_funcs = funcs }, true) else (m, false)
