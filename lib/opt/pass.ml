(* First-class optimization passes. Lifting each pass into a [t] lets
   the pipeline drive a plain list: tracing spans, per-step IR
   verification, analysis-cache invalidation and the changed-flag
   fixpoint logic all attach in one place instead of via hand-rolled step
   calls per pass.

   Every pass receives the analysis manager and declares which analyses
   it preserves when it changes the module; [Pipeline.apply_pass] uses
   the declaration (together with the changed flag and physical identity
   of the function records) to invalidate only what was clobbered. *)

open Ozo_ir.Types

type t = {
  name : string;
  (* what stays valid when this pass reports [changed = true]; a pass
     returning [changed = false] invalidates nothing regardless *)
  preserves : Analysis.preserved;
  run : Analysis.t -> Remarks.sink -> modul -> modul * bool;
}

let v name ~preserves run = { name; preserves; run }

(* lift a pass that takes no remarks sink *)
let pure name ~preserves run = { name; preserves; run = (fun am _sink m -> run am m) }
