(* First-class optimization passes. Lifting each pass into a [t] lets
   the pipeline drive a plain list: tracing spans, per-step IR
   verification, and the changed-flag fixpoint logic all attach in one
   place instead of via hand-rolled step calls per pass. *)

open Ozo_ir.Types

type t = {
  name : string;
  run : Remarks.sink -> modul -> modul * bool;
}

let v name run = { name; run }

(* lift a pass that takes no remarks sink *)
let pure name run = { name; run = (fun _sink m -> run m) }
