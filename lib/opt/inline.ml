(* Function inlining. The co-designed pipeline leans on aggressive inlining
   of the (internalized) runtime into kernels: once runtime code is inside
   the kernel, constant arguments (the SPMD mode, outlined-region function
   pointers, trip counts) become visible and the memory analyses can run
   intra-procedurally.

   Allocas of the inlinee are hoisted to the caller's entry block so that
   inlining a callee invoked inside a loop does not grow the thread stack
   per iteration (LLVM uses stacksave/stackrestore; hoisting is equivalent
   here because sizes are static). *)

open Ozo_ir.Types
module SSet = Ozo_ir.Cfg.SSet
module Callgraph = Ozo_ir.Callgraph

let pass = "inline"

let default_block_budget = 120

(* Clone [callee]'s body for inlining at a call site.
   Returns (blocks, entry label, rets, hoisted allocas, new next_reg). *)
let clone_body ~(caller_next : reg) ~(suffix : string) (callee : func)
    (args : operand list) =
  let remap_reg r = r + caller_next in
  let param_map = Hashtbl.create 8 in
  List.iter2 (fun (p, _) a -> Hashtbl.replace param_map p a) callee.f_params args;
  let remap_op = function
    | Reg r -> (
      match Hashtbl.find_opt param_map r with
      | Some a -> a
      | None -> Reg (remap_reg r))
    | o -> o
  in
  let remap_label l = l ^ suffix in
  let rets = ref [] in
  let allocas = ref [] in
  let blocks =
    List.map
      (fun b ->
        let phis =
          List.map
            (fun p ->
              { phi_reg = remap_reg p.phi_reg; phi_typ = p.phi_typ;
                phi_incoming =
                  List.map (fun (l, o) -> (remap_label l, remap_op o)) p.phi_incoming })
            b.b_phis
        in
        let insts =
          List.filter_map
            (fun i ->
              let i = map_inst_operands remap_op i in
              let i =
                match inst_def i with
                | Some r -> (
                  (* rewrite destination *)
                  match i with
                  | Binop (_, op, a, c) -> Binop (remap_reg r, op, a, c)
                  | Unop (_, op, a) -> Unop (remap_reg r, op, a)
                  | Icmp (_, op, a, c) -> Icmp (remap_reg r, op, a, c)
                  | Fcmp (_, op, a, c) -> Fcmp (remap_reg r, op, a, c)
                  | Select (_, t, c, x, y) -> Select (remap_reg r, t, c, x, y)
                  | Load (_, t, a) -> Load (remap_reg r, t, a)
                  | Ptradd (_, a, o) -> Ptradd (remap_reg r, a, o)
                  | Alloca (_, sz) -> Alloca (remap_reg r, sz)
                  | Call (Some _, n, a) -> Call (Some (remap_reg r), n, a)
                  | Call_indirect (Some _, t, c, a) ->
                    Call_indirect (Some (remap_reg r), t, c, a)
                  | Intrinsic (_, k) -> Intrinsic (remap_reg r, k)
                  | Malloc (_, s) -> Malloc (remap_reg r, s)
                  | Atomic (Some _, op, t, a, os) -> Atomic (Some (remap_reg r), op, t, a, os)
                  | other -> other)
                | None -> i
              in
              match i with
              | Alloca _ ->
                allocas := i :: !allocas;
                None
              | _ -> Some i)
            b.b_insts
        in
        let term =
          match b.b_term with
          | Ret o ->
            rets := (remap_label b.b_label, Option.map remap_op o) :: !rets;
            Ret None (* placeholder; rewritten to Br cont below *)
          | Br l -> Br (remap_label l)
          | Cond_br (c, t, fl) -> Cond_br (remap_op c, remap_label t, remap_label fl)
          | Switch (o, cases, d) ->
            Switch
              (remap_op o, List.map (fun (v, l) -> (v, remap_label l)) cases,
               remap_label d)
          | Unreachable -> Unreachable
        in
        { b_label = remap_label b.b_label; b_phis = phis; b_insts = insts; b_term = term })
      callee.f_blocks
  in
  let entry = remap_label (entry_block callee).b_label in
  (blocks, entry, List.rev !rets, List.rev !allocas, caller_next + callee.f_next_reg)

(* Inline one call site in [caller]; returns the updated function. *)
let inline_call (caller : func) (callee : func) ~(block : label) ~(idx : int)
    ~(dst : reg option) ~(args : operand list) ~(site : int) : func =
  let suffix = Printf.sprintf ".i%d" site in
  let blocks, centry, rets, allocas, next_reg =
    clone_body ~caller_next:caller.f_next_reg ~suffix callee args
  in
  let cont_label = Printf.sprintf "%s.cont%d" block site in
  (* rewrite ret blocks to branch to the continuation *)
  let blocks =
    List.map
      (fun b ->
        if List.exists (fun (l, _) -> l = b.b_label) rets then
          { b with b_term = Br cont_label }
        else b)
      blocks
  in
  let ret_phi =
    match dst with
    | None -> []
    | Some r ->
      let typ = match callee.f_ret with Some t -> t | None -> I64 in
      [ { phi_reg = r; phi_typ = typ;
          phi_incoming =
            List.map
              (fun (l, o) -> (l, Option.value ~default:(Undef typ) o))
              rets } ]
  in
  let new_blocks =
    List.concat_map
      (fun b ->
        if b.b_label <> block then [ b ]
        else begin
          let before = List.filteri (fun i _ -> i < idx) b.b_insts in
          let after = List.filteri (fun i _ -> i > idx) b.b_insts in
          let head = { b with b_insts = before; b_term = Br centry } in
          let cont =
            { b_label = cont_label; b_phis = ret_phi; b_insts = after;
              b_term = b.b_term }
          in
          (* phis in successors referring to [block] must now refer to the
             continuation *)
          [ head; cont ] @ blocks
        end)
      caller.f_blocks
  in
  (* fix successor phis: incoming edges from [block] now come from cont *)
  let new_blocks =
    let succs_of_cont = term_succs (find_block_exn { caller with f_blocks = new_blocks } cont_label).b_term in
    List.map
      (fun b ->
        if b.b_label <> cont_label && List.mem b.b_label succs_of_cont then
          { b with
            b_phis =
              List.map
                (fun p ->
                  { p with
                    phi_incoming =
                      List.map
                        (fun (l, o) -> if l = block then (cont_label, o) else (l, o))
                        p.phi_incoming })
                b.b_phis }
        else b)
      new_blocks
  in
  (* hoist inlinee allocas into the entry block *)
  let new_blocks =
    match new_blocks with
    | e :: rest when allocas <> [] -> { e with b_insts = allocas @ e.b_insts } :: rest
    | bs -> bs
  in
  { caller with f_blocks = new_blocks; f_next_reg = next_reg }

(* Inlining policy: internal, non-recursive, not no_inline, and either
   small or single-use. Runtime entry points that were internalized and
   outlined region bodies all satisfy this. *)
let should_inline (cg : Callgraph.t) (_m : modul) (callee : func) =
  callee.f_linkage = Internal
  && (not (List.mem Attr_no_inline callee.f_attrs))
  && (not callee.f_is_kernel)
  && (not (Callgraph.is_recursive cg callee.f_name))
  &&
  let size = List.length callee.f_blocks in
  let callers = Callgraph.callers cg callee.f_name in
  size <= default_block_budget || SSet.cardinal callers <= 1

(* Site counter for unique clone labels. Global across pipeline rounds:
   resetting it would let a round-2 clone collide with surviving round-1
   labels in the same function. *)
let site = ref 0

(* One inlining sweep over the module: each function inlines its eligible
   call sites (one nesting level per sweep; the pipeline iterates). *)
let run ?am ?(sink = Remarks.drop) (m : modul) : modul * bool =
  let am = match am with Some a -> a | None -> Analysis.create () in
  let cg = Analysis.callgraph am m in
  let changed = ref false in
  let process f =
    if List.mem Attr_no_inline f.f_attrs then f
    else begin
      let continue_ = ref true in
      let f = ref f in
      while !continue_ do
        continue_ := false;
        (* find the first eligible call site *)
        let found =
          List.find_map
            (fun b ->
              List.mapi (fun i inst -> (i, inst)) b.b_insts
              |> List.find_map (fun (i, inst) ->
                     match inst with
                     | Call (dst, callee_name, args) -> (
                       match find_func m callee_name with
                       | Some callee
                         when callee.f_name <> !f.f_name && should_inline cg m callee ->
                         Some (b.b_label, i, dst, callee, args)
                       | _ -> None)
                     | _ -> None))
            !f.f_blocks
        in
        match found with
        | Some (block, idx, dst, callee, args) ->
          incr site;
          f := inline_call !f callee ~block ~idx ~dst ~args ~site:!site;
          Remarks.applied sink ~pass ~func:!f.f_name "inlined %s" callee.f_name;
          changed := true;
          continue_ := true
        | None -> ()
      done;
      !f
    end
  in
  let funcs = List.map process m.m_funcs in
  if !changed then ({ m with m_funcs = funcs }, true) else (m, false)
