(* Inter-procedural conditional value propagation through memory
   (paper Section IV-B). Four co-designed sub-analyses, independently
   toggleable for the ablation study (Fig. 13):

   - b1  field-sensitive access analysis (IV-B1): accesses to analyzable
         objects are binned by (object, constant offset, size); the
         zero-initialization rule folds loads at *unknown* offsets (the
         thread-state array indexed by thread id) to NULL when every store
         writes zero. Master switch: without it all rules below are off.
   - b2  lifetime-aware reachability & dominance (IV-B2): facts and
         forwarded stores are filtered against interfering accesses using
         dominance plus path reachability; without it, reasoning degrades
         to single-basic-block windows.
   - b3  assumed memory content (IV-B3): `assume(load(obj+off) == V)`
         placed by the runtime after broadcast barriers establishes the
         content of conditionally written state.
   - b4  invariant value propagation (IV-B4): facts and forwarded values
         may be non-constant SSA values (kernel arguments, grid-geometry
         intrinsics), not just literals.

   Plus the IV-C gate [c] (exclusive execution): store-to-load forwarding
   on provably thread-private (stack) objects.

   Soundness notes: cross-thread visibility of shared state is delegated
   to the runtime's assumes, which are placed only after team-wide
   broadcast barriers and are *verified* in debug builds; racy programs
   are UB, as in OpenMP. Global-space objects are never value-propagated
   (other teams may write them); only the zero/const rules, which are
   team-agnostic, apply. Cross-function reasoning is obtained by
   internalization + inlining + dead-function stripping rather than a
   full inter-procedural attributor; a fact is only used when every store
   to its object lives in the same (post-inlining) function. *)

open Ozo_ir.Types
module Cfg = Ozo_ir.Cfg
module SSet = Cfg.SSet
module SMap = Cfg.SMap
module Dominance = Ozo_ir.Dominance
open Ptrres

let pass = "openmp-opt:memfold"

type opts = { b1 : bool; b2 : bool; b3 : bool; b4 : bool; c : bool }

let all_on = { b1 = true; b2 = true; b3 = true; b4 = true; c = true }

(* ---------- module-wide aggregates per global ------------------------- *)

type gagg = {
  mutable ga_escaped : bool;
  mutable ga_loads : int;
  mutable ga_atomics : int;
  mutable ga_stores : int;
  mutable ga_stores_nonzero : int;
  mutable ga_store_funcs : SSet.t;
}

let fresh_gagg () =
  { ga_escaped = false; ga_loads = 0; ga_atomics = 0; ga_stores = 0;
    ga_stores_nonzero = 0; ga_store_funcs = SSet.empty }

let is_zero_const = function Imm_int (0L, _) -> true | Imm_float 0.0 -> true | _ -> false

(* Scan the module: escapes and access counts for every global. *)
let aggregate (m : modul) : (string, gagg) Hashtbl.t =
  let tbl = Hashtbl.create 32 in
  let agg g =
    match Hashtbl.find_opt tbl g with
    | Some a -> a
    | None ->
      let a = fresh_gagg () in
      Hashtbl.replace tbl g a;
      a
  in
  let mark_escape defs o =
    match resolve defs o with
    | Known ts ->
      List.iter
        (fun t -> match t.t_obj with Glob g -> (agg g).ga_escaped <- true | Alc _ -> ())
        ts
    | Unknown -> ()
  in
  List.iter
    (fun f ->
      let defs = Ptrres.build_defs f in
      let access kind res =
        match res with
        | Unknown -> ()
        | Known ts ->
          List.iter
            (fun t ->
              match t.t_obj with
              | Glob g -> (
                let a = agg g in
                match kind with
                | `Load -> a.ga_loads <- a.ga_loads + 1
                | `Atomic -> a.ga_atomics <- a.ga_atomics + 1
                | `Store nz ->
                  a.ga_stores <- a.ga_stores + 1;
                  if nz then a.ga_stores_nonzero <- a.ga_stores_nonzero + 1;
                  a.ga_store_funcs <- SSet.add f.f_name a.ga_store_funcs)
              | Alc _ -> ())
            ts
      in
      List.iter
        (fun b ->
          List.iter
            (fun p -> List.iter (fun (_, o) -> mark_escape defs o) p.phi_incoming)
            b.b_phis;
          List.iter
            (fun i ->
              match i with
              | Load (_, _, addr) -> access `Load (resolve defs addr)
              | Store (_, v, addr) ->
                access (`Store (not (is_zero_const v))) (resolve defs addr);
                mark_escape defs v
              | Atomic (_, _, _, addr, ops) ->
                access `Atomic (resolve defs addr);
                List.iter (mark_escape defs) ops
              | Call (_, _, args) -> List.iter (mark_escape defs) args
              | Call_indirect (_, _, callee, args) ->
                mark_escape defs callee;
                List.iter (mark_escape defs) args
              | Select (d, _, _, x, y) ->
                (* a select that mixes an analyzable pointer with an
                   unanalyzable one produces an Unknown resolution: the
                   analyzable arm is then reachable through a pointer the
                   analysis cannot see, i.e. it escapes *)
                if resolve defs (Reg d) = Unknown then begin
                  mark_escape defs x;
                  mark_escape defs y
                end
              | Malloc _ | Free _ | Alloca _ | Barrier _ | Trap _ | Assume _
              | Debug_print _ | Binop _ | Unop _ | Icmp _ | Fcmp _
              | Ptradd _ | Intrinsic _ -> ())
            b.b_insts;
          match b.b_term with
          | Ret (Some o) -> mark_escape defs o
          | Ret None | Br _ | Cond_br _ | Switch _ | Unreachable -> ())
        f.f_blocks)
    m.m_funcs;
  tbl

(* ---------- per-function reasoning ------------------------------------ *)

type loc = { l_blk : label; l_idx : int }

type access = {
  a_loc : loc;
  a_kind : [ `Load | `Store | `Atomic ];
  a_res : tgt list;
  a_size : int;
  a_value : operand option; (* for stores *)
}

type fact = {
  fa_obj : obj;
  fa_off : int;
  fa_size : int;
  fa_value : operand;
  fa_loc : loc;
}

type fctx = {
  fc_func : func;
  fc_defs : Ptrres.defs;
  fc_dom : Dominance.t;
  fc_block_reach : SSet.t SMap.t; (* labels reachable from a label (via succs) *)
  fc_accesses : access list;
  fc_facts : fact list;
  fc_alloca_escaped : (reg, unit) Hashtbl.t;
}

(* does execution at [a] possibly reach [b] later? *)
let reaches ctx a b =
  let block_reaches x y =
    match SMap.find_opt x ctx.fc_block_reach with
    | Some s -> SSet.mem y s
    | None -> false
  in
  if a.l_blk = b.l_blk then
    if block_reaches a.l_blk a.l_blk then true (* block inside a cycle *)
    else a.l_idx < b.l_idx
  else block_reaches a.l_blk b.l_blk

let dominates_loc ctx a b =
  if a.l_blk = b.l_blk then a.l_idx < b.l_idx
  else Dominance.strictly_dominates ctx.fc_dom a.l_blk b.l_blk

let overlap off1 size1 = function
  | None -> true
  | Some off2 -> off1 < off2 + 8 && off2 < off1 + size1
(* store sizes are 1/4/8; treating them as ≤8 keeps this simple and
   conservative *)

let analyze_function (am : Analysis.t) (f : func) : fctx =
  let defs = Ptrres.build_defs f in
  let dom = Analysis.dominators am f in
  let breach = Analysis.reachability am f in
  let accesses = ref [] in
  let alloca_escaped = Hashtbl.create 8 in
  let mark_alloca_escape o =
    match resolve defs o with
    | Known ts ->
      List.iter
        (fun t ->
          match t.t_obj with Alc r -> Hashtbl.replace alloca_escaped r () | Glob _ -> ())
        ts
    | Unknown -> ()
  in
  List.iter
    (fun b ->
      List.iter
        (fun p -> List.iter (fun (_, o) -> mark_alloca_escape o) p.phi_incoming)
        b.b_phis;
      List.iteri
        (fun idx i ->
          let loc = { l_blk = b.b_label; l_idx = idx } in
          let add kind res size value =
            match res with
            | Known ts ->
              accesses :=
                { a_loc = loc; a_kind = kind; a_res = ts; a_size = size;
                  a_value = value }
                :: !accesses
            | Unknown -> ()
          in
          match i with
          | Load (_, t, addr) -> add `Load (resolve defs addr) (size_of_typ t) None
          | Store (t, v, addr) ->
            add `Store (resolve defs addr) (size_of_typ t) (Some v);
            mark_alloca_escape v
          | Atomic (_, _, t, addr, ops) ->
            add `Atomic (resolve defs addr) (size_of_typ t) None;
            List.iter mark_alloca_escape ops
          | Call (_, _, args) -> List.iter mark_alloca_escape args
          | Call_indirect (_, _, callee, args) ->
            mark_alloca_escape callee;
            List.iter mark_alloca_escape args
          | Select (d, _, _, x, y) ->
            if resolve defs (Reg d) = Unknown then begin
              mark_alloca_escape x;
              mark_alloca_escape y
            end
          | _ -> ())
        b.b_insts;
      match b.b_term with
      | Ret (Some o) -> mark_alloca_escape o
      | _ -> ())
    f.f_blocks;
  (* extract assumed-content facts: assume(icmp eq (load obj+off), V) *)
  let facts = ref [] in
  List.iter
    (fun b ->
      List.iteri
        (fun idx i ->
          match i with
          | Assume (Reg c) -> (
            match Hashtbl.find_opt defs c with
            | Some (Icmp (_, Eq, x, y)) ->
              let try_load l v =
                match l with
                | Reg lr -> (
                  match Hashtbl.find_opt defs lr with
                  | Some (Load (_, t, addr)) -> (
                    match resolve defs addr with
                    | Known [ { t_obj; t_off = Some off } ] ->
                      facts :=
                        { fa_obj = t_obj; fa_off = off; fa_size = size_of_typ t;
                          fa_value = v; fa_loc = { l_blk = b.b_label; l_idx = idx } }
                        :: !facts
                    | _ -> ())
                  | _ -> ())
                | _ -> ()
              in
              try_load x y;
              try_load y x
            | _ -> ())
          | _ -> ())
        b.b_insts)
    f.f_blocks;
  { fc_func = f; fc_defs = defs; fc_dom = dom; fc_block_reach = breach;
    fc_accesses = !accesses; fc_facts = !facts; fc_alloca_escaped = alloca_escaped }

(* interfering write accesses on (obj, off, size) strictly "between" locs
   [p] and [l]: on some path after p and before l *)
let has_interfering_store ctx ~obj ~off ~size ~from_ ~to_ =
  List.exists
    (fun a ->
      match a.a_kind with
      | `Load -> false
      | `Store | `Atomic ->
        List.exists (fun t -> t.t_obj = obj && overlap off size t.t_off) a.a_res
        && reaches ctx from_ a.a_loc && reaches ctx a.a_loc to_)
    ctx.fc_accesses

(* any write access to (obj, overlapping) anywhere in the function *)
let any_store_to ctx ~obj ~off ~size ~except =
  List.exists
    (fun a ->
      a.a_loc <> except
      &&
      match a.a_kind with
      | `Load -> false
      | `Store | `Atomic ->
        List.exists (fun t -> t.t_obj = obj && overlap off size t.t_off) a.a_res)
    ctx.fc_accesses

let value_is_const = function
  | Imm_int _ | Imm_float _ | Func_addr _ | Global_addr _ -> true
  | Reg _ | Undef _ -> false

(* ---------- the transform ---------------------------------------------- *)

let run ?am ?(sink = Remarks.drop) ?(opts = all_on) (m : modul) : modul * bool =
  if not opts.b1 then (m, false)
  else begin
    let am = match am with Some a -> a | None -> Analysis.create () in
    let gagg = aggregate m in
    let ga g = Hashtbl.find_opt gagg g in
    let find_global g = Ozo_ir.Types.find_global m g in
    let changed = ref false in
    let rewrite_function (f : func) : func =
      let ctx = analyze_function am f in
      let fchanged = ref false in
      let subst : (reg, operand) Hashtbl.t = Hashtbl.create 16 in
      (* ---- load folding ---- *)
      let try_fold_load ~loc ~dst ~typ ~addr =
        ignore dst;
        let size = size_of_typ typ in
        match resolve ctx.fc_defs addr with
        | Unknown -> None
        | Known [ { t_obj = Glob g; t_off } ] -> (
          let global = find_global g in
          let agg = ga g in
          match (global, agg) with
          | Some gl, _
            when gl.g_const && gl.g_space = Constant
                 && (match t_off with
                    | Some o -> o >= 0 && o + size <= gl.g_size
                    | None -> false) -> (
            (* R0: constant-memory configuration global *)
            let off = Option.get t_off in
            match gl.g_init with
            | Zero_init -> Some (Imm_int (0L, typ))
            | Words_init ws ->
              let w = try List.nth ws (off / 8) with _ -> 0L in
              Some (Imm_int (w, typ))
            | No_init -> None)
          | Some gl, Some agg
            when gl.g_init = Zero_init && (not agg.ga_escaped) && agg.ga_atomics = 0
                 && agg.ga_stores_nonzero = 0 && gl.g_linkage = Internal
                 && not gl.g_const ->
            (* R1: zero-initialized object where every store writes zero —
               folds even at unknown offsets (the thread-states array) *)
            if typ = F64 then Some (Imm_float 0.0) else Some (Imm_int (0L, typ))
          | Some gl, Some agg -> (
            (* R2: assumed memory content *)
            match t_off with
            | None -> None
            | Some off ->
              if
                opts.b3 && gl.g_space = Shared && (not agg.ga_escaped)
                && agg.ga_atomics = 0
                && SSet.subset agg.ga_store_funcs (SSet.singleton f.f_name)
              then
                List.find_map
                  (fun fact ->
                    if
                      fact.fa_obj = Glob g && fact.fa_off = off
                      && fact.fa_size = size
                      && (value_is_const fact.fa_value || opts.b4)
                      && (if opts.b2 then dominates_loc ctx fact.fa_loc loc
                          else
                            fact.fa_loc.l_blk = loc.l_blk
                            && fact.fa_loc.l_idx < loc.l_idx
                            && not
                                 (SSet.mem loc.l_blk
                                    (Option.value ~default:SSet.empty
                                       (SMap.find_opt loc.l_blk ctx.fc_block_reach))))
                      && not
                           (has_interfering_store ctx ~obj:(Glob g) ~off ~size
                              ~from_:fact.fa_loc ~to_:loc)
                    then Some fact.fa_value
                    else None)
                  ctx.fc_facts
              else None)
          | _ -> None)
        | Known [ { t_obj = Alc r; t_off = Some off } ]
          when opts.c && not (Hashtbl.mem ctx.fc_alloca_escaped r) ->
          (* R3: store-to-load forwarding on thread-private stack objects
             (exclusive execution, IV-C) *)
          let size = size in
          List.find_map
            (fun a ->
              match (a.a_kind, a.a_value, a.a_res) with
              | `Store, Some v, [ { t_obj = Alc r'; t_off = Some off' } ]
                when r' = r && off' = off && a.a_size = size
                     && (value_is_const v || opts.b4)
                     && (if opts.b2 then dominates_loc ctx a.a_loc loc
                         else
                           a.a_loc.l_blk = loc.l_blk && a.a_loc.l_idx < loc.l_idx
                           && not
                                (SSet.mem loc.l_blk
                                   (Option.value ~default:SSet.empty
                                      (SMap.find_opt loc.l_blk ctx.fc_block_reach)))) ->
                (* no other overlapping store between *)
                let interfering =
                  List.exists
                    (fun a' ->
                      a' != a
                      && (match a'.a_kind with `Load -> false | _ -> true)
                      && List.exists
                           (fun t -> t.t_obj = Alc r && overlap off size t.t_off)
                           a'.a_res
                      && reaches ctx a.a_loc a'.a_loc && reaches ctx a'.a_loc loc)
                    ctx.fc_accesses
                in
                if interfering then None else Some v
              | _ -> None)
            ctx.fc_accesses
        | Known _ -> None
      in
      (* ---- dead store elimination (D1: write-only objects) ---- *)
      let store_is_dead ~res =
        match res with
        | Known ts ->
          ts <> []
          && List.for_all
               (fun t ->
                 match t.t_obj with
                 | Glob g -> (
                   match (find_global g, ga g) with
                   | Some gl, Some agg ->
                     gl.g_linkage = Internal && (not gl.g_const)
                     && (not agg.ga_escaped) && agg.ga_loads = 0 && agg.ga_atomics = 0
                   | Some gl, None ->
                     gl.g_linkage = Internal && not gl.g_const
                   | None, _ -> false)
                 | Alc r ->
                   (not (Hashtbl.mem ctx.fc_alloca_escaped r))
                   && not
                        (List.exists
                           (fun a ->
                             (match a.a_kind with `Load | `Atomic -> true | `Store -> false)
                             && List.exists (fun t' -> t'.t_obj = Alc r) a.a_res)
                           ctx.fc_accesses))
               ts
        | Unknown -> false
      in
      let blocks =
        List.map
          (fun b ->
            let insts =
              List.filteri
                (fun idx i ->
                  let loc = { l_blk = b.b_label; l_idx = idx } in
                  match i with
                  | Load (dst, typ, addr) -> (
                    match try_fold_load ~loc ~dst ~typ ~addr with
                    | Some v ->
                      Hashtbl.replace subst dst v;
                      fchanged := true;
                      Remarks.applied sink ~pass ~func:f.f_name
                        "folded load %%%d (%s) to %s" dst
                        (match resolve ctx.fc_defs addr with
                        | Known [ { t_obj = Glob g; t_off = Some o } ] ->
                          Printf.sprintf "@%s+%d" g o
                        | Known [ { t_obj = Glob g; t_off = None } ] -> "@" ^ g
                        | Known [ { t_obj = Alc r; _ } ] -> Printf.sprintf "alloca %%%d" r
                        | Known _ -> "<multi>"
                        | Unknown -> "<unknown>")
                        (Fmt.str "%a" Ozo_ir.Printer.pp_operand v);
                      false
                    | None -> true)
                  | Store (_, _, addr) ->
                    ignore loc;
                    if store_is_dead ~res:(resolve ctx.fc_defs addr) then begin
                      fchanged := true;
                      false
                    end
                    else true
                  | _ -> true)
                b.b_insts
            in
            { b with b_insts = insts })
          f.f_blocks
      in
      if not !fchanged then f (* physical identity for the analysis cache *)
      else begin
        changed := true;
        (* apply substitutions *)
        let chase o = match o with Reg r -> Option.value ~default:o (Hashtbl.find_opt subst r) | _ -> o in
        let blocks =
          List.map
            (fun b ->
              { b with
                b_phis = List.map (map_phi_operands chase) b.b_phis;
                b_insts = List.map (map_inst_operands chase) b.b_insts;
                b_term = map_term_operands chase b.b_term })
            blocks
        in
        { f with f_blocks = blocks }
      end
    in
    let funcs = List.map rewrite_function m.m_funcs in
    if !changed then ({ m with m_funcs = funcs }, true) else (m, false)
  end

(* Remove all assume instructions: run once facts have been consumed, so
   the feeding loads become dead and write-only state can be stripped. *)
let drop_assumes (m : modul) : modul * bool =
  let changed = ref false in
  let funcs =
    List.map
      (fun f ->
        let fchanged = ref false in
        let blocks =
          List.map
            (fun b ->
              let insts =
                List.filter
                  (function
                    | Assume _ ->
                      fchanged := true;
                      false
                    | _ -> true)
                  b.b_insts
              in
              if !fchanged then { b with b_insts = insts } else b)
            f.f_blocks
        in
        if !fchanged then begin
          changed := true;
          { f with f_blocks = blocks }
        end
        else f)
      m.m_funcs
  in
  if !changed then ({ m with m_funcs = funcs }, true) else (m, false)
