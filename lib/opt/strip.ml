(* Dead symbol stripping for the device image: functions unreachable from
   any kernel and globals referenced by nothing are removed. Shrinking the
   set of live functions is what turns the module-wide memory aggregates
   precise (a store in a dead runtime entry point must not keep state
   alive), and removing dead shared-space globals is what produces the
   paper's "SMem -> 0" effect. *)

open Ozo_ir.Types
module Callgraph = Ozo_ir.Callgraph
module SSet = Ozo_ir.Cfg.SSet

let pass = "strip"

let referenced_globals (m : modul) : SSet.t =
  let set = ref SSet.empty in
  let scan_op = function
    | Global_addr g -> set := SSet.add g !set
    | _ -> ()
  in
  List.iter
    (fun f ->
      List.iter
        (fun b ->
          List.iter (fun p -> List.iter (fun (_, o) -> scan_op o) p.phi_incoming) b.b_phis;
          List.iter (fun i -> List.iter scan_op (inst_uses i)) b.b_insts;
          List.iter scan_op (term_uses b.b_term))
        f.f_blocks)
    m.m_funcs;
  !set

(* Functions live from kernels via direct calls and via Func_addr
   references (a referenced address must stay resolvable even if we cannot
   see an indirect call to it). *)
let live_functions (m : modul) : SSet.t =
  let by_name = Hashtbl.create 32 in
  List.iter (fun f -> Hashtbl.replace by_name f.f_name f) m.m_funcs;
  let live = ref SSet.empty in
  let rec visit name =
    if not (SSet.mem name !live) then begin
      live := SSet.add name !live;
      match Hashtbl.find_opt by_name name with
      | None -> ()
      | Some f ->
        let scan_op = function Func_addr g -> visit g | _ -> () in
        List.iter
          (fun b ->
            List.iter
              (fun p -> List.iter (fun (_, o) -> scan_op o) p.phi_incoming)
              b.b_phis;
            List.iter
              (fun i ->
                List.iter scan_op (inst_uses i);
                match i with Call (_, callee, _) -> visit callee | _ -> ())
              b.b_insts;
            List.iter scan_op (term_uses b.b_term))
          f.f_blocks
    end
  in
  List.iter (fun f -> if f.f_is_kernel then visit f.f_name) m.m_funcs;
  !live

let run ?(sink = Remarks.drop) (m : modul) : modul * bool =
  let orig = m in
  let live = live_functions m in
  let changed = ref false in
  let funcs =
    List.filter
      (fun f ->
        if f.f_is_kernel || SSet.mem f.f_name live then true
        else begin
          changed := true;
          Remarks.applied sink ~pass ~func:f.f_name "removed dead function";
          false
        end)
      m.m_funcs
  in
  let m = { m with m_funcs = funcs } in
  let refs = referenced_globals m in
  let globals =
    List.filter
      (fun g ->
        if SSet.mem g.g_name refs then true
        else begin
          changed := true;
          Remarks.applied sink ~pass ~func:"<module>" "removed dead global @%s (%d bytes %s)"
            g.g_name g.g_size
            (match g.g_space with
            | Shared -> "shared"
            | Global -> "global"
            | Constant -> "constant"
            | Local -> "local");
          false
        end)
      m.m_globals
  in
  if !changed then ({ m with m_globals = globals }, true) else (orig, false)
