(* Internalization (paper Section IV-A1): clone externally visible
   functions into internal copies and redirect in-module uses to the
   clones, so inlining and inter-procedural reasoning are not blocked by
   linkage. The external originals remain as exports; dead-code stripping
   removes them from the final device image if nothing outside the module
   could need them (closed-world device link). *)

open Ozo_ir.Types

let pass = "openmp-opt:internalize"

let clone_suffix = ".internalized"

let run ?(sink = Remarks.drop) (m : modul) : modul * bool =
  let to_clone =
    List.filter (fun f -> f.f_linkage = External && not f.f_is_kernel) m.m_funcs
  in
  if to_clone = [] then (m, false)
  else begin
    let renames = Hashtbl.create 16 in
    List.iter (fun f -> Hashtbl.replace renames f.f_name (f.f_name ^ clone_suffix)) to_clone;
    let rename n = Option.value ~default:n (Hashtbl.find_opt renames n) in
    let clones =
      List.map
        (fun f ->
          Remarks.applied sink ~pass ~func:f.f_name "internalized as %s" (rename f.f_name);
          { f with f_name = rename f.f_name; f_linkage = Internal })
        to_clone
    in
    (* redirect calls and function-address references module-wide (in the
       clones too, so runtime-internal calls stay inside the clone set) *)
    let redirect_op = function
      | Func_addr n -> Func_addr (rename n)
      | o -> o
    in
    let redirect_inst i =
      let i = map_inst_operands redirect_op i in
      match i with
      | Call (d, callee, args) -> Call (d, rename callee, args)
      | _ -> i
    in
    let fix f =
      { f with
        f_blocks =
          List.map
            (fun b ->
              { b with
                b_phis = List.map (map_phi_operands redirect_op) b.b_phis;
                b_insts = List.map redirect_inst b.b_insts;
                b_term = map_term_operands redirect_op b.b_term })
            f.f_blocks }
    in
    let funcs = List.map fix (m.m_funcs @ clones) in
    ({ m with m_funcs = funcs }, true)
  end
