(* Aligned barrier elimination (paper Section IV-D). An aligned barrier is
   removable when no non-thread-local side effect separates it from an
   adjacent aligned synchronization point; kernel entry and exit act as
   implicit aligned barriers. As in the paper, loads from shareable memory
   count as blocking effects (Section VII discusses this conservatism),
   while accesses to provably private stack memory do not. Only *aligned*
   barriers are candidates — unaligned ones may pair with diverged
   threads in the state machine.

   Calls to functions carrying [Attr_aligned_barrier] — the paper's
   `omp assumes ext_aligned_barrier` annotation on inline-assembly
   wrappers (Fig. 6) — are treated exactly like aligned barrier
   instructions. *)

open Ozo_ir.Types
open Ptrres

let pass = "openmp-opt:barrier-elim"

(* does this instruction act as an aligned barrier? *)
let is_aligned_barrier_inst (m : modul) = function
  | Barrier { aligned = true } -> true
  | Call (None, callee, []) -> (
    match find_func m callee with
    | Some f -> List.mem Attr_aligned_barrier f.f_attrs
    | None -> false)
  | _ -> false

(* is this instruction invisible to other threads? *)
let thread_local (defs : Ptrres.defs) (i : inst) : bool =
  let private_addr addr =
    match resolve defs addr with
    | Known ts -> List.for_all (fun t -> match t.t_obj with Alc _ -> true | Glob _ -> false) ts
    | Unknown -> false
  in
  match i with
  | Binop _ | Unop _ | Icmp _ | Fcmp _ | Select _ | Ptradd _ | Intrinsic _
  | Alloca _ | Assume _ -> true
  | Load (_, _, addr) -> private_addr addr
  | Store (_, _, addr) -> private_addr addr
  | Barrier _ | Atomic _ | Call _ | Call_indirect _ | Malloc _ | Free _ | Trap _
  | Debug_print _ -> false

(* Remove redundant aligned barriers inside each kernel:
   1. consecutive aligned barriers in a block with only thread-local
      instructions between them: drop the later one;
   2. an aligned barrier preceded (within the entry block) only by
      thread-local instructions: entry is an implicit barrier, drop it;
   3. an aligned barrier followed only by thread-local instructions and a
      Ret in its block: exit is an implicit barrier, drop it. *)
let process_function (m : modul) (f : func) : func * int =
  let defs = Ptrres.build_defs f in
  let entry = (entry_block f).b_label in
  let removed = ref 0 in
  let blocks =
    List.map
      (fun b ->
        let insts = Array.of_list b.b_insts in
        let n = Array.length insts in
        let keep = Array.make n true in
        let is_aligned i = keep.(i) && is_aligned_barrier_inst m insts.(i) in
        let local_between i j =
          (* strictly between indices i and j, only thread-local or removed *)
          let ok = ref true in
          for k = i + 1 to j - 1 do
            if keep.(k) && not (thread_local defs insts.(k)) then ok := false
          done;
          !ok
        in
        (* rule 1: pairs of aligned barriers *)
        for j = 0 to n - 1 do
          if is_aligned j then
            for i = 0 to j - 1 do
              if keep.(j) && is_aligned i && local_between i j then begin
                keep.(j) <- false;
                incr removed
              end
            done
        done;
        (* rule 2: entry-adjacent *)
        if b.b_label = entry then
          for j = 0 to n - 1 do
            if is_aligned j && local_between (-1) j then begin
              keep.(j) <- false;
              incr removed
            end
          done;
        (* rule 3: exit-adjacent *)
        (match b.b_term with
        | Ret _ ->
          for i = 0 to n - 1 do
            if is_aligned i && local_between i n then begin
              keep.(i) <- false;
              incr removed
            end
          done
        | _ -> ());
        let insts' =
          Array.to_list insts
          |> List.filteri (fun i _ -> keep.(i))
        in
        { b with b_insts = insts' })
      f.f_blocks
  in
  ({ f with f_blocks = blocks }, !removed)

let run ?(sink = Remarks.drop) (m : modul) : modul * bool =
  let changed = ref false in
  let funcs =
    List.map
      (fun f ->
        if f.f_is_kernel then begin
          let f', n = process_function m f in
          if n > 0 then begin
            changed := true;
            Remarks.applied sink ~pass ~func:f.f_name "removed %d redundant aligned barriers" n;
            f'
          end
          else f (* process_function rebuilds records even when it removes
                    nothing; keep the original for physical identity *)
        end
        else f)
      m.m_funcs
  in
  if !changed then ({ m with m_funcs = funcs }, true) else (m, false)
