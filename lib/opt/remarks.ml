(* Optimization remarks, the analog of -Rpass=openmp-opt /
   -Rpass-missed=openmp-opt (paper Section VII): passes report what they
   did and, more importantly, what they could not do and why.

   Remarks flow into a [sink] owned by the compilation rather than a
   global store, so concurrent or repeated compiles can't bleed into each
   other and there is no reset-between-runs footgun. A sink can keep the
   remarks (for `ozo remarks` / tests), forward them as instant events to
   a Trace.ctx (so they land on the pass span timeline), or both; [drop]
   does neither, and on that path the message is never even formatted. *)

type kind = Applied | Missed | Analysis

type t = { r_pass : string; r_kind : kind; r_func : string; r_msg : string }

type sink = {
  sk_keep : bool; (* retain remarks for later retrieval *)
  mutable sk_rev : t list; (* newest first *)
  sk_trace : Ozo_obs.Trace.ctx; (* where remark instants go, if enabled *)
}

let make ?(trace = Ozo_obs.Trace.null) () =
  { sk_keep = true; sk_rev = []; sk_trace = trace }

(* forward to a trace without retaining *)
let trace_only trace = { sk_keep = false; sk_rev = []; sk_trace = trace }

(* the shared no-op sink: no retention, no trace, no formatting cost *)
let drop = { sk_keep = false; sk_rev = []; sk_trace = Ozo_obs.Trace.null }

let kind_name = function
  | Applied -> "applied"
  | Missed -> "missed"
  | Analysis -> "analysis"

let emit sink ~pass ~kind ~func fmt =
  if sink.sk_keep || Ozo_obs.Trace.enabled sink.sk_trace then
    Format.kasprintf
      (fun msg ->
        let r = { r_pass = pass; r_kind = kind; r_func = func; r_msg = msg } in
        if sink.sk_keep then sink.sk_rev <- r :: sink.sk_rev;
        Ozo_obs.Trace.instant sink.sk_trace ~cat:"remark"
          ~args:
            [ ("pass", Ozo_obs.Trace.Str pass);
              ("kind", Ozo_obs.Trace.Str (kind_name kind));
              ("func", Ozo_obs.Trace.Str func);
              ("msg", Ozo_obs.Trace.Str msg) ]
          (pass ^ ":" ^ kind_name kind))
      fmt
  else
    (* dead sink: swallow the format arguments without rendering them *)
    Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let applied sink ~pass ~func fmt = emit sink ~pass ~kind:Applied ~func fmt
let missed sink ~pass ~func fmt = emit sink ~pass ~kind:Missed ~func fmt

(* remarks recorded so far, oldest first *)
let items sink = List.rev sink.sk_rev

let pp ppf r =
  Fmt.pf ppf "[%s:%s] %s: %s" r.r_pass (kind_name r.r_kind) r.r_func r.r_msg

let dump ppf sink = List.iter (fun r -> Fmt.pf ppf "%a@." pp r) (items sink)
