(* Pass pipeline. Configurations map to the paper's build rows:

   - [o0]       — no optimization (debugging / differential testing).
   - [baseline] — generic cleanups only: inlining, constant folding, CFG
                  simplification, DCE, dead-symbol stripping. What a
                  compiler without any OpenMP awareness would do.
   - [nightly]  — baseline + internalization + SPMD-ization: the pre-
                  existing openmp-opt capabilities (Section IV-A) without
                  this paper's additions. Models "New RT (Nightly)".
   - [full]     — everything: + inter-procedural conditional value
                  propagation (IV-B), globalization elimination driven by
                  it, exclusive-execution forwarding (IV-C) and aligned
                  barrier elimination (IV-D). Models "New RT".

   [disable] switches off one sub-optimization for the Fig. 13-style
   ablation; disabling B1 disables all of IV-B, as in the paper. *)

open Ozo_ir.Types

type config = {
  name : string;
  internalize : bool;
  spmdize : bool;
  globalization : bool;
  memfold : Memfold.opts option;
  barrier_elim : bool;
  rounds : int;
}

let o0 =
  { name = "O0"; internalize = false; spmdize = false; globalization = false;
    memfold = None; barrier_elim = false; rounds = 0 }

let baseline =
  { o0 with name = "baseline"; rounds = 4 }

let nightly =
  { baseline with name = "nightly"; internalize = true; spmdize = true }

let full =
  { nightly with
    name = "full"; globalization = true; memfold = Some Memfold.all_on;
    barrier_elim = true; rounds = 6 }

(* Fallback ladder for graceful degradation: when a build faults at
   runtime, the harness retries it at the next-weaker configuration. The
   step is classified structurally (not by name) so ablation variants and
   custom configs degrade sensibly too: anything using the paper's
   co-designed passes drops to [nightly], anything SPMD-izing or
   internalizing drops to [baseline], anything still optimizing drops to
   [o0], and [o0] has nowhere left to go. *)
let weaken (c : config) : config option =
  if c.globalization || c.barrier_elim || c.memfold <> None then Some nightly
  else if c.internalize || c.spmdize then Some baseline
  else if c.rounds > 0 then Some o0
  else None

type feature = B1 | B2 | B3 | B4 | C | D

let feature_name = function
  | B1 -> "field-sensitive-access (IV-B1)"
  | B2 -> "reachability-dominance (IV-B2)"
  | B3 -> "assumed-memory-content (IV-B3)"
  | B4 -> "invariant-propagation (IV-B4)"
  | C -> "exclusive-aligned-execution (IV-C)"
  | D -> "barrier-elimination (IV-D)"

let disable (feat : feature) (c : config) : config =
  let mf o =
    match (feat, o) with
    | B1, _ -> None (* disabling IV-B1 disables all of IV-B *)
    | B2, Some o -> Some { o with Memfold.b2 = false }
    | B3, Some o -> Some { o with Memfold.b3 = false }
    | B4, Some o -> Some { o with Memfold.b4 = false }
    | _, o -> o
  in
  match feat with
  | B1 | B2 | B3 | B4 ->
    { c with name = c.name ^ "-no-" ^ feature_name feat; memfold = mf c.memfold }
  | C -> (
    { c with
      name = c.name ^ "-no-IV-C";
      memfold =
        match c.memfold with Some o -> Some { o with Memfold.c = false } | None -> None })
  | D -> { c with name = c.name ^ "-no-IV-D"; barrier_elim = false }

(* When set, the IR is verified after every pass — used by the test suite
   and while debugging pass bugs; off by default for speed. *)
let verify_each_step = ref false

(* run one pass, tracking whether anything changed *)
let step ?(name = "pass") changed (f : modul -> modul * bool) m =
  let before = m in
  let m, ch = f m in
  if ch then changed := true;
  ignore before;
  if !verify_each_step then begin
    match Ozo_ir.Verifier.check m with
    | Ok () -> ()
    | Error vs ->
      Fmt.epr "pipeline: IR invalid after %s:@." name;
      List.iter (fun v -> Fmt.epr "  %a@." Ozo_ir.Verifier.pp_violation v) vs;
      (match vs with
      | { Ozo_ir.Verifier.v_func; _ } :: _ -> (
        (match Ozo_ir.Types.find_func before v_func with
        | Some f -> Fmt.epr "BEFORE %s:@.%a@." name Ozo_ir.Printer.pp_func f
        | None -> ());
        match Ozo_ir.Types.find_func m v_func with
        | Some f -> Fmt.epr "AFTER:@.%a@." Ozo_ir.Printer.pp_func f
        | None -> ())
      | [] -> ());
      failwith ("pipeline: IR invalid after " ^ name)
  end;
  m

let run (cfg : config) (m : modul) : modul =
  if cfg.rounds = 0 then m
  else begin
    let m = ref m in
    if cfg.internalize then m := fst (Internalize.run !m);
    if cfg.spmdize then begin
      (* clean up first so the kernel structure is canonical *)
      m := fst (Local_opt.run !m);
      m := fst (Spmdize.run !m)
    end;
    let round = ref 0 in
    let any = ref true in
    while !any && !round < cfg.rounds do
      incr round;
      let changed = ref false in
      m := step ~name:"inline" changed Inline.run !m;
      m := step ~name:"local_opt" changed Local_opt.run !m;
      m := step ~name:"cse" changed Cse.run !m;
      m := step ~name:"strip" changed Strip.run !m;
      (match cfg.memfold with
      | Some opts -> m := step ~name:"memfold" changed (Memfold.run ~opts) !m
      | None -> ());
      if cfg.globalization then m := step ~name:"globalization" changed Globalization.run !m;
      m := step ~name:"local_opt2" changed Local_opt.run !m;
      m := step ~name:"strip2" changed Strip.run !m;
      any := !changed
    done;
    (* tail: consume assumptions, final DSE, barrier elimination *)
    m := fst (Memfold.drop_assumes !m);
    m := fst (Local_opt.run !m);
    m := fst (Cse.run !m);
    m := fst (Local_opt.run !m);
    (match cfg.memfold with
    | Some opts ->
      m := fst (Memfold.run ~opts !m);
      m := fst (Local_opt.run !m)
    | None -> ());
    m := fst (Strip.run !m);
    if cfg.barrier_elim then begin
      m := fst (Barrier_elim.run !m);
      m := fst (Local_opt.run !m);
      (match cfg.memfold with
      | Some opts -> m := fst (Memfold.run ~opts !m)
      | None -> ());
      m := fst (Local_opt.run !m);
      m := fst (Strip.run !m)
    end;
    !m
  end
