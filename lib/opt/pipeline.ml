(* Pass pipeline. Configurations map to the paper's build rows:

   - [o0]       — no optimization (debugging / differential testing).
   - [baseline] — generic cleanups only: inlining, constant folding, CFG
                  simplification, DCE, dead-symbol stripping. What a
                  compiler without any OpenMP awareness would do.
   - [nightly]  — baseline + internalization + SPMD-ization: the pre-
                  existing openmp-opt capabilities (Section IV-A) without
                  this paper's additions. Models "New RT (Nightly)".
   - [full]     — everything: + inter-procedural conditional value
                  propagation (IV-B), globalization elimination driven by
                  it, exclusive-execution forwarding (IV-C) and aligned
                  barrier elimination (IV-D). Models "New RT".

   [disable] switches off one sub-optimization for the Fig. 13-style
   ablation; disabling B1 disables all of IV-B, as in the paper.

   The pipeline drives lists of first-class [Pass.t] values, so tracing
   spans, per-step IR verification, and the changed-flag fixpoint logic
   attach uniformly in [apply_pass] instead of per call site. With a
   trace ctx each pass invocation becomes a "pass:<name>" span annotated
   with the IR delta it achieved (functions/blocks/insts removed). *)

open Ozo_ir.Types
module Trace = Ozo_obs.Trace

type config = {
  name : string;
  internalize : bool;
  spmdize : bool;
  globalization : bool;
  memfold : Memfold.opts option;
  barrier_elim : bool;
  rounds : int;
}

let o0 =
  { name = "O0"; internalize = false; spmdize = false; globalization = false;
    memfold = None; barrier_elim = false; rounds = 0 }

let baseline =
  { o0 with name = "baseline"; rounds = 4 }

let nightly =
  { baseline with name = "nightly"; internalize = true; spmdize = true }

let full =
  { nightly with
    name = "full"; globalization = true; memfold = Some Memfold.all_on;
    barrier_elim = true; rounds = 6 }

(* Fallback ladder for graceful degradation: when a build faults at
   runtime, the harness retries it at the next-weaker configuration. The
   step is classified structurally (not by name) so ablation variants and
   custom configs degrade sensibly too: anything using the paper's
   co-designed passes drops to [nightly], anything SPMD-izing or
   internalizing drops to [baseline], anything still optimizing drops to
   [o0], and [o0] has nowhere left to go. *)
let weaken (c : config) : config option =
  if c.globalization || c.barrier_elim || c.memfold <> None then Some nightly
  else if c.internalize || c.spmdize then Some baseline
  else if c.rounds > 0 then Some o0
  else None

type feature = B1 | B2 | B3 | B4 | C | D

let feature_name = function
  | B1 -> "field-sensitive-access (IV-B1)"
  | B2 -> "reachability-dominance (IV-B2)"
  | B3 -> "assumed-memory-content (IV-B3)"
  | B4 -> "invariant-propagation (IV-B4)"
  | C -> "exclusive-aligned-execution (IV-C)"
  | D -> "barrier-elimination (IV-D)"

let disable (feat : feature) (c : config) : config =
  let mf o =
    match (feat, o) with
    | B1, _ -> None (* disabling IV-B1 disables all of IV-B *)
    | B2, Some o -> Some { o with Memfold.b2 = false }
    | B3, Some o -> Some { o with Memfold.b3 = false }
    | B4, Some o -> Some { o with Memfold.b4 = false }
    | _, o -> o
  in
  match feat with
  | B1 | B2 | B3 | B4 ->
    { c with name = c.name ^ "-no-" ^ feature_name feat; memfold = mf c.memfold }
  | C -> (
    { c with
      name = c.name ^ "-no-IV-C";
      memfold =
        match c.memfold with Some o -> Some { o with Memfold.c = false } | None -> None })
  | D -> { c with name = c.name ^ "-no-IV-D"; barrier_elim = false }

(* ---------- pass lists -------------------------------------------------- *)

(* Preserved-analyses declarations (consulted only when a pass reports a
   change; see [Analysis.preserved]):
   - inline and local_opt restructure CFGs and calls: preserve nothing;
   - cse deletes pure non-call instructions within blocks: CFG shape and
     calls survive, liveness does not;
   - strip only removes whole functions/globals — surviving bodies are
     untouched, so per-function analyses hold; the call graph does not;
   - internalize rewrites call targets in every function (registers and
     shapes intact) and adds clones: call graph invalidated;
   - spmdize splits blocks around guards and flips init-mode constants:
     function-local analyses gone, the call-edge set survives;
   - globalization swaps alloc_shared/free_shared calls for allocas
     within blocks: shape intact, calls not;
   - memfold and drop_assumes delete loads/stores/assumes within blocks:
     shape and calls intact;
   - barrier_elim removes barrier instructions and aligned-barrier calls
     within blocks: shape intact, calls not. *)

let p_inline =
  Pass.v "inline" ~preserves:Analysis.preserve_none (fun am sink m ->
      Inline.run ~am ~sink m)

let p_local_opt name =
  Pass.pure name ~preserves:Analysis.preserve_none (fun am m -> Local_opt.run ~am m)

let p_cse =
  Pass.pure "cse"
    ~preserves:{ Analysis.pr_cfg = true; pr_live = false; pr_calls = true }
    (fun am m -> Cse.run ~am m)

let p_strip name =
  Pass.v name
    ~preserves:{ Analysis.pr_cfg = true; pr_live = true; pr_calls = false }
    (fun _am sink m -> Strip.run ~sink m)

let p_internalize =
  Pass.v "internalize"
    ~preserves:{ Analysis.pr_cfg = true; pr_live = true; pr_calls = false }
    (fun _am sink m -> Internalize.run ~sink m)

let p_spmdize =
  Pass.v "spmdize"
    ~preserves:{ Analysis.pr_cfg = false; pr_live = false; pr_calls = true }
    (fun _am sink m -> Spmdize.run ~sink m)

let p_globalization =
  Pass.v "globalization"
    ~preserves:{ Analysis.pr_cfg = true; pr_live = false; pr_calls = false }
    (fun _am sink m -> Globalization.run ~sink m)

let p_memfold opts =
  Pass.v "memfold"
    ~preserves:{ Analysis.pr_cfg = true; pr_live = false; pr_calls = true }
    (fun am sink m -> Memfold.run ~am ~sink ~opts m)

let p_drop_assumes =
  Pass.pure "drop_assumes"
    ~preserves:{ Analysis.pr_cfg = true; pr_live = false; pr_calls = true }
    (fun _am m -> Memfold.drop_assumes m)

let p_barrier_elim =
  Pass.v "barrier_elim"
    ~preserves:{ Analysis.pr_cfg = true; pr_live = false; pr_calls = false }
    (fun _am sink m -> Barrier_elim.run ~sink m)

let opt_pass cond p = if cond then [ p ] else []

(* run once before the fixpoint rounds *)
let prelude_passes cfg =
  opt_pass cfg.internalize p_internalize
  (* clean up first so the kernel structure is canonical *)
  @ (if cfg.spmdize then [ p_local_opt "local_opt"; p_spmdize ] else [])

(* one fixpoint round *)
let round_passes cfg =
  [ p_inline; p_local_opt "local_opt"; p_cse; p_strip "strip" ]
  @ (match cfg.memfold with Some opts -> [ p_memfold opts ] | None -> [])
  @ opt_pass cfg.globalization p_globalization
  @ [ p_local_opt "local_opt2"; p_strip "strip2" ]

(* tail: consume assumptions, final DSE, barrier elimination *)
let tail_passes cfg =
  [ p_drop_assumes; p_local_opt "local_opt"; p_cse; p_local_opt "local_opt" ]
  @ (match cfg.memfold with
    | Some opts -> [ p_memfold opts; p_local_opt "local_opt" ]
    | None -> [])
  @ [ p_strip "strip" ]

let barrier_tail_passes cfg =
  if not cfg.barrier_elim then []
  else
    [ p_barrier_elim; p_local_opt "local_opt" ]
    @ (match cfg.memfold with Some opts -> [ p_memfold opts ] | None -> [])
    @ [ p_local_opt "local_opt"; p_strip "strip" ]

(* ---------- the driver -------------------------------------------------- *)

(* Per-run options (no module-level mutable state):
   - [verify_each_step]: IR verification after every pass — test suite /
     pass debugging; off by default for speed.
   - [check_invalidation]: assert after every pass that every cached
     analysis equals a fresh recomputation ([Analysis.check_coherent]) —
     the differential stale-cache check; off by default.
   - [caching]: analysis caching on/off (off gives the pre-manager
     recompute-everything behaviour, used for A/B compile-time
     measurements). *)
type opts = {
  verify_each_step : bool;
  check_invalidation : bool;
  caching : bool;
}

let default_opts =
  { verify_each_step = false; check_invalidation = false; caching = true }

let module_stats (m : modul) =
  let nblocks = ref 0 and ninsts = ref 0 in
  List.iter
    (fun f ->
      List.iter
        (fun b ->
          incr nblocks;
          ninsts := !ninsts + List.length b.b_insts + List.length b.b_phis + 1)
        f.f_blocks)
    m.m_funcs;
  (List.length m.m_funcs, !nblocks, !ninsts)

let verify_after (p : Pass.t) before m =
  match Ozo_ir.Verifier.check m with
  | Ok () -> ()
  | Error vs ->
    Fmt.epr "pipeline: IR invalid after %s:@." p.Pass.name;
    List.iter (fun v -> Fmt.epr "  %a@." Ozo_ir.Verifier.pp_violation v) vs;
    (match vs with
    | { Ozo_ir.Verifier.v_func; _ } :: _ -> (
      (match Ozo_ir.Types.find_func before v_func with
      | Some f -> Fmt.epr "BEFORE %s:@.%a@." p.Pass.name Ozo_ir.Printer.pp_func f
      | None -> ());
      match Ozo_ir.Types.find_func m v_func with
      | Some f -> Fmt.epr "AFTER:@.%a@." Ozo_ir.Printer.pp_func f
      | None -> ())
    | [] -> ());
    failwith ("pipeline: IR invalid after " ^ p.Pass.name)

(* Run one pass: span + IR-delta + analysis-cache annotation when traced,
   declaration-driven cache invalidation, optional IR verification and
   cache-coherence checking, changed-flag accumulation. [before_stats]
   carries the previous pass's after-stats within a pass list so traced
   runs compute [module_stats] once per pass, not twice. *)
let apply_pass opts am trace sink changed (p : Pass.t) (m : modul) before_stats :
    modul * (int * int * int) option =
  let traced = Trace.enabled trace in
  let before_stats =
    if traced then
      match before_stats with Some s -> s | None -> module_stats m
    else (0, 0, 0)
  in
  let st = Analysis.stats am in
  let h0 = st.Analysis.st_hits and ms0 = st.Analysis.st_misses in
  Trace.begin_span trace ~cat:"pass" ("pass:" ^ p.Pass.name);
  let before = m in
  let m, ch =
    match p.Pass.run am sink m with
    | r -> r
    | exception e ->
      Trace.end_span trace ();
      raise e
  in
  if ch then begin
    changed := true;
    (* a pass reporting no change invalidates nothing; one that changed
       the module invalidates per its declaration, and only for the
       functions it actually touched (physical identity diff) *)
    Analysis.invalidate am ~preserved:p.Pass.preserves ~before ~after:m
  end;
  let after_stats =
    if traced then begin
      let (f1, b1, i1) as s = module_stats m in
      let f0, b0, i0 = before_stats in
      Trace.end_span trace
        ~args:
          [ ("changed", Trace.Int (if ch then 1 else 0));
            ("funcs_removed", Trace.Int (f0 - f1));
            ("blocks_removed", Trace.Int (b0 - b1));
            ("insts_removed", Trace.Int (i0 - i1));
            ("analysis_hits", Trace.Int (st.Analysis.st_hits - h0));
            ("analysis_misses", Trace.Int (st.Analysis.st_misses - ms0)) ]
        ();
      Some s
    end
    else begin
      Trace.end_span trace ();
      None
    end
  in
  if opts.verify_each_step then verify_after p before m;
  if opts.check_invalidation then begin
    match Analysis.check_coherent am m with
    | Ok () -> ()
    | Error e -> failwith ("analysis cache incoherent after " ^ p.Pass.name ^ ": " ^ e)
  end;
  (m, after_stats)

(* The after-stats of pass N feed pass N+1 as its before-stats; the chain
   resets between lists (module identity across lists is unchanged, so
   correctness is unaffected — only the first traced pass of a list pays
   the extra stats walk). *)
let run_list opts am trace sink changed passes m =
  fst
    (List.fold_left
       (fun (m, stats) p -> apply_pass opts am trace sink changed p m stats)
       (m, None) passes)

let run ?(opts = default_opts) ?am ?(trace = Trace.null) ?(sink = Remarks.drop)
    (cfg : config) (m : modul) : modul =
  let am =
    match am with Some a -> a | None -> Analysis.create ~caching:opts.caching ()
  in
  if cfg.rounds = 0 then m
  else
    Trace.with_span trace ~cat:"pipeline"
      ~args:[ ("config", Trace.Str cfg.name) ]
      ("pipeline:" ^ cfg.name)
      (fun () ->
        let ignored = ref false in
        let m = ref (run_list opts am trace sink ignored (prelude_passes cfg) m) in
        let rounds = round_passes cfg in
        let round = ref 0 in
        let any = ref true in
        while !any && !round < cfg.rounds do
          incr round;
          let changed = ref false in
          m :=
            Trace.with_span trace ~cat:"round"
              ("round:" ^ string_of_int !round)
              (fun () -> run_list opts am trace sink changed rounds !m);
          any := !changed
        done;
        m := run_list opts am trace sink ignored (tail_passes cfg) !m;
        m := run_list opts am trace sink ignored (barrier_tail_passes cfg) !m;
        let st = Analysis.stats am in
        Trace.instant trace ~cat:"analysis"
          ~args:
            [ ("hits", Trace.Int st.Analysis.st_hits);
              ("misses", Trace.Int st.Analysis.st_misses);
              ("invalidations", Trace.Int st.Analysis.st_invalidations);
              ("hit_rate_pct", Trace.Float (Analysis.hit_rate st)) ]
          "analysis-cache";
        !m)
