(* SPMD-ization (paper Section IV-A3). Generic-mode kernels execute their
   sequential region on one main thread and drive workers through the
   state machine. When every instruction of the sequential region is safe
   to execute *redundantly* by all threads, the kernel can run in SPMD
   mode instead: the pass flips the constant mode argument of
   __kmpc_target_init / __kmpc_target_deinit and lets constant propagation
   fold the runtime's mode checks — the co-designed runtime branches on
   that one flag everywhere.

   Safety of the sequential region (the kernel body outside parallel
   regions): pure computation and loads are trivially redundant-safe;
   __kmpc_alloc_shared / free_shared become per-thread private copies;
   stores are allowed only into such local allocations, and the stored
   values must not be pointers to other such allocations (a shared
   variable captured by reference would change meaning). Anything else
   keeps the kernel generic, with a missed-optimization remark
   (-Rpass-missed=openmp-opt). *)

open Ozo_ir.Types
module L = Ozo_runtime.Layout
open Ptrres

let pass = "openmp-opt:spmdize"

let is_rt n base = n = base || n = base ^ Internalize.clone_suffix

(* conservative: registers holding alloc_shared results (plus ptradd
   offsets of them) *)
let alloc_shared_regs (f : func) : (reg, unit) Hashtbl.t =
  let t = Hashtbl.create 8 in
  let grew = ref true in
  while !grew do
    grew := false;
    List.iter
      (fun b ->
        List.iter
          (fun i ->
            match i with
            | Call (Some r, callee, _)
              when is_rt callee L.alloc_shared && not (Hashtbl.mem t r) ->
              Hashtbl.replace t r ();
              grew := true
            | Ptradd (d, Reg base, _) when Hashtbl.mem t base && not (Hashtbl.mem t d) ->
              Hashtbl.replace t d ();
              grew := true
            | _ -> ())
          b.b_insts)
      f.f_blocks
  done;
  t

(* Classification of the kernel's sequential-region instructions for SPMD
   execution by all threads:
   - [`Safe]: recomputing on every thread is semantically identical
     (pure code, loads, per-thread allocations, the runtime protocol
     calls — which are designed to be executed by the whole team);
   - [`Guard]: has an observable side effect that must happen once —
     wrapped in a main-thread guard ("others are guarded for single
     threaded execution", Section IV-A3);
   - [`Fatal reason]: cannot be made safe; the kernel stays generic. *)
let classify_inst (allocs : (reg, unit) Hashtbl.t) defs (i : inst) :
    [ `Safe | `Guard | `Fatal of string ] =
  match i with
  | Store (_, v, addr) -> (
    let addr_private =
      (match addr with Reg r -> Hashtbl.mem allocs r | _ -> false)
      ||
      match resolve defs addr with
      | Known ts ->
        List.for_all (fun t -> match t.t_obj with Alc _ -> true | Glob _ -> false) ts
      | Unknown -> false
    in
    match v with
    | Reg r when Hashtbl.mem allocs r ->
      (* a per-thread copy of the allocation would change the region's
         sharing semantics *)
      `Fatal "a shared allocation is captured by reference"
    | _ -> if addr_private then `Safe else `Guard)
  | Atomic _ -> `Guard
  | Debug_print _ -> `Guard
  | Barrier _ -> `Fatal "barrier in sequential region"
  | Malloc _ -> `Fatal "global allocation in sequential region"
  | Free _ -> `Fatal "free in sequential region"
  | Trap _ -> `Safe (* fires identically on every thread *)
  | Call (_, callee, _) ->
    if
      is_rt callee L.target_init || is_rt callee L.target_deinit
      || is_rt callee L.parallel || is_rt callee L.alloc_shared
      || is_rt callee L.free_shared || is_rt callee L.omp_assert
      || is_rt callee L.get_team_num || is_rt callee L.get_num_teams
      || is_rt callee L.get_thread_num || is_rt callee L.get_num_threads
      || is_rt callee L.get_level
    then `Safe
    else `Fatal ("call to " ^ callee ^ " in sequential region")
  | Call_indirect _ -> `Fatal "indirect call in sequential region"
  | Load _ | Binop _ | Unop _ | Icmp _ | Fcmp _ | Select _ | Ptradd _ | Alloca _
  | Intrinsic _ | Assume _ -> `Safe

(* Does a guarded instruction define a register? Its value would be
   missing on non-main threads, so such instructions cannot be guarded. *)
let guardable i = inst_def i = None

let region_analysis (f : func) : (int, string) result =
  let allocs = alloc_shared_regs f in
  let defs = Ptrres.build_defs f in
  let guards = ref 0 in
  let bad = ref None in
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          match classify_inst allocs defs i with
          | `Safe -> ()
          | `Guard ->
            if guardable i then incr guards
            else if !bad = None then bad := Some "guarded instruction produces a value"
          | `Fatal s -> if !bad = None then bad := Some s)
        b.b_insts)
    f.f_blocks;
  match !bad with None -> Ok !guards | Some s -> Error s

(* Rewrite the kernel: wrap every `Guard instruction in an is-main-thread
   conditional. Produces fresh blocks by splitting around the guarded
   instruction. *)
let insert_guards (f : func) : func =
  let allocs = alloc_shared_regs f in
  let defs = Ptrres.build_defs f in
  let next_reg = ref f.f_next_reg in
  let fresh () =
    let r = !next_reg in
    incr next_reg;
    r
  in
  let counter = ref 0 in
  let blocks =
    List.concat_map
      (fun b ->
        (* split the instruction list into runs at guarded instructions *)
        let rec emit label phis acc_rev insts =
          match insts with
          | [] -> [ { b_label = label; b_phis = phis; b_insts = List.rev acc_rev; b_term = b.b_term } ]
          | i :: rest when classify_inst allocs defs i = `Guard ->
            incr counter;
            let n = !counter in
            let tid = fresh () and is0 = fresh () in
            let guard_lbl = Printf.sprintf "%s.guard%d" b.b_label n in
            let cont_lbl = Printf.sprintf "%s.gcont%d" b.b_label n in
            let head =
              { b_label = label; b_phis = phis;
                b_insts =
                  List.rev acc_rev
                  @ [ Intrinsic (tid, Thread_id);
                      Icmp (is0, Eq, Reg tid, Imm_int (0L, I64)) ];
                b_term = Cond_br (Reg is0, guard_lbl, cont_lbl) }
            in
            let guard =
              { b_label = guard_lbl; b_phis = []; b_insts = [ i ]; b_term = Br cont_lbl }
            in
            head :: guard :: emit cont_lbl [] [] rest
          | i :: rest -> emit label phis (i :: acc_rev) rest
        in
        emit b.b_label b.b_phis [] b.b_insts)
      f.f_blocks
  in
  { f with f_blocks = blocks; f_next_reg = !next_reg }

let run ?(sink = Remarks.drop) (m : modul) : modul * bool =
  let changed = ref false in
  let process f =
    if not f.f_is_kernel then f
    else begin
      let has_generic_init =
        List.exists
          (fun b ->
            List.exists
              (function
                | Call (_, callee, [ Imm_int (0L, _) ]) when is_rt callee L.target_init ->
                  true
                | _ -> false)
              b.b_insts)
          f.f_blocks
      in
      if not has_generic_init then f
      else
        match region_analysis f with
        | Error why ->
          Remarks.missed sink ~pass ~func:f.f_name
            "kernel stays in generic mode: %s" why;
          f
        | Ok guards ->
          changed := true;
          if guards = 0 then
            Remarks.applied sink ~pass ~func:f.f_name
              "transformed generic-mode kernel to SPMD mode"
          else
            Remarks.applied sink ~pass ~func:f.f_name
              "transformed generic-mode kernel to SPMD mode, guarding %d side-effecting \
               instructions for single-threaded execution"
              guards;
          let f = if guards > 0 then insert_guards f else f in
          let flip i =
            match i with
            | Call (d, callee, [ Imm_int (0L, t) ])
              when is_rt callee L.target_init || is_rt callee L.target_deinit ->
              Call (d, callee, [ Imm_int (1L, t) ])
            | _ -> i
          in
          { f with
            f_blocks =
              List.map
                (fun b -> { b with b_insts = List.map flip b.b_insts })
                f.f_blocks }
    end
  in
  let funcs = List.map process m.m_funcs in
  if !changed then ({ m with m_funcs = funcs }, true) else (m, false)

(* Execution mode of a kernel, read back from the IR (the launch side
   needs it to size the team: generic mode hosts the main thread in an
   extra warp). *)
type exec_mode = Spmd | Generic

let kernel_mode (m : modul) (kname : string) : exec_mode =
  match find_func m kname with
  | None -> Spmd
  | Some f ->
    let generic = ref false in
    List.iter
      (fun b ->
        List.iter
          (function
            | Call (_, callee, [ Imm_int (0L, _) ])
              when is_rt callee L.target_init -> generic := true
            | _ -> ())
          b.b_insts)
      f.f_blocks;
    if !generic then Generic else Spmd
