(* Local cleanups: constant folding, instruction combining (including the
   GPU-domain rules the OpenMP pass relies on), branch folding, CFG
   simplification and dead-code elimination with a purity analysis.

   Runs to a fixpoint per invocation. All folds use the same evaluation
   semantics as the virtual GPU (OCaml native ints / floats). *)

open Ozo_ir.Types
module Cfg = Ozo_ir.Cfg
module SMap = Cfg.SMap
module SSet = Cfg.SSet

let pass = "local-opt"

(* ---------- purity ---------------------------------------------------- *)

(* A function is pure if it cannot write memory, synchronize, trap or
   otherwise have observable effects; loads are allowed (removing an
   unused pure call drops only reads). *)
let pure_functions (m : modul) : SSet.t =
  let assume_pure = ref SSet.empty in
  List.iter (fun f -> assume_pure := SSet.add f.f_name !assume_pure) m.m_funcs;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun f ->
        if SSet.mem f.f_name !assume_pure then begin
          let impure =
            List.exists
              (fun b ->
                List.exists
                  (function
                    | Store _ | Barrier _ | Atomic _ | Trap _ | Malloc _ | Free _
                    | Debug_print _ | Assume _ -> true
                    | Call (_, callee, _) -> not (SSet.mem callee !assume_pure)
                    | Call_indirect _ -> true
                    | Binop _ | Unop _ | Icmp _ | Fcmp _ | Select _ | Load _
                    | Ptradd _ | Alloca _ | Intrinsic _ -> false)
                  b.b_insts)
              f.f_blocks
          in
          if impure then begin
            assume_pure := SSet.remove f.f_name !assume_pure;
            changed := true
          end
        end)
      m.m_funcs
  done;
  !assume_pure

(* ---------- constant folding ------------------------------------------ *)

let as_int = function Imm_int (v, _) -> Some (Int64.to_int v) | _ -> None
let as_float = function Imm_float x -> Some x | _ -> None

let fold_ibinop op a b =
  match op with
  | Add -> Some (a + b)
  | Sub -> Some (a - b)
  | Mul -> Some (a * b)
  | Sdiv -> if b = 0 then None else Some (a / b)
  | Srem -> if b = 0 then None else Some (a mod b)
  | Udiv -> if b = 0 then None else Some (abs a / abs b)
  | Urem -> if b = 0 then None else Some (abs a mod abs b)
  | And -> Some (a land b)
  | Or -> Some (a lor b)
  | Xor -> Some (a lxor b)
  | Shl -> Some (a lsl (b land 62))
  | Ashr -> Some (a asr (b land 62))
  | Lshr -> Some ((a lsr (b land 62)) land max_int)
  | Smin -> Some (min a b)
  | Smax -> Some (max a b)
  | Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax -> None

let fold_fbinop op a b =
  match op with
  | Fadd -> Some (a +. b)
  | Fsub -> Some (a -. b)
  | Fmul -> Some (a *. b)
  | Fdiv -> Some (a /. b)
  | Fmin -> Some (min a b)
  | Fmax -> Some (max a b)
  | _ -> None

let icmp_ult a b =
  (a >= 0 && b >= 0 && a < b) || (a >= 0 && b < 0) || (a < 0 && b < 0 && a < b)

let fold_icmp op a b =
  let r =
    match op with
    | Eq -> a = b
    | Ne -> a <> b
    | Slt -> a < b
    | Sle -> a <= b
    | Sgt -> a > b
    | Sge -> a >= b
    | Ult -> icmp_ult a b
    | Ule -> a = b || icmp_ult a b
    | Ugt -> icmp_ult b a
    | Uge -> a = b || icmp_ult b a
  in
  if r then 1 else 0

let fold_fcmp op a b =
  let r =
    match op with
    | Feq -> a = b
    | Fne -> a <> b
    | Flt -> a < b
    | Fle -> a <= b
    | Fgt -> a > b
    | Fge -> a >= b
  in
  if r then 1 else 0

(* ---------- per-function rewrite --------------------------------------- *)

type defs = (reg, inst) Hashtbl.t

let build_defs (f : func) : defs =
  let t = Hashtbl.create 64 in
  List.iter
    (fun b ->
      List.iter
        (fun i -> match inst_def i with Some r -> Hashtbl.replace t r i | None -> ())
        b.b_insts)
    f.f_blocks;
  t

(* Try to fold one instruction (with operands already substituted) to an
   operand. [defs] lets domain rules look through register definitions. *)
let fold_inst (defs : defs) (inst : inst) : operand option =
  let def_of o =
    match o with Reg r -> Hashtbl.find_opt defs r | _ -> None
  in
  match inst with
  | Binop (_, op, a, b) -> (
    match (as_int a, as_int b, as_float a, as_float b) with
    | Some x, Some y, _, _ ->
      Option.map (fun v -> Imm_int (Int64.of_int v, I64)) (fold_ibinop op x y)
    | _, _, Some x, Some y ->
      Option.map (fun v -> Imm_float v) (fold_fbinop op x y)
    | _ -> (
      (* identities *)
      match (op, a, b, as_int a, as_int b) with
      | Add, _, _, Some 0, _ -> Some b
      | Add, _, _, _, Some 0 -> Some a
      | Sub, _, _, _, Some 0 -> Some a
      | Mul, _, _, Some 1, _ -> Some b
      | Mul, _, _, _, Some 1 -> Some a
      | Mul, _, _, Some 0, _ | Mul, _, _, _, Some 0 -> Some (Imm_int (0L, I64))
      | And, _, _, Some 0, _ | And, _, _, _, Some 0 -> Some (Imm_int (0L, I64))
      | Or, _, _, Some 0, _ -> Some b
      | Or, _, _, _, Some 0 -> Some a
      | Xor, _, _, _, Some 0 -> Some a
      | (Fadd | Fsub), _, _, _, _ when as_float b = Some 0.0 -> Some a
      | Fmul, _, _, _, _ when as_float b = Some 1.0 -> Some a
      | Fmul, _, _, _, _ when as_float a = Some 1.0 -> Some b
      | _ -> None))
  | Unop (_, op, a) -> (
    match (op, as_int a, as_float a) with
    | Not, Some x, _ -> Some (Imm_int (Int64.of_int (lnot x), I64))
    | Fneg, _, Some x -> Some (Imm_float (-.x))
    | Fabs, _, Some x -> Some (Imm_float (Float.abs x))
    | Fsqrt, _, Some x -> Some (Imm_float (sqrt x))
    | Fexp, _, Some x -> Some (Imm_float (exp x))
    | Flog, _, Some x -> Some (Imm_float (log x))
    | Fsin, _, Some x -> Some (Imm_float (sin x))
    | Fcos, _, Some x -> Some (Imm_float (cos x))
    | Sitofp, Some x, _ -> Some (Imm_float (float_of_int x))
    | Fptosi, _, Some x -> Some (Imm_int (Int64.of_int (int_of_float x), I64))
    | Zext32to64, Some x, _ -> Some (Imm_int (Int64.of_int (x land 0xFFFFFFFF), I64))
    | Trunc64to32, Some x, _ -> Some (Imm_int (Int64.of_int (x land 0xFFFFFFFF), I64))
    | _ -> None)
  | Icmp (_, op, a, b) -> (
    match (as_int a, as_int b) with
    | Some x, Some y -> Some (Imm_int (Int64.of_int (fold_icmp op x y), I1))
    | _ ->
      if a = b && (match a with Reg _ -> true | _ -> false) then
        (* x op x *)
        let r = match op with Eq | Sle | Sge | Ule | Uge -> 1 | _ -> 0 in
        Some (Imm_int (Int64.of_int r, I1))
      else begin
        (* GPU-domain rules: 0 <= thread_id < block_dim, 0 <= block_id <
           grid_dim. This is OpenMP/GPU knowledge the optimization pass
           carries (Section IV). *)
        match (op, def_of a, def_of b, as_int a, as_int b) with
        | Slt, Some (Intrinsic (_, Thread_id)), Some (Intrinsic (_, Block_dim)), _, _
        | Slt, Some (Intrinsic (_, Lane_id)), Some (Intrinsic (_, Warp_size)), _, _
        | Slt, Some (Intrinsic (_, Block_id)), Some (Intrinsic (_, Grid_dim)), _, _ ->
          Some (Imm_int (1L, I1))
        | Sge, Some (Intrinsic (_, Thread_id)), _, _, Some 0
        | Sge, Some (Intrinsic (_, Block_id)), _, _, Some 0
        | Sge, Some (Intrinsic (_, Block_dim)), _, _, Some 0
        | Sge, Some (Intrinsic (_, Grid_dim)), _, _, Some 0 ->
          Some (Imm_int (1L, I1))
        | Slt, Some (Intrinsic (_, Thread_id)), _, _, Some 0
        | Slt, Some (Intrinsic (_, Block_id)), _, _, Some 0 ->
          Some (Imm_int (0L, I1))
        | _ -> None
      end)
  | Fcmp (_, op, a, b) -> (
    match (as_float a, as_float b) with
    | Some x, Some y -> Some (Imm_int (Int64.of_int (fold_fcmp op x y), I1))
    | _ -> None)
  | Select (_, _, c, x, y) -> (
    match as_int c with
    | Some 0 -> Some y
    | Some _ -> Some x
    | None -> if x = y then Some x else None)
  | Ptradd (_, base, off) -> (
    match as_int off with Some 0 -> Some base | _ -> None)
  | _ -> None

(* substitution of operands via union-find-ish map *)
let rec chase subst o =
  match o with
  | Reg r -> (
    match Hashtbl.find_opt subst r with
    | Some o' when o' <> o -> chase subst o'
    | _ -> o)
  | _ -> o

let simplify_function (am : Analysis.t) (m : modul) (pure : SSet.t) (f : func) :
    func * bool =
  ignore m;
  let orig = f in
  let changed = ref false in
  let subst : (reg, operand) Hashtbl.t = Hashtbl.create 32 in
  let f = ref f in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    let defs = build_defs !f in
    (* 1. fold instructions *)
    let fold_block b =
      let insts =
        List.filter_map
          (fun i ->
            let i = map_inst_operands (chase subst) i in
            match inst_def i with
            | Some r when not (Hashtbl.mem subst r) -> (
              match fold_inst defs i with
              | Some o ->
                Hashtbl.replace subst r (chase subst o);
                changed := true;
                continue_ := true;
                None
              | None -> (
                (* devirtualize indirect calls with known targets *)
                match i with
                | Call_indirect (d, _, Func_addr callee, args) ->
                  changed := true;
                  continue_ := true;
                  Some (Call (d, callee, args))
                | _ -> Some i))
            | _ -> (
              match i with
              | Call_indirect (d, _, Func_addr callee, args) ->
                changed := true;
                continue_ := true;
                Some (Call (d, callee, args))
              | _ -> Some i))
          b.b_insts
      in
      let phis =
        List.filter_map
          (fun p ->
            let p = map_phi_operands (chase subst) p in
            (* phi of identical values (ignoring self-references) *)
            let vals =
              List.filter_map
                (fun (_, o) -> if o = Reg p.phi_reg then None else Some o)
                p.phi_incoming
            in
            match List.sort_uniq compare vals with
            | [ v ] when (match v with Reg _ | Imm_int _ | Imm_float _ | Global_addr _ | Func_addr _ -> true | Undef _ -> false) ->
              Hashtbl.replace subst p.phi_reg (chase subst v);
              changed := true;
              continue_ := true;
              None
            | _ -> Some p)
          b.b_phis
      in
      let term = map_term_operands (chase subst) b.b_term in
      let term =
        match term with
        | Cond_br (c, t, fl) -> (
          match as_int c with
          | Some 0 ->
            changed := true;
            Br fl
          | Some _ ->
            changed := true;
            Br t
          | None -> if t = fl then Br t else term)
        | Switch (o, cases, d) -> (
          match as_int o with
          | Some v -> (
            changed := true;
            match List.find_opt (fun (cv, _) -> Int64.to_int cv = v) cases with
            | Some (_, l) -> Br l
            | None -> Br d)
          | None -> term)
        | _ -> term
      in
      { b with b_insts = insts; b_phis = phis; b_term = term }
    in
    f := { !f with f_blocks = List.map fold_block !f.f_blocks };
    (* 2. prune unreachable blocks (reusing the manager's CFG) *)
    let f2, ch = Cfg.prune_unreachable ~cfg:(Analysis.cfg am !f) !f in
    if ch then begin
      changed := true;
      continue_ := true
    end;
    f := f2;
    (* 3. merge straight-line blocks: b absorbs s when b's only successor
       is s and s's only predecessor is b. Contents are taken from a live
       table so a block that already absorbed others is merged with its
       current (not stale) body; predecessor *counts* are invariant under
       merging, so the initial CFG's counts stay valid. *)
    let cfg = Analysis.cfg am !f in
    let current : (label, block) Hashtbl.t = Hashtbl.create 16 in
    List.iter (fun b -> Hashtbl.replace current b.b_label b) !f.f_blocks;
    let merged = ref SSet.empty in
    (* rename map: absorbed label -> absorbing block's label, for phi
       incoming edges in the successors of the absorbed block *)
    let renames : (label, label) Hashtbl.t = Hashtbl.create 8 in
    let rec final_label l =
      match Hashtbl.find_opt renames l with Some l' -> final_label l' | None -> l
    in
    let rec merge_from lbl =
      match Hashtbl.find_opt current lbl with
      | None -> ()
      | Some b -> (
        match b.b_term with
        | Br s
          when s <> b.b_label && final_label s <> b.b_label
               && (match Cfg.preds cfg s with [ _ ] -> true | _ -> false)
               && (not (SSet.mem s !merged))
               && Hashtbl.mem current s ->
          let sb = Hashtbl.find current s in
          if sb.b_phis = [] then begin
            merged := SSet.add s !merged;
            Hashtbl.replace renames s b.b_label;
            Hashtbl.remove current s;
            Hashtbl.replace current b.b_label
              { b with b_insts = b.b_insts @ sb.b_insts; b_term = sb.b_term };
            changed := true;
            continue_ := true;
            merge_from b.b_label
          end
        | _ -> ())
    in
    List.iter (fun b -> merge_from b.b_label) !f.f_blocks;
    let blocks =
      List.filter_map
        (fun b ->
          if SSet.mem b.b_label !merged then None
          else Hashtbl.find_opt current b.b_label)
        !f.f_blocks
    in
    let blocks =
      if Hashtbl.length renames = 0 then blocks
      else
        List.map
          (fun b ->
            { b with
              b_phis =
                List.map
                  (fun p ->
                    { p with
                      phi_incoming =
                        List.map (fun (l, o) -> (final_label l, o)) p.phi_incoming })
                  b.b_phis })
          blocks
    in
    f := { !f with f_blocks = blocks };
    (* 4. apply pending substitutions everywhere before DCE: a value that
       is only reachable through the substitution map must not look dead *)
    if Hashtbl.length subst > 0 then begin
      let ch = chase subst in
      f :=
        { !f with
          f_blocks =
            List.map
              (fun b ->
                { b with
                  b_phis = List.map (map_phi_operands ch) b.b_phis;
                  b_insts = List.map (map_inst_operands ch) b.b_insts;
                  b_term = map_term_operands ch b.b_term })
              !f.f_blocks }
    end;
    (* 5. DCE *)
    let used = Hashtbl.create 64 in
    let mark o = List.iter (fun r -> Hashtbl.replace used r ()) (operand_regs o) in
    List.iter
      (fun b ->
        List.iter (fun p -> List.iter (fun (_, o) -> mark o) p.phi_incoming) b.b_phis;
        List.iter (fun i -> List.iter mark (inst_uses i)) b.b_insts;
        List.iter mark (term_uses b.b_term))
      !f.f_blocks;
    let is_dead i =
      match inst_def i with
      | Some r when not (Hashtbl.mem used r) -> (
        match i with
        | Call (_, callee, _) -> SSet.mem callee pure
        | _ -> not (inst_has_side_effects i))
      | Some _ -> false
      | None -> (
        (* void pure calls are dead *)
        match i with Call (None, callee, _) -> SSet.mem callee pure | _ -> false)
    in
    let blocks =
      List.map
        (fun b ->
          let insts =
            List.filter
              (fun i ->
                if is_dead i then begin
                  changed := true;
                  continue_ := true;
                  false
                end
                else true)
              b.b_insts
          in
          let phis =
            List.filter
              (fun p ->
                if Hashtbl.mem used p.phi_reg then true
                else begin
                  changed := true;
                  continue_ := true;
                  false
                end)
              b.b_phis
          in
          { b with b_insts = insts; b_phis = phis })
        !f.f_blocks
    in
    f := { !f with f_blocks = blocks }
  done;
  (* the rewrite loop rebuilds records even on no-op iterations; return the
     original so the analysis manager sees physical identity *)
  if !changed then (!f, true) else (orig, false)

let run ?am (m : modul) : modul * bool =
  let am = match am with Some a -> a | None -> Analysis.create () in
  let pure = pure_functions m in
  let changed = ref false in
  let funcs =
    List.map
      (fun f ->
        let f', ch = try simplify_function am m pure f with Failure msg ->
          Fmt.epr "INPUT WAS:@.%a@." Ozo_ir.Printer.pp_func f;
          failwith msg
        in
        if ch then changed := true;
        f')
      m.m_funcs
  in
  if !changed then ({ m with m_funcs = funcs }, true) else (m, false)
