(* Analysis manager: lazily computed, cached, invalidation-aware IR
   analyses threaded through every pass (the reproduction of LLVM's new
   pass manager analysis caching that the paper's openmp-opt module pass
   relies on). One manager lives for the duration of a pipeline run; the
   passes query it instead of constructing CFGs, dominator trees, liveness
   or the call graph ad hoc, and [Pipeline.apply_pass] invalidates after
   each pass according to the pass's preserved-analyses declaration.

   Caching model
   - Per-function results (CFG, dominators, post-dominators, block
     reachability, liveness, register pressure) are keyed by function
     name. An entry remembers the exact [func] value it was computed on.
   - Validation is two-tier. A physically identical [func] (the common
     case after a pass returned its input unchanged) is served directly.
     A physically different value triggers a cheap structural comparison
     of the CFG *shape* (block labels in order plus terminator
     successors): if the shape is unchanged, the shape-derived analyses
     (CFG, dominance, post-dominance, reachability) are still valid and
     only the CFG's block-content map is refreshed, while content-derived
     analyses (liveness, pressure) are dropped; if the shape changed, the
     whole entry is recomputed. This self-validation makes a wrong
     [preserves] declaration a performance bug, never a correctness bug —
     [check_coherent] (used by the differential test suite) asserts the
     stronger property that every cached result equals a fresh
     recomputation.
   - The call graph is module-wide and validated purely by the
     invalidation contract: any changing pass that does not declare
     [pr_calls] drops it.

   [create ~caching:false] yields a pass-through manager (every query
   recomputes) used for A/B compile-time measurements in perfbench. *)

open Ozo_ir.Types
module Cfg = Ozo_ir.Cfg
module Dominance = Ozo_ir.Dominance
module Liveness = Ozo_ir.Liveness
module Callgraph = Ozo_ir.Callgraph
module SMap = Cfg.SMap
module SSet = Cfg.SSet

(* What a pass declares it keeps intact *when it reports a change*.
   [pr_cfg] covers every shape-derived per-function analysis, [pr_live]
   the content-derived ones, [pr_calls] the module call graph. *)
type preserved = { pr_cfg : bool; pr_live : bool; pr_calls : bool }

let preserve_all = { pr_cfg = true; pr_live = true; pr_calls = true }
let preserve_none = { pr_cfg = false; pr_live = false; pr_calls = false }
let preserve_cfg_only = { pr_cfg = true; pr_live = false; pr_calls = false }

type stats = {
  mutable st_hits : int;
  mutable st_misses : int;
  mutable st_invalidations : int;
}

(* CFG shape: block labels in order with their terminator successors.
   Two functions with equal shapes produce structurally identical CFGs,
   dominator trees and reachability maps (the construction is a
   deterministic function of this list), so shape equality is exactly the
   validity condition for the shape-derived analyses. *)
type shape = (label * label list) list

let shape_of (f : func) : shape =
  List.map (fun b -> (b.b_label, term_succs b.b_term)) f.f_blocks

type entry = {
  mutable e_func : func;   (* the value the cached results were computed on *)
  mutable e_shape : shape;
  mutable e_cfg : Cfg.t option;
  mutable e_dom : Dominance.t option;
  mutable e_pdom : Dominance.t option;
  mutable e_reach : SSet.t SMap.t option; (* label -> labels reachable via succs *)
  mutable e_live : Liveness.t option;
  mutable e_pressure : int option;
}

type t = {
  caching : bool;
  entries : (string, entry) Hashtbl.t;
  mutable cg : Callgraph.t option;
  stats : stats;
}

let create ?(caching = true) () =
  { caching;
    entries = Hashtbl.create 16;
    cg = None;
    stats = { st_hits = 0; st_misses = 0; st_invalidations = 0 } }

let stats t = t.stats
let caching t = t.caching

let hit t = t.stats.st_hits <- t.stats.st_hits + 1
let miss t = t.stats.st_misses <- t.stats.st_misses + 1
let note_invalidation t =
  t.stats.st_invalidations <- t.stats.st_invalidations + 1

let hit_rate s =
  let total = s.st_hits + s.st_misses in
  if total = 0 then 0.0 else 100.0 *. float_of_int s.st_hits /. float_of_int total

let fresh_entry f =
  { e_func = f; e_shape = shape_of f; e_cfg = None; e_dom = None; e_pdom = None;
    e_reach = None; e_live = None; e_pressure = None }

(* Validate (or create) the entry for [f]. See the caching model above. *)
let entry_for t (f : func) : entry =
  match Hashtbl.find_opt t.entries f.f_name with
  | None ->
    let e = fresh_entry f in
    Hashtbl.add t.entries f.f_name e;
    e
  | Some e ->
    if e.e_func == f then e
    else begin
      let sh = shape_of f in
      if sh = e.e_shape then begin
        (* same shape, possibly different block contents: refresh the
           block map of the cached CFG, drop content-derived results *)
        (match e.e_cfg with
        | Some cfg ->
          let blocks =
            List.fold_left
              (fun acc b -> SMap.add b.b_label b acc)
              SMap.empty f.f_blocks
          in
          e.e_cfg <- Some { cfg with Cfg.blocks }
        | None -> ());
        e.e_live <- None;
        e.e_pressure <- None;
        e.e_func <- f;
        e
      end
      else begin
        note_invalidation t;
        let e' = fresh_entry f in
        Hashtbl.replace t.entries f.f_name e';
        e'
      end
    end

(* uncounted internal accessors, so compound queries (dominators needs the
   CFG) register exactly one hit or miss per public call *)
let cfg_of e =
  match e.e_cfg with
  | Some c -> c
  | None ->
    let c = Cfg.of_func e.e_func in
    e.e_cfg <- Some c;
    c

let reach_of_cfg (cfg : Cfg.t) : SSet.t SMap.t =
  List.fold_left
    (fun acc l ->
      let seen = ref SSet.empty in
      let rec dfs x =
        if not (SSet.mem x !seen) then begin
          seen := SSet.add x !seen;
          List.iter dfs (Cfg.succs cfg x)
        end
      in
      List.iter dfs (Cfg.succs cfg l);
      SMap.add l !seen acc)
    SMap.empty (Cfg.labels cfg)

(* ---------- queries ----------------------------------------------------- *)

let cfg t (f : func) : Cfg.t =
  if not t.caching then begin
    miss t;
    Cfg.of_func f
  end
  else
    let e = entry_for t f in
    (match e.e_cfg with Some _ -> hit t | None -> miss t);
    cfg_of e

let dominators t (f : func) : Dominance.t =
  if not t.caching then begin
    miss t;
    Dominance.dominators (Cfg.of_func f)
  end
  else
    let e = entry_for t f in
    match e.e_dom with
    | Some d ->
      hit t;
      d
    | None ->
      miss t;
      let d = Dominance.dominators (cfg_of e) in
      e.e_dom <- Some d;
      d

let post_dominators t (f : func) : Dominance.t =
  if not t.caching then begin
    miss t;
    Dominance.post_dominators (Cfg.of_func f)
  end
  else
    let e = entry_for t f in
    match e.e_pdom with
    | Some d ->
      hit t;
      d
    | None ->
      miss t;
      let d = Dominance.post_dominators (cfg_of e) in
      e.e_pdom <- Some d;
      d

(* Per-label forward reachability (which labels can execution reach from
   each block, excluding the block itself unless it sits in a cycle) —
   the pass-side filter for path-sensitive memory reasoning. *)
let reachability t (f : func) : SSet.t SMap.t =
  if not t.caching then begin
    miss t;
    reach_of_cfg (Cfg.of_func f)
  end
  else
    let e = entry_for t f in
    match e.e_reach with
    | Some r ->
      hit t;
      r
    | None ->
      miss t;
      let r = reach_of_cfg (cfg_of e) in
      e.e_reach <- Some r;
      r

let liveness t (f : func) : Liveness.t =
  if not t.caching then begin
    miss t;
    Liveness.analyse f
  end
  else
    let e = entry_for t f in
    match e.e_live with
    | Some lv ->
      hit t;
      lv
    | None ->
      miss t;
      let lv = Liveness.analyse f in
      e.e_live <- Some lv;
      lv

(* maximum register pressure of [f], derived from (cached) liveness *)
let pressure t (f : func) : int =
  if not t.caching then begin
    miss t;
    Liveness.max_pressure f
  end
  else
    let e = entry_for t f in
    match e.e_pressure with
    | Some p ->
      hit t;
      p
    | None ->
      miss t;
      let lv =
        match e.e_live with
        | Some lv -> lv
        | None ->
          let lv = Liveness.analyse f in
          e.e_live <- Some lv;
          lv
      in
      let p = Liveness.max_pressure_with lv f in
      e.e_pressure <- Some p;
      p

let callgraph t (m : modul) : Callgraph.t =
  if not t.caching then begin
    miss t;
    Callgraph.build m
  end
  else
    match t.cg with
    | Some cg ->
      hit t;
      cg
    | None ->
      miss t;
      let cg = Callgraph.build m in
      t.cg <- Some cg;
      cg

(* ---------- invalidation ------------------------------------------------ *)

let invalidate_callgraph t =
  match t.cg with
  | None -> ()
  | Some _ ->
    t.cg <- None;
    note_invalidation t

let drop_function t name =
  if Hashtbl.mem t.entries name then begin
    Hashtbl.remove t.entries name;
    note_invalidation t
  end

(* A pass changed function [name] and declared [preserved]: drop whatever
   it clobbered. With [pr_cfg] the entry survives — the next query
   revalidates against the new func value (shape check + block refresh). *)
let invalidate_function t ~(preserved : preserved) name =
  match Hashtbl.find_opt t.entries name with
  | None -> ()
  | Some e ->
    if not preserved.pr_cfg then begin
      Hashtbl.remove t.entries name;
      note_invalidation t
    end
    else if not preserved.pr_live then
      if e.e_live <> None || e.e_pressure <> None then begin
        e.e_live <- None;
        e.e_pressure <- None;
        note_invalidation t
      end

(* Module-level invalidation after a pass reported a change: diff the
   function lists by physical identity — a pass returning a function
   record untouched declares, by construction, that it did not modify it —
   and invalidate only what was actually clobbered. *)
let invalidate t ~(preserved : preserved) ~(before : modul) ~(after : modul) =
  if t.caching then begin
    let old_by_name = Hashtbl.create 16 in
    List.iter (fun f -> Hashtbl.replace old_by_name f.f_name f) before.m_funcs;
    List.iter
      (fun f ->
        match Hashtbl.find_opt old_by_name f.f_name with
        | Some f0 when f0 == f -> () (* untouched: caches stay *)
        | _ -> invalidate_function t ~preserved f.f_name)
      after.m_funcs;
    (* functions removed by the pass *)
    let new_names =
      List.fold_left (fun acc f -> SSet.add f.f_name acc) SSet.empty after.m_funcs
    in
    List.iter
      (fun f0 -> if not (SSet.mem f0.f_name new_names) then drop_function t f0.f_name)
      before.m_funcs;
    if not preserved.pr_calls then invalidate_callgraph t
  end

(* ---------- coherence check (differential testing) ---------------------- *)

(* Structural comparisons via sorted bindings: robust against internal
   Map/Set tree-shape differences. *)
let smap_eq eq a b =
  List.length (SMap.bindings a) = List.length (SMap.bindings b)
  && List.for_all2
       (fun (k1, v1) (k2, v2) -> k1 = k2 && eq v1 v2)
       (SMap.bindings a) (SMap.bindings b)

let cfg_eq (a : Cfg.t) (b : Cfg.t) =
  a.Cfg.entry = b.Cfg.entry && a.Cfg.rpo = b.Cfg.rpo
  && smap_eq ( = ) a.Cfg.succs b.Cfg.succs
  && smap_eq
       (fun x y -> List.sort compare x = List.sort compare y)
       a.Cfg.preds b.Cfg.preds
  && smap_eq ( = ) a.Cfg.blocks b.Cfg.blocks

let dom_eq (a : Dominance.t) (b : Dominance.t) =
  a.Dominance.root = b.Dominance.root
  && smap_eq ( = ) a.Dominance.idom b.Dominance.idom
  && smap_eq ( = ) a.Dominance.depth b.Dominance.depth
  && smap_eq
       (fun x y -> List.sort compare x = List.sort compare y)
       a.Dominance.children b.Dominance.children

let reach_eq = smap_eq SSet.equal

let live_eq (a : Liveness.t) (b : Liveness.t) =
  smap_eq Liveness.RSet.equal a.Liveness.live_in b.Liveness.live_in
  && smap_eq Liveness.RSet.equal a.Liveness.live_out b.Liveness.live_out

let cg_eq (a : Callgraph.t) (b : Callgraph.t) =
  smap_eq SSet.equal a.Callgraph.callees b.Callgraph.callees
  && smap_eq SSet.equal a.Callgraph.callers b.Callgraph.callers
  && SSet.equal a.Callgraph.address_taken b.Callgraph.address_taken
  && List.sort compare a.Callgraph.kernels = List.sort compare b.Callgraph.kernels

(* Assert every cached analysis, as the manager would serve it for the
   current module, is structurally equal to a fresh recomputation. The
   stats are snapshotted so a coherence sweep does not distort hit-rate
   reporting. *)
let check_coherent t (m : modul) : (unit, string) result =
  if not t.caching then Ok ()
  else begin
    let saved = { t.stats with st_hits = t.stats.st_hits } in
    let restore () =
      t.stats.st_hits <- saved.st_hits;
      t.stats.st_misses <- saved.st_misses;
      t.stats.st_invalidations <- saved.st_invalidations
    in
    let err = ref None in
    let fail fmt = Printf.ksprintf (fun s -> if !err = None then err := Some s) fmt in
    List.iter
      (fun f ->
        match Hashtbl.find_opt t.entries f.f_name with
        | None -> ()
        | Some e ->
          let fresh_cfg = lazy (Cfg.of_func f) in
          if e.e_cfg <> None && not (cfg_eq (cfg t f) (Lazy.force fresh_cfg)) then
            fail "stale CFG for %s" f.f_name;
          if
            e.e_dom <> None
            && not (dom_eq (dominators t f) (Dominance.dominators (Lazy.force fresh_cfg)))
          then fail "stale dominator tree for %s" f.f_name;
          if
            e.e_pdom <> None
            && not
                 (dom_eq (post_dominators t f)
                    (Dominance.post_dominators (Lazy.force fresh_cfg)))
          then fail "stale post-dominator tree for %s" f.f_name;
          if
            e.e_reach <> None
            && not (reach_eq (reachability t f) (reach_of_cfg (Lazy.force fresh_cfg)))
          then fail "stale reachability for %s" f.f_name;
          if e.e_live <> None && not (live_eq (liveness t f) (Liveness.analyse f)) then
            fail "stale liveness for %s" f.f_name;
          if e.e_pressure <> None && pressure t f <> Liveness.max_pressure f then
            fail "stale pressure for %s" f.f_name)
      m.m_funcs;
    (match t.cg with
    | Some cg -> if not (cg_eq cg (Callgraph.build m)) then fail "stale call graph"
    | None -> ());
    restore ();
    match !err with None -> Ok () | Some e -> Error e
  end
