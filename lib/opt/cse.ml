(* Dominator-tree scoped common-subexpression elimination for pure
   instructions. After aggressive inlining, kernels accumulate duplicate
   intrinsic reads (thread id, block dim) and duplicated addressing
   arithmetic from every inlined runtime call — folding them is part of
   what makes the optimized OpenMP kernel instruction-identical to the
   CUDA one. Loads are not touched (they are not pure across stores);
   memory reasoning lives in Memfold. *)

open Ozo_ir.Types
module Cfg = Ozo_ir.Cfg
module Dominance = Ozo_ir.Dominance

let pass = "cse"

(* hashable value key of a pure instruction, ignoring the destination *)
type key =
  | KBin of binop * operand * operand
  | KUn of unop * operand
  | KIcmp of icmp * operand * operand
  | KFcmp of fcmp * operand * operand
  | KSel of typ * operand * operand * operand
  | KPtr of operand * operand
  | KIntr of intrinsic

let key_of = function
  | Binop (_, op, a, b) ->
    (* normalize commutative operations *)
    let a, b =
      match op with
      | Add | Mul | And | Or | Xor | Smin | Smax | Fadd | Fmul | Fmin | Fmax ->
        if compare a b <= 0 then (a, b) else (b, a)
      | _ -> (a, b)
    in
    Some (KBin (op, a, b))
  | Unop (_, op, a) -> Some (KUn (op, a))
  | Icmp (_, op, a, b) -> Some (KIcmp (op, a, b))
  | Fcmp (_, op, a, b) -> Some (KFcmp (op, a, b))
  | Select (_, t, c, x, y) -> Some (KSel (t, c, x, y))
  | Ptradd (_, a, b) -> Some (KPtr (a, b))
  | Intrinsic (_, i) -> Some (KIntr i)
  | _ -> None

let run_function (am : Analysis.t) (f : func) : func * bool =
  let cfg = Analysis.cfg am f in
  let dom = Analysis.dominators am f in
  let changed = ref false in
  let subst : (reg, operand) Hashtbl.t = Hashtbl.create 32 in
  let chase o =
    match o with Reg r -> Option.value ~default:o (Hashtbl.find_opt subst r) | _ -> o
  in
  (* available expressions along the dominator tree: key -> reg, with an
     undo log per tree node *)
  let avail : (key, reg) Hashtbl.t = Hashtbl.create 64 in
  let new_blocks : (label, block) Hashtbl.t = Hashtbl.create 16 in
  let rec walk label =
    let b = Cfg.block cfg label in
    let added = ref [] in
    let insts =
      List.filter_map
        (fun i ->
          let i = map_inst_operands chase i in
          match (key_of i, inst_def i) with
          | Some k, Some r -> (
            match Hashtbl.find_opt avail k with
            | Some prev ->
              Hashtbl.replace subst r (Reg prev);
              changed := true;
              None
            | None ->
              Hashtbl.add avail k r;
              added := k :: !added;
              Some i)
          | _ -> Some i)
        b.b_insts
    in
    let b' =
      { b with
        b_insts = insts;
        b_phis = List.map (map_phi_operands chase) b.b_phis;
        b_term = map_term_operands chase b.b_term }
    in
    Hashtbl.replace new_blocks label b';
    List.iter walk
      (List.sort compare
         (Ozo_ir.Cfg.SMap.fold
            (fun l d acc -> if d = Some label then l :: acc else acc)
            dom.Dominance.idom []));
    List.iter (fun k -> Hashtbl.remove avail k) !added
  in
  walk cfg.Cfg.entry;
  if not !changed then (f, false)
  else begin
    (* rebuild in original order; untouched (unreachable) blocks survive
       as-is with substitutions applied *)
    let blocks =
      List.map
        (fun b ->
          match Hashtbl.find_opt new_blocks b.b_label with
          | Some b' -> b'
          | None ->
            { b with
              b_phis = List.map (map_phi_operands chase) b.b_phis;
              b_insts = List.map (map_inst_operands chase) b.b_insts;
              b_term = map_term_operands chase b.b_term })
        f.f_blocks
    in
    (* a second substitution sweep: replacements recorded after a use was
       emitted in a sibling subtree must still land everywhere *)
    let blocks =
      List.map
        (fun b ->
          { b with
            b_phis = List.map (map_phi_operands chase) b.b_phis;
            b_insts = List.map (map_inst_operands chase) b.b_insts;
            b_term = map_term_operands chase b.b_term })
        blocks
    in
    ({ f with f_blocks = blocks }, true)
  end

let run ?am (m : modul) : modul * bool =
  let am = match am with Some a -> a | None -> Analysis.create () in
  let changed = ref false in
  let funcs =
    List.map
      (fun f ->
        let f', ch = run_function am f in
        if ch then changed := true;
        f')
      m.m_funcs
  in
  if !changed then ({ m with m_funcs = funcs }, true) else (m, false)
