(* The new OpenMP device runtime (paper Section III), built as an IR
   module. Design rules that make it optimizable:

   - All team-wide state lives in *static shared memory* with a fixed,
     compiler-visible layout (Layout).
   - The SPMD-mode flag is written once during initialization and its
     value is passed *by value* into runtime entry points, so pre-barrier
     code never reads it from memory (III-A).
   - Thread-state pointers are NULL-initialized; a thread state is only
     materialized by nested data environments (III-C), so the common case
     is recognizable statically (all stores zero ⇒ loads fold to NULL).
   - Broadcast writes use the conditional-pointer scheme (Fig. 7b): the
     write always executes, its target is selected between the real slot
     and a dummy sink, keeping control flow straight-line.
   - After every broadcast barrier the runtime *assumes* the broadcast
     content (Fig. 8b); debug builds verify those assumptions at runtime.
   - Work-sharing uses the combined CUDA-style grid-stride scheme of
     Fig. 5, with the oversubscription break folded in from constant
     configuration globals. *)

open Ozo_ir.Types
module B = Ozo_ir.Builder
module L = Layout

let shared_ptr = Ptr Shared

(* conditional write through a selected pointer (Fig. 7b) *)
let cond_write b ~cond ~addr ~value =
  let p = B.select b shared_ptr cond addr (Global_addr L.dummy) in
  B.store b I64 value p

let field base off = (base, off)

let field_addr b (base, off) =
  if off = 0 then Global_addr base else B.ptradd b (Global_addr base) (B.i64 off)

let load_field b fld = B.load b I64 (field_addr b fld)
let store_field b fld v = B.store b I64 v (field_addr b fld)

(* assume the content of a broadcast field (Fig. 8b): load; icmp; assume.
   The optimizer recognizes exactly this pattern. *)
let assume_field_eq b fld v =
  let lv = load_field b fld in
  let c = B.icmp b Eq lv v in
  B.assume b c

let team_field off = field L.team_icv off

let add_globals cfg b =
  let add ?init ?(const = false) ?(space = Shared) name size =
    ignore (B.add_global b ~const ~space ~size ?init name)
  in
  add L.spmd_flag 8;
  add L.team_icv L.icv_size;
  add L.thread_states (cfg.Config.max_threads * 8);
  add L.smem_stack cfg.Config.stack_bytes ~init:No_init;
  add L.smem_stack_sps (cfg.Config.max_threads * 8);
  add L.work_fn 8;
  add L.work_args 8;
  add L.work_nt 8;
  add L.dummy 8 ~init:No_init;
  let flag name v =
    add name 8 ~space:Constant ~const:true ~init:(Words_init [ (if v then 1L else 0L) ])
  in
  flag L.cfg_debug cfg.Config.debug;
  flag L.cfg_assume_teams_oversub cfg.Config.assume_teams_oversub;
  flag L.cfg_assume_threads_oversub cfg.Config.assume_threads_oversub

(* __omp_assert(cond): trap in debug builds, assume in release (III-G). *)
let build_assert b =
  match B.begin_func b ~name:L.omp_assert ~params:[ I64 ] ~ret:None () with
  | [ cond ] ->
    B.set_block b "entry";
    let dbg = B.load b I64 (Global_addr L.cfg_debug) in
    let is_dbg = B.icmp b Ne dbg (B.i64 0) in
    B.if_then_else b is_dbg
      ~then_:(fun () ->
        let bad = B.icmp b Eq cond (B.i64 0) in
        B.if_then b bad ~then_:(fun () -> B.trap b "OpenMP runtime assertion failed"))
      ~else_:(fun () -> B.assume b cond);
    B.ret b None;
    ignore (B.end_func b)
  | _ -> assert false

(* thread-state slot address for the current thread *)
let ts_slot b =
  let tid = B.thread_id b in
  B.ptradd b (Global_addr L.thread_states) (B.mul b tid (B.i64 8))

(* __kmpc_alloc_shared(size): bump this thread's slice of the shared
   stack, fall back to global malloc when the slice is full (III-D). The
   stack is partitioned per thread — a shared bump pointer would corrupt
   under interleaved alloc/free from different threads.
   alloc/free_shared stay out-of-line so the globalization-elimination
   pass can recognize and rewrite the call sites (LLVM keeps them as
   runtime calls for the same reason). *)
let build_alloc_shared cfg b =
  let slice = cfg.Config.stack_bytes / cfg.Config.max_threads in
  (match
     B.begin_func b ~name:L.alloc_shared ~attrs:[ Attr_no_inline ] ~params:[ I64 ]
       ~ret:(Some I64) ()
   with
  | [ size ] ->
    B.set_block b "entry";
    let tid = B.thread_id b in
    let sp_addr = B.ptradd b (Global_addr L.smem_stack_sps) (B.mul b tid (B.i64 8)) in
    let sp = B.load b I64 sp_addr in
    let fits = B.icmp b Sle (B.add b sp size) (B.i64 slice) in
    B.cond_br b fits "stack" "heap";
    B.set_block b "stack";
    B.store b I64 (B.add b sp size) sp_addr;
    let base = B.ptradd b (Global_addr L.smem_stack) (B.mul b tid (B.i64 slice)) in
    let p = B.ptradd b base sp in
    B.ret b (Some p);
    B.set_block b "heap";
    let m = B.malloc b size in
    B.ret b (Some m)
  | _ -> assert false);
  ignore (B.end_func b)

let build_free_shared cfg b =
  (match
     B.begin_func b ~name:L.free_shared ~attrs:[ Attr_no_inline ] ~params:[ I64; I64 ]
       ~ret:None ()
   with
  | [ p; size ] ->
    B.set_block b "entry";
    let lo = Global_addr L.smem_stack in
    let hi = B.ptradd b lo (B.i64 cfg.Config.stack_bytes) in
    let ge = B.icmp b Uge p lo in
    let lt = B.icmp b Ult p hi in
    let instack = B.and_ b ge lt in
    B.if_then_else b instack
      ~then_:(fun () ->
        (* LIFO within this thread's slice *)
        let tid = B.thread_id b in
        let sp_addr =
          B.ptradd b (Global_addr L.smem_stack_sps) (B.mul b tid (B.i64 8))
        in
        let sp = B.load b I64 sp_addr in
        B.store b I64 (B.sub b sp size) sp_addr)
      ~else_:(fun () -> B.free b p);
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b)

(* icv lookup honoring an on-demand thread state (III-C): NULL slot means
   "use the team state". *)
let build_icv_read b ~name ~off =
  (match B.begin_func b ~name ~params:[] ~ret:(Some I64) () with
  | [] ->
    B.set_block b "entry";
    let slot = ts_slot b in
    let ts = B.load b I64 slot in
    let has = B.icmp b Ne ts (B.i64 0) in
    B.cond_br b has "own" "team";
    B.set_block b "own";
    let v1 = B.load b I64 (B.ptradd b ts (B.i64 off)) in
    B.ret b (Some v1);
    B.set_block b "team";
    let v2 = load_field b (team_field off) in
    B.ret b (Some v2)
  | _ -> assert false);
  ignore (B.end_func b)

(* __kmpc_push_icv_state: materialize a thread ICV state for a nested data
   environment; copies the currently visible state (III-C, Fig. 3). *)
let build_push_icv b =
  (match B.begin_func b ~name:L.push_icv_state ~params:[] ~ret:(Some I64) () with
  | [] ->
    B.set_block b "entry";
    let slot = ts_slot b in
    let old = B.load b I64 slot in
    let fresh = B.call_val b L.alloc_shared [ B.i64 L.ts_size ] in
    let has = B.icmp b Ne old (B.i64 0) in
    let src = B.select b shared_ptr has old (Global_addr L.team_icv) in
    List.iter
      (fun off ->
        let v = B.load b I64 (B.ptradd b src (B.i64 off)) in
        B.store b I64 v (B.ptradd b fresh (B.i64 off)))
      L.all_icv_offsets;
    B.store b I64 old (B.ptradd b fresh (B.i64 L.ts_prev));
    B.store b I64 fresh slot;
    B.ret b (Some fresh)
  | _ -> assert false);
  ignore (B.end_func b)

let build_pop_icv b =
  (match B.begin_func b ~name:L.pop_icv_state ~params:[] ~ret:None () with
  | [] ->
    B.set_block b "entry";
    let slot = ts_slot b in
    let ts = B.load b I64 slot in
    B.call_void b L.omp_assert [ B.icmp b Ne ts (B.i64 0) ];
    let prev = B.load b I64 (B.ptradd b ts (B.i64 L.ts_prev)) in
    B.store b I64 prev slot;
    B.call_void b L.free_shared [ ts; B.i64 L.ts_size ];
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b)

(* Generic-mode worker state machine (Section II-C). Workers wait at a
   barrier for the main thread to publish an outlined parallel region,
   execute it if they participate, and synchronize completion. A NULL
   function pointer terminates the kernel. *)
let build_worker_loop b =
  (match B.begin_func b ~name:L.worker_loop ~params:[] ~ret:None () with
  | [] ->
    B.set_block b "entry";
    B.br b "wait";
    B.set_block b "wait";
    B.barrier b ~aligned:false;
    let fn = load_field b (field L.work_fn 0) in
    let fin = B.icmp b Eq fn (B.i64 0) in
    B.cond_br b fin "done" "work";
    B.set_block b "work";
    let tid = B.thread_id b in
    let nt = load_field b (field L.work_nt 0) in
    let inpar = B.icmp b Slt tid nt in
    B.if_then b inpar ~then_:(fun () ->
        let args = load_field b (field L.work_args 0) in
        B.call_indirect_void b fn [ tid; args ]);
    B.barrier b ~aligned:false;
    B.br b "wait";
    B.set_block b "done";
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b)

(* __kmpc_target_init(is_spmd) -> proceed?  SPMD: every thread initializes
   and proceeds. Generic: workers enter the state machine and return 0
   when the kernel finishes; the main thread (last thread of the team)
   initializes state and proceeds; the remaining lanes of the last warp
   park. *)
let build_target_init b ~ws =
  (match B.begin_func b ~name:L.target_init ~params:[ I64 ] ~ret:(Some I64) () with
  | [ is_spmd ] ->
    B.set_block b "entry";
    let tid = B.thread_id b in
    let bdim = B.block_dim b in
    (* defensive NULL initialization of the thread-state slot (III-C);
       stores of zero over zero-initialized memory — statically removable *)
    let slot = ts_slot b in
    B.store b I64 (B.i64 0) slot;
    let spmd = B.icmp b Ne is_spmd (B.i64 0) in
    B.cond_br b spmd "spmd" "generic";

    B.set_block b "spmd";
    let is0 = B.icmp b Eq tid (B.i64 0) in
    (* broadcast the mode and the team ICV state (conditional pointers) *)
    cond_write b ~cond:is0 ~addr:(Global_addr L.spmd_flag) ~value:is_spmd;
    cond_write b ~cond:is0 ~addr:(field_addr b (team_field L.icv_levels)) ~value:(B.i64 0);
    cond_write b ~cond:is0 ~addr:(field_addr b (team_field L.icv_nthreads)) ~value:bdim;
    cond_write b ~cond:is0
      ~addr:(field_addr b (team_field L.icv_active_levels))
      ~value:(B.i64 0);
    cond_write b ~cond:is0
      ~addr:(field_addr b (team_field L.icv_thread_limit))
      ~value:bdim;
    B.barrier b ~aligned:true;
    (* broadcast assumes: verified in debug builds, folded in release *)
    assume_field_eq b (field L.spmd_flag 0) is_spmd;
    assume_field_eq b (team_field L.icv_levels) (B.i64 0);
    assume_field_eq b (team_field L.icv_nthreads) bdim;
    B.ret b (Some (B.i64 1));

    B.set_block b "generic";
    let nworkers = B.sub b bdim (B.i64 ws) in
    let is_worker = B.icmp b Slt tid nworkers in
    B.cond_br b is_worker "worker" "main_check";
    B.set_block b "worker";
    B.call_void b L.worker_loop [];
    B.ret b (Some (B.i64 0));
    B.set_block b "main_check";
    let main_tid = B.sub b bdim (B.i64 1) in
    let is_main = B.icmp b Eq tid main_tid in
    B.cond_br b is_main "main_init" "park";
    B.set_block b "park";
    B.ret b (Some (B.i64 0));
    B.set_block b "main_init";
    (* only the main thread executes here: plain stores *)
    store_field b (field L.spmd_flag 0) (B.i64 0);
    store_field b (team_field L.icv_levels) (B.i64 0);
    store_field b (team_field L.icv_nthreads) nworkers;
    store_field b (team_field L.icv_active_levels) (B.i64 0);
    store_field b (team_field L.icv_thread_limit) nworkers;
    store_field b (field L.work_fn 0) (B.i64 0);
    B.ret b (Some (B.i64 1))
  | _ -> assert false);
  ignore (B.end_func b)

(* __kmpc_target_deinit(is_spmd) *)
let build_target_deinit b =
  (match B.begin_func b ~name:L.target_deinit ~params:[ I64 ] ~ret:None () with
  | [ is_spmd ] ->
    B.set_block b "entry";
    let spmd = B.icmp b Ne is_spmd (B.i64 0) in
    B.cond_br b spmd "spmd" "generic";
    B.set_block b "spmd";
    B.barrier b ~aligned:true;
    B.ret b None;
    B.set_block b "generic";
    (* main thread terminates the state machine *)
    store_field b (field L.work_fn 0) (B.i64 0);
    B.barrier b ~aligned:false;
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b)

(* __kmpc_parallel(fn, args, num_threads): fork-join. The SPMD path is
   straight-line apart from the participation test; the generic path
   drives the worker state machine. num_threads = -1 means "ICV
   default". *)
let build_parallel b =
  (match B.begin_func b ~name:L.parallel ~params:[ I64; I64; I64 ] ~ret:None () with
  | [ fn; args; num_threads ] ->
    B.set_block b "entry";
    let flag = load_field b (field L.spmd_flag 0) in
    let spmd = B.icmp b Ne flag (B.i64 0) in
    B.cond_br b spmd "spmd" "generic";

    B.set_block b "spmd";
    let tid = B.thread_id b in
    let is0 = B.icmp b Eq tid (B.i64 0) in
    let use_icv = B.icmp b Eq num_threads (B.i64 (-1)) in
    let icv_nt = load_field b (team_field L.icv_nthreads) in
    let nt = B.select b I64 use_icv icv_nt num_threads in
    cond_write b ~cond:is0 ~addr:(field_addr b (team_field L.icv_levels)) ~value:(B.i64 1);
    B.barrier b ~aligned:true;
    assume_field_eq b (team_field L.icv_levels) (B.i64 1);
    let inpar = B.icmp b Slt tid nt in
    B.if_then b inpar ~then_:(fun () -> B.call_indirect_void b fn [ tid; args ]);
    B.barrier b ~aligned:true;
    cond_write b ~cond:is0 ~addr:(field_addr b (team_field L.icv_levels)) ~value:(B.i64 0);
    B.barrier b ~aligned:true;
    assume_field_eq b (team_field L.icv_levels) (B.i64 0);
    B.ret b None;

    B.set_block b "generic";
    (* only the main thread can reach this path *)
    let use_icv2 = B.icmp b Eq num_threads (B.i64 (-1)) in
    let icv_nt2 = load_field b (team_field L.icv_nthreads) in
    let nt2 = B.select b I64 use_icv2 icv_nt2 num_threads in
    store_field b (field L.work_fn 0) fn;
    store_field b (field L.work_args 0) args;
    store_field b (field L.work_nt 0) nt2;
    store_field b (team_field L.icv_levels) (B.i64 1);
    B.barrier b ~aligned:false; (* release the workers *)
    B.barrier b ~aligned:false; (* wait for completion *)
    store_field b (team_field L.icv_levels) (B.i64 0);
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b)

(* Combined work-sharing (Fig. 5). [stride_kind] selects grid-stride
   (distribute parallel for) vs. team-stride (for within a team). *)
let build_ws_loop b ~name ~grid ~oversub_flag =
  (match B.begin_func b ~name ~params:[ I64; I64; I64 ] ~ret:None () with
  | [ fn; args; num_iters ] ->
    B.set_block b "entry";
    let tid = B.thread_id b in
    (* the participating thread count is an ICV, not the hardware block
       size: in generic mode only the workers share the iterations. In
       SPMD mode the load folds to block_dim through the broadcast assume
       placed by __kmpc_target_init. *)
    let nthr = B.call_val b L.get_num_threads [] in
    let total, iv0 =
      if grid then begin
        let gdim = B.grid_dim b in
        let bid = B.block_id b in
        (B.mul b gdim nthr, B.add b (B.mul b bid nthr) tid)
      end
      else (nthr, tid)
    in
    let oversub = B.load b I64 (Global_addr oversub_flag) in
    let have_assumption = B.icmp b Ne oversub (B.i64 0) in
    (* debug builds verify the user-provided oversubscription assumption *)
    B.if_then b have_assumption ~then_:(fun () ->
        B.call_void b L.omp_assert [ B.icmp b Sle num_iters total ]);
    let cover = B.icmp b Slt iv0 num_iters in
    B.cond_br b cover "loop" "exit";
    B.set_block b "loop";
    (* do-while with an explicit oversubscription break, as in Fig. 5 *)
    B.br b "head";
    B.set_block b "head";
    let ivn_reg = B.fresh_reg b in
    let iv = B.phi b I64 [ ("loop", iv0); ("latch", Reg ivn_reg) ] in
    B.call_indirect_void b fn [ iv; args ];
    B.cond_br b have_assumption "exit" "latch";
    B.set_block b "latch";
    B.append b (Binop (ivn_reg, Add, iv, total));
    let again = B.icmp b Slt (Reg ivn_reg) num_iters in
    B.cond_br b again "head" "exit";
    B.set_block b "exit";
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b)

let build_barrier_fn b =
  (match B.begin_func b ~name:L.barrier ~params:[] ~ret:None () with
  | [] ->
    B.set_block b "entry";
    B.barrier b ~aligned:false;
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b)

(* omp_get_thread_num: in generic mode the main thread reports 0 in the
   sequential region; workers report their hardware id. *)
let build_get_thread_num b =
  (match B.begin_func b ~name:L.get_thread_num ~params:[] ~ret:(Some I64) () with
  | [] ->
    B.set_block b "entry";
    let flag = load_field b (field L.spmd_flag 0) in
    let spmd = B.icmp b Ne flag (B.i64 0) in
    B.cond_br b spmd "spmd" "generic";
    B.set_block b "spmd";
    let t1 = B.thread_id b in
    B.ret b (Some t1);
    B.set_block b "generic";
    let tid = B.thread_id b in
    let bdim = B.block_dim b in
    let is_main = B.icmp b Eq tid (B.sub b bdim (B.i64 1)) in
    let r = B.select b I64 is_main (B.i64 0) tid in
    B.ret b (Some r)
  | _ -> assert false);
  ignore (B.end_func b)

let build_simple b ~name ~emit =
  (match B.begin_func b ~name ~params:[] ~ret:(Some I64) () with
  | [] ->
    B.set_block b "entry";
    let v = emit b in
    B.ret b (Some v)
  | _ -> assert false);
  ignore (B.end_func b)

let build ?(warp_size = L.warp_size) (cfg : Config.t) : modul =
  let b = B.create "openmp_device_rt_new" in
  add_globals cfg b;
  build_assert b;
  build_alloc_shared cfg b;
  build_free_shared cfg b;
  build_icv_read b ~name:L.get_num_threads ~off:L.icv_nthreads;
  build_icv_read b ~name:L.get_level ~off:L.icv_levels;
  build_push_icv b;
  build_pop_icv b;
  build_worker_loop b;
  build_target_init b ~ws:warp_size;
  build_target_deinit b;
  build_parallel b;
  build_ws_loop b ~name:L.distribute_for_loop ~grid:true
    ~oversub_flag:L.cfg_assume_teams_oversub;
  build_ws_loop b ~name:L.for_loop ~grid:false
    ~oversub_flag:L.cfg_assume_threads_oversub;
  build_barrier_fn b;
  build_get_thread_num b;
  build_simple b ~name:L.get_team_num ~emit:(fun b -> B.block_id b);
  build_simple b ~name:L.get_num_teams ~emit:(fun b -> B.grid_dim b);
  B.finish b
