(* Entry point: build a device runtime module for a configuration. *)

(* [warp_size] is the *target machine's* wavefront width: generic-mode
   kernels host their main thread in one extra hardware warp, so the
   worker count [bdim - warp_size] baked into target_init (and the old
   runtime's for_static_init) must match the machine the kernel will
   launch on. Defaults to the vGPU's 32. *)
let build ?warp_size (cfg : Config.t) : Ozo_ir.Types.modul =
  match cfg.Config.variant with
  | Config.New_rt -> New_rt.build ?warp_size cfg
  | Config.Old_rt -> Old_rt.build ?warp_size cfg
