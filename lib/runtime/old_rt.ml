(* The pre-co-design device runtime, used as the "Old RT" baseline.

   Deliberate contrasts with New_rt, mirroring the original LLVM/OpenMP
   device runtime the paper replaces:

   - Functions carry [Attr_no_inline]: the runtime was an opaque library
     the optimizer could not see through, so every entry point stays a
     call and no state folds.
   - Team state lives in *global memory*, indexed by team id: reads pay
     global-memory latency, and nothing about them is analyzable.
   - Broadcast writes use conditional *execution* (Fig. 7a), introducing
     control flow instead of straight-line selects.
   - Barriers are unaligned (never removable by the aligned-barrier
     elimination pass).
   - Work-sharing is split distribute + for with contiguous ("static
     chunked") per-thread ranges communicated through stack out-parameters
     — which the opaque callee writes, defeating forwarding, and whose
     contiguous blocks ruin global-memory coalescing compared to the
     CUDA-style interleaved scheme of the new runtime. *)

open Ozo_ir.Types
module B = Ozo_ir.Builder
module L = Layout

let team_stride = 64

(* offsets within a team's global-memory state *)
let o_mode = 0
let o_levels = 8
let o_nthreads = 16
let o_work_fn = 24
let o_work_args = 32
let o_work_nt = 40

let no_inline = [ Attr_no_inline ]

let team_base b =
  let bid = B.block_id b in
  B.ptradd b (Global_addr L.old_team_state) (B.mul b bid (B.i64 team_stride))

let load_state b base off = B.load b I64 (B.ptradd b base (B.i64 off))
let store_state b base off v = B.store b I64 v (B.ptradd b base (B.i64 off))

(* 1024B of data-sharing slots + 1024B of per-thread slice pointers +
   288B worksharing descriptor = 2336B, the old runtime's Fig. 11
   footprint *)
let data_share_bytes = 1024
let data_share_threads = 128
let data_share_slice = data_share_bytes / data_share_threads

let add_globals cfg b =
  ignore
    (B.add_global b ~space:Global ~size:(cfg.Config.max_teams * team_stride)
       L.old_team_state);
  ignore (B.add_global b ~space:Shared ~size:data_share_bytes ~init:No_init L.old_data_share);
  ignore (B.add_global b ~space:Shared ~size:(data_share_threads * 8) L.old_data_share_sps);
  (* per-thread parallel-level counters (the old runtime's parallelLevel
     array), in global memory like the rest of its state *)
  ignore
    (B.add_global b ~space:Global
       ~size:(cfg.Config.max_teams * data_share_threads * 8)
       "__old_omp_plevel");
  (* external: the tooling-visible worksharing descriptor survives DCE *)
  ignore (B.add_global b ~linkage:External ~space:Shared ~size:288 ~init:No_init L.old_wds);
  (* debug flag: the old runtime reads it from constant memory too *)
  ignore
    (B.add_global b ~space:Constant ~const:true ~size:8
       ~init:(Words_init [ (if cfg.Config.debug then 1L else 0L) ])
       L.cfg_debug)

let build_assert b =
  (match
     B.begin_func b ~name:L.omp_assert ~attrs:no_inline ~params:[ I64 ] ~ret:None ()
   with
  | [ cond ] ->
    B.set_block b "entry";
    let dbg = B.load b I64 (Global_addr L.cfg_debug) in
    let on = B.icmp b Ne dbg (B.i64 0) in
    B.if_then b on ~then_:(fun () ->
        let bad = B.icmp b Eq cond (B.i64 0) in
        B.if_then b bad ~then_:(fun () -> B.trap b "OpenMP runtime assertion failed"));
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b)

(* The old data-sharing slots are tiny (8 bytes per thread), so most
   sharing traffic falls back to global malloc — one reason the old
   runtime's globalized variables were expensive. *)
let build_alloc_shared b =
  (match
     B.begin_func b ~name:L.alloc_shared ~attrs:no_inline ~params:[ I64 ] ~ret:(Some I64)
       ()
   with
  | [ size ] ->
    B.set_block b "entry";
    let tid = B.thread_id b in
    let sp_addr = B.ptradd b (Global_addr L.old_data_share_sps) (B.mul b tid (B.i64 8)) in
    let sp = B.load b I64 sp_addr in
    let fits = B.icmp b Sle (B.add b sp size) (B.i64 data_share_slice) in
    B.cond_br b fits "stack" "heap";
    B.set_block b "stack";
    B.store b I64 (B.add b sp size) sp_addr;
    let base =
      B.ptradd b (Global_addr L.old_data_share) (B.mul b tid (B.i64 data_share_slice))
    in
    B.ret b (Some (B.ptradd b base sp));
    B.set_block b "heap";
    let m = B.malloc b size in
    B.ret b (Some m)
  | _ -> assert false);
  ignore (B.end_func b)

let build_free_shared b =
  (match
     B.begin_func b ~name:L.free_shared ~attrs:no_inline ~params:[ I64; I64 ] ~ret:None
       ()
   with
  | [ p; size ] ->
    B.set_block b "entry";
    let lo = Global_addr L.old_data_share in
    let hi = B.ptradd b lo (B.i64 data_share_bytes) in
    let instack = B.and_ b (B.icmp b Uge p lo) (B.icmp b Ult p hi) in
    B.if_then_else b instack
      ~then_:(fun () ->
        let tid = B.thread_id b in
        let sp_addr =
          B.ptradd b (Global_addr L.old_data_share_sps) (B.mul b tid (B.i64 8))
        in
        let sp = B.load b I64 sp_addr in
        B.store b I64 (B.sub b sp size) sp_addr)
      ~else_:(fun () -> B.free b p);
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b)

let build_worker_loop b =
  (match B.begin_func b ~name:L.worker_loop ~attrs:no_inline ~params:[] ~ret:None () with
  | [] ->
    B.set_block b "entry";
    B.br b "wait";
    B.set_block b "wait";
    B.barrier b ~aligned:false;
    let base = team_base b in
    let fn = load_state b base o_work_fn in
    let fin = B.icmp b Eq fn (B.i64 0) in
    B.cond_br b fin "done" "work";
    B.set_block b "work";
    let tid = B.thread_id b in
    let nt = load_state b base o_work_nt in
    let inpar = B.icmp b Slt tid nt in
    B.if_then b inpar ~then_:(fun () ->
        let args = load_state b base o_work_args in
        B.call_indirect_void b fn [ tid; args ]);
    B.barrier b ~aligned:false;
    B.br b "wait";
    B.set_block b "done";
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b)

let build_target_init b ~ws =
  (match
     B.begin_func b ~name:L.target_init ~attrs:no_inline ~params:[ I64 ] ~ret:(Some I64)
       ()
   with
  | [ is_spmd ] ->
    B.set_block b "entry";
    let tid = B.thread_id b in
    let bdim = B.block_dim b in
    let base = team_base b in
    let spmd = B.icmp b Ne is_spmd (B.i64 0) in
    B.cond_br b spmd "spmd" "generic";

    B.set_block b "spmd";
    (* conditional execution broadcast (Fig. 7a) *)
    let is0 = B.icmp b Eq tid (B.i64 0) in
    B.if_then b is0 ~then_:(fun () ->
        store_state b base o_mode (B.i64 1);
        store_state b base o_levels (B.i64 0);
        store_state b base o_nthreads bdim);
    B.barrier b ~aligned:false;
    B.ret b (Some (B.i64 1));

    B.set_block b "generic";
    let nworkers = B.sub b bdim (B.i64 ws) in
    let is_worker = B.icmp b Slt tid nworkers in
    B.cond_br b is_worker "worker" "main_check";
    B.set_block b "worker";
    B.call_void b L.worker_loop [];
    B.ret b (Some (B.i64 0));
    B.set_block b "main_check";
    let is_main = B.icmp b Eq tid (B.sub b bdim (B.i64 1)) in
    B.cond_br b is_main "main_init" "park";
    B.set_block b "park";
    B.ret b (Some (B.i64 0));
    B.set_block b "main_init";
    store_state b base o_mode (B.i64 0);
    store_state b base o_levels (B.i64 0);
    store_state b base o_nthreads nworkers;
    store_state b base o_work_fn (B.i64 0);
    B.ret b (Some (B.i64 1))
  | _ -> assert false);
  ignore (B.end_func b)

let build_target_deinit b =
  (match
     B.begin_func b ~name:L.target_deinit ~attrs:no_inline ~params:[ I64 ] ~ret:None ()
   with
  | [ is_spmd ] ->
    B.set_block b "entry";
    let spmd = B.icmp b Ne is_spmd (B.i64 0) in
    B.cond_br b spmd "spmd" "generic";
    B.set_block b "spmd";
    B.barrier b ~aligned:false;
    B.ret b None;
    B.set_block b "generic";
    let base = team_base b in
    store_state b base o_work_fn (B.i64 0);
    B.barrier b ~aligned:false;
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b)

let build_parallel b =
  (match
     B.begin_func b ~name:L.parallel ~attrs:no_inline ~params:[ I64; I64; I64 ]
       ~ret:None ()
   with
  | [ fn; args; num_threads ] ->
    B.set_block b "entry";
    let base = team_base b in
    let mode = load_state b base o_mode in
    let spmd = B.icmp b Ne mode (B.i64 0) in
    B.cond_br b spmd "spmd" "generic";

    B.set_block b "spmd";
    let tid = B.thread_id b in
    let is0 = B.icmp b Eq tid (B.i64 0) in
    let use_icv = B.icmp b Eq num_threads (B.i64 (-1)) in
    let icv_nt = load_state b base o_nthreads in
    let nt = B.select b I64 use_icv icv_nt num_threads in
    B.if_then b is0 ~then_:(fun () -> store_state b base o_levels (B.i64 1));
    B.barrier b ~aligned:false;
    let inpar = B.icmp b Slt tid nt in
    B.if_then b inpar ~then_:(fun () -> B.call_indirect_void b fn [ tid; args ]);
    B.barrier b ~aligned:false;
    B.if_then b is0 ~then_:(fun () -> store_state b base o_levels (B.i64 0));
    B.barrier b ~aligned:false;
    B.ret b None;

    B.set_block b "generic";
    let use_icv2 = B.icmp b Eq num_threads (B.i64 (-1)) in
    let icv_nt2 = load_state b base o_nthreads in
    let nt2 = B.select b I64 use_icv2 icv_nt2 num_threads in
    store_state b base o_work_fn fn;
    store_state b base o_work_args args;
    store_state b base o_work_nt nt2;
    store_state b base o_levels (B.i64 1);
    B.barrier b ~aligned:false;
    B.barrier b ~aligned:false;
    store_state b base o_levels (B.i64 0);
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b)

(* Split work-sharing with static chunked schedules, communicated through
   out-parameters the caller allocated on its stack. *)
let build_distribute_init b =
  (match
     B.begin_func b ~name:L.old_distribute_init ~attrs:no_inline
       ~params:[ I64; I64; I64 ] ~ret:None ()
   with
  | [ plb; pub; n ] ->
    B.set_block b "entry";
    let gdim = B.grid_dim b in
    let bid = B.block_id b in
    let chunk = B.sdiv b (B.sub b (B.add b n gdim) (B.i64 1)) gdim in
    let lb = B.mul b bid chunk in
    let ub = B.smin b (B.add b lb chunk) n in
    B.store b I64 lb plb;
    B.store b I64 ub pub;
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b)

let build_for_static_init b ~ws =
  (match
     B.begin_func b ~name:L.old_for_static_init ~attrs:no_inline
       ~params:[ I64; I64; I64; I64; I64 ] ~ret:None ()
   with
  | [ plb; pub; pstride; lb; ub ] ->
    B.set_block b "entry";
    let tid = B.thread_id b in
    let base = team_base b in
    let mode = load_state b base o_mode in
    let generic = B.icmp b Eq mode (B.i64 0) in
    let bdim = B.block_dim b in
    let nthr =
      (* in generic mode the workers are bdim - warp_size threads *)
      B.select b I64 generic (B.sub b bdim (B.i64 ws)) bdim
    in
    let span = B.sub b ub lb in
    let chunk = B.sdiv b (B.sub b (B.add b span nthr) (B.i64 1)) nthr in
    let mylb = B.add b lb (B.mul b tid chunk) in
    let myub = B.smin b (B.add b mylb chunk) ub in
    B.store b I64 mylb plb;
    B.store b I64 myub pub;
    B.store b I64 chunk pstride;
    (* the shared worksharing descriptor tracks the active schedule *)
    B.store b I64 chunk (Global_addr L.old_wds);
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b)

let plevel_slot b =
  let bid = B.block_id b in
  let tid = B.thread_id b in
  let idx = B.add b (B.mul b bid (B.i64 data_share_threads)) tid in
  B.ptradd b (Global_addr "__old_omp_plevel") (B.mul b idx (B.i64 8))

let build_icv_read b ~name ~off =
  (match B.begin_func b ~name ~attrs:no_inline ~params:[] ~ret:(Some I64) () with
  | [] ->
    B.set_block b "entry";
    let base = team_base b in
    let v = load_state b base off in
    if off = o_levels then begin
      (* the visible level is the team level plus this thread's nesting
         depth (the old runtime's parallelLevel bookkeeping) *)
      let pl = B.load b I64 (plevel_slot b) in
      B.ret b (Some (B.add b v pl))
    end
    else B.ret b (Some v)
  | _ -> assert false);
  ignore (B.end_func b)

let build_barrier_fn b =
  (match B.begin_func b ~name:L.barrier ~attrs:no_inline ~params:[] ~ret:None () with
  | [] ->
    B.set_block b "entry";
    B.barrier b ~aligned:false;
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b)

let build_get_thread_num b =
  (match
     B.begin_func b ~name:L.get_thread_num ~attrs:no_inline ~params:[] ~ret:(Some I64) ()
   with
  | [] ->
    B.set_block b "entry";
    let base = team_base b in
    let mode = load_state b base o_mode in
    let spmd = B.icmp b Ne mode (B.i64 0) in
    let tid = B.thread_id b in
    let bdim = B.block_dim b in
    let is_main = B.icmp b Eq tid (B.sub b bdim (B.i64 1)) in
    let generic_tid = B.select b I64 is_main (B.i64 0) tid in
    let r = B.select b I64 spmd tid generic_tid in
    B.ret b (Some r)
  | _ -> assert false);
  ignore (B.end_func b)

let build_simple b ~name ~emit =
  (match B.begin_func b ~name ~attrs:no_inline ~params:[] ~ret:(Some I64) () with
  | [] ->
    B.set_block b "entry";
    let v = emit b in
    B.ret b (Some v)
  | _ -> assert false);
  ignore (B.end_func b)

(* The old runtime has no linked thread-state API; nested parallelism is
   serialized through the data-sharing stack plus the parallelLevel
   bookkeeping. The push/pop entry points keep the ABI shared with the
   new runtime: push hands out a scratch ICV block seeded with the
   currently visible state and bumps this thread's level counter; pop
   undoes the bump (the scratch block leaks until kernel end — arena
   discipline, one reason old-runtime nesting was expensive). *)
let build_push_pop b =
  (match
     B.begin_func b ~name:L.push_icv_state ~attrs:no_inline ~params:[] ~ret:(Some I64) ()
   with
  | [] ->
    B.set_block b "entry";
    let p = B.call_val b L.alloc_shared [ B.i64 L.ts_size ] in
    (* seed the scratch state with the visible levels value *)
    let base = team_base b in
    let team_lvl = load_state b base o_levels in
    let slot = plevel_slot b in
    let pl = B.load b I64 slot in
    B.store b I64 (B.add b team_lvl pl) p;
    B.store b I64 (B.add b pl (B.i64 1)) slot;
    (* levels reads go through get_level, which already accounts for the
       bump; the scratch block carries the pre-bump view *)
    B.ret b (Some p)
  | _ -> assert false);
  ignore (B.end_func b);
  (match B.begin_func b ~name:L.pop_icv_state ~attrs:no_inline ~params:[] ~ret:None () with
  | [] ->
    B.set_block b "entry";
    let slot = plevel_slot b in
    let pl = B.load b I64 slot in
    B.store b I64 (B.sub b pl (B.i64 1)) slot;
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b)

let build ?(warp_size = L.warp_size) (cfg : Config.t) : modul =
  let b = B.create "openmp_device_rt_old" in
  add_globals cfg b;
  build_assert b;
  build_alloc_shared b;
  build_free_shared b;
  build_worker_loop b;
  build_target_init b ~ws:warp_size;
  build_target_deinit b;
  build_parallel b;
  build_distribute_init b;
  build_for_static_init b ~ws:warp_size;
  build_icv_read b ~name:L.get_num_threads ~off:o_nthreads;
  build_icv_read b ~name:L.get_level ~off:o_levels;
  build_barrier_fn b;
  build_get_thread_num b;
  build_simple b ~name:L.get_team_num ~emit:(fun b -> B.block_id b);
  build_simple b ~name:L.get_num_teams ~emit:(fun b -> B.grid_dim b);
  build_push_pop b;
  B.finish b
