(* Liveness analysis over virtual registers. The maximum number of
   simultaneously live registers after optimization is the reproduction's
   stand-in for the per-thread hardware register count that Nsight Compute
   reports in the paper's Figure 11 (and which drives occupancy in the
   virtual GPU). *)

open Types
module SMap = Cfg.SMap

module RSet = Set.Make (Int)

type t = {
  live_in : RSet.t SMap.t;
  live_out : RSet.t SMap.t;
}

let operand_regs_set ops =
  List.fold_left
    (fun acc o -> List.fold_left (fun acc r -> RSet.add r acc) acc (operand_regs o))
    RSet.empty ops

(* use/def of a whole block, with phi handling: phi destinations are defs
   of this block; phi operands are uses *on the corresponding incoming
   edge*, which we conservatively attribute to the predecessor's live-out
   (standard SSA liveness treatment). *)
let block_use_def (b : block) =
  (* Walk backwards accumulating uses not shadowed by later defs. *)
  let uses = ref RSet.empty in
  let defs = ref RSet.empty in
  let process_uses ops = uses := RSet.union (operand_regs_set ops) !uses in
  let process_def = function
    | Some r ->
      defs := RSet.add r !defs;
      uses := RSet.remove r !uses
    | None -> ()
  in
  process_uses (term_uses b.b_term);
  List.iter
    (fun i ->
      process_def (inst_def i);
      process_uses (inst_uses i))
    (List.rev b.b_insts);
  List.iter
    (fun p ->
      defs := RSet.add p.phi_reg !defs;
      uses := RSet.remove p.phi_reg !uses)
    b.b_phis;
  (!uses, !defs)

let analyse (f : func) : t =
  let cfg = Cfg.of_func f in
  let use_def =
    List.fold_left
      (fun acc b -> SMap.add b.b_label (block_use_def b) acc)
      SMap.empty f.f_blocks
  in
  (* phi uses per incoming edge: map pred label -> registers used by phis
     of its successors along that edge *)
  let phi_edge_uses = Hashtbl.create 16 in
  List.iter
    (fun b ->
      List.iter
        (fun p ->
          List.iter
            (fun (pred, o) ->
              List.iter
                (fun r ->
                  let cur =
                    Option.value ~default:RSet.empty
                      (Hashtbl.find_opt phi_edge_uses pred)
                  in
                  Hashtbl.replace phi_edge_uses pred (RSet.add r cur))
                (operand_regs o))
            p.phi_incoming)
        b.b_phis)
    f.f_blocks;
  let live_in = ref SMap.empty and live_out = ref SMap.empty in
  List.iter
    (fun b ->
      live_in := SMap.add b.b_label RSet.empty !live_in;
      live_out := SMap.add b.b_label RSet.empty !live_out)
    f.f_blocks;
  let changed = ref true in
  while !changed do
    changed := false;
    (* iterate in reverse RPO for fast convergence *)
    List.iter
      (fun l ->
        match SMap.find_opt l use_def with
        | None -> ()
        | Some (uses, defs) ->
          let out =
            List.fold_left
              (fun acc s ->
                RSet.union acc
                  (RSet.union
                     (Option.value ~default:RSet.empty (SMap.find_opt s !live_in))
                     RSet.empty))
              RSet.empty (Cfg.succs cfg l)
          in
          (* registers used by successors' phis along this edge are live out *)
          let out =
            RSet.union out
              (Option.value ~default:RSet.empty (Hashtbl.find_opt phi_edge_uses l))
          in
          let inn = RSet.union uses (RSet.diff out defs) in
          if
            not
              (RSet.equal inn
                 (Option.value ~default:RSet.empty (SMap.find_opt l !live_in)))
            || not
                 (RSet.equal out
                    (Option.value ~default:RSet.empty (SMap.find_opt l !live_out)))
          then begin
            live_in := SMap.add l inn !live_in;
            live_out := SMap.add l out !live_out;
            changed := true
          end)
      (List.rev cfg.rpo)
  done;
  { live_in = !live_in; live_out = !live_out }

(* Maximum register pressure: walk each block backwards from live-out,
   recording the largest live set seen at any program point — including
   the *block boundaries*. The within-block walk alone misses the phi
   parallel-copy moment at block entry: when control transfers along an
   edge, every phi destination is being written while its incoming source
   (and everything live into the block) is still being read, so sources
   and destinations are simultaneously live. The register allocator sizes
   its intervals from exactly this overlap; underreporting it here made
   the old estimate a max-within-block figure that a linear scan could
   exceed at an edge. The liveness result is a parameter so a caller
   holding a cached analysis (the analysis manager) does not recompute
   it. *)
let max_pressure_with (lv : t) (f : func) : int =
  let best = ref 0 in
  List.iter
    (fun b ->
      let live =
        ref (Option.value ~default:RSet.empty (SMap.find_opt b.b_label lv.live_out))
      in
      let bump () = best := max !best (RSet.cardinal !live) in
      bump ();
      List.iter
        (fun i ->
          (match inst_def i with Some r -> live := RSet.remove r !live | None -> ());
          live := RSet.union !live (operand_regs_set (inst_uses i));
          bump ())
        (List.rev b.b_insts);
      (* [live] is now the set just after the phis have executed. *)
      if b.b_phis <> [] then begin
        let defs =
          List.fold_left (fun acc p -> RSet.add p.phi_reg acc) RSet.empty b.b_phis
        in
        (* even a dead phi destination is written during the copy *)
        let post = RSet.union !live defs in
        let preds =
          List.sort_uniq compare
            (List.concat_map (fun p -> List.map fst p.phi_incoming) b.b_phis)
        in
        List.iter
          (fun pred ->
            let srcs =
              List.fold_left
                (fun acc p ->
                  match List.assoc_opt pred p.phi_incoming with
                  | Some o -> RSet.union acc (operand_regs_set [ o ])
                  | None -> acc)
                RSet.empty b.b_phis
            in
            best := max !best (RSet.cardinal (RSet.union post srcs)))
          preds
      end;
      List.iter (fun p -> live := RSet.remove p.phi_reg !live) b.b_phis;
      bump ())
    f.f_blocks;
  !best

let max_pressure (f : func) : int = max_pressure_with (analyse f) f

(* Register estimate for a kernel: pressure of the kernel function plus
   the worst-case transitive callee pressure. A GPU ABI without spilling
   keeps the caller's live registers reserved across calls, so chains of
   surviving runtime calls (the opaque old runtime) add up — this is why
   the paper's Fig. 11 shows the old runtime at very high register counts
   while fully inlined code pays only its own liveness.

   [?pressure_of] lets a caller supply cached per-function pressure (the
   analysis manager); the default memoizes locally for this one call. *)
let kernel_register_estimate ?pressure_of (m : modul) (kernel : func) : int =
  let pressure_of =
    match pressure_of with
    | Some fn -> fn
    | None ->
      let pressure_cache = Hashtbl.create 16 in
      fun f ->
        (match Hashtbl.find_opt pressure_cache f.f_name with
        | Some p -> p
        | None ->
          let p = max_pressure f in
          Hashtbl.replace pressure_cache f.f_name p;
          p)
  in
  let rec total seen f =
    if List.mem f.f_name seen then pressure_of f (* recursion: cut off *)
    else begin
      let seen = f.f_name :: seen in
      let callees =
        List.concat_map
          (fun b ->
            List.filter_map
              (function Call (_, callee, _) -> find_func m callee | _ -> None)
              b.b_insts)
          f.f_blocks
      in
      let indirect =
        List.exists
          (fun b ->
            List.exists (function Call_indirect _ -> true | _ -> false) b.b_insts)
          f.f_blocks
      in
      let callee_max = List.fold_left (fun acc c -> max acc (total seen c)) 0 callees in
      let callee_max =
        if indirect then
          (* any address-taken function may be the callee *)
          List.fold_left
            (fun acc c ->
              if c.f_name <> f.f_name && not (List.mem c.f_name seen) then
                max acc (total seen c)
              else acc)
            callee_max m.m_funcs
        else callee_max
      in
      pressure_of f + callee_max
    end
  in
  max 1 (total [] kernel)
