(* Control-flow graph utilities over a function: successor/predecessor
   maps, reverse post-order, and reachability. *)

open Types

module SMap = Map.Make (String)
module SSet = Set.Make (String)

type t = {
  entry : label;
  blocks : block SMap.t;
  succs : label list SMap.t;
  preds : label list SMap.t;
  (* Blocks in reverse post-order from the entry (unreachable blocks last,
     in arbitrary order). *)
  rpo : label list;
}

let of_func (f : func) : t =
  let blocks =
    List.fold_left (fun acc b -> SMap.add b.b_label b acc) SMap.empty f.f_blocks
  in
  let succs =
    List.fold_left
      (fun acc b -> SMap.add b.b_label (term_succs b.b_term) acc)
      SMap.empty f.f_blocks
  in
  let preds = ref SMap.empty in
  List.iter
    (fun b ->
      List.iter
        (fun s ->
          let existing = Option.value ~default:[] (SMap.find_opt s !preds) in
          preds := SMap.add s (b.b_label :: existing) !preds)
        (term_succs b.b_term))
    f.f_blocks;
  let preds =
    List.fold_left
      (fun acc b ->
        if SMap.mem b.b_label acc then acc else SMap.add b.b_label [] acc)
      !preds f.f_blocks
  in
  let entry = (entry_block f).b_label in
  (* Depth-first post-order, reversed. *)
  let visited = ref SSet.empty in
  let order = ref [] in
  let rec dfs l =
    if not (SSet.mem l !visited) then begin
      visited := SSet.add l !visited;
      List.iter dfs (Option.value ~default:[] (SMap.find_opt l succs));
      order := l :: !order
    end
  in
  dfs entry;
  let reachable = !order in
  let unreachable =
    List.filter_map
      (fun b -> if SSet.mem b.b_label !visited then None else Some b.b_label)
      f.f_blocks
  in
  { entry; blocks; succs; preds; rpo = reachable @ unreachable }

let succs t l = Option.value ~default:[] (SMap.find_opt l t.succs)
let preds t l = Option.value ~default:[] (SMap.find_opt l t.preds)
let block t l = SMap.find l t.blocks
let labels t = t.rpo
let is_reachable t l =
  (* rpo lists reachable blocks first; a block is reachable iff it was
     visited in the DFS, i.e. it has an index smaller than the number of
     visited blocks. Recompute cheaply via preds/entry instead. *)
  l = t.entry
  ||
  let rec bfs seen frontier =
    match frontier with
    | [] -> false
    | x :: rest ->
      if x = l then true
      else if SSet.mem x seen then bfs seen rest
      else bfs (SSet.add x seen) (succs t x @ rest)
  in
  bfs SSet.empty [ t.entry ]

(* Exit blocks: those terminated by Ret or Unreachable. *)
let exits t =
  SMap.fold
    (fun l b acc ->
      match b.b_term with Ret _ | Unreachable -> l :: acc | _ -> acc)
    t.blocks []

(* Remove unreachable blocks from a function, dropping phi incomings from
   removed predecessors. [?cfg] accepts a (cached) CFG of [f] so callers
   holding one — the analysis manager's clients — skip the rebuild. *)
let prune_unreachable ?cfg (f : func) : func * bool =
  let t = match cfg with Some t -> t | None -> of_func f in
  let visited = ref SSet.empty in
  let rec dfs l =
    if not (SSet.mem l !visited) then begin
      visited := SSet.add l !visited;
      List.iter dfs (succs t l)
    end
  in
  dfs t.entry;
  let keep b = SSet.mem b.b_label !visited in
  if List.for_all keep f.f_blocks then (f, false)
  else
    let blocks =
      List.filter keep f.f_blocks
      |> List.map (fun b ->
             let phis =
               List.map
                 (fun p ->
                   { p with
                     phi_incoming =
                       List.filter (fun (l, _) -> SSet.mem l !visited) p.phi_incoming
                   })
                 b.b_phis
             in
             { b with b_phis = phis })
    in
    ({ f with f_blocks = blocks }, true)
