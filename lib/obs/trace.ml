(* Structured tracing and profiling context (`ozo_obs`).

   A [ctx] records a tree of timed *spans* (compile, one per optimization
   pass, launch, decode/execute/readback) and point-in-time *instant*
   events (optimization remarks, per-block hot spots), each annotated
   with typed key/value arguments. The compiler and the vGPU thread one
   ctx through a whole compile+launch so the exporters (Chrome trace
   JSON, text profile) can show where cycles and compile time went.

   Near-zero overhead when off: [null] is a shared disabled ctx and every
   operation starts with a single [cx_on] branch — no clock reads, no
   allocation, no formatting happen on the disabled path. The paper's
   "you only pay for what you use" discipline applies to our own
   instrumentation too.

   Timestamps are microseconds relative to ctx creation, read from an
   injectable clock ([make ~clock]) so tests can pin monotonicity without
   depending on the wall clock. Durations are clamped non-negative. *)

type value = Int of int | Float of float | Str of string

type instant = {
  i_name : string;
  i_cat : string;
  i_ts : float;
  i_args : (string * value) list;
}

type span = {
  sp_name : string;
  sp_cat : string;
  sp_start : float;
  mutable sp_stop : float; (* < sp_start while the span is still open *)
  mutable sp_args : (string * value) list;
  mutable sp_rsub : node list; (* children, newest first *)
}

and node = Span of span | Instant of instant

type ctx = {
  cx_on : bool;
  cx_clock : unit -> float; (* absolute microseconds *)
  cx_t0 : float;
  mutable cx_rroots : node list; (* newest first *)
  mutable cx_open : span list; (* open spans, innermost first *)
}

(* the shared disabled context: every API call returns after one branch *)
let null =
  { cx_on = false; cx_clock = (fun () -> 0.0); cx_t0 = 0.0; cx_rroots = [];
    cx_open = [] }

let default_clock () = Unix.gettimeofday () *. 1e6

let make ?(clock = default_clock) () =
  { cx_on = true; cx_clock = clock; cx_t0 = clock (); cx_rroots = [];
    cx_open = [] }

let[@inline] enabled cx = cx.cx_on
let now cx = cx.cx_clock () -. cx.cx_t0

let push_node cx n =
  match cx.cx_open with
  | s :: _ -> s.sp_rsub <- n :: s.sp_rsub
  | [] -> cx.cx_rroots <- n :: cx.cx_rroots

let begin_span cx ?(cat = "") ?(args = []) name =
  if cx.cx_on then begin
    let s =
      { sp_name = name; sp_cat = cat; sp_start = now cx; sp_stop = -1.0;
        sp_args = args; sp_rsub = [] }
    in
    push_node cx (Span s);
    cx.cx_open <- s :: cx.cx_open
  end

(* Close the innermost open span (a stray end on an empty stack is
   ignored, so begin/end mismatches degrade instead of corrupting). *)
let end_span cx ?(args = []) () =
  if cx.cx_on then
    match cx.cx_open with
    | [] -> ()
    | s :: rest ->
      s.sp_stop <- Float.max s.sp_start (now cx);
      if args <> [] then s.sp_args <- s.sp_args @ args;
      cx.cx_open <- rest

(* Scoped span; exception-safe, zero-cost when the ctx is off. *)
let with_span cx ?cat ?args name f =
  if cx.cx_on then begin
    begin_span cx ?cat ?args name;
    match f () with
    | v ->
      end_span cx ();
      v
    | exception e ->
      end_span cx ();
      raise e
  end
  else f ()

(* Attach an argument to the innermost open span. *)
let add_arg cx key v =
  if cx.cx_on then
    match cx.cx_open with
    | s :: _ -> s.sp_args <- s.sp_args @ [ (key, v) ]
    | [] -> ()

let instant cx ?(cat = "") ?(args = []) name =
  if cx.cx_on then
    push_node cx (Instant { i_name = name; i_cat = cat; i_ts = now cx; i_args = args })

(* Close any spans left open (abnormal exits); exporters call this so a
   faulted run still produces a well-formed trace. *)
let rec close_all cx =
  if cx.cx_on && cx.cx_open <> [] then begin
    end_span cx ();
    close_all cx
  end

(* --- reading the tree back --------------------------------------------- *)

let roots cx = List.rev cx.cx_rroots
let sub s = List.rev s.sp_rsub
let dur s = if s.sp_stop >= s.sp_start then s.sp_stop -. s.sp_start else 0.0
let closed s = s.sp_stop >= s.sp_start

(* depth-first pre-order iteration over every node *)
let iter cx f =
  let rec go n =
    f n;
    match n with Span s -> List.iter go (sub s) | Instant _ -> ()
  in
  List.iter go (roots cx)

(* all spans named [name], in recording order *)
let spans_named cx name =
  let acc = ref [] in
  iter cx (function
    | Span s when s.sp_name = name -> acc := s :: !acc
    | _ -> ());
  List.rev !acc

(* all instants named [name], in recording order *)
let instants_named cx name =
  let acc = ref [] in
  iter cx (function
    | Instant i when i.i_name = name -> acc := i :: !acc
    | _ -> ());
  List.rev !acc

(* duration of the most recent completed span named [name] (0 if none) *)
let last_dur cx name =
  match List.rev (spans_named cx name) with
  | s :: _ when closed s -> dur s
  | _ -> 0.0

(* total duration over every span named [name] *)
let total_dur cx name =
  List.fold_left (fun acc s -> acc +. dur s) 0.0 (spans_named cx name)

let count_spans cx =
  let n = ref 0 in
  iter cx (function Span _ -> incr n | Instant _ -> ());
  !n

let pp_value ppf = function
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.float ppf f
  | Str s -> Fmt.string ppf s
