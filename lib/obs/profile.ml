(* Text profile report over a recorded Trace.ctx: an indented span tree
   with durations, plus flat aggregates (total time per span name) and a
   hot-spot table built from the "hotspot" instants the engine emits.
   This is the `--profile` terminal view; the Chrome JSON export is for
   the graphical timeline. *)

let pp_dur ppf us =
  if us >= 1_000_000.0 then Fmt.pf ppf "%.3f s" (us /. 1e6)
  else if us >= 1_000.0 then Fmt.pf ppf "%.3f ms" (us /. 1e3)
  else Fmt.pf ppf "%.1f us" us

(* indented tree of spans; instants other than hotspots shown inline *)
let pp_tree ppf cx =
  let rec node depth n =
    let pad = String.make (2 * depth) ' ' in
    match n with
    | Trace.Span s ->
      Fmt.pf ppf "%s%-*s %a@," pad
        (max 1 (32 - (2 * depth)))
        s.Trace.sp_name pp_dur (Trace.dur s);
      List.iter (node (depth + 1)) (Trace.sub s)
    | Trace.Instant i when i.Trace.i_cat = "hotspot" -> ignore i
    | Trace.Instant i -> Fmt.pf ppf "%s* %s@," pad i.Trace.i_name
  in
  Fmt.pf ppf "@[<v>";
  List.iter (node 0) (Trace.roots cx);
  Fmt.pf ppf "@]"

(* total duration and count per span name, sorted by total desc *)
let aggregates cx =
  let tbl = Hashtbl.create 16 in
  Trace.iter cx (function
    | Trace.Span s ->
      let total, count =
        Option.value (Hashtbl.find_opt tbl s.Trace.sp_name) ~default:(0.0, 0)
      in
      Hashtbl.replace tbl s.Trace.sp_name (total +. Trace.dur s, count + 1)
    | Trace.Instant _ -> ());
  Hashtbl.fold (fun name (total, count) acc -> (name, total, count) :: acc) tbl []
  |> List.sort (fun (n1, t1, _) (n2, t2, _) ->
         match compare t2 t1 with 0 -> compare n1 n2 | c -> c)

let pp_aggregates ppf cx =
  Fmt.pf ppf "@[<v>%-32s %10s %6s@," "span" "total" "count";
  List.iter
    (fun (name, total, count) ->
      Fmt.pf ppf "%-32s %10s %6d@," name
        (Fmt.str "%a" pp_dur total)
        count)
    (aggregates cx);
  Fmt.pf ppf "@]"

(* hot-spot rows recovered from "hotspot"-category instants
   (args: fn, blk, hits, winsts, cycles) *)
let hotspot_rows cx =
  let get args k =
    match List.assoc_opt k args with
    | Some (Trace.Int i) -> i
    | _ -> 0
  in
  let get_str args k =
    match List.assoc_opt k args with
    | Some (Trace.Str s) -> s
    | _ -> "?"
  in
  let acc = ref [] in
  Trace.iter cx (function
    | Trace.Instant i when i.Trace.i_cat = "hotspot" ->
      let a = i.Trace.i_args in
      acc :=
        (get_str a "fn", get_str a "blk", get a "hits", get a "winsts", get a "cycles")
        :: !acc
    | _ -> ());
  List.rev !acc

let pp_hotspots ppf cx =
  match hotspot_rows cx with
  | [] -> Fmt.pf ppf "(no hot-spot data; run with profiling enabled)"
  | rows ->
    Fmt.pf ppf "@[<v>%-24s %-12s %8s %10s %10s@," "function" "block" "hits"
      "winsts" "cycles";
    List.iter
      (fun (fn, blk, hits, wi, cyc) ->
        Fmt.pf ppf "%-24s %-12s %8d %10d %10d@," fn blk hits wi cyc)
      rows;
    Fmt.pf ppf "@]"

(* analysis-cache counters from the pipeline's "analysis-cache" instant
   (args: hits, misses, invalidations, hit_rate_pct); last one wins when
   several pipelines ran under this ctx *)
let cache_counters cx =
  match List.rev (Trace.instants_named cx "analysis-cache") with
  | [] -> None
  | i :: _ ->
    let get k =
      match List.assoc_opt k i.Trace.i_args with Some (Trace.Int v) -> v | _ -> 0
    in
    let rate =
      match List.assoc_opt "hit_rate_pct" i.Trace.i_args with
      | Some (Trace.Float f) -> f
      | _ -> 0.0
    in
    Some (get "hits", get "misses", get "invalidations", rate)

let pp_cache ppf cx =
  match cache_counters cx with
  | None -> Fmt.pf ppf "(no analysis-cache data; the compile was not traced)"
  | Some (h, m, inv, rate) ->
    Fmt.pf ppf "%d hits, %d misses, %d invalidations (%.0f%% hit rate)" h m inv rate

let pp_report ppf cx =
  Trace.close_all cx;
  Fmt.pf ppf "@[<v>== span tree ==@,%a@,== totals by span ==@,%a@," pp_tree cx
    pp_aggregates cx;
  Fmt.pf ppf "== analysis cache ==@,%a@," pp_cache cx;
  Fmt.pf ppf "== hot spots ==@,%a@]" pp_hotspots cx

let report_to_string cx = Fmt.str "%a" pp_report cx
