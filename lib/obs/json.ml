(* Minimal JSON reader used to validate emitted Chrome traces (schema
   test, `ozo trace --check`, CI smoke) without an external dependency.
   Accepts standard JSON; numbers are floats, \uXXXX escapes decode to
   '?' outside ASCII (trace payloads we validate are ASCII anyway). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | None -> fail "unterminated escape"
        | Some c ->
          advance ();
          (match c with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            let code =
              try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
            in
            if code < 128 then Buffer.add_char b (Char.chr code)
            else Buffer.add_char b '?'
          | _ -> fail "bad escape");
          go ())
      | Some c ->
        advance ();
        Buffer.add_char b c;
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let str = String.sub s start (!pos - start) in
    match float_of_string_opt str with
    | Some f -> Num f
    | None -> fail ("bad number " ^ str)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((key, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems (v :: acc)
          | Some ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elems []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

(* --- accessors ---------------------------------------------------------- *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
let to_list = function Arr xs -> Some xs | _ -> None
let to_string = function Str s -> Some s | _ -> None
let to_number = function Num f -> Some f | _ -> None
