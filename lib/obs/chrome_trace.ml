(* Chrome trace-event exporter: serialises a Trace.ctx as the JSON array
   format chrome://tracing and Perfetto load directly. Spans become "X"
   (complete) events with ts/dur, instants become "i" events; nesting is
   conveyed by time containment on a single pid/tid, which both viewers
   reconstruct. All timestamps are microseconds, matching the format. *)

let buf_add_escaped b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let buf_add_float b f =
  (* %.3f keeps sub-microsecond precision from the float clock while
     staying valid JSON (no "inf"/"nan" can reach here: durations are
     clamped and timestamps are finite differences). *)
  Buffer.add_string b (Printf.sprintf "%.3f" f)

let buf_add_value b = function
  | Trace.Int i -> Buffer.add_string b (string_of_int i)
  | Trace.Float f -> buf_add_float b f
  | Trace.Str s ->
    Buffer.add_char b '"';
    buf_add_escaped b s;
    Buffer.add_char b '"'

let buf_add_args b args =
  Buffer.add_string b "\"args\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '"';
      buf_add_escaped b k;
      Buffer.add_string b "\":";
      buf_add_value b v)
    args;
  Buffer.add_char b '}'

let buf_add_common b ~name ~cat ~ts =
  Buffer.add_string b "\"name\":\"";
  buf_add_escaped b name;
  Buffer.add_string b "\",\"cat\":\"";
  buf_add_escaped b (if cat = "" then "ozo" else cat);
  Buffer.add_string b "\",\"pid\":1,\"tid\":1,\"ts\":";
  buf_add_float b ts

let to_string cx =
  Trace.close_all cx;
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  let emit_sep () =
    if !first then first := false else Buffer.add_char b ',';
    Buffer.add_char b '{'
  in
  Trace.iter cx (function
    | Trace.Span s ->
      emit_sep ();
      Buffer.add_string b "\"ph\":\"X\",";
      buf_add_common b ~name:s.Trace.sp_name ~cat:s.Trace.sp_cat
        ~ts:s.Trace.sp_start;
      Buffer.add_string b ",\"dur\":";
      buf_add_float b (Trace.dur s);
      if s.Trace.sp_args <> [] then begin
        Buffer.add_char b ',';
        buf_add_args b s.Trace.sp_args
      end;
      Buffer.add_char b '}'
    | Trace.Instant i ->
      emit_sep ();
      Buffer.add_string b "\"ph\":\"i\",\"s\":\"t\",";
      buf_add_common b ~name:i.Trace.i_name ~cat:i.Trace.i_cat
        ~ts:i.Trace.i_ts;
      if i.Trace.i_args <> [] then begin
        Buffer.add_char b ',';
        buf_add_args b i.Trace.i_args
      end;
      Buffer.add_char b '}');
  Buffer.add_string b "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents b

let write cx path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string cx))

(* --- validation --------------------------------------------------------- *)

(* Structural check used by the schema test and `ozo trace --check`:
   the string parses as JSON, has a traceEvents array, and every event
   carries the required fields with sane types. Returns the event list
   so callers can layer domain checks (span names, containment). *)
let validate (s : string) : (Json.t list, string) result =
  match Json.parse s with
  | Error e -> Error ("not valid JSON: " ^ e)
  | Ok root -> (
    match Json.member "traceEvents" root with
    | None -> Error "missing traceEvents"
    | Some evs -> (
      match Json.to_list evs with
      | None -> Error "traceEvents is not an array"
      | Some events ->
        let check i ev =
          let str_field k =
            match Option.bind (Json.member k ev) Json.to_string with
            | Some v -> Ok v
            | None -> Error (Printf.sprintf "event %d: missing string %S" i k)
          in
          let num_field k =
            match Option.bind (Json.member k ev) Json.to_number with
            | Some v -> Ok v
            | None -> Error (Printf.sprintf "event %d: missing number %S" i k)
          in
          let ( let* ) = Result.bind in
          let* ph = str_field "ph" in
          let* _ = str_field "name" in
          let* _ = str_field "cat" in
          let* _ = num_field "ts" in
          let* _ = num_field "pid" in
          let* _ = num_field "tid" in
          match ph with
          | "X" ->
            let* d = num_field "dur" in
            if d < 0.0 then Error (Printf.sprintf "event %d: negative dur" i)
            else Ok ()
          | "i" -> Ok ()
          | _ -> Error (Printf.sprintf "event %d: unexpected ph %S" i ph)
        in
        let rec go i = function
          | [] -> Ok events
          | ev :: rest -> (
            match check i ev with Ok () -> go (i + 1) rest | Error e -> Error e)
        in
        go 0 events))

(* Helpers over validated event lists, shared by the CLI check and tests. *)

let ev_name ev = Option.bind (Json.member "name" ev) Json.to_string
let ev_ph ev = Option.bind (Json.member "ph" ev) Json.to_string
let ev_ts ev = Option.bind (Json.member "ts" ev) Json.to_number
let ev_dur ev = Option.bind (Json.member "dur" ev) Json.to_number

let spans_by_name events name =
  List.filter
    (fun ev -> ev_ph ev = Some "X" && ev_name ev = Some name)
    events

(* [contains outer inner]: inner's time range lies within outer's. *)
let contains outer inner =
  match (ev_ts outer, ev_dur outer, ev_ts inner) with
  | Some ots, Some odur, Some its ->
    let iend =
      match (ev_dur inner, ev_ph inner) with
      | Some d, _ -> its +. d
      | None, _ -> its
    in
    its >= ots -. 1e-6 && iend <= ots +. odur +. 1e-6
  | _ -> false
