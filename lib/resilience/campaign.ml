(* Resilient measurement campaigns: the standard harness sweep, run under
   the [Supervisor] with an optional crash-safe [Journal].

   Row order is deterministic — for each proxy, for each repeat, for each
   standard build — so the journal's sequence numbers map 1:1 onto row
   indices. On resume, journaled rows are replayed verbatim (no
   re-measurement) and fed through the breaker so the supervisor restarts
   with exactly the state it died with; the first un-journaled row is
   where live measurement picks back up.

   [co_abort_after] is a test/CI hook: the campaign raises [Aborted]
   after appending that many fresh rows, simulating a mid-run kill
   without involving signals. *)

module E = Ozo_harness.Experiments
module C = Ozo_core.Codesign
module Request = Ozo_core.Request
module Device = Ozo_vgpu.Device
module Proxy = Ozo_proxies.Proxy
module Trace = Ozo_obs.Trace
module Faultinject = Ozo_vgpu.Faultinject

type opts = {
  co_proxies : string list;
  co_small : bool; (* use the reduced test-size workloads *)
  co_repeat : int; (* full sweeps per proxy; >1 exercises the breaker *)
  co_check_assumes : bool;
  co_sanitize : bool;
  co_inject : Faultinject.spec option;
  co_journal : string option;
  co_resume : bool;
  co_abort_after : int option; (* crash after N fresh rows (test hook) *)
  co_domains : int; (* OCaml domains per launch; results identical at any value *)
  co_exec : Ozo_vgpu.Engine.exec; (* executor; results identical on both *)
  co_machine : Ozo_backend.Machine.t; (* machine descriptor every row runs under *)
  co_sup : Supervisor.opts;
}

let default =
  { co_proxies = []; co_small = false; co_repeat = 1; co_check_assumes = false;
    co_sanitize = false; co_inject = None; co_journal = None;
    co_resume = false; co_abort_after = None; co_domains = 1;
    co_exec = Ozo_vgpu.Engine.Exec_ir; co_machine = Ozo_backend.Machine.vgpu;
    co_sup = Supervisor.default }

exception Aborted of string

(* campaign identity for the journal header: resuming under different
   options must be refused, not silently mixed *)
let fingerprint (o : opts) : string =
  Printf.sprintf
    "proxies=%s;small=%b;repeat=%d;inject=%s;sanitize=%b;assumes=%b;domains=%d;exec=%s"
    (String.concat "," o.co_proxies)
    o.co_small o.co_repeat
    (match o.co_inject with
    | Some s -> Faultinject.spec_to_string s ^ "#" ^ string_of_int s.Faultinject.s_seed
    | None -> "-")
    o.co_sanitize o.co_check_assumes o.co_domains
    (Ozo_vgpu.Engine.exec_name o.co_exec)
  (* appended only off the default so pre-matrix journals still resume *)
  ^
  if o.co_machine.Ozo_backend.Machine.mc_name = "vgpu" then ""
  else ";machine=" ^ o.co_machine.Ozo_backend.Machine.mc_name

let resolve (o : opts) name : Proxy.t =
  let pool =
    if o.co_small then Ozo_proxies.Registry.all_small ()
    else Ozo_proxies.Registry.all ()
  in
  match List.find_opt (fun p -> p.Proxy.p_name = name) pool with
  | Some p -> p
  | None -> raise (E.Harness_error ("unknown proxy " ^ name))

(* The campaign's deterministic row order, as first-class requests: every
   per-row option is folded into the [Request.t] up front; only the
   per-attempt concerns (watchdog, retry-time injection clearing) are
   patched in by the supervised task below. *)
let rows_of ?(trace = Trace.null) (o : opts) : (Proxy.t * Request.t) list =
  List.concat_map
    (fun name ->
      let p = resolve o name in
      List.concat_map
        (fun _ ->
          List.map
            (fun b ->
              ( p,
                E.request_for ~check_assumes:o.co_check_assumes
                  ~sanitize:o.co_sanitize ?inject:o.co_inject ~trace
                  ~domains:o.co_domains ~exec:o.co_exec ~machine:o.co_machine p b ))
            (E.builds_for p))
        (List.init (max 1 o.co_repeat) Fun.id))
    o.co_proxies

let run ?clock ?sleep ?(trace = Trace.null) (o : opts) : E.measurement list =
  let sup = Supervisor.create ?clock ?sleep ~trace o.co_sup in
  let rows = rows_of ~trace o in
  let fp = fingerprint o in
  let replayed =
    if not o.co_resume then []
    else
      match o.co_journal with
      | None -> raise (E.Harness_error "--resume requires a journal path")
      | Some path -> (
        match Journal.load ~path with
        | Ok (fp', entries) when fp' = fp ->
          List.map (fun e -> e.Journal.e_m) entries
        | Ok _ ->
          raise
            (E.Harness_error
               "journal fingerprint mismatch: it records a different campaign")
        | Error e -> raise (E.Harness_error ("cannot resume: " ^ e)))
  in
  let n_replayed = min (List.length replayed) (List.length rows) in
  let writer =
    Option.map
      (fun path ->
        if o.co_resume && Sys.file_exists path then Journal.reopen ~path
        else Journal.start ~path ~fingerprint:fp)
      o.co_journal
  in
  let fresh = ref 0 in
  let finish_row i m =
    (match writer with Some w -> Journal.append w ~seq:i m | None -> ());
    incr fresh;
    match o.co_abort_after with
    | Some n when !fresh >= n ->
      raise
        (Aborted
           (Printf.sprintf "campaign aborted after %d fresh rows (test hook)" n))
    | _ -> ()
  in
  let out =
    List.mapi
      (fun i (p, r) ->
        if i < n_replayed then begin
          (* replayed verbatim; still drives the breaker state machine *)
          let m = List.nth replayed i in
          Supervisor.note sup ~proxy:m.E.r_proxy ~build:m.E.r_build m;
          m
        end
        else begin
          let proxy = p.Proxy.p_name
          and build = r.Request.rq_build.C.b_label in
          let m =
            Supervisor.supervise sup ~proxy ~build
              (fun ~attempt ~watchdog ->
                (* inject only on the first attempt: a transient injected
                   fault must re-validate clean on retry *)
                let opts =
                  { r.Request.rq_opts with
                    Device.Launch_opts.watchdog;
                    inject = (if attempt = 0 then o.co_inject else None) }
                in
                E.measure_request p { r with Request.rq_opts = opts })
          in
          finish_row i m;
          m
        end)
      rows
  in
  (match writer with Some w -> Journal.close w | None -> ());
  out
