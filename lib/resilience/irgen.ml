(* Seeded generator of small, well-typed IR kernels for differential
   fuzzing. Every generated module verifies and executes deterministically
   regardless of how much the optimizer rewrites it, because the grammar
   is restricted to constructs whose observable results are
   schedule-independent on the virtual GPU:

   - accumulators live in per-thread [Alloca] slots (memory folds, no phi
     bookkeeping) — exactly the shape register promotion and the memory
     passes love to rewrite;
   - barriers appear only in uniform control flow (top level and
     constant-trip-count loops), never under a thread-dependent branch;
   - cross-lane shared-memory reads happen only after a barrier, and
     every thread writes its own slot before anyone reads a neighbor's;
   - no integer division (trap / rounding corners), shift amounts are
     small constants, and every integer fold is masked to 16 bits so
     products can never exceed either a 63-bit OCaml int or an int64;
   - the only atomic is the commutative [Atomic_add], so the final sum is
     independent of strand ordering;
   - no [Fptosi] (float->int corner semantics) and no float division.

   The kernel writes one i64 and one f64 result per global thread plus a
   global atomic accumulator; [Fuzz] reads all three back as the digest
   it compares across compilation pipelines. *)

module B = Ozo_ir.Builder
open Ozo_ir.Types
module Prng = Ozo_util.Prng

let teams = 2
let threads = 32
let lanes = teams * threads
let kernel_name = "fz_kernel"
let smem_global = "fz_smem"
let acc_global = "fz_acc"

type st = {
  g : B.t;
  rng : Prng.t;
  acc_i : operand; (* Ptr Local alloca holding the i64 accumulator *)
  acc_f : operand; (* Ptr Local alloca holding the f64 accumulator *)
  tid : operand;
  gid : operand;
}

let pick rng xs = List.nth xs (Prng.int rng (List.length xs))

let mask16 st v = B.and_ st.g v (B.i64 0xffff)

(* a small integer value: the accumulator, an id, or a constant *)
let int_atom st cur =
  match Prng.int st.rng 4 with
  | 0 -> cur
  | 1 -> st.tid
  | 2 -> st.gid
  | _ -> B.i64 (Prng.int st.rng 256)

(* depth-<=2 integer expression over masked atoms; results stay well
   under 2^62 (atoms <= 2^16, one chained product <= 2^48) *)
let int_expr st cur =
  let binop a b =
    match Prng.int st.rng 9 with
    | 0 -> B.add st.g a b
    | 1 -> B.sub st.g a b
    | 2 -> B.mul st.g a b
    | 3 -> B.and_ st.g a b
    | 4 -> B.or_ st.g a b
    | 5 -> B.xor st.g a b
    | 6 -> B.smin st.g a b
    | 7 -> B.smax st.g a b
    | _ -> B.shl st.g a (B.i64 (Prng.int st.rng 8))
  in
  let e = binop (int_atom st cur) (int_atom st cur) in
  if Prng.int st.rng 2 = 0 then binop e (int_atom st cur) else e

let float_atom st cur =
  match Prng.int st.rng 3 with
  | 0 -> cur
  | 1 -> B.f64 (float_of_int (Prng.int st.rng 64) /. 8.0)
  | _ -> B.unop st.g Sitofp (mask16 st (int_atom st (B.i64 1)))

let float_expr st cur =
  let a = float_atom st cur and b = float_atom st cur in
  match Prng.int st.rng 6 with
  | 0 -> B.fadd st.g a b
  | 1 -> B.fsub st.g a b
  | 2 -> B.fmul st.g a b
  | 3 -> B.binop st.g Fmax a b
  | 4 -> B.binop st.g Fmin a b
  | _ -> B.unop st.g (pick st.rng [ Fneg; Fabs ]) a

(* fold the i64 accumulator through a fresh expression *)
let fold_int st =
  let cur = B.load st.g I64 st.acc_i in
  let v = mask16 st (int_expr st cur) in
  B.store st.g I64 v st.acc_i

let fold_float st =
  let cur = B.load st.g F64 st.acc_f in
  let v = float_expr st cur in
  B.store st.g F64 v st.acc_f

let fold_select st =
  let cur = B.load st.g I64 st.acc_i in
  let c =
    B.icmp st.g
      (pick st.rng [ Eq; Ne; Slt; Sle; Sgt; Sge ])
      (int_atom st cur) (int_atom st cur)
  in
  let v = B.select st.g I64 c (int_atom st cur) (int_atom st cur) in
  B.store st.g I64 (mask16 st (B.add st.g cur v)) st.acc_i

let fold_atomic st =
  let cur = B.load st.g I64 st.acc_i in
  let v = mask16 st (B.add st.g cur st.tid) in
  B.atomic_add st.g I64 (Global_addr acc_global) v

(* divergent region: branch on a thread-dependent predicate; the bodies
   only touch per-thread allocas and the commutative atomic, so no
   barriers and no cross-lane traffic *)
let rec divergent_if st =
  let c =
    B.icmp st.g
      (pick st.rng [ Slt; Sge; Eq; Ne ])
      st.tid
      (B.i64 (Prng.int st.rng threads))
  in
  B.if_then_else st.g c
    ~then_:(fun () -> divergent_body st)
    ~else_:(fun () -> if Prng.int st.rng 2 = 0 then divergent_body st)

and divergent_body st =
  match Prng.int st.rng 4 with
  | 0 -> fold_int st
  | 1 -> fold_float st
  | 2 -> fold_select st
  | _ -> fold_atomic st

(* uniform constant-trip loop; may contain an aligned barrier (every
   thread runs the same trip count, so the barrier stays convergent) *)
let uniform_loop st =
  let trips = 2 + Prng.int st.rng 4 in
  let with_barrier = Prng.int st.rng 2 = 0 in
  ignore
    (B.for_loop st.g ~lo:(B.i64 0) ~hi:(B.i64 trips) ~step:(B.i64 1)
       ~body:(fun iv ->
         let cur = B.load st.g I64 st.acc_i in
         B.store st.g I64 (mask16 st (B.add st.g cur iv)) st.acc_i;
         if with_barrier then B.barrier st.g ~aligned:true;
         if Prng.int st.rng 2 = 0 then fold_float st))

(* shared-memory exchange: publish my accumulator to my slot, barrier,
   read a neighbor's slot, barrier again so the next stmt's store cannot
   overlap this read *)
let smem_exchange st =
  let my_off = B.mul st.g st.tid (B.i64 8) in
  let my_slot = B.ptradd st.g (Global_addr smem_global) my_off in
  let cur = B.load st.g I64 st.acc_i in
  B.store st.g I64 cur my_slot;
  B.barrier st.g ~aligned:true;
  let nb = B.and_ st.g (B.add st.g st.tid (B.i64 1)) (B.i64 (threads - 1)) in
  let nb_slot = B.ptradd st.g (Global_addr smem_global) (B.mul st.g nb (B.i64 8)) in
  let v = B.load st.g I64 nb_slot in
  B.store st.g I64 (mask16 st (B.add st.g cur v)) st.acc_i;
  B.barrier st.g ~aligned:true

let statement st =
  match Prng.int st.rng 8 with
  | 0 | 1 -> fold_int st
  | 2 -> fold_float st
  | 3 -> fold_select st
  | 4 -> fold_atomic st
  | 5 -> divergent_if st
  | 6 -> uniform_loop st
  | _ -> smem_exchange st

let generate ~seed : modul =
  let rng = Prng.create seed in
  let g = B.create (Printf.sprintf "fuzz_%d" seed) in
  ignore (B.add_global g ~space:Shared ~size:(threads * 8) smem_global);
  ignore (B.add_global g ~space:Global ~size:8 ~init:Zero_init acc_global);
  let params =
    B.begin_func g ~kernel:true ~name:kernel_name
      ~params:[ Ptr Global; Ptr Global ] ~ret:None ()
  in
  let out_i, out_f =
    match params with [ a; b ] -> (a, b) | _ -> assert false
  in
  B.set_block g "entry";
  let tid = B.thread_id g in
  let bid = B.block_id g in
  let bdim = B.block_dim g in
  let gid = B.add g (B.mul g bid bdim) tid in
  let acc_i = B.alloca g 8 in
  B.store g I64 (B.i64 (1 + Prng.int rng 1000)) acc_i;
  let acc_f = B.alloca g 8 in
  B.store g F64 (B.f64 (float_of_int (Prng.int rng 32) /. 4.0)) acc_f;
  (* every thread publishes its own shared slot before any statement may
     read a neighbor's *)
  let slot = B.ptradd g (Global_addr smem_global) (B.mul g tid (B.i64 8)) in
  B.store g I64 tid slot;
  B.barrier g ~aligned:true;
  let st = { g; rng; acc_i; acc_f; tid; gid } in
  let n_stmts = 3 + Prng.int rng 6 in
  for _ = 1 to n_stmts do
    statement st
  done;
  let off = B.mul g gid (B.i64 8) in
  B.store g I64 (B.load g I64 acc_i) (B.ptradd g out_i off);
  B.store g F64 (B.load g F64 acc_f) (B.ptradd g out_f off);
  B.ret g None;
  ignore (B.end_func g);
  B.finish g
