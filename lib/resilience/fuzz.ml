(* Differential IR fuzzing: compile each generated kernel under several
   pipeline/backend combinations, execute all of them on the virtual GPU,
   and demand bit-identical results.

   Variants per seed:
     - "O0"          : unoptimized pipeline — the reference semantics —
                       executed by the IR interpreter;
     - "full"        : the full co-designed pipeline (and the planted
                       miscompile pass, when one is armed);
     - "full+spill8" : full pipeline lowered against a machine with an
                       8-register budget, forcing the spilled register-
                       allocation path through the backend;
     - "full-vm"     : the full pipeline executed by the threaded-code
                       engine path, so a miscompile in the rename-plan
                       lowering gets a shrunk repro for free;
     - "full@<mach>" : (opt-in, one per [sweep] machine) the full pipeline
                       compiled and executed under another machine
                       descriptor — a 64-wide sweep catches
                       wavefront-width-dependent divergence: the generated
                       kernels use no lane intrinsics and only commutative
                       atomics, so their digests must not depend on the
                       warp granularity.

   A failing case is classified by a *signature* — per-variant outcome
   class ("ok" / "mismatch" / "fault:<kind>" / "compile-error" /
   "verify-error") — then greedily shrunk: drop instructions (replacing a
   deleted definition's uses with a typed zero), collapse conditional
   branches, and prune unreachable blocks, keeping a candidate only when
   it still verifies AND reproduces the exact signature. The minimized
   module is rendered as a standalone repro file. *)

open Ozo_ir.Types
module Verifier = Ozo_ir.Verifier
module Printer = Ozo_ir.Printer
module Pipeline = Ozo_opt.Pipeline
module Machine = Ozo_backend.Machine
module Backend = Ozo_backend.Lower
module Device = Ozo_vgpu.Device
module Engine = Ozo_vgpu.Engine
module Fault = Ozo_vgpu.Fault
module C = Ozo_core.Codesign
module Request = Ozo_core.Request

type digest = {
  d_i : int array;    (* per-global-thread i64 results *)
  d_f : int64 array;  (* per-global-thread f64 results, as bits *)
  d_acc : int;        (* the global atomic accumulator *)
}

type outcome = Digest of digest | Fail of string

type variant = {
  v_name : string;
  v_pipe : Pipeline.config;
  v_machine : Machine.t;
  v_plant : (modul -> modul) option;
  v_exec : Engine.exec;
}

(* Generated kernels execute a few thousand issues; a tight budget turns
   a miscompile-induced infinite loop into a fast [Budget_exhausted]
   outcome instead of grinding through the engine's 400M default —
   shrinking re-executes candidates constantly, so this bound is what
   keeps the whole fuzz loop interactive. *)
let fuzz_budget = 200_000

let variants ?plant ?(sweep = []) () =
  [ { v_name = "O0"; v_pipe = Pipeline.o0; v_machine = Machine.vgpu;
      v_plant = None; v_exec = Engine.Exec_ir };
    { v_name = "full"; v_pipe = Pipeline.full; v_machine = Machine.vgpu;
      v_plant = plant; v_exec = Engine.Exec_ir };
    { v_name = "full+spill8"; v_pipe = Pipeline.full;
      v_machine = Machine.with_reg_budget 8 Machine.vgpu; v_plant = None;
      v_exec = Engine.Exec_ir };
    { v_name = "full-vm"; v_pipe = Pipeline.full; v_machine = Machine.vgpu;
      v_plant = plant; v_exec = Engine.Exec_vm } ]
  @ List.map
      (fun m ->
        { v_name = "full@" ^ m.Machine.mc_name; v_pipe = Pipeline.full;
          v_machine = m; v_plant = plant; v_exec = Engine.Exec_ir })
      sweep

(* the planted miscompile used by tests and `ozo fuzz --plant flip-add`:
   the first Add in the kernel becomes a Sub after optimization *)
let flip_first_add (m : modul) : modul =
  let flipped = ref false in
  map_funcs
    (fun f ->
      if not f.f_is_kernel then f
      else
        { f with
          f_blocks =
            List.map
              (fun b ->
                { b with
                  b_insts =
                    List.map
                      (fun i ->
                        match i with
                        | Binop (r, Add, a, b') when not !flipped ->
                          flipped := true;
                          Binop (r, Sub, a, b')
                        | i -> i)
                      b.b_insts })
              f.f_blocks })
    m

let plant_of_name = function
  | "flip-add" -> Some flip_first_add
  | _ -> None

(* each variant as a first-class [Request.t]: the synthetic build carries
   the variant's pipeline under its name, and the launch shape/budget ride
   in the request instead of loose arguments *)
let request_of (v : variant) : Request.t =
  Request.make ~proxy:"fuzz" ~machine:v.v_machine ~exec:v.v_exec
    ~build:{ C.cuda with C.b_label = v.v_name; b_pipe = v.v_pipe }
    ~teams:Irgen.teams ~threads:Irgen.threads
    ~opts:
      { Device.Launch_opts.default with Device.Launch_opts.budget = fuzz_budget }
    ()

let exec (m : modul) (v : variant) : outcome =
  let rq = request_of v in
  try
    let opt = Pipeline.run rq.Request.rq_build.C.b_pipe m in
    let opt = match v.v_plant with Some p -> p opt | None -> opt in
    match Verifier.check opt with
    | Error _ -> Fail "verify-error"
    | Ok () -> (
      let lower =
        Backend.run ~machine:rq.Request.rq_machine opt
          ~kernel:Irgen.kernel_name
      in
      let low = lower.Backend.lw_module in
      let dev =
        (* machine-derived engine params: the sweep variants really run at
           the descriptor's wavefront width (identity for the vgpu rows) *)
        Device.create
          ~params:(Machine.cost_params rq.Request.rq_machine)
          ~exec:rq.Request.rq_exec ~plan:lower.Backend.lw_plan low
      in
      let n = Irgen.lanes in
      let out_i = Device.alloc dev (n * 8) in
      let out_f = Device.alloc dev (n * 8) in
      Device.write_i64s dev out_i (List.init n (fun _ -> 0));
      Device.write_f64s dev out_f (List.init n (fun _ -> 0.0));
      match
        Device.launch ~opts:rq.Request.rq_opts dev ~teams:rq.Request.rq_teams
          ~threads:rq.Request.rq_threads
          [ Engine.Ai (Device.ptr out_i); Engine.Ai (Device.ptr out_f) ]
      with
      | Error f -> Fail ("fault:" ^ Fault.kind_name f.Fault.f_kind)
      | Ok _ ->
        let d_i = Device.read_i64_array dev out_i n in
        let d_f =
          Array.map Int64.bits_of_float (Device.read_f64_array dev out_f n)
        in
        let d_acc =
          match Device.read_global_i64 dev Irgen.acc_global with
          | Some v -> v
          | None -> 0
        in
        Digest { d_i; d_f; d_acc })
  with _ -> Fail "compile-error"

let digest_equal a b = a.d_i = b.d_i && a.d_f = b.d_f && a.d_acc = b.d_acc

(* None = all variants agree with the O0 reference; Some s = the failure
   signature the shrinker must preserve *)
let signature_of ?plant ?sweep (m : modul) : string option =
  let vs = variants ?plant ?sweep () in
  let outcomes = List.map (fun v -> (v.v_name, exec m v)) vs in
  let reference =
    match outcomes with (_, o) :: _ -> o | [] -> assert false
  in
  let classify (_, o) =
    match (reference, o) with
    | Digest r, Digest d -> if digest_equal r d then "ok" else "mismatch"
    | Fail _, Digest _ -> "ok-vs-failed-ref"
    | _, Fail c -> c
  in
  let classes = List.map classify outcomes in
  if List.for_all (( = ) "ok") classes then None
  else
    Some
      (String.concat ";"
         (List.map2 (fun (n, _) c -> n ^ "=" ^ c) outcomes classes))

(* ---- shrinking -------------------------------------------------------- *)

(* best-effort type of every register, for typed-zero substitution when a
   defining instruction is deleted; iterated because SSA defs (loop phis)
   may reference registers defined later in block order *)
let reg_types (m : modul) (f : func) : (reg, typ) Hashtbl.t =
  let env = Hashtbl.create 64 in
  List.iter (fun (r, t) -> Hashtbl.replace env r t) f.f_params;
  let typ_of_operand = function
    | Reg r -> Hashtbl.find_opt env r
    | Imm_int (_, t) -> Some t
    | Imm_float _ -> Some F64
    | Global_addr n -> (
      match find_global m n with
      | Some g -> Some (Ptr g.g_space)
      | None -> Some (Ptr Global))
    | Func_addr _ -> Some (Ptr Global)
    | Undef t -> Some t
  in
  let def_typ = function
    | Binop (_, op, a, _) -> (
      match op with
      | Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax -> Some F64
      | _ -> typ_of_operand a)
    | Unop (_, op, a) -> (
      match op with
      | Not -> typ_of_operand a
      | Fneg | Fsqrt | Fexp | Flog | Fsin | Fcos | Fabs | Sitofp -> Some F64
      | Fptosi | Zext32to64 -> Some I64
      | Trunc64to32 -> Some I32)
    | Icmp _ | Fcmp _ -> Some I1
    | Select (_, t, _, _, _) | Load (_, t, _) | Atomic (_, _, t, _, _) ->
      Some t
    | Ptradd (_, base, _) -> typ_of_operand base
    | Alloca _ -> Some (Ptr Local)
    | Intrinsic _ -> Some I64
    | Malloc _ -> Some (Ptr Global)
    | Call (_, callee, _) -> (
      match find_func m callee with Some g -> g.f_ret | None -> Some I64)
    | Call_indirect (_, rt, _, _) -> rt
    | Store _ | Barrier _ | Assume _ | Trap _ | Free _ | Debug_print _ ->
      None
  in
  for _ = 1 to 4 do
    List.iter
      (fun b ->
        List.iter (fun p -> Hashtbl.replace env p.phi_reg p.phi_typ) b.b_phis;
        List.iter
          (fun i ->
            match inst_def i with
            | Some r -> (
              match def_typ i with
              | Some t -> Hashtbl.replace env r t
              | None -> ())
            | None -> ())
          b.b_insts)
      f.f_blocks
  done;
  env

let zero_of = function
  | (I1 | I32 | I64) as t -> Imm_int (0L, t)
  | F64 -> Imm_float 0.0
  | Ptr _ as t -> Undef t

(* substitute [value] for every use of register [r] in [f] *)
let subst_reg (f : func) r value : func =
  let sub = function Reg r' when r' = r -> value | o -> o in
  { f with
    f_blocks =
      List.map
        (fun b ->
          { b with
            b_phis = List.map (map_phi_operands sub) b.b_phis;
            b_insts = List.map (map_inst_operands sub) b.b_insts;
            b_term = map_term_operands sub b.b_term })
        f.f_blocks }

(* drop blocks unreachable from the entry and filter phi incomings down
   to the surviving predecessors *)
let prune_unreachable (f : func) : func =
  let reach = Hashtbl.create 16 in
  let rec visit l =
    if not (Hashtbl.mem reach l) then begin
      Hashtbl.replace reach l ();
      match find_block f l with
      | Some b -> List.iter visit (term_succs b.b_term)
      | None -> ()
    end
  in
  (match f.f_blocks with b :: _ -> visit b.b_label | [] -> ());
  let blocks = List.filter (fun b -> Hashtbl.mem reach b.b_label) f.f_blocks in
  let preds_of l =
    List.filter_map
      (fun b -> if List.mem l (term_succs b.b_term) then Some b.b_label else None)
      blocks
  in
  { f with
    f_blocks =
      List.map
        (fun b ->
          let preds = preds_of b.b_label in
          { b with
            b_phis =
              List.map
                (fun p ->
                  { p with
                    phi_incoming =
                      List.filter (fun (l, _) -> List.mem l preds) p.phi_incoming })
                b.b_phis })
        blocks }

(* every one-step reduction of the kernel function: branch collapses
   first (they delete whole regions), then single-instruction deletions *)
let candidates (m : modul) : modul list =
  match List.find_opt (fun f -> f.f_is_kernel) m.m_funcs with
  | None -> []
  | Some f ->
    let env = reg_types m f in
    let branch_cands =
      List.concat_map
        (fun b ->
          match b.b_term with
          | Cond_br (_, l1, l2) ->
            List.map
              (fun tgt ->
                let f' =
                  { f with
                    f_blocks =
                      List.map
                        (fun b' ->
                          if b'.b_label = b.b_label then
                            { b' with b_term = Br tgt }
                          else b')
                        f.f_blocks }
                in
                update_func m (prune_unreachable f'))
              (if l1 = l2 then [ l1 ] else [ l1; l2 ])
          | _ -> [])
        f.f_blocks
    in
    let inst_cands =
      List.concat_map
        (fun b ->
          List.mapi
            (fun i inst ->
              let f' =
                { f with
                  f_blocks =
                    List.map
                      (fun b' ->
                        if b'.b_label = b.b_label then
                          { b' with
                            b_insts =
                              List.filteri (fun j _ -> j <> i) b'.b_insts }
                        else b')
                      f.f_blocks }
              in
              let f' =
                match inst_def inst with
                | Some r ->
                  let t =
                    match Hashtbl.find_opt env r with Some t -> t | None -> I64
                  in
                  subst_reg f' r (zero_of t)
                | None -> f'
              in
              update_func m f')
            b.b_insts)
        f.f_blocks
    in
    branch_cands @ inst_cands

let count_insts (m : modul) : int =
  match List.find_opt (fun f -> f.f_is_kernel) m.m_funcs with
  | None -> 0
  | Some f ->
    List.fold_left (fun acc b -> acc + List.length b.b_insts) 0 f.f_blocks

(* greedy shrink: take the first candidate that still verifies and
   reproduces the signature; restart from it; stop when none does *)
let shrink ?plant ?sweep (m : modul) ~signature : modul =
  let ok c =
    match Verifier.check c with
    | Ok () -> signature_of ?plant ?sweep c = Some signature
    | Error _ -> false
  in
  let rec go m rounds =
    if rounds = 0 then m
    else
      match List.find_opt ok (candidates m) with
      | Some c -> go c (rounds - 1)
      | None -> m
  in
  go m 400

(* ---- the campaign ----------------------------------------------------- *)

type failure = {
  fl_seed : int;
  fl_signature : string;
  fl_insts_before : int;
  fl_insts_after : int;
  fl_module : modul;
}

type result = { fz_seeds : int; fz_failures : failure list }

let repro_text (fl : failure) : string =
  Fmt.str
    "; ozo fuzz repro@.; seed %d@.; signature %s@.; shrunk %d -> %d \
     instructions@.%a"
    fl.fl_seed fl.fl_signature fl.fl_insts_before fl.fl_insts_after
    Printer.pp_module fl.fl_module

let run ?plant ?sweep ?(on_case = fun _ _ -> ()) ~seeds ~base_seed () : result =
  let failures = ref [] in
  for i = 0 to seeds - 1 do
    let seed = base_seed + i in
    let m = Irgen.generate ~seed in
    let sg =
      match Verifier.check m with
      | Ok () -> signature_of ?plant ?sweep m
      | Error vs ->
        Some
          (Fmt.str "generator-invalid:%a"
             (Fmt.list ~sep:Fmt.semi Verifier.pp_violation)
             vs)
    in
    (match sg with
    | None -> ()
    | Some signature ->
      let before = count_insts m in
      let small = shrink ?plant ?sweep m ~signature in
      failures :=
        { fl_seed = seed; fl_signature = signature; fl_insts_before = before;
          fl_insts_after = count_insts small; fl_module = small }
        :: !failures);
    on_case seed (sg = None)
  done;
  { fz_seeds = seeds; fz_failures = List.rev !failures }
