(* Crash-safe campaign journal: one JSON object per line, appended and
   flushed (+fsynced) after every completed measurement, so a campaign
   killed at any instant loses at most the row in flight.

   Line 1 is a header carrying a fingerprint of the campaign
   configuration (proxy list, repeats, injection, ...); resume refuses a
   journal whose fingerprint does not match, so a stale file can never
   silently splice rows from a different campaign. Every following line
   is {"seq": N, "m": {...}} with the *complete* measurement — including
   the structured fault and all engine counters — so replayed rows
   render byte-identically through [Report.pp_csv].

   [load] tolerates a torn final line (the row being written when the
   process died): it is simply dropped and re-measured on resume. A
   malformed line anywhere earlier is a hard error. *)

module E = Ozo_harness.Experiments
module Fault = Ozo_vgpu.Fault
module Counters = Ozo_vgpu.Counters
module Engine = Ozo_vgpu.Engine
module Json = Ozo_obs.Json

(* ---- encoding --------------------------------------------------------- *)

let esc b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* %.17g round-trips every finite float64 through decimal exactly, which
   is what makes resumed CSV output byte-identical *)
let num b f = Buffer.add_string b (Printf.sprintf "%.17g" f)
let int_ b i = Buffer.add_string b (string_of_int i)
let bool_ b v = Buffer.add_string b (if v then "true" else "false")

let opt b enc = function None -> Buffer.add_string b "null" | Some v -> enc b v

let list_ b enc xs =
  Buffer.add_char b '[';
  List.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char b ',';
      enc b x)
    xs;
  Buffer.add_char b ']'

(* object writer: the field callback takes a pre-bound encoder thunk so
   one [fields] closure can mix value types *)
let obj b fields =
  Buffer.add_char b '{';
  let first = ref true in
  fields (fun name enc ->
      if not !first then Buffer.add_char b ',';
      first := false;
      esc b name;
      Buffer.add_char b ':';
      enc b);
  Buffer.add_char b '}'

let enc_access b (a : Fault.access) =
  obj b (fun f ->
      f "ptr" (fun b -> int_ b a.Fault.a_ptr);
      f "space" (fun b -> esc b a.Fault.a_space);
      f "offset" (fun b -> int_ b a.Fault.a_offset);
      f "bytes" (fun b -> int_ b a.Fault.a_bytes))

let enc_fault b (ft : Fault.t) =
  obj b (fun f ->
      f "kind" (fun b -> esc b (Fault.kind_name ft.Fault.f_kind));
      f "msg" (fun b -> esc b ft.Fault.f_msg);
      f "fn" (fun b -> opt b esc ft.Fault.f_fn);
      f "blk" (fun b -> opt b esc ft.Fault.f_blk);
      f "idx" (fun b -> opt b int_ ft.Fault.f_idx);
      f "team" (fun b -> opt b int_ ft.Fault.f_team);
      f "warp" (fun b -> opt b int_ ft.Fault.f_warp);
      (* int64 as a decimal string: the float-backed JSON number type
         cannot hold a full 64-bit lane mask exactly *)
      f "lanes" (fun b -> esc b (Int64.to_string ft.Fault.f_lanes));
      f "access" (fun b -> opt b enc_access ft.Fault.f_access);
      f "threads" (fun b -> list_ b int_ ft.Fault.f_threads))

let fault_to_json (ft : Fault.t) : string =
  let b = Buffer.create 128 in
  enc_fault b ft;
  Buffer.contents b

let enc_counters b (c : Counters.t) =
  list_ b int_
    [ c.Counters.warp_instructions; c.Counters.lane_instructions;
      c.Counters.barriers; c.Counters.aligned_barriers;
      c.Counters.global_transactions; c.Counters.shared_accesses;
      c.Counters.local_accesses; c.Counters.atomics; c.Counters.mallocs;
      c.Counters.calls; c.Counters.divergent_branches; c.Counters.cycles;
      c.Counters.traps ]

let enc_hotspot b (h : Engine.hotspot) =
  obj b (fun f ->
      f "fn" (fun b -> esc b h.Engine.h_fn);
      f "blk" (fun b -> esc b h.Engine.h_blk);
      f "hits" (fun b -> int_ b h.Engine.h_hits);
      f "winsts" (fun b -> int_ b h.Engine.h_winsts);
      f "cycles" (fun b -> int_ b h.Engine.h_cycles))

let enc_measurement b (m : E.measurement) =
  obj b (fun f ->
      f "proxy" (fun b -> esc b m.E.r_proxy);
      f "build" (fun b -> esc b m.E.r_build);
      f "machine" (fun b -> esc b m.E.r_machine);
      f "cycles" (fun b -> num b m.E.r_cycles);
      f "regs" (fun b -> int_ b m.E.r_regs);
      f "smem" (fun b -> int_ b m.E.r_smem);
      f "occupancy" (fun b -> num b m.E.r_occupancy);
      f "spills" (fun b -> int_ b m.E.r_spills);
      f "counters" (fun b -> enc_counters b m.E.r_counters);
      f "check" (fun b ->
          opt b esc
            (match m.E.r_check with Ok () -> None | Error e -> Some e));
      f "flops" (fun b -> num b m.E.r_flops);
      f "fault" (fun b -> opt b enc_fault m.E.r_fault);
      f "fallbacks" (fun b -> list_ b esc m.E.r_fallbacks);
      f "phase_us" (fun b ->
          list_ b
            (fun b (n, v) ->
              Buffer.add_char b '[';
              esc b n;
              Buffer.add_char b ',';
              num b v;
              Buffer.add_char b ']')
            m.E.r_phase_us);
      f "hotspots" (fun b -> list_ b enc_hotspot m.E.r_hotspots);
      f "cache" (fun b ->
          opt b (fun b (h, mi, inv) -> list_ b int_ [ h; mi; inv ]) m.E.r_cache);
      f "retries" (fun b -> int_ b m.E.r_retries);
      f "deadline" (fun b -> bool_ b m.E.r_deadline_hit);
      f "breaker" (fun b -> esc b m.E.r_breaker);
      f "exec" (fun b -> esc b m.E.r_exec);
      f "domains" (fun b -> int_ b m.E.r_domains);
      f "cachedisp" (fun b -> esc b m.E.r_cache_disp);
      f "latency_us" (fun b -> num b m.E.r_latency_us))

(* ---- decoding --------------------------------------------------------- *)

let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e

let mem name j = Json.member name j
let want name = function Some v -> Ok v | None -> Error ("missing field " ^ name)

let dec_str name j =
  match mem name j with
  | Some (Json.Str s) -> Ok s
  | _ -> Error ("bad string field " ^ name)

let dec_num name j =
  match mem name j with
  | Some (Json.Num f) -> Ok f
  | _ -> Error ("bad number field " ^ name)

let dec_int name j =
  let* f = dec_num name j in
  Ok (int_of_float f)

let dec_bool name j =
  match mem name j with
  | Some (Json.Bool v) -> Ok v
  | _ -> Error ("bad bool field " ^ name)

let dec_opt name dec j =
  match mem name j with
  | Some Json.Null | None -> Ok None
  | Some v -> (
    match dec v with Ok x -> Ok (Some x) | Error e -> Error e)

let dec_str_v = function Json.Str s -> Ok s | _ -> Error "expected string"
let dec_int_v = function Json.Num f -> Ok (int_of_float f) | _ -> Error "expected number"

let dec_list name dec j =
  match mem name j with
  | Some (Json.Arr xs) ->
    List.fold_left
      (fun acc x ->
        let* acc = acc in
        let* v = dec x in
        Ok (v :: acc))
      (Ok []) xs
    |> Result.map List.rev
  | _ -> Error ("bad array field " ^ name)

let dec_access j : (Fault.access, string) result =
  let* ptr = dec_int "ptr" j in
  let* space = dec_str "space" j in
  let* offset = dec_int "offset" j in
  let* bytes = dec_int "bytes" j in
  Ok { Fault.a_ptr = ptr; a_space = space; a_offset = offset; a_bytes = bytes }

let fault_of_json (j : Json.t) : (Fault.t, string) result =
  let* kind_s = dec_str "kind" j in
  let* kind = want "kind" (Fault.kind_of_name kind_s) in
  let* msg = dec_str "msg" j in
  let* fn = dec_opt "fn" dec_str_v j in
  let* blk = dec_opt "blk" dec_str_v j in
  let* idx = dec_opt "idx" dec_int_v j in
  let* team = dec_opt "team" dec_int_v j in
  let* warp = dec_opt "warp" dec_int_v j in
  let* lanes_s = dec_str "lanes" j in
  let* lanes =
    match Int64.of_string_opt lanes_s with
    | Some v -> Ok v
    | None -> Error "bad lanes"
  in
  let* access = dec_opt "access" dec_access j in
  let* threads = dec_list "threads" dec_int_v j in
  Ok
    { Fault.f_kind = kind; f_msg = msg; f_fn = fn; f_blk = blk; f_idx = idx;
      f_team = team; f_warp = warp; f_lanes = lanes; f_access = access;
      f_threads = threads }

let dec_counters j : (Counters.t, string) result =
  let* xs = dec_list "counters" dec_int_v j in
  match xs with
  | [ wi; li; ba; ab; gt; sa; la; at; ml; ca; db; cy; tr ] ->
    let c = Counters.create () in
    c.Counters.warp_instructions <- wi;
    c.Counters.lane_instructions <- li;
    c.Counters.barriers <- ba;
    c.Counters.aligned_barriers <- ab;
    c.Counters.global_transactions <- gt;
    c.Counters.shared_accesses <- sa;
    c.Counters.local_accesses <- la;
    c.Counters.atomics <- at;
    c.Counters.mallocs <- ml;
    c.Counters.calls <- ca;
    c.Counters.divergent_branches <- db;
    c.Counters.cycles <- cy;
    c.Counters.traps <- tr;
    Ok c
  | _ -> Error "bad counters arity"

let dec_hotspot j : (Engine.hotspot, string) result =
  let* fn = dec_str "fn" j in
  let* blk = dec_str "blk" j in
  let* hits = dec_int "hits" j in
  let* winsts = dec_int "winsts" j in
  let* cycles = dec_int "cycles" j in
  Ok
    { Engine.h_fn = fn; h_blk = blk; h_hits = hits; h_winsts = winsts;
      h_cycles = cycles }

let dec_phase j =
  match j with
  | Json.Arr [ Json.Str n; Json.Num v ] -> Ok (n, v)
  | _ -> Error "bad phase entry"

let measurement_of_json (j : Json.t) : (E.measurement, string) result =
  let* proxy = dec_str "proxy" j in
  let* build = dec_str "build" j in
  let* cycles = dec_num "cycles" j in
  let* regs = dec_int "regs" j in
  let* smem = dec_int "smem" j in
  let* occupancy = dec_num "occupancy" j in
  let* spills = dec_int "spills" j in
  let* counters = dec_counters j in
  let* check = dec_opt "check" dec_str_v j in
  let* flops = dec_num "flops" j in
  let* fault = dec_opt "fault" fault_of_json j in
  let* fallbacks = dec_list "fallbacks" dec_str_v j in
  let* phase_us = dec_list "phase_us" dec_phase j in
  let* hotspots = dec_list "hotspots" dec_hotspot j in
  let* cache =
    dec_opt "cache"
      (function
        | Json.Arr [ Json.Num h; Json.Num m; Json.Num i ] ->
          Ok (int_of_float h, int_of_float m, int_of_float i)
        | _ -> Error "bad cache triple")
      j
  in
  let* retries = dec_int "retries" j in
  let* deadline = dec_bool "deadline" j in
  let* breaker = dec_str "breaker" j in
  (* absent in journals written before the threaded-code executor *)
  let* exec =
    match mem "exec" j with None -> Ok "ir" | Some _ -> dec_str "exec" j
  in
  (* absent in journals written before the domain-parallel engine *)
  let* domains =
    match mem "domains" j with None -> Ok 1 | Some _ -> dec_int "domains" j
  in
  (* absent in journals written before the serving tier *)
  let* cache_disp =
    match mem "cachedisp" j with None -> Ok "-" | Some _ -> dec_str "cachedisp" j
  in
  let* latency_us =
    match mem "latency_us" j with None -> Ok 0.0 | Some _ -> dec_num "latency_us" j
  in
  (* absent in journals written before the portability matrix *)
  let* machine =
    match mem "machine" j with None -> Ok "vgpu" | Some _ -> dec_str "machine" j
  in
  Ok
    { E.r_proxy = proxy; r_build = build; r_machine = machine; r_cycles = cycles;
      r_regs = regs;
      r_smem = smem; r_occupancy = occupancy; r_spills = spills;
      r_counters = counters;
      r_check = (match check with None -> Ok () | Some e -> Error e);
      r_flops = flops; r_fault = fault; r_fallbacks = fallbacks;
      r_phase_us = phase_us; r_hotspots = hotspots; r_cache = cache;
      r_retries = retries; r_deadline_hit = deadline; r_breaker = breaker;
      r_exec = exec; r_domains = domains; r_cache_disp = cache_disp;
      r_latency_us = latency_us }

(* ---- the journal file ------------------------------------------------- *)

type writer = { w_oc : out_channel }

let sync oc =
  flush oc;
  (* fsync so a SIGKILL (or power loss) cannot lose an acked row *)
  try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ()

let start ~path ~fingerprint : writer =
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 path in
  let b = Buffer.create 128 in
  obj b (fun f ->
      f "journal" (fun b -> esc b "ozo-campaign");
      f "version" (fun b -> int_ b 1);
      f "fingerprint" (fun b -> esc b fingerprint));
  output_string oc (Buffer.contents b);
  output_char oc '\n';
  sync oc;
  { w_oc = oc }

let reopen ~path : writer =
  { w_oc = open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path }

let append (w : writer) ~seq (m : E.measurement) =
  let b = Buffer.create 512 in
  obj b (fun f ->
      f "seq" (fun b -> int_ b seq);
      f "m" (fun b -> enc_measurement b m));
  output_string w.w_oc (Buffer.contents b);
  output_char w.w_oc '\n';
  sync w.w_oc

let close (w : writer) = close_out w.w_oc

type entry = { e_seq : int; e_m : E.measurement }

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let load ~path : (string * entry list, string) result =
  if not (Sys.file_exists path) then Error ("no such journal: " ^ path)
  else
    match read_lines path with
    | [] -> Error "empty journal"
    | header :: rows ->
      let* hj =
        match Json.parse header with
        | Ok j -> Ok j
        | Error e -> Error ("bad journal header: " ^ e)
      in
      let* fp = dec_str "fingerprint" hj in
      let n = List.length rows in
      let rec go i acc = function
        | [] -> Ok (List.rev acc)
        | line :: rest -> (
          let parsed =
            let* j =
              match Json.parse line with
              | Ok j -> Ok j
              | Error e -> Error ("bad journal line: " ^ e)
            in
            let* seq = dec_int "seq" j in
            let* mj = want "m" (mem "m" j) in
            let* m = measurement_of_json mj in
            Ok { e_seq = seq; e_m = m }
          in
          match parsed with
          | Ok e -> go (i + 1) (e :: acc) rest
          | Error err ->
            (* a torn final line is the expected crash artifact; anything
               earlier means real corruption *)
            if i = n - 1 then Ok (List.rev acc) else Error err)
      in
      let* entries = go 0 [] rows in
      Ok (fp, entries)
