(* Supervised execution for long measurement campaigns.

   [supervise] wraps one (proxy × build) measurement so that nothing a
   single row does can take the campaign down:

   - any exception escaping the task (a compiler or backend crash, not
     just an engine fault) is captured as a structured [Fault.Internal]
     dead row instead of unwinding the whole run;
   - every attempt gets a fresh wall-clock watchdog (threaded down to
     the engine scheduler via [Device.Launch_opts.watchdog]) so a wedged
     launch surfaces as [Fault.Deadline] within [sv_deadline_s] seconds;
   - rows that failed with a *transient* fault kind are retried up to
     [sv_retries] times with seeded exponential backoff — the campaign
     applies fault injection only on attempt 0, so an injected transient
     re-validates clean on retry;
   - a per-(proxy × build) circuit breaker counts consecutive failures
     and, once [sv_breaker_threshold] is reached, skips further repeats
     of that configuration outright ("skipped" rows), keeping a
     known-dead config from burning the rest of the campaign's budget.

   The clock and sleep are injectable so every state transition is
   testable without wall-clock time; the PRNG seeding makes the backoff
   jitter sequence reproducible. *)

module E = Ozo_harness.Experiments
module Fault = Ozo_vgpu.Fault
module Trace = Ozo_obs.Trace
module Prng = Ozo_util.Prng

type opts = {
  sv_retries : int;             (* retries after the first attempt *)
  sv_backoff_s : float;         (* backoff base; doubles per attempt *)
  sv_deadline_s : float;        (* per-launch watchdog; <= 0 disables *)
  sv_breaker_threshold : int;   (* consecutive failures before open *)
  sv_seed : int;                (* backoff-jitter PRNG seed *)
  sv_transient : Fault.kind list; (* fault kinds worth retrying *)
}

let default =
  { sv_retries = 2; sv_backoff_s = 0.05; sv_deadline_s = 10.0;
    sv_breaker_threshold = 3; sv_seed = 42; sv_transient = [ Fault.Deadline ] }

type t = {
  t_opts : opts;
  t_clock : unit -> float;
  t_sleep : float -> unit;
  t_prng : Prng.t;
  t_trace : Trace.ctx;
  (* consecutive-failure count per (proxy, build) *)
  t_breaker : (string * string, int) Hashtbl.t;
}

let create ?clock ?sleep ?(trace = Trace.null) (opts : opts) : t =
  { t_opts = opts;
    t_clock = (match clock with Some c -> c | None -> Unix.gettimeofday);
    t_sleep =
      (match sleep with
      | Some s -> s
      | None -> fun d -> if d > 0.0 then Unix.sleepf d);
    t_prng = Prng.create opts.sv_seed;
    t_trace = trace;
    t_breaker = Hashtbl.create 16 }

let failures t ~proxy ~build =
  match Hashtbl.find_opt t.t_breaker (proxy, build) with Some n -> n | None -> 0

let breaker_open t ~proxy ~build =
  t.t_opts.sv_breaker_threshold > 0
  && failures t ~proxy ~build >= t.t_opts.sv_breaker_threshold

(* Feed one completed measurement into the breaker; used both after live
   rows and when replaying a journal on resume, so a resumed campaign
   restarts with exactly the breaker state it died with. *)
let note t ~proxy ~build (m : E.measurement) =
  if m.E.r_breaker <> "skipped" then
    match m.E.r_check with
    | Ok () -> Hashtbl.replace t.t_breaker (proxy, build) 0
    | Error _ ->
      Hashtbl.replace t.t_breaker (proxy, build) (failures t ~proxy ~build + 1)

(* a fresh watchdog armed now; one per attempt, so retries get a full
   deadline of their own *)
let watchdog t : (unit -> bool) option =
  if t.t_opts.sv_deadline_s <= 0.0 then None
  else begin
    let deadline = t.t_clock () +. t.t_opts.sv_deadline_s in
    Some (fun () -> t.t_clock () > deadline)
  end

(* exponential backoff with seeded jitter in [0.5, 1.5) of the base *)
let backoff t attempt =
  t.t_opts.sv_backoff_s
  *. float_of_int (1 lsl attempt)
  *. (0.5 +. Prng.float t.t_prng)

let transient t kind = List.mem kind t.t_opts.sv_transient

let breaker_state t ~proxy ~build =
  if breaker_open t ~proxy ~build then "open" else "closed"

let supervise t ~proxy ~build
    (task : attempt:int -> watchdog:(unit -> bool) option -> E.measurement) :
    E.measurement =
  if breaker_open t ~proxy ~build then begin
    let f =
      Fault.make Fault.Internal
        (Printf.sprintf
           "circuit breaker open for %s/%s (%d consecutive failures); \
            configuration skipped"
           proxy build (failures t ~proxy ~build))
    in
    Trace.instant t.t_trace ~cat:"supervisor"
      ~args:
        [ ("proxy", Trace.Str proxy); ("build", Trace.Str build);
          ("breaker", Trace.Str "skipped") ]
      "breaker-skip";
    { (E.dead_measurement ~proxy ~build f) with E.r_breaker = "skipped" }
  end
  else begin
    let deadline_hit = ref false in
    let rec go attempt =
      let m =
        try task ~attempt ~watchdog:(watchdog t)
        with e ->
          (* host-side crash: the compiler/backend blew up outside the
             engine's fault discipline — capture, don't unwind *)
          let f =
            Fault.make Fault.Internal
              ("host-side crash: " ^ Printexc.to_string e)
          in
          E.dead_measurement ~proxy ~build f
      in
      (match m.E.r_fault with
      | Some f when f.Fault.f_kind = Fault.Deadline -> deadline_hit := true
      | _ -> ());
      match (m.E.r_check, m.E.r_fault) with
      | Error _, Some f
        when transient t f.Fault.f_kind && attempt < t.t_opts.sv_retries ->
        let d = backoff t attempt in
        Trace.instant t.t_trace ~cat:"supervisor"
          ~args:
            [ ("proxy", Trace.Str proxy); ("build", Trace.Str build);
              ("attempt", Trace.Int attempt);
              ("fault", Trace.Str (Fault.kind_name f.Fault.f_kind));
              ("backoff_s", Trace.Float d) ]
          "retry";
        t.t_sleep d;
        go (attempt + 1)
      | _ -> (m, attempt)
    in
    let m, attempts = go 0 in
    note t ~proxy ~build m;
    let st = breaker_state t ~proxy ~build in
    let m =
      { m with E.r_retries = attempts; r_deadline_hit = !deadline_hit;
        r_breaker = st }
    in
    if attempts > 0 || !deadline_hit || st <> "closed" then
      Trace.instant t.t_trace ~cat:"supervisor"
        ~args:
          [ ("proxy", Trace.Str proxy); ("build", Trace.Str build);
            ("retries", Trace.Int attempts);
            ("deadline_hit", Trace.Str (if !deadline_hit then "y" else "n"));
            ("breaker", Trace.Str st) ]
        "supervised";
    m
  end
