(* The PRNG moved to [Ozo_util.Prng] so the vGPU fault-injection layer can
   share it; this alias keeps the proxy generators' [Prng.*] calls intact. *)

include Ozo_util.Prng
