(* Table/figure formatting for the reproduction of the paper's evaluation
   section. Output mirrors the paper's presentation: Fig. 10 as relative
   speedups over the Old RT baseline, Fig. 11 as the kernel-time /
   registers / shared-memory table, Fig. 12 as GridMini GFlops, Fig. 13
   as the per-optimization ablation. *)

open Experiments

let baseline_cycles (ms : measurement list) =
  match List.find_opt (fun m -> m.r_build = "Old RT (Nightly)") ms with
  | Some m -> m.r_cycles
  | None -> (List.hd ms).r_cycles

let check_str = function Ok () -> "ok" | Error e -> "FAILED: " ^ e

(* row status including graceful degradation: a row that faulted on its
   primary configuration but recovered at a weaker one reads e.g.
   "ok (fallback nightly after divergent-barrier)" *)
let status_str (m : measurement) =
  match (m.r_fault, m.r_fallbacks) with
  | None, _ -> check_str m.r_check
  | Some f, [] -> check_str m.r_check ^ " (" ^ Ozo_vgpu.Fault.kind_name f.Ozo_vgpu.Fault.f_kind ^ ")"
  | Some f, fbs ->
    Fmt.str "%s (fallback %s after %s)" (check_str m.r_check)
      (List.nth fbs (List.length fbs - 1))
      (Ozo_vgpu.Fault.kind_name f.Ozo_vgpu.Fault.f_kind)

(* one detail line per degraded row, printed under the tables *)
let pp_faults ppf (ms : measurement list) =
  List.iter
    (fun m ->
      match m.r_fault with
      | None -> ()
      | Some f ->
        Fmt.pf ppf "  ! %-26s %s@." m.r_build (Ozo_vgpu.Fault.to_line f);
        if m.r_fallbacks <> [] then
          Fmt.pf ppf "    fallback chain: %s@." (String.concat " -> " m.r_fallbacks))
    ms

let bar width frac =
  let n = int_of_float (frac *. float_of_int width) in
  String.make (max 0 (min width n)) '#'

(* Fig. 10-style: relative performance (higher is better), baseline = 1.0 *)
let pp_fig10 ppf (title, ms) =
  let base = baseline_cycles ms in
  Fmt.pf ppf "@.%s — relative performance (Old RT Nightly = 1.00)@." title;
  Fmt.pf ppf "  %-26s %9s  %-40s %s@." "build" "speedup" "" "check";
  List.iter
    (fun m ->
      let speedup = base /. m.r_cycles in
      Fmt.pf ppf "  %-26s %8.2fx  %-40s %s@." m.r_build speedup
        (bar 40 (speedup /. 3.0))
        (status_str m))
    ms;
  pp_faults ppf ms

(* Fig. 11-style table *)
let pp_fig11 ppf (title, ms) =
  Fmt.pf ppf "@.%s — kernel time, registers, shared memory (Fig. 11)@." title;
  Fmt.pf ppf "  %-26s %-6s %14s %7s %9s %6s %7s %10s %9s %4s@." "build" "mach"
    "ktime(cyc)" "#regs" "smem(B)" "occup" "spills" "warp-insts" "barriers" "dom";
  List.iter
    (fun m ->
      Fmt.pf ppf "  %-26s %-6s %14.0f %7d %9d %6.2f %7d %10d %9d %4d@." m.r_build
        m.r_machine
        m.r_cycles m.r_regs m.r_smem m.r_occupancy m.r_spills
        m.r_counters.Ozo_vgpu.Counters.warp_instructions
        m.r_counters.Ozo_vgpu.Counters.barriers m.r_domains)
    ms;
  pp_faults ppf ms

(* Fig. 12-style: GridMini "GFlops" (useful flops per simulated cycle,
   arbitrary units — only ratios are meaningful) *)
let pp_fig12 ppf ms =
  Fmt.pf ppf "@.gridmini — achieved flops/cycle (Fig. 12; relative units)@.";
  Fmt.pf ppf "  %-26s %12s  %-40s@." "build" "flops/cyc" "";
  let best =
    List.fold_left (fun acc m -> Float.max acc (m.r_flops /. m.r_cycles)) 0.0 ms
  in
  List.iter
    (fun m ->
      let fpc = m.r_flops /. m.r_cycles in
      Fmt.pf ppf "  %-26s %12.3f  %-40s@." m.r_build fpc (bar 40 (fpc /. best)))
    ms

(* Fig. 13-style ablation: performance with one optimization disabled,
   relative to the full pipeline *)
let pp_ablation ppf (title, rows) =
  Fmt.pf ppf "@.%s — ablation: one co-designed optimization disabled (Fig. 13 / §V-C)@."
    title;
  match rows with
  | [] -> ()
  | (_, full) :: _ ->
    Fmt.pf ppf "  %-38s %14s %9s  %s@." "configuration" "ktime(cyc)" "vs full" "check";
    List.iter
      (fun (name, m) ->
        Fmt.pf ppf "  %-38s %14.0f %8.1f%%  %s@."
          (if name = "full" then "full pipeline" else "w/o " ^ name)
          m.r_cycles
          (100.0 *. m.r_cycles /. full.r_cycles)
          (check_str m.r_check))
      rows

(* per-phase wall-clock columns (host microseconds from the trace), one
   row per build; printed only when the campaign ran with tracing. Both
   the table and the CSV derive their phase columns from the single
   [Experiments.phase_names] source, so adding an engine phase cannot
   leave header and rows disagreeing. *)
let phase_us m name =
  match List.assoc_opt name m.r_phase_us with Some v -> v | None -> 0.0

let cache_str m =
  match m.r_cache with
  | None -> "-"
  | Some (h, ms_, _) ->
    let total = h + ms_ in
    if total = 0 then "0/0"
    else Fmt.str "%d/%d (%.0f%%)" h ms_ (100.0 *. float_of_int h /. float_of_int total)

let pp_phases ppf (title, ms) =
  if List.exists (fun m -> m.r_phase_us <> []) ms then begin
    Fmt.pf ppf "@.%s — host-side phase times (us, from trace)@." title;
    Fmt.pf ppf "  %-26s" "build";
    List.iter (fun n -> Fmt.pf ppf " %10s" n) phase_names;
    Fmt.pf ppf " %18s@." "an.cache hit/miss";
    List.iter
      (fun m ->
        if m.r_phase_us <> [] then begin
          Fmt.pf ppf "  %-26s" m.r_build;
          List.iter (fun n -> Fmt.pf ppf " %10.1f" (phase_us m n)) phase_names;
          Fmt.pf ppf " %18s@." (cache_str m)
        end)
      ms
  end

(* per-block hot spots from the opt-in profile, hottest first *)
let pp_hotspots ppf (m : measurement) =
  if m.r_hotspots <> [] then begin
    Fmt.pf ppf "@.%s / %s — hottest blocks@." m.r_proxy m.r_build;
    Fmt.pf ppf "  %-24s %-12s %8s %10s %10s@." "function" "block" "hits" "winsts"
      "cycles";
    List.iter
      (fun h ->
        Fmt.pf ppf "  %-24s %-12s %8d %10d %10d@." h.Ozo_vgpu.Engine.h_fn
          h.Ozo_vgpu.Engine.h_blk h.Ozo_vgpu.Engine.h_hits
          h.Ozo_vgpu.Engine.h_winsts h.Ozo_vgpu.Engine.h_cycles)
      m.r_hotspots
  end

(* supervised-execution columns, printed when a campaign ran under the
   resilience supervisor and anything noteworthy happened *)
let pp_resilience ppf (title, ms) =
  let noteworthy m =
    m.r_retries > 0 || m.r_deadline_hit || m.r_breaker <> "closed"
  in
  if List.exists noteworthy ms then begin
    Fmt.pf ppf "@.%s — supervisor activity@." title;
    Fmt.pf ppf "  %-26s %8s %9s %8s@." "build" "retries" "deadline" "breaker";
    List.iter
      (fun m ->
        if noteworthy m then
          Fmt.pf ppf "  %-26s %8d %9s %8s@." m.r_build m.r_retries
            (if m.r_deadline_hit then "hit" else "-")
            m.r_breaker)
      ms
  end

(* machine-readable one-line records, convenient for regression diffing.
   The column list is the one source of truth: the header prints it and
   the row writer is structured prefix / phases / suffix around the same
   [phase_names], with a column-count assertion in the test suite.
   The trailing cache/latency_us pair records how the row ran under the
   serving tier ("-"/0.0 on the batch path); regression diffs against
   the batch harness strip these two plus domains. *)
let csv_columns =
  [ "proxy"; "build"; "machine"; "cycles"; "regs"; "smem"; "occupancy"; "spills";
    "warp_insts"; "barriers"; "check"; "fault"; "fallback" ]
  @ List.map (fun n -> n ^ "_us") phase_names
  @ [ "cache_hits"; "cache_misses"; "retries"; "deadline"; "breaker"; "exec";
      "domains"; "cache"; "latency_us" ]

let pp_csv_header ppf () = Fmt.pf ppf "%s@." (String.concat "," csv_columns)

let pp_csv ppf m =
  Fmt.pf ppf "%s,%s,%s,%.0f,%d,%d,%.3f,%d,%d,%d,%s,%s,%s"
    m.r_proxy
    m.r_build m.r_machine m.r_cycles m.r_regs m.r_smem m.r_occupancy m.r_spills
    m.r_counters.Ozo_vgpu.Counters.warp_instructions
    m.r_counters.Ozo_vgpu.Counters.barriers
    (match m.r_check with Ok () -> "ok" | Error _ -> "fail")
    (match m.r_fault with
    | None -> "-"
    | Some f -> Ozo_vgpu.Fault.kind_name f.Ozo_vgpu.Fault.f_kind)
    (match m.r_fallbacks with [] -> "-" | fbs -> String.concat ">" fbs);
  List.iter (fun n -> Fmt.pf ppf ",%.1f" (phase_us m n)) phase_names;
  Fmt.pf ppf ",%d,%d,%d,%s,%s,%s,%d,%s,%.1f@."
    (match m.r_cache with Some (h, _, _) -> h | None -> 0)
    (match m.r_cache with Some (_, mi, _) -> mi | None -> 0)
    m.r_retries
    (if m.r_deadline_hit then "hit" else "-")
    m.r_breaker m.r_exec m.r_domains m.r_cache_disp m.r_latency_us
