(* The evaluation harness: compiles each proxy under each build
   configuration, runs it on the virtual GPU, validates the results
   against the host reference, and returns the measurements from which
   every figure and table of the paper's Section V is regenerated.

   Build rows follow Fig. 10/11: Old RT (Nightly), New RT (Nightly),
   New RT - w/o Assumptions, New RT, CUDA (NVCC). "New RT" uses the
   oversubscription flags the application can honestly pass
   (Proxy.assume_profile).

   A faulting build row no longer aborts the campaign: [measure] records
   the structured fault and walks the fallback ladder
   (full -> nightly -> baseline -> O0), re-running the proxy at each
   weaker pipeline — without the injection that may have felled the
   primary — until one completes with a valid differential check. A
   silently-corrupting build (launch succeeds, check fails) degrades the
   same way, with a synthetic [Validation] fault. *)

module C = Ozo_core.Codesign
module Proxy = Ozo_proxies.Proxy
module Pipeline = Ozo_opt.Pipeline
module Fault = Ozo_vgpu.Fault
module Trace = Ozo_obs.Trace
module Device = Ozo_vgpu.Device

type measurement = {
  r_proxy : string;
  r_build : string;
  r_machine : string;    (* machine descriptor the row compiled/ran under *)
  r_cycles : float;      (* occupancy-adjusted kernel time, simulated cycles *)
  r_regs : int;
  r_smem : int;
  r_occupancy : float;
  r_spills : int;        (* static spill loads + stores (0 = fit in budget) *)
  r_counters : Ozo_vgpu.Counters.t;
  r_check : (unit, string) result;
  r_flops : float;
  r_fault : Fault.t option;    (* what felled the primary configuration *)
  r_fallbacks : string list;   (* weaker pipelines tried, in order *)
  r_phase_us : (string * float) list; (* compile/decode/execute/readback; [] untraced *)
  r_hotspots : Ozo_vgpu.Engine.hotspot list; (* [] unless profiling *)
  r_cache : (int * int * int) option;
  (* analysis-cache (hits, misses, invalidations) from the last pipeline
     run of the attempt; None untraced *)
  r_retries : int;       (* supervisor retries consumed (0 when unsupervised) *)
  r_deadline_hit : bool; (* some attempt tripped the wall-clock watchdog *)
  r_breaker : string;    (* circuit-breaker state: closed | open | skipped *)
  r_exec : string;
  (* executor the row ran on: "ir" (interpreter) or "vm" (threaded
     code). Like [r_domains], results are bit-identical on both paths;
     this records only how the row ran *)
  r_domains : int;
  (* effective OCaml domains the launch sharded teams over: the request
     capped at the team count, 1 when no launch happened. Results are
     bit-identical at every value; this records only how the row ran *)
  r_cache_disp : string;
  (* compile-cache disposition of the row's primary compile: "hit",
     "miss", or "-" for the uncached one-shot path. Like [r_domains]
     this records only *how* the row ran: a hit returns the identical
     compiled artifact, so every measured field is unchanged *)
  r_latency_us : float;
  (* end-to-end service latency of the request (host microseconds,
     queue admission to readback) when served by the campaign service;
     0.0 on the batch path *)
}

(* user errors outside a measurement (e.g. an unknown proxy name); runtime
   faults inside one are recorded in the measurement instead of raised *)
exception Harness_error of string

(* the "New RT" row honoring the proxy's honest assumption set *)
let new_rt_for (p : Proxy.t) =
  match p.Proxy.p_assume with
  | Proxy.Assume_both -> C.new_rt
  | Proxy.Assume_teams_only -> C.new_rt_teams_only

let builds_for (p : Proxy.t) : C.build list =
  [ C.old_rt_nightly; C.new_rt_nightly; C.new_rt_no_assumptions; new_rt_for p; C.cuda ]

(* canonical CLI/request-file names of the standard build rows *)
let build_names = [ "old-rt"; "new-rt-nightly"; "new-rt-no-assumptions"; "new-rt"; "cuda" ]

let build_of_name (p : Proxy.t) = function
  | "old-rt" -> Ok C.old_rt_nightly
  | "new-rt-nightly" -> Ok C.new_rt_nightly
  | "new-rt-no-assumptions" -> Ok C.new_rt_no_assumptions
  | "new-rt" -> Ok (new_rt_for p)
  | "cuda" -> Ok C.cuda
  | s ->
    Error
      ("unknown build " ^ s ^ " (" ^ String.concat "|" build_names ^ ")")

(* the harness's per-phase columns: compile time plus the engine's three
   launch phases, read back from the trace after a clean attempt *)
let phase_names = [ "compile"; "decode"; "execute"; "readback" ]

let phases_of trace =
  if Trace.enabled trace then
    List.map (fun n -> (n, Trace.last_dur trace n)) phase_names
  else []

(* analysis-cache counters from the most recent pipeline run in the trace *)
let cache_of trace =
  if not (Trace.enabled trace) then None
  else
    match List.rev (Trace.instants_named trace "analysis-cache") with
    | [] -> None
    | i :: _ ->
      let arg n =
        match List.assoc_opt n i.Trace.i_args with
        | Some (Trace.Int v) -> v
        | _ -> 0
      in
      Some (arg "hits", arg "misses", arg "invalidations")

(* A measurement row for a configuration that produced no launch at all
   (dead after every fallback, host-side crash captured by the
   supervisor, or a configuration skipped by an open circuit breaker). *)
let dead_measurement ?(fallbacks = []) ?(machine = "vgpu") ~proxy ~build fault :
    measurement =
  { r_proxy = proxy; r_build = build; r_machine = machine; r_cycles = 0.0; r_regs = 0;
    r_smem = 0; r_occupancy = 0.0; r_spills = 0;
    r_counters = Ozo_vgpu.Counters.create ();
    r_check = Error (Fault.to_line fault); r_flops = 0.0;
    r_fault = Some fault; r_fallbacks = fallbacks; r_phase_us = [];
    r_hotspots = []; r_cache = None;
    r_retries = 0; r_deadline_hit = false; r_breaker = "closed"; r_exec = "ir";
    r_domains = 1; r_cache_disp = "-"; r_latency_us = 0.0 }

(* The request for one standard harness row: the proxy's launch geometry
   under one build, with the measurement options folded into
   [Launch_opts.t]. Everything [measure] used to take as optional
   arguments is a plain field here. *)
let request_for ?(check_assumes = false) ?(sanitize = false) ?inject ?watchdog
    ?(trace = Trace.null) ?(profile = false) ?(domains = 1) ?exec ?machine
    (p : Proxy.t) (b : C.build) : C.Request.t =
  C.Request.make ~proxy:p.Proxy.p_name ~sanitize ?exec ?machine ~build:b
    ~teams:p.Proxy.p_teams ~threads:p.Proxy.p_threads
    ~opts:
      { Device.Launch_opts.default with
        Device.Launch_opts.check_assumes; inject; trace; profile; watchdog;
        domains }
    ()

(* Measure one request. [compiler] is the compile entry point — the
   default is the one-shot [C.compile_request]; the serving tier passes
   a cache-backed replacement of the same signature (fallback-ladder
   recompiles flow through it too, under their own cache keys). *)
let measure_request ?(compiler = C.compile_request) (p : Proxy.t)
    (req : C.Request.t) : measurement =
  let module Rq = C.Request in
  let module Lo = Device.Launch_opts in
  let b = req.Rq.rq_build in
  let trace = Rq.trace req in
  let eff_domains =
    max 1 (min req.Rq.rq_opts.Lo.domains (max 1 req.Rq.rq_teams))
  in
  (* run one pipeline config; the build label stays that of the row.
     [primary] arms the request's injection: fallback attempts re-run
     clean, without the injection that may have felled the primary *)
  let attempt ~primary (pipe : Pipeline.config) :
      (measurement, Fault.t * measurement option) result =
    try
      let r =
        { req with
          Rq.rq_build = { b with C.b_pipe = pipe };
          rq_opts =
            { req.Rq.rq_opts with
              Lo.domains = eff_domains;
              inject = (if primary then req.Rq.rq_opts.Lo.inject else None) } }
      in
      let k = Proxy.kernel_for p r.Rq.rq_build.C.b_abi in
      let c = compiler r k in
      let dev = C.device_request r c in
      let inst = p.Proxy.p_setup dev in
      match C.launch_request r c dev inst.Proxy.i_args with
      | Error f -> Error (f, None)
      | Ok m ->
        let check = inst.Proxy.i_check () in
        let meas =
          { r_proxy = p.Proxy.p_name; r_build = b.C.b_label;
            r_machine = req.Rq.rq_machine.C.Machine.mc_name;
            r_cycles = m.C.m_kernel_cycles; r_regs = m.C.m_regs; r_smem = m.C.m_smem;
            r_occupancy = m.C.m_occupancy; r_spills = m.C.m_spills;
            r_counters = m.C.m_counters;
            r_check = check; r_flops = p.Proxy.p_flops; r_fault = None;
            r_fallbacks = []; r_phase_us = phases_of trace;
            r_hotspots = m.C.m_hotspots; r_cache = cache_of trace;
            r_retries = 0; r_deadline_hit = false; r_breaker = "closed";
            r_exec = Ozo_vgpu.Engine.exec_name req.Rq.rq_exec;
            r_domains = eff_domains; r_cache_disp = "-"; r_latency_us = 0.0 }
        in
        (match check with
        | Ok () -> Ok meas
        | Error e ->
          Error (Fault.make Fault.Validation ("differential check failed: " ^ e), Some meas))
    with
    | Fault.Kernel_fault f | Fault.Kernel_trap f ->
      (* host-side fault during setup (e.g. a pointer-encoding overflow) *)
      Error (f, None)
  in
  (* a row where even the weakest config failed: report the fault as the
     check result so campaign tables stay rectangular *)
  let dead_row fault fallbacks =
    { (dead_measurement ~fallbacks ~machine:req.Rq.rq_machine.C.Machine.mc_name
         ~proxy:p.Proxy.p_name ~build:b.C.b_label fault)
      with r_flops = p.Proxy.p_flops;
           r_exec = Ozo_vgpu.Engine.exec_name req.Rq.rq_exec }
  in
  match attempt ~primary:true b.C.b_pipe with
  | Ok m -> m
  | Error (primary_fault, primary_meas) ->
    let rec ladder pipe tried last_meas =
      match Pipeline.weaken pipe with
      | None -> (
        match last_meas with
        | Some m ->
          { m with r_fault = Some primary_fault; r_fallbacks = List.rev tried }
        | None -> dead_row primary_fault (List.rev tried))
      | Some weaker -> (
        let tried = weaker.Pipeline.name :: tried in
        match attempt ~primary:false weaker with
        | Ok m -> { m with r_fault = Some primary_fault; r_fallbacks = List.rev tried }
        | Error (_, meas) ->
          ladder weaker tried (match meas with Some _ -> meas | None -> last_meas))
    in
    ladder b.C.b_pipe [] primary_meas

(* legacy shim: the optional-argument surface, now a [Request.t] builder *)
let measure ?check_assumes ?sanitize ?inject ?watchdog ?trace ?profile ?domains
    ?exec ?machine ?compiler (p : Proxy.t) (b : C.build) : measurement =
  measure_request ?compiler p
    (request_for ?check_assumes ?sanitize ?inject ?watchdog ?trace ?profile
       ?domains ?exec ?machine p b)

(* Figure 10 (a-d) + the TestSNAP column: relative performance of every
   build, normalized to Old RT (Nightly) — the paper's baseline. *)
let fig10 (p : Proxy.t) : measurement list = List.map (measure p) (builds_for p)

(* a full campaign over the standard build rows, with optional sanitizer
   and fault injection; the injection perturbs only each row's primary
   attempt, so fallbacks re-validate clean. [domains] shards each row's
   team loop over OCaml domains — results are bit-identical to
   [domains:1], only wall-clock changes *)
let campaign ?check_assumes ?sanitize ?inject ?trace ?profile ?domains ?exec
    (p : Proxy.t) : measurement list =
  List.map
    (measure ?check_assumes ?sanitize ?inject ?trace ?profile ?domains ?exec p)
    (builds_for p)

(* Figure 11: kernel time / registers / shared memory per build. Same
   measurements as fig10; kept separate for reporting. *)
let fig11 = fig10

(* Figure 12: GridMini GFlops across builds (flops per simulated kernel
   cycle, scaled — absolute units are arbitrary in simulation). *)
let fig12 () : measurement list = fig10 (Ozo_proxies.Registry.find_exn "gridmini")

(* Figure 13 + Section V-C: disable one co-designed optimization at a
   time. Returns (feature name, measurement) with the full build first. *)
let ablation (p : Proxy.t) : (string * measurement) list =
  let full = new_rt_for p in
  ("full", measure p full)
  :: List.map
       (fun f -> (Pipeline.feature_name f, measure p (C.without f full)))
       [ Pipeline.B1; Pipeline.B2; Pipeline.B3; Pipeline.B4; Pipeline.C; Pipeline.D ]

(* debug-mode validation run: every assumption checked at runtime *)
let debug_run (p : Proxy.t) : measurement =
  measure ~check_assumes:true p (C.with_debug (new_rt_for p))

let find_proxy name =
  match Ozo_proxies.Registry.find name with
  | Some p -> p
  | None -> raise (Harness_error ("unknown proxy " ^ name))
