(* A minimal Domain-based worker pool for deterministic data-parallel
   sharding.

   Design notes:

   - [run ~workers body] executes [body w] for every worker id
     [0 .. workers-1]. Worker 0 runs on the *calling* domain (so
     [~workers:1] involves no spawn at all and is exactly a direct
     call), the rest on freshly spawned domains. Spawning per call
     keeps the pool stateless — no idle domains held across launches,
     no teardown hooks — at a per-call cost of a few tens of
     microseconds per worker, which is noise next to the team
     execution the engine shards over it.

   - Exceptions: the engine-side worker body is expected to capture
     its own faults into per-worker slots (so faults can be merged
     deterministically in team order). Should a body escape with an
     exception anyway, [run] re-raises the one from the
     lowest-numbered worker after every domain has been joined —
     a deterministic choice, and no domain is ever left unjoined.

   - [chunk ~items ~workers w] is the canonical contiguous balanced
     split: with q = items / workers and r = items mod workers, the
     first r workers take q+1 items and the rest q, preserving item
     order across the worker index. Chunking is a pure function of
     (items, workers), never of timing, which is what makes the
     engine's team->domain assignment reproducible. *)

let chunk ~items ~workers w =
  let workers = max 1 workers in
  let q = items / workers and r = items mod workers in
  let lo = (w * q) + min w r in
  let hi = lo + q + if w < r then 1 else 0 in
  (lo, hi)

let run ~workers (body : int -> unit) : unit =
  if workers <= 1 then body 0
  else begin
    let spawned =
      Array.init (workers - 1) (fun i -> Domain.spawn (fun () -> body (i + 1)))
    in
    let first_exn = (try body 0; None with e -> Some e) in
    (* join every domain before re-raising anything: no orphans *)
    let worker_exn =
      Array.fold_left
        (fun acc d ->
          match (try Domain.join d; None with e -> Some e) with
          | Some e when acc = None -> Some e
          | _ -> acc)
        None spawned
    in
    match first_exn with
    | Some e -> raise e
    | None -> ( match worker_exn with Some e -> raise e | None -> ())
  end
