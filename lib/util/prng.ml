(* Deterministic 64-bit splitmix PRNG for synthetic workload generation:
   the same seed always produces the same problem instance, independent of
   OCaml's global Random state.

   DOMAIN-SAFETY: all state lives in the [t] value — there is no
   module-level mutable state and no use of [Random]'s global generator,
   so each launch/fuzz-case owning its own [t] is domain-safe by
   construction. Sharing one [t] across domains is not (unsynchronized
   mutation); create one per worker instead. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* uniform float in [0, 1) *)
let float t =
  let bits = Int64.shift_right_logical (next t) 11 in
  Int64.to_float bits /. 9007199254740992.0

(* uniform int in [0, n) *)
let int t n =
  if n <= 0 then 0
  else Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int n))

let float_range t lo hi = lo +. ((hi -. lo) *. float t)
