(* Perf-regression harness for the SIMT engine.

   Two tiers:

   - a pure-engine micro-suite: small IR kernels built directly with
     [Ozo_ir.Builder] and launched on a [Device], bypassing the compile
     pipeline, so the numbers isolate interpreter throughput (ALU issue
     rate, memory path, broadcast loads, divergence/strand churn);
   - end-to-end figure regeneration: the exact workload of
     `bench/main.exe csv` (5 proxies x 5 build rows through compile +
     simulate + validate), which is what every reproduction sweep pays.

   Output is machine-readable JSON (see BENCH_engine.json at the repo
   root for the tracked trajectory): per benchmark wall time, engine
   issue throughput (warp instruction issues / second) and allocation
   rate via [Gc.allocated_bytes]. The simulated *results* of every
   benchmark are invariant by construction — optimizations to the engine
   must never change charged cycles — so the suite doubles as a smoke
   check that the hot path still runs.

   Usage:
     perfbench.exe [--smoke] [-o FILE.json]

   --smoke runs 1 iteration of everything (CI bit-rot guard, seconds);
   the default runs enough iterations for stable numbers. *)

open Ozo_ir.Types
module B = Ozo_ir.Builder
module Device = Ozo_vgpu.Device
module Engine = Ozo_vgpu.Engine
module E = Ozo_harness.Experiments
module Registry = Ozo_proxies.Registry
module Trace = Ozo_obs.Trace

(* --- micro-suite kernels ---------------------------------------------- *)

let fail_launch e = Fmt.failwith "perfbench kernel faulted: %a" Device.pp_error e

(* Tight ALU loop: int + float arithmetic per lane, local accumulators.
   Dominated by instruction issue + operand evaluation. *)
let alu_kernel iters =
  let b = B.create "perf_alu" in
  (match B.begin_func b ~name:"k" ~kernel:true ~params:[ I64 ] ~ret:None () with
  | [ out ] ->
    B.set_block b "entry";
    let tid = B.thread_id b in
    let acc = B.alloca b 8 and facc = B.alloca b 8 in
    B.store b I64 (B.i64 1) acc;
    B.store b F64 (B.f64 1.5) facc;
    ignore
      (B.for_loop b ~lo:(B.i64 0) ~hi:(B.i64 iters) ~step:(B.i64 1) ~body:(fun iv ->
           let v = B.load b I64 acc in
           let v = B.add b (B.mul b v (B.i64 3)) (B.xor b iv tid) in
           let v = B.and_ b v (B.i64 0xFFFFFF) in
           B.store b I64 v acc;
           let f = B.load b F64 facc in
           let f = B.fadd b (B.fmul b f (B.f64 1.000001)) (B.f64 0.5) in
           B.store b F64 f facc));
    let v = B.load b I64 acc in
    B.store b I64 v (B.ptradd b out (B.mul b tid (B.i64 8)));
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b);
  B.finish b

(* Streaming global-memory loop: coalesced per-lane loads + stores. *)
let mem_kernel n =
  let b = B.create "perf_mem" in
  (match
     B.begin_func b ~name:"k" ~kernel:true ~params:[ I64; I64; I64 ] ~ret:None ()
   with
  | [ out; data; hi ] ->
    B.set_block b "entry";
    let tid = B.thread_id b in
    let bdim = B.block_dim b in
    let acc = B.alloca b 8 in
    B.store b F64 (B.f64 0.0) acc;
    ignore
      (B.for_loop b ~lo:tid ~hi ~step:bdim ~body:(fun iv ->
           let v = B.load b F64 (B.ptradd b data (B.mul b iv (B.i64 8))) in
           let a = B.load b F64 acc in
           B.store b F64 (B.fadd b a (B.fmul b v (B.f64 1.5))) acc));
    let a = B.load b F64 acc in
    B.store b F64 a (B.ptradd b out (B.mul b tid (B.i64 8)));
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b);
  ignore n;
  B.finish b

(* Uniform-broadcast loop: every lane loads the same address and feeds the
   value to special-function units — the uniform-strand scalarization
   showcase. *)
let broadcast_kernel iters =
  let b = B.create "perf_bcast" in
  (match B.begin_func b ~name:"k" ~kernel:true ~params:[ I64; I64 ] ~ret:None () with
  | [ out; cfg ] ->
    B.set_block b "entry";
    let tid = B.thread_id b in
    let acc = B.alloca b 8 in
    B.store b F64 (B.f64 0.0) acc;
    ignore
      (B.for_loop b ~lo:(B.i64 0) ~hi:(B.i64 iters) ~step:(B.i64 1) ~body:(fun _ ->
           let s = B.load b F64 cfg in
           let r = B.unop b Fsqrt s in
           let r = B.fadd b r (B.unop b Fsin s) in
           let a = B.load b F64 acc in
           B.store b F64 (B.fadd b a r) acc));
    let a = B.load b F64 acc in
    B.store b F64 a (B.ptradd b out (B.mul b tid (B.i64 8)));
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b);
  B.finish b

(* Divergent loop: the warp splits and rejoins on every iteration —
   strand creation/join churn through the scheduler queue. *)
let diverge_kernel iters =
  let b = B.create "perf_div" in
  (match B.begin_func b ~name:"k" ~kernel:true ~params:[ I64 ] ~ret:None () with
  | [ out ] ->
    B.set_block b "entry";
    let tid = B.thread_id b in
    let acc = B.alloca b 8 in
    B.store b I64 (B.i64 0) acc;
    ignore
      (B.for_loop b ~lo:(B.i64 0) ~hi:(B.i64 iters) ~step:(B.i64 1) ~body:(fun iv ->
           let par = B.and_ b (B.add b tid iv) (B.i64 1) in
           let c = B.icmp b Eq par (B.i64 0) in
           B.if_then_else b c
             ~then_:(fun () ->
               let v = B.load b I64 acc in
               B.store b I64 (B.add b v (B.i64 1)) acc)
             ~else_:(fun () ->
               let v = B.load b I64 acc in
               B.store b I64 (B.add b v (B.i64 2)) acc)));
    let v = B.load b I64 acc in
    B.store b I64 v (B.ptradd b out (B.mul b tid (B.i64 8)));
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b);
  B.finish b

(* Long integer dependency chain per iteration with one load/store pair:
   execute-bound on the int ALU, the threaded-code executor's best case.
   (The per-op dispatch — decode-record match, operand eval — is what
   the compiled closures elide; memory ops cost the same on both.) *)
let intchain_kernel iters =
  let b = B.create "perf_vmchain" in
  (match B.begin_func b ~name:"k" ~kernel:true ~params:[ I64 ] ~ret:None () with
  | [ out ] ->
    B.set_block b "entry";
    let tid = B.thread_id b in
    let acc = B.alloca b 8 in
    B.store b I64 (B.i64 7) acc;
    ignore
      (B.for_loop b ~lo:(B.i64 0) ~hi:(B.i64 iters) ~step:(B.i64 1) ~body:(fun iv ->
           let v = ref (B.load b I64 acc) in
           for _ = 1 to 8 do
             v := B.add b (B.mul b !v (B.i64 3)) (B.xor b !v tid);
             v := B.and_ b (B.add b !v iv) (B.i64 0xFFFFFFF)
           done;
           B.store b I64 !v acc));
    let v = B.load b I64 acc in
    B.store b I64 v (B.ptradd b out (B.mul b tid (B.i64 8)));
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b);
  B.finish b

(* --- measurement ------------------------------------------------------- *)

type sample = {
  s_name : string;
  s_iters : int;
  s_wall_s : float;            (* total wall seconds over all iterations *)
  s_issues : int;              (* engine warp-instruction issues per iteration *)
  s_alloc_bytes : float;       (* OCaml heap bytes allocated per iteration *)
}

let time_run ~iters ~name (f : unit -> int) : sample =
  ignore (f ()) (* warm-up: fills per-function caches, faults early *)
  ;
  let a0 = Gc.allocated_bytes () in
  let t0 = Unix.gettimeofday () in
  let issues = ref 0 in
  for _ = 1 to iters do
    issues := f ()
  done;
  let wall = Unix.gettimeofday () -. t0 in
  let alloc = (Gc.allocated_bytes () -. a0) /. float_of_int iters in
  { s_name = name; s_iters = iters; s_wall_s = wall; s_issues = !issues;
    s_alloc_bytes = alloc }

(* Launch a micro kernel once and return its issue count. A fresh device
   per call keeps runs independent; module decode caches are per-launch,
   which is exactly what the figure harness pays too. *)
let micro ?(opts = Device.Launch_opts.default) ~teams ~threads ~setup m args =
  let dev = Device.create m in
  let args = setup dev @ args in
  match Device.launch ~opts dev ~teams ~threads args with
  | Error e -> fail_launch e
  | Ok r -> r.Engine.r_total.Ozo_vgpu.Counters.warp_instructions

let micro_suite ~iters =
  let out_buf bytes dev = [ Engine.Ai (Device.ptr (Device.alloc dev bytes)) ] in
  let threads = 128 in
  let alu =
    let m = alu_kernel 2000 in
    time_run ~iters ~name:"micro/alu-loop" (fun () ->
        micro ~teams:2 ~threads ~setup:(out_buf (threads * 8)) m [])
  in
  let mem =
    let n = 16384 in
    let m = mem_kernel n in
    time_run ~iters ~name:"micro/mem-stream" (fun () ->
        micro ~teams:2 ~threads
          ~setup:(fun dev ->
            let data = Device.alloc dev (n * 8) in
            Device.write_f64_array dev data
              (Array.init n (fun i -> float_of_int (i land 255)));
            let out = Device.alloc dev (threads * 8) in
            [ Engine.Ai (Device.ptr out); Ai (Device.ptr data) ])
          m [ Engine.Ai n ])
  in
  let bcast =
    let m = broadcast_kernel 1500 in
    time_run ~iters ~name:"micro/uniform-broadcast" (fun () ->
        micro ~teams:2 ~threads
          ~setup:(fun dev ->
            let cfg = Device.alloc dev 8 in
            Device.write_f64s dev cfg [ 2.25 ];
            let out = Device.alloc dev (threads * 8) in
            [ Engine.Ai (Device.ptr out); Ai (Device.ptr cfg) ])
          m [])
  in
  let dv =
    let m = diverge_kernel 600 in
    time_run ~iters ~name:"micro/divergence-churn" (fun () ->
        micro ~teams:2 ~threads ~setup:(out_buf (threads * 8)) m [])
  in
  (* Same ALU workload with phase spans + per-block hot-spot profiling on
     (fresh ctx per launch). Against "micro/alu-loop" this bounds the
     tracing-on cost; the untraced samples above ARE the tracing-off
     check — they go through the instrumented launch path with
     [Launch_opts.default] and are tracked in BENCH_engine.json. *)
  let alu_traced =
    let m = alu_kernel 2000 in
    time_run ~iters ~name:"micro/alu-loop-traced" (fun () ->
        let opts =
          { Device.Launch_opts.default with
            Device.Launch_opts.trace = Trace.make (); profile = true }
        in
        micro ~opts ~teams:2 ~threads ~setup:(out_buf (threads * 8)) m [])
  in
  [ alu; mem; bcast; dv; alu_traced ]

(* Compile-time suite: the full optimization pipeline over every small
   proxy with the analysis cache on vs off. The linked (pre-pipeline)
   modules are built once outside the timer, so the two samples isolate
   [Pipeline.run] itself — the delta is what the analysis manager saves.
   [s_issues] reports analysis queries (hits + misses) per iteration. *)
let pipeline_suite ~iters =
  let module Pipeline = Ozo_opt.Pipeline in
  let module Analysis = Ozo_opt.Analysis in
  let module C = Ozo_core.Codesign in
  let module Proxy = Ozo_proxies.Proxy in
  let linked =
    List.map
      (fun p ->
        let b = E.new_rt_for p in
        let k = Proxy.kernel_for p b.C.b_abi in
        let app = Ozo_frontend.Lower.lower ~abi:b.C.b_abi k in
        match b.C.b_rt with
        | None -> app
        | Some rt -> Ozo_ir.Linker.link app (Ozo_runtime.Runtime.build rt))
      (Registry.all_small ())
  in
  let run_all ~caching () =
    List.fold_left
      (fun acc m ->
        let am = Analysis.create ~caching () in
        ignore (Pipeline.run ~am Pipeline.full m);
        let st = Analysis.stats am in
        acc + st.Analysis.st_hits + st.Analysis.st_misses)
      0 linked
  in
  [ time_run ~iters ~name:"pipeline/full-cached" (run_all ~caching:true);
    time_run ~iters ~name:"pipeline/full-uncached" (run_all ~caching:false) ]

(* Backend suite: the late lowering stage (register allocation, SSA
   destruction to VM form, SMem layout, occupancy) over every small
   proxy's optimized module — once at the default budget (the cost every
   compile now pays) and once at a spill-forcing budget (adds the IR
   spill rewrite + re-verification-sized work). Modules are optimized
   outside the timer, so the samples isolate [Backend.run].
   [s_issues] reports VM instructions emitted per iteration. *)
let backend_suite ~iters =
  let module Pipeline = Ozo_opt.Pipeline in
  let module C = Ozo_core.Codesign in
  let module Proxy = Ozo_proxies.Proxy in
  let module Backend = Ozo_backend.Lower in
  let module Machine = Ozo_backend.Machine in
  let module Vm = Ozo_backend.Vm in
  let optimized =
    List.map
      (fun p ->
        let b = E.new_rt_for p in
        let k = Proxy.kernel_for p b.C.b_abi in
        let app = Ozo_frontend.Lower.lower ~abi:b.C.b_abi k in
        let linked =
          match b.C.b_rt with
          | None -> app
          | Some rt -> Ozo_ir.Linker.link app (Ozo_runtime.Runtime.build rt)
        in
        (k.Ozo_frontend.Ast.k_name, Pipeline.run Pipeline.full linked))
      (Registry.all_small ())
  in
  let vm_insts (s : Backend.summary) =
    List.fold_left
      (fun acc vf ->
        List.fold_left
          (fun acc vb -> acc + List.length vb.Vm.vb_insts)
          acc vf.Vm.vf_blocks)
      0 s.Backend.lw_program.Vm.pr_funcs
  in
  let lower_all machine () =
    List.fold_left
      (fun acc (kernel, m) -> acc + vm_insts (Backend.run ~machine m ~kernel))
      0 optimized
  in
  [ time_run ~iters ~name:"backend/lower" (lower_all Machine.vgpu);
    time_run ~iters ~name:"backend/lower-spill"
      (lower_all (Machine.with_reg_budget 8 Machine.vgpu)) ]

(* Threaded-code executor suite: the same lowered module and register
   plan launched on both executors, so each ir/vm pair isolates pure
   dispatch cost. Counters are bit-identical by contract — [s_issues]
   must agree within a pair (asserted) — and the wall-clock ratio is the
   speedup BENCH_engine.json tracks. *)
let vm_suite ~iters =
  let module Backend = Ozo_backend.Lower in
  let module Machine = Ozo_backend.Machine in
  let threads = 128 in
  let out_buf bytes dev = [ Engine.Ai (Device.ptr (Device.alloc dev bytes)) ] in
  let pair name m =
    let lower = Backend.run ~machine:Machine.vgpu m ~kernel:"k" in
    let low = lower.Backend.lw_module in
    let plan = lower.Backend.lw_plan in
    let go exec () =
      let dev = Device.create ~exec ~plan low in
      let args = out_buf (threads * 8) dev in
      match Device.launch dev ~teams:2 ~threads args with
      | Error e -> fail_launch e
      | Ok r -> r.Engine.r_total.Ozo_vgpu.Counters.warp_instructions
    in
    let ir =
      time_run ~iters ~name:(Fmt.str "vm/%s-ir" name) (go Engine.Exec_ir)
    in
    let vm =
      time_run ~iters ~name:(Fmt.str "vm/%s-vm" name) (go Engine.Exec_vm)
    in
    if ir.s_issues <> vm.s_issues then
      Fmt.failwith "vm/%s: executors disagree (%d vs %d issues)" name
        ir.s_issues vm.s_issues;
    [ ir; vm ]
  in
  pair "int-chain" (intchain_kernel 1500)
  @ pair "alu-loop" (alu_kernel 2000)
  @ pair "divergence" (diverge_kernel 600)

(* End-to-end: the `bench/main.exe csv` workload (all figures' raw rows).
   [domains] shards each launch's team loop over OCaml domains; counters
   (and therefore [s_issues]) are bit-identical at every value. *)
let e2e_csv ?(domains = 1) ~small () =
  let pool = if small then Registry.all_small () else Registry.all () in
  List.fold_left
    (fun acc p ->
      List.fold_left
        (fun acc b ->
          let m = E.measure ~domains p b in
          acc + m.E.r_counters.Ozo_vgpu.Counters.warp_instructions)
        acc (E.builds_for p))
    0 pool

(* Serving-tier suite: the full proxy x build queue drained through the
   batched service — cold (a fresh compile cache per iteration, every
   request compiles) vs warm (a cache pre-filled outside the timer, every
   request served from cache). The delta is the compile pipeline + backend
   cost the content-addressed cache elides; served results are
   bit-identical either way, so [s_issues] (total warp instructions over
   all served launches) must agree between the two samples. *)
let serve_suite ~iters =
  let module Service = Ozo_serve.Service in
  let module Cache = Ozo_serve.Cache in
  let queue =
    List.concat_map
      (fun p ->
        List.map (fun b -> (p.Ozo_proxies.Proxy.p_name, b)) E.build_names)
      (Registry.all_small ())
  in
  let opts = { Service.default with Service.sv_small = true } in
  let issues ms =
    List.fold_left
      (fun acc m -> acc + m.E.r_counters.Ozo_vgpu.Counters.warp_instructions)
      0 ms
  in
  let cold =
    time_run ~iters ~name:"serve/cold" (fun () ->
        issues (fst (Service.run opts queue)))
  in
  let warm_cache = Cache.create () in
  ignore (Service.run ~cache:warm_cache opts queue);
  let warm =
    time_run ~iters ~name:"serve/warm" (fun () ->
        issues (fst (Service.run ~cache:warm_cache opts queue)))
  in
  [ cold; warm ]

(* Autotuner suite: one model-only launch-shape search (compile + probe
   + static scoring), one search with top-3 measured refinement (adds
   three real launches through the same compile), and the small
   cross-machine matrix. [s_issues] reports candidates scored for the
   searches and total warp instructions for the matrix; both are
   deterministic, so the issue counts double as a drift check. *)
let tune_suite ~iters =
  let module Tune = Ozo_tune.Tune in
  let module Matrix = Ozo_tune.Matrix in
  let module Machine = Ozo_backend.Machine in
  let p =
    List.find
      (fun p -> p.Ozo_proxies.Proxy.p_name = "xsbench")
      (Registry.all_small ())
  in
  let search ~measure_top () =
    let v =
      Tune.search ~measure_top ~machine:Machine.mi250 p ~build_name:"new-rt"
    in
    List.length v.Tune.tv_candidates
  in
  let matrix () =
    let t =
      Matrix.run ~small:true ~machines:[ "vgpu"; "mi250" ]
        ~proxies:[ "xsbench"; "gridmini" ] ()
    in
    List.fold_left
      (fun acc c ->
        acc
        + c.Matrix.x_m.E.r_counters.Ozo_vgpu.Counters.warp_instructions)
      0 t.Matrix.mx_cells
  in
  [ time_run ~iters ~name:"tune/search-model" (search ~measure_top:0);
    time_run ~iters ~name:"tune/search-measured" (search ~measure_top:3);
    time_run ~iters ~name:"tune/matrix-small" matrix ]

(* Domain-scaling curve over the end-to-end workload. The speedup these
   samples record is bounded by the machine's core count — on a 1-core
   container every count collapses to time-sliced sequential speed and
   the curve documents the (small) sharding overhead instead. Alloc per
   iteration is the schedule-independent regression signal. *)
let par_suite ~iters =
  List.map
    (fun d ->
      time_run ~iters
        ~name:(Fmt.str "par/e2e-csv-full-d%d" d)
        (e2e_csv ~domains:d ~small:false))
    [ 1; 2; 4; 8 ]

(* --- JSON output -------------------------------------------------------- *)

let pp_sample ppf s =
  let issues_per_s =
    if s.s_wall_s > 0.0 then
      float_of_int (s.s_issues * s.s_iters) /. s.s_wall_s
    else 0.0
  in
  Fmt.pf ppf
    {|    { "name": %S, "iters": %d, "wall_s": %.6f, "per_iter_s": %.6f,
      "issues_per_iter": %d, "issues_per_s": %.0f, "alloc_bytes_per_iter": %.0f }|}
    s.s_name s.s_iters s.s_wall_s
    (s.s_wall_s /. float_of_int s.s_iters)
    s.s_issues issues_per_s s.s_alloc_bytes

let emit_json ~mode ~path samples =
  let oc = open_out path in
  let ppf = Format.formatter_of_out_channel oc in
  Fmt.pf ppf {|{
  "schema": "ozo-perfbench/1",
  "mode": %S,
  "results": [
%a
  ]
}
|}
    mode
    (Fmt.list ~sep:(Fmt.any ",@\n") pp_sample)
    samples;
  Format.pp_print_flush ppf ();
  close_out oc

let () =
  let smoke = ref false and out = ref "BENCH_engine.json" in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
      smoke := true;
      parse rest
    | "-o" :: path :: rest ->
      out := path;
      parse rest
    | a :: _ -> Fmt.failwith "perfbench: unknown argument %s" a
  in
  parse (List.tl (Array.to_list Sys.argv));
  let mode = if !smoke then "smoke" else "full" in
  let micro_iters = if !smoke then 1 else 8 in
  Fmt.pr "perfbench (%s mode)@." mode;
  let samples = micro_suite ~iters:micro_iters in
  let samples =
    samples @ pipeline_suite ~iters:(if !smoke then 1 else 10)
  in
  let samples = samples @ backend_suite ~iters:(if !smoke then 1 else 10) in
  let samples = samples @ vm_suite ~iters:(if !smoke then 1 else 8) in
  let e2e =
    if !smoke then
      [ time_run ~iters:1 ~name:"e2e/csv-small" (e2e_csv ~small:true) ]
    else
      [ time_run ~iters:3 ~name:"e2e/csv-small" (e2e_csv ~small:true);
        time_run ~iters:2 ~name:"e2e/csv-full" (e2e_csv ~small:false) ]
  in
  let samples = samples @ e2e in
  let samples = samples @ serve_suite ~iters:(if !smoke then 1 else 4) in
  let samples = samples @ tune_suite ~iters:(if !smoke then 1 else 4) in
  let samples = samples @ (if !smoke then [] else par_suite ~iters:2) in
  List.iter
    (fun s ->
      Fmt.pr "  %-26s %9.1f ms/iter  %10.0f issues/s  %12.0f B alloc/iter@."
        s.s_name
        (1000.0 *. s.s_wall_s /. float_of_int s.s_iters)
        (if s.s_wall_s > 0.0 then
           float_of_int (s.s_issues * s.s_iters) /. s.s_wall_s
         else 0.0)
        s.s_alloc_bytes)
    samples;
  (* tracing overhead summary: traced vs untraced ALU loop *)
  (let find n = List.find_opt (fun s -> s.s_name = n) samples in
   match (find "micro/alu-loop", find "micro/alu-loop-traced") with
   | Some off, Some on_ ->
     let per s = s.s_wall_s /. float_of_int s.s_iters in
     if per off > 0.0 then
       Fmt.pr "  tracing+profiling on: %+.1f%% vs untraced alu-loop@."
         (100.0 *. (per on_ -. per off) /. per off)
   | _ -> ());
  (* threaded-code executor summary: vm vs ir on the execute-bound chain *)
  (let find n = List.find_opt (fun s -> s.s_name = n) samples in
   match (find "vm/int-chain-ir", find "vm/int-chain-vm") with
   | Some ir, Some vm ->
     let per s = s.s_wall_s /. float_of_int s.s_iters in
     if per vm > 0.0 then
       Fmt.pr "  threaded-code executor: %.2fx vs IR interpreter on vm/int-chain@."
         (per ir /. per vm)
   | _ -> ());
  (* analysis-cache summary: cached vs uncached full pipeline *)
  (let find n = List.find_opt (fun s -> s.s_name = n) samples in
   match (find "pipeline/full-cached", find "pipeline/full-uncached") with
   | Some on_, Some off ->
     let per s = s.s_wall_s /. float_of_int s.s_iters in
     if per on_ > 0.0 then
       Fmt.pr "  analysis caching on: %.2fx compile-time vs uncached full pipeline@."
         (per off /. per on_)
   | _ -> ());
  (* serving-tier summary: warm vs cold queue drain *)
  (let find n = List.find_opt (fun s -> s.s_name = n) samples in
   match (find "serve/cold", find "serve/warm") with
   | Some cold, Some warm ->
     let per s = s.s_wall_s /. float_of_int s.s_iters in
     if per warm > 0.0 then
       Fmt.pr "  warm compile cache: %.2fx launches/sec vs cold service@."
         (per cold /. per warm)
   | _ -> ());
  (* autotuner summary: measured refinement cost over the model-only search *)
  (let find n = List.find_opt (fun s -> s.s_name = n) samples in
   match (find "tune/search-model", find "tune/search-measured") with
   | Some model, Some meas ->
     let per s = s.s_wall_s /. float_of_int s.s_iters in
     if per model > 0.0 then
       Fmt.pr "  measured refinement: %.2fx the model-only search@."
         (per meas /. per model)
   | _ -> ());
  (* domain-scaling summary: parallel vs sequential end-to-end sweep *)
  (let find n = List.find_opt (fun s -> s.s_name = n) samples in
   match (find "par/e2e-csv-full-d1", find "par/e2e-csv-full-d4") with
   | Some d1, Some d4 ->
     let per s = s.s_wall_s /. float_of_int s.s_iters in
     if per d4 > 0.0 then
       Fmt.pr "  4 domains: %.2fx e2e wall-clock vs 1 domain (%d core(s) available)@."
         (per d1 /. per d4)
         (Domain.recommended_domain_count ())
   | _ -> ());
  emit_json ~mode ~path:!out samples;
  Fmt.pr "wrote %s@." !out
