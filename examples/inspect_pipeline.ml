(* Inspect the co-designed optimization pipeline at work.

     dune exec examples/inspect_pipeline.exe

   Lowers a small combined-construct kernel against the new runtime, then
   prints the kernel function at three stages — unoptimized (the
   generic-mode state machine, runtime calls, globalized argument pack),
   after the pre-existing passes (nightly), and after the full co-designed
   pipeline (CUDA-shaped) — together with the optimization remarks
   (-Rpass=openmp-opt analog) explaining what fired. *)

open Ozo_frontend.Ast
module Lower = Ozo_frontend.Lower
module Pipeline = Ozo_opt.Pipeline
module Remarks = Ozo_opt.Remarks

let kernel =
  { k_name = "scale";
    k_params = [ ("data", TInt); ("n", TInt) ];
    k_construct =
      Distribute_parallel_for
        ("i", P "n", [ Store (P "data", P "i", MF64, Mul (Ld (P "data", P "i", MF64), Float 2.0)) ]) }

let stats name (m : Ozo_ir.Types.modul) =
  let kf = Ozo_ir.Types.find_func_exn m "scale" in
  let count p =
    List.fold_left
      (fun acc b -> acc + List.length (List.filter p b.Ozo_ir.Types.b_insts))
      0 kf.Ozo_ir.Types.f_blocks
  in
  Fmt.pr "--- %s: %d functions, %d shared-memory bytes, kernel: %d blocks, %d calls, %d barriers@."
    name
    (List.length m.Ozo_ir.Types.m_funcs)
    (Ozo_vgpu.Engine.shared_bytes m)
    (List.length kf.Ozo_ir.Types.f_blocks)
    (count (function Ozo_ir.Types.Call _ | Call_indirect _ -> true | _ -> false))
    (count (function Ozo_ir.Types.Barrier _ -> true | _ -> false))

let () =
  let app = Lower.lower ~abi:(Lower.Omp Lower.New_abi) kernel in
  let rt = Ozo_runtime.Runtime.build Ozo_runtime.Config.(with_assumptions default) in
  let linked = Ozo_ir.Linker.link app rt in

  Fmt.pr "==================== unoptimized (O0) ====================@.";
  stats "O0" linked;
  Fmt.pr "%a@." Ozo_ir.Printer.pp_func (Ozo_ir.Types.find_func_exn linked "scale");

  let nightly = Pipeline.run Pipeline.nightly linked in
  Fmt.pr "==================== nightly (pre-paper openmp-opt) ====================@.";
  stats "nightly" nightly;

  (* a per-compilation sink collects the remarks of exactly this run *)
  let sink = Remarks.make () in
  let full = Pipeline.run ~sink Pipeline.full linked in
  Fmt.pr "@.==================== full co-designed pipeline ====================@.";
  stats "full" full;
  Fmt.pr "%a@." Ozo_ir.Printer.pp_func (Ozo_ir.Types.find_func_exn full "scale");

  Fmt.pr "==================== optimization remarks (last run) ====================@.";
  let all = Remarks.items sink in
  let shown = List.filteri (fun i _ -> i < 25) all in
  List.iter (fun r -> Fmt.pr "  %a@." Remarks.pp r) shown;
  if List.length all > 25 then Fmt.pr "  ... and %d more@." (List.length all - 25)
