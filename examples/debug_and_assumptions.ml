(* Debugging, assertions and assumptions (paper Sections III-F and III-G).

     dune exec examples/debug_and_assumptions.exe

   1. A user assertion inside a target region traps in the debug build and
      costs nothing in the release build (it becomes a compiler
      assumption).
   2. The oversubscription promise (-fopenmp-assume-teams-oversubscription)
      is verified at runtime in debug builds: launching with too few
      threads traps instead of silently dropping iterations.
   3. Debug builds re-check every broadcast assume the runtime placed. *)

open Ozo_frontend.Ast
module C = Ozo_core.Codesign
module Device = Ozo_vgpu.Device
module Engine = Ozo_vgpu.Engine

let kernel ~with_assert =
  { k_name = "k";
    k_params = [ ("out", TInt); ("n", TInt) ];
    k_construct =
      Distribute_parallel_for
        ( "i",
          P "n",
          (if with_assert then [ Assert (Cmp (CLt, P "i", Int 100)) ] else [])
          @ [ Store (P "out", P "i", MI64, Mul (P "i", Int 7)) ] ) }

let try_run label build k ~teams ~threads ~n ~check_assumes =
  let c = C.compile build k in
  let dev = C.device c in
  let out = Device.alloc dev (n * 8) in
  let opts = { Device.Launch_opts.default with Device.Launch_opts.check_assumes } in
  match C.launch ~opts c dev ~teams ~threads [ Engine.Ai (Device.ptr out); Ai n ] with
  | Ok m ->
    Fmt.pr "  %-44s completed (%.0f cycles)@." label m.C.m_kernel_cycles
  | Error e -> Fmt.pr "  %-44s %a@." label Device.pp_error e

let () =
  Fmt.pr "1. user assertion `assert(i < 100)` on a 128-iteration loop:@.";
  (* release: assertion compiled into an assumption, not checked *)
  try_run "release build (assertion erased)" C.new_rt_no_assumptions
    (kernel ~with_assert:true) ~teams:4 ~threads:32 ~n:128 ~check_assumes:false;
  (* debug: the failing assertion traps *)
  try_run "debug build (assertion live)"
    (C.with_debug C.new_rt_no_assumptions)
    (kernel ~with_assert:true) ~teams:4 ~threads:32 ~n:128 ~check_assumes:false;

  Fmt.pr "@.2. oversubscription promise with an undersized launch (64 threads, n=128):@.";
  try_run "release build (silently wrong results!)" C.new_rt
    (kernel ~with_assert:false) ~teams:2 ~threads:32 ~n:128 ~check_assumes:false;
  try_run "debug build + runtime checking"
    (C.with_debug C.new_rt)
    (kernel ~with_assert:false) ~teams:2 ~threads:32 ~n:128 ~check_assumes:true;

  Fmt.pr "@.3. correctly sized launch under the debug build (all assumes verified):@.";
  try_run "debug build, 128 threads for n=128"
    (C.with_debug C.new_rt)
    (kernel ~with_assert:false) ~teams:4 ~threads:32 ~n:128 ~check_assumes:true
