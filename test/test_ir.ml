(* Unit tests for the IR core: types, builder, verifier, CFG, linker,
   printer. *)

open Ozo_ir.Types
module B = Ozo_ir.Builder
module Cfg = Ozo_ir.Cfg
open Util

(* hand-built raw function helpers for verifier negative tests *)
let raw_func ?(params = []) ?(ret = None) ~name blocks next_reg =
  { f_name = name; f_params = params; f_ret = ret; f_blocks = blocks;
    f_linkage = Internal; f_attrs = []; f_is_kernel = true; f_next_reg = next_reg }

let raw_module ?(globals = []) funcs = { m_name = "raw"; m_globals = globals; m_funcs = funcs }

let blk ?(phis = []) label insts term =
  { b_label = label; b_phis = phis; b_insts = insts; b_term = term }

let expect_invalid name m =
  match Ozo_ir.Verifier.check m with
  | Ok () -> Alcotest.failf "%s: expected verifier failure" name
  | Error _ -> ()

let test_size_of_typ () =
  Alcotest.(check int) "i1" 1 (size_of_typ I1);
  Alcotest.(check int) "i32" 4 (size_of_typ I32);
  Alcotest.(check int) "i64" 8 (size_of_typ I64);
  Alcotest.(check int) "f64" 8 (size_of_typ F64);
  Alcotest.(check int) "ptr" 8 (size_of_typ (Ptr Global))

let test_inst_def_uses () =
  let i = Binop (3, Add, Reg 1, Reg 2) in
  Alcotest.(check (option int)) "def" (Some 3) (inst_def i);
  Alcotest.(check int) "uses" 2 (List.length (inst_uses i));
  let s = Store (I64, Reg 4, Reg 5) in
  Alcotest.(check (option int)) "store def" None (inst_def s);
  Alcotest.(check bool) "store effects" true (inst_has_side_effects s);
  Alcotest.(check bool) "load effects" false (inst_has_side_effects (Load (1, I64, Reg 0)))

let test_builder_simple () =
  let m =
    kernel_module ~params:[ I64 ]
      (fun b ps ->
        match ps with
        | [ out ] ->
          let v = B.add b (B.i64 20) (B.i64 22) in
          B.store b I64 v out
        | _ -> assert false)
  in
  check_verifies "builder simple" m;
  let dev, _ = run_ok m [ Engine.Ai (Ozo_vgpu.Memory.encode Global 0) ] in
  ignore dev

let test_builder_duplicate_block_reuse () =
  (* set_block on an existing label re-enters it; appending after
     termination must fail *)
  let b = B.create "m" in
  ignore (B.begin_func b ~name:"f" ~params:[] ~ret:None ());
  B.set_block b "entry";
  B.ret b None;
  B.set_block b "entry";
  (match B.append b (Binop (0, Add, B.i64 1, B.i64 2)) with
  | exception Ir_error _ -> ()
  | () -> Alcotest.fail "expected Ir_error on appending to terminated block")

let test_builder_missing_terminator () =
  let b = B.create "m" in
  ignore (B.begin_func b ~name:"f" ~params:[] ~ret:None ());
  B.set_block b "entry";
  match B.end_func b with
  | exception Ir_error _ -> ()
  | _ -> Alcotest.fail "expected Ir_error for missing terminator"

let test_verifier_unknown_target () =
  let f = raw_func ~name:"f" [ blk "entry" [] (Br "nowhere") ] 0 in
  expect_invalid "unknown target" (raw_module [ f ])

let test_verifier_double_def () =
  let f =
    raw_func ~name:"f"
      [ blk "entry"
          [ Binop (0, Add, Imm_int (1L, I64), Imm_int (2L, I64));
            Binop (0, Add, Imm_int (1L, I64), Imm_int (2L, I64)) ]
          (Ret None) ]
      1
  in
  expect_invalid "double def" (raw_module [ f ])

let test_verifier_use_before_def () =
  let f =
    raw_func ~name:"f"
      [ blk "entry"
          [ Binop (0, Add, Reg 1, Imm_int (2L, I64));
            Binop (1, Add, Imm_int (1L, I64), Imm_int (2L, I64)) ]
          (Ret None) ]
      2
  in
  expect_invalid "use before def" (raw_module [ f ])

let test_verifier_def_does_not_dominate () =
  (* def in the "then" branch used in the join *)
  let f =
    raw_func ~name:"f"
      [ blk "entry" [] (Cond_br (Imm_int (1L, I1), "then", "join"));
        blk "then" [ Binop (0, Add, Imm_int (1L, I64), Imm_int (2L, I64)) ] (Br "join");
        blk "join" [ Binop (1, Add, Reg 0, Imm_int (1L, I64)) ] (Ret None) ]
      2
  in
  expect_invalid "dominance" (raw_module [ f ])

let test_verifier_phi_incoming_mismatch () =
  let f =
    raw_func ~name:"f"
      [ blk "entry" [] (Cond_br (Imm_int (1L, I1), "a", "b"));
        blk "a" [] (Br "join");
        blk "b" [] (Br "join");
        blk "join"
          ~phis:[ { phi_reg = 0; phi_typ = I64; phi_incoming = [ ("a", Imm_int (1L, I64)) ] } ]
          [] (Ret None) ]
      1
  in
  expect_invalid "phi incoming" (raw_module [ f ])

let test_verifier_entry_phi () =
  let f =
    raw_func ~name:"f"
      [ blk "entry"
          ~phis:[ { phi_reg = 0; phi_typ = I64; phi_incoming = [] } ]
          [] (Ret None) ]
      1
  in
  expect_invalid "entry phi" (raw_module [ f ])

let test_verifier_unknown_global_and_callee () =
  let f1 =
    raw_func ~name:"f"
      [ blk "entry" [ Load (0, I64, Global_addr "nope") ] (Ret None) ]
      1
  in
  expect_invalid "unknown global" (raw_module [ f1 ]);
  let f2 = raw_func ~name:"g" [ blk "entry" [ Call (None, "missing", []) ] (Ret None) ] 0 in
  expect_invalid "unknown callee" (raw_module [ f2 ])

let test_verifier_duplicates () =
  let f = raw_func ~name:"f" [ blk "entry" [] (Ret None) ] 0 in
  expect_invalid "dup funcs" (raw_module [ f; f ]);
  let g =
    { g_name = "g"; g_space = Global; g_size = 8; g_init = Zero_init;
      g_linkage = Internal; g_const = false }
  in
  expect_invalid "dup globals" (raw_module ~globals:[ g; g ] [ f ])

let test_cfg_diamond () =
  let f =
    raw_func ~name:"f"
      [ blk "entry" [] (Cond_br (Imm_int (1L, I1), "a", "b"));
        blk "a" [] (Br "join");
        blk "b" [] (Br "join");
        blk "join" [] (Ret None) ]
      0
  in
  let cfg = Cfg.of_func f in
  Alcotest.(check (list string)) "succs entry" [ "a"; "b" ] (List.sort compare (Cfg.succs cfg "entry"));
  Alcotest.(check (list string)) "preds join" [ "a"; "b" ] (List.sort compare (Cfg.preds cfg "join"));
  Alcotest.(check string) "rpo head" "entry" (List.hd (Cfg.labels cfg));
  Alcotest.(check bool) "join reachable" true (Cfg.is_reachable cfg "join");
  Alcotest.(check (list string)) "exits" [ "join" ] (Cfg.exits cfg)

let test_prune_unreachable () =
  let f =
    raw_func ~name:"f"
      [ blk "entry" [] (Br "live");
        blk "live"
          ~phis:[]
          [] (Ret None);
        blk "dead" [] (Br "live") ]
      0
  in
  let f', changed = Cfg.prune_unreachable f in
  Alcotest.(check bool) "changed" true changed;
  Alcotest.(check int) "blocks" 2 (List.length f'.f_blocks)

let test_prune_fixes_phis () =
  let f =
    raw_func ~name:"f"
      [ blk "entry" [] (Br "join");
        blk "dead" [] (Br "join");
        blk "join"
          ~phis:[ { phi_reg = 0; phi_typ = I64;
                    phi_incoming = [ ("entry", Imm_int (1L, I64)); ("dead", Imm_int (2L, I64)) ] } ]
          [] (Ret None) ]
      1
  in
  let f', _ = Cfg.prune_unreachable f in
  let join = find_block_exn f' "join" in
  (match join.b_phis with
  | [ p ] -> Alcotest.(check int) "one incoming" 1 (List.length p.phi_incoming)
  | _ -> Alcotest.fail "expected one phi");
  check_verifies "pruned" (raw_module [ f' ])

let test_linker () =
  let g =
    { g_name = "shared_g"; g_space = Shared; g_size = 8; g_init = Zero_init;
      g_linkage = Internal; g_const = false }
  in
  let f1 = raw_func ~name:"a" [ blk "entry" [] (Ret None) ] 0 in
  let f2 = raw_func ~name:"b" [ blk "entry" [] (Ret None) ] 0 in
  let m1 = { m_name = "m1"; m_globals = [ g ]; m_funcs = [ f1 ] } in
  let m2 = { m_name = "m2"; m_globals = [ g ]; m_funcs = [ f2 ] } in
  let linked = Ozo_ir.Linker.link m1 m2 in
  Alcotest.(check int) "globals deduped" 1 (List.length linked.m_globals);
  Alcotest.(check int) "funcs merged" 2 (List.length linked.m_funcs);
  (* conflicting definitions must fail *)
  let g' = { g with g_size = 16 } in
  let m3 = { m2 with m_globals = [ g' ] } in
  match Ozo_ir.Linker.link m1 m3 with
  | exception Ir_error _ -> ()
  | _ -> Alcotest.fail "expected link conflict"

let test_printer () =
  let m =
    kernel_module ~params:[ I64; F64 ]
      (fun b ps ->
        match ps with
        | [ p; x ] ->
          let v = B.fadd b x (B.f64 1.5) in
          B.store b F64 v p;
          B.barrier b ~aligned:true
        | _ -> assert false)
  in
  let s = Ozo_ir.Printer.module_to_string m in
  List.iter
    (fun frag ->
      if not (Util.contains s frag) then
        Alcotest.failf "printer output missing %S in:\n%s" frag s)
    [ "kernel"; "fadd"; "store f64"; "barrier.aligned" ]

(* Regression: block-boundary pressure. A value [a] produced in [entry]
   is consumed only through a phi in [loop]: during the edge copy
   p <- a, both the source and the destination are live at once (plus
   anything live into the block), so the pressure is 2 even though no
   single *within-block* program point ever holds more than 1 live
   register. The pre-fix walk reported 1 here, which made the register
   allocator's per-edge interval overlap exceed the reported maximum. *)
let test_liveness_boundary_pressure () =
  let entry = blk "entry" [ Binop (0, Add, Imm_int (1L, I64), Imm_int (2L, I64)) ] (Br "loop") in
  let loop =
    blk "loop"
      ~phis:[ { phi_reg = 1; phi_typ = I64; phi_incoming = [ ("entry", Reg 0); ("loop", Reg 1) ] } ]
      [] (Cond_br (Imm_int (1L, I1), "loop", "exit"))
  in
  let exit_ = blk "exit" [] (Ret (Some (Reg 1))) in
  let f = raw_func ~ret:(Some I64) ~name:"cross" [ entry; loop; exit_ ] 2 in
  (match Ozo_ir.Verifier.check (raw_module [ f ]) with
  | Ok () -> ()
  | Error vs ->
    Alcotest.failf "test function invalid: %a"
      (Fmt.list ~sep:Fmt.semi Ozo_ir.Verifier.pp_violation) vs);
  let lv = Ozo_ir.Liveness.analyse f in
  let live_out_entry =
    Ozo_ir.Cfg.SMap.find "entry" lv.Ozo_ir.Liveness.live_out
  in
  Alcotest.(check bool) "a live across the edge" true
    (Ozo_ir.Liveness.RSet.mem 0 live_out_entry);
  (* was 1 before the boundary fix: the phi copy's source+destination
     overlap at the entry edge of [loop] went uncounted *)
  Alcotest.(check int) "boundary pressure counted" 2 (Ozo_ir.Liveness.max_pressure f)

let suite =
  [ tc "size_of_typ" test_size_of_typ;
    tc "liveness: block-boundary (phi copy) pressure" test_liveness_boundary_pressure;
    tc "inst def/uses" test_inst_def_uses;
    tc "builder: simple kernel" test_builder_simple;
    tc "builder: append to terminated block fails" test_builder_duplicate_block_reuse;
    tc "builder: missing terminator fails" test_builder_missing_terminator;
    tc "verifier: unknown branch target" test_verifier_unknown_target;
    tc "verifier: double definition" test_verifier_double_def;
    tc "verifier: use before def" test_verifier_use_before_def;
    tc "verifier: def must dominate use" test_verifier_def_does_not_dominate;
    tc "verifier: phi incoming mismatch" test_verifier_phi_incoming_mismatch;
    tc "verifier: no phis in entry" test_verifier_entry_phi;
    tc "verifier: unknown global/callee" test_verifier_unknown_global_and_callee;
    tc "verifier: duplicate symbols" test_verifier_duplicates;
    tc "cfg: diamond succs/preds/rpo" test_cfg_diamond;
    tc "cfg: prune unreachable" test_prune_unreachable;
    tc "cfg: prune fixes phis" test_prune_fixes_phis;
    tc "linker: dedup and conflicts" test_linker;
    tc "printer: textual form" test_printer ]
