(* Golden-counters determinism tests.

   The engine's whole value is that its *simulated* results (cycle
   counts, transaction counts, divergence statistics) are a deterministic
   function of the program — performance work on the interpreter must
   never change them. These tests pin that invariant two ways:

   - run-to-run: each registry proxy, compiled under the full pipeline,
     is measured twice and the two [Counters.t] must be identical;
   - against a checked-in snapshot: the counters must equal the values
     recorded below, which were captured from the seed engine before any
     interpreter fast-path work landed.

   To regenerate the snapshot after an *intentional* semantic change
   (e.g. a new cost model), run:

     OZO_GOLDEN_REGEN=1 dune runtest --force 2>&1 | grep GOLDEN

   and paste the printed lines over the table. Do NOT regenerate to make
   a perf refactor pass: a diff here means the refactor changed simulated
   behaviour, which is a bug by definition.

   Snapshot history: the gridmini/old-rt and testsnap/old-rt rows were
   regenerated when kernel malloc moved from a device-wide bump to
   per-team arena windows (the domain-parallel engine requires malloc
   addresses to be a pure function of (team, allocation order)). The
   128-byte-aligned windows shift the malloc'd data-sharing slots'
   transaction phase, slightly *improving* coalescing for those two
   proxies (global_transactions and cycles dropped; every other counter
   and every simulated result is unchanged). This was an intentional
   allocator-semantics change, not a perf-refactor regression. *)

module E = Ozo_harness.Experiments
module C = Ozo_core.Codesign
module Counters = Ozo_vgpu.Counters
module Registry = Ozo_proxies.Registry
module Proxy = Ozo_proxies.Proxy

(* (warp_insts, lane_insts, barriers, aligned_barriers, global_txns,
    shared_accs, atomics, mallocs, calls, divergent_branches, cycles) *)
type snap = int * int * int * int * int * int * int * int * int * int * int

let golden : (string * string * snap) list =
  [ ("xsbench", "old-rt", (1230, 38392, 12, 0, 1043, 128, 0, 2, 18, 19, 46148));
    ("xsbench", "new-rt", (994, 31398, 0, 0, 635, 0, 0, 0, 0, 13, 27232));
    ("rsbench", "old-rt", (1736, 54994, 12, 0, 620, 128, 0, 2, 18, 6, 30134));
    ("rsbench", "new-rt", (1500, 48000, 0, 0, 212, 0, 0, 0, 0, 0, 11218));
    ("gridmini", "old-rt", (1095, 30528, 18, 0, 654, 192, 0, 3, 27, 12, 31383));
    ("gridmini", "new-rt", (603, 16371, 0, 0, 332, 0, 0, 0, 0, 1, 14009));
    ("testsnap", "old-rt", (1612, 51026, 12, 0, 1068, 128, 0, 2, 18, 6, 48380));
    ("testsnap", "new-rt", (1392, 44544, 0, 0, 852, 0, 0, 0, 0, 0, 37152));
    ("minifmm", "old-rt", (492, 13785, 6, 0, 375, 68, 0, 2, 11, 4, 17619));
    ("minifmm", "new-rt", (431, 11664, 3, 3, 208, 408, 0, 0, 2, 1, 9401)) ]

(* Resource-model snapshot: (kernel regs, smem bytes, static spills).
   Pins the backend's register allocator, SMem layout and spill counts
   the same way [golden] pins the engine. Regenerate with the same
   OZO_GOLDEN_REGEN flow (grep GOLDEN-R). *)
type rsnap = int * int * int

let golden_resources : (string * string * rsnap) list =
  [ ("xsbench", "old-rt", (64, 2336, 0));
    ("xsbench", "new-rt", (21, 0, 0));
    ("rsbench", "old-rt", (64, 2336, 0));
    ("rsbench", "new-rt", (23, 0, 0));
    ("gridmini", "old-rt", (68, 2336, 0));
    ("gridmini", "new-rt", (25, 0, 0));
    ("testsnap", "old-rt", (60, 2336, 0));
    ("testsnap", "new-rt", (22, 0, 0));
    ("minifmm", "old-rt", (60, 2336, 0));
    ("minifmm", "new-rt", (31, 11312, 0)) ]

let rsnap_of (m : E.measurement) : rsnap = (m.E.r_regs, m.E.r_smem, m.E.r_spills)

let pp_rsnap ppf (a, b, c) = Fmt.pf ppf "(%d, %d, %d)" a b c

let snap_of (c : Counters.t) : snap =
  ( c.warp_instructions, c.lane_instructions, c.barriers, c.aligned_barriers,
    c.global_transactions, c.shared_accesses, c.atomics, c.mallocs, c.calls,
    c.divergent_branches, c.cycles )

let pp_snap ppf (a, b, c, d, e, f, g, h, i, j, k) =
  Fmt.pf ppf "(%d, %d, %d, %d, %d, %d, %d, %d, %d, %d, %d)" a b c d e f g h i j k

let build_of p = function
  | "old-rt" -> C.old_rt_nightly
  | "new-rt" -> E.new_rt_for p
  | b -> Alcotest.failf "unknown golden build %s" b

let small name =
  match List.find_opt (fun p -> p.Proxy.p_name = name) (Registry.all_small ()) with
  | Some p -> p
  | None -> Alcotest.failf "unknown proxy %s" name

let measure_once p b =
  let m = E.measure p b in
  (match m.E.r_fault with
  | None -> ()
  | Some f ->
    Alcotest.failf "%s/%s faulted: %s" m.E.r_proxy m.E.r_build
      (Ozo_vgpu.Fault.to_line f));
  (match m.E.r_check with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s/%s check failed: %s" m.E.r_proxy m.E.r_build e);
  m

let builds = [ "old-rt"; "new-rt" ]

let regen () =
  List.iter
    (fun p ->
      List.iter
        (fun bname ->
          let m = measure_once p (build_of p bname) in
          Fmt.pr "GOLDEN    (%S, %S, %a);@." p.Proxy.p_name bname pp_snap
            (snap_of m.E.r_counters);
          Fmt.pr "GOLDEN-R    (%S, %S, %a);@." p.Proxy.p_name bname pp_rsnap
            (rsnap_of m))
        builds)
    (Registry.all_small ());
  Alcotest.fail
    "golden snapshot regenerated; paste the GOLDEN lines into golden and the \
     GOLDEN-R lines into golden_resources"

let test_run_to_run () =
  List.iter
    (fun p ->
      List.iter
        (fun bname ->
          let b = build_of p bname in
          let m1 = measure_once p b in
          let m2 = measure_once p b in
          if not (Counters.equal m1.E.r_counters m2.E.r_counters) then
            Alcotest.failf "%s/%s: counters differ run-to-run:@.%a@.vs@.%a"
              p.Proxy.p_name bname Counters.pp m1.E.r_counters Counters.pp
              m2.E.r_counters;
          if m1.E.r_cycles <> m2.E.r_cycles then
            Alcotest.failf "%s/%s: kernel time differs run-to-run: %f vs %f"
              p.Proxy.p_name bname m1.E.r_cycles m2.E.r_cycles)
        builds)
    (Registry.all_small ())

let test_snapshot () =
  if Sys.getenv_opt "OZO_GOLDEN_REGEN" <> None then regen ();
  Alcotest.(check bool)
    "snapshot table covers every registry proxy x build" true
    (List.length golden = List.length (Registry.all_small ()) * List.length builds);
  List.iter
    (fun (pname, bname, expect) ->
      let p = small pname in
      let m = measure_once p (build_of p bname) in
      let got = snap_of m.E.r_counters in
      if got <> expect then
        Alcotest.failf
          "%s/%s: counters diverge from the seed snapshot (simulated results \
           changed!):@.expected %a@.got      %a"
          pname bname pp_snap expect pp_snap got)
    golden

let test_resource_snapshot () =
  if Sys.getenv_opt "OZO_GOLDEN_REGEN" <> None then regen ();
  Alcotest.(check bool)
    "resource table covers every registry proxy x build" true
    (List.length golden_resources
    = List.length (Registry.all_small ()) * List.length builds);
  List.iter
    (fun (pname, bname, expect) ->
      let p = small pname in
      let m = measure_once p (build_of p bname) in
      let got = rsnap_of m in
      if got <> expect then
        Alcotest.failf
          "%s/%s: (regs, smem, spills) diverge from the snapshot (resource \
           model changed!):@.expected %a@.got      %a"
          pname bname pp_rsnap expect pp_rsnap got)
    golden_resources

let suite =
  [ Alcotest.test_case "golden: run-to-run determinism" `Quick test_run_to_run;
    Alcotest.test_case "golden: counters match seed snapshot" `Quick test_snapshot;
    Alcotest.test_case "golden: resources match snapshot" `Quick
      test_resource_snapshot ]
