(* Virtual-GPU engine tests: SIMT semantics, divergence/reconvergence,
   barriers (including misuse detection), atomics, memory spaces,
   indirect calls, traps, assumption checking and runaway protection. *)

open Ozo_ir.Types
module B = Ozo_ir.Builder
module Device = Ozo_vgpu.Device
module Engine = Ozo_vgpu.Engine
module Memory = Ozo_vgpu.Memory
open Util

let out_arg dev n =
  let buf = Device.alloc dev (n * 8) in
  (buf, Engine.Ai (Device.ptr buf))

(* kernel writing f(tid) for each thread *)
let per_thread_kernel emit_value =
  kernel_module ~params:[ I64 ] (fun b ps ->
      match ps with
      | [ out ] ->
        let tid = B.thread_id b in
        let v = emit_value b tid in
        B.store b I64 v (B.ptradd b out (B.mul b tid (B.i64 8)))
      | _ -> assert false)

let test_thread_ids () =
  let m = per_thread_kernel (fun _ tid -> tid) in
  let dev = Device.create m in
  let buf, arg = out_arg dev 64 in
  (match Device.launch dev ~teams:1 ~threads:64 [ arg ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" Device.pp_error e);
  let got = i64_array dev buf 64 in
  Array.iteri (fun i v -> Alcotest.(check int) (Printf.sprintf "tid %d" i) i v) got

let test_intrinsics () =
  (* out[tid] = block_id * 1000 + block_dim *)
  let m =
    per_thread_kernel (fun b _ ->
        let bid = B.block_id b in
        let bdim = B.block_dim b in
        B.add b (B.mul b bid (B.i64 1000)) bdim)
  in
  let dev = Device.create m in
  let buf, arg = out_arg dev 32 in
  (match Device.launch dev ~teams:3 ~threads:32 [ arg ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" Device.pp_error e);
  (* teams run sequentially; the last team's writes survive *)
  let got = i64_array dev buf 32 in
  Alcotest.(check int) "last team" ((2 * 1000) + 32) got.(0)

let test_divergence_reconvergence () =
  (* if tid even then x = 10 else x = 20; out[tid] = x + 1 (after join) *)
  let m =
    kernel_module ~params:[ I64 ] (fun b ps ->
        match ps with
        | [ out ] ->
          let tid = B.thread_id b in
          let even = B.icmp b Eq (B.and_ b tid (B.i64 1)) (B.i64 0) in
          B.cond_br b even "even" "odd";
          B.set_block b "even";
          B.br b "join";
          B.set_block b "odd";
          B.br b "join";
          B.set_block b "join";
          let x = B.phi b I64 [ ("even", B.i64 10); ("odd", B.i64 20) ] in
          let v = B.add b x (B.i64 1) in
          B.store b I64 v (B.ptradd b out (B.mul b tid (B.i64 8)));
          B.ret b None
        | _ -> assert false)
  in
  let dev = Device.create m in
  let buf, arg = out_arg dev 32 in
  (match Device.launch dev ~teams:1 ~threads:32 [ arg ] with
  | Ok r ->
    Alcotest.(check bool) "diverged" true (r.Engine.r_total.divergent_branches > 0)
  | Error e -> Alcotest.failf "%a" Device.pp_error e);
  let got = i64_array dev buf 32 in
  Array.iteri
    (fun i v -> Alcotest.(check int) "phi value" (if i mod 2 = 0 then 11 else 21) v)
    got

let test_nested_divergence () =
  (* two nested data-dependent branches *)
  let m =
    kernel_module ~params:[ I64 ] (fun b ps ->
        match ps with
        | [ out ] ->
          let tid = B.thread_id b in
          let q = B.and_ b tid (B.i64 3) in
          let c0 = B.icmp b Slt q (B.i64 2) in
          B.cond_br b c0 "lo" "hi";
          B.set_block b "lo";
          let c1 = B.icmp b Eq q (B.i64 0) in
          B.cond_br b c1 "l0" "l1";
          B.set_block b "l0";
          B.br b "join";
          B.set_block b "l1";
          B.br b "join";
          B.set_block b "hi";
          let c2 = B.icmp b Eq q (B.i64 2) in
          B.cond_br b c2 "h2" "h3";
          B.set_block b "h2";
          B.br b "join";
          B.set_block b "h3";
          B.br b "join";
          B.set_block b "join";
          let v =
            B.phi b I64
              [ ("l0", B.i64 100); ("l1", B.i64 101); ("h2", B.i64 102); ("h3", B.i64 103) ]
          in
          B.store b I64 v (B.ptradd b out (B.mul b tid (B.i64 8)));
          B.ret b None
        | _ -> assert false)
  in
  let dev = Device.create m in
  let buf, arg = out_arg dev 32 in
  (match Device.launch dev ~teams:1 ~threads:32 [ arg ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" Device.pp_error e);
  let got = i64_array dev buf 32 in
  Array.iteri (fun i v -> Alcotest.(check int) "value" (100 + (i mod 4)) v) got

let test_shared_broadcast_via_barrier () =
  (* thread 0 writes shared, aligned barrier, all read *)
  let b = B.create "m" in
  let sh = B.add_global b ~space:Shared ~size:8 "sh" in
  let ps = B.begin_func b ~name:"k" ~kernel:true ~params:[ I64 ] ~ret:None () in
  B.set_block b "entry";
  (match ps with
  | [ out ] ->
    let tid = B.thread_id b in
    let is0 = B.icmp b Eq tid (B.i64 0) in
    (* conditional-pointer write (straight-line, keeps the barrier aligned) *)
    let dummy = B.alloca b 8 in
    let p = B.select b (Ptr Shared) is0 sh dummy in
    B.store b I64 (B.i64 777) p;
    B.barrier b ~aligned:true;
    let v = B.load b I64 sh in
    B.store b I64 v (B.ptradd b out (B.mul b tid (B.i64 8)));
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b);
  let m = B.finish b in
  check_verifies "broadcast" m;
  let dev = Device.create m in
  let buf, arg = out_arg dev 64 in
  (match Device.launch dev ~teams:1 ~threads:64 [ arg ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" Device.pp_error e);
  let got = i64_array dev buf 64 in
  Array.iter (fun v -> Alcotest.(check int) "broadcast value" 777 v) got

let test_worker_mainthread_barrier_pairing () =
  (* main lane signals workers through a generic barrier while diverged:
     requires strand-level scheduling (independent thread scheduling) *)
  let b = B.create "m" in
  let sh = B.add_global b ~space:Shared ~size:8 "work" in
  let ps = B.begin_func b ~name:"k" ~kernel:true ~params:[ I64 ] ~ret:None () in
  B.set_block b "entry";
  (match ps with
  | [ out ] ->
    let tid = B.thread_id b in
    let is_main = B.icmp b Eq tid (B.i64 31) in
    B.cond_br b is_main "main" "worker";
    B.set_block b "main";
    B.store b I64 (B.i64 123) sh;
    B.barrier b ~aligned:false;
    B.ret b None;
    B.set_block b "worker";
    B.barrier b ~aligned:false;
    let v = B.load b I64 sh in
    B.store b I64 v (B.ptradd b out (B.mul b tid (B.i64 8)));
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b);
  let m = B.finish b in
  let dev = Device.create m in
  let buf, arg = out_arg dev 32 in
  (match Device.launch dev ~teams:1 ~threads:32 [ arg ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" Device.pp_error e);
  let got = i64_array dev buf 32 in
  for i = 0 to 30 do
    Alcotest.(check int) "worker saw signal" 123 got.(i)
  done

let test_aligned_barrier_divergence_fault () =
  let m =
    kernel_module ~params:[] (fun b ps ->
        ignore ps;
        let tid = B.thread_id b in
        let c = B.icmp b Slt tid (B.i64 16) in
        B.if_then b c ~then_:(fun () -> B.barrier b ~aligned:true);
        B.barrier b ~aligned:true)
  in
  let f = expect_error ~threads:32 m [] in
  if Fault.is_trap f then Alcotest.failf "expected fault, got trap %s" f.Fault.f_msg;
  Alcotest.(check string) "fault kind" "divergent-barrier" (Fault.kind_name f.Fault.f_kind)

let test_partial_barrier_its_semantics () =
  (* half the warp hits a barrier inside a divergent region. Post-Volta
     independent thread scheduling lets the other half run ahead to the
     kernel exit, after which the barrier completes among the remaining
     threads — the engine's forced partial reconvergence models this. *)
  let m =
    kernel_module ~params:[] (fun b ps ->
        ignore ps;
        let tid = B.thread_id b in
        let c = B.icmp b Slt tid (B.i64 16) in
        B.if_then b c ~then_:(fun () -> B.barrier b ~aligned:false))
  in
  let dev = Device.create m in
  match Device.launch dev ~teams:1 ~threads:32 [] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "ITS should complete: %a" Device.pp_error e

let test_runaway_divergent_spin () =
  (* a divergent side spinning forever is caught by the budget *)
  let m =
    kernel_module ~params:[] (fun b ps ->
        ignore ps;
        let tid = B.thread_id b in
        let c = B.icmp b Slt tid (B.i64 16) in
        B.cond_br b c "sync" "spin";
        B.set_block b "sync";
        B.barrier b ~aligned:false;
        B.ret b None;
        B.set_block b "spin";
        B.br b "spin")
  in
  let dev = Device.create m in
  match
    Device.launch
      ~opts:{ Device.Launch_opts.default with Device.Launch_opts.budget = 20_000 }
      dev ~teams:1 ~threads:32 []
  with
  | Ok _ -> Alcotest.fail "expected a fault"
  | Error f when Fault.is_trap f ->
    Alcotest.failf "expected fault, got trap %s" f.Fault.f_msg
  | Error _ -> ()

let test_exited_threads_dont_block_barrier () =
  (* half the threads return immediately; the rest synchronize fine *)
  let m =
    kernel_module ~params:[] (fun b ps ->
        ignore ps;
        let tid = B.thread_id b in
        let c = B.icmp b Slt tid (B.i64 16) in
        B.cond_br b c "sync" "quit";
        B.set_block b "quit";
        B.ret b None;
        B.set_block b "sync";
        B.barrier b ~aligned:false;
        B.ret b None)
  in
  let dev = Device.create m in
  match Device.launch dev ~teams:1 ~threads:32 [] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" Device.pp_error e

let test_atomic_add () =
  let b = B.create "m" in
  let acc = B.add_global b ~space:Global ~size:8 "acc" in
  let ps = B.begin_func b ~name:"k" ~kernel:true ~params:[ I64 ] ~ret:None () in
  B.set_block b "entry";
  (match ps with
  | [ out ] ->
    B.atomic_add b I64 acc (B.i64 1);
    B.barrier b ~aligned:true;
    let v = B.load b I64 acc in
    let tid = B.thread_id b in
    B.store b I64 v (B.ptradd b out (B.mul b tid (B.i64 8)));
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b);
  let m = B.finish b in
  let dev = Device.create m in
  let buf, arg = out_arg dev 64 in
  (match Device.launch dev ~teams:2 ~threads:64 [ arg ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" Device.pp_error e);
  (* both teams incremented the same global: 128 after the second team *)
  let got = i64_array dev buf 64 in
  Alcotest.(check int) "second team sees all" 128 got.(0)

let test_atomic_f64 () =
  let b = B.create "m" in
  let acc = B.add_global b ~space:Global ~size:8 "facc" in
  let ps = B.begin_func b ~name:"k" ~kernel:true ~params:[ I64 ] ~ret:None () in
  B.set_block b "entry";
  (match ps with
  | [ out ] ->
    B.atomic_add b F64 acc (B.f64 0.5);
    B.barrier b ~aligned:true;
    let v = B.load b F64 acc in
    let tid = B.thread_id b in
    B.store b F64 v (B.ptradd b out (B.mul b tid (B.i64 8)));
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b);
  let m = B.finish b in
  let dev = Device.create m in
  let buf, arg = out_arg dev 32 in
  (match Device.launch dev ~teams:1 ~threads:32 [ arg ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" Device.pp_error e);
  let got = f64_array dev buf 32 in
  Alcotest.(check (float 1e-9)) "f64 atomic sum" 16.0 got.(0)

let test_malloc_roundtrip () =
  let m =
    kernel_module ~params:[ I64 ] (fun b ps ->
        match ps with
        | [ out ] ->
          let tid = B.thread_id b in
          let p = B.malloc b (B.i64 8) in
          B.store b I64 (B.add b tid (B.i64 5)) p;
          let v = B.load b I64 p in
          B.store b I64 v (B.ptradd b out (B.mul b tid (B.i64 8)));
          B.free b p
        | _ -> assert false)
  in
  let dev = Device.create m in
  let buf, arg = out_arg dev 32 in
  (match Device.launch dev ~teams:1 ~threads:32 [ arg ] with
  | Ok r -> Alcotest.(check bool) "mallocs counted" true (r.Engine.r_total.mallocs > 0)
  | Error e -> Alcotest.failf "%a" Device.pp_error e);
  let got = i64_array dev buf 32 in
  Array.iteri (fun i v -> Alcotest.(check int) "roundtrip" (i + 5) v) got

let test_alloca_isolation () =
  (* each thread's stack slot is private *)
  let m =
    kernel_module ~params:[ I64 ] (fun b ps ->
        match ps with
        | [ out ] ->
          let tid = B.thread_id b in
          let p = B.alloca b 8 in
          B.store b I64 tid p;
          B.barrier b ~aligned:true;
          let v = B.load b I64 p in
          B.store b I64 v (B.ptradd b out (B.mul b tid (B.i64 8)))
        | _ -> assert false)
  in
  let dev = Device.create m in
  let buf, arg = out_arg dev 32 in
  (match Device.launch dev ~teams:1 ~threads:32 [ arg ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" Device.pp_error e);
  let got = i64_array dev buf 32 in
  Array.iteri (fun i v -> Alcotest.(check int) "private" i v) got

let test_trap () =
  let m = kernel_module ~params:[] (fun b _ -> B.trap b "boom") in
  let f = expect_error m [] in
  if Fault.is_trap f then Alcotest.(check string) "message" "boom" f.Fault.f_msg
  else Alcotest.failf "expected trap, got fault %s" f.Fault.f_msg

let test_assume_checking () =
  let mk value =
    kernel_module ~params:[] (fun b _ -> B.assume b (B.i64 value))
  in
  (* violated assumption ignored without checking *)
  let dev = Device.create (mk 0) in
  (match Device.launch dev ~teams:1 ~threads:32 [] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "release should ignore: %a" Device.pp_error e);
  (* trapped with checking on *)
  (let f = expect_error ~check_assumes:true (mk 0) [] in
   if Fault.is_trap f then
     Alcotest.(check bool) "msg" true (contains f.Fault.f_msg "assumption")
   else Alcotest.failf "expected trap, got fault %s" f.Fault.f_msg);
  (* holding assumption passes either way *)
  let dev = Device.create (mk 1) in
  match
    Device.launch
      ~opts:
        { Device.Launch_opts.default with Device.Launch_opts.check_assumes = true }
      dev ~teams:1 ~threads:32 []
  with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "holding assume: %a" Device.pp_error e

let test_budget_exceeded () =
  let m =
    kernel_module ~params:[] (fun b _ ->
        B.br b "spin";
        B.set_block b "spin";
        B.br b "spin")
  in
  let dev = Device.create m in
  match
    Device.launch
      ~opts:{ Device.Launch_opts.default with Device.Launch_opts.budget = 10_000 }
      dev ~teams:1 ~threads:32 []
  with
  | Ok _ -> Alcotest.fail "expected budget fault"
  | Error f when Fault.is_trap f ->
    Alcotest.failf "expected fault, got trap %s" f.Fault.f_msg
  | Error f -> Alcotest.(check bool) "budget" true (contains f.Fault.f_msg "budget")

let test_switch_divergent () =
  let m =
    kernel_module ~params:[ I64 ] (fun b ps ->
        match ps with
        | [ out ] ->
          let tid = B.thread_id b in
          let q = B.and_ b tid (B.i64 3) in
          B.terminate b
            (Switch (q, [ (0L, "c0"); (1L, "c1"); (2L, "c2") ], "cd"));
          List.iteri
            (fun i lbl ->
              B.set_block b lbl;
              let v = B.i64 (500 + i) in
              B.store b I64 v (B.ptradd b out (B.mul b tid (B.i64 8)));
              B.ret b None)
            [ "c0"; "c1"; "c2"; "cd" ]
        | _ -> assert false)
  in
  let dev = Device.create m in
  let buf, arg = out_arg dev 32 in
  (match Device.launch dev ~teams:1 ~threads:32 [ arg ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" Device.pp_error e);
  let got = i64_array dev buf 32 in
  Array.iteri (fun i v -> Alcotest.(check int) "switch arm" (500 + (i mod 4)) v) got

let test_indirect_call () =
  let b = B.create "m" in
  (match B.begin_func b ~name:"callee" ~params:[ I64 ] ~ret:(Some I64) () with
  | [ x ] ->
    B.set_block b "entry";
    let v = B.mul b x (B.i64 3) in
    B.ret b (Some v)
  | _ -> assert false);
  ignore (B.end_func b);
  let ps = B.begin_func b ~name:"k" ~kernel:true ~params:[ I64 ] ~ret:None () in
  B.set_block b "entry";
  (match ps with
  | [ out ] ->
    let tid = B.thread_id b in
    let r = B.fresh_reg b in
    B.append b (Call_indirect (Some r, Some I64, Func_addr "callee", [ tid ]));
    B.store b I64 (Reg r) (B.ptradd b out (B.mul b tid (B.i64 8)));
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b);
  let m = B.finish b in
  let dev = Device.create m in
  let buf, arg = out_arg dev 32 in
  (match Device.launch dev ~teams:1 ~threads:32 [ arg ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" Device.pp_error e);
  let got = i64_array dev buf 32 in
  Array.iteri (fun i v -> Alcotest.(check int) "indirect" (i * 3) v) got

let test_call_in_divergence () =
  (* function call under a divergent branch: only half the lanes call *)
  let b = B.create "m" in
  (match B.begin_func b ~name:"sq" ~params:[ I64 ] ~ret:(Some I64) () with
  | [ x ] ->
    B.set_block b "entry";
    B.ret b (Some (B.mul b x x))
  | _ -> assert false);
  ignore (B.end_func b);
  let ps = B.begin_func b ~name:"k" ~kernel:true ~params:[ I64 ] ~ret:None () in
  B.set_block b "entry";
  (match ps with
  | [ out ] ->
    let tid = B.thread_id b in
    let slot = B.ptradd b out (B.mul b tid (B.i64 8)) in
    let c = B.icmp b Slt tid (B.i64 16) in
    B.cond_br b c "callit" "skip";
    B.set_block b "callit";
    let v = B.call_val b "sq" [ tid ] in
    B.store b I64 v slot;
    B.ret b None;
    B.set_block b "skip";
    B.store b I64 (B.i64 (-1)) slot;
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b);
  let m = B.finish b in
  let dev = Device.create m in
  let buf, arg = out_arg dev 32 in
  (match Device.launch dev ~teams:1 ~threads:32 [ arg ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" Device.pp_error e);
  let got = i64_array dev buf 32 in
  Array.iteri
    (fun i v -> Alcotest.(check int) "masked call" (if i < 16 then i * i else -1) v)
    got

let test_i32_store_load () =
  let m =
    kernel_module ~params:[ I64 ] (fun b ps ->
        match ps with
        | [ out ] ->
          let p = B.alloca b 8 in
          B.store b I32 (B.i64 0xABCD) p;
          let v = B.load b I32 p in
          let tid = B.thread_id b in
          B.store b I64 v (B.ptradd b out (B.mul b tid (B.i64 8)))
        | _ -> assert false)
  in
  let dev = Device.create m in
  let buf, arg = out_arg dev 1 in
  (match Device.launch dev ~teams:1 ~threads:1 [ arg ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" Device.pp_error e);
  Alcotest.(check int) "i32 roundtrip" 0xABCD (i64_array dev buf 1).(0)

let test_coalescing_counter () =
  (* strided access touches more segments than unit-stride *)
  let mk stride =
    kernel_module ~params:[ I64 ] (fun b ps ->
        match ps with
        | [ base ] ->
          let tid = B.thread_id b in
          let off = B.mul b tid (B.i64 stride) in
          let _ = B.load b F64 (B.ptradd b base off) in
          B.ret b None
        | _ -> assert false)
  in
  let run stride =
    let m = mk stride in
    let dev = Device.create m in
    let buf = Device.alloc dev (32 * 1024) in
    match Device.launch dev ~teams:1 ~threads:32 [ Engine.Ai (Device.ptr buf) ] with
    | Ok r -> r.Engine.r_total.global_transactions
    | Error e -> Alcotest.failf "%a" Device.pp_error e
  in
  let coalesced = run 8 and strided = run 256 in
  Alcotest.(check bool)
    (Printf.sprintf "coalesced %d < strided %d" coalesced strided)
    true (coalesced < strided)

let suite =
  [ tc "thread ids" test_thread_ids;
    tc "block intrinsics" test_intrinsics;
    tc "divergence + reconvergence + phi" test_divergence_reconvergence;
    tc "nested divergence" test_nested_divergence;
    tc "shared-memory broadcast through aligned barrier" test_shared_broadcast_via_barrier;
    tc "generic barrier pairing under divergence" test_worker_mainthread_barrier_pairing;
    tc "aligned barrier divergence faults" test_aligned_barrier_divergence_fault;
    tc "partial barrier completes (ITS semantics)" test_partial_barrier_its_semantics;
    tc "runaway divergent spin faults" test_runaway_divergent_spin;
    tc "exited threads don't block barriers" test_exited_threads_dont_block_barrier;
    tc "atomic add across teams" test_atomic_add;
    tc "atomic f64 add" test_atomic_f64;
    tc "malloc roundtrip" test_malloc_roundtrip;
    tc "alloca privacy" test_alloca_isolation;
    tc "trap aborts" test_trap;
    tc "assume checking (debug vs release)" test_assume_checking;
    tc "instruction budget" test_budget_exceeded;
    tc "divergent switch" test_switch_divergent;
    tc "indirect call" test_indirect_call;
    tc "call under divergence" test_call_in_divergence;
    tc "i32 store/load" test_i32_store_load;
    tc "coalescing model" test_coalescing_counter ]
