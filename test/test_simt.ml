(* Regression tests for the subtle SIMT scheduling behaviours: return-site
   reconvergence, chained loop-exit joins, forced partial reconvergence,
   and per-lane return values under divergence. Each of these pins a bug
   found during development. *)

open Ozo_ir.Types
module B = Ozo_ir.Builder
module Device = Ozo_vgpu.Device
module Engine = Ozo_vgpu.Engine
open Util

(* A callee whose branches all return (no intra-function reconvergence):
   the warp must reconverge at the call's return site, not split
   permanently. Detect via warp_instructions: after reconvergence the
   follow-up code issues once per warp, not once per divergent group. *)
let test_return_site_reconvergence () =
  let b = B.create "m" in
  (match B.begin_func b ~name:"pick" ~params:[ I64 ] ~ret:(Some I64) () with
  | [ x ] ->
    B.set_block b "entry";
    let c = B.icmp b Slt x (B.i64 16) in
    B.cond_br b c "lo" "hi";
    B.set_block b "lo";
    B.ret b (Some (B.add b x (B.i64 100)));
    B.set_block b "hi";
    B.ret b (Some (B.add b x (B.i64 200)))
  | _ -> assert false);
  ignore (B.end_func b);
  let ps = B.begin_func b ~name:"k" ~kernel:true ~params:[ I64 ] ~ret:None () in
  B.set_block b "entry";
  (match ps with
  | [ out ] ->
    let tid = B.thread_id b in
    let v = B.call_val b "pick" [ tid ] in
    (* post-call tail: should execute as ONE full warp *)
    let w = B.mul b v (B.i64 2) in
    B.store b I64 w (B.ptradd b out (B.mul b tid (B.i64 8)));
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b);
  let m = B.finish b in
  let dev = Device.create m in
  let out = Device.alloc dev (32 * 8) in
  match Device.launch dev ~teams:1 ~threads:32 [ Engine.Ai (Device.ptr out) ] with
  | Error e -> Alcotest.failf "%a" Device.pp_error e
  | Ok r ->
    let got = i64_array dev out 32 in
    Array.iteri
      (fun i v ->
        Alcotest.(check int) "per-lane ret value"
          ((i + if i < 16 then 100 else 200) * 2)
          v)
      got;
    (* the kernel tail is 4 instructions; with permanent splitting they
       would issue twice (once per divergent group). The issue total must
       stay below the split scenario. *)
    Alcotest.(check bool)
      (Printf.sprintf "warp issues reconverged (%d)" r.Engine.r_total.warp_instructions)
      true
      (r.Engine.r_total.warp_instructions <= 17)

(* Chained loop-exit joins: threads leave a loop after different trip
   counts; the merged strand materializes directly on the outer join's
   reconvergence point and must arrive there rather than running on. *)
let test_chained_loop_exit_joins () =
  let m =
    kernel_module ~params:[ I64 ] (fun b ps ->
        match ps with
        | [ out ] ->
          let tid = B.thread_id b in
          (* per-lane trip count: tid / 8 + 1 -> four different groups *)
          let trips = B.add b (B.sdiv b tid (B.i64 8)) (B.i64 1) in
          let acc = B.alloca b 8 in
          B.store b I64 (B.i64 0) acc;
          ignore
            (B.for_loop b ~lo:(B.i64 0) ~hi:trips ~step:(B.i64 1) ~body:(fun _ ->
                 let v = B.load b I64 acc in
                 B.store b I64 (B.add b v (B.i64 1)) acc));
          let v = B.load b I64 acc in
          B.store b I64 v (B.ptradd b out (B.mul b tid (B.i64 8)));
          B.ret b None
        | _ -> assert false)
  in
  let dev = Device.create m in
  let out = Device.alloc dev (32 * 8) in
  match Device.launch dev ~teams:1 ~threads:32 [ Engine.Ai (Device.ptr out) ] with
  | Error e -> Alcotest.failf "%a" Device.pp_error e
  | Ok _ ->
    let got = i64_array dev out 32 in
    Array.iteri (fun i v -> Alcotest.(check int) "trips" ((i / 8) + 1) v) got

(* Forced partial reconvergence: lanes parked at a join whose sibling
   performs team barriers must run ahead (the `if (init() == 1)` shape).
   Exercised here directly: half a warp waits at the join while the other
   half synchronizes twice with the second warp. *)
let test_forced_partial_reconvergence () =
  let b = B.create "m" in
  let sh = B.add_global b ~space:Shared ~size:8 "sh" in
  let ps = B.begin_func b ~name:"k" ~kernel:true ~params:[ I64 ] ~ret:None () in
  B.set_block b "entry";
  (match ps with
  | [ out ] ->
    let tid = B.thread_id b in
    let active = B.icmp b Eq (B.and_ b tid (B.i64 1)) (B.i64 0) in
    B.if_then b active ~then_:(fun () ->
        (* even lanes: publish and synchronize; odd lanes park at the join *)
        let is0 = B.icmp b Eq tid (B.i64 0) in
        let dummy = B.alloca b 8 in
        let p = B.select b (Ptr Shared) is0 sh dummy in
        B.store b I64 (B.i64 5) p;
        B.barrier b ~aligned:false;
        B.barrier b ~aligned:false);
    (* join: everyone writes its view *)
    let v = B.load b I64 sh in
    B.store b I64 v (B.ptradd b out (B.mul b tid (B.i64 8)));
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b);
  let m = B.finish b in
  let dev = Device.create m in
  let out = Device.alloc dev (32 * 8) in
  match Device.launch dev ~teams:1 ~threads:32 [ Engine.Ai (Device.ptr out) ] with
  | Error e -> Alcotest.failf "%a" Device.pp_error e
  | Ok _ ->
    let got = i64_array dev out 32 in
    (* even lanes synchronized after the write: they must see 5 *)
    Array.iteri
      (fun i v -> if i mod 2 = 0 then Alcotest.(check int) "synced view" 5 v)
      got

(* Divergent trip counts + a barrier after the loop: the barrier must wait
   for the longest-running lanes (join merge happens before the barrier). *)
let test_barrier_after_divergent_loop () =
  let b = B.create "m" in
  let sh = B.add_global b ~space:Shared ~size:8 "total" in
  let ps = B.begin_func b ~name:"k" ~kernel:true ~params:[ I64 ] ~ret:None () in
  B.set_block b "entry";
  (match ps with
  | [ out ] ->
    let tid = B.thread_id b in
    let trips = B.add b tid (B.i64 1) in
    ignore
      (B.for_loop b ~lo:(B.i64 0) ~hi:trips ~step:(B.i64 1) ~body:(fun _ ->
           B.atomic_add b I64 sh (B.i64 1)));
    B.barrier b ~aligned:true;
    (* after the barrier everyone sees the full sum: 1+2+...+32 = 528 *)
    let v = B.load b I64 sh in
    B.store b I64 v (B.ptradd b out (B.mul b tid (B.i64 8)));
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b);
  let m = B.finish b in
  let dev = Device.create m in
  let out = Device.alloc dev (32 * 8) in
  match Device.launch dev ~teams:1 ~threads:32 [ Engine.Ai (Device.ptr out) ] with
  | Error e -> Alcotest.failf "%a" Device.pp_error e
  | Ok _ ->
    let got = i64_array dev out 32 in
    Array.iter (fun v -> Alcotest.(check int) "full sum visible" 528 v) got

(* Per-lane local stack pointers are restored when a strand returns under
   divergence (no leak across masked calls in a loop). *)
let test_sp_restore_under_divergence () =
  let b = B.create "m" in
  (match B.begin_func b ~name:"scratch" ~params:[] ~ret:(Some I64) () with
  | [] ->
    B.set_block b "entry";
    let p = B.alloca b 1024 in
    B.store b I64 (B.i64 1) p;
    B.ret b (Some (B.load b I64 p))
  | _ -> assert false);
  ignore (B.end_func b);
  ignore (B.begin_func b ~name:"k" ~kernel:true ~params:[] ~ret:None ());
  B.set_block b "entry";
  let tid = B.thread_id b in
  let odd = B.icmp b Eq (B.and_ b tid (B.i64 1)) (B.i64 1) in
  ignore
    (B.for_loop b ~lo:(B.i64 0) ~hi:(B.i64 100) ~step:(B.i64 1) ~body:(fun _ ->
         B.if_then b odd ~then_:(fun () -> ignore (B.call_val b "scratch" []))));
  B.ret b None;
  ignore (B.end_func b);
  let m = B.finish b in
  let dev = Device.create m in
  (* 100 iterations x 1KB would overflow the 16KB stack without restore *)
  match Device.launch dev ~teams:1 ~threads:32 [] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" Device.pp_error e

(* Many-strand stress: 4 teams x 256 threads, each with a data-dependent
   trip count and a nested divergent branch per iteration. Every warp
   splits and rejoins hundreds of times, so the scheduler's strand vector
   churns through creation, join arrival and dead-strand compaction at
   scale. Results are checked exactly against a host-side model: any
   dropped, duplicated or misordered strand shows up as a wrong lane. *)
let test_many_strand_stress () =
  let n_teams = 4 and n_threads = 256 in
  let total = n_teams * n_threads in
  let m =
    kernel_module ~params:[ I64 ] (fun b ps ->
        match ps with
        | [ out ] ->
          let gid =
            B.add b (B.mul b (B.block_id b) (B.block_dim b)) (B.thread_id b)
          in
          let acc = B.alloca b 8 in
          B.store b I64 (B.i64 0) acc;
          (* per-lane trip count 1..32: the loop exits lane by lane *)
          let trip = B.add b (B.and_ b gid (B.i64 31)) (B.i64 1) in
          ignore
            (B.for_loop b ~lo:(B.i64 0) ~hi:trip ~step:(B.i64 1)
               ~body:(fun iv ->
                 let odd =
                   B.icmp b Eq (B.and_ b (B.add b gid iv) (B.i64 1)) (B.i64 1)
                 in
                 B.if_then_else b odd
                   ~then_:(fun () ->
                     B.store b I64
                       (B.add b (B.load b I64 acc) (B.mul b iv (B.i64 3)))
                       acc)
                   ~else_:(fun () ->
                     B.store b I64 (B.add b (B.load b I64 acc) iv) acc)));
          B.store b I64 (B.load b I64 acc)
            (B.ptradd b out (B.mul b gid (B.i64 8)))
        | _ -> assert false)
  in
  let dev = Device.create m in
  let out = Device.alloc dev (total * 8) in
  match
    Device.launch dev ~teams:n_teams ~threads:n_threads
      [ Engine.Ai (Device.ptr out) ]
  with
  | Error e -> Alcotest.failf "%a" Device.pp_error e
  | Ok _ ->
    let got = i64_array dev out total in
    for gid = 0 to total - 1 do
      let expect = ref 0 in
      for iv = 0 to (gid land 31) + 1 - 1 do
        expect := !expect + (if (gid + iv) land 1 = 1 then 3 * iv else iv)
      done;
      Alcotest.(check int)
        (Printf.sprintf "thread %d accumulator" gid)
        !expect got.(gid)
    done

let suite =
  [ tc "return-site reconvergence" test_return_site_reconvergence;
    tc "chained loop-exit joins" test_chained_loop_exit_joins;
    tc "forced partial reconvergence (ITS)" test_forced_partial_reconvergence;
    tc "barrier after divergent loop" test_barrier_after_divergent_loop;
    tc "stack pointer restore under divergence" test_sp_restore_under_divergence;
    tc "many-strand stress (4x256, divergent loop)" test_many_strand_stress ]
