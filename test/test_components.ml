(* Unit tests for the supporting components: memory subsystem, cost /
   occupancy model, counters, PRNG, proxy generators and references,
   CSE pass, call graph, pointer resolution, and the harness report
   formatting. *)

open Ozo_ir.Types
module B = Ozo_ir.Builder
module Memory = Ozo_vgpu.Memory
module Cost = Ozo_vgpu.Cost
module Counters = Ozo_vgpu.Counters
module Device = Ozo_vgpu.Device
module Engine = Ozo_vgpu.Engine
open Util

(* --- memory -------------------------------------------------------------- *)

let test_pointer_encoding () =
  List.iter
    (fun space ->
      List.iter
        (fun off ->
          let p = Memory.encode space off in
          let space', off' = Memory.decode p in
          Alcotest.(check bool) "space" true (space = space');
          Alcotest.(check int) "off" off off')
        [ 0; 1; 4095; 1 lsl 20 ])
    [ Global; Shared; Local; Constant ];
  Alcotest.(check int) "null" 0 Memory.null

let test_memory_rw () =
  let m = Memory.create ~threads_per_team:4 in
  let p = Memory.alloc_global m 64 in
  Memory.store_int m ~thread:0 p I64 12345;
  Alcotest.(check int) "i64" 12345 (Memory.load_int m ~thread:0 p I64);
  Memory.store_int m ~thread:0 p I32 (-7);
  Alcotest.(check bool) "i32 truncated readback" true
    (Memory.load_int m ~thread:0 p I32 land 0xFFFFFFFF
    = (-7) land 0xFFFFFFFF);
  Memory.store_float m ~thread:0 p 3.25;
  Alcotest.(check (float 0.0)) "f64" 3.25 (Memory.load_float m ~thread:0 p);
  Memory.store_int m ~thread:0 p I1 3;
  Alcotest.(check int) "i1 masks" 1 (Memory.load_int m ~thread:0 p I1)

let test_memory_growth () =
  let m = Memory.create ~threads_per_team:1 in
  (* allocate beyond the initial capacity *)
  let p = Memory.alloc_global m (1 lsl 20) in
  let far = p + (1 lsl 20) - 8 in
  Memory.store_int m ~thread:0 far I64 9;
  Alcotest.(check int) "far write" 9 (Memory.load_int m ~thread:0 far I64)

let test_local_stack () =
  let m = Memory.create ~threads_per_team:2 in
  let a0 = Memory.alloca m ~thread:0 16 in
  let a1 = Memory.alloca m ~thread:1 16 in
  Memory.store_int m ~thread:0 a0 I64 1;
  Memory.store_int m ~thread:1 a1 I64 2;
  Alcotest.(check int) "thread 0 private" 1 (Memory.load_int m ~thread:0 a0 I64);
  Alcotest.(check int) "thread 1 private" 2 (Memory.load_int m ~thread:1 a1 I64);
  let sp = Memory.local_sp m ~thread:0 in
  let _ = Memory.alloca m ~thread:0 32 in
  Memory.set_local_sp m ~thread:0 sp;
  Alcotest.(check int) "sp restored" sp (Memory.local_sp m ~thread:0)

let test_store_to_constant_rejected () =
  let m = Memory.create ~threads_per_team:1 in
  let p = Memory.alloc_const m 8 in
  match Memory.store_int m ~thread:0 p I64 1 with
  | exception Ozo_vgpu.Fault.Kernel_fault f ->
    Alcotest.(check string) "fault kind" "invalid"
      (Ozo_vgpu.Fault.kind_name f.Ozo_vgpu.Fault.f_kind)
  | () -> Alcotest.fail "store to constant memory must fail"

(* --- cost / occupancy ----------------------------------------------------- *)

let test_occupancy_constraints () =
  let p = Cost.default in
  (* threads bound *)
  let o = Cost.occupancy p ~threads_per_team:2048 ~regs_per_thread:1 ~shared_per_team:0 in
  Alcotest.(check int) "one big team" 1 o.Cost.o_teams_per_sm;
  (* register bound: 32 regs * 64 thr = 2048 regs/team; 32768/2048 = 16 *)
  let o = Cost.occupancy p ~threads_per_team:64 ~regs_per_thread:32 ~shared_per_team:0 in
  Alcotest.(check int) "regs bind" 16 o.Cost.o_teams_per_sm;
  (* shared bound: 50KB/team -> 2 teams *)
  let o =
    Cost.occupancy p ~threads_per_team:64 ~regs_per_thread:1 ~shared_per_team:(50 * 1024)
  in
  Alcotest.(check int) "smem binds" 2 o.Cost.o_teams_per_sm;
  (* max teams cap *)
  let o = Cost.occupancy p ~threads_per_team:1 ~regs_per_thread:1 ~shared_per_team:0 in
  Alcotest.(check int) "cap" p.Cost.max_teams_per_sm o.Cost.o_teams_per_sm

let test_kernel_time_monotonic () =
  let p = Cost.default in
  let occ_hi = Cost.occupancy p ~threads_per_team:64 ~regs_per_thread:8 ~shared_per_team:0 in
  let occ_lo =
    Cost.occupancy p ~threads_per_team:64 ~regs_per_thread:64 ~shared_per_team:(20 * 1024)
  in
  let cycles = List.init 16 (fun _ -> 1000) in
  let t_hi = Cost.kernel_time p ~occupancy:occ_hi ~team_cycles:cycles ~mem_cycles:8000 in
  let t_lo = Cost.kernel_time p ~occupancy:occ_lo ~team_cycles:cycles ~mem_cycles:8000 in
  Alcotest.(check bool) "lower occupancy is slower" true (t_lo > t_hi);
  (* compute-only cycles are insensitive to occupancy *)
  let c_hi = Cost.kernel_time p ~occupancy:occ_hi ~team_cycles:cycles ~mem_cycles:0 in
  let c_lo = Cost.kernel_time p ~occupancy:occ_lo ~team_cycles:cycles ~mem_cycles:0 in
  Alcotest.(check bool) "no memory -> occupancy-insensitive (same wave count)" true
    (Float.abs (c_lo -. c_hi) < 1e-9);
  Alcotest.(check (float 0.0)) "empty" 0.0
    (Cost.kernel_time p ~occupancy:occ_hi ~team_cycles:[] ~mem_cycles:0)

let test_counters_add_and_memcycles () =
  let a = Counters.create () and b = Counters.create () in
  a.Counters.cycles <- 10;
  a.Counters.global_transactions <- 3;
  b.Counters.cycles <- 5;
  b.Counters.mallocs <- 2;
  let c = Counters.add a b in
  Alcotest.(check int) "cycles" 15 c.Counters.cycles;
  Alcotest.(check int) "txns" 3 c.Counters.global_transactions;
  let mc = Counters.memory_cycles Cost.default c in
  Alcotest.(check int) "memory cycles"
    ((3 * Cost.default.Cost.c_global_segment) + (2 * Cost.default.Cost.c_malloc))
    mc

(* --- prng / proxies -------------------------------------------------------- *)

let test_prng_determinism () =
  let a = Ozo_proxies.Prng.create 42 and b = Ozo_proxies.Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check (float 0.0)) "same stream" (Ozo_proxies.Prng.float a)
      (Ozo_proxies.Prng.float b)
  done;
  let c = Ozo_proxies.Prng.create 43 in
  Alcotest.(check bool) "different seed differs" true
    (Ozo_proxies.Prng.float a <> Ozo_proxies.Prng.float c)

let test_prng_ranges () =
  let r = Ozo_proxies.Prng.create 7 in
  for _ = 1 to 1000 do
    let f = Ozo_proxies.Prng.float r in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of range: %f" f;
    let i = Ozo_proxies.Prng.int r 10 in
    if i < 0 || i >= 10 then Alcotest.failf "int out of range: %d" i;
    let g = Ozo_proxies.Prng.float_range r 2.0 3.0 in
    if g < 2.0 || g >= 3.0 then Alcotest.failf "range out of range: %f" g
  done

let test_xsbench_generator_invariants () =
  let p = Ozo_proxies.Xsbench.small in
  let d = Ozo_proxies.Xsbench.generate p in
  let u = p.Ozo_proxies.Xsbench.n_nuclides * p.Ozo_proxies.Xsbench.n_gridpoints in
  (* unionized grid sorted *)
  for i = 1 to u - 1 do
    if d.Ozo_proxies.Xsbench.egrid.(i - 1) > d.Ozo_proxies.Xsbench.egrid.(i) then
      Alcotest.fail "egrid not sorted"
  done;
  (* index grid in range and consistent with nuclide grids *)
  Array.iter
    (fun idx ->
      if idx < 0 || idx > p.Ozo_proxies.Xsbench.n_gridpoints - 2 then
        Alcotest.fail "index grid out of range")
    d.Ozo_proxies.Xsbench.index_grid

let test_references_deterministic () =
  (* same params -> identical problem data and reference results *)
  let r1 = Ozo_proxies.Xsbench.(reference small (generate small)) in
  let r2 = Ozo_proxies.Xsbench.(reference small (generate small)) in
  Alcotest.(check bool) "deterministic" true (r1 = r2)

(* --- cse -------------------------------------------------------------------- *)

let test_cse_dedups () =
  let m =
    kernel_module ~params:[ I64 ] (fun b ps ->
        match ps with
        | [ out ] ->
          let t1 = B.thread_id b in
          let t2 = B.thread_id b in
          let a1 = B.mul b t1 (B.i64 8) in
          let a2 = B.mul b t2 (B.i64 8) in
          let s = B.add b a1 a2 in
          B.store b I64 s (B.ptradd b out a1)
        | _ -> assert false)
  in
  let m', changed = Ozo_opt.Cse.run m in
  Alcotest.(check bool) "changed" true changed;
  check_verifies "cse" m';
  let kf = find_func_exn m' "k" in
  Alcotest.(check int) "one thread.id" 1
    (count_in_func (function Intrinsic (_, Thread_id) -> true | _ -> false) kf);
  Alcotest.(check int) "one mul" 1
    (count_in_func (function Binop (_, Mul, _, _) -> true | _ -> false) kf);
  (* execution unchanged *)
  let dev = Device.create m' in
  let out = Device.alloc dev (32 * 8) in
  (match Device.launch dev ~teams:1 ~threads:32 [ Engine.Ai (Device.ptr out) ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" Device.pp_error e);
  Alcotest.(check int) "value" (5 * 8 * 2) (i64_array dev out 32).(5)

let test_cse_respects_dominance () =
  (* identical expressions in sibling branches must NOT be merged *)
  let m =
    kernel_module ~params:[ I64 ] (fun b ps ->
        match ps with
        | [ out ] ->
          let tid = B.thread_id b in
          let c = B.icmp b Slt tid (B.i64 16) in
          B.cond_br b c "a" "bb";
          B.set_block b "a";
          let x = B.mul b tid (B.i64 3) in
          B.store b I64 x out;
          B.ret b None;
          B.set_block b "bb";
          let y = B.mul b tid (B.i64 3) in
          B.store b I64 y (B.ptradd b out (B.i64 8));
          B.ret b None
        | _ -> assert false)
  in
  let m', _ = Ozo_opt.Cse.run m in
  check_verifies "cse dominance" m';
  let kf = find_func_exn m' "k" in
  Alcotest.(check int) "both muls survive" 2
    (count_in_func (function Binop (_, Mul, _, _) -> true | _ -> false) kf)

let test_cse_keeps_loads () =
  let m =
    kernel_module ~params:[ I64 ] (fun b ps ->
        match ps with
        | [ out ] ->
          let v1 = B.load b I64 out in
          B.store b I64 (B.add b v1 (B.i64 1)) out;
          let v2 = B.load b I64 out in
          B.store b I64 v2 (B.ptradd b out (B.i64 8))
        | _ -> assert false)
  in
  let m', _ = Ozo_opt.Cse.run m in
  let kf = find_func_exn m' "k" in
  Alcotest.(check int) "loads not CSEd" 2 (count_in_func is_load kf)

(* --- callgraph / ptrres ------------------------------------------------------ *)

let test_callgraph () =
  let b = B.create "m" in
  (match B.begin_func b ~name:"leaf" ~params:[] ~ret:None () with
  | [] ->
    B.set_block b "entry";
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b);
  (match B.begin_func b ~name:"recursive" ~params:[] ~ret:None () with
  | [] ->
    B.set_block b "entry";
    B.call_void b "recursive" [];
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b);
  ignore (B.begin_func b ~name:"k" ~kernel:true ~params:[] ~ret:None ());
  B.set_block b "entry";
  B.call_void b "leaf" [];
  let r = B.fresh_reg b in
  B.append b (Call_indirect (Some r, Some I64, Func_addr "leaf", []));
  B.ret b None;
  ignore (B.end_func b);
  let m = B.finish b in
  let cg = Ozo_ir.Callgraph.build m in
  Alcotest.(check bool) "leaf address taken" true (Ozo_ir.Callgraph.is_address_taken cg "leaf");
  Alcotest.(check bool) "recursive detected" true (Ozo_ir.Callgraph.is_recursive cg "recursive");
  Alcotest.(check bool) "leaf not recursive" false (Ozo_ir.Callgraph.is_recursive cg "leaf");
  let reach = Ozo_ir.Callgraph.reachable_from_kernels cg in
  Alcotest.(check bool) "leaf reachable" true (Ozo_ir.Cfg.SSet.mem "leaf" reach);
  Alcotest.(check bool) "recursive unreachable" false
    (Ozo_ir.Cfg.SSet.mem "recursive" reach)

let test_ptrres () =
  let b = B.create "m" in
  ignore (B.add_global b ~space:Shared ~size:64 "g");
  ignore (B.begin_func b ~name:"k" ~kernel:true ~params:[ I64 ] ~ret:None ());
  B.set_block b "entry";
  let base = Global_addr "g" in
  let p1 = B.ptradd b base (B.i64 8) in
  let p2 = B.ptradd b p1 (B.i64 4) in
  let tid = B.thread_id b in
  let p3 = B.ptradd b base tid in
  let a = B.alloca b 16 in
  let sel = B.select b (Ptr Shared) (B.i1 true) p2 a in
  let _ = B.load b I64 sel in
  B.ret b None;
  ignore (B.end_func b);
  let m = B.finish b in
  let f = find_func_exn m "k" in
  let defs = Ozo_opt.Ptrres.build_defs f in
  (match Ozo_opt.Ptrres.resolve defs p2 with
  | Ozo_opt.Ptrres.Known [ { t_obj = Ozo_opt.Ptrres.Glob "g"; t_off = Some 12 } ] -> ()
  | _ -> Alcotest.fail "chained constant offsets");
  (match Ozo_opt.Ptrres.resolve defs p3 with
  | Ozo_opt.Ptrres.Known [ { t_obj = Ozo_opt.Ptrres.Glob "g"; t_off = None } ] -> ()
  | _ -> Alcotest.fail "unknown offset");
  (match Ozo_opt.Ptrres.resolve defs sel with
  | Ozo_opt.Ptrres.Known [ _; _ ] -> ()
  | _ -> Alcotest.fail "select unions targets");
  match Ozo_opt.Ptrres.resolve defs tid with
  | Ozo_opt.Ptrres.Unknown -> ()
  | _ -> Alcotest.fail "non-pointer is unknown"

(* --- harness report ----------------------------------------------------------- *)

let test_report_formats () =
  let p = Ozo_proxies.Registry.all_small () |> List.hd in
  let ms = Ozo_harness.Experiments.fig10 p in
  let s10 = Fmt.str "%a" Ozo_harness.Report.pp_fig10 ("t", ms) in
  Alcotest.(check bool) "fig10 has baseline row" true (contains s10 "Old RT (Nightly)");
  Alcotest.(check bool) "fig10 marks ok" true (contains s10 "ok");
  let s11 = Fmt.str "%a" Ozo_harness.Report.pp_fig11 ("t", ms) in
  Alcotest.(check bool) "fig11 has headers" true (contains s11 "smem(B)");
  let csv =
    Fmt.str "%a%a" Ozo_harness.Report.pp_csv_header ()
      (Fmt.list Ozo_harness.Report.pp_csv)
      ms
  in
  let rows =
    String.split_on_char '\n' csv |> List.filter (fun l -> String.trim l <> "")
  in
  Alcotest.(check int) "csv rows" (List.length ms + 1) (List.length rows);
  (* every row (and the header) carries exactly the columns the one
     [csv_columns] source declares *)
  List.iter
    (fun l ->
      Alcotest.(check int) "csv fields"
        (List.length Ozo_harness.Report.csv_columns)
        (List.length (String.split_on_char ',' l)))
    rows

let suite =
  [ tc "memory: pointer encoding" test_pointer_encoding;
    tc "memory: typed load/store" test_memory_rw;
    tc "memory: buffer growth" test_memory_growth;
    tc "memory: per-thread local stack" test_local_stack;
    tc "memory: constant space is read-only" test_store_to_constant_rejected;
    tc "cost: occupancy constraints" test_occupancy_constraints;
    tc "cost: kernel time vs occupancy" test_kernel_time_monotonic;
    tc "counters: add + memory cycles" test_counters_add_and_memcycles;
    tc "prng: determinism" test_prng_determinism;
    tc "prng: ranges" test_prng_ranges;
    tc "xsbench generator invariants" test_xsbench_generator_invariants;
    tc "proxy references deterministic" test_references_deterministic;
    tc "cse: dedups pure expressions" test_cse_dedups;
    tc "cse: respects dominance" test_cse_respects_dominance;
    tc "cse: leaves loads alone" test_cse_keeps_loads;
    tc "callgraph: edges, recursion, reachability" test_callgraph;
    tc "ptrres: field-sensitive resolution" test_ptrres;
    tc "harness: report formatting" test_report_formats ]
