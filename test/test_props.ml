(* Property-based differential testing: random kernels are lowered through
   every ABI, optimized at every level, executed on the virtual GPU and
   compared against a host evaluation of the same AST. This is the
   "semantic preservation" invariant of DESIGN.md: no pass combination may
   change observable results. *)

open Ozo_frontend.Ast
module Lower = Ozo_frontend.Lower
module C = Ozo_core.Codesign
module Device = Ozo_vgpu.Device
module Engine = Ozo_vgpu.Engine
open Util

(* --- random expression kernels ----------------------------------------- *)

(* Expressions over: the loop variable i, two int params a b, one float
   param x, and loads from a data array. Division/remainder are guarded
   against zero. *)
let gen_expr : expr QCheck.Gen.t =
  let open QCheck.Gen in
  let base_int =
    oneof
      [ return (P "i"); return (P "a"); return (P "b");
        map (fun n -> Int n) (int_range (-20) 20);
        return (Ld (P "data", Rem (P "i", Int 16), MI64)) ]
  in
  let base_float =
    oneof
      [ return (P "x"); map (fun f -> Float (Float.of_int f /. 4.0)) (int_range (-40) 40);
        return (Ld (P "fdata", Rem (P "i", Int 16), MF64)) ]
  in
  (* depth-bounded generator; [want_float] selects the type *)
  fix
    (fun self (depth, want_float) ->
      if depth = 0 then if want_float then base_float else base_int
      else
        let sub_i = self (depth - 1, false) in
        let sub_f = self (depth - 1, true) in
        if want_float then
          frequency
            [ (2, base_float);
              (3, map2 (fun a b -> Add (a, b)) sub_f sub_f);
              (3, map2 (fun a b -> Sub (a, b)) sub_f sub_f);
              (3, map2 (fun a b -> Mul (a, b)) sub_f sub_f);
              (2, map2 (fun a b -> Min (a, b)) sub_f sub_f);
              (2, map2 (fun a b -> Max (a, b)) sub_f sub_f);
              (1, map (fun a -> Fabs a) sub_f);
              (1, map (fun a -> Sqrt (Add (Fabs a, Float 0.5))) sub_f);
              (1, map (fun a -> ToFloat a) sub_i);
              (2, map3 (fun c a b -> Select (Cmp (CLt, c, Int 3), a, b)) sub_i sub_f sub_f)
            ]
        else
          frequency
            [ (2, base_int);
              (3, map2 (fun a b -> Add (a, b)) sub_i sub_i);
              (3, map2 (fun a b -> Sub (a, b)) sub_i sub_i);
              (3, map2 (fun a b -> Mul (a, b)) sub_i sub_i);
              (1, map2 (fun a b -> Div (a, Add (Mul (b, b), Int 1))) sub_i sub_i);
              (1, map2 (fun a b -> Rem (a, Add (Mul (b, b), Int 1))) sub_i sub_i);
              (2, map2 (fun a b -> Min (a, b)) sub_i sub_i);
              (2, map2 (fun a b -> Max (a, b)) sub_i sub_i);
              (1, map2 (fun a b -> Band (a, b)) sub_i sub_i);
              (1, map2 (fun a b -> Bxor (a, b)) sub_i sub_i);
              (2, map2 (fun op (a, b) -> Cmp (op, a, b))
                   (oneofl [ CEq; CNe; CLt; CLe; CGt; CGe ])
                   (pair sub_i sub_i));
              (1, map (fun a -> ToInt (Min (Max (a, Float (-1e6)), Float 1e6))) sub_f);
              (2, map3 (fun c a b -> Select (Cmp (CGe, c, Int 0), a, b)) sub_i sub_i sub_i)
            ])
    (3, false)

(* host evaluation of the generated expression *)
type hval = HI of int | HF of float

let rec host_eval env = function
  | Int n -> HI n
  | Float f -> HF f
  | P n -> List.assoc n env
  | Add (a, b) -> arith env ( + ) ( +. ) a b
  | Sub (a, b) -> arith env ( - ) ( -. ) a b
  | Mul (a, b) -> arith env ( * ) ( *. ) a b
  | Div (a, b) -> arith env (fun x y -> x / y) ( /. ) a b
  | Rem (a, b) -> (
    match (host_eval env a, host_eval env b) with
    | HI x, HI y -> HI (x mod y)
    | _ -> assert false)
  | Band (a, b) -> int2 env ( land ) a b
  | Bxor (a, b) -> int2 env ( lxor ) a b
  | Shl (a, b) -> int2 env (fun x y -> x lsl (y land 62)) a b
  | Shr (a, b) -> int2 env (fun x y -> x asr (y land 62)) a b
  | Min (a, b) -> arith env min min a b
  | Max (a, b) -> arith env max max a b
  | Neg a -> (
    match host_eval env a with HI x -> HI (-x) | HF x -> HF (-.x))
  | Sqrt a -> funf env sqrt a
  | Expf a -> funf env exp a
  | Logf a -> funf env log a
  | Sinf a -> funf env sin a
  | Cosf a -> funf env cos a
  | Fabs a -> funf env Float.abs a
  | ToFloat a -> (
    match host_eval env a with HI x -> HF (float_of_int x) | HF _ -> assert false)
  | ToInt a -> (
    match host_eval env a with HF x -> HI (int_of_float x) | HI _ -> assert false)
  | Cmp (op, a, b) ->
    let r =
      match (host_eval env a, host_eval env b) with
      | HI x, HI y -> (
        match op with CEq -> x = y | CNe -> x <> y | CLt -> x < y | CLe -> x <= y
        | CGt -> x > y | CGe -> x >= y)
      | HF x, HF y -> (
        match op with CEq -> x = y | CNe -> x <> y | CLt -> x < y | CLe -> x <= y
        | CGt -> x > y | CGe -> x >= y)
      | _ -> assert false
    in
    HI (if r then 1 else 0)
  | And (a, b) -> int2 env ( land ) a b
  | Or (a, b) -> int2 env ( lor ) a b
  | Not a -> ( match host_eval env a with HI x -> HI (x lxor 1) | _ -> assert false)
  | Select (c, a, b) -> (
    match host_eval env c with
    | HI 0 -> host_eval env b
    | HI _ -> host_eval env a
    | HF _ -> assert false)
  | Ld (_, idx, MI64) -> (
    match host_eval env idx with
    | HI i -> List.assoc (Printf.sprintf "__data%d" i) env
    | _ -> assert false)
  | Ld (_, idx, MF64) -> (
    match host_eval env idx with
    | HI i -> List.assoc (Printf.sprintf "__fdata%d" i) env
    | _ -> assert false)
  | Ld (_, _, MI32) -> assert false
  | OmpThreadNum | OmpNumThreads | OmpLevel | OmpTeamNum | OmpNumTeams -> assert false

and arith env fi ff a b =
  match (host_eval env a, host_eval env b) with
  | HI x, HI y -> HI (fi x y)
  | HF x, HF y -> HF (ff x y)
  | _ -> assert false

and int2 env f a b =
  match (host_eval env a, host_eval env b) with
  | HI x, HI y -> HI (f x y)
  | _ -> assert false

and funf env f a =
  match host_eval env a with HF x -> HF (f x) | HI _ -> assert false

let rec expr_is_float = function
  | Float _ | Sqrt _ | Expf _ | Logf _ | Sinf _ | Cosf _ | Fabs _ | ToFloat _ -> true
  | P "x" -> true
  | P _ | Int _ -> false
  | Add (a, _) | Sub (a, _) | Mul (a, _) | Div (a, _) | Min (a, _) | Max (a, _) | Neg a ->
    expr_is_float a
  | Select (_, a, _) -> expr_is_float a
  | Ld (_, _, MF64) -> true
  | _ -> false

let n_items = 48
let data = Array.init 16 (fun i -> (i * 7) - 20)
let fdata = Array.init 16 (fun i -> (float_of_int i *. 0.75) -. 3.0)

let kernel_of_expr e =
  let store =
    if expr_is_float e then Store (P "out", P "i", MF64, e)
    else Store (P "out", P "i", MI64, e)
  in
  { k_name = "k";
    k_params =
      [ ("out", TInt); ("data", TInt); ("fdata", TInt); ("a", TInt); ("b", TInt);
        ("x", TFloat); ("n", TInt) ];
    k_construct = Distribute_parallel_for ("i", P "n", [ store ]) }

let host_results e =
  Array.init n_items (fun i ->
      let env =
        [ ("i", HI i); ("a", HI 5); ("b", HI (-3)); ("x", HF 1.25) ]
        @ List.init 16 (fun j -> (Printf.sprintf "__data%d" j, HI data.(j)))
        @ List.init 16 (fun j -> (Printf.sprintf "__fdata%d" j, HF fdata.(j)))
      in
      host_eval env e)

let device_results build k isf =
  let c = C.compile build k in
  let dev = C.device c in
  let out = Device.alloc dev (n_items * 8) in
  let dbuf = Device.alloc dev (16 * 8) in
  let fbuf = Device.alloc dev (16 * 8) in
  Device.write_i64_array dev dbuf data;
  Device.write_f64_array dev fbuf fdata;
  match
    C.launch c dev ~teams:2 ~threads:32
      [ Engine.Ai (Device.ptr out); Ai (Device.ptr dbuf); Ai (Device.ptr fbuf); Ai 5;
        Ai (-3); Af 1.25; Ai n_items ]
  with
  | Error e -> Error (Fmt.str "%a" Device.pp_error e)
  | Ok _ ->
    Ok
      (Array.init n_items (fun i ->
           if isf then HF (Device.read_f64 dev out i) else HI (Device.read_i64 dev out i)))

let hval_eq a b =
  match (a, b) with
  | HI x, HI y -> x = y
  | HF x, HF y ->
    (Float.is_nan x && Float.is_nan y)
    || x = y
    || Float.abs (x -. y) <= 1e-12 *. Float.max 1.0 (Float.abs x)
  | _ -> false

let builds_under_test =
  [ C.cuda; C.new_rt_nightly; C.new_rt_no_assumptions; C.new_rt; C.old_rt_nightly ]

let arbitrary_expr =
  QCheck.make gen_expr ~print:(fun e ->
      let rec s = function
        | Int n -> string_of_int n
        | Float f -> string_of_float f
        | P n -> n
        | Add (a, b) -> bin "+" a b
        | Sub (a, b) -> bin "-" a b
        | Mul (a, b) -> bin "*" a b
        | Div (a, b) -> bin "/" a b
        | Rem (a, b) -> bin "%" a b
        | Band (a, b) -> bin "&" a b
        | Bxor (a, b) -> bin "^" a b
        | Shl (a, b) -> bin "<<" a b
        | Shr (a, b) -> bin ">>" a b
        | Min (a, b) -> "min" ^ bin "," a b
        | Max (a, b) -> "max" ^ bin "," a b
        | Neg a -> "-" ^ s a
        | Sqrt a -> "sqrt(" ^ s a ^ ")"
        | Expf a -> "exp(" ^ s a ^ ")"
        | Logf a -> "log(" ^ s a ^ ")"
        | Sinf a -> "sin(" ^ s a ^ ")"
        | Cosf a -> "cos(" ^ s a ^ ")"
        | Fabs a -> "abs(" ^ s a ^ ")"
        | ToFloat a -> "float(" ^ s a ^ ")"
        | ToInt a -> "int(" ^ s a ^ ")"
        | Cmp (_, a, b) -> bin "?" a b
        | And (a, b) -> bin "&&" a b
        | Or (a, b) -> bin "||" a b
        | Not a -> "!" ^ s a
        | Select (c, a, b) -> "sel(" ^ s c ^ "," ^ s a ^ "," ^ s b ^ ")"
        | Ld (_, i, _) -> "data[" ^ s i ^ "]"
        | OmpThreadNum | OmpNumThreads | OmpLevel | OmpTeamNum | OmpNumTeams -> "omp"
      and bin op a b = "(" ^ s a ^ op ^ s b ^ ")"
      in
      s e)

let prop_all_builds_match_host =
  QCheck.Test.make ~name:"random kernels: every build matches the host" ~count:60
    arbitrary_expr (fun e ->
      let k = kernel_of_expr e in
      let isf = expr_is_float e in
      let expected = host_results e in
      List.for_all
        (fun b ->
          match device_results b k isf with
          | Error msg -> QCheck.Test.fail_reportf "%s: %s" b.C.b_label msg
          | Ok got ->
            Array.for_all2 (fun a g -> hval_eq a g) expected got
            || QCheck.Test.fail_reportf "%s: mismatch" b.C.b_label)
        builds_under_test)

(* random kernels with control flow: If and a sequential inner loop *)
let gen_stmt_kernel : (kernel * (int -> int)) QCheck.Gen.t =
  let open QCheck.Gen in
  int_range 1 5 >>= fun iters ->
  int_range (-10) 10 >>= fun addend ->
  int_range 2 5 >>= fun modulus ->
  int_range (-5) 5 >>= fun base ->
  let body =
    [ Local ("acc", TInt, Some (Int base));
      For
        ( "j",
          Int 0,
          Int iters,
          [ If
              ( Cmp (CEq, Rem (Add (P "i", P "j"), Int modulus), Int 0),
                [ Set ("acc", Add (P "acc", Int addend)) ],
                [ Set ("acc", Sub (P "acc", P "j")) ] )
          ] );
      Store (P "out", P "i", MI64, P "acc")
    ]
  in
  let k =
    { k_name = "k"; k_params = [ ("out", TInt); ("n", TInt) ];
      k_construct = Distribute_parallel_for ("i", P "n", body) }
  in
  let host i =
    let acc = ref base in
    for j = 0 to iters - 1 do
      if (i + j) mod modulus = 0 then acc := !acc + addend else acc := !acc - j
    done;
    !acc
  in
  return (k, host)

let prop_control_flow_kernels =
  QCheck.Test.make ~name:"random control-flow kernels match host" ~count:40
    (QCheck.make gen_stmt_kernel ~print:(fun _ -> "<kernel>"))
    (fun (k, host) ->
      let expected = Array.init n_items host in
      List.for_all
        (fun b ->
          let c = C.compile b k in
          let dev = C.device c in
          let out = Device.alloc dev (n_items * 8) in
          match
            C.launch c dev ~teams:2 ~threads:32
              [ Engine.Ai (Device.ptr out); Ai n_items ]
          with
          | Error e -> QCheck.Test.fail_reportf "%s: %a" b.C.b_label Device.pp_error e
          | Ok _ ->
            let got = Device.read_i64_array dev out n_items in
            got = expected
            || QCheck.Test.fail_reportf "%s: %s vs %s" b.C.b_label
                 (String.concat "," (Array.to_list (Array.map string_of_int got)))
                 (String.concat "," (Array.to_list (Array.map string_of_int expected))))
        builds_under_test)

(* random generic-construct kernels: a sequential prologue, a parallel
   region with a work-shared loop, optional nested parallel, a sequential
   epilogue — exercising the state machine, SPMD-ization with guarding,
   globalization and the ICV machinery end to end *)
let gen_generic_kernel : (kernel * (int -> int array -> unit)) QCheck.Gen.t =
  let open QCheck.Gen in
  int_range 1 40 >>= fun ws_n ->
  int_range (-9) 9 >>= fun scale ->
  int_range 2 4 >>= fun modulus ->
  bool >>= fun with_nested ->
  bool >>= fun with_prologue ->
  let ws_body =
    [ Let ("v", Mul (P "i", Int scale)) ]
    @ (if with_nested then
         [ If
             ( Cmp (CEq, Rem (P "i", Int modulus), Int 0),
               [ Nested_parallel
                   [ Store (P "out", Add (P "i", Int 1), MI64, Add (P "v", OmpLevel)) ]
               ],
               [ Store (P "out", Add (P "i", Int 1), MI64, P "v") ] )
         ]
       else [ Store (P "out", Add (P "i", Int 1), MI64, P "v") ])
  in
  let body =
    (if with_prologue then [ Store (P "out", Int 0, MI64, Int 99) ] else [])
    @ [ Parallel (None, [ Ws_for ("i", Int ws_n, ws_body) ]) ]
  in
  let k =
    { k_name = "k"; k_params = [ ("out", TInt) ]; k_construct = Generic body }
  in
  let host _n (out : int array) =
    if with_prologue then out.(0) <- 99;
    for i = 0 to ws_n - 1 do
      let v = i * scale in
      if with_nested && i mod modulus = 0 then out.(i + 1) <- v + 2
      else out.(i + 1) <- v
    done
  in
  return (k, host)

let prop_generic_construct_kernels =
  QCheck.Test.make ~name:"random generic-construct kernels match host" ~count:30
    (QCheck.make gen_generic_kernel ~print:(fun _ -> "<generic kernel>"))
    (fun (k, host) ->
      let n_slots = 64 in
      let expected = Array.make n_slots 0 in
      host n_slots expected;
      List.for_all
        (fun b ->
          match b.C.b_abi with
          | Lower.Cuda -> true (* generic constructs have no CUDA lowering *)
          | _ ->
            let c = C.compile b k in
            let dev = C.device c in
            let out = Device.alloc dev (n_slots * 8) in
            (match
               C.launch c dev ~teams:1 ~threads:48 [ Engine.Ai (Device.ptr out) ]
             with
            | Error e -> QCheck.Test.fail_reportf "%s: %a" b.C.b_label Device.pp_error e
            | Ok _ ->
              let got = Device.read_i64_array dev out n_slots in
              got = expected
              || QCheck.Test.fail_reportf "%s mismatch:\ngot      %s\nexpected %s"
                   b.C.b_label
                   (String.concat "," (Array.to_list (Array.map string_of_int got)))
                   (String.concat "," (Array.to_list (Array.map string_of_int expected)))))
        builds_under_test)

(* --- fault classification and journal round-trips ----------------------- *)

module Journal = Ozo_resilience.Journal
module Json = Ozo_obs.Json
module Pipeline = Ozo_opt.Pipeline

let prop_fault_kind_roundtrip =
  QCheck.Test.make ~name:"fault kinds round-trip through their names"
    ~count:(List.length Fault.all_kinds)
    (QCheck.make (QCheck.Gen.oneofl Fault.all_kinds) ~print:Fault.kind_name)
    (fun k ->
      match Fault.kind_of_name (Fault.kind_name k) with
      | Some k' -> k' = k
      | None -> QCheck.Test.fail_reportf "%s did not classify" (Fault.kind_name k))

(* random structured fault: any kind, printable message, optional site,
   strand, access decode and implicated threads *)
let gen_fault : Fault.t QCheck.Gen.t =
  let open QCheck.Gen in
  let name = string_size ~gen:(char_range 'a' 'z') (int_range 1 8) in
  oneofl Fault.all_kinds >>= fun k ->
  name >>= fun msg ->
  opt name >>= fun fn ->
  opt name >>= fun blk ->
  opt (int_range 0 500) >>= fun idx ->
  opt (int_range 0 7) >>= fun team ->
  opt (int_range 0 3) >>= fun warp ->
  map Int64.of_int (int_range 0 max_int) >>= fun lanes ->
  opt
    (map3
       (fun p off by -> { Fault.a_ptr = p; a_space = "global"; a_offset = off; a_bytes = by })
       (int_range 0 0xffff) (int_range 0 4096) (oneofl [ 0; 1; 4; 8 ]))
  >>= fun access ->
  list_size (int_range 0 4) (int_range 0 63) >>= fun threads ->
  return
    { Fault.f_kind = k; f_msg = msg; f_fn = fn; f_blk = blk; f_idx = idx;
      f_team = team; f_warp = warp; f_lanes = lanes; f_access = access;
      f_threads = threads }

let prop_fault_to_line_mentions_kind_and_msg =
  QCheck.Test.make ~name:"fault to_line carries the kind name and message" ~count:100
    (QCheck.make gen_fault ~print:Fault.to_line)
    (fun f ->
      let line = Fault.to_line f in
      contains line (Fault.kind_name f.Fault.f_kind) && contains line f.Fault.f_msg)

let prop_fault_json_roundtrip =
  QCheck.Test.make ~name:"fault encodes to JSON and decodes back intact" ~count:100
    (QCheck.make gen_fault ~print:Fault.to_line)
    (fun f ->
      match Json.parse (Journal.fault_to_json f) with
      | Error e -> QCheck.Test.fail_reportf "unparseable encoding: %s" e
      | Ok j -> (
        match Journal.fault_of_json j with
        | Error e -> QCheck.Test.fail_reportf "decode: %s" e
        | Ok f' ->
          f'.Fault.f_kind = f.Fault.f_kind
          && f'.Fault.f_lanes = f.Fault.f_lanes
          && Fault.to_line f' = Fault.to_line f
          || QCheck.Test.fail_reportf "got %s" (Fault.to_line f')))

(* --- fallback-ladder ordering ------------------------------------------- *)

(* strength rank of a pipeline config: each [weaken] step must strictly
   decrease it, so the ladder is finite and monotonically conservative *)
let rank (c : Pipeline.config) =
  if c.Pipeline.globalization || c.Pipeline.barrier_elim || c.Pipeline.memfold <> None
  then 3
  else if c.Pipeline.internalize || c.Pipeline.spmdize then 2
  else if c.Pipeline.rounds > 0 then 1
  else 0

let gen_config : Pipeline.config QCheck.Gen.t =
  let open QCheck.Gen in
  oneofl
    [ Pipeline.o0; Pipeline.baseline; Pipeline.nightly; Pipeline.full;
      { Pipeline.full with Pipeline.name = "custom-hi"; barrier_elim = false };
      { Pipeline.baseline with Pipeline.name = "custom-mid"; spmdize = false;
        internalize = true };
      { Pipeline.o0 with Pipeline.name = "custom-lo"; rounds = 2 } ]

let prop_ladder_monotone_and_finite =
  QCheck.Test.make ~name:"fallback ladder strictly weakens, never repeats, terminates"
    ~count:30
    (QCheck.make gen_config ~print:(fun c -> c.Pipeline.name))
    (fun c0 ->
      let rec walk c seen steps =
        if steps > 4 then QCheck.Test.fail_reportf "ladder did not terminate"
        else
          match Pipeline.weaken c with
          | None ->
            rank c = 0
            || QCheck.Test.fail_reportf "ladder stopped at non-trivial %s" c.Pipeline.name
          | Some w ->
            (rank w < rank c
            || QCheck.Test.fail_reportf "%s (rank %d) -> %s (rank %d) not weaker"
                 c.Pipeline.name (rank c) w.Pipeline.name (rank w))
            && (not (List.mem w.Pipeline.name seen)
               || QCheck.Test.fail_reportf "config %s revisited" w.Pipeline.name)
            && walk w (w.Pipeline.name :: seen) (steps + 1)
      in
      walk c0 [ c0.Pipeline.name ] 0)

let prop_full_ladder_is_canonical =
  QCheck.Test.make ~name:"full's ladder is nightly -> baseline -> O0" ~count:1
    QCheck.unit (fun () ->
      let rec chain c =
        match Pipeline.weaken c with None -> [] | Some w -> w.Pipeline.name :: chain w
      in
      chain Pipeline.full = [ "nightly"; "baseline"; "O0" ]
      || QCheck.Test.fail_reportf "got %s" (String.concat " -> " (chain Pipeline.full)))

let suite =
  [ QCheck_alcotest.to_alcotest prop_all_builds_match_host;
    QCheck_alcotest.to_alcotest prop_control_flow_kernels;
    QCheck_alcotest.to_alcotest prop_generic_construct_kernels;
    QCheck_alcotest.to_alcotest prop_fault_kind_roundtrip;
    QCheck_alcotest.to_alcotest prop_fault_to_line_mentions_kind_and_msg;
    QCheck_alcotest.to_alcotest prop_fault_json_roundtrip;
    QCheck_alcotest.to_alcotest prop_ladder_monotone_and_finite;
    QCheck_alcotest.to_alcotest prop_full_ladder_is_canonical ]
