(* The observability layer (lib/obs): span trees, timing, Chrome trace
   export, and the two invariants the tentpole promises — a disabled ctx
   costs one branch and changes nothing, and an enabled one records a
   well-formed, schema-valid trace. *)

open Ozo_ir.Types
module Trace = Ozo_obs.Trace
module Chrome = Ozo_obs.Chrome_trace
module Json = Ozo_obs.Json
module Device = Ozo_vgpu.Device
module Engine = Ozo_vgpu.Engine
module Counters = Ozo_vgpu.Counters
open Util

(* deterministic microsecond clock: advances 10us per read *)
let ticking () =
  let t = ref 0.0 in
  fun () ->
    t := !t +. 10.0;
    !t

(* --- span tree ---------------------------------------------------------- *)

let test_span_nesting () =
  let cx = Trace.make ~clock:(ticking ()) () in
  Trace.with_span cx "outer" (fun () ->
      Trace.with_span cx "inner" (fun () -> Trace.instant cx "tick");
      Trace.with_span cx "inner2" (fun () -> ()));
  Trace.instant cx "after";
  match Trace.roots cx with
  | [ Trace.Span outer; Trace.Instant after ] ->
    Alcotest.(check string) "outer name" "outer" outer.Trace.sp_name;
    Alcotest.(check string) "after name" "after" after.Trace.i_name;
    (match Trace.sub outer with
    | [ Trace.Span inner; Trace.Span inner2 ] ->
      Alcotest.(check string) "inner name" "inner" inner.Trace.sp_name;
      Alcotest.(check string) "inner2 name" "inner2" inner2.Trace.sp_name;
      (match Trace.sub inner with
      | [ Trace.Instant t ] -> Alcotest.(check string) "tick" "tick" t.Trace.i_name
      | _ -> Alcotest.fail "inner should hold exactly the instant")
    | _ -> Alcotest.fail "outer should hold the two inner spans")
  | _ -> Alcotest.fail "expected [outer; after] at the roots"

let test_monotonic_timing () =
  let cx = Trace.make ~clock:(ticking ()) () in
  Trace.with_span cx "a" (fun () ->
      Trace.with_span cx "b" (fun () -> ()));
  let a = List.hd (Trace.spans_named cx "a") in
  let b = List.hd (Trace.spans_named cx "b") in
  Alcotest.(check bool) "a closed" true (Trace.closed a);
  Alcotest.(check bool) "b closed" true (Trace.closed b);
  (* child's window lies within the parent's, all stamps monotonic *)
  Alcotest.(check bool) "b starts after a" true (b.Trace.sp_start >= a.Trace.sp_start);
  Alcotest.(check bool) "b stops before a" true (b.Trace.sp_stop <= a.Trace.sp_stop);
  Alcotest.(check bool) "a has positive dur" true (Trace.dur a > 0.0);
  Alcotest.(check bool) "durations nest" true (Trace.dur b <= Trace.dur a)

let test_exception_safety_and_close_all () =
  let cx = Trace.make ~clock:(ticking ()) () in
  (try
     Trace.with_span cx "boom" (fun () -> failwith "x")
   with Failure _ -> ());
  let boom = List.hd (Trace.spans_named cx "boom") in
  Alcotest.(check bool) "span closed on raise" true (Trace.closed boom);
  Trace.begin_span cx "left-open";
  Trace.close_all cx;
  let lo = List.hd (Trace.spans_named cx "left-open") in
  Alcotest.(check bool) "close_all closes strays" true (Trace.closed lo);
  (* stray end on an empty stack is ignored *)
  Trace.end_span cx ()

let test_null_ctx_records_nothing () =
  let cx = Trace.null in
  Trace.with_span cx "x" (fun () -> Trace.instant cx "i");
  Trace.begin_span cx "y";
  Trace.end_span cx ();
  Alcotest.(check int) "no spans" 0 (Trace.count_spans cx);
  Alcotest.(check bool) "no roots" true (Trace.roots cx = [])

(* --- Chrome trace export ------------------------------------------------ *)

let test_chrome_schema () =
  let cx = Trace.make ~clock:(ticking ()) () in
  Trace.with_span cx ~cat:"compile" ~args:[ ("k", Trace.Str "v\"esc\\ape") ]
    "compile"
    (fun () ->
      Trace.with_span cx ~cat:"pass" "pass:inline" (fun () -> ());
      Trace.instant cx ~cat:"remark" ~args:[ ("n", Trace.Int 3) ] "remark");
  let s = Chrome.to_string cx in
  match Chrome.validate s with
  | Error e -> Alcotest.failf "schema: %s" e
  | Ok events ->
    Alcotest.(check int) "event count" 3 (List.length events);
    let compile = List.hd (Chrome.spans_by_name events "compile") in
    let pass = List.hd (Chrome.spans_by_name events "pass:inline") in
    Alcotest.(check bool) "pass within compile" true (Chrome.contains compile pass);
    (* escaped strings survive the JSON round trip *)
    let args = Option.get (Json.member "args" compile) in
    Alcotest.(check (option string)) "escaped arg"
      (Some "v\"esc\\ape")
      (Option.bind (Json.member "k" args) Json.to_string)

let test_json_parser_rejects_garbage () =
  (match Json.parse "{\"a\": [1, 2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated JSON accepted");
  match Json.parse "{} trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted"

(* --- tracing must not change simulated results -------------------------- *)

(* a small kernel with a loop and a barrier, enough to touch several blocks *)
let looping_module () =
  kernel_module ~params:[ I64 ] (fun b ps ->
      match ps with
      | [ out ] ->
        let tid = B.thread_id b in
        let acc = B.alloca b 8 in
        B.store b I64 (B.i64 0) acc;
        ignore
          (B.for_loop b ~lo:(B.i64 0) ~hi:(B.i64 8) ~step:(B.i64 1)
             ~body:(fun _ ->
               let v = B.load b I64 acc in
               B.store b I64 (B.add b v (B.i64 1)) acc));
        B.barrier b ~aligned:true;
        let v = B.load b I64 acc in
        B.store b I64 v (B.ptradd b out (B.mul b tid (B.i64 8)));
        B.ret b None
      | _ -> assert false)

let test_tracing_preserves_golden_counters () =
  let m = looping_module () in
  let run opts =
    let dev = Device.create m in
    let buf = Device.alloc dev (32 * 8) in
    match Device.launch ~opts dev ~teams:2 ~threads:32 [ Engine.Ai (Device.ptr buf) ] with
    | Ok r -> (r, i64_array dev buf 32)
    | Error e -> Alcotest.failf "launch: %a" Device.pp_error e
  in
  let plain, out_plain = run Device.Launch_opts.default in
  let trace = Trace.make () in
  let traced, out_traced =
    run { Device.Launch_opts.default with Device.Launch_opts.trace; profile = true }
  in
  (* bit-identical counters and results, tracing on or off *)
  Alcotest.(check bool) "counters identical" true
    (Counters.equal plain.Engine.r_total traced.Engine.r_total);
  Alcotest.(check bool) "outputs identical" true (out_plain = out_traced);
  (* and the traced run actually produced phases + hot-spot data *)
  Alcotest.(check bool) "launch span" true (Trace.spans_named trace "launch" <> []);
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " span") true (Trace.spans_named trace n <> []))
    [ "decode"; "execute"; "readback" ];
  Alcotest.(check bool) "hotspots" true (traced.Engine.r_hotspots <> []);
  Alcotest.(check bool) "untraced run has no hotspots" true
    (plain.Engine.r_hotspots = [])

let test_hotspot_totals_match_counters () =
  let m = looping_module () in
  let dev = Device.create m in
  let buf = Device.alloc dev (32 * 8) in
  let trace = Trace.make () in
  match
    Device.launch
      ~opts:{ Device.Launch_opts.default with Device.Launch_opts.trace; profile = true }
      dev ~teams:1 ~threads:32
      [ Engine.Ai (Device.ptr buf) ]
  with
  | Error e -> Alcotest.failf "launch: %a" Device.pp_error e
  | Ok r ->
    (* every issued warp instruction is attributed to exactly one block *)
    let wi_sum =
      List.fold_left (fun acc h -> acc + h.Engine.h_winsts) 0 r.Engine.r_hotspots
    in
    Alcotest.(check int) "winsts attributed"
      r.Engine.r_total.Counters.warp_instructions wi_sum;
    (* hottest-first ordering *)
    let rec sorted = function
      | a :: (b :: _ as rest) -> a.Engine.h_cycles >= b.Engine.h_cycles && sorted rest
      | _ -> true
    in
    Alcotest.(check bool) "sorted by cycles" true (sorted r.Engine.r_hotspots)

(* --- remarks sink ------------------------------------------------------- *)

let test_remarks_flow_into_trace () =
  let module Remarks = Ozo_opt.Remarks in
  let trace = Trace.make ~clock:(ticking ()) () in
  let sink = Remarks.make ~trace () in
  Trace.with_span trace "pass:test" (fun () ->
      Remarks.applied sink ~pass:"test" ~func:"f" "did %d things" 2);
  (* retained in the sink *)
  (match Remarks.items sink with
  | [ r ] ->
    Alcotest.(check string) "msg" "did 2 things" r.Remarks.r_msg;
    Alcotest.(check string) "func" "f" r.Remarks.r_func
  | rs -> Alcotest.failf "expected 1 remark, got %d" (List.length rs));
  (* and attached to the open span as an instant *)
  let span = List.hd (Trace.spans_named trace "pass:test") in
  match Trace.sub span with
  | [ Trace.Instant i ] -> Alcotest.(check string) "cat" "remark" i.Trace.i_cat
  | _ -> Alcotest.fail "remark instant should nest under the pass span"

let suite =
  [ tc "trace: span nesting" test_span_nesting;
    tc "trace: monotonic timing" test_monotonic_timing;
    tc "trace: exception safety + close_all" test_exception_safety_and_close_all;
    tc "trace: null ctx records nothing" test_null_ctx_records_nothing;
    tc "chrome export: schema valid + nesting + escapes" test_chrome_schema;
    tc "json parser rejects garbage" test_json_parser_rejects_garbage;
    tc "tracing preserves golden counters and results"
      test_tracing_preserves_golden_counters;
    tc "hot-spot totals match counters" test_hotspot_totals_match_counters;
    tc "remarks flow into sink and trace" test_remarks_flow_into_trace ]
