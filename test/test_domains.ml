(* Domain-parallel engine: differential bit-identity tests.

   The contract under test (DESIGN.md §13): sharding a launch's team
   loop over N OCaml domains changes *only* wall-clock time. Per-team
   counters, totals, simulated results, faults (down to the faulting
   team and site), injection behaviour and sanitizer verdicts must be
   byte-for-byte what the sequential engine produces, for every proxy,
   every pipeline and every domain count — including domain counts that
   do not divide the team count, and counts larger than it. *)

module E = Ozo_harness.Experiments
module R = Ozo_harness.Report
module C = Ozo_core.Codesign
module Proxy = Ozo_proxies.Proxy
module Registry = Ozo_proxies.Registry
module Pipeline = Ozo_opt.Pipeline
module Device = Ozo_vgpu.Device
module Engine = Ozo_vgpu.Engine
module Counters = Ozo_vgpu.Counters
module Fault = Ozo_vgpu.Fault
module Faultinject = Ozo_vgpu.Faultinject
module Pool = Ozo_util.Pool

let tc = Alcotest.test_case

(* --- the worker pool's chunking ----------------------------------------- *)

let test_chunking () =
  List.iter
    (fun (items, workers) ->
      let chunks = List.init workers (Pool.chunk ~items ~workers) in
      (* chunks are contiguous, ordered, and cover [0, items) exactly *)
      let next = ref 0 in
      List.iter
        (fun (lo, hi) ->
          Alcotest.(check int) "contiguous" !next lo;
          Alcotest.(check bool) "ordered" true (hi >= lo);
          next := hi)
        chunks;
      Alcotest.(check int) "covers all items" items !next;
      (* balanced: sizes differ by at most one *)
      let sizes = List.map (fun (lo, hi) -> hi - lo) chunks in
      let mn = List.fold_left min max_int sizes
      and mx = List.fold_left max 0 sizes in
      Alcotest.(check bool) "balanced" true (mx - mn <= 1))
    [ (10, 1); (10, 2); (10, 3); (10, 4); (7, 3); (1, 4); (0, 2); (64, 8);
      (5, 5); (5, 8) ]

(* --- launch helpers ------------------------------------------------------ *)

(* Launch one proxy under one build at a given domain count and return
   everything observable: the per-team counter list, the totals, and the
   differential check verdict — or the structured fault. *)
let run_once ?inject ?(sanitize = false) ~domains (p : Proxy.t) (b : C.build) :
    (Engine.result * (unit, string) result, Fault.t) result =
  let c = C.compile b (Proxy.kernel_for p b.C.b_abi) in
  let dev = C.device ~sanitize c in
  let inst = p.Proxy.p_setup dev in
  let opts = { Device.Launch_opts.default with Device.Launch_opts.domains; inject } in
  let hw = C.hw_threads c ~threads:p.Proxy.p_threads in
  match Device.launch ~opts dev ~teams:p.Proxy.p_teams ~threads:hw inst.Proxy.i_args with
  | Ok r -> Ok (r, inst.Proxy.i_check ())
  | Error f -> Error f

let check_str = function Ok () -> "ok" | Error e -> "FAILED: " ^ e

let fault_sig (f : Fault.t) =
  Fmt.str "%s@%a/%a/%a team=%a" (Fault.kind_name f.Fault.f_kind)
    Fmt.(option ~none:(any "?") string) f.Fault.f_fn
    Fmt.(option ~none:(any "?") string) f.Fault.f_blk
    Fmt.(option ~none:(any "?") int) f.Fault.f_idx
    Fmt.(option ~none:(any "?") int) f.Fault.f_team

(* assert two launches are observably identical *)
let same_outcome ctx seq par =
  match (seq, par) with
  | Ok (rs, cs), Ok (rp, cp) ->
    Alcotest.(check int)
      (ctx ^ ": team count") (List.length rs.Engine.r_counters)
      (List.length rp.Engine.r_counters);
    List.iteri
      (fun i (a, b) ->
        if not (Counters.equal a b) then
          Alcotest.failf "%s: team %d counters diverge:@.%a@.vs@.%a" ctx i
            Counters.pp a Counters.pp b)
      (List.combine rs.Engine.r_counters rp.Engine.r_counters);
    if not (Counters.equal rs.Engine.r_total rp.Engine.r_total) then
      Alcotest.failf "%s: totals diverge" ctx;
    Alcotest.(check string) (ctx ^ ": check") (check_str cs) (check_str cp)
  | Error fs, Error fp ->
    Alcotest.(check string) (ctx ^ ": fault") (fault_sig fs) (fault_sig fp)
  | Ok _, Error f ->
    Alcotest.failf "%s: sequential ok but parallel faulted: %s" ctx (Fault.to_line f)
  | Error f, Ok _ ->
    Alcotest.failf "%s: sequential faulted (%s) but parallel ok" ctx (Fault.to_line f)

(* pipeline variants per the issue: O0, baseline and the full pipeline *)
let pipes p = [ Pipeline.o0; Pipeline.baseline; (E.new_rt_for p).C.b_pipe ]

let builds_under_test p =
  (* the honest new-rt build under each pipeline strength, plus the
     old-rt build whose generic-mode runtime exercises malloc-backed
     data sharing *)
  List.map (fun pipe -> { (E.new_rt_for p) with C.b_pipe = pipe }) (pipes p)
  @ [ C.old_rt_nightly ]

(* --- bit-identity: every proxy x pipeline x domain count ----------------- *)

let test_bit_identity () =
  List.iter
    (fun p ->
      List.iter
        (fun b ->
          let seq = run_once ~domains:1 p b in
          List.iter
            (fun d ->
              let ctx =
                Fmt.str "%s/%s/%s domains=%d" p.Proxy.p_name b.C.b_label
                  b.C.b_pipe.Pipeline.name d
              in
              same_outcome ctx seq (run_once ~domains:d p b))
            (* 3 rarely divides a proxy's team count; 64 exceeds it and
               must be capped to teams *)
            [ 2; 3; 4; 64 ])
        (builds_under_test p))
    (Registry.all_small ())

(* --- sanitizer parity ----------------------------------------------------- *)

let test_sanitizer_parity () =
  List.iter
    (fun p ->
      let b = E.new_rt_for p in
      let seq = run_once ~sanitize:true ~domains:1 p b in
      same_outcome
        (Fmt.str "%s sanitized domains=4" p.Proxy.p_name)
        seq
        (run_once ~sanitize:true ~domains:4 p b))
    (Registry.all_small ())

(* --- fault injection ------------------------------------------------------ *)

(* The injected site is a pure function of (seed, team count): the seed
   picks the target team, and that team's occurrence countdown comes from
   a per-team PRNG stream. Pin both the purity and concrete values so a
   refactor that silently re-seeds the stream fails loudly. *)
let test_injection_stream_pinned () =
  let spec seed =
    { Faultinject.s_action = Faultinject.Corrupt_load; s_fn = None;
      s_nth = None; s_seed = seed }
  in
  (* pure-function pins: same inputs, same target, at any call order *)
  List.iter
    (fun seed ->
      let t1 = Faultinject.target_team (spec seed) ~teams:7 in
      let t2 = Faultinject.target_team (spec seed) ~teams:7 in
      Alcotest.(check int) "target team is pure" t1 t2;
      Alcotest.(check bool) "target in range" true (t1 >= 0 && t1 < 7);
      (* the per-team stream exists exactly for the target team *)
      List.iter
        (fun team ->
          let st = Faultinject.start_team (spec seed) ~team ~teams:7 in
          Alcotest.(check bool)
            (Fmt.str "stream iff target (seed %d team %d)" seed team)
            (team = t1) (st <> None))
        [ 0; 1; 2; 3; 4; 5; 6 ])
    [ 1; 7; 42; 1234 ];
  (* concrete snapshot: the deterministic split must never drift *)
  Alcotest.(check int) "seed 42 teams 7 target"
    (Faultinject.target_team (spec 42) ~teams:7)
    (Faultinject.target_team { (spec 42) with Faultinject.s_nth = Some 3 } ~teams:7)

let test_injection_site_identical_across_domains () =
  List.iter
    (fun seed ->
      let spec =
        { Faultinject.s_action = Faultinject.Corrupt_load; s_fn = None;
          s_nth = None; s_seed = seed }
      in
      let p = Registry.find_exn "gridmini" in
      let b = C.old_rt_nightly in
      let seq = run_once ~inject:spec ~domains:1 p b in
      List.iter
        (fun d ->
          same_outcome
            (Fmt.str "inject seed %d domains=%d" seed d)
            seq
            (run_once ~inject:spec ~domains:d p b))
        [ 2; 4 ])
    [ 3; 42 ]

(* --- CSV byte identity through the harness -------------------------------- *)

let test_csv_bytes_identical () =
  let p = Registry.find_exn "xsbench" in
  let b = E.new_rt_for p in
  (* normalize what legitimately differs between the two runs: host
     wall-clock phase times (absent here: untraced) and the domains
     column, which records how the row ran *)
  let normalize m = { m with E.r_phase_us = []; r_domains = 1 } in
  let csv m = Fmt.str "%a" R.pp_csv (normalize m) in
  let m1 = E.measure ~domains:1 p b in
  let m4 = E.measure ~domains:4 p b in
  Alcotest.(check int) "effective domains recorded" 4 m4.E.r_domains;
  Alcotest.(check string) "csv bytes identical" (csv m1) (csv m4)

let suite =
  [ tc "pool: chunking covers, stays contiguous and balanced" `Quick test_chunking;
    tc "parallel = sequential for every proxy x pipeline x domains" `Quick
      test_bit_identity;
    tc "sanitizer verdicts identical at domains 4" `Quick test_sanitizer_parity;
    tc "injection stream is a pure function of (seed, team)" `Quick
      test_injection_stream_pinned;
    tc "injected site identical across domain counts" `Quick
      test_injection_site_identical_across_domains;
    tc "campaign csv rows byte-identical across domain counts" `Quick
      test_csv_bytes_identical ]
