(* Frontend tests: AST utilities and the three lowerings, executed
   unoptimized against host-evaluated expectations. *)

open Ozo_frontend.Ast
module Lower = Ozo_frontend.Lower
module Config = Ozo_runtime.Config
module Runtime = Ozo_runtime.Runtime
module Device = Ozo_vgpu.Device
module Engine = Ozo_vgpu.Engine
open Util

let abis =
  [ ("cuda", Lower.Cuda, None);
    ("omp-new", Lower.Omp Lower.New_abi, Some Config.default);
    ("omp-old", Lower.Omp Lower.Old_abi, Some Config.old_rt) ]

let compile_unopt abi rt kernel =
  let app = Lower.lower ~abi kernel in
  match rt with
  | None -> app
  | Some cfg -> Ozo_ir.Linker.link app (Runtime.build cfg)

(* launch helper honoring generic-mode thread layout *)
let run_kernel name m ~kernel ~teams ~threads args =
  check_verifies name m;
  let threads =
    match Ozo_opt.Spmdize.kernel_mode m kernel with
    | Ozo_opt.Spmdize.Generic -> threads + 32
    | Ozo_opt.Spmdize.Spmd -> threads
  in
  let dev = Device.create m in
  (dev, Device.launch dev ~teams ~threads args)

let test_free_vars () =
  let body =
    [ Let ("a", Add (P "x", Int 1));
      Local ("acc", TFloat, Some (Float 0.0));
      Set ("acc", Add (P "acc", P "y"));
      Store (P "out", P "a", MF64, P "acc") ]
  in
  let fv = free_vars body in
  Alcotest.(check (list string)) "free" [ "out"; "x"; "y" ]
    (List.sort compare (SSet.elements fv))

let test_free_vars_loops () =
  let body =
    [ For ("i", Int 0, P "n", [ Store (P "out", P "i", MI64, P "i") ]);
      Ws_for ("j", P "m", [ Store (P "out", P "j", MI64, P "k") ]) ]
  in
  let fv = free_vars body in
  Alcotest.(check (list string)) "loop vars bound" [ "k"; "m"; "n"; "out" ]
    (List.sort compare (SSet.elements fv))

let test_local_decls_nested () =
  let body =
    [ Local ("a", TInt, None);
      If (Int 1, [ Local ("b", TFloat, None) ], [ LocalArr ("c", MF64, 4) ]);
      For ("i", Int 0, Int 3, [ Local ("d", TInt, None) ]);
      Parallel (None, [ Local ("outlined", TInt, None) ]) ]
  in
  let names = List.map fst (local_decls body) in
  Alcotest.(check (list string)) "hoisted decls" [ "a"; "b"; "c"; "d" ]
    (List.sort compare names)

(* a kernel exercising expressions, locals, If, For, While *)
let expr_kernel =
  { k_name = "k";
    k_params = [ ("out", TInt); ("n", TInt) ];
    k_construct =
      Distribute_parallel_for
        ( "i",
          P "n",
          [ Local ("acc", TInt, Some (Int 0));
            For ("j", Int 0, Int 4, [ Set ("acc", Add (P "acc", Mul (P "i", P "j"))) ]);
            Local ("w", TInt, Some (Int 1));
            While (Cmp (CLt, P "w", Int 10), [ Set ("w", Mul (P "w", Int 3)) ]);
            If
              ( Cmp (CEq, Rem (P "i", Int 2), Int 0),
                [ Set ("acc", Add (P "acc", Int 100)) ],
                [ Set ("acc", Sub (P "acc", Int 100)) ] );
            Store (P "out", P "i", MI64, Add (P "acc", P "w"))
          ] ) }

let expr_expected n =
  Array.init n (fun i ->
      let acc = 6 * i in
      let acc = if i mod 2 = 0 then acc + 100 else acc - 100 in
      acc + 27)

let run_expr_kernel (name, abi, rt) =
  let n = 64 in
  let m = compile_unopt abi rt expr_kernel in
  check_verifies name m;
  let threads =
    match Ozo_opt.Spmdize.kernel_mode m "k" with
    | Ozo_opt.Spmdize.Generic -> 64
    | Ozo_opt.Spmdize.Spmd -> 32
  in
  let dev = Device.create m in
  let out = Device.alloc dev (n * 8) in
  (match Device.launch dev ~teams:2 ~threads [ Engine.Ai (Device.ptr out); Ai n ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%s: %a" name Device.pp_error e);
  let got = i64_array dev out n in
  let expected = expr_expected n in
  Array.iteri
    (fun i e -> Alcotest.(check int) (Printf.sprintf "%s[%d]" name i) e got.(i))
    expected

let test_expr_cuda () = run_expr_kernel (List.nth abis 0)
let test_expr_omp_new () = run_expr_kernel (List.nth abis 1)
let test_expr_omp_old () = run_expr_kernel (List.nth abis 2)

(* float math expressions *)
let math_kernel =
  { k_name = "k";
    k_params = [ ("out", TInt); ("n", TInt) ];
    k_construct =
      Distribute_parallel_for
        ( "i",
          P "n",
          [ Let ("x", Add (ToFloat (P "i"), Float 0.5));
            Let
              ( "v",
                Add
                  ( Sqrt (P "x"),
                    Add
                      ( Mul (Sinf (P "x"), Cosf (P "x")),
                        Add (Expf (Neg (P "x")), Logf (Add (P "x", Float 1.0))) ) ) );
            Let ("v2", Max (Fabs (Sub (P "v", Float 1.0)), Min (P "v", Float 0.25)));
            Store (P "out", P "i", MF64, Select (Cmp (CGt, P "v2", Float 0.5), P "v2", Neg (P "v2")))
          ] ) }

let math_expected n =
  Array.init n (fun i ->
      let x = float_of_int i +. 0.5 in
      let v = sqrt x +. ((sin x *. cos x) +. (exp (-.x) +. log (x +. 1.0))) in
      let v2 = Float.max (Float.abs (v -. 1.0)) (Float.min v 0.25) in
      if v2 > 0.5 then v2 else -.v2)

let test_math_kernel () =
  List.iter
    (fun (name, abi, rt) ->
      let n = 32 in
      let m = compile_unopt abi rt math_kernel in
      check_verifies name m;
      let threads =
        match Ozo_opt.Spmdize.kernel_mode m "k" with
        | Ozo_opt.Spmdize.Generic -> 64
        | Ozo_opt.Spmdize.Spmd -> 32
      in
      let dev = Device.create m in
      let out = Device.alloc dev (n * 8) in
      (match Device.launch dev ~teams:1 ~threads [ Engine.Ai (Device.ptr out); Ai n ] with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s: %a" name Device.pp_error e);
      check_f64s name (math_expected n) (f64_array dev out n))
    abis

(* local arrays *)
let arr_kernel =
  { k_name = "k";
    k_params = [ ("out", TInt); ("n", TInt) ];
    k_construct =
      Distribute_parallel_for
        ( "i",
          P "n",
          [ LocalArr ("tmp", MF64, 4);
            For ("j", Int 0, Int 4, [ Store (P "tmp", P "j", MF64, ToFloat (Mul (P "i", P "j"))) ]);
            Local ("s", TFloat, Some (Float 0.0));
            For ("j2", Int 0, Int 4, [ Set ("s", Add (P "s", Ld (P "tmp", P "j2", MF64))) ]);
            Store (P "out", P "i", MF64, P "s")
          ] ) }

let test_local_arrays () =
  List.iter
    (fun (name, abi, rt) ->
      let n = 48 in
      let m = compile_unopt abi rt arr_kernel in
      check_verifies name m;
      let threads =
        match Ozo_opt.Spmdize.kernel_mode m "k" with
        | Ozo_opt.Spmdize.Generic -> 64
        | Ozo_opt.Spmdize.Spmd -> 32
      in
      let dev = Device.create m in
      let out = Device.alloc dev (n * 8) in
      (match Device.launch dev ~teams:2 ~threads [ Engine.Ai (Device.ptr out); Ai n ] with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s: %a" name Device.pp_error e);
      let expected = Array.init n (fun i -> float_of_int (6 * i)) in
      check_f64s name expected (f64_array dev out n))
    abis

(* shared mutable local across a parallel region (generic construct): one
   designated thread writes the main thread's (globalized) local; the main
   thread reads it after the join. *)
let shared_local_kernel =
  { k_name = "k";
    k_params = [ ("out", TInt) ];
    k_construct =
      Generic
        [ Local ("flag", TInt, Some (Int 0));
          Parallel
            ( None,
              [ If (Cmp (CEq, OmpThreadNum, Int 3), [ Set ("flag", Int 42) ], []) ] );
          Store (P "out", Int 0, MI64, P "flag")
        ] }

let test_shared_local_across_parallel () =
  List.iter
    (fun (name, abi, rt) ->
      match abi with
      | Lower.Cuda -> () (* no generic construct in CUDA *)
      | _ ->
        let m = compile_unopt abi rt shared_local_kernel in
        check_verifies name m;
        let dev = Device.create m in
        let out = Device.alloc dev 8 in
        (match
           Device.launch dev ~teams:1 ~threads:64 [ Engine.Ai (Device.ptr out) ]
         with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "%s: %a" name Device.pp_error e);
        Alcotest.(check int) (name ^ " shared flag") 42 (i64_array dev out 1).(0))
    abis

let test_nested_parallel_levels () =
  (* omp_get_level: 0 at target, 1 in parallel, 2 in nested *)
  let k =
    { k_name = "k";
      k_params = [ ("out", TInt) ];
      k_construct =
        Generic
          [ Store (P "out", Int 0, MI64, OmpLevel);
            Parallel
              ( None,
                [ If
                    ( Cmp (CEq, OmpThreadNum, Int 0),
                      [ Store (P "out", Int 1, MI64, OmpLevel);
                        Nested_parallel [ Store (P "out", Int 2, MI64, OmpLevel) ]
                      ],
                      [] )
                ] )
          ] }
  in
  let m = compile_unopt (Lower.Omp Lower.New_abi) (Some Config.default) k in
  check_verifies "nested levels" m;
  let dev = Device.create m in
  let out = Device.alloc dev 24 in
  (match Device.launch dev ~teams:1 ~threads:64 [ Engine.Ai (Device.ptr out) ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" Device.pp_error e);
  let got = i64_array dev out 3 in
  Alcotest.(check int) "target level" 0 got.(0);
  Alcotest.(check int) "parallel level" 1 got.(1);
  Alcotest.(check int) "nested level" 2 got.(2)

let test_parallel_in_cuda_rejected () =
  let k =
    { k_name = "k"; k_params = [];
      k_construct = Generic [ Parallel (None, []) ] }
  in
  match Lower.lower ~abi:Lower.Cuda k with
  | exception Lower.Lower_error _ -> ()
  | _ -> Alcotest.fail "expected Lower_error"

let test_assert_stmt () =
  let k ok =
    { k_name = "k"; k_params = [];
      k_construct = Spmd [ Assert (Int (if ok then 1 else 0)) ] }
  in
  (* CUDA: a failing assert traps directly *)
  (match
     let m = compile_unopt Lower.Cuda None (k false) in
     let dev = Device.create m in
     Device.launch dev ~teams:1 ~threads:32 []
   with
  | Error f when Fault.is_trap f -> ()
  | Ok _ -> Alcotest.fail "cuda assert should trap"
  | Error f -> Alcotest.failf "fault: %s" f.Fault.f_msg);
  (* OpenMP debug build traps, release converts to assumption *)
  let m_dbg =
    compile_unopt (Lower.Omp Lower.New_abi) (Some Config.(with_debug default)) (k false)
  in
  (match
     let dev = Device.create m_dbg in
     Device.launch dev ~teams:1 ~threads:32 []
   with
  | Error f when Fault.is_trap f -> ()
  | Ok _ -> Alcotest.fail "debug assert should trap"
  | Error f -> Alcotest.failf "fault: %s" f.Fault.f_msg);
  let m_rel = compile_unopt (Lower.Omp Lower.New_abi) (Some Config.default) (k false) in
  let dev = Device.create m_rel in
  match Device.launch dev ~teams:1 ~threads:32 [] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "release assert: %a" Device.pp_error e

let suite =
  [ tc "free_vars basics" test_free_vars;
    tc "free_vars binds loop vars" test_free_vars_loops;
    tc "local_decls hoisting scope" test_local_decls_nested;
    tc "expr kernel: cuda" test_expr_cuda;
    tc "expr kernel: omp-new (generic)" test_expr_omp_new;
    tc "expr kernel: omp-old" test_expr_omp_old;
    tc "math expressions (all abis)" test_math_kernel;
    tc "local arrays (all abis)" test_local_arrays;
    tc "shared local across parallel" test_shared_local_across_parallel;
    tc "nested parallel levels" test_nested_parallel_levels;
    tc "parallel rejected in CUDA lowering" test_parallel_in_cuda_rejected;
    tc "assert statement (cuda/debug/release)" test_assert_stmt ]
