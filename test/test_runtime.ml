(* Device-runtime tests: structural invariants of the built modules and
   behavioural tests of the runtime executing unoptimized. *)

open Ozo_ir.Types
module B = Ozo_ir.Builder
module L = Ozo_runtime.Layout
module Config = Ozo_runtime.Config
module Runtime = Ozo_runtime.Runtime
module Device = Ozo_vgpu.Device
module Engine = Ozo_vgpu.Engine
open Util

let test_modules_verify () =
  List.iter
    (fun (name, cfg) ->
      match Ozo_ir.Verifier.check (Runtime.build cfg) with
      | Ok () -> ()
      | Error vs ->
        Alcotest.failf "%s: %a" name
          (Fmt.list ~sep:Fmt.semi Ozo_ir.Verifier.pp_violation)
          vs)
    [ ("new", Config.default);
      ("new+assume", Config.(with_assumptions default));
      ("new+debug", Config.(with_debug default));
      ("old", Config.old_rt);
      ("old+debug", Config.(with_debug old_rt)) ]

let test_shared_footprints () =
  (* the static shared-memory budgets reproduce the paper's Fig. 11
     orders: ~11.3KB for the new runtime, ~2.3KB for the old *)
  let new_b = Ozo_vgpu.Engine.shared_bytes (Runtime.build Config.default) in
  let old_b = Ozo_vgpu.Engine.shared_bytes (Runtime.build Config.old_rt) in
  Alcotest.(check bool) "new ~11.3KB" true (new_b > 11_000 && new_b < 12_000);
  Alcotest.(check bool) "old ~2.3KB" true (old_b > 2_000 && old_b < 2_500)

let test_config_globals_reflect_flags () =
  let m = Runtime.build Config.(with_assumptions (with_debug default)) in
  let check name expected =
    match find_global m name with
    | Some g -> Alcotest.(check bool) name true (g.g_init = Words_init [ expected ])
    | None -> Alcotest.failf "missing %s" name
  in
  check L.cfg_debug 1L;
  check L.cfg_assume_teams_oversub 1L;
  check L.cfg_assume_threads_oversub 1L;
  let m0 = Runtime.build Config.default in
  match find_global m0 L.cfg_debug with
  | Some g -> Alcotest.(check bool) "debug off" true (g.g_init = Words_init [ 0L ])
  | None -> Alcotest.fail "missing debug flag"

(* link a hand-written kernel against a runtime and run it *)
let with_runtime cfg emit ~params =
  let app = kernel_module ~params emit in
  Ozo_ir.Linker.link app (Runtime.build cfg)

let test_spmd_init_worksharing () =
  (* SPMD kernel distributing 100 iterations via the runtime *)
  let m =
    with_runtime Config.default ~params:[ I64 ] (fun b ps ->
        match ps with
        | [ out ] ->
          (* build an outlined body first? use a pre-made body function via
             module-level second function: simpler — call the runtime
             work-share with a body that writes iv*2 *)
          let r = B.call_val b L.target_init [ B.i64 1 ] in
          ignore r;
          B.call_void b L.distribute_for_loop [ Func_addr "body"; out; B.i64 100 ];
          B.call_void b L.target_deinit [ B.i64 1 ]
        | _ -> assert false)
  in
  (* add the body function: (iv, args) -> store iv*2 to args[iv] *)
  let b = B.create "body_mod" in
  (match B.begin_func b ~name:"body" ~params:[ I64; I64 ] ~ret:None () with
  | [ iv; args ] ->
    B.set_block b "entry";
    let v = B.mul b iv (B.i64 2) in
    B.store b I64 v (B.ptradd b args (B.mul b iv (B.i64 8)));
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b);
  let m = Ozo_ir.Linker.link m (B.finish b) in
  check_verifies "spmd ws" m;
  let dev = Device.create m in
  let out = Device.alloc dev (100 * 8) in
  (match Device.launch dev ~teams:2 ~threads:32 [ Engine.Ai (Device.ptr out) ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" Device.pp_error e);
  let got = i64_array dev out 100 in
  Array.iteri (fun i v -> Alcotest.(check int) "iter" (i * 2) v) got

let test_generic_state_machine () =
  (* generic kernel: main thread forks a parallel region via the worker
     state machine; workers write their ids *)
  let m =
    with_runtime Config.default ~params:[ I64 ] (fun b ps ->
        match ps with
        | [ out ] ->
          let r = B.call_val b L.target_init [ B.i64 0 ] in
          let proceed = B.icmp b Eq r (B.i64 1) in
          B.if_then b proceed ~then_:(fun () ->
              B.call_void b L.parallel [ Func_addr "par_body"; out; B.i64 (-1) ];
              B.call_void b L.target_deinit [ B.i64 0 ])
        | _ -> assert false)
  in
  let b = B.create "body_mod" in
  (match B.begin_func b ~name:"par_body" ~params:[ I64; I64 ] ~ret:None () with
  | [ tid; args ] ->
    B.set_block b "entry";
    let v = B.add b tid (B.i64 1000) in
    B.store b I64 v (B.ptradd b args (B.mul b tid (B.i64 8)));
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b);
  let m = Ozo_ir.Linker.link m (B.finish b) in
  check_verifies "generic sm" m;
  let dev = Device.create m in
  let out = Device.alloc dev (32 * 8) in
  (* generic: workers = 32, main warp extra *)
  (match Device.launch dev ~teams:1 ~threads:64 [ Engine.Ai (Device.ptr out) ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" Device.pp_error e);
  let got = i64_array dev out 32 in
  Array.iteri (fun i v -> Alcotest.(check int) "worker wrote" (1000 + i) v) got

let test_icv_defaults_spmd () =
  (* omp_get_num_threads inside an SPMD region = block_dim;
     omp_get_level outside parallel = 0 *)
  let m =
    with_runtime Config.default ~params:[ I64 ] (fun b ps ->
        match ps with
        | [ out ] ->
          ignore (B.call_val b L.target_init [ B.i64 1 ]);
          let nt = B.call_val b L.get_num_threads [] in
          let lvl = B.call_val b L.get_level [] in
          let tid = B.thread_id b in
          let is0 = B.icmp b Eq tid (B.i64 0) in
          B.if_then b is0 ~then_:(fun () ->
              B.store b I64 nt out;
              B.store b I64 lvl (B.ptradd b out (B.i64 8)));
          B.call_void b L.target_deinit [ B.i64 1 ]
        | _ -> assert false)
  in
  let dev = Device.create m in
  let out = Device.alloc dev 16 in
  (match Device.launch dev ~teams:1 ~threads:32 [ Engine.Ai (Device.ptr out) ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" Device.pp_error e);
  Alcotest.(check int) "num_threads" 32 (i64_array dev out 2).(0);
  Alcotest.(check int) "level" 0 (i64_array dev out 2).(1)

let test_alloc_shared_stack_and_fallback () =
  (* small allocation comes from the shared stack; oversized falls back
     to global malloc; both are usable and freeable *)
  let m =
    with_runtime Config.default ~params:[ I64 ] (fun b ps ->
        match ps with
        | [ out ] ->
          ignore (B.call_val b L.target_init [ B.i64 1 ]);
          let tid = B.thread_id b in
          let is0 = B.icmp b Eq tid (B.i64 0) in
          B.if_then b is0 ~then_:(fun () ->
              let small = B.call_val b L.alloc_shared [ B.i64 16 ] in
              B.store b I64 (B.i64 11) small;
              let big = B.call_val b L.alloc_shared [ B.i64 1_000_000 ] in
              B.store b I64 (B.i64 22) big;
              let v1 = B.load b I64 small in
              let v2 = B.load b I64 big in
              B.store b I64 v1 out;
              B.store b I64 v2 (B.ptradd b out (B.i64 8));
              (* small must live in shared space, big in global space *)
              let tag_small = B.binop b Lshr small (B.i64 44) in
              let tag_big = B.binop b Lshr big (B.i64 44) in
              B.store b I64 tag_small (B.ptradd b out (B.i64 16));
              B.store b I64 tag_big (B.ptradd b out (B.i64 24));
              B.call_void b L.free_shared [ big; B.i64 1_000_000 ];
              B.call_void b L.free_shared [ small; B.i64 16 ]);
          B.call_void b L.target_deinit [ B.i64 1 ]
        | _ -> assert false)
  in
  let dev = Device.create m in
  let out = Device.alloc dev 32 in
  (match Device.launch dev ~teams:1 ~threads:32 [ Engine.Ai (Device.ptr out) ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" Device.pp_error e);
  let got = i64_array dev out 4 in
  Alcotest.(check int) "small value" 11 got.(0);
  Alcotest.(check int) "big value" 22 got.(1);
  Alcotest.(check int) "small in shared" Ozo_vgpu.Memory.tag_shared got.(2);
  Alcotest.(check int) "big in global" Ozo_vgpu.Memory.tag_global got.(3)

let test_push_pop_icv_state () =
  (* push creates a thread state (get_level reads it), pop restores *)
  let m =
    with_runtime Config.default ~params:[ I64 ] (fun b ps ->
        match ps with
        | [ out ] ->
          ignore (B.call_val b L.target_init [ B.i64 1 ]);
          let tid = B.thread_id b in
          let is0 = B.icmp b Eq tid (B.i64 0) in
          B.if_then b is0 ~then_:(fun () ->
              let before = B.call_val b L.get_level [] in
              let ts = B.call_val b L.push_icv_state [] in
              (* bump levels on the private state *)
              let lvl_addr = B.ptradd b ts (B.i64 L.icv_levels) in
              let lvl = B.load b I64 lvl_addr in
              B.store b I64 (B.add b lvl (B.i64 1)) lvl_addr;
              let inside = B.call_val b L.get_level [] in
              B.call_void b L.pop_icv_state [];
              let after = B.call_val b L.get_level [] in
              B.store b I64 before out;
              B.store b I64 inside (B.ptradd b out (B.i64 8));
              B.store b I64 after (B.ptradd b out (B.i64 16)));
          B.call_void b L.target_deinit [ B.i64 1 ]
        | _ -> assert false)
  in
  let dev = Device.create m in
  let out = Device.alloc dev 24 in
  (match Device.launch dev ~teams:1 ~threads:32 [ Engine.Ai (Device.ptr out) ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" Device.pp_error e);
  let got = i64_array dev out 3 in
  Alcotest.(check int) "level before" 0 got.(0);
  Alcotest.(check int) "level inside" 1 got.(1);
  Alcotest.(check int) "level after" 0 got.(2)

let test_omp_assert_release_vs_debug () =
  let mk cfg =
    with_runtime cfg ~params:[] (fun b _ ->
        ignore (B.call_val b L.target_init [ B.i64 1 ]);
        B.call_void b L.omp_assert [ B.i64 0 ];
        B.call_void b L.target_deinit [ B.i64 1 ])
  in
  (* release: the failing assertion becomes an (unchecked) assumption *)
  let dev = Device.create (mk Config.default) in
  (match Device.launch dev ~teams:1 ~threads:32 [] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "release should pass: %a" Device.pp_error e);
  (* debug: trap *)
  let f = expect_error (mk Config.(with_debug default)) [] in
  if Fault.is_trap f then
    Alcotest.(check bool) "assert msg" true (contains f.Fault.f_msg "assertion")
  else Alcotest.failf "expected trap, got %s" f.Fault.f_msg

let test_old_rt_worksharing () =
  (* the split distribute/for_static_init path covers the space exactly *)
  let m =
    with_runtime Config.old_rt ~params:[ I64 ] (fun b ps ->
        match ps with
        | [ out ] ->
          ignore (B.call_val b L.target_init [ B.i64 1 ]);
          let a_lb = B.alloca b 8 and a_ub = B.alloca b 8 and a_st = B.alloca b 8 in
          B.call_void b L.old_distribute_init [ a_lb; a_ub; B.i64 100 ];
          let tlb = B.load b I64 a_lb and tub = B.load b I64 a_ub in
          B.call_void b L.old_for_static_init [ a_lb; a_ub; a_st; tlb; tub ];
          let lb = B.load b I64 a_lb and ub = B.load b I64 a_ub in
          ignore
            (B.for_loop b ~lo:lb ~hi:ub ~step:(B.i64 1) ~body:(fun iv ->
                 B.atomic_add b I64 (B.ptradd b out (B.mul b iv (B.i64 8))) (B.i64 1)));
          B.call_void b L.barrier [];
          B.call_void b L.target_deinit [ B.i64 1 ]
        | _ -> assert false)
  in
  check_verifies "old ws" m;
  let dev = Device.create m in
  let out = Device.alloc dev (100 * 8) in
  (match Device.launch dev ~teams:4 ~threads:32 [ Engine.Ai (Device.ptr out) ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" Device.pp_error e);
  let got = i64_array dev out 100 in
  Array.iteri (fun i v -> Alcotest.(check int) (Printf.sprintf "iter %d once" i) 1 v) got

let suite =
  [ tc "runtime modules verify" test_modules_verify;
    tc "shared-memory footprints (Fig. 11)" test_shared_footprints;
    tc "config globals reflect flags" test_config_globals_reflect_flags;
    tc "SPMD init + combined worksharing" test_spmd_init_worksharing;
    tc "generic-mode state machine" test_generic_state_machine;
    tc "ICV defaults in SPMD" test_icv_defaults_spmd;
    tc "alloc_shared: stack + malloc fallback" test_alloc_shared_stack_and_fallback;
    tc "push/pop thread ICV state" test_push_pop_icv_state;
    tc "__omp_assert: release vs debug" test_omp_assert_release_vs_debug;
    tc "old RT split worksharing covers space" test_old_rt_worksharing ]
