(* Performance-portability differential suite (DESIGN.md §16).

   The machine descriptor changes *what the simulation computes about*
   a launch — wavefront width drives reconvergence, coalescing buckets,
   uniform-strand scalarization and the occupancy arithmetic — but it
   must never change the *answer*. Per machine (most importantly the
   64-wide MI250), every proxy under every standard build must produce
   the same simulated results, the same per-team counters and the same
   campaign CSV bytes across [--domains {1,4}] and [--exec {ir,vm}].

   On top of bit-identity, a few cross-machine facts are pinned: the
   64-wide descriptor really does halve the warp count of a 32-wide
   machine (fewer warp instructions for the same work), machines are
   distinct cache keys in the serving tier, and journal rows written
   before the machine column existed still decode (as "vgpu"). *)

module C = Ozo_core.Codesign
module E = Ozo_harness.Experiments
module R = Ozo_harness.Report
module Proxy = Ozo_proxies.Proxy
module Registry = Ozo_proxies.Registry
module Machine = Ozo_backend.Machine
module Engine = Ozo_vgpu.Engine
module Counters = Ozo_vgpu.Counters
module Device = Ozo_vgpu.Device
module Fault = Ozo_vgpu.Fault

let tc = Alcotest.test_case

let machines = [ Machine.v100; Machine.mi250; Machine.h100 ]

(* coverage of all code shapes: the SPMDized old and new runtimes, the
   runtime-free CUDA lowering, and — crucially for the wavefront width —
   old-rt under the baseline pipeline, which stays in *generic mode*
   where the runtime's worker count is [bdim - warp_size] *)
let baseline_old_rt =
  { C.old_rt_nightly with C.b_pipe = Ozo_opt.Pipeline.baseline }

let builds_under_test p =
  [ C.old_rt_nightly; baseline_old_rt; E.new_rt_for p; C.cuda ]

(* launch once at a given (machine, domains, exec) and return everything
   observable: per-team counters, totals, and the differential check *)
let run_once ~machine ~domains ~exec (p : Proxy.t) (b : C.build) :
    (Engine.result * (unit, string) result, Fault.t) result =
  let c = C.compile ~machine ~exec b (Proxy.kernel_for p b.C.b_abi) in
  let dev = C.device c in
  let inst = p.Proxy.p_setup dev in
  let opts = { Device.Launch_opts.default with Device.Launch_opts.domains } in
  let hw = C.hw_threads c ~threads:p.Proxy.p_threads in
  match
    Device.launch ~opts dev ~teams:p.Proxy.p_teams ~threads:hw
      inst.Proxy.i_args
  with
  | Ok r -> Ok (r, inst.Proxy.i_check ())
  | Error f -> Error f

let check_str = function Ok () -> "ok" | Error e -> "FAILED: " ^ e

let same_outcome ctx a b =
  match (a, b) with
  | Ok (ra, ca), Ok (rb, cb) ->
    Alcotest.(check int)
      (ctx ^ ": team count")
      (List.length ra.Engine.r_counters)
      (List.length rb.Engine.r_counters);
    List.iteri
      (fun i (x, y) ->
        if not (Counters.equal x y) then
          Alcotest.failf "%s: team %d counters diverge:@.%a@.vs@.%a" ctx i
            Counters.pp x Counters.pp y)
      (List.combine ra.Engine.r_counters rb.Engine.r_counters);
    if not (Counters.equal ra.Engine.r_total rb.Engine.r_total) then
      Alcotest.failf "%s: totals diverge" ctx;
    Alcotest.(check string) (ctx ^ ": check") (check_str ca) (check_str cb)
  | Error fa, Error fb ->
    Alcotest.(check string)
      (ctx ^ ": fault")
      (Fault.to_line fa) (Fault.to_line fb)
  | Ok _, Error f ->
    Alcotest.failf "%s: reference ok but variant faulted: %s" ctx
      (Fault.to_line f)
  | Error f, Ok _ ->
    Alcotest.failf "%s: reference faulted (%s) but variant ok" ctx
      (Fault.to_line f)

(* --- bit-identity per machine across domains x exec ----------------------- *)

let test_bit_identity_per_machine () =
  List.iter
    (fun machine ->
      List.iter
        (fun p ->
          List.iter
            (fun b ->
              let reference =
                run_once ~machine ~domains:1 ~exec:Engine.Exec_ir p b
              in
              (match reference with
              | Ok (_, Error e) ->
                Alcotest.failf "%s/%s on %s: check failed: %s" p.Proxy.p_name
                  b.C.b_label machine.Machine.mc_name e
              | Ok (_, Ok ()) -> ()
              | Error f ->
                Alcotest.failf "%s/%s on %s: faulted: %s" p.Proxy.p_name
                  b.C.b_label machine.Machine.mc_name (Fault.to_line f));
              List.iter
                (fun (domains, exec, tag) ->
                  same_outcome
                    (Fmt.str "%s/%s on %s %s" p.Proxy.p_name b.C.b_label
                       machine.Machine.mc_name tag)
                    reference
                    (run_once ~machine ~domains ~exec p b))
                [ (4, Engine.Exec_ir, "domains=4/ir");
                  (1, Engine.Exec_vm, "domains=1/vm");
                  (4, Engine.Exec_vm, "domains=4/vm") ])
            (builds_under_test p))
        (Registry.all_small ()))
    machines

(* --- campaign CSV bytes identical across domains x exec ------------------- *)

let test_csv_bytes_identical_per_machine () =
  List.iter
    (fun machine ->
      let p = Registry.find_exn "xsbench" in
      let b = E.new_rt_for p in
      (* the domains and exec columns record how the row ran; everything
         else must agree byte for byte *)
      let normalize m =
        { m with E.r_phase_us = []; r_domains = 1; r_exec = "ir" }
      in
      let csv m = Fmt.str "%a" R.pp_csv (normalize m) in
      let reference = E.measure ~machine ~domains:1 p b in
      Alcotest.(check string)
        (machine.Machine.mc_name ^ ": machine recorded")
        machine.Machine.mc_name reference.E.r_machine;
      List.iter
        (fun (domains, exec) ->
          let m = E.measure ~machine ~domains ~exec p b in
          Alcotest.(check string)
            (Fmt.str "%s csv bytes (domains=%d)" machine.Machine.mc_name
               domains)
            (csv reference) (csv m))
        [ (4, Engine.Exec_ir); (1, Engine.Exec_vm); (4, Engine.Exec_vm) ])
    machines

(* --- the wavefront width is real ------------------------------------------ *)

(* 64-wide wavefronts must halve the warp count of the same SPMD launch
   on a 32-wide machine — fewer (wider) warp instructions for identical
   results. Warp-width independence of the *answer* is covered above;
   here we pin that the width actually reaches the engine. *)
let test_wavefront_width_reaches_engine () =
  let p = Registry.find_exn "xsbench" in
  let b = E.new_rt_for p in
  let narrow = E.measure ~machine:Machine.v100 p b in
  let wide = E.measure ~machine:Machine.mi250 p b in
  Alcotest.(check bool) "both valid" true
    (narrow.E.r_check = Ok () && wide.E.r_check = Ok ());
  let wi m = m.E.r_counters.Counters.warp_instructions in
  if not (wi wide < wi narrow) then
    Alcotest.failf "64-wide run issued %d warp instructions, 32-wide %d"
      (wi wide) (wi narrow)

(* generic mode hosts the main thread in one extra warp — one *wavefront*
   of hardware threads, so the worker count follows the machine. Only
   un-SPMDized builds stay generic, hence the baseline pipeline. *)
let test_generic_mode_warp_extends_by_width () =
  let p = Registry.find_exn "xsbench" in
  let b = baseline_old_rt in
  let hw machine =
    let c = C.compile ~machine b (Proxy.kernel_for p b.C.b_abi) in
    (match c.C.c_mode with
    | Ozo_opt.Spmdize.Generic -> ()
    | Ozo_opt.Spmdize.Spmd ->
      Alcotest.failf "baseline old-rt unexpectedly SPMDized on %s"
        machine.Machine.mc_name);
    C.hw_threads c ~threads:p.Proxy.p_threads
  in
  Alcotest.(check int) "v100 generic hw threads"
    (p.Proxy.p_threads + 32) (hw Machine.v100);
  Alcotest.(check int) "mi250 generic hw threads"
    (p.Proxy.p_threads + 64) (hw Machine.mi250)

(* --- machines are distinct serving-tier cache keys -------------------------- *)

let test_machine_in_cache_key () =
  let p = Registry.find_exn "xsbench" in
  let b = E.new_rt_for p in
  let key machine =
    let linked = C.link_stage ~machine b (Proxy.kernel_for p b.C.b_abi) in
    C.Compile_key.of_linked ~machine b linked
  in
  let k32 = key Machine.v100 and k64 = key Machine.mi250 in
  if k32 <> key Machine.v100 then
    Alcotest.fail "cache key is not deterministic";
  if k32 = k64 then
    Alcotest.fail "v100 and mi250 compiles share a cache key"

(* --- journal compatibility -------------------------------------------------- *)

(* a measurement journaled before the machine column existed must decode
   as machine "vgpu"; a journaled mi250 row must round-trip its name *)
let find_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go 0

let test_journal_machine_tolerant_decode () =
  let module J = Ozo_resilience.Journal in
  let p = Registry.find_exn "xsbench" in
  let m = E.measure ~machine:Machine.mi250 p (E.new_rt_for p) in
  let path = Filename.temp_file "ozo_portability" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let w = J.start ~path ~fingerprint:"portability-test" in
      J.append w ~seq:0 m;
      J.close w;
      (match J.load ~path with
      | Ok (_, [ e ]) ->
        Alcotest.(check string) "machine round-trips" "mi250"
          e.J.e_m.E.r_machine
      | Ok (_, es) -> Alcotest.failf "expected 1 entry, got %d" (List.length es)
      | Error e -> Alcotest.failf "load failed: %s" e);
      (* splice the machine field out to simulate a pre-matrix journal *)
      let ic = open_in path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let needle = ",\"machine\":\"mi250\"" in
      let legacy =
        match find_sub s needle with
        | None -> Alcotest.fail "journal line lacks the machine field"
        | Some i ->
          String.sub s 0 i
          ^ String.sub s
              (i + String.length needle)
              (String.length s - i - String.length needle)
      in
      let oc = open_out path in
      output_string oc legacy;
      close_out oc;
      match J.load ~path with
      | Ok (_, [ e ]) ->
        Alcotest.(check string) "absent machine defaults" "vgpu"
          e.J.e_m.E.r_machine
      | Ok (_, es) -> Alcotest.failf "expected 1 entry, got %d" (List.length es)
      | Error e -> Alcotest.failf "legacy load failed: %s" e)

let suite =
  [ tc "per machine: domains x exec bit-identical (incl. 64-wide)" `Quick
      test_bit_identity_per_machine;
    tc "per machine: campaign csv bytes identical" `Quick
      test_csv_bytes_identical_per_machine;
    tc "64-wide wavefronts issue fewer warp instructions" `Quick
      test_wavefront_width_reaches_engine;
    tc "generic-mode runtime warp follows the wavefront width" `Quick
      test_generic_mode_warp_extends_by_width;
    tc "machine is part of the serving-tier cache key" `Quick
      test_machine_in_cache_key;
    tc "journal: machine column round-trips, absent defaults to vgpu" `Quick
      test_journal_machine_tolerant_decode ]
