(* Shared helpers for the test suites. *)

open Ozo_ir.Types
module B = Ozo_ir.Builder
module Device = Ozo_vgpu.Device
module Engine = Ozo_vgpu.Engine
module Fault = Ozo_vgpu.Fault

let check_verifies name m =
  match Ozo_ir.Verifier.check m with
  | Ok () -> ()
  | Error vs ->
    Alcotest.failf "%s: verifier: %a" name
      (Fmt.list ~sep:Fmt.semi Ozo_ir.Verifier.pp_violation)
      vs

(* Run a single-kernel module and return the result or fail the test. *)
let run_ok ?(check_assumes = false) ?(teams = 1) ?(threads = 32) m args =
  let dev = Device.create m in
  let opts = { Device.Launch_opts.default with Device.Launch_opts.check_assumes } in
  match Device.launch ~opts dev ~teams ~threads args with
  | Ok r -> (dev, r)
  | Error e -> Alcotest.failf "launch failed: %a" Device.pp_error e

let expect_error ?(teams = 1) ?(threads = 32) ?(check_assumes = false) m args =
  let dev = Device.create m in
  let opts = { Device.Launch_opts.default with Device.Launch_opts.check_assumes } in
  match Device.launch ~opts dev ~teams ~threads args with
  | Ok _ -> Alcotest.fail "expected a launch error"
  | Error e -> e

(* Build a kernel module with one kernel function. [emit] receives the
   builder and the parameter operands. *)
let kernel_module ?(name = "k") ~params emit =
  let b = B.create (name ^ "_mod") in
  let ps = B.begin_func b ~name ~kernel:true ~linkage:External ~params ~ret:None () in
  B.set_block b "entry";
  emit b ps;
  if not (B.is_terminated b) then B.ret b None;
  ignore (B.end_func b);
  B.finish b

(* structural helpers *)
let count_insts pred (m : modul) =
  List.fold_left
    (fun acc f ->
      List.fold_left
        (fun acc b -> acc + List.length (List.filter pred b.b_insts))
        acc f.f_blocks)
    0 m.m_funcs

let count_in_func pred (f : func) =
  List.fold_left
    (fun acc b -> acc + List.length (List.filter pred b.b_insts))
    0 f.f_blocks

let has_global m name = Ozo_ir.Types.find_global m name <> None
let has_func m name = Ozo_ir.Types.find_func m name <> None

let is_barrier = function Barrier _ -> true | _ -> false
let is_aligned_barrier = function Barrier { aligned = true } -> true | _ -> false
let is_load = function Load _ -> true | _ -> false
let is_store = function Store _ -> true | _ -> false
let is_call = function Call _ | Call_indirect _ -> true | _ -> false

let f64_array dev buf n = Device.read_f64_array dev buf n
let i64_array dev buf n = Device.read_i64_array dev buf n

let tc name f = Alcotest.test_case name `Quick f

(* substring search *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* float comparison *)
let feq ?(tol = 1e-9) a b = Float.abs (a -. b) <= tol *. Float.max 1.0 (Float.abs a)

let check_f64s name expected got =
  Array.iteri
    (fun i e ->
      if not (feq e got.(i)) then
        Alcotest.failf "%s[%d]: expected %.12g got %.12g" name i e got.(i))
    expected
