(* Backend (late lowering) tests.

   Three properties pin the new subsystem:

   - allocator correctness: compiling under a deliberately tiny register
     budget forces spills, and the spilled module must still pass every
     proxy's differential check — spilled execution is bit-identical to
     unlimited-register execution (both equal the host reference);
   - SMem layout: the compile-time layout never overlaps slots and
     matches what the engine actually assigns at launch, byte for byte;
   - occupancy: the calculator reproduces hand-computed A100 limits for
     each limiting resource, and under the [vgpu] descriptor degenerates
     to exactly the cost model's original formula.

   Plus the ISSUE's acceptance direction: for every proxy the full
   pipeline reports fewer registers and less SMem than baseline. *)

module C = Ozo_core.Codesign
module E = Ozo_harness.Experiments
module Registry = Ozo_proxies.Registry
module Proxy = Ozo_proxies.Proxy
module Machine = Ozo_backend.Machine
module Smem = Ozo_backend.Smem
module Backend = Ozo_backend.Lower
module Vm = Ozo_backend.Vm
module Regalloc = Ozo_backend.Regalloc
module Pipeline = Ozo_opt.Pipeline
module Cost = Ozo_vgpu.Cost
module Engine = Ozo_vgpu.Engine
module Counters = Ozo_vgpu.Counters

(* compile + run one proxy/build, failing the test on any fault *)
let run_build ?(machine = Machine.vgpu) (p : Proxy.t) (b : C.build) =
  let k = Proxy.kernel_for p b.C.b_abi in
  let c = C.compile ~machine b k in
  let dev = C.device c in
  let inst = p.Proxy.p_setup dev in
  match
    C.launch c dev ~teams:p.Proxy.p_teams ~threads:p.Proxy.p_threads
      inst.Proxy.i_args
  with
  | Error f ->
    Alcotest.failf "%s/%s: launch fault: %s" p.Proxy.p_name b.C.b_label
      (Ozo_vgpu.Fault.to_line f)
  | Ok m -> (c, m, inst.Proxy.i_check ())

let check_ok what p (b : C.build) = function
  | Ok () -> ()
  | Error e ->
    Alcotest.failf "%s/%s: %s check failed: %s" p.Proxy.p_name b.C.b_label what e

(* builds covering all three code shapes: generic mode (opaque old
   runtime), SPMD mode (co-designed runtime), and runtime-free CUDA *)
let coverage_builds p = [ C.old_rt_nightly; E.new_rt_for p; C.cuda ]

(* --- allocator: spilled == unlimited ---------------------------------------- *)

let spill_budget = 8

let test_spill_bit_identity () =
  List.iter
    (fun p ->
      List.iter
        (fun b ->
          let _, _, check = run_build p b in
          check_ok "unlimited-register" p b check;
          let tiny = Machine.with_reg_budget spill_budget Machine.vgpu in
          let c, m, check' = run_build ~machine:tiny p b in
          check_ok "spilled" p b check';
          (* the tiny budget must actually have forced spills (every proxy
             kernel needs more than [spill_budget] registers somewhere) *)
          if C.spill_count c = 0 then
            Alcotest.failf "%s/%s: budget %d forced no spills" p.Proxy.p_name
              b.C.b_label spill_budget;
          if c.C.c_lower.Backend.lw_frame_bytes = 0 then
            Alcotest.failf "%s/%s: spills but no frame" p.Proxy.p_name
              b.C.b_label;
          (* spill traffic must flow through the engine's local-memory
             path, not vanish into the cost model *)
          if m.C.m_counters.Counters.local_accesses = 0 then
            Alcotest.failf "%s/%s: spilled run performed no local accesses"
              p.Proxy.p_name b.C.b_label;
          if m.C.m_spills <> C.spill_count c then
            Alcotest.failf "%s/%s: metrics spills %d <> static count %d"
              p.Proxy.p_name b.C.b_label m.C.m_spills (C.spill_count c))
        (coverage_builds p))
    (Registry.all_small ())

(* the allocator must respect its budget: every physical register index
   it hands out (including the VM emitter's scratches) stays under
   budget + scratch headroom, and no interval is both Phys and spilled *)
let test_allocator_budget_respected () =
  List.iter
    (fun p ->
      let b = E.new_rt_for p in
      let tiny = Machine.with_reg_budget spill_budget Machine.vgpu in
      let k = Proxy.kernel_for p b.C.b_abi in
      let c = C.compile ~machine:tiny b k in
      List.iter
        (fun fl ->
          let ra = fl.Backend.fl_ra in
          Hashtbl.iter
            (fun r loc ->
              match loc with
              | Regalloc.Phys n ->
                if n >= spill_budget then
                  Alcotest.failf "%s/%s: r%d got phys %d >= budget %d"
                    p.Proxy.p_name fl.Backend.fl_func r n spill_budget
              | Regalloc.Slot _ ->
                if not (List.mem r ra.Regalloc.ra_spilled) then
                  Alcotest.failf "%s/%s: r%d has a slot but is not in ra_spilled"
                    p.Proxy.p_name fl.Backend.fl_func r)
            ra.Regalloc.ra_loc)
        c.C.c_lower.Backend.lw_funcs)
    (Registry.all_small ())

(* --- SMem layout ------------------------------------------------------------ *)

let test_smem_layout () =
  List.iter
    (fun p ->
      List.iter
        (fun b ->
          let k = Proxy.kernel_for p b.C.b_abi in
          let c = C.compile b k in
          let l = c.C.c_lower.Backend.lw_layout in
          (match Smem.check_non_overlap l with
          | Ok () -> ()
          | Error e ->
            Alcotest.failf "%s/%s: layout overlap: %s" p.Proxy.p_name
              b.C.b_label e);
          (* raw footprint matches the engine's public accounting *)
          Alcotest.(check int)
            (p.Proxy.p_name ^ "/" ^ b.C.b_label ^ " raw bytes")
            (Engine.shared_bytes c.C.c_module)
            l.Smem.ly_raw;
          (* aligned total matches what the engine assigns at launch *)
          let mem = Ozo_vgpu.Memory.create ~threads_per_team:32 in
          let _, _, engine_off = Engine.assign_addresses mem c.C.c_module in
          Alcotest.(check int)
            (p.Proxy.p_name ^ "/" ^ b.C.b_label ^ " aligned total")
            engine_off l.Smem.ly_total;
          (* the runtime/globalized split partitions the raw bytes *)
          Alcotest.(check int)
            (p.Proxy.p_name ^ "/" ^ b.C.b_label ^ " origin split")
            l.Smem.ly_raw
            (l.Smem.ly_runtime + l.Smem.ly_globalized))
        (coverage_builds p))
    (Registry.all_small ())

(* --- occupancy: hand-computed A100 cases ------------------------------------ *)

let occ = Machine.occupancy

let check_occ name (o : Machine.occupancy) ~teams ~frac ~limiter =
  Alcotest.(check int) (name ^ ": teams/SM") teams o.Machine.occ_teams_per_sm;
  Alcotest.(check (float 1e-9)) (name ^ ": fraction") frac o.Machine.occ_fraction;
  Alcotest.(check string)
    (name ^ ": limiter")
    (Machine.limiter_name limiter)
    (Machine.limiter_name o.Machine.occ_limiter)

let test_occupancy_a100 () =
  let m = Machine.a100 in
  (* 128 threads x 32 regs, no SMem: 16 blocks of 4 warps fill all 2048
     threads; regs take 4 x roundup(32*32, 256) = 4096 of 65536, not
     binding. Thread-bound at full occupancy. *)
  check_occ "128thr/32regs"
    (occ m ~threads_per_team:128 ~regs_per_thread:32 ~shared_per_team:0)
    ~teams:16 ~frac:1.0 ~limiter:Machine.Threads;
  (* 256 threads x 255 regs: one team takes 8 x roundup(255*32, 256)
     = 8 x 8192 = 65536 registers — the whole file. 1 block resident,
     256/2048 = 12.5% occupancy, register-bound. *)
  check_occ "256thr/255regs"
    (occ m ~threads_per_team:256 ~regs_per_thread:255 ~shared_per_team:0)
    ~teams:1 ~frac:0.125 ~limiter:Machine.Registers;
  (* 128 threads x 32 regs x 48 KB SMem: 164 KB / 48 KB = 3 blocks,
     3*128/2048 = 18.75%, SMem-bound. *)
  check_occ "128thr/48KB"
    (occ m ~threads_per_team:128 ~regs_per_thread:32
       ~shared_per_team:(48 * 1024))
    ~teams:3 ~frac:0.1875 ~limiter:Machine.Smem;
  (* 32 threads x 8 regs: threads would allow 64 blocks but the SM caps
     at 32 resident blocks; 32*32/2048 = 50%, block-limit-bound. *)
  check_occ "32thr/8regs"
    (occ m ~threads_per_team:32 ~regs_per_thread:8 ~shared_per_team:0)
    ~teams:32 ~frac:0.5 ~limiter:Machine.Teams;
  (* warp-granular register allocation: 100 threads round to 4 warps,
     1 reg/thread rounds to 256 regs/warp -> 1024 per team, 64 teams by
     regs; warps bind first (64 warps / 4 = 16). *)
  check_occ "100thr/1reg"
    (occ m ~threads_per_team:100 ~regs_per_thread:1 ~shared_per_team:0)
    ~teams:16 ~frac:(float_of_int (16 * 100) /. 2048.0)
    ~limiter:Machine.Warps;
  (* SMem allocation unit: 1 byte reserves a full 1 KB block *)
  Alcotest.(check int) "smem alloc unit" 1024 (Machine.team_smem m ~shared_per_team:1);
  Alcotest.(check int) "reg alloc unit" 1024
    (Machine.team_registers m ~threads_per_team:100 ~regs_per_thread:1)

(* --- occupancy: the portability descriptors (v100 / mi250 / h100) ---------- *)

let test_occupancy_portfolio () =
  (* v100, 128 threads x 32 regs x 33000 B SMem: SMem rounds to
     129 x 256 = 33024 B, and 98304 / 33024 = 2 blocks — SMem-bound at
     2*128/2048 = 12.5%. The same shape on the A100 (164 KB, 1 KB unit)
     fits 4 blocks: capacity and granularity both differ. *)
  check_occ "v100 128thr/33000B"
    (occ Machine.v100 ~threads_per_team:128 ~regs_per_thread:32
       ~shared_per_team:33000)
    ~teams:2 ~frac:0.125 ~limiter:Machine.Smem;
  check_occ "a100 128thr/33000B"
    (occ Machine.a100 ~threads_per_team:128 ~regs_per_thread:32
       ~shared_per_team:33000)
    ~teams:4 ~frac:0.25 ~limiter:Machine.Smem;
  (* wavefront-width rounding: 96 threads are 2 wavefronts on the
     64-wide MI250 but 3 warps on the 32-wide V100. MI250: 32 waves / 2
     = 16 resident groups, tied with the 16-workgroup CU ceiling — the
     wave bound binds first in enumeration order. V100: thread bound
     2048/96 = 21 binds (warp bound ties at 64/3 = 21). *)
  check_occ "mi250 96thr/17regs"
    (occ Machine.mi250 ~threads_per_team:96 ~regs_per_thread:17
       ~shared_per_team:0)
    ~teams:16 ~frac:0.75 ~limiter:Machine.Warps;
  check_occ "v100 96thr/17regs"
    (occ Machine.v100 ~threads_per_team:96 ~regs_per_thread:17
       ~shared_per_team:0)
    ~teams:21
    ~frac:(float_of_int (21 * 96) /. 2048.0)
    ~limiter:Machine.Threads;
  (* MI250 workgroup ceiling: one wavefront of 8 regs leaves threads
     (32), waves (32) and VGPRs (256) slack, but only 16 workgroups may
     be resident per CU. *)
  check_occ "mi250 64thr/8regs"
    (occ Machine.mi250 ~threads_per_team:64 ~regs_per_thread:8
       ~shared_per_team:0)
    ~teams:16 ~frac:0.5 ~limiter:Machine.Teams;
  (* H100 SMem capacity: a 100 KB team fits twice in 228 KB (unit 1024
     divides it exactly); on the A100 the same team fits once. *)
  check_occ "h100 256thr/100KB"
    (occ Machine.h100 ~threads_per_team:256 ~regs_per_thread:32
       ~shared_per_team:(100 * 1024))
    ~teams:2 ~frac:0.25 ~limiter:Machine.Smem;
  check_occ "a100 256thr/100KB"
    (occ Machine.a100 ~threads_per_team:256 ~regs_per_thread:32
       ~shared_per_team:(100 * 1024))
    ~teams:1 ~frac:0.125 ~limiter:Machine.Smem;
  (* MI250 allocation granularities: 100 threads = 2 waves, 1 VGPR
     rounds to 512 per wave; 1 byte of LDS reserves a 512 B block *)
  Alcotest.(check int) "mi250 reg alloc unit" 1024
    (Machine.team_registers Machine.mi250 ~threads_per_team:100
       ~regs_per_thread:1);
  Alcotest.(check int) "mi250 smem alloc unit" 512
    (Machine.team_smem Machine.mi250 ~shared_per_team:1)

(* one shape, one resource vector — a different limiter on each side of
   the CDNA/Hopper divide. 256 threads x 64 regs x 16 KB SMem:

   - v100/h100 (32-wide, 64K regs, unit 256): 8 warps x
     roundup(64*32, 256) = 8 x 2048 = 16384 regs/team, 65536/16384 = 4
     — register-bound (SMem would allow 6 on v100, 14 on h100).
   - mi250 (64-wide, 128K VGPRs, unit 512): 4 waves x
     roundup(64*64, 512) = 4 x 4096 = 16384 VGPRs/team, 131072/16384
     = 8 — registers slack, but 65536/16384 = 4 LDS blocks bind.

   Same resident-team count, opposite limiting resource: exactly the
   cross-machine effect the tuner's limiter column must surface. *)
let test_limiter_flip () =
  let shape m =
    occ m ~threads_per_team:256 ~regs_per_thread:64 ~shared_per_team:16384
  in
  check_occ "v100 flip" (shape Machine.v100) ~teams:4 ~frac:0.5
    ~limiter:Machine.Registers;
  check_occ "h100 flip" (shape Machine.h100) ~teams:4 ~frac:0.5
    ~limiter:Machine.Registers;
  check_occ "mi250 flip" (shape Machine.mi250) ~teams:4 ~frac:0.5
    ~limiter:Machine.Smem

(* under the [vgpu] descriptor the calculator must agree exactly with the
   cost model's original occupancy (granularity 1), so default builds are
   bit-identical to the pre-backend engine *)
let test_occupancy_vgpu_parity () =
  let p = Cost.default in
  List.iter
    (fun threads ->
      List.iter
        (fun regs ->
          List.iter
            (fun smem ->
              let old_ = Cost.occupancy p ~threads_per_team:threads
                  ~regs_per_thread:regs ~shared_per_team:smem in
              let nw =
                Machine.to_cost_occupancy
                  (occ Machine.vgpu ~threads_per_team:threads
                     ~regs_per_thread:regs ~shared_per_team:smem)
              in
              if old_ <> nw then
                Alcotest.failf
                  "vgpu parity broken at threads=%d regs=%d smem=%d: \
                   %d teams %.4f vs %d teams %.4f"
                  threads regs smem old_.Cost.o_teams_per_sm
                  old_.Cost.o_occupancy nw.Cost.o_teams_per_sm
                  nw.Cost.o_occupancy)
            [ 0; 8; 2336; 11344; 49152; 120 * 1024 ])
        [ 1; 8; 16; 17; 32; 64; 255 ])
    [ 32; 64; 96; 128; 256; 1024; 2048 ]

(* --- acceptance direction: full vs baseline --------------------------------- *)

let test_full_beats_baseline () =
  List.iter
    (fun p ->
      let b = E.new_rt_for p in
      let resources pipe =
        let b = { b with C.b_pipe = pipe } in
        let c = C.compile b (Proxy.kernel_for p b.C.b_abi) in
        (c.C.c_regs, c.C.c_smem)
      in
      let regs_b, smem_b = resources Pipeline.baseline in
      let regs_f, smem_f = resources Pipeline.full in
      if not (regs_f < regs_b) then
        Alcotest.failf "%s: full regs %d not < baseline regs %d" p.Proxy.p_name
          regs_f regs_b;
      if not (smem_f < smem_b) then
        Alcotest.failf "%s: full smem %d not < baseline smem %d" p.Proxy.p_name
          smem_f smem_b)
    (Registry.all_small ())

(* --- VM program sanity ------------------------------------------------------- *)

(* the VM form must cover every block of every function, and under a
   spill-forcing budget actually contain reload/spill instructions *)
let test_vm_form () =
  let p = Registry.find_exn "xsbench" in
  let b = E.new_rt_for p in
  let tiny = Machine.with_reg_budget spill_budget Machine.vgpu in
  let c = C.compile ~machine:tiny b (Proxy.kernel_for p b.C.b_abi) in
  let prog = c.C.c_lower.Backend.lw_program in
  Alcotest.(check bool) "program has functions" true (prog.Vm.pr_funcs <> []);
  let spills = ref 0 and reloads = ref 0 in
  List.iter
    (fun vf ->
      Alcotest.(check bool)
        (vf.Vm.vf_name ^ " has blocks")
        true (vf.Vm.vf_blocks <> []);
      List.iter
        (fun vb ->
          List.iter
            (function
              | Vm.V_spill _ -> incr spills
              | Vm.V_reload _ -> incr reloads
              | Vm.V_op _ | Vm.V_copy _ -> ())
            vb.Vm.vb_insts)
        vf.Vm.vf_blocks)
    prog.Vm.pr_funcs;
  Alcotest.(check bool) "vm contains spills" true (!spills > 0);
  Alcotest.(check bool) "vm contains reloads" true (!reloads > 0)

let tc name f = Alcotest.test_case name `Quick f

let suite =
  [ tc "occupancy: hand-computed a100 limits" test_occupancy_a100;
    tc "occupancy: hand-computed v100/mi250/h100 limits" test_occupancy_portfolio;
    tc "occupancy: regs<->smem limiter flip across machines" test_limiter_flip;
    tc "occupancy: vgpu descriptor matches cost model" test_occupancy_vgpu_parity;
    tc "smem: layout non-overlap + engine parity" test_smem_layout;
    tc "regalloc: budget respected, spills recorded" test_allocator_budget_respected;
    tc "regalloc: spilled run bit-identical on every proxy" test_spill_bit_identity;
    tc "vm: lowered program shape + spill code" test_vm_form;
    tc "acceptance: full < baseline regs and smem" test_full_beats_baseline ]
