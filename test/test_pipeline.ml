(* End-to-end pipeline tests: every proxy at test size under every build
   configuration and every ablation, validated against host references;
   debug builds verifying every runtime assumption; the near-zero-overhead
   structural claims of the paper. *)

module C = Ozo_core.Codesign
module Proxy = Ozo_proxies.Proxy
module Pipeline = Ozo_opt.Pipeline
open Util

let run_proxy ?(check_assumes = false) (p : Proxy.t) (b : C.build) :
    C.metrics * (unit, string) result =
  let k = Proxy.kernel_for p b.C.b_abi in
  let c = C.compile b k in
  let dev = C.device c in
  let inst = p.Proxy.p_setup dev in
  let opts =
    { Ozo_vgpu.Device.Launch_opts.default with
      Ozo_vgpu.Device.Launch_opts.check_assumes }
  in
  match
    C.launch ~opts c dev ~teams:p.Proxy.p_teams ~threads:p.Proxy.p_threads
      inst.Proxy.i_args
  with
  | Ok m -> (m, inst.Proxy.i_check ())
  | Error e ->
    Alcotest.failf "%s under %s: launch: %a" p.Proxy.p_name b.C.b_label
      Ozo_vgpu.Device.pp_error e

let check_proxy ?check_assumes p b =
  let _, r = run_proxy ?check_assumes p b in
  match r with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s under %s: %s" p.Proxy.p_name b.C.b_label e

let proxies () = Ozo_proxies.Registry.all_small ()

let test_all_builds () =
  List.iter
    (fun p -> List.iter (fun b -> check_proxy p b) C.standard_builds)
    (proxies ())

let test_all_ablations () =
  (* every single-feature ablation of the full build stays correct *)
  List.iter
    (fun p ->
      List.iter
        (fun f -> check_proxy p (C.without f C.new_rt))
        [ Pipeline.B1; Pipeline.B2; Pipeline.B3; Pipeline.B4; Pipeline.C; Pipeline.D ])
    (proxies ())

let test_debug_builds_verify_assumptions () =
  (* debug builds run with assumption checking: every assume the runtime
     placed, and every oversubscription promise, must actually hold *)
  List.iter
    (fun p ->
      List.iter
        (fun b -> check_proxy ~check_assumes:true p (C.with_debug b))
        [ C.new_rt_no_assumptions; C.new_rt; C.old_rt_nightly ])
    (proxies ())

let test_violated_oversubscription_traps_in_debug () =
  (* launching an assumption build with too few threads must trap in a
     debug run instead of silently dropping iterations *)
  let k =
    Ozo_frontend.Ast.
      { k_name = "k";
        k_params = [ ("out", TInt); ("n", TInt) ];
        k_construct =
          Distribute_parallel_for ("i", P "n", [ Store (P "out", P "i", MI64, P "i") ]) }
  in
  let b = C.with_debug C.new_rt in
  let c = C.compile b k in
  let dev = C.device c in
  let out = Ozo_vgpu.Device.alloc dev (100 * 8) in
  (* 100 iterations on 1 team x 32 threads: not oversubscribed *)
  match
    C.launch
      ~opts:
        { Ozo_vgpu.Device.Launch_opts.default with
          Ozo_vgpu.Device.Launch_opts.check_assumes = true }
      c dev ~teams:1 ~threads:32
      [ Ozo_vgpu.Engine.Ai (Ozo_vgpu.Device.ptr out); Ai 100 ]
  with
  | Error f when Fault.is_trap f -> ()
  | Ok _ -> Alcotest.fail "expected the violated assumption to trap"
  | Error f -> Alcotest.failf "fault: %s" f.Fault.f_msg

(* --- the paper's structural near-zero-overhead claims ------------------- *)

let compile_proxy p b = C.compile b (Proxy.kernel_for p b.C.b_abi)

let test_new_rt_strips_all_state () =
  (* for SPMD-able proxies, New RT leaves no shared memory, no runtime
     calls and no barriers *)
  List.iter
    (fun pname ->
      match Ozo_proxies.Registry.all_small () |> List.find_opt (fun p -> p.Proxy.p_name = pname) with
      | None -> Alcotest.failf "missing proxy %s" pname
      | Some p ->
        let c = compile_proxy p C.new_rt in
        Alcotest.(check int) (pname ^ " smem") 0 c.C.c_smem;
        let kf = Ozo_ir.Types.find_func_exn c.C.c_module p.Proxy.p_kernel_omp.Ozo_frontend.Ast.k_name in
        Alcotest.(check int) (pname ^ " barriers") 0 (count_in_func is_barrier kf);
        Alcotest.(check int) (pname ^ " calls") 0 (count_in_func is_call kf);
        Alcotest.(check int) (pname ^ " one function") 1
          (List.length c.C.c_module.Ozo_ir.Types.m_funcs))
    [ "xsbench"; "rsbench"; "gridmini"; "testsnap" ]

let test_minifmm_keeps_state () =
  (* nested parallelism must keep thread states and the shared stack *)
  let p = Ozo_proxies.Registry.all_small () |> List.find (fun p -> p.Proxy.p_name = "minifmm") in
  let c = compile_proxy p C.new_rt in
  Alcotest.(check bool) "smem survives" true (c.C.c_smem > 0)

let test_nightly_keeps_smem () =
  let p = List.hd (proxies ()) in
  let c = compile_proxy p C.new_rt_nightly in
  Alcotest.(check bool) "nightly smem ~11.3KB" true (c.C.c_smem > 11_000)

let test_assumptions_reduce_registers () =
  List.iter
    (fun p ->
      let with_a = compile_proxy p C.new_rt in
      let without_a = compile_proxy p C.new_rt_no_assumptions in
      if with_a.C.c_regs > without_a.C.c_regs then
        Alcotest.failf "%s: assumptions increased registers (%d > %d)" p.Proxy.p_name
          with_a.C.c_regs without_a.C.c_regs)
    (proxies ())

let test_remarks_emitted () =
  let p = List.hd (proxies ()) in
  let c = compile_proxy p C.new_rt in
  Alcotest.(check bool) "some applied remarks" true
    (List.exists
       (fun r -> r.Ozo_opt.Remarks.r_kind = Ozo_opt.Remarks.Applied)
       c.C.c_remarks)

let suite =
  [ tc "all proxies x all builds correct" test_all_builds;
    tc "all proxies x all ablations correct" test_all_ablations;
    tc "debug builds verify runtime assumptions" test_debug_builds_verify_assumptions;
    tc "violated oversubscription traps in debug" test_violated_oversubscription_traps_in_debug;
    tc "New RT strips all runtime state (SPMD proxies)" test_new_rt_strips_all_state;
    tc "MiniFMM keeps thread-state memory" test_minifmm_keeps_state;
    tc "nightly keeps the 11.3KB footprint" test_nightly_keeps_smem;
    tc "assumptions never increase registers" test_assumptions_reduce_registers;
    tc "optimization remarks emitted" test_remarks_emitted ]
