(* Analysis manager: caching semantics, invalidation precision, and the
   differential stale-cache check.

   The heart of the suite is the differential test: every pipeline
   configuration over real proxies runs with [check_invalidation] on, so
   after *every pass* each cached analysis is compared against a fresh
   recomputation ([Analysis.check_coherent]). A wrong preserved-analyses
   declaration or a missed invalidation fails loudly here. The
   cached-vs-uncached test then pins the stronger end-to-end property:
   the optimized IR is bit-identical with caching on and off. *)

open Ozo_ir.Types
open Util
module Analysis = Ozo_opt.Analysis
module Pipeline = Ozo_opt.Pipeline
module B = Ozo_ir.Builder
module C = Ozo_core.Codesign
module Proxy = Ozo_proxies.Proxy
module Registry = Ozo_proxies.Registry

(* a small two-block function module for the unit tests *)
let diamond_module () =
  kernel_module ~name:"diam" ~params:[ I64 ] (fun b ps ->
      let p = List.nth ps 0 in
      let c = B.icmp b Sgt p (B.i64 0) in
      B.cond_br b c "then" "else";
      B.set_block b "then";
      B.br b "join";
      B.set_block b "else";
      B.br b "join";
      B.set_block b "join";
      B.ret b None)

let func_of m = List.hd m.m_funcs

let test_hit_miss () =
  let m = diamond_module () in
  let f = func_of m in
  let am = Analysis.create () in
  ignore (Analysis.cfg am f);
  ignore (Analysis.cfg am f);
  ignore (Analysis.dominators am f);
  ignore (Analysis.dominators am f);
  ignore (Analysis.liveness am f);
  ignore (Analysis.pressure am f);
  let st = Analysis.stats am in
  (* cfg: miss+hit, dom: miss+hit, live: miss, pressure: miss (live cached) *)
  Alcotest.(check int) "hits" 2 st.Analysis.st_hits;
  Alcotest.(check int) "misses" 4 st.Analysis.st_misses;
  ignore (Analysis.pressure am f);
  Alcotest.(check int) "pressure now hits" 3 (Analysis.stats am).Analysis.st_hits

let test_uncached_manager () =
  let m = diamond_module () in
  let f = func_of m in
  let am = Analysis.create ~caching:false () in
  ignore (Analysis.cfg am f);
  ignore (Analysis.cfg am f);
  let st = Analysis.stats am in
  Alcotest.(check int) "no hits without caching" 0 st.Analysis.st_hits;
  Alcotest.(check int) "every query misses" 2 st.Analysis.st_misses

(* same shape, different block contents: the shape-derived analyses are
   served from cache, but the refreshed CFG must expose the *new* blocks
   and content-derived analyses must be recomputed *)
let test_blocks_refresh () =
  let m = diamond_module () in
  let f = func_of m in
  let am = Analysis.create () in
  let cfg0 = Analysis.cfg am f in
  ignore (Analysis.liveness am f);
  (* append pure arithmetic to the join block: contents change, shape not *)
  let f' =
    { f with
      f_blocks =
        List.map
          (fun b ->
            if b.b_label <> "join" then b
            else
              { b with
                b_insts =
                  b.b_insts
                  @ [ Binop (f.f_next_reg, Add, Imm_int (1L, I64), Imm_int (2L, I64)) ] })
          f.f_blocks;
      f_next_reg = f.f_next_reg + 1 }
  in
  let inv0 = (Analysis.stats am).Analysis.st_invalidations in
  let cfg1 = Analysis.cfg am f' in
  Alcotest.(check int) "same-shape revalidation is not an invalidation" inv0
    (Analysis.stats am).Analysis.st_invalidations;
  Alcotest.(check (list string)) "rpo preserved" cfg0.Ozo_ir.Cfg.rpo cfg1.Ozo_ir.Cfg.rpo;
  let join = Ozo_ir.Cfg.block cfg1 "join" in
  Alcotest.(check int) "refreshed CFG serves the new block body" 1
    (List.length join.b_insts);
  (match Analysis.check_coherent am m with
  | Ok () -> ()
  | Error e -> Alcotest.failf "coherence after refresh: %s" e);
  ()

let test_shape_invalidation () =
  let m = diamond_module () in
  let f = func_of m in
  let am = Analysis.create () in
  ignore (Analysis.dominators am f);
  (* drop the else-edge: the shape changes, everything must recompute *)
  let f' =
    { f with
      f_blocks =
        List.map
          (fun b -> if b.b_label = "entry" then { b with b_term = Br "then" } else b)
          f.f_blocks }
  in
  let inv0 = (Analysis.stats am).Analysis.st_invalidations in
  let d = Analysis.dominators am f' in
  Alcotest.(check bool) "shape change counted as invalidation" true
    ((Analysis.stats am).Analysis.st_invalidations > inv0);
  Alcotest.(check (option string)) "idom of then is entry" (Some "entry")
    (Option.join (Ozo_ir.Cfg.SMap.find_opt "then" d.Ozo_ir.Dominance.idom))

let test_callgraph_invalidation () =
  let m = diamond_module () in
  let am = Analysis.create () in
  ignore (Analysis.callgraph am m);
  ignore (Analysis.callgraph am m);
  Alcotest.(check int) "second query hits" 1 (Analysis.stats am).Analysis.st_hits;
  (* a changing pass that does not preserve calls drops the call graph;
     untouched functions keep their entries *)
  Analysis.invalidate am
    ~preserved:{ Analysis.pr_cfg = true; pr_live = true; pr_calls = false }
    ~before:m ~after:m;
  ignore (Analysis.callgraph am m);
  Alcotest.(check int) "rebuilt after invalidation" 2
    (Analysis.stats am).Analysis.st_misses

(* physical-identity diff: only touched functions lose their entries *)
let test_precise_invalidation () =
  let m = diamond_module () in
  let f = func_of m in
  let am = Analysis.create () in
  ignore (Analysis.cfg am f);
  (* a "pass" that rebuilds the module record but returns the function
     records untouched must invalidate nothing *)
  let m' = { m with m_globals = m.m_globals } in
  Analysis.invalidate am ~preserved:Analysis.preserve_none ~before:m ~after:m';
  ignore (Analysis.cfg am f);
  Alcotest.(check int) "identical funcs keep their caches" 1
    (Analysis.stats am).Analysis.st_hits;
  (* now with a structurally-equal but physically-new function record and
     a preserve-nothing declaration: the entry must go *)
  let m'' = { m with m_funcs = List.map (fun f -> { f with f_name = f.f_name }) m.m_funcs } in
  Analysis.invalidate am ~preserved:Analysis.preserve_none ~before:m ~after:m'';
  ignore (Analysis.cfg am (func_of m''));
  Alcotest.(check int) "touched func recomputes" 2
    (Analysis.stats am).Analysis.st_misses

(* ---------- differential invalidation over real proxies ----------------- *)

let linked_module (p : Proxy.t) (b : C.build) =
  let k = Proxy.kernel_for p b.C.b_abi in
  let app = Ozo_frontend.Lower.lower ~abi:b.C.b_abi k in
  match b.C.b_rt with
  | None -> app
  | Some rt -> Ozo_ir.Linker.link app (Ozo_runtime.Runtime.build rt)

let small_proxy name =
  match List.find_opt (fun p -> p.Proxy.p_name = name) (Registry.all_small ()) with
  | Some p -> p
  | None -> Alcotest.failf "no small proxy %s" name

let configs = [ Pipeline.o0; Pipeline.baseline; Pipeline.nightly; Pipeline.full ]

(* every pass of every config on two proxies, with after-every-pass
   coherence checking and IR verification *)
let test_differential () =
  List.iter
    (fun pname ->
      let p = small_proxy pname in
      let b = Ozo_harness.Experiments.new_rt_for p in
      let linked = linked_module p b in
      List.iter
        (fun cfg ->
          let opts =
            { Pipeline.default_opts with
              Pipeline.verify_each_step = true; check_invalidation = true }
          in
          ignore (Pipeline.run ~opts cfg linked))
        configs)
    [ "xsbench"; "minifmm" ]

(* optimized IR must be bit-identical with caching on and off *)
let test_cached_vs_uncached () =
  List.iter
    (fun pname ->
      let p = small_proxy pname in
      let b = Ozo_harness.Experiments.new_rt_for p in
      let linked = linked_module p b in
      List.iter
        (fun cfg ->
          (* the inliner's clone-label counter is global; pin it so both
             runs produce identical labels and the diff is meaningful *)
          Ozo_opt.Inline.site := 0;
          let cached = Pipeline.run cfg linked in
          Ozo_opt.Inline.site := 0;
          let uncached =
            Pipeline.run
              ~opts:{ Pipeline.default_opts with Pipeline.caching = false }
              cfg linked
          in
          let pp m = Fmt.str "%a" Ozo_ir.Printer.pp_module m in
          if pp cached <> pp uncached then
            Alcotest.failf "%s/%s: cached and uncached IR differ" pname
              cfg.Pipeline.name)
        configs)
    [ "xsbench"; "minifmm" ]

let test_full_pipeline_hit_rate () =
  let p = small_proxy "xsbench" in
  let b = Ozo_harness.Experiments.new_rt_for p in
  let linked = linked_module p b in
  let am = Analysis.create () in
  ignore (Pipeline.run ~am Pipeline.full linked);
  let st = Analysis.stats am in
  Alcotest.(check bool) "full pipeline produces cache hits" true
    (st.Analysis.st_hits > 0);
  Alcotest.(check bool) "and a majority hit rate" true (Analysis.hit_rate st > 50.0)

let suite =
  [ tc "analysis: hit/miss accounting" test_hit_miss;
    tc "analysis: caching off always misses" test_uncached_manager;
    tc "analysis: same-shape refresh keeps shape analyses" test_blocks_refresh;
    tc "analysis: shape change recomputes" test_shape_invalidation;
    tc "analysis: callgraph contract invalidation" test_callgraph_invalidation;
    tc "analysis: physical-identity diff is precise" test_precise_invalidation;
    tc "differential: every pass x config x proxy stays coherent" test_differential;
    tc "pipeline: cached and uncached IR bit-identical" test_cached_vs_uncached;
    tc "pipeline: full config has a nonzero hit rate" test_full_pipeline_hit_rate ]
