let () =
  Alcotest.run "ozo"
    [ ("ir", Test_ir.suite);
      ("dominance", Test_dominance.suite);
      ("vgpu", Test_vgpu.suite);
      ("simt", Test_simt.suite);
      ("runtime", Test_runtime.suite);
      ("frontend", Test_frontend.suite);
      ("local-opt", Test_localopt.suite);
      ("memfold", Test_memfold.suite);
      ("passes", Test_passes.suite);
      ("analysis", Test_analysis.suite);
      ("pipeline", Test_pipeline.suite);
      ("parser", Test_parser.suite);
      ("components", Test_components.suite);
      ("backend", Test_backend.suite);
      ("faults", Test_faults.suite);
      ("obs", Test_obs.suite);
      ("golden", Test_golden.suite);
      ("domains", Test_domains.suite);
      ("resilience", Test_resilience.suite);
      ("serve", Test_serve.suite);
      ("properties", Test_props.suite);
      ("vm", Test_vm.suite);
      ("portability", Test_portability.suite);
      ("tune", Test_tune.suite) ]
