(* Autotuner + cross-machine matrix tests (DESIGN.md §16).

   The tuner's contract: deterministic (same request and seed, same
   verdict, byte for byte), sound (every candidate is launch-equivalent
   to the default shape: wavefront-multiple threads, iteration space
   covered), and useful (on at least one proxy per machine it finds a
   shape that strictly beats the default under the model — the ISSUE's
   acceptance criterion). The matrix's contract: deterministic CSV,
   every cell valid, and the portability ordering the paper predicts
   (PP(new-rt) >= PP(old-rt), old-rt pinned at 1.00 relative). *)

module C = Ozo_core.Codesign
module E = Ozo_harness.Experiments
module Proxy = Ozo_proxies.Proxy
module Registry = Ozo_proxies.Registry
module Machine = Ozo_backend.Machine
module Tune = Ozo_tune.Tune
module Matrix = Ozo_tune.Matrix
module Trace = Ozo_obs.Trace
module Chrome = Ozo_obs.Chrome_trace

let tc = Alcotest.test_case

let small name =
  List.find (fun p -> p.Proxy.p_name = name) (Registry.all_small ())

let csv_of_verdict v =
  Fmt.str "%a%a" Tune.pp_csv_header () Tune.pp_csv v

(* --- determinism ----------------------------------------------------------- *)

let test_search_deterministic () =
  List.iter
    (fun (machine, seed) ->
      let p = small "xsbench" in
      let once () =
        Tune.search ~seed ~machine p ~build_name:"new-rt"
      in
      let v1 = once () and v2 = once () in
      Alcotest.(check string)
        (Fmt.str "verdict csv identical (%s, seed %d)"
           machine.Machine.mc_name seed)
        (csv_of_verdict v1) (csv_of_verdict v2);
      Alcotest.(check (pair int int))
        "chosen shape identical"
        (v1.Tune.tv_chosen.Tune.cd_teams, v1.Tune.tv_chosen.Tune.cd_threads)
        (v2.Tune.tv_chosen.Tune.cd_teams, v2.Tune.tv_chosen.Tune.cd_threads))
    [ (Machine.vgpu, 0); (Machine.mi250, 0); (Machine.mi250, 7);
      (Machine.h100, 42) ]

let test_measured_refinement_deterministic () =
  let p = small "xsbench" in
  let once () =
    Tune.search ~seed:3 ~measure_top:3 ~machine:Machine.mi250 p
      ~build_name:"new-rt"
  in
  let v1 = once () and v2 = once () in
  Alcotest.(check int) "measured rows" (List.length v1.Tune.tv_measured)
    (List.length v2.Tune.tv_measured);
  Alcotest.(check bool) "some candidates measured" true
    (v1.Tune.tv_measured <> []);
  Alcotest.(check bool) "at most top-3 measured" true
    (List.length v1.Tune.tv_measured <= 3);
  (* every measured candidate validated: the tuner only relaunches
     shapes that are launch-equivalent to the default *)
  List.iter
    (fun (_, cycles) ->
      Alcotest.(check bool) "measured candidate validated" true
        (Float.is_finite cycles))
    v1.Tune.tv_measured;
  Alcotest.(check string) "verdict csv identical" (csv_of_verdict v1)
    (csv_of_verdict v2)

(* --- soundness of the candidate set ---------------------------------------- *)

let test_candidate_invariants () =
  List.iter
    (fun machine ->
      List.iter
        (fun p ->
          let v = Tune.search ~machine p ~build_name:"new-rt" in
          let total = p.Proxy.p_teams * p.Proxy.p_threads in
          let ws = machine.Machine.mc_warp_size in
          List.iter
            (fun c ->
              (* threads: the default shape or a wavefront multiple *)
              if
                c.Tune.cd_threads <> p.Proxy.p_threads
                && c.Tune.cd_threads mod ws <> 0
              then
                Alcotest.failf "%s on %s: candidate threads %d not a %d-multiple"
                  p.Proxy.p_name machine.Machine.mc_name c.Tune.cd_threads ws;
              (* coverage: at least the default iteration space *)
              if c.Tune.cd_teams * c.Tune.cd_threads < total then
                Alcotest.failf "%s on %s: %dx%d does not cover %d"
                  p.Proxy.p_name machine.Machine.mc_name c.Tune.cd_teams
                  c.Tune.cd_threads total;
              (* hw threads consistent with the execution mode *)
              if
                c.Tune.cd_hw_threads <> c.Tune.cd_threads
                && c.Tune.cd_hw_threads <> c.Tune.cd_threads + ws
              then
                Alcotest.failf "%s on %s: hw threads %d vs threads %d"
                  p.Proxy.p_name machine.Machine.mc_name c.Tune.cd_hw_threads
                  c.Tune.cd_threads)
            v.Tune.tv_candidates;
          (* model-only mode: the chosen candidate is the best-scored *)
          (match v.Tune.tv_candidates with
          | best :: _ ->
            Alcotest.(check (pair int int))
              (p.Proxy.p_name ^ ": chosen is head of ranking")
              (best.Tune.cd_teams, best.Tune.cd_threads)
              (v.Tune.tv_chosen.Tune.cd_teams, v.Tune.tv_chosen.Tune.cd_threads)
          | [] -> Alcotest.fail "empty candidate list"))
        (Registry.all_small ()))
    [ Machine.vgpu; Machine.mi250 ]

(* --- the acceptance criterion: the tuner finds improvements ----------------- *)

let test_finds_improvement () =
  List.iter
    (fun machine ->
      let improved =
        List.exists
          (fun p ->
            Tune.improved (Tune.search ~machine p ~build_name:"new-rt"))
          (Registry.all_small ())
      in
      Alcotest.(check bool)
        ("tuner improves some proxy on " ^ machine.Machine.mc_name)
        true improved)
    [ Machine.vgpu; Machine.v100; Machine.mi250; Machine.h100 ]

(* --- verdict lands in the trace and the journal ----------------------------- *)

let test_verdict_in_trace () =
  let p = small "xsbench" in
  let trace = Trace.make () in
  let _ = Tune.search ~trace ~machine:Machine.mi250 p ~build_name:"new-rt" in
  let path = Filename.temp_file "ozo_tune" ".trace.json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Chrome.write trace path;
      let ic = open_in path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check bool) "trace mentions tune-verdict" true
        (Test_portability.find_sub s "tune-verdict" <> None))

let test_journal_append () =
  let p = small "xsbench" in
  let v = Tune.search ~machine:Machine.h100 p ~build_name:"new-rt" in
  let path = Filename.temp_file "ozo_tune" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Sys.remove path;
      Tune.append_journal ~path v;
      Tune.append_journal ~path v;
      let ic = open_in path in
      let l1 = input_line ic in
      let l2 = input_line ic in
      close_in ic;
      Alcotest.(check string) "append is idempotent per verdict" l1 l2;
      Alcotest.(check bool) "tagged as tune row" true
        (Test_portability.find_sub l1 "\"kind\":\"tune\"" <> None);
      Alcotest.(check bool) "machine recorded" true
        (Test_portability.find_sub l1 "\"machine\":\"h100\"" <> None))

(* --- the matrix -------------------------------------------------------------- *)

let matrix_csv t = Fmt.str "%a%a" Matrix.pp_csv_header () Matrix.pp_csv t

let test_matrix_deterministic_and_valid () =
  let run () =
    Matrix.run ~small:true ~machines:[ "vgpu"; "v100"; "mi250" ]
      ~proxies:[ "xsbench"; "gridmini" ] ()
  in
  let t1 = run () and t2 = run () in
  Alcotest.(check string) "matrix csv deterministic" (matrix_csv t1)
    (matrix_csv t2);
  (* every cell of the small sweep must be valid *)
  List.iter
    (fun c ->
      if not (Matrix.cell_ok c) then
        Alcotest.failf "cell %s/%s/%s failed" c.Matrix.x_proxy c.Matrix.x_build
          c.Matrix.x_machine)
    t1.Matrix.mx_cells;
  (* shape: |proxies| x |builds| x |machines| cells *)
  Alcotest.(check int) "cell count"
    (2 * List.length E.build_names * 3)
    (List.length t1.Matrix.mx_cells);
  (* the baseline build is pinned at 1.00 relative on every machine *)
  List.iter
    (fun c ->
      if c.Matrix.x_build = "old-rt" then
        match Matrix.rel_perf t1 c with
        | Some r -> Alcotest.(check (float 1e-9)) "old-rt rel perf" 1.0 r
        | None -> Alcotest.fail "old-rt has no rel perf")
    t1.Matrix.mx_cells;
  (* the portability ordering the paper predicts *)
  List.iter
    (fun proxy ->
      let pp b = Matrix.pp_metric t1 ~proxy ~build:b in
      Alcotest.(check bool)
        (proxy ^ ": PP(new-rt) >= PP(old-rt)")
        true
        (pp "new-rt" >= pp "old-rt");
      Alcotest.(check bool)
        (proxy ^ ": PP(new-rt) in (0,1]")
        true
        (pp "new-rt" > 0.0 && pp "new-rt" <= 1.0))
    t1.Matrix.mx_proxies

(* app efficiency is 1.0 for the per-machine best build, and the PP of a
   build that is best everywhere equals 1.0 *)
let test_matrix_efficiency_bounds () =
  let t =
    Matrix.run ~small:true ~machines:[ "vgpu"; "mi250" ]
      ~proxies:[ "xsbench" ] ()
  in
  List.iter
    (fun machine ->
      let best =
        List.filter
          (fun c ->
            c.Matrix.x_machine = machine
            && Matrix.app_efficiency t c = Some 1.0)
          t.Matrix.mx_cells
      in
      Alcotest.(check bool)
        (machine ^ ": some build has efficiency 1.0")
        true (best <> []))
    [ "vgpu"; "mi250" ];
  List.iter
    (fun c ->
      match Matrix.app_efficiency t c with
      | Some e ->
        Alcotest.(check bool) "efficiency in (0,1]" true (e > 0.0 && e <= 1.0)
      | None -> Alcotest.failf "cell %s/%s has no efficiency" c.Matrix.x_build
                  c.Matrix.x_machine)
    t.Matrix.mx_cells

let suite =
  [ tc "search: same seed, same verdict, byte for byte" `Quick
      test_search_deterministic;
    tc "search: measured refinement deterministic and validated" `Quick
      test_measured_refinement_deterministic;
    tc "candidates: wavefront multiples, coverage, hw threads" `Quick
      test_candidate_invariants;
    tc "acceptance: tuner strictly improves a proxy on every machine" `Quick
      test_finds_improvement;
    tc "verdict is recorded in the trace" `Quick test_verdict_in_trace;
    tc "verdict journals as one self-contained JSON line" `Quick
      test_journal_append;
    tc "matrix: deterministic csv, valid cells, PP ordering" `Quick
      test_matrix_deterministic_and_valid;
    tc "matrix: application-efficiency bounds" `Quick
      test_matrix_efficiency_bounds ]
