(* Fault-model tests: the SIMT sanitizer's detectors (out-of-bounds,
   uninitialized reads, races, barrier divergence), deterministic fault
   injection (each action observable through a structured report), zero
   false positives on the clean proxy applications, and the harness
   fallback ladder recovering a faulting build at a weaker pipeline. *)

open Ozo_ir.Types
module B = Ozo_ir.Builder
module Device = Ozo_vgpu.Device
module Engine = Ozo_vgpu.Engine
module Memory = Ozo_vgpu.Memory
module Faultinject = Ozo_vgpu.Faultinject
module C = Ozo_core.Codesign
module E = Ozo_harness.Experiments
module Proxy = Ozo_proxies.Proxy
open Util

let spec s = Result.get_ok (Faultinject.parse ~seed:7 s)

(* launch under the sanitizer, with optional injection *)
let launch_san ?(teams = 1) ?(threads = 32) ?(check_assumes = false) ?inject m args =
  let dev = Device.create ~sanitize:true m in
  let opts =
    { Device.Launch_opts.default with Device.Launch_opts.check_assumes; inject }
  in
  (dev, Device.launch ~opts dev ~teams ~threads args)

(* shorthand for flag-bearing launches in these tests *)
let inject_opts spec =
  { Device.Launch_opts.default with Device.Launch_opts.inject = Some spec }

let expect_fault name kind (res : ('a, Device.error) result) : Fault.t =
  match res with
  | Ok _ -> Alcotest.failf "%s: expected a %s fault" name kind
  | Error f ->
    Alcotest.(check string) (name ^ " kind") kind (Fault.kind_name f.Fault.f_kind);
    f

(* every detector names the faulting site: function, block, instruction *)
let check_site name (f : Fault.t) =
  Alcotest.(check bool) (name ^ " names function") true (f.Fault.f_fn <> None);
  Alcotest.(check bool) (name ^ " names block") true (f.Fault.f_blk <> None);
  Alcotest.(check bool) (name ^ " names instruction") true (f.Fault.f_idx <> None)

(* out[tid] for [threads] threads; OOB when the buffer is smaller *)
let scatter_kernel =
  kernel_module ~params:[ I64 ] (fun b ps ->
      match ps with
      | [ out ] ->
        let tid = B.thread_id b in
        B.store b I64 tid (B.ptradd b out (B.mul b tid (B.i64 8)))
      | _ -> assert false)

let test_sanitizer_oob () =
  (* clean: buffer covers all 32 threads *)
  let dev = Device.create ~sanitize:true scatter_kernel in
  let buf = Device.alloc dev (32 * 8) in
  (match Device.launch dev ~teams:1 ~threads:32 [ Engine.Ai (Device.ptr buf) ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "clean scatter: %a" Device.pp_error e);
  (* dirty: only 8 slots allocated, thread 8 writes past the allocation *)
  let dev = Device.create ~sanitize:true scatter_kernel in
  let buf = Device.alloc dev (8 * 8) in
  let _, res = (dev, Device.launch dev ~teams:1 ~threads:32 [ Engine.Ai (Device.ptr buf) ]) in
  let f = expect_fault "oob" "out-of-bounds" res in
  check_site "oob" f;
  Alcotest.(check bool) "oob decodes address" true (f.Fault.f_access <> None)

let test_sanitizer_uninit_read () =
  (* load of a never-written alloca *)
  let m =
    kernel_module ~params:[ I64 ] (fun b ps ->
        match ps with
        | [ out ] ->
          let p = B.alloca b 8 in
          let v = B.load b I64 p in
          let tid = B.thread_id b in
          B.store b I64 v (B.ptradd b out (B.mul b tid (B.i64 8)))
        | _ -> assert false)
  in
  let dev = Device.create ~sanitize:true m in
  let buf = Device.alloc dev (32 * 8) in
  let _, res = (dev, Device.launch dev ~teams:1 ~threads:32 [ Engine.Ai (Device.ptr buf) ]) in
  let f = expect_fault "uninit" "uninit-read" res in
  check_site "uninit" f

let test_sanitizer_waw_race () =
  (* all threads store their (distinct) tid to the same shared word *)
  let b = B.create "m" in
  let sh = B.add_global b ~space:Shared ~size:8 "sh" in
  let _ = B.begin_func b ~name:"k" ~kernel:true ~params:[] ~ret:None () in
  B.set_block b "entry";
  let tid = B.thread_id b in
  B.store b I64 tid sh;
  B.ret b None;
  ignore (B.end_func b);
  let m = B.finish b in
  let _, res = launch_san m [] in
  let f = expect_fault "waw race" "race" res in
  check_site "waw race" f;
  Alcotest.(check bool) "race implicates two threads" true
    (List.length f.Fault.f_threads >= 2)

(* thread 0 publishes through shared memory; an aligned barrier separates
   the write from the reads *)
let broadcast_kernel () =
  let b = B.create "m" in
  let sh = B.add_global b ~space:Shared ~size:8 "sh" in
  let ps = B.begin_func b ~name:"k" ~kernel:true ~params:[ I64 ] ~ret:None () in
  B.set_block b "entry";
  (match ps with
  | [ out ] ->
    let tid = B.thread_id b in
    let is0 = B.icmp b Eq tid (B.i64 0) in
    let dummy = B.alloca b 8 in
    let p = B.select b (Ptr Shared) is0 sh dummy in
    B.store b I64 (B.i64 777) p;
    B.barrier b ~aligned:true;
    let v = B.load b I64 sh in
    B.store b I64 v (B.ptradd b out (B.mul b tid (B.i64 8)));
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b);
  B.finish b

let test_skip_barrier_read_race () =
  let m = broadcast_kernel () in
  (* clean: the barrier orders the write before the reads *)
  let dev = Device.create ~sanitize:true m in
  let buf = Device.alloc dev (32 * 8) in
  (match Device.launch dev ~teams:1 ~threads:32 [ Engine.Ai (Device.ptr buf) ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "clean broadcast: %a" Device.pp_error e);
  (* injected: the strand sails past the barrier, so the reads land in the
     same barrier epoch as thread 0's write — a read race *)
  let dev = Device.create ~sanitize:true m in
  let buf = Device.alloc dev (32 * 8) in
  let res =
    Device.launch ~opts:(inject_opts (spec "skip-barrier:1")) dev ~teams:1 ~threads:32
      [ Engine.Ai (Device.ptr buf) ]
  in
  let f = expect_fault "read race" "race" res in
  check_site "read race" f

let test_divergent_barrier_names_threads () =
  (* aligned barrier inside a divergent branch *)
  let m =
    kernel_module ~params:[] (fun b ps ->
        ignore ps;
        let tid = B.thread_id b in
        let c = B.icmp b Slt tid (B.i64 16) in
        B.if_then b c ~then_:(fun () -> B.barrier b ~aligned:true);
        B.barrier b ~aligned:true)
  in
  let _, res = launch_san m [] in
  let f = expect_fault "divergent barrier" "divergent-barrier" res in
  check_site "divergent barrier" f

let test_violate_assume_injection () =
  (* the assumption holds; the injection forces it to read false *)
  let m =
    kernel_module ~params:[] (fun b ps ->
        ignore ps;
        let tid = B.thread_id b in
        B.assume b (B.icmp b Sge tid (B.i64 0)))
  in
  (* without injection the assume passes under checking *)
  (match launch_san ~check_assumes:true m [] with
  | _, Ok _ -> ()
  | _, Error e -> Alcotest.failf "holding assume: %a" Device.pp_error e);
  let _, res = launch_san ~check_assumes:true ~inject:(spec "violate-assume:1") m [] in
  let f = expect_fault "violated assume" "assume-violation" res in
  check_site "violated assume" f;
  Alcotest.(check bool) "marked injected" true (contains f.Fault.f_msg "injected");
  Alcotest.(check bool) "assume is a trap" true (Fault.is_trap f)

let test_drop_store_uninit () =
  (* store p; load p — dropping the store makes the load uninitialized *)
  let m =
    kernel_module ~params:[ I64 ] (fun b ps ->
        match ps with
        | [ out ] ->
          let p = B.alloca b 8 in
          B.store b I64 (B.i64 5) p;
          let v = B.load b I64 p in
          let tid = B.thread_id b in
          B.store b I64 v (B.ptradd b out (B.mul b tid (B.i64 8)))
        | _ -> assert false)
  in
  let dev = Device.create ~sanitize:true m in
  let buf = Device.alloc dev (32 * 8) in
  (match Device.launch dev ~teams:1 ~threads:32 [ Engine.Ai (Device.ptr buf) ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "clean store/load: %a" Device.pp_error e);
  let dev = Device.create ~sanitize:true m in
  let buf = Device.alloc dev (32 * 8) in
  let res =
    Device.launch ~opts:(inject_opts (spec "drop-store:1")) dev ~teams:1 ~threads:32
      [ Engine.Ai (Device.ptr buf) ]
  in
  let f = expect_fault "dropped store" "uninit-read" res in
  check_site "dropped store" f

let test_trunc_shared_oob () =
  (* threads 0..7 fill an exactly-sized shared array; shaving 8 bytes off
     the allocation makes the last write out of bounds *)
  let mk () =
    let b = B.create "m" in
    let sh = B.add_global b ~space:Shared ~size:(8 * 8) "shbuf" in
    let _ = B.begin_func b ~name:"k" ~kernel:true ~params:[] ~ret:None () in
    B.set_block b "entry";
    let tid = B.thread_id b in
    let c = B.icmp b Slt tid (B.i64 8) in
    B.if_then b c ~then_:(fun () ->
        B.store b I64 tid (B.ptradd b sh (B.mul b tid (B.i64 8))));
    B.ret b None;
    ignore (B.end_func b);
    B.finish b
  in
  (match launch_san (mk ()) [] with
  | _, Ok _ -> ()
  | _, Error e -> Alcotest.failf "clean shared fill: %a" Device.pp_error e);
  let _, res = launch_san ~inject:(spec "trunc-shared:1") (mk ()) [] in
  let f = expect_fault "truncated shared" "out-of-bounds" res in
  check_site "truncated shared" f

let test_corrupt_load_fault () =
  (* idx = tbl[tid]; out[idx] = tid — a corrupted idx produces a wild
     pointer, caught structurally even without the sanitizer *)
  let m =
    kernel_module ~params:[ I64; I64 ] (fun b ps ->
        match ps with
        | [ tbl; out ] ->
          let tid = B.thread_id b in
          let idx = B.load b I64 (B.ptradd b tbl (B.mul b tid (B.i64 8))) in
          B.store b I64 tid (B.ptradd b out (B.mul b idx (B.i64 8)))
        | _ -> assert false)
  in
  let dev = Device.create m in
  let tbl = Device.alloc dev (32 * 8) in
  Device.write_i64_array dev tbl (Array.init 32 (fun i -> i));
  let out = Device.alloc dev (32 * 8) in
  let res =
    Device.launch ~opts:(inject_opts (spec "corrupt-load:1")) dev ~teams:1 ~threads:32
      [ Engine.Ai (Device.ptr tbl); Engine.Ai (Device.ptr out) ]
  in
  let f = expect_fault "corrupt load" "out-of-bounds" res in
  check_site "corrupt load" f

let test_encode_overflow () =
  (* an offset spilling into the pointer tag bits faults structurally *)
  match Memory.encode Global (1 lsl 50) with
  | exception Ozo_vgpu.Fault.Kernel_fault f ->
    Alcotest.(check string) "kind" "out-of-bounds" (Fault.kind_name f.Fault.f_kind)
  | _ -> Alcotest.fail "expected encode to fault on tag overflow"

let test_parse_spec () =
  (match Faultinject.parse ~seed:3 "corrupt-load@foo:4" with
  | Ok s ->
    Alcotest.(check bool) "action" true (s.Faultinject.s_action = Faultinject.Corrupt_load);
    Alcotest.(check (option string)) "fn" (Some "foo") s.Faultinject.s_fn;
    Alcotest.(check (option int)) "nth" (Some 4) s.Faultinject.s_nth;
    Alcotest.(check string) "round-trip" "corrupt-load@foo:4" (Faultinject.spec_to_string s)
  | Error e -> Alcotest.fail e);
  match Faultinject.parse ~seed:3 "explode" with
  | Ok _ -> Alcotest.fail "bogus spec must not parse"
  | Error _ -> ()

(* --- zero false positives on the clean proxies --------------------------- *)

let test_clean_proxies_sanitize () =
  List.iter
    (fun p ->
      List.iter
        (fun b ->
          let m = E.measure ~check_assumes:true ~sanitize:true p b in
          (match m.E.r_fault with
          | None -> ()
          | Some f ->
            Alcotest.failf "%s under %s: sanitizer finding: %s" p.Proxy.p_name
              b.C.b_label (Fault.to_line f));
          match m.E.r_check with
          | Ok () -> ()
          | Error e ->
            Alcotest.failf "%s under %s: check failed: %s" p.Proxy.p_name b.C.b_label e)
        (E.builds_for p))
    (Ozo_proxies.Registry.all_small ())

(* --- harness graceful degradation ---------------------------------------- *)

(* minimal proxy fixture: an indexed scatter whose index table makes the
   corrupted-load injection observable *)
let fixture_proxy () : Proxy.t =
  let open Ozo_frontend.Ast in
  let n = 64 in
  let body =
    [ Let ("idx", Ld (P "tbl", P "i", MI64));
      Store (P "out", P "idx", MI64, Add (Mul (P "i", Int 3), Int 1)) ]
  in
  let k =
    { k_name = "scatter_kernel";
      k_params = [ ("tbl", TInt); ("out", TInt); ("n", TInt) ];
      k_construct = Distribute_parallel_for ("i", P "n", body) }
  in
  let expected = Array.init n (fun i -> (i * 3) + 1) in
  { Proxy.p_name = "scatter-fixture";
    p_descr = "fault-injection fixture";
    p_kernel_omp = k;
    p_kernel_cuda = k;
    p_teams = 2;
    p_threads = 32;
    p_flops = 0.0;
    p_assume = Proxy.Assume_both;
    p_setup =
      (fun dev ->
        let tbl = Proxy.alloc_i64 dev (Array.init n (fun i -> i)) in
        let out = Device.alloc dev (n * 8) in
        { Proxy.i_args =
            [ Engine.Ai (Device.ptr tbl); Ai (Device.ptr out); Ai n ];
          i_check =
            (fun () ->
              let got = Device.read_i64_array dev out n in
              let bad = ref (Ok ()) in
              Array.iteri
                (fun i e ->
                  if got.(i) <> e && !bad = Ok () then
                    bad := Error (Printf.sprintf "out[%d]=%d, want %d" i got.(i) e))
                expected;
              !bad) })
  }

let test_fallback_ladder () =
  let p = fixture_proxy () in
  let b = E.new_rt_for p in
  (* clean: the full pipeline passes without fallback *)
  let m = E.measure p b in
  Alcotest.(check bool) "clean row has no fault" true (m.E.r_fault = None);
  Alcotest.(check bool) "clean row validates" true (Result.is_ok m.E.r_check);
  (* injected: the full-pipeline run fails; the harness must retry at a
     weaker configuration (without the injection) and validate there *)
  let m = E.measure ~inject:(spec "corrupt-load:1") p b in
  (match m.E.r_fault with
  | None -> Alcotest.fail "expected the injected run to record a fault"
  | Some _ -> ());
  Alcotest.(check bool) "fallback chain non-empty" true (m.E.r_fallbacks <> []);
  Alcotest.(check string) "fell back to nightly" "nightly"
    (List.nth m.E.r_fallbacks (List.length m.E.r_fallbacks - 1));
  (match m.E.r_check with
  | Ok () -> ()
  | Error e -> Alcotest.failf "fallback row must validate, got: %s" e);
  Alcotest.(check bool) "metrics recovered" true (m.E.r_cycles > 0.0)

let test_weaken_ladder_shape () =
  let module P = Ozo_opt.Pipeline in
  let names c = Option.map (fun c -> c.P.name) (P.weaken c) in
  Alcotest.(check (option string)) "full -> nightly" (Some "nightly") (names P.full);
  Alcotest.(check (option string)) "nightly -> baseline" (Some "baseline") (names P.nightly);
  Alcotest.(check (option string)) "baseline -> O0" (Some "O0") (names P.baseline);
  Alcotest.(check (option string)) "O0 is terminal" None (names P.o0)

let suite =
  [ tc "sanitizer: out-of-bounds store" test_sanitizer_oob;
    tc "sanitizer: uninitialized read" test_sanitizer_uninit_read;
    tc "sanitizer: write-write race" test_sanitizer_waw_race;
    tc "inject: skip-barrier exposes a read race" test_skip_barrier_read_race;
    tc "sanitizer: divergent aligned barrier" test_divergent_barrier_names_threads;
    tc "inject: violate-assume traps under checking" test_violate_assume_injection;
    tc "inject: drop-store exposes uninit read" test_drop_store_uninit;
    tc "inject: trunc-shared exposes OOB" test_trunc_shared_oob;
    tc "inject: corrupt-load faults structurally" test_corrupt_load_fault;
    tc "memory: encode rejects tag overflow" test_encode_overflow;
    tc "inject: spec parsing" test_parse_spec;
    tc "sanitizer: clean proxies have zero findings" test_clean_proxies_sanitize;
    tc "harness: fallback ladder recovers injected fault" test_fallback_ladder;
    tc "pipeline: weaken ladder shape" test_weaken_ladder_shape ]
