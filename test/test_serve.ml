(* Serving tier: the content-addressed compile cache and the batched
   campaign service (DESIGN.md §14).

   The contracts under test:
   - key soundness: the compile key is stable for identical inputs and
     changes when any ingredient changes — the IR (a different kernel),
     the pipeline configuration (a single flag), the build-ladder rung
     (even label-only) or the machine descriptor;
   - hit identity: a cache hit returns the very artifact the cold
     compile produced (physical equality), so served measurements are
     bit-identical to uncached ones;
   - eviction neutrality: a capped cache changes recompile counts,
     never results;
   - the service: queue order in = row order out, duplicated requests
     hit, a second pass over a warm cache recompiles nothing, and the
     served CSV equals the sequential harness CSV modulo the trailing
     cache/latency/domains columns;
   - the CSV schema: header and rows agree on the column count, derived
     from the one [csv_columns] source. *)

module E = Ozo_harness.Experiments
module R = Ozo_harness.Report
module C = Ozo_core.Codesign
module Request = Ozo_core.Request
module Proxy = Ozo_proxies.Proxy
module Registry = Ozo_proxies.Registry
module Pipeline = Ozo_opt.Pipeline
module Machine = Ozo_backend.Machine
module Cache = Ozo_serve.Cache
module Service = Ozo_serve.Service
module Journal = Ozo_resilience.Journal

let tc = Alcotest.test_case

let small name =
  match
    List.find_opt (fun p -> p.Proxy.p_name = name) (Registry.all_small ())
  with
  | Some p -> p
  | None -> Alcotest.failf "no small proxy %s" name

let request ?(build = C.new_rt) p =
  E.request_for p { build with C.b_label = build.C.b_label }

let key_of (r : Request.t) p =
  let k = Proxy.kernel_for p r.Request.rq_build.C.b_abi in
  fst (C.keyed_compile_request r k)

(* --- the compile key ----------------------------------------------------- *)

let test_key_stable () =
  let p = small "xsbench" in
  let r = request p in
  let k1 = key_of r p and k2 = key_of r p in
  Alcotest.(check bool) "same input, same key" true (C.Compile_key.equal k1 k2);
  Alcotest.(check int) "md5 hex" 32 (String.length (C.Compile_key.hex k1))

let test_key_sensitivity () =
  let p = small "xsbench" in
  let base = request p in
  let base_key = key_of base p in
  let differs what r =
    Alcotest.(check bool) (what ^ " changes the key") false
      (C.Compile_key.equal base_key (key_of r p))
  in
  let b = base.Request.rq_build in
  (* a single pipeline flag *)
  differs "pipeline flag"
    { base with
      Request.rq_build =
        { b with C.b_pipe = { b.C.b_pipe with Pipeline.barrier_elim = false } } };
  (* a whole rung of the build ladder *)
  differs "build rung" { base with Request.rq_build = C.new_rt_nightly };
  (* the rung label alone (same pipeline, same ABI) *)
  differs "label only"
    { base with Request.rq_build = { b with C.b_label = b.C.b_label ^ "'" } };
  (* the machine descriptor *)
  differs "machine"
    { base with Request.rq_machine = Machine.with_reg_budget 8 Machine.vgpu };
  (* the linked IR: a different kernel under the identical build *)
  let q = small "rsbench" in
  let rq = request q in
  Alcotest.(check bool) "different IR changes the key" false
    (C.Compile_key.equal base_key (key_of { rq with Request.rq_build = b } q))

(* launch options must NOT participate: they don't feed the compile *)
let test_key_ignores_launch_opts () =
  let p = small "xsbench" in
  let r = request p in
  let r' =
    { r with
      Request.rq_teams = r.Request.rq_teams * 2;
      rq_opts =
        { r.Request.rq_opts with Ozo_vgpu.Device.Launch_opts.domains = 4 } }
  in
  Alcotest.(check bool) "launch shape is not a key ingredient" true
    (C.Compile_key.equal (key_of r p) (key_of r' p))

(* --- the cache ----------------------------------------------------------- *)

(* Observable identity of a compiled artifact: resource numbers plus a
   full launch's metrics and differential check. Two separate compiles of
   the same kernel alpha-vary register names (process-global gensym), so
   printout equality is too strong — the pinned contract is that every
   *measurement* agrees, which is exactly what campaign repeats and the
   CI CSV diffs rely on. *)
let run_fingerprint (p : Proxy.t) (r : Request.t) (c : C.compiled) =
  let dev = C.device_request r c in
  let inst = p.Proxy.p_setup dev in
  match C.launch_request r c dev inst.Proxy.i_args with
  | Error f -> "fault:" ^ Ozo_vgpu.Fault.kind_name f.Ozo_vgpu.Fault.f_kind
  | Ok m ->
    Fmt.str "%s/%.0f/%d/%d/%.3f/%d/%d/%d/%b" c.C.c_kernel m.C.m_kernel_cycles
      m.C.m_regs m.C.m_smem m.C.m_occupancy m.C.m_spills
      m.C.m_counters.Ozo_vgpu.Counters.warp_instructions
      m.C.m_counters.Ozo_vgpu.Counters.barriers
      (inst.Proxy.i_check () = Ok ())

let test_hit_identity () =
  let p = small "xsbench" in
  let r = request p in
  let k = Proxy.kernel_for p r.Request.rq_build.C.b_abi in
  let cache = Cache.create () in
  let c1, d1 = Cache.compile_request cache r k in
  let c2, d2 = Cache.compile_request cache r k in
  Alcotest.(check bool) "first is a miss" true (d1 = `Miss);
  Alcotest.(check bool) "second is a hit" true (d2 = `Hit);
  Alcotest.(check bool) "hit returns the cached artifact itself" true (c1 == c2);
  (* and the cached artifact behaves exactly like a cold compile *)
  let cold = C.compile_request r k in
  Alcotest.(check string) "artifact identical to cold compile"
    (run_fingerprint p r cold) (run_fingerprint p r c1);
  let s = Cache.stats cache in
  Alcotest.(check int) "hits" 1 s.Cache.cs_hits;
  Alcotest.(check int) "misses" 1 s.Cache.cs_misses;
  Alcotest.(check int) "entries" 1 s.Cache.cs_entries

let test_eviction_identity () =
  let p = small "xsbench" in
  let a = request p in
  let b = { a with Request.rq_build = C.cuda } in
  let kernel_for r = Proxy.kernel_for p r.Request.rq_build.C.b_abi in
  (* alternate two keys through a one-entry cache: every lookup evicts
     the other entry, so all four are misses... *)
  let capped = Cache.create ~cap:1 () in
  let capped_runs =
    List.map
      (fun r -> (r, fst (Cache.compile_request capped r (kernel_for r))))
      [ a; b; a; b ]
  in
  let s = Cache.stats capped in
  Alcotest.(check int) "thrash: all misses" 4 s.Cache.cs_misses;
  Alcotest.(check bool) "thrash: evictions happened" true (s.Cache.cs_evictions > 0);
  Alcotest.(check int) "cap respected" 1 s.Cache.cs_entries;
  (* ...but the artifacts behave identically to the unbounded cache's *)
  let unbounded = Cache.create () in
  let free_runs =
    List.map
      (fun r -> (r, fst (Cache.compile_request unbounded r (kernel_for r))))
      [ a; b; a; b ]
  in
  List.iteri
    (fun i ((r, c), (r', c')) ->
      Alcotest.(check string)
        (Fmt.str "artifact %d identical under eviction" i)
        (run_fingerprint p r' c') (run_fingerprint p r c))
    (List.combine capped_runs free_runs)

let test_cap_validation () =
  Alcotest.check_raises "cap 0 rejected"
    (Invalid_argument "Cache.create: cap must be >= 1") (fun () ->
      ignore (Cache.create ~cap:0 ()))

(* --- the request file ---------------------------------------------------- *)

let test_parse_requests () =
  let q =
    Service.parse_requests
      "# queue\nxsbench new-rt\n\n  rsbench   cuda  # trailing\n\tgridmini\told-rt\n"
  in
  Alcotest.(check (list (pair string string)))
    "parsed"
    [ ("xsbench", "new-rt"); ("rsbench", "cuda"); ("gridmini", "old-rt") ]
    q;
  Alcotest.check_raises "malformed line"
    (Service.Service_error "requests line 1: expected \"<proxy> <build>\"")
    (fun () -> ignore (Service.parse_requests "xsbench"))

let test_percentiles () =
  let xs = Array.of_list (List.init 100 (fun i -> float_of_int (i + 1))) in
  Alcotest.(check (float 0.0)) "p50" 50.0 (Service.percentile xs 50.0);
  Alcotest.(check (float 0.0)) "p95" 95.0 (Service.percentile xs 95.0);
  Alcotest.(check (float 0.0)) "p99" 99.0 (Service.percentile xs 99.0);
  Alcotest.(check (float 0.0)) "singleton" 7.0 (Service.percentile [| 7.0 |] 99.0);
  Alcotest.(check (float 0.0)) "empty" 0.0 (Service.percentile [||] 50.0)

(* --- the service --------------------------------------------------------- *)

let dup_queue = [ ("xsbench", "new-rt"); ("xsbench", "cuda") ]

let opts = { Service.default with Service.sv_small = true }

let test_service_hit_rate () =
  (* two passes over the same list in one run: pass 1 compiles, pass 2
     is served entirely from cache *)
  let ms, stats =
    Service.run { opts with Service.sv_repeat = 2 } dup_queue
  in
  Alcotest.(check int) "rows" 4 stats.Service.st_requests;
  Alcotest.(check (float 0.001)) "hit rate" 0.5 stats.Service.st_hit_rate;
  Alcotest.(check (list string)) "dispositions in queue order"
    [ "miss"; "miss"; "hit"; "hit" ]
    (List.map (fun m -> m.E.r_cache_disp) ms);
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (m.E.r_build ^ " latency recorded") true (m.E.r_latency_us > 0.0))
    ms

let test_warm_pass_recompiles_nothing () =
  let cache = Cache.create () in
  let queue =
    List.concat_map
      (fun p -> List.map (fun b -> (p.Proxy.p_name, b)) E.build_names)
      (Registry.all_small ())
  in
  let cold_ms, cold = Service.run ~cache opts queue in
  let warm_ms, warm = Service.run ~cache opts queue in
  Alcotest.(check int) "cold pass: all misses"
    (List.length queue) cold.Service.st_cache.Cache.cs_misses;
  Alcotest.(check int) "warm pass: zero recompiles" 0
    warm.Service.st_cache.Cache.cs_misses;
  Alcotest.(check (float 0.001)) "warm pass: 100% hit rate" 1.0
    warm.Service.st_hit_rate;
  (* warm rows bit-identical to cold rows modulo the volatile columns *)
  let strip m = { m with E.r_cache_disp = "-"; r_latency_us = 0.0 } in
  List.iteri
    (fun i (c, w) ->
      Alcotest.(check string)
        (Fmt.str "row %d identical warm vs cold" i)
        (Fmt.str "%a" R.pp_csv (strip c))
        (Fmt.str "%a" R.pp_csv (strip w)))
    (List.combine cold_ms warm_ms)

let test_served_vs_sequential () =
  let p = small "xsbench" in
  let queue = List.map (fun b -> ("xsbench", b)) E.build_names in
  (* a 2-domain service against the plain sequential harness *)
  let served, _ = Service.run { opts with Service.sv_domains = 2 } queue in
  let sequential = List.map (E.measure p) (E.builds_for p) in
  let normalize m =
    { m with E.r_cache_disp = "-"; r_latency_us = 0.0; r_domains = 1 }
  in
  List.iteri
    (fun i (s, q) ->
      Alcotest.(check string)
        (Fmt.str "row %d identical to sequential harness" i)
        (Fmt.str "%a" R.pp_csv (normalize q))
        (Fmt.str "%a" R.pp_csv (normalize s)))
    (List.combine served sequential)

let test_service_journal () =
  let path = Filename.temp_file "ozo_serve" ".jsonl" in
  let ms, _ =
    Service.run
      { opts with Service.sv_journal = Some path; sv_repeat = 2 }
      dup_queue
  in
  (match Journal.load ~path with
  | Error e -> Alcotest.failf "journal load failed: %s" e
  | Ok (_, entries) ->
    Alcotest.(check int) "journal rows" (List.length ms) (List.length entries);
    List.iteri
      (fun i (m, e) ->
        Alcotest.(check string)
          (Fmt.str "journal row %d records the cache disposition" i)
          m.E.r_cache_disp e.Journal.e_m.E.r_cache_disp;
        Alcotest.(check string)
          (Fmt.str "journal row %d csv roundtrip" i)
          (Fmt.str "%a" R.pp_csv m)
          (Fmt.str "%a" R.pp_csv e.Journal.e_m))
      (List.combine ms entries));
  Sys.remove path

let test_unknown_names () =
  Alcotest.check_raises "unknown proxy"
    (Service.Service_error "unknown proxy nope") (fun () ->
      ignore (Service.run opts [ ("nope", "new-rt") ]));
  match Service.run opts [ ("xsbench", "fastest") ] with
  | exception Service.Service_error e ->
    Alcotest.(check bool) "unknown build names the candidates" true
      (String.length e > 0
      && String.sub e 0 13 = "unknown build")
  | _ -> Alcotest.fail "unknown build accepted"

(* --- the request API wrappers -------------------------------------------- *)

let test_wrapper_parity () =
  let p = small "xsbench" in
  let r = request p in
  let k = Proxy.kernel_for p r.Request.rq_build.C.b_abi in
  let via_request = C.compile_request r k in
  let via_legacy = C.compile r.Request.rq_build k in
  Alcotest.(check string) "legacy compile = compile_request"
    (run_fingerprint p r via_request)
    (run_fingerprint p r via_legacy);
  let _, finish = C.keyed_compile_request r k in
  Alcotest.(check string) "keyed thunk = compile_request"
    (run_fingerprint p r via_request)
    (run_fingerprint p r (finish ()))

(* --- the CSV schema ------------------------------------------------------ *)

let count_fields line =
  List.length (String.split_on_char ',' line)

let test_csv_columns () =
  let header = Fmt.str "%a" R.pp_csv_header () |> String.trim in
  Alcotest.(check int) "header matches csv_columns"
    (List.length R.csv_columns) (count_fields header);
  let p = small "xsbench" in
  let row = Fmt.str "%a" R.pp_csv (E.measure p C.new_rt) |> String.trim in
  Alcotest.(check int) "row matches csv_columns"
    (List.length R.csv_columns) (count_fields row);
  (* the trailing columns regression diffs strip, in order *)
  let n = List.length R.csv_columns in
  Alcotest.(check (list string)) "trailing volatile columns"
    [ "domains"; "cache"; "latency_us" ]
    (List.filteri (fun i _ -> i >= n - 3) R.csv_columns)

let suite =
  [ tc "compile key: stable" `Quick test_key_stable;
    tc "compile key: every ingredient matters" `Quick test_key_sensitivity;
    tc "compile key: launch opts excluded" `Quick test_key_ignores_launch_opts;
    tc "cache: hit returns the cold artifact" `Quick test_hit_identity;
    tc "cache: eviction never changes results" `Quick test_eviction_identity;
    tc "cache: cap validation" `Quick test_cap_validation;
    tc "service: request file parsing" `Quick test_parse_requests;
    tc "service: nearest-rank percentiles" `Quick test_percentiles;
    tc "service: duplicates hit the cache" `Quick test_service_hit_rate;
    tc "service: warm pass recompiles nothing" `Slow
      test_warm_pass_recompiles_nothing;
    tc "service: served rows = sequential harness" `Quick
      test_served_vs_sequential;
    tc "service: journal records dispositions" `Quick test_service_journal;
    tc "service: unknown names rejected" `Quick test_unknown_names;
    tc "request API: wrappers agree" `Quick test_wrapper_parity;
    tc "csv: header/rows/columns agree" `Quick test_csv_columns ]
