(* Tests for the structural passes: inlining, internalization, stripping,
   globalization elimination, SPMD-ization, aligned barrier elimination. *)

open Ozo_ir.Types
module B = Ozo_ir.Builder
module L = Ozo_runtime.Layout
module Inline = Ozo_opt.Inline
module Internalize = Ozo_opt.Internalize
module Strip = Ozo_opt.Strip
module Globalization = Ozo_opt.Globalization
module Spmdize = Ozo_opt.Spmdize
module Barrier_elim = Ozo_opt.Barrier_elim
module Local_opt = Ozo_opt.Local_opt
module Lower = Ozo_frontend.Lower
module Device = Ozo_vgpu.Device
module Engine = Ozo_vgpu.Engine
open Util

(* --- inlining ---------------------------------------------------------- *)

let test_inline_basic () =
  let b = B.create "m" in
  (match B.begin_func b ~name:"helper" ~params:[ I64; I64 ] ~ret:(Some I64) () with
  | [ x; y ] ->
    B.set_block b "entry";
    let c = B.icmp b Slt x y in
    B.cond_br b c "lt" "ge";
    B.set_block b "lt";
    B.ret b (Some (B.add b x (B.i64 100)));
    B.set_block b "ge";
    B.ret b (Some (B.add b y (B.i64 200)))
  | _ -> assert false);
  ignore (B.end_func b);
  let ps = B.begin_func b ~name:"k" ~kernel:true ~params:[ I64 ] ~ret:None () in
  B.set_block b "entry";
  (match ps with
  | [ out ] ->
    let tid = B.thread_id b in
    let v = B.call_val b "helper" [ tid; B.i64 5 ] in
    B.store b I64 v (B.ptradd b out (B.mul b tid (B.i64 8)));
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b);
  let m = B.finish b in
  let m', changed = Inline.run m in
  Alcotest.(check bool) "inlined" true changed;
  check_verifies "inline" m';
  let kf = find_func_exn m' "k" in
  Alcotest.(check int) "no calls left" 0 (count_in_func is_call kf);
  (* execution preserved: multiple returns became a phi *)
  let dev = Device.create m' in
  let out = Device.alloc dev (32 * 8) in
  (match Device.launch dev ~teams:1 ~threads:32 [ Engine.Ai (Device.ptr out) ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" Device.pp_error e);
  let got = i64_array dev out 32 in
  Array.iteri
    (fun i v -> Alcotest.(check int) "result" (if i < 5 then i + 100 else 205) v)
    got

let test_inline_respects_no_inline () =
  let b = B.create "m" in
  (match
     B.begin_func b ~name:"opaque" ~attrs:[ Attr_no_inline ] ~params:[] ~ret:(Some I64) ()
   with
  | [] ->
    B.set_block b "entry";
    B.ret b (Some (B.i64 1))
  | _ -> assert false);
  ignore (B.end_func b);
  ignore (B.begin_func b ~name:"k" ~kernel:true ~params:[] ~ret:None ());
  B.set_block b "entry";
  let _ = B.call_val b "opaque" [] in
  B.ret b None;
  ignore (B.end_func b);
  let m = B.finish b in
  let m', _ = Inline.run m in
  let kf = find_func_exn m' "k" in
  Alcotest.(check int) "call survives" 1 (count_in_func is_call kf)

let test_inline_skips_recursion () =
  let b = B.create "m" in
  (match B.begin_func b ~name:"recfn" ~params:[ I64 ] ~ret:(Some I64) () with
  | [ x ] ->
    B.set_block b "entry";
    let c = B.icmp b Sle x (B.i64 0) in
    B.cond_br b c "base" "rec";
    B.set_block b "base";
    B.ret b (Some (B.i64 0));
    B.set_block b "rec";
    let v = B.call_val b "recfn" [ B.sub b x (B.i64 1) ] in
    B.ret b (Some (B.add b v x))
  | _ -> assert false);
  ignore (B.end_func b);
  ignore (B.begin_func b ~name:"k" ~kernel:true ~params:[] ~ret:None ());
  B.set_block b "entry";
  let _ = B.call_val b "recfn" [ B.i64 3 ] in
  B.ret b None;
  ignore (B.end_func b);
  let m = B.finish b in
  let m', _ = Inline.run m in
  let kf = find_func_exn m' "k" in
  Alcotest.(check int) "recursive call survives" 1 (count_in_func is_call kf)

let test_inline_hoists_allocas () =
  (* callee with an alloca, called inside a loop: after inlining the
     alloca must not grow the stack per iteration *)
  let b = B.create "m" in
  (match B.begin_func b ~name:"scratch" ~params:[ I64 ] ~ret:(Some I64) () with
  | [ x ] ->
    B.set_block b "entry";
    let p = B.alloca b 8 in
    B.store b I64 x p;
    B.ret b (Some (B.load b I64 p))
  | _ -> assert false);
  ignore (B.end_func b);
  let ps = B.begin_func b ~name:"k" ~kernel:true ~params:[ I64 ] ~ret:None () in
  B.set_block b "entry";
  (match ps with
  | [ out ] ->
    ignore
      (B.for_loop b ~lo:(B.i64 0) ~hi:(B.i64 2000) ~step:(B.i64 1) ~body:(fun iv ->
           let v = B.call_val b "scratch" [ iv ] in
           B.store b I64 v out));
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b);
  let m = B.finish b in
  let m', _ = Inline.run m in
  check_verifies "hoist" m';
  (* 2000 iterations x 8 bytes would overflow the 16KB thread stack if the
     alloca were not hoisted *)
  let dev = Device.create m' in
  let out = Device.alloc dev 8 in
  match Device.launch dev ~teams:1 ~threads:1 [ Engine.Ai (Device.ptr out) ] with
  | Ok _ -> Alcotest.(check int) "last value" 1999 (i64_array dev out 1).(0)
  | Error e -> Alcotest.failf "%a" Device.pp_error e

(* --- internalize -------------------------------------------------------- *)

let test_internalize () =
  let b = B.create "m" in
  (match B.begin_func b ~name:"exported" ~linkage:External ~params:[] ~ret:(Some I64) () with
  | [] ->
    B.set_block b "entry";
    B.ret b (Some (B.i64 9))
  | _ -> assert false);
  ignore (B.end_func b);
  ignore (B.begin_func b ~name:"k" ~kernel:true ~linkage:External ~params:[] ~ret:None ());
  B.set_block b "entry";
  let _ = B.call_val b "exported" [] in
  B.ret b None;
  ignore (B.end_func b);
  let m = B.finish b in
  let m', changed = Internalize.run m in
  Alcotest.(check bool) "changed" true changed;
  Alcotest.(check bool) "clone exists" true
    (has_func m' ("exported" ^ Internalize.clone_suffix));
  let kf = find_func_exn m' "k" in
  let calls_clone =
    count_in_func
      (function Call (_, n, _) -> n = "exported" ^ Internalize.clone_suffix | _ -> false)
      kf
  in
  Alcotest.(check int) "call redirected" 1 calls_clone;
  (* after stripping, the unused export disappears *)
  let m'', _ = Strip.run m' in
  Alcotest.(check bool) "export stripped" false (has_func m'' "exported")

(* --- strip --------------------------------------------------------------- *)

let test_strip_keeps_func_addr_refs () =
  let b = B.create "m" in
  (match B.begin_func b ~name:"pointee" ~params:[ I64; I64 ] ~ret:None () with
  | [ _; _ ] ->
    B.set_block b "entry";
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b);
  (match B.begin_func b ~name:"dead_fn" ~params:[] ~ret:None () with
  | [] ->
    B.set_block b "entry";
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b);
  let ps = B.begin_func b ~name:"k" ~kernel:true ~params:[ I64 ] ~ret:None () in
  B.set_block b "entry";
  (match ps with
  | [ out ] ->
    B.store b I64 (Func_addr "pointee") out;
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b);
  let m = B.finish b in
  let m', _ = Strip.run m in
  Alcotest.(check bool) "pointee kept" true (has_func m' "pointee");
  Alcotest.(check bool) "dead_fn removed" false (has_func m' "dead_fn")

let test_strip_removes_dead_globals () =
  let b = B.create "m" in
  ignore (B.add_global b ~space:Shared ~size:64 "dead_g");
  ignore (B.add_global b ~space:Shared ~size:8 "live_g");
  ignore (B.begin_func b ~name:"k" ~kernel:true ~params:[] ~ret:None ());
  B.set_block b "entry";
  let _ = B.load b I64 (Global_addr "live_g") in
  B.ret b None;
  ignore (B.end_func b);
  let m = B.finish b in
  let m', _ = Strip.run m in
  Alcotest.(check bool) "live kept" true (has_global m' "live_g");
  Alcotest.(check bool) "dead removed" false (has_global m' "dead_g")

(* --- globalization elimination ------------------------------------------ *)

let glob_module ~escaping =
  let rt = Ozo_runtime.Runtime.build Ozo_runtime.Config.default in
  let b = B.create "app" in
  (* an opaque consumer for the escaping case *)
  (match
     B.begin_func b ~name:"consume" ~attrs:[ Attr_no_inline ] ~params:[ I64 ] ~ret:None ()
   with
  | [ p ] ->
    B.set_block b "entry";
    B.store b I64 (B.i64 1) p;
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b);
  let ps = B.begin_func b ~name:"k" ~kernel:true ~linkage:External ~params:[ I64 ] ~ret:None () in
  B.set_block b "entry";
  (match ps with
  | [ out ] ->
    let p = B.call_val b L.alloc_shared [ B.i64 16 ] in
    B.store b I64 (B.i64 5) p;
    if escaping then B.call_void b "consume" [ p ];
    let v = B.load b I64 p in
    B.store b I64 v out;
    B.call_void b L.free_shared [ p; B.i64 16 ];
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b);
  Ozo_ir.Linker.link (B.finish b) rt

let count_alloc_shared m fname =
  count_in_func
    (function Call (_, n, _) -> Globalization.is_alloc_shared n | _ -> false)
    (find_func_exn m fname)

let test_globalization_demotes_private () =
  let m = glob_module ~escaping:false in
  let m', changed = Globalization.run m in
  Alcotest.(check bool) "changed" true changed;
  Alcotest.(check int) "alloc_shared gone" 0 (count_alloc_shared m' "k");
  let kf = find_func_exn m' "k" in
  Alcotest.(check int) "alloca introduced" 1
    (count_in_func (function Alloca _ -> true | _ -> false) kf);
  (* semantics preserved *)
  let dev = Device.create m' in
  let out = Device.alloc dev 8 in
  (match Device.launch dev ~teams:1 ~threads:32 [ Engine.Ai (Device.ptr out) ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" Device.pp_error e);
  Alcotest.(check int) "value" 5 (i64_array dev out 1).(0)

let test_globalization_keeps_escaping () =
  let m = glob_module ~escaping:true in
  let m', _ = Globalization.run m in
  Alcotest.(check int) "alloc_shared survives" 1 (count_alloc_shared m' "k")

(* --- spmdize -------------------------------------------------------------- *)

let simple_combined =
  Ozo_frontend.Ast.
    { k_name = "k";
      k_params = [ ("out", TInt); ("n", TInt) ];
      k_construct =
        Distribute_parallel_for
          ("i", P "n", [ Store (P "out", P "i", MI64, Mul (P "i", Int 3)) ]) }

let test_spmdize_flips_safe_kernel () =
  let app = Lower.lower ~abi:(Lower.Omp Lower.New_abi) simple_combined in
  let m = Ozo_ir.Linker.link app (Ozo_runtime.Runtime.build Ozo_runtime.Config.default) in
  Alcotest.(check bool) "starts generic" true
    (Spmdize.kernel_mode m "k" = Spmdize.Generic);
  let m, _ = Local_opt.run m in
  let m', changed = Spmdize.run m in
  Alcotest.(check bool) "changed" true changed;
  Alcotest.(check bool) "now SPMD" true (Spmdize.kernel_mode m' "k" = Spmdize.Spmd);
  (* and it runs correctly in SPMD launch configuration *)
  let dev = Device.create m' in
  let out = Device.alloc dev (64 * 8) in
  (match Device.launch dev ~teams:2 ~threads:32 [ Engine.Ai (Device.ptr out); Ai 64 ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" Device.pp_error e);
  let got = i64_array dev out 64 in
  Array.iteri (fun i v -> Alcotest.(check int) "value" (i * 3) v) got

let test_spmdize_guards_side_effects () =
  (* a store to global memory in the sequential region is guarded for
     single-threaded execution (paper IV-A3), not bailed on *)
  let k =
    Ozo_frontend.Ast.
      { k_name = "k";
        k_params = [ ("out", TInt) ];
        k_construct =
          Generic
            [ Store (P "out", Int 0, MI64, Int 7);
              Parallel (None, [ Store (P "out", Add (Int 1, OmpThreadNum), MI64, Int 1) ])
            ] }
  in
  let app = Lower.lower ~abi:(Lower.Omp Lower.New_abi) k in
  let m = Ozo_ir.Linker.link app (Ozo_runtime.Runtime.build Ozo_runtime.Config.default) in
  let m, _ = Local_opt.run m in
  let sink = Ozo_opt.Remarks.make () in
  let m', changed = Spmdize.run ~sink m in
  Alcotest.(check bool) "changed" true changed;
  check_verifies "guarded" m';
  Alcotest.(check bool) "now SPMD" true (Spmdize.kernel_mode m' "k" = Spmdize.Spmd);
  let guarded =
    List.exists
      (fun r ->
        r.Ozo_opt.Remarks.r_kind = Ozo_opt.Remarks.Applied
        && contains r.Ozo_opt.Remarks.r_msg "guarding")
      (Ozo_opt.Remarks.items sink)
  in
  Alcotest.(check bool) "guard remark emitted" true guarded;
  (* execution: the sequential store happens exactly once, the parallel
     stores once per thread *)
  let dev = Device.create m' in
  let out = Device.alloc dev (33 * 8) in
  (match Device.launch dev ~teams:1 ~threads:32 [ Engine.Ai (Device.ptr out) ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" Device.pp_error e);
  let got = i64_array dev out 33 in
  Alcotest.(check int) "sequential store" 7 got.(0);
  for i = 1 to 32 do
    Alcotest.(check int) "parallel store" 1 got.(i)
  done

let test_spmdize_bails_on_unknown_call () =
  (* a call to an arbitrary function in the sequential region cannot be
     guarded (it may produce a value / have unknown effects): stay generic *)
  let rt = Ozo_runtime.Runtime.build Ozo_runtime.Config.default in
  let b = B.create "app" in
  (match
     B.begin_func b ~name:"mystery" ~attrs:[ Attr_no_inline ] ~params:[] ~ret:None ()
   with
  | [] ->
    B.set_block b "entry";
    B.barrier b ~aligned:false;
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b);
  ignore (B.begin_func b ~name:"k" ~kernel:true ~linkage:External ~params:[] ~ret:None ());
  B.set_block b "entry";
  let r = B.call_val b L.target_init [ B.i64 0 ] in
  let proceed = B.icmp b Eq r (B.i64 1) in
  B.if_then b proceed ~then_:(fun () ->
      B.call_void b "mystery" [];
      B.call_void b L.target_deinit [ B.i64 0 ]);
  B.ret b None;
  ignore (B.end_func b);
  let m = Ozo_ir.Linker.link (B.finish b) rt in
  let sink = Ozo_opt.Remarks.make () in
  let m', changed = Spmdize.run ~sink m in
  Alcotest.(check bool) "not changed" false changed;
  Alcotest.(check bool) "still generic" true
    (Spmdize.kernel_mode m' "k" = Spmdize.Generic);
  let missed =
    List.exists
      (fun r -> r.Ozo_opt.Remarks.r_kind = Ozo_opt.Remarks.Missed)
      (Ozo_opt.Remarks.items sink)
  in
  Alcotest.(check bool) "missed remark emitted" true missed

(* --- barrier elimination --------------------------------------------------- *)

let barrier_kernel ~with_store =
  kernel_module ~params:[ I64 ] (fun b ps ->
      match ps with
      | [ out ] ->
        B.barrier b ~aligned:true;
        (* pure computation between barriers *)
        let tid = B.thread_id b in
        let v = B.mul b tid (B.i64 2) in
        B.barrier b ~aligned:true;
        if with_store then B.store b I64 v (B.ptradd b out (B.mul b tid (B.i64 8)))
        else ignore v;
        B.barrier b ~aligned:true
      | _ -> assert false)

let count_barriers m = count_in_func is_barrier (find_func_exn m "k")

let test_barrier_elim_pure_between () =
  let m = barrier_kernel ~with_store:false in
  let m', changed = Barrier_elim.run m in
  Alcotest.(check bool) "changed" true changed;
  Alcotest.(check int) "all barriers removed" 0 (count_barriers m')

let test_barrier_elim_blocked_by_store () =
  let m = barrier_kernel ~with_store:true in
  let m', _ = Barrier_elim.run m in
  (* the first two barriers collapse (pure between them + entry), but the
     barrier preceding the global store survives only if a side effect
     separates it from entry/exit — here the store is after it, so it is
     entry-adjacent and removable; the final barrier is exit-adjacent.
     Everything goes. *)
  Alcotest.(check int) "entry/exit adjacency removes all" 0 (count_barriers m')

let test_barrier_elim_keeps_communication () =
  (* store -> barrier -> load: the barrier orders cross-thread
     communication and must stay *)
  let b = B.create "m" in
  ignore (B.add_global b ~space:Shared ~size:8 "sh");
  let ps = B.begin_func b ~name:"k" ~kernel:true ~params:[ I64 ] ~ret:None () in
  B.set_block b "entry";
  (match ps with
  | [ out ] ->
    let tid = B.thread_id b in
    let is0 = B.icmp b Eq tid (B.i64 0) in
    let dummy = B.alloca b 8 in
    let p = B.select b (Ptr Shared) is0 (Global_addr "sh") dummy in
    B.store b I64 (B.i64 55) p;
    B.barrier b ~aligned:true;
    let v = B.load b I64 (Global_addr "sh") in
    B.store b I64 v (B.ptradd b out (B.mul b tid (B.i64 8)));
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b);
  let m = B.finish b in
  let m', _ = Barrier_elim.run m in
  Alcotest.(check int) "communication barrier kept" 1 (count_barriers m');
  let dev = Device.create m' in
  let out = Device.alloc dev (32 * 8) in
  (match Device.launch dev ~teams:1 ~threads:32 [ Engine.Ai (Device.ptr out) ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" Device.pp_error e);
  Alcotest.(check int) "broadcast ok" 55 (i64_array dev out 32).(31)

let test_barrier_elim_attributed_calls () =
  (* a call to a function carrying Attr_aligned_barrier (the paper's
     `omp assumes ext_aligned_barrier` wrapper, Fig. 6) participates in
     barrier elimination like a real aligned barrier *)
  let b = B.create "m" in
  (match
     B.begin_func b ~name:"syncThreadsAligned"
       ~attrs:[ Attr_aligned_barrier; Attr_no_inline ] ~params:[] ~ret:None ()
   with
  | [] ->
    B.set_block b "entry";
    B.barrier b ~aligned:true;
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b);
  ignore (B.begin_func b ~name:"k" ~kernel:true ~params:[] ~ret:None ());
  B.set_block b "entry";
  B.call_void b "syncThreadsAligned" [];
  let tid = B.thread_id b in
  ignore (B.mul b tid (B.i64 2));
  B.call_void b "syncThreadsAligned" [];
  B.ret b None;
  ignore (B.end_func b);
  let m = B.finish b in
  let m', changed = Barrier_elim.run m in
  Alcotest.(check bool) "changed" true changed;
  let kf = find_func_exn m' "k" in
  Alcotest.(check int) "attributed barrier calls removed" 0
    (count_in_func (function Call (_, "syncThreadsAligned", _) -> true | _ -> false) kf)

let test_barrier_elim_ignores_unaligned () =
  let m =
    kernel_module ~params:[] (fun b _ ->
        B.barrier b ~aligned:false;
        B.barrier b ~aligned:false)
  in
  let m', changed = Barrier_elim.run m in
  Alcotest.(check bool) "unchanged" false changed;
  Alcotest.(check int) "unaligned barriers kept" 2 (count_barriers m')

let suite =
  [ tc "inline: basic with ret phi" test_inline_basic;
    tc "inline: respects no_inline" test_inline_respects_no_inline;
    tc "inline: skips recursion" test_inline_skips_recursion;
    tc "inline: hoists allocas out of loops" test_inline_hoists_allocas;
    tc "internalize: clone + redirect + strip" test_internalize;
    tc "strip: keeps Func_addr references" test_strip_keeps_func_addr_refs;
    tc "strip: removes dead globals" test_strip_removes_dead_globals;
    tc "globalization: demotes private allocation" test_globalization_demotes_private;
    tc "globalization: keeps escaping allocation" test_globalization_keeps_escaping;
    tc "spmdize: flips safe combined kernel" test_spmdize_flips_safe_kernel;
    tc "spmdize: guards sequential side effects" test_spmdize_guards_side_effects;
    tc "spmdize: bails on unguardable calls" test_spmdize_bails_on_unknown_call;
    tc "barrier-elim: pure region" test_barrier_elim_pure_between;
    tc "barrier-elim: entry/exit adjacency" test_barrier_elim_blocked_by_store;
    tc "barrier-elim: keeps communication barrier" test_barrier_elim_keeps_communication;
    tc "barrier-elim: attributed barrier functions" test_barrier_elim_attributed_calls;
    tc "barrier-elim: unaligned untouched" test_barrier_elim_ignores_unaligned ]
