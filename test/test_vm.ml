(* Threaded-code executor: differential bit-identity tests.

   The contract under test (DESIGN.md §15): `--exec vm` changes *only*
   wall-clock time. Counters, simulated results, faults (down to the
   faulting site), injection behaviour, sanitizer verdicts and campaign
   CSV rows must be byte-for-byte what the IR interpreter produces, for
   every proxy, every pipeline strength and every domain count — spilled
   allocations included (those functions fall back to interpretation).

   Also here: the seeded property suite for [Vm.sequentialize_copies]
   (cycle-breaking temps must preserve parallel-copy semantics, both on
   random copy sets and on every phi edge of irgen-generated kernels)
   and a VM-shape golden pin for one proxy. *)

module E = Ozo_harness.Experiments
module R = Ozo_harness.Report
module C = Ozo_core.Codesign
module Proxy = Ozo_proxies.Proxy
module Registry = Ozo_proxies.Registry
module Pipeline = Ozo_opt.Pipeline
module Device = Ozo_vgpu.Device
module Engine = Ozo_vgpu.Engine
module Counters = Ozo_vgpu.Counters
module Fault = Ozo_vgpu.Fault
module Faultinject = Ozo_vgpu.Faultinject
module Machine = Ozo_backend.Machine
module Backend = Ozo_backend.Lower
module Regalloc = Ozo_backend.Regalloc
module Vm = Ozo_backend.Vm
module Irgen = Ozo_resilience.Irgen
module Prng = Ozo_util.Prng
open Ozo_ir.Types

let tc = Alcotest.test_case

(* --- launch helpers ------------------------------------------------------ *)

let run_once ?inject ?(sanitize = false) ?(domains = 1) ?machine ~exec
    (p : Proxy.t) (b : C.build) :
    (Engine.result * (unit, string) result, Fault.t) result =
  let c = C.compile ?machine ~exec b (Proxy.kernel_for p b.C.b_abi) in
  let dev = C.device ~sanitize c in
  let inst = p.Proxy.p_setup dev in
  let opts =
    { Device.Launch_opts.default with Device.Launch_opts.domains; inject }
  in
  let hw = C.hw_threads c ~threads:p.Proxy.p_threads in
  match
    Device.launch ~opts dev ~teams:p.Proxy.p_teams ~threads:hw inst.Proxy.i_args
  with
  | Ok r -> Ok (r, inst.Proxy.i_check ())
  | Error f -> Error f

let check_str = function Ok () -> "ok" | Error e -> "FAILED: " ^ e

let fault_sig (f : Fault.t) =
  Fmt.str "%s:%s@%a/%a/%a team=%a" (Fault.kind_name f.Fault.f_kind)
    f.Fault.f_msg
    Fmt.(option ~none:(any "?") string) f.Fault.f_fn
    Fmt.(option ~none:(any "?") string) f.Fault.f_blk
    Fmt.(option ~none:(any "?") int) f.Fault.f_idx
    Fmt.(option ~none:(any "?") int) f.Fault.f_team

(* assert two launches are observably identical *)
let same_outcome ctx ir vm =
  match (ir, vm) with
  | Ok (ri, ci), Ok (rv, cv) ->
    Alcotest.(check int)
      (ctx ^ ": team count")
      (List.length ri.Engine.r_counters)
      (List.length rv.Engine.r_counters);
    List.iteri
      (fun i (a, b) ->
        if not (Counters.equal a b) then
          Alcotest.failf "%s: team %d counters diverge:@.%a@.vs@.%a" ctx i
            Counters.pp a Counters.pp b)
      (List.combine ri.Engine.r_counters rv.Engine.r_counters);
    if not (Counters.equal ri.Engine.r_total rv.Engine.r_total) then
      Alcotest.failf "%s: totals diverge" ctx;
    Alcotest.(check string) (ctx ^ ": check") (check_str ci) (check_str cv)
  | Error fi, Error fv ->
    Alcotest.(check string) (ctx ^ ": fault") (fault_sig fi) (fault_sig fv)
  | Ok _, Error f ->
    Alcotest.failf "%s: ir ok but vm faulted: %s" ctx (Fault.to_line f)
  | Error f, Ok _ ->
    Alcotest.failf "%s: ir faulted (%s) but vm ok" ctx (Fault.to_line f)

(* pipeline variants per the issue: O0, baseline and the full pipeline *)
let pipes p = [ Pipeline.o0; Pipeline.baseline; (E.new_rt_for p).C.b_pipe ]

let builds_under_test p =
  List.map (fun pipe -> { (E.new_rt_for p) with C.b_pipe = pipe }) (pipes p)
  @ [ C.old_rt_nightly ]

(* --- bit-identity: every proxy x pipeline x domain count ----------------- *)

let test_bit_identity () =
  List.iter
    (fun p ->
      List.iter
        (fun b ->
          List.iter
            (fun d ->
              let ctx =
                Fmt.str "%s/%s/%s domains=%d" p.Proxy.p_name b.C.b_label
                  b.C.b_pipe.Pipeline.name d
              in
              same_outcome ctx
                (run_once ~domains:d ~exec:Engine.Exec_ir p b)
                (run_once ~domains:d ~exec:Engine.Exec_vm p b))
            [ 1; 4 ])
        (builds_under_test p))
    (Registry.all_small ())

(* --- spilled allocations fall back to interpretation --------------------- *)

let test_spill_fallback_identical () =
  let machine = Machine.with_reg_budget 8 Machine.vgpu in
  List.iter
    (fun p ->
      let b = E.new_rt_for p in
      same_outcome
        (Fmt.str "%s spill8" p.Proxy.p_name)
        (run_once ~machine ~exec:Engine.Exec_ir p b)
        (run_once ~machine ~exec:Engine.Exec_vm p b))
    (Registry.all_small ())

(* --- sanitizer parity ----------------------------------------------------- *)

let test_sanitizer_parity () =
  List.iter
    (fun p ->
      let b = E.new_rt_for p in
      same_outcome
        (Fmt.str "%s sanitized" p.Proxy.p_name)
        (run_once ~sanitize:true ~exec:Engine.Exec_ir p b)
        (run_once ~sanitize:true ~exec:Engine.Exec_vm p b))
    (Registry.all_small ())

(* --- fault injection ------------------------------------------------------ *)

let test_injection_site_identical () =
  List.iter
    (fun seed ->
      let spec =
        { Faultinject.s_action = Faultinject.Corrupt_load; s_fn = None;
          s_nth = None; s_seed = seed }
      in
      let p = Registry.find_exn "gridmini" in
      let b = C.old_rt_nightly in
      same_outcome
        (Fmt.str "inject seed %d" seed)
        (run_once ~inject:spec ~exec:Engine.Exec_ir p b)
        (run_once ~inject:spec ~exec:Engine.Exec_vm p b))
    [ 3; 42 ]

(* --- CSV byte identity through the harness -------------------------------- *)

let test_csv_bytes_identical () =
  let p = Registry.find_exn "xsbench" in
  let b = E.new_rt_for p in
  (* normalize what legitimately differs between the two runs: host
     wall-clock phase times (absent here: untraced) and the exec column,
     which records how the row ran *)
  let normalize m = { m with E.r_phase_us = []; r_exec = "ir" } in
  let csv m = Fmt.str "%a" R.pp_csv (normalize m) in
  let mi = E.measure ~exec:Engine.Exec_ir p b in
  let mv = E.measure ~exec:Engine.Exec_vm p b in
  Alcotest.(check string) "exec path recorded" "vm" mv.E.r_exec;
  Alcotest.(check string) "csv bytes identical" (csv mi) (csv mv)

(* --- the compile key fingerprints the exec path --------------------------- *)

let test_compile_key_exec_sensitive () =
  let p = Registry.find_exn "xsbench" in
  let b = E.new_rt_for p in
  let linked = C.link_stage b (Proxy.kernel_for p b.C.b_abi) in
  let key e = C.Compile_key.of_linked ~machine:Machine.vgpu ~exec:e b linked in
  Alcotest.(check bool)
    "ir and vm artifacts never alias in the cache" false
    (C.Compile_key.equal (key Engine.Exec_ir) (key Engine.Exec_vm));
  Alcotest.(check bool)
    "key is deterministic" true
    (C.Compile_key.equal (key Engine.Exec_vm) (key Engine.Exec_vm))

(* --- campaign journal fingerprint ----------------------------------------- *)

let test_campaign_fingerprint_exec () =
  let module Campaign = Ozo_resilience.Campaign in
  let o = { Campaign.default with Campaign.co_proxies = [ "xsbench" ] } in
  let fp_ir = Campaign.fingerprint o in
  let fp_vm =
    Campaign.fingerprint { o with Campaign.co_exec = Engine.Exec_vm }
  in
  let has_suffix ~suffix s =
    let ls = String.length s and lx = String.length suffix in
    ls >= lx && String.sub s (ls - lx) lx = suffix
  in
  Alcotest.(check bool) "exec in fingerprint" false (fp_ir = fp_vm);
  Alcotest.(check bool) "ir spelled out" true
    (has_suffix ~suffix:";exec=ir" fp_ir);
  Alcotest.(check bool) "vm spelled out" true
    (has_suffix ~suffix:";exec=vm" fp_vm)

(* --- parallel-copy sequentialization: seeded property --------------------- *)

(* Execute a sequentialized copy list over a symbolic environment and
   check parallel semantics: each destination ends with the value its
   source held *before* any copy ran, and untouched locations keep
   theirs. Sources/dests range over a small loc pool so collisions (and
   cycles) are common. *)
let locs =
  List.init 4 (fun i -> Regalloc.Phys i) @ [ Regalloc.Slot 0; Regalloc.Slot 1 ]

let eval env = function
  | Vm.Vloc l -> (
    match List.assoc_opt l env with
    | Some v -> v
    | None -> Fmt.str "init(%a)" Vm.pp_loc l)
  | o -> Fmt.str "%a" Vm.pp_opd o

let exec_copies env0 (seq : (Regalloc.loc * Vm.vopd) list) =
  List.fold_left (fun env (d, s) -> (d, eval env s) :: env) env0 seq

let random_copies rng =
  (* distinct destinations (phis define each register once per block) *)
  let n = 1 + Prng.int rng (List.length locs) in
  let dests =
    List.filteri (fun i _ -> i < n)
      (List.sort
         (fun _ _ -> if Prng.int rng 2 = 0 then 1 else -1)
         locs)
  in
  List.map
    (fun d ->
      let s =
        match Prng.int rng 4 with
        | 0 -> Vm.Vint (Int64.of_int (Prng.int rng 100))
        | _ -> Vm.Vloc (List.nth locs (Prng.int rng (List.length locs)))
      in
      (d, s))
    dests

let check_parallel_semantics ctx (copies : (Regalloc.loc * Vm.vopd) list) seq =
  (* the cycle-breaking temp must be fresh: never a destination *)
  List.iter
    (fun (d, _) ->
      if List.exists (fun (d', _) -> d' = d) copies then ()
      else if not (List.exists (fun (_, s) -> s = Vm.Vloc d) seq) then
        Alcotest.failf "%s: temp %a written but never read" ctx Vm.pp_loc d)
    seq;
  let final = exec_copies [] seq in
  List.iter
    (fun (d, s) ->
      let expect = eval [] s in
      let got = eval final (Vm.Vloc d) in
      if got <> expect then
        Alcotest.failf "%s: dest %a ends with %s, want %s@.copies: %a@.seq: %a"
          ctx Vm.pp_loc d got expect
          Fmt.(list ~sep:semi (pair Vm.pp_loc Vm.pp_opd))
          copies
          Fmt.(list ~sep:semi (pair Vm.pp_loc Vm.pp_opd))
          seq)
    copies;
  (* locations that are neither destinations nor temps stay untouched *)
  List.iter
    (fun l ->
      if not (List.exists (fun (d, _) -> d = l) seq) then
        Alcotest.(check string)
          (ctx ^ ": bystander untouched")
          (eval [] (Vm.Vloc l))
          (eval final (Vm.Vloc l)))
    locs

let test_sequentialize_property () =
  let temp_pool =
    [ Regalloc.Phys 90; Regalloc.Phys 91; Regalloc.Phys 92 ]
  in
  let cycles_broken = ref 0 in
  for seed = 1 to 500 do
    let rng = Prng.create seed in
    let copies = random_copies rng in
    let k = ref 0 in
    let temp () =
      incr cycles_broken;
      let t = List.nth temp_pool (min !k (List.length temp_pool - 1)) in
      incr k;
      t
    in
    let seq = Vm.sequentialize_copies ~temp copies in
    check_parallel_semantics (Fmt.str "seed %d" seed) copies seq
  done;
  (* the pool above makes swaps common: the temp path must actually run *)
  Alcotest.(check bool)
    "cycle breaker exercised" true (!cycles_broken > 0)

(* --- sequentialization on real phi edges (via irgen) ---------------------- *)

(* For generated kernels, rebuild each edge's parallel copy straight from
   the optimized function's phis (resolving operands exactly as the
   emitter does) and check the emitted V_copy sequence implements it. *)
let test_sequentialize_on_irgen_edges () =
  let edges_checked = ref 0 in
  for seed = 1 to 12 do
    let m = Irgen.generate ~seed in
    let opt = Pipeline.run Pipeline.full m in
    let layout = Ozo_backend.Smem.of_module opt in
    let lower = Backend.run ~machine:Machine.vgpu opt ~kernel:Irgen.kernel_name in
    List.iter
      (fun (fl : Backend.func_lowering) ->
        let ra = fl.Backend.fl_ra in
        let f =
          List.find (fun f -> f.f_name = fl.Backend.fl_func) opt.m_funcs
        in
        let resolve = function
          | Reg r -> Vm.Vloc (Regalloc.loc r ra)
          | Imm_int (v, _) -> Vm.Vint v
          | Imm_float v -> Vm.Vfloat v
          | Global_addr g -> (
            match
              List.find_opt
                (fun s -> s.Ozo_backend.Smem.sl_name = g)
                layout.Ozo_backend.Smem.ly_slots
            with
            | Some s -> Vm.Vshared (g, s.Ozo_backend.Smem.sl_offset)
            | None -> Vm.Vglobal g)
          | Func_addr fn -> Vm.Vfunc fn
          | Undef _ -> Vm.Vundef
        in
        List.iter
          (fun (b : block) ->
            List.iter
              (fun succ ->
                match find_block f succ with
                | None -> ()
                | Some sb ->
                  let copies =
                    List.filter_map
                      (fun p ->
                        Option.map
                          (fun o -> (Regalloc.loc p.phi_reg ra, resolve o))
                          (List.assoc_opt b.b_label p.phi_incoming))
                      sb.b_phis
                  in
                  (* distinct-dest edges only: a dead phi defaults to
                     phys 0 and may alias a live one — order-dependent
                     by construction, not a parallel copy *)
                  let dests = List.map fst copies in
                  if copies <> [] && List.length (List.sort_uniq compare dests) = List.length dests
                  then begin
                    incr edges_checked;
                    let vb =
                      List.find
                        (fun vb -> vb.Vm.vb_label = b.b_label)
                        fl.Backend.fl_vm.Vm.vf_blocks
                    in
                    let seq =
                      List.map
                        (function
                          | Vm.V_copy (d, s) -> (d, s)
                          | i ->
                            Alcotest.failf "non-copy %a on edge %s->%s"
                              Vm.pp_vinst i b.b_label succ)
                        (List.assoc succ vb.Vm.vb_term.Vm.vt_edges)
                    in
                    check_parallel_semantics
                      (Fmt.str "irgen seed %d %s->%s" seed b.b_label succ)
                      copies seq
                  end)
              (term_succs b.b_term))
          f.f_blocks)
      lower.Backend.lw_funcs
  done;
  Alcotest.(check bool)
    "generated kernels produced phi edges" true (!edges_checked > 0)

(* --- VM-shape golden pin --------------------------------------------------- *)

(* One proxy's VM form, pinned as the `ozo vm --csv` row. A change here is
   a real backend change: regenerate with
     OZO_GOLDEN_REGEN=1 dune runtest --force 2>&1 | grep GOLDEN-VM
   and paste the new row. *)
let golden_vm_row =
  "xsbench,New RT,xs_lookup_kernel,12,2,152,2,0,0,21,0,vm,21"

let vm_row (p : Proxy.t) (b : C.build) =
  let c = C.compile b (Proxy.kernel_for p b.C.b_abi) in
  let l = c.C.c_lower in
  let fl = List.hd l.Backend.lw_funcs in
  let s = Vm.func_stats fl.Backend.fl_vm in
  let vf = fl.Backend.fl_vm in
  let plan = List.assoc_opt fl.Backend.fl_func l.Backend.lw_plan in
  Fmt.str "%s,%s,%s,%d,%d,%d,%d,%d,%d,%d,%d,%s,%d" p.Proxy.p_name b.C.b_label
    fl.Backend.fl_func s.Vm.vs_blocks s.Vm.vs_edges s.Vm.vs_ops s.Vm.vs_moves
    s.Vm.vs_reloads s.Vm.vs_spills vf.Vm.vf_regs_used vf.Vm.vf_frame_bytes
    (match plan with Some _ -> "vm" | None -> "ir")
    (match plan with Some pl -> pl.Engine.rp_nregs | None -> 0)

let test_vm_shape_golden () =
  let p =
    List.find (fun p -> p.Proxy.p_name = "xsbench") (Registry.all_small ())
  in
  let row = vm_row p (E.new_rt_for p) in
  if Sys.getenv_opt "OZO_GOLDEN_REGEN" <> None then
    Fmt.pr "GOLDEN-VM %s@." row;
  Alcotest.(check string) "xsbench VM shape" golden_vm_row row

let suite =
  [ tc "vm = ir for every proxy x pipeline x domains" `Quick test_bit_identity;
    tc "vm = ir under an 8-register budget (spill fallback)" `Quick
      test_spill_fallback_identical;
    tc "sanitizer verdicts identical on the vm path" `Quick
      test_sanitizer_parity;
    tc "injected site identical on the vm path" `Quick
      test_injection_site_identical;
    tc "campaign csv rows byte-identical across exec paths" `Quick
      test_csv_bytes_identical;
    tc "compile key fingerprints the exec path" `Quick
      test_compile_key_exec_sensitive;
    tc "campaign journal fingerprint carries the exec path" `Quick
      test_campaign_fingerprint_exec;
    tc "sequentialized copies preserve parallel semantics (seeded)" `Quick
      test_sequentialize_property;
    tc "sequentialization correct on irgen phi edges" `Quick
      test_sequentialize_on_irgen_edges;
    tc "VM shape golden pin (xsbench)" `Quick test_vm_shape_golden ]
