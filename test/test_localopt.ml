(* Local-optimization pass tests: constant folding, identities, domain
   rules, branch folding, CFG merging, DCE, purity-based call removal,
   devirtualization. *)

open Ozo_ir.Types
module B = Ozo_ir.Builder
module Device = Ozo_vgpu.Device
module Engine = Ozo_vgpu.Engine
module Local_opt = Ozo_opt.Local_opt
open Util

(* Build a kernel computing [emit] into out[0]; optimize; check both the
   structure predicate and that execution still yields [expected]. *)
let fold_case name ?expect_insts emit expected =
  let m =
    kernel_module ~params:[ I64 ] (fun b ps ->
        match ps with
        | [ out ] ->
          let v = emit b in
          B.store b I64 v out
        | _ -> assert false)
  in
  let m', _ = Local_opt.run m in
  check_verifies name m';
  (match expect_insts with
  | Some n ->
    let kf = find_func_exn m' "k" in
    let actual = count_in_func (fun _ -> true) kf in
    if actual > n then
      Alcotest.failf "%s: expected <= %d instructions after folding, got %d:\n%s" name n
        actual
        (Ozo_ir.Printer.func_to_string kf)
  | None -> ());
  let dev = Device.create m' in
  let out = Device.alloc dev 8 in
  (match Device.launch dev ~teams:1 ~threads:1 [ Engine.Ai (Device.ptr out) ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%s: %a" name Device.pp_error e);
  Alcotest.(check int) name expected (i64_array dev out 1).(0)

let test_constant_arith () =
  fold_case "add" ~expect_insts:1 (fun b -> B.add b (B.i64 20) (B.i64 22)) 42;
  fold_case "mul chain" ~expect_insts:1
    (fun b -> B.mul b (B.add b (B.i64 2) (B.i64 3)) (B.i64 4))
    20;
  fold_case "sdiv" ~expect_insts:1 (fun b -> B.sdiv b (B.i64 7) (B.i64 2)) 3;
  fold_case "srem" ~expect_insts:1 (fun b -> B.srem b (B.i64 7) (B.i64 3)) 1;
  fold_case "shift" ~expect_insts:1 (fun b -> B.shl b (B.i64 3) (B.i64 4)) 48;
  fold_case "smin/smax" ~expect_insts:1
    (fun b -> B.smax b (B.smin b (B.i64 5) (B.i64 9)) (B.i64 1))
    5

let test_div_by_zero_not_folded () =
  (* the fold must not hide the runtime fault *)
  let m =
    kernel_module ~params:[ I64 ] (fun b ps ->
        match ps with
        | [ out ] ->
          let v = B.sdiv b (B.i64 1) (B.i64 0) in
          B.store b I64 v out
        | _ -> assert false)
  in
  let m', _ = Local_opt.run m in
  let f = expect_error ~threads:1 m' [ Engine.Ai 0 ] in
  if Fault.is_trap f then Alcotest.fail "expected fault"
  else Alcotest.(check bool) "div fault" true (contains f.Fault.f_msg "division")

let test_identities () =
  fold_case "x+0" ~expect_insts:2
    (fun b ->
      let x = B.thread_id b in
      B.add b x (B.i64 0))
    0;
  fold_case "x*1" ~expect_insts:2
    (fun b ->
      let x = B.thread_id b in
      B.mul b x (B.i64 1))
    0;
  fold_case "x*0" ~expect_insts:1
    (fun b ->
      let x = B.thread_id b in
      B.mul b x (B.i64 0))
    0

let test_icmp_same_reg () =
  fold_case "x==x" ~expect_insts:2
    (fun b ->
      let x = B.thread_id b in
      B.icmp b Eq x x)
    1;
  fold_case "x<x" ~expect_insts:2
    (fun b ->
      let x = B.thread_id b in
      B.icmp b Slt x x)
    0

let test_gpu_domain_rules () =
  (* thread_id < block_dim folds to true without executing a comparison *)
  fold_case "tid<bdim" ~expect_insts:1
    (fun b ->
      let tid = B.thread_id b in
      let bdim = B.block_dim b in
      B.icmp b Slt tid bdim)
    1;
  fold_case "tid>=0" ~expect_insts:1
    (fun b ->
      let tid = B.thread_id b in
      B.icmp b Sge tid (B.i64 0))
    1;
  fold_case "bid<gdim" ~expect_insts:1
    (fun b ->
      let bid = B.block_id b in
      let gdim = B.grid_dim b in
      B.icmp b Slt bid gdim)
    1

let test_branch_folding () =
  (* constant branch: the dead side (containing a trap) is removed *)
  let m =
    kernel_module ~params:[ I64 ] (fun b ps ->
        match ps with
        | [ out ] ->
          B.cond_br b (B.i1 true) "live" "dead";
          B.set_block b "live";
          B.store b I64 (B.i64 7) out;
          B.ret b None;
          B.set_block b "dead";
          B.trap b "should be removed";
          B.ret b None
        | _ -> assert false)
  in
  let m', _ = Local_opt.run m in
  let kf = find_func_exn m' "k" in
  Alcotest.(check int) "single block" 1 (List.length kf.f_blocks);
  Alcotest.(check int) "no trap" 0
    (count_in_func (function Trap _ -> true | _ -> false) kf)

let test_switch_folding () =
  let m =
    kernel_module ~params:[ I64 ] (fun b ps ->
        match ps with
        | [ out ] ->
          B.terminate b (Switch (B.i64 2, [ (1L, "c1"); (2L, "c2") ], "cd"));
          List.iter
            (fun (lbl, v) ->
              B.set_block b lbl;
              B.store b I64 (B.i64 v) out;
              B.ret b None)
            [ ("c1", 10); ("c2", 20); ("cd", 30) ]
        | _ -> assert false)
  in
  let m', _ = Local_opt.run m in
  let kf = find_func_exn m' "k" in
  Alcotest.(check int) "folded to one block" 1 (List.length kf.f_blocks);
  let dev = Device.create m' in
  let out = Device.alloc dev 8 in
  (match Device.launch dev ~teams:1 ~threads:1 [ Engine.Ai (Device.ptr out) ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" Device.pp_error e);
  Alcotest.(check int) "case 2" 20 (i64_array dev out 1).(0)

let test_phi_single_incoming_and_merge () =
  (* after branch folding, the phi collapses and blocks merge; phi labels
     in successors must stay consistent (regression for the merge bug) *)
  let m =
    kernel_module ~params:[ I64 ] (fun b ps ->
        match ps with
        | [ out ] ->
          let tid = B.thread_id b in
          B.cond_br b (B.i1 true) "a" "b";
          B.set_block b "a";
          let va = B.add b tid (B.i64 1) in
          B.br b "join";
          B.set_block b "b";
          let vb = B.add b tid (B.i64 2) in
          B.br b "join";
          B.set_block b "join";
          let p = B.phi b I64 [ ("a", va); ("b", vb) ] in
          (* a loop after the join so the join has interesting phis *)
          ignore
            (B.for_loop b ~lo:(B.i64 0) ~hi:(B.i64 3) ~step:(B.i64 1) ~body:(fun _ -> ()));
          B.store b I64 p out;
          B.ret b None
        | _ -> assert false)
  in
  let m', _ = Local_opt.run m in
  check_verifies "merge+phi" m';
  let dev = Device.create m' in
  let out = Device.alloc dev 8 in
  (match Device.launch dev ~teams:1 ~threads:1 [ Engine.Ai (Device.ptr out) ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" Device.pp_error e);
  Alcotest.(check int) "took true branch" 1 (i64_array dev out 1).(0)

let test_dce_keeps_side_effects () =
  let m =
    kernel_module ~params:[ I64 ] (fun b ps ->
        match ps with
        | [ out ] ->
          (* dead arithmetic *)
          let _ = B.add b (B.i64 1) (B.i64 2) in
          let dead = B.mul b (B.thread_id b) (B.i64 5) in
          ignore dead;
          (* live store *)
          B.store b I64 (B.i64 9) out;
          (* dead load (no side effect) *)
          let _ = B.load b I64 out in
          ()
        | _ -> assert false)
  in
  let m', _ = Local_opt.run m in
  let kf = find_func_exn m' "k" in
  Alcotest.(check int) "store kept" 1 (count_in_func is_store kf);
  Alcotest.(check int) "loads removed" 0 (count_in_func is_load kf);
  Alcotest.(check int) "arith removed" 0
    (count_in_func (function Binop _ -> true | _ -> false) kf)

let test_pure_call_removal () =
  let b = B.create "m" in
  (* pure helper: loads and arithmetic only *)
  (match B.begin_func b ~name:"pure_fn" ~params:[ I64 ] ~ret:(Some I64) () with
  | [ x ] ->
    B.set_block b "entry";
    let v = B.load b I64 x in
    B.ret b (Some (B.add b v (B.i64 1)))
  | _ -> assert false);
  ignore (B.end_func b);
  (* impure helper: stores *)
  (match B.begin_func b ~name:"impure_fn" ~params:[ I64 ] ~ret:None () with
  | [ x ] ->
    B.set_block b "entry";
    B.store b I64 (B.i64 1) x;
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b);
  let ps = B.begin_func b ~name:"k" ~kernel:true ~params:[ I64 ] ~ret:None () in
  B.set_block b "entry";
  (match ps with
  | [ out ] ->
    let _unused = B.call_val b "pure_fn" [ out ] in
    B.call_void b "impure_fn" [ out ];
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b);
  let m = B.finish b in
  let m', _ = Local_opt.run m in
  let kf = find_func_exn m' "k" in
  let calls =
    List.concat_map
      (fun blk ->
        List.filter_map (function Call (_, n, _) -> Some n | _ -> None) blk.b_insts)
      kf.f_blocks
  in
  Alcotest.(check (list string)) "only impure call survives" [ "impure_fn" ] calls

let test_devirtualization () =
  let b = B.create "m" in
  (match B.begin_func b ~name:"target" ~params:[] ~ret:(Some I64) () with
  | [] ->
    B.set_block b "entry";
    B.ret b (Some (B.i64 5))
  | _ -> assert false);
  ignore (B.end_func b);
  let ps = B.begin_func b ~name:"k" ~kernel:true ~params:[ I64 ] ~ret:None () in
  B.set_block b "entry";
  (match ps with
  | [ out ] ->
    let r = B.fresh_reg b in
    B.append b (Call_indirect (Some r, Some I64, Func_addr "target", []));
    B.store b I64 (Reg r) out;
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b);
  let m = B.finish b in
  let m', _ = Local_opt.run m in
  let kf = find_func_exn m' "k" in
  Alcotest.(check int) "no indirect calls" 0
    (count_in_func (function Call_indirect _ -> true | _ -> false) kf);
  Alcotest.(check int) "one direct call" 1
    (count_in_func (function Call (_, "target", _) -> true | _ -> false) kf)

let test_float_folding () =
  let m =
    kernel_module ~params:[ I64 ] (fun b ps ->
        match ps with
        | [ out ] ->
          let v = B.fmul b (B.fadd b (B.f64 1.5) (B.f64 2.5)) (B.f64 2.0) in
          let i = B.unop b Fptosi v in
          B.store b I64 i out
        | _ -> assert false)
  in
  let m', _ = Local_opt.run m in
  let kf = find_func_exn m' "k" in
  Alcotest.(check int) "fully folded" 1 (count_in_func (fun _ -> true) kf);
  let dev = Device.create m' in
  let out = Device.alloc dev 8 in
  (match Device.launch dev ~teams:1 ~threads:1 [ Engine.Ai (Device.ptr out) ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" Device.pp_error e);
  Alcotest.(check int) "8" 8 (i64_array dev out 1).(0)

let suite =
  [ tc "constant arithmetic" test_constant_arith;
    tc "division by zero is preserved" test_div_by_zero_not_folded;
    tc "algebraic identities" test_identities;
    tc "icmp on identical registers" test_icmp_same_reg;
    tc "GPU domain rules (tid < block_dim)" test_gpu_domain_rules;
    tc "branch folding removes dead side" test_branch_folding;
    tc "switch folding" test_switch_folding;
    tc "phi collapse + block merge" test_phi_single_incoming_and_merge;
    tc "DCE keeps side effects" test_dce_keeps_side_effects;
    tc "pure call removal" test_pure_call_removal;
    tc "devirtualization" test_devirtualization;
    tc "float folding" test_float_folding ]
