(* Tests for the resilience layer: supervisor state machine (crash
   capture, retry/backoff, circuit breaker), engine watchdog deadlines,
   the crash-safe journal, campaign kill/resume, and the differential IR
   fuzzer with its shrinker. *)

open Ozo_ir.Types
open Util
module E = Ozo_harness.Experiments
module R = Ozo_harness.Report
module Fault = Ozo_vgpu.Fault
module Supervisor = Ozo_resilience.Supervisor
module Journal = Ozo_resilience.Journal
module Campaign = Ozo_resilience.Campaign
module Irgen = Ozo_resilience.Irgen
module Fuzz = Ozo_resilience.Fuzz

(* a supervisor with injected clock/sleep so nothing waits for real *)
let make_sup ?(opts = Supervisor.default) ?(sleeps = ref []) () =
  let now = ref 0.0 in
  let sup =
    Supervisor.create
      ~clock:(fun () -> !now)
      ~sleep:(fun d ->
        sleeps := d :: !sleeps;
        now := !now +. d)
      opts
  in
  (sup, sleeps)

let ok_row ~proxy ~build =
  { (E.dead_measurement ~proxy ~build (Fault.make Fault.Invalid "unused")) with
    E.r_check = Ok (); r_fault = None }

let failed_row ~proxy ~build kind =
  E.dead_measurement ~proxy ~build (Fault.make kind "synthetic failure")

(* --- supervisor --------------------------------------------------------- *)

let test_crash_capture () =
  let sup, _ = make_sup () in
  let m =
    Supervisor.supervise sup ~proxy:"p" ~build:"b" (fun ~attempt:_ ~watchdog:_ ->
        failwith "compiler exploded")
  in
  (match m.E.r_fault with
  | Some f ->
    Alcotest.(check string) "kind" "internal" (Fault.kind_name f.Fault.f_kind);
    Alcotest.(check bool) "message names the exception" true
      (contains f.Fault.f_msg "compiler exploded")
  | None -> Alcotest.fail "expected a captured fault");
  Alcotest.(check bool) "check failed" true (Result.is_error m.E.r_check);
  Alcotest.(check string) "breaker still closed" "closed" m.E.r_breaker

let test_retry_then_success () =
  let sleeps = ref [] in
  let sup, _ = make_sup ~sleeps () in
  let calls = ref 0 in
  let m =
    Supervisor.supervise sup ~proxy:"p" ~build:"b" (fun ~attempt ~watchdog:_ ->
        incr calls;
        if attempt < 2 then failed_row ~proxy:"p" ~build:"b" Fault.Deadline
        else ok_row ~proxy:"p" ~build:"b")
  in
  Alcotest.(check int) "three attempts" 3 !calls;
  Alcotest.(check int) "two retries recorded" 2 m.E.r_retries;
  Alcotest.(check bool) "deadline flagged" true m.E.r_deadline_hit;
  Alcotest.(check bool) "final check ok" true (Result.is_ok m.E.r_check);
  Alcotest.(check int) "one backoff per retry" 2 (List.length !sleeps);
  List.iter
    (fun d -> Alcotest.(check bool) "positive backoff" true (d > 0.0))
    !sleeps

let test_retry_exhausted () =
  let sup, _ = make_sup () in
  let calls = ref 0 in
  let m =
    Supervisor.supervise sup ~proxy:"p" ~build:"b" (fun ~attempt:_ ~watchdog:_ ->
        incr calls;
        failed_row ~proxy:"p" ~build:"b" Fault.Deadline)
  in
  Alcotest.(check int) "initial + sv_retries attempts"
    (1 + Supervisor.default.Supervisor.sv_retries)
    !calls;
  Alcotest.(check bool) "still failed" true (Result.is_error m.E.r_check)

let test_no_retry_for_permanent_fault () =
  let sup, _ = make_sup () in
  let calls = ref 0 in
  let m =
    Supervisor.supervise sup ~proxy:"p" ~build:"b" (fun ~attempt:_ ~watchdog:_ ->
        incr calls;
        failed_row ~proxy:"p" ~build:"b" Fault.Oob)
  in
  Alcotest.(check int) "no retry for oob" 1 !calls;
  Alcotest.(check int) "zero retries recorded" 0 m.E.r_retries

let test_breaker_trips_and_skips () =
  let opts =
    { Supervisor.default with
      Supervisor.sv_breaker_threshold = 2; sv_retries = 0 }
  in
  let sup, _ = make_sup ~opts () in
  let calls = ref 0 in
  let fail_once () =
    Supervisor.supervise sup ~proxy:"p" ~build:"b" (fun ~attempt:_ ~watchdog:_ ->
        incr calls;
        failed_row ~proxy:"p" ~build:"b" Fault.Oob)
  in
  let m1 = fail_once () in
  Alcotest.(check string) "first failure: closed" "closed" m1.E.r_breaker;
  let m2 = fail_once () in
  Alcotest.(check string) "threshold reached: open" "open" m2.E.r_breaker;
  let m3 = fail_once () in
  Alcotest.(check string) "then skipped" "skipped" m3.E.r_breaker;
  Alcotest.(check int) "task not invoked once open" 2 !calls;
  (match m3.E.r_fault with
  | Some f ->
    Alcotest.(check string) "skip is an internal fault" "internal"
      (Fault.kind_name f.Fault.f_kind)
  | None -> Alcotest.fail "skipped row carries a fault");
  (* a different build is unaffected *)
  let m4 =
    Supervisor.supervise sup ~proxy:"p" ~build:"other"
      (fun ~attempt:_ ~watchdog:_ -> ok_row ~proxy:"p" ~build:"other")
  in
  Alcotest.(check string) "independent key stays closed" "closed" m4.E.r_breaker

let test_breaker_resets_on_success () =
  let opts =
    { Supervisor.default with
      Supervisor.sv_breaker_threshold = 2; sv_retries = 0 }
  in
  let sup, _ = make_sup ~opts () in
  let run row =
    Supervisor.supervise sup ~proxy:"p" ~build:"b" (fun ~attempt:_ ~watchdog:_ ->
        row)
  in
  ignore (run (failed_row ~proxy:"p" ~build:"b" Fault.Oob));
  ignore (run (ok_row ~proxy:"p" ~build:"b"));
  let m = run (failed_row ~proxy:"p" ~build:"b" Fault.Oob) in
  Alcotest.(check string) "success reset the count" "closed" m.E.r_breaker

(* --- watchdog ----------------------------------------------------------- *)

(* a kernel that loops far past the watchdog poll interval *)
let long_loop_module () =
  kernel_module ~name:"spin" ~params:[ Ptr Global ] (fun b ps ->
      let out = List.hd ps in
      ignore
        (B.for_loop b ~lo:(B.i64 0) ~hi:(B.i64 100_000) ~step:(B.i64 1)
           ~body:(fun iv -> B.store b I64 iv out)))

let test_watchdog_deadline () =
  let m = long_loop_module () in
  let dev = Device.create m in
  let buf = Device.alloc dev 8 in
  let opts =
    { Device.Launch_opts.default with
      Device.Launch_opts.watchdog = Some (fun () -> true) }
  in
  match Device.launch ~opts dev ~teams:1 ~threads:32 [ Engine.Ai (Device.ptr buf) ] with
  | Ok _ -> Alcotest.fail "expected a deadline fault"
  | Error f ->
    Alcotest.(check string) "deadline kind" "deadline"
      (Fault.kind_name f.Fault.f_kind)

let test_watchdog_quiet_when_unexpired () =
  let m = long_loop_module () in
  let dev = Device.create m in
  let buf = Device.alloc dev 8 in
  let opts =
    { Device.Launch_opts.default with
      Device.Launch_opts.watchdog = Some (fun () -> false) }
  in
  match Device.launch ~opts dev ~teams:1 ~threads:32 [ Engine.Ai (Device.ptr buf) ] with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "unexpected fault: %a" Fault.pp f

(* --- journal ------------------------------------------------------------ *)

let sample_fault () =
  let ctx = Fault.make_ctx () in
  Fault.set_site ctx ~fn:"k" ~blk:"entry" ~idx:3;
  Fault.set_strand ctx ~team:1 ~warp:0 ~mask:(Array.make 32 true);
  Fault.annotate ctx
    (Fault.make
       ~access:{ Fault.a_ptr = 0xbeef; a_space = "global"; a_offset = 16; a_bytes = 8 }
       ~threads:[ 3; 7 ] Fault.Oob "access out of bounds")

let test_journal_roundtrip () =
  let path = Filename.temp_file "ozo_journal" ".jsonl" in
  let m0 = ok_row ~proxy:"px" ~build:"b0" in
  let m0 = { m0 with E.r_cycles = 1234.5; r_regs = 17; r_occupancy = 0.875 } in
  let m1 =
    { (E.dead_measurement ~fallbacks:[ "nightly"; "O0" ] ~proxy:"px" ~build:"b1"
         (sample_fault ()))
      with
      E.r_retries = 2; r_deadline_hit = true; r_breaker = "open" }
  in
  let w = Journal.start ~path ~fingerprint:"fp-test" in
  Journal.append w ~seq:0 m0;
  Journal.append w ~seq:1 m1;
  Journal.close w;
  (match Journal.load ~path with
  | Error e -> Alcotest.failf "load: %s" e
  | Ok (fp, entries) ->
    Alcotest.(check string) "fingerprint" "fp-test" fp;
    Alcotest.(check int) "two entries" 2 (List.length entries);
    let r0 = (List.nth entries 0).Journal.e_m in
    let r1 = (List.nth entries 1).Journal.e_m in
    Alcotest.(check string) "csv row 0 identical" (Fmt.str "%a" R.pp_csv m0)
      (Fmt.str "%a" R.pp_csv r0);
    Alcotest.(check string) "csv row 1 identical" (Fmt.str "%a" R.pp_csv m1)
      (Fmt.str "%a" R.pp_csv r1);
    (match r1.E.r_fault with
    | Some f ->
      Alcotest.(check string) "fault line survives" (Fault.to_line (sample_fault ()))
        (Fault.to_line f)
    | None -> Alcotest.fail "fault lost"));
  Sys.remove path

let test_journal_tolerates_torn_line () =
  let path = Filename.temp_file "ozo_journal" ".jsonl" in
  let w = Journal.start ~path ~fingerprint:"fp" in
  Journal.append w ~seq:0 (ok_row ~proxy:"px" ~build:"b0");
  Journal.close w;
  (* simulate a crash mid-write: a truncated JSON line at the end *)
  let oc = open_out_gen [ Open_wronly; Open_append ] 0o644 path in
  output_string oc "{\"seq\":1,\"m\":{\"proxy\":\"px\",\"bui";
  close_out oc;
  (match Journal.load ~path with
  | Error e -> Alcotest.failf "torn line should be tolerated: %s" e
  | Ok (_, entries) -> Alcotest.(check int) "intact rows kept" 1 (List.length entries));
  Sys.remove path

(* --- campaign kill / resume -------------------------------------------- *)

let campaign_opts journal resume abort_after =
  { Campaign.default with
    Campaign.co_proxies = [ "xsbench" ]; co_small = true; co_journal = journal;
    co_resume = resume; co_abort_after = abort_after }

let csv_of ms =
  Fmt.str "%a%a" R.pp_csv_header () (fun ppf -> List.iter (R.pp_csv ppf)) ms

let test_campaign_resume_identical () =
  let path = Filename.temp_file "ozo_campaign" ".jsonl" in
  (* killed mid-run after 3 fresh rows *)
  (match Campaign.run (campaign_opts (Some path) false (Some 3)) with
  | _ -> Alcotest.fail "expected the abort hook to fire"
  | exception Campaign.Aborted _ -> ());
  (match Journal.load ~path with
  | Ok (_, entries) -> Alcotest.(check int) "three journaled rows" 3 (List.length entries)
  | Error e -> Alcotest.failf "journal after abort: %s" e);
  (* resumed run completes the remaining rows *)
  let resumed = Campaign.run (campaign_opts (Some path) true None) in
  (* uninterrupted reference run *)
  let full = Campaign.run (campaign_opts None false None) in
  Alcotest.(check int) "row count" (List.length full) (List.length resumed);
  Alcotest.(check string) "byte-identical CSV" (csv_of full) (csv_of resumed);
  Sys.remove path

let test_campaign_resume_rejects_other_fingerprint () =
  let path = Filename.temp_file "ozo_campaign" ".jsonl" in
  let w = Journal.start ~path ~fingerprint:"someone-else" in
  Journal.close w;
  (match Campaign.run (campaign_opts (Some path) true None) with
  | _ -> Alcotest.fail "expected a fingerprint mismatch"
  | exception E.Harness_error msg ->
    Alcotest.(check bool) "names the mismatch" true (contains msg "fingerprint"));
  Sys.remove path

(* --- fuzzer ------------------------------------------------------------- *)

let test_irgen_always_verifies () =
  for seed = 1 to 50 do
    let m = Irgen.generate ~seed in
    check_verifies (Printf.sprintf "irgen seed %d" seed) m
  done

let test_irgen_deterministic () =
  let a = Irgen.generate ~seed:7 and b = Irgen.generate ~seed:7 in
  Alcotest.(check bool) "same seed, same module" true
    (Ozo_ir.Types.equal_modul a b)

let test_fuzz_clean_on_real_pipeline () =
  let r = Fuzz.run ~seeds:6 ~base_seed:100 () in
  Alcotest.(check int) "no differential failures" 0
    (List.length r.Fuzz.fz_failures)

let test_fuzz_finds_and_shrinks_planted_miscompile () =
  let r = Fuzz.run ~plant:Fuzz.flip_first_add ~seeds:2 ~base_seed:1 () in
  Alcotest.(check bool) "planted miscompile found" true (r.Fuzz.fz_failures <> []);
  List.iter
    (fun fl ->
      Alcotest.(check bool)
        (Printf.sprintf "seed %d shrunk to <= 10 insts (got %d)" fl.Fuzz.fl_seed
           fl.Fuzz.fl_insts_after)
        true
        (fl.Fuzz.fl_insts_after <= 10);
      Alcotest.(check bool) "shrinking made progress" true
        (fl.Fuzz.fl_insts_after < fl.Fuzz.fl_insts_before);
      check_verifies "shrunk module" fl.Fuzz.fl_module;
      (* the minimized module still reproduces the exact signature *)
      Alcotest.(check (option string)) "signature stable"
        (Some fl.Fuzz.fl_signature)
        (Fuzz.signature_of ~plant:Fuzz.flip_first_add fl.Fuzz.fl_module))
    r.Fuzz.fz_failures

let suite =
  [ tc "supervisor: host crash becomes an internal fault" test_crash_capture;
    tc "supervisor: transient fault retries then succeeds" test_retry_then_success;
    tc "supervisor: retries are bounded" test_retry_exhausted;
    tc "supervisor: permanent faults are not retried" test_no_retry_for_permanent_fault;
    tc "supervisor: breaker trips open and skips" test_breaker_trips_and_skips;
    tc "supervisor: breaker resets on success" test_breaker_resets_on_success;
    tc "watchdog: expired deadline faults the launch" test_watchdog_deadline;
    tc "watchdog: unexpired deadline is invisible" test_watchdog_quiet_when_unexpired;
    tc "journal: measurement roundtrip is csv-exact" test_journal_roundtrip;
    tc "journal: torn final line is tolerated" test_journal_tolerates_torn_line;
    tc "campaign: kill + resume produces identical csv" test_campaign_resume_identical;
    tc "campaign: resume refuses a foreign journal" test_campaign_resume_rejects_other_fingerprint;
    tc "irgen: generated modules always verify" test_irgen_always_verifies;
    tc "irgen: generation is deterministic" test_irgen_deterministic;
    tc "fuzz: clean run on the real pipeline" test_fuzz_clean_on_real_pipeline;
    tc "fuzz: planted miscompile is found and shrunk" test_fuzz_finds_and_shrinks_planted_miscompile ]
