(* Command-line driver: compile, run, inspect and measure the proxy
   applications under any build configuration.

     ozo_cli list
     ozo_cli run xsbench --build new-rt [--debug] [--small] [--sanitize]
                         [--inject corrupt-load@k:3] [--seed 7] [--profile]
     ozo_cli inspect gridmini --build new-rt [--full-ir]
     ozo_cli remarks rsbench
     ozo_cli trace testsnap [--out testsnap.trace.json] [--check]
     ozo_cli ablate gridmini
     ozo_cli sanitize xsbench [--small]
     ozo_cli campaign rsbench [--inject skip-barrier] [--seed 42] [--profile]  *)

module C = Ozo_core.Codesign
module E = Ozo_harness.Experiments
module R = Ozo_harness.Report
module Proxy = Ozo_proxies.Proxy
module Registry = Ozo_proxies.Registry
module Trace = Ozo_obs.Trace
module Chrome = Ozo_obs.Chrome_trace
module Json = Ozo_obs.Json
module Machine = Ozo_backend.Machine
module Tune = Ozo_tune.Tune
module Matrix = Ozo_tune.Matrix
open Cmdliner

(* the harness owns the canonical name → build mapping *)
let build_of_string p name =
  Result.map_error (fun e -> `Msg e) (E.build_of_name p name)

let proxy_arg =
  let doc = "Proxy application (xsbench, rsbench, gridmini, testsnap, minifmm)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROXY" ~doc)

let build_arg =
  let doc = "Build configuration: old-rt, new-rt-nightly, new-rt-no-assumptions, new-rt, cuda." in
  Arg.(value & opt string "new-rt" & info [ "build"; "b" ] ~docv:"BUILD" ~doc)

let small_arg =
  let doc = "Use the reduced test-size workload." in
  Arg.(value & flag & info [ "small" ] ~doc)

let debug_arg =
  let doc = "Compile the runtime in debug mode and verify assumptions at runtime." in
  Arg.(value & flag & info [ "debug" ] ~doc)

let sanitize_arg =
  let doc = "Run under the SIMT sanitizer (bounds, init, race, barrier checks)." in
  Arg.(value & flag & info [ "sanitize" ] ~doc)

let inject_arg =
  let doc =
    "Inject a deterministic fault: ACTION[@FUNC][:NTH] with ACTION one of \
     corrupt-load, drop-store, skip-barrier, trunc-shared, violate-assume. \
     NTH (the firing occurrence) is drawn from --seed when omitted."
  in
  Arg.(value & opt (some string) None & info [ "inject" ] ~docv:"SPEC" ~doc)

let seed_arg =
  let doc = "PRNG seed for fault-injection campaigns." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc)

let profile_arg =
  let doc = "Record a trace with the per-block hot-spot profile and print it." in
  Arg.(value & flag & info [ "profile" ] ~doc)

let domains_arg =
  let doc =
    "Shard each launch's team loop over N OCaml domains (capped at the team \
     count). Results are bit-identical to --domains 1; only wall-clock changes."
  in
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc)

let exec_arg =
  let doc =
    "Execution path: ir (the decoded-IR interpreter) or vm (threaded code \
     compiled from the register-allocated VM form). Results are bit-identical \
     on both paths; only wall-clock changes."
  in
  Arg.(value & opt string "ir" & info [ "exec" ] ~docv:"PATH" ~doc)

let parse_exec s =
  match Ozo_vgpu.Engine.exec_of_name s with
  | Some e -> Ok e
  | None -> Error (`Msg ("unknown exec path " ^ s ^ " (ir|vm)"))

(* one converter for every subcommand that takes a machine descriptor *)
let machine_names_doc = String.concat "|" Machine.names

let parse_machine s =
  match Machine.find s with
  | Some m -> Ok m
  | None -> Error (`Msg ("unknown machine " ^ s ^ " (" ^ machine_names_doc ^ ")"))

let machine_arg =
  let doc =
    "Machine descriptor (" ^ machine_names_doc
    ^ "): wavefront width, SM count and occupancy limits the compile, \
       simulation and cost model run against."
  in
  Arg.(value & opt string "vgpu" & info [ "machine" ] ~docv:"MACHINE" ~doc)

let parse_inject seed = function
  | None -> Ok None
  | Some s -> (
    match Ozo_vgpu.Faultinject.parse ~seed s with
    | Ok spec -> Ok (Some spec)
    | Error e -> Error (`Msg e))

let find_proxy small name =
  let pool = if small then Registry.all_small () else Registry.all () in
  match List.find_opt (fun p -> p.Proxy.p_name = name) pool with
  | Some p -> Ok p
  | None -> Error (`Msg ("unknown proxy " ^ name))

let handle = function
  | Ok () -> 0
  | Error (`Msg m) ->
    Fmt.epr "error: %s@." m;
    1

(* --- list --------------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun p ->
        Fmt.pr "%-10s teams=%-3d threads=%-3d  %s@." p.Proxy.p_name p.Proxy.p_teams
          p.Proxy.p_threads p.Proxy.p_descr)
      (Registry.all ());
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List the available proxy applications")
    Term.(const run $ const ())

(* --- run ---------------------------------------------------------------- *)

let run_cmd =
  let run name build small debug sanitize inject seed profile domains exec
      machine =
    handle
      (let ( let* ) = Result.bind in
       let* p = find_proxy small name in
       let* b = build_of_string p build in
       let* inject = parse_inject seed inject in
       let* exec = parse_exec exec in
       let* machine = parse_machine machine in
       let b = if debug then C.with_debug b else b in
       let trace = if profile then Trace.make () else Trace.null in
       let m =
         E.measure ~check_assumes:debug ~sanitize ?inject ~trace ~profile
           ~domains ~exec ~machine p b
       in
       Fmt.pr "%a%a" R.pp_fig11 (name, [ m ]) R.pp_csv_header ();
       Fmt.pr "%a" R.pp_csv m;
       if profile then begin
         Fmt.pr "%a" R.pp_phases (name, [ m ]);
         (match m.E.r_cache with
         | Some (h, mi, inv) ->
           let total = h + mi in
           Fmt.pr "analysis cache: %d hits, %d misses, %d invalidations (%.0f%% hit rate)@."
             h mi inv
             (if total = 0 then 0.0
              else 100.0 *. float_of_int h /. float_of_int total)
         | None -> ());
         Fmt.pr "%a" R.pp_hotspots m
       end;
       match m.E.r_check with
       | Ok () ->
         Fmt.pr "result check: %s@." (R.status_str m);
         Ok ()
       | Error e -> Error (`Msg ("result check failed: " ^ e)))
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Compile and run one proxy under one build configuration")
    Term.(const run $ proxy_arg $ build_arg $ small_arg $ debug_arg $ sanitize_arg
          $ inject_arg $ seed_arg $ profile_arg $ domains_arg $ exec_arg
          $ machine_arg)

(* --- inspect ------------------------------------------------------------ *)

let inspect_cmd =
  let full_ir =
    Arg.(value & flag & info [ "full-ir" ] ~doc:"Print the whole module, not just the kernel.")
  in
  let run name build small full =
    handle
      (let ( let* ) = Result.bind in
       let* p = find_proxy small name in
       let* b = build_of_string p build in
       let c = C.compile b (Proxy.kernel_for p b.C.b_abi) in
       Fmt.pr "build: %s   mode: %s   regs: %d   smem: %dB@.@." b.C.b_label
         (match c.C.c_mode with Ozo_opt.Spmdize.Spmd -> "SPMD" | _ -> "generic")
         c.C.c_regs c.C.c_smem;
       if full then Fmt.pr "%a@." Ozo_ir.Printer.pp_module c.C.c_module
       else
         Fmt.pr "%a@." Ozo_ir.Printer.pp_func
           (Ozo_ir.Types.find_func_exn c.C.c_module c.C.c_kernel);
       Ok ())
  in
  Cmd.v
    (Cmd.info "inspect" ~doc:"Print the optimized IR of a proxy kernel")
    Term.(const run $ proxy_arg $ build_arg $ small_arg $ full_ir)

(* --- remarks ------------------------------------------------------------- *)

let remarks_cmd =
  let run name build small =
    handle
      (let ( let* ) = Result.bind in
       let* p = find_proxy small name in
       let* b = build_of_string p build in
       let c = C.compile b (Proxy.kernel_for p b.C.b_abi) in
       List.iter (fun r -> Fmt.pr "%a@." Ozo_opt.Remarks.pp r) c.C.c_remarks;
       Ok ())
  in
  Cmd.v
    (Cmd.info "remarks"
       ~doc:"Show optimization remarks (-Rpass=openmp-opt analog) for a proxy build")
    Term.(const run $ proxy_arg $ build_arg $ small_arg)

(* --- trace --------------------------------------------------------------- *)

let trace_cmd =
  let out_arg =
    let doc = "Output file for the Chrome trace JSON (default PROXY.trace.json)." in
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc)
  in
  let check_arg =
    let doc =
      "Validate the emitted JSON: schema, pass spans nested under the compile \
       span, phase spans under the launch span, hot-spot events present."
    in
    Arg.(value & flag & info [ "check" ] ~doc)
  in
  (* structural containment checks over the flat event list; nesting in
     the Chrome format is conveyed by time ranges on one tid *)
  let check_trace s =
    let ( let* ) = Result.bind in
    let* events = Chrome.validate s in
    let require name =
      match Chrome.spans_by_name events name with
      | [] -> Error ("trace has no \"" ^ name ^ "\" span")
      | sp :: _ -> Ok sp
    in
    let* compile = require "compile" in
    let* launch = require "launch" in
    let* _ = require "decode" in
    let* _ = require "execute" in
    let* _ = require "readback" in
    let prefixed pre ev =
      match Chrome.ev_name ev with
      | Some n -> String.length n >= String.length pre && String.sub n 0 (String.length pre) = pre
      | None -> false
    in
    let passes = List.filter (fun ev -> prefixed "pass:" ev && Chrome.ev_ph ev = Some "X") events in
    let* () = if passes = [] then Error "trace has no pass spans" else Ok () in
    let* () =
      if List.for_all (Chrome.contains compile) passes then Ok ()
      else Error "pass spans are not nested under the compile span"
    in
    let* () =
      let phases = List.concat_map (Chrome.spans_by_name events) [ "decode"; "execute"; "readback" ] in
      if List.for_all (Chrome.contains launch) phases then Ok ()
      else Error "phase spans are not nested under the launch span"
    in
    let hots = List.filter (prefixed "hot:") events in
    let* () = if hots = [] then Error "trace has no hot-spot events" else Ok () in
    (* the pipeline must have reported its analysis-cache counters, and a
       traced compile of a real proxy must have produced cache hits *)
    let* cache_hits =
      match
        List.find_opt
          (fun ev ->
            Chrome.ev_ph ev = Some "i" && Chrome.ev_name ev = Some "analysis-cache")
          events
      with
      | None -> Error "trace has no analysis-cache event"
      | Some ev -> (
        match
          Option.bind (Json.member "args" ev) (Json.member "hits")
          |> Fun.flip Option.bind Json.to_number
        with
        | None -> Error "analysis-cache event lacks a numeric hits arg"
        | Some h when h <= 0.0 -> Error "analysis-cache event reports zero hits"
        | Some h -> Ok (int_of_float h))
    in
    Ok (List.length events, List.length passes, List.length hots, cache_hits)
  in
  let run name build small out check =
    handle
      (let ( let* ) = Result.bind in
       let* p = find_proxy small name in
       let* b = build_of_string p build in
       let trace = Trace.make () in
       let m = E.measure ~trace ~profile:true p b in
       let path = match out with Some f -> f | None -> name ^ ".trace.json" in
       Chrome.write trace path;
       Fmt.pr "%a@." Ozo_obs.Profile.pp_report trace;
       Fmt.pr "wrote %s (%d spans)@." path (Trace.count_spans trace);
       let* () =
         match m.E.r_check with
         | Ok () -> Ok ()
         | Error e -> Error (`Msg ("result check failed: " ^ e))
       in
       if not check then Ok ()
       else
         let ic = open_in path in
         let len = in_channel_length ic in
         let s = really_input_string ic len in
         close_in ic;
         match check_trace s with
         | Ok (nev, npass, nhot, nhits) ->
           Fmt.pr
             "trace check: ok (%d events, %d pass spans, %d hot spots, %d analysis \
              cache hits)@."
             nev npass nhot nhits;
           Ok ()
         | Error e -> Error (`Msg ("trace check failed: " ^ e)))
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run one proxy with tracing and hot-spot profiling, write a Chrome \
          trace-event JSON (chrome://tracing / Perfetto) and print the profile")
    Term.(const run $ proxy_arg $ build_arg $ small_arg $ out_arg $ check_arg)

(* --- regs ---------------------------------------------------------------- *)

let regs_cmd =
  let csv_arg =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit machine-readable CSV rows.")
  in
  let machine_arg =
    let doc =
      "Machine descriptor for the occupancy model (" ^ machine_names_doc ^ ")."
    in
    Arg.(value & opt string "vgpu" & info [ "machine"; "m" ] ~docv:"MACHINE" ~doc)
  in
  let max_regs_arg =
    let doc =
      "Override the per-thread register budget (forces spilling below the \
       kernel's natural pressure)."
    in
    Arg.(value & opt (some int) None & info [ "max-regs" ] ~docv:"N" ~doc)
  in
  let run name small csv machine max_regs =
    handle
      (let ( let* ) = Result.bind in
       let* p = find_proxy small name in
       let* machine = parse_machine machine in
       let machine =
         match max_regs with
         | Some n -> Ozo_backend.Machine.with_reg_budget n machine
         | None -> machine
       in
       let builds = E.builds_for p in
       let rows =
         List.map
           (fun b ->
             let c = C.compile ~machine b (Proxy.kernel_for p b.C.b_abi) in
             let hw = C.hw_threads c ~threads:p.Proxy.p_threads in
             let occ =
               Ozo_backend.Machine.occupancy machine ~threads_per_team:hw
                 ~regs_per_thread:c.C.c_regs ~shared_per_team:c.C.c_smem
             in
             (b, c, occ))
           builds
       in
       if csv then begin
         Fmt.pr
           "proxy,build,machine,regs,smem,smem_runtime,smem_globalized,occupancy,\
            limiter,teams_per_sm,spilled,spill_loads,spill_stores,frame_bytes@.";
         List.iter
           (fun (b, c, occ) ->
             let l = c.C.c_lower in
             let module M = Ozo_backend.Machine in
             let module L = Ozo_backend.Lower in
             let module S = Ozo_backend.Smem in
             Fmt.pr "%s,%s,%s,%d,%d,%d,%d,%.3f,%s,%d,%d,%d,%d,%d@." p.Proxy.p_name
               b.C.b_label machine.M.mc_name c.C.c_regs c.C.c_smem
               l.L.lw_layout.S.ly_runtime l.L.lw_layout.S.ly_globalized
               occ.M.occ_fraction
               (M.limiter_name occ.M.occ_limiter)
               occ.M.occ_teams_per_sm l.L.lw_spilled_regs l.L.lw_spill_loads
               l.L.lw_spill_stores l.L.lw_frame_bytes)
           rows
       end
       else begin
         Fmt.pr "%s — per-kernel resources on %s (budget %d regs/thread)@."
           p.Proxy.p_name machine.Ozo_backend.Machine.mc_name
           machine.Ozo_backend.Machine.mc_max_regs_per_thread;
         Fmt.pr "  %-26s %6s %9s %18s %7s %7s %8s %8s@." "build" "#regs" "smem(B)"
           "smem(rt/glob)" "occup" "spilled" "ld/st" "frame(B)";
         List.iter
           (fun (b, c, occ) ->
             let l = c.C.c_lower in
             let module M = Ozo_backend.Machine in
             let module L = Ozo_backend.Lower in
             let module S = Ozo_backend.Smem in
             Fmt.pr "  %-26s %6d %9d %12d/%-5d %6.2f* %7d %4d/%-4d %8d@."
               b.C.b_label c.C.c_regs c.C.c_smem l.L.lw_layout.S.ly_runtime
               l.L.lw_layout.S.ly_globalized occ.M.occ_fraction
               l.L.lw_spilled_regs l.L.lw_spill_loads l.L.lw_spill_stores
               l.L.lw_frame_bytes;
             Fmt.pr "    %a@." M.pp_occupancy occ)
           rows
       end;
       Ok ())
  in
  Cmd.v
    (Cmd.info "regs"
       ~doc:
         "Show the backend's per-kernel resource table (registers, shared \
          memory, occupancy, spills) for every build configuration")
    Term.(const run $ proxy_arg $ small_arg $ csv_arg $ machine_arg $ max_regs_arg)

(* --- vm ------------------------------------------------------------------ *)

let vm_cmd =
  let csv_arg =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit machine-readable CSV rows.")
  in
  let machine_arg =
    let doc =
      "Machine descriptor for the register budget (" ^ machine_names_doc ^ ")."
    in
    Arg.(value & opt string "vgpu" & info [ "machine"; "m" ] ~docv:"MACHINE" ~doc)
  in
  let max_regs_arg =
    let doc =
      "Override the per-thread register budget (forces spilling below the \
       kernel's natural pressure)."
    in
    Arg.(value & opt (some int) None & info [ "max-regs" ] ~docv:"N" ~doc)
  in
  let listing_arg =
    Arg.(value & flag
         & info [ "listing" ]
             ~doc:"Also print the full VM instruction stream per function.")
  in
  let run name build small csv machine max_regs listing =
    handle
      (let ( let* ) = Result.bind in
       let* p = find_proxy small name in
       let* b = build_of_string p build in
       let* machine = parse_machine machine in
       let machine =
         match max_regs with
         | Some n -> Ozo_backend.Machine.with_reg_budget n machine
         | None -> machine
       in
       let c = C.compile ~machine b (Proxy.kernel_for p b.C.b_abi) in
       let module L = Ozo_backend.Lower in
       let module V = Ozo_backend.Vm in
       let l = c.C.c_lower in
       let plan_of fn = List.assoc_opt fn l.L.lw_plan in
       (* per-function rows over the VM program the resource model prices;
          "plan" says whether the threaded executor runs this function
          renamed (spill-free) or falls back to interpretation *)
       let rows =
         List.map (fun fl -> (fl, V.func_stats fl.L.fl_vm)) l.L.lw_funcs
       in
       if csv then begin
         Fmt.pr
           "proxy,build,function,blocks,edges,ops,moves,reloads,spills,regs,\
            frame_bytes,plan,plan_regs@.";
         List.iter
           (fun ((fl : L.func_lowering), (s : V.vstats)) ->
             let vf = fl.L.fl_vm in
             Fmt.pr "%s,%s,%s,%d,%d,%d,%d,%d,%d,%d,%d,%s,%d@." p.Proxy.p_name
               b.C.b_label fl.L.fl_func s.V.vs_blocks s.V.vs_edges s.V.vs_ops
               s.V.vs_moves s.V.vs_reloads s.V.vs_spills vf.V.vf_regs_used
               vf.V.vf_frame_bytes
               (match plan_of fl.L.fl_func with Some _ -> "vm" | None -> "ir")
               (match plan_of fl.L.fl_func with
               | Some pl -> pl.Ozo_vgpu.Engine.rp_nregs
               | None -> 0))
           rows
       end
       else begin
         Fmt.pr "%s / %s — VM form on %s (budget %d regs/thread)@."
           p.Proxy.p_name b.C.b_label machine.Ozo_backend.Machine.mc_name
           machine.Ozo_backend.Machine.mc_max_regs_per_thread;
         Fmt.pr "  %-24s %6s %5s %6s %6s %7s %6s %5s %8s %5s@." "function"
           "blocks" "edges" "ops" "moves" "reloads" "spills" "regs" "frame(B)"
           "exec";
         List.iter
           (fun ((fl : L.func_lowering), (s : V.vstats)) ->
             let vf = fl.L.fl_vm in
             Fmt.pr "  %-24s %6d %5d %6d %6d %7d %6d %5d %8d %5s@." fl.L.fl_func
               s.V.vs_blocks s.V.vs_edges s.V.vs_ops s.V.vs_moves s.V.vs_reloads
               s.V.vs_spills vf.V.vf_regs_used vf.V.vf_frame_bytes
               (match plan_of fl.L.fl_func with Some _ -> "vm" | None -> "ir"))
           rows;
         if listing then
           List.iter
             (fun ((fl : L.func_lowering), _) ->
               Fmt.pr "@.%a@." V.pp_vfunc fl.L.fl_vm)
             rows
       end;
       Ok ())
  in
  Cmd.v
    (Cmd.info "vm"
       ~doc:
         "Dump the register-allocated VM form the threaded executor runs: \
          per-function instruction mix (ops/moves/reloads/spills), resource \
          numbers and whether the threaded path executes it renamed (vm) or \
          interprets it (ir); --listing prints the full stream")
    Term.(const run $ proxy_arg $ build_arg $ small_arg $ csv_arg $ machine_arg
          $ max_regs_arg $ listing_arg)

(* --- ablate -------------------------------------------------------------- *)

let ablate_cmd =
  let run name small =
    handle
      (let ( let* ) = Result.bind in
       let* p = find_proxy small name in
       Fmt.pr "%a" R.pp_ablation (name, E.ablation p);
       Ok ())
  in
  Cmd.v
    (Cmd.info "ablate" ~doc:"Run the per-optimization ablation for one proxy (Fig. 13)")
    Term.(const run $ proxy_arg $ small_arg)

(* --- sanitize ------------------------------------------------------------ *)

let sanitize_cmd =
  let run name small =
    handle
      (let ( let* ) = Result.bind in
       let* p = find_proxy small name in
       let ms = E.campaign ~check_assumes:true ~sanitize:true p in
       Fmt.pr "%a" R.pp_fig11 (name ^ " [sanitized]", ms);
       let dirty = List.filter (fun m -> m.E.r_fault <> None) ms in
       if dirty = [] then begin
         Fmt.pr "sanitizer: clean (%d builds)@." (List.length ms);
         Ok ()
       end
       else
         Error
           (`Msg
             (Fmt.str "sanitizer found %d issue(s):@.%a" (List.length dirty)
                R.pp_faults dirty)))
  in
  Cmd.v
    (Cmd.info "sanitize"
       ~doc:
         "Run one proxy under every build with the SIMT sanitizer armed; exit \
          non-zero on any finding")
    Term.(const run $ proxy_arg $ small_arg)

(* --- campaign ------------------------------------------------------------- *)

module Supervisor = Ozo_resilience.Supervisor
module Campaign = Ozo_resilience.Campaign
module Fuzz = Ozo_resilience.Fuzz

let campaign_cmd =
  let journal_arg =
    let doc =
      "Append every completed row to this crash-safe JSONL journal as the \
       campaign runs."
    in
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)
  in
  let resume_arg =
    let doc =
      "Resume from the journal given by --journal: completed rows are replayed \
       verbatim and measurement restarts at the first missing row."
    in
    Arg.(value & flag & info [ "resume" ] ~doc)
  in
  let repeat_arg =
    let doc = "Run the full build sweep N times (exercises the circuit breaker)." in
    Arg.(value & opt int 1 & info [ "repeat" ] ~docv:"N" ~doc)
  in
  let retries_arg =
    let doc = "Supervisor retries per row for transient faults." in
    Arg.(value & opt int 2 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let deadline_arg =
    let doc =
      "Per-launch wall-clock watchdog deadline in seconds (0 disables)."
    in
    Arg.(value & opt float 30.0 & info [ "deadline" ] ~docv:"SECONDS" ~doc)
  in
  let abort_after_arg =
    let doc =
      "Testing hook: abort the campaign (exit non-zero) after N freshly \
       measured rows, simulating a mid-run crash."
    in
    Arg.(value & opt (some int) None & info [ "abort-after" ] ~docv:"N" ~doc)
  in
  let run name small sanitize inject seed profile journal resume repeat retries
      deadline abort_after domains exec machine =
    handle
      (let ( let* ) = Result.bind in
       let* _ = find_proxy small name in
       let* inject = parse_inject seed inject in
       let* exec = parse_exec exec in
       let* machine = parse_machine machine in
       (match inject with
       | Some spec ->
         Fmt.pr "injecting: %s (seed %d)@." (Ozo_vgpu.Faultinject.spec_to_string spec) seed
       | None -> ());
       let trace = if profile then Trace.make () else Trace.null in
       let opts =
         { Campaign.default with
           Campaign.co_proxies = [ name ]; co_small = small;
           co_repeat = repeat; co_sanitize = sanitize; co_inject = inject;
           co_journal = journal; co_resume = resume;
           co_abort_after = abort_after; co_domains = domains; co_exec = exec;
           co_machine = machine;
           co_sup =
             { Supervisor.default with
               Supervisor.sv_retries = retries; sv_deadline_s = deadline;
               sv_seed = seed;
               (* with injection armed, every fault kind is worth one
                  clean retry — injection fires only on attempt 0 *)
               sv_transient =
                 (if inject <> None then Ozo_vgpu.Fault.all_kinds
                  else Supervisor.default.Supervisor.sv_transient) } }
       in
       let* ms =
         match Campaign.run ~trace opts with
         | ms -> Ok ms
         | exception Campaign.Aborted m -> Error (`Msg m)
         | exception E.Harness_error m -> Error (`Msg m)
       in
       Fmt.pr "%a%a" R.pp_fig10 (name, ms) R.pp_fig11 (name, ms);
       if profile then Fmt.pr "%a" R.pp_phases (name, ms);
       Fmt.pr "%a" R.pp_resilience (name, ms);
       Fmt.pr "%a" R.pp_csv_header ();
       List.iter (Fmt.pr "%a" R.pp_csv) ms;
       let dead = List.filter (fun m -> Result.is_error m.E.r_check) ms in
       if dead = [] then Ok ()
       else
         Error
           (`Msg
             (Fmt.str "campaign finished with %d dead row(s):@.%a"
                (List.length dead) R.pp_faults dead)))
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Measure one proxy across all standard builds under the resilience \
          supervisor (watchdog, retry, circuit breaker), degrading gracefully \
          on faults (optionally injected); exit 0 iff every row ends with a \
          valid check")
    Term.(const run $ proxy_arg $ small_arg $ sanitize_arg $ inject_arg $ seed_arg
          $ profile_arg $ journal_arg $ resume_arg $ repeat_arg $ retries_arg
          $ deadline_arg $ abort_after_arg $ domains_arg $ exec_arg
          $ machine_arg)

(* --- serve ----------------------------------------------------------------- *)

module Service = Ozo_serve.Service
module Serve_cache = Ozo_serve.Cache

let serve_cmd =
  let requests_arg =
    let doc =
      "Request file: one \"PROXY BUILD\" per line ('#' comments, blank lines \
       skipped), drained in order through the compile cache."
    in
    Arg.(required & opt (some string) None & info [ "requests" ] ~docv:"FILE" ~doc)
  in
  let repeat_arg =
    let doc = "Drain the request list N times (later passes warm the cache)." in
    Arg.(value & opt int 1 & info [ "repeat" ] ~docv:"N" ~doc)
  in
  let cache_cap_arg =
    let doc =
      "Maximum cached compiled modules; least-recently-used entries are \
       evicted beyond it (default unbounded). Eviction never changes results, \
       only recompile counts."
    in
    Arg.(value & opt (some int) None & info [ "cache-cap" ] ~docv:"N" ~doc)
  in
  let journal_arg =
    let doc = "Append every served row to this crash-safe JSONL journal." in
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)
  in
  let run requests small sanitize repeat cache_cap journal domains machine =
    handle
      (let ( let* ) = Result.bind in
       let* machine = parse_machine machine in
       let* queue =
         match Service.load_requests requests with
         | q -> Ok q
         | exception Service.Service_error e -> Error (`Msg e)
       in
       let* () = if queue = [] then Error (`Msg "empty request file") else Ok () in
       let opts =
         { Service.default with
           Service.sv_small = small; sv_sanitize = sanitize; sv_repeat = repeat;
           sv_cache_cap = cache_cap; sv_journal = journal; sv_domains = domains;
           sv_machine = machine }
       in
       let* ms, stats =
         match Service.run opts queue with
         | r -> Ok r
         | exception Service.Service_error e -> Error (`Msg e)
       in
       Fmt.pr "%a" R.pp_csv_header ();
       List.iter (Fmt.pr "%a" R.pp_csv) ms;
       Fmt.pr "%a" Service.pp_stats stats;
       let dead = List.filter (fun m -> Result.is_error m.E.r_check) ms in
       if dead = [] then Ok ()
       else
         Error
           (`Msg
             (Fmt.str "service finished with %d dead row(s):@.%a"
                (List.length dead) R.pp_faults dead)))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a batch of launch requests through the content-addressed \
          compile cache: duplicate compiles are served from cache, rows print \
          as campaign CSV (plus cache/latency columns) followed by \
          \"serve:\"-prefixed stats (hit rate, launches/sec, latency \
          percentiles)")
    Term.(const run $ requests_arg $ small_arg $ sanitize_arg $ repeat_arg
          $ cache_cap_arg $ journal_arg $ domains_arg $ machine_arg)

let bench_service_cmd =
  let run small domains =
    handle
      (let ( let* ) = Result.bind in
       let queue =
         List.concat_map
           (fun p -> List.map (fun b -> (p.Proxy.p_name, b)) E.build_names)
           (Registry.all ())
       in
       let opts = { Service.default with Service.sv_small = small; sv_domains = domains } in
       let cache = Serve_cache.create () in
       let cold_ms, cold = Service.run ~cache opts queue in
       let warm_ms, warm = Service.run ~cache opts queue in
       Fmt.pr "cold: %a" Service.pp_stats cold;
       Fmt.pr "warm: %a" Service.pp_stats warm;
       Fmt.pr "warm speedup: %.2fx launches/sec@."
         (if cold.Service.st_launches_per_sec > 0.0 then
            warm.Service.st_launches_per_sec /. cold.Service.st_launches_per_sec
          else 0.0);
       let strip m = { m with E.r_cache_disp = "-"; r_latency_us = 0.0 } in
       let* () =
         if List.map strip warm_ms = List.map strip cold_ms then Ok ()
         else Error (`Msg "warm rows differ from cold rows")
       in
       if warm.Service.st_cache.Serve_cache.cs_misses = 0 then Ok ()
       else
         Error
           (`Msg
             (Fmt.str "warm pass recompiled %d module(s); expected 0"
                warm.Service.st_cache.Serve_cache.cs_misses)))
  in
  Cmd.v
    (Cmd.info "bench-service"
       ~doc:
         "Benchmark the serving tier: drain every proxy under every standard \
          build twice against one cache, report cold vs warm launches/sec and \
          latency percentiles, check warm rows are bit-identical to cold and \
          exit non-zero if the warm pass recompiled anything")
    Term.(const run $ small_arg $ domains_arg)

(* --- fuzz ----------------------------------------------------------------- *)

let fuzz_cmd =
  let seeds_arg =
    let doc = "Number of random kernels to generate and differentially test." in
    Arg.(value & opt int 25 & info [ "seeds" ] ~docv:"N" ~doc)
  in
  let base_seed_arg =
    let doc = "Base PRNG seed; case i uses seed BASE+i." in
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"BASE" ~doc)
  in
  let out_arg =
    let doc = "Path for the minimized repro of the first failure." in
    Arg.(value & opt string "fuzz.repro.ir" & info [ "out"; "o" ] ~docv:"FILE" ~doc)
  in
  let plant_arg =
    let doc =
      "Plant a known miscompile in the full pipeline (flip-add: first Add \
       becomes Sub) to prove the fuzzer finds and shrinks it."
    in
    Arg.(value & opt (some string) None & info [ "plant" ] ~docv:"PASS" ~doc)
  in
  let sweep_arg =
    let doc =
      "Add a full-pipeline variant on this machine descriptor ("
      ^ machine_names_doc
      ^ ") to the differential sweep; digests must stay bit-identical across \
         wavefront widths. Repeatable."
    in
    Arg.(value & opt_all string [] & info [ "machine" ] ~docv:"MACHINE" ~doc)
  in
  let run seeds base_seed out plant sweep =
    handle
      (let ( let* ) = Result.bind in
       let* plant =
         match plant with
         | None -> Ok None
         | Some n -> (
           match Fuzz.plant_of_name n with
           | Some p -> Ok (Some p)
           | None -> Error (`Msg ("unknown plant pass " ^ n ^ " (flip-add)")))
       in
       let* sweep =
         List.fold_left
           (fun acc name ->
             Result.bind acc (fun ms ->
                 Result.map (fun m -> ms @ [ m ]) (parse_machine name)))
           (Ok []) sweep
       in
       let r =
         Fuzz.run ?plant ~sweep ~seeds ~base_seed
           ~on_case:(fun seed clean ->
             if not clean then Fmt.pr "seed %d: FAIL@." seed)
           ()
       in
       match r.Fuzz.fz_failures with
       | [] ->
         Fmt.pr "fuzz: %d seeds, all variants agree@." r.Fuzz.fz_seeds;
         Ok ()
       | failures ->
         List.iter
           (fun fl ->
             Fmt.pr "seed %d: %s (shrunk %d -> %d instructions)@."
               fl.Fuzz.fl_seed fl.Fuzz.fl_signature fl.Fuzz.fl_insts_before
               fl.Fuzz.fl_insts_after)
           failures;
         let first = List.hd failures in
         let oc = open_out out in
         output_string oc (Fuzz.repro_text first);
         close_out oc;
         Fmt.pr "wrote minimized repro to %s@." out;
         Error
           (`Msg
             (Fmt.str "fuzz: %d of %d seeds disagree across pipelines"
                (List.length failures) r.Fuzz.fz_seeds)))
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differentially fuzz the compiler: generate random well-typed \
          kernels, compile under O0 / full / spilled-regalloc pipelines, \
          demand bit-identical results, and shrink any failure to a minimal \
          repro")
    Term.(const run $ seeds_arg $ base_seed_arg $ out_arg $ plant_arg
          $ sweep_arg)

(* --- machines -------------------------------------------------------------- *)

let machines_cmd =
  let run () =
    Fmt.pr "%-6s %5s %5s %7s %8s %8s %14s %13s %9s@." "name" "warp" "SMs"
      "thr/SM" "warps/SM" "teams/SM" "regfile(unit)" "smem(unit)" "max-regs";
    List.iter
      (fun (m : Machine.t) ->
        Fmt.pr "%-6s %5d %5d %7d %8d %8d %8d(%4d) %7d(%4d) %9d@."
          m.Machine.mc_name m.Machine.mc_warp_size m.Machine.mc_n_sm
          m.Machine.mc_max_threads_per_sm m.Machine.mc_max_warps_per_sm
          m.Machine.mc_max_teams_per_sm m.Machine.mc_regfile_per_sm
          m.Machine.mc_reg_alloc_unit m.Machine.mc_shared_per_sm
          m.Machine.mc_shared_alloc_unit m.Machine.mc_max_regs_per_thread)
      Machine.all;
    0
  in
  Cmd.v
    (Cmd.info "machines"
       ~doc:
         "List the machine descriptors (wavefront width, SM count, residency \
          ceilings, register/SMem allocation granularities) every \
          machine-aware subcommand accepts via --machine")
    Term.(const run $ const ())

(* --- tune ------------------------------------------------------------------- *)

let tune_cmd =
  let csv_arg =
    Arg.(value & flag
         & info [ "csv" ]
             ~doc:"Emit one CSV row per scored candidate instead of the table.")
  in
  let tune_seed_arg =
    let doc = "Seed for the deterministic tie-break among equal-scored shapes." in
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc)
  in
  let measure_arg =
    let doc =
      "Measured refinement: launch the top K model candidates for real and \
       pick the lowest simulated kernel time among those that validate \
       (0 = model-only)."
    in
    Arg.(value & opt int 0 & info [ "measure" ] ~docv:"K" ~doc)
  in
  let journal_arg =
    let doc = "Append the verdict as one JSON line to this file." in
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)
  in
  let run name build small seed measure csv journal domains exec machine =
    handle
      (let ( let* ) = Result.bind in
       let* p = find_proxy small name in
       let* exec = parse_exec exec in
       let* machine = parse_machine machine in
       let* v =
         match
           Tune.search ~seed ~measure_top:measure ~domains ~exec ~machine p
             ~build_name:build
         with
         | v -> Ok v
         | exception Tune.Tune_error e -> Error (`Msg e)
         | exception E.Harness_error e -> Error (`Msg e)
       in
       if csv then begin
         Fmt.pr "%a" Tune.pp_csv_header ();
         Fmt.pr "%a" Tune.pp_csv v
       end
       else Fmt.pr "%a" Tune.pp_verdict v;
       (match journal with
       | Some path -> Tune.append_journal ~path v
       | None -> ());
       Ok ())
  in
  Cmd.v
    (Cmd.info "tune"
       ~doc:
         "Autotune the launch shape (teams x threads) of one proxy/build on \
          one machine: candidates are wavefront multiples covering the \
          default iteration space, scored by the occupancy model plus a \
          probe-calibrated cycle prediction, with deterministic seeded \
          tie-breaks and opt-in measured refinement of the top K")
    Term.(const run $ proxy_arg $ build_arg $ small_arg $ tune_seed_arg
          $ measure_arg $ csv_arg $ journal_arg $ domains_arg $ exec_arg
          $ machine_arg)

(* --- matrix ----------------------------------------------------------------- *)

let matrix_cmd =
  let csv_arg =
    Arg.(value & flag
         & info [ "csv" ] ~doc:"Emit the machine-readable matrix CSV only.")
  in
  let machines_arg =
    let doc =
      "Comma-separated machine set to sweep (default "
      ^ String.concat "," Matrix.default_machines ^ ")."
    in
    Arg.(value & opt (some string) None & info [ "machines" ] ~docv:"LIST" ~doc)
  in
  let proxy_opt_arg =
    let doc = "Restrict the sweep to this proxy (repeatable; default all)." in
    Arg.(value & opt_all string [] & info [ "proxy" ] ~docv:"PROXY" ~doc)
  in
  let run small csv machines proxies domains exec =
    handle
      (let ( let* ) = Result.bind in
       let* exec = parse_exec exec in
       let machines =
         match machines with
         | None -> Matrix.default_machines
         | Some s ->
           List.filter (fun x -> x <> "") (String.split_on_char ',' s)
       in
       let proxies = match proxies with [] -> None | ps -> Some ps in
       let* t =
         match Matrix.run ~small ~machines ?proxies ~domains ~exec () with
         | t -> Ok t
         | exception Matrix.Matrix_error e -> Error (`Msg e)
         | exception E.Harness_error e -> Error (`Msg e)
       in
       if csv then begin
         Fmt.pr "%a" Matrix.pp_csv_header ();
         Fmt.pr "%a" Matrix.pp_csv t
       end
       else begin
         Fmt.pr "%a" Matrix.pp_table t;
         Fmt.pr "@.%a" Matrix.pp_csv_header ();
         Fmt.pr "%a" Matrix.pp_csv t
       end;
       let bad = List.filter (fun c -> not (Matrix.cell_ok c)) t.Matrix.mx_cells in
       if bad = [] then Ok ()
       else
         Error
           (`Msg
             (Fmt.str "matrix finished with %d failing cell(s)"
                (List.length bad))))
  in
  Cmd.v
    (Cmd.info "matrix"
       ~doc:
         "Run the cross-machine campaign matrix: every proxy x build x \
          machine through one shared compile cache, reporting per-machine \
          relative performance (Old RT = 1.00), application efficiency and \
          the Pennycook performance-portability harmonic mean")
    Term.(const run $ small_arg $ csv_arg $ machines_arg $ proxy_opt_arg
          $ domains_arg $ exec_arg)

let () =
  let doc = "reproduction of the near-zero-overhead OpenMP GPU runtime (IPDPS'22)" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "ozo_cli" ~doc)
          [ list_cmd; run_cmd; inspect_cmd; remarks_cmd; trace_cmd; regs_cmd;
            vm_cmd; ablate_cmd; sanitize_cmd; campaign_cmd; serve_cmd;
            bench_service_cmd; fuzz_cmd; machines_cmd; tune_cmd; matrix_cmd ]))
