#!/bin/sh
# Engine performance trajectory: build, run the perf micro-suite + the
# end-to-end figure-regeneration benchmark, and leave machine-readable
# results in bench/out/BENCH_engine.json (scratch output, not tracked;
# the curated before/after trajectory lives in /BENCH_engine.json).
#
#   scripts/bench.sh            full run (stable numbers, ~1 min)
#   scripts/bench.sh --smoke    1 iteration of everything (CI bit-rot guard)
set -eu
cd "$(dirname "$0")/.."

dune build bench/perfbench.exe
mkdir -p bench/out
_build/default/bench/perfbench.exe "$@" -o bench/out/BENCH_engine.json
