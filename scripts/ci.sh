#!/bin/sh
# Tier-1 CI: build, full test suite, then two smoke runs of the hardened
# execution path — a clean sanitized campaign (must report zero findings)
# and a seeded fault-injection campaign (must complete end-to-end via the
# fallback ladder with every row validating).
set -eu
cd "$(dirname "$0")/.."

echo "== build =="
dune build

echo "== tests =="
dune runtest

CLI=_build/default/bin/ozo_cli.exe

echo "== sanitizer: clean proxy =="
"$CLI" sanitize xsbench --small

echo "== injection smoke campaign =="
"$CLI" campaign xsbench --small --inject corrupt-load --seed 5
"$CLI" campaign rsbench --small --inject skip-barrier --seed 11

echo "== analysis manager: differential invalidation =="
# every pass x config x proxy with after-each-pass coherence checking,
# plus the cached-vs-uncached bit-identical IR pin
dune exec test/test_main.exe -- test analysis

echo "== analysis cache smoke =="
# --profile prints "analysis cache: N hits, ..."; require a nonzero hit
# count so a silently-disabled cache fails CI
hits=$("$CLI" run xsbench --small --profile | sed -n 's/^analysis cache: \([0-9]*\) hits.*/\1/p')
[ -n "$hits" ] && [ "$hits" -gt 0 ] || {
  echo "FAIL: analysis cache reported no hits (got '${hits:-}')"; exit 1; }
echo "analysis cache hits: $hits"

echo "== backend: differential spill run =="
# a tiny register budget must force spills AND still validate (spilled
# execution is bit-identical to the unlimited-register run); plus the
# occupancy/resource suite against hand-computed A100 limits
dune exec test/test_main.exe -- test backend

echo "== backend: ozo regs smoke =="
# the resource table must expose regs/smem/occupancy/spills per build,
# and a spill-forcing budget must report nonzero spill traffic
"$CLI" regs xsbench --small --csv | grep -q "spill_loads" || {
  echo "FAIL: ozo regs --csv missing spill columns"; exit 1; }
spilled=$("$CLI" regs xsbench --small --csv --max-regs 8 \
  | awk -F, '$2 == "New RT" { print $11 }')
[ -n "$spilled" ] && [ "$spilled" -gt 0 ] || {
  echo "FAIL: ozo regs --max-regs 8 reported no spilled registers (got '${spilled:-}')"; exit 1; }
echo "spilled registers at budget 8: $spilled"

echo "== trace smoke =="
# emit a Chrome trace and re-validate it: schema, pass-span nesting under
# the compile span, phase spans under the launch span, hot-spot events
"$CLI" trace testsnap --small --out _build/trace_smoke.json --check

echo "== perf micro-suite (smoke) =="
scripts/bench.sh --smoke

echo "CI OK"
