#!/bin/sh
# Tier-1 CI: build, full test suite, then two smoke runs of the hardened
# execution path — a clean sanitized campaign (must report zero findings)
# and a seeded fault-injection campaign (must complete end-to-end via the
# fallback ladder with every row validating).
set -eu
cd "$(dirname "$0")/.."

echo "== build =="
dune build

echo "== tests =="
dune runtest

CLI=_build/default/bin/ozo_cli.exe

echo "== sanitizer: clean proxy =="
"$CLI" sanitize xsbench --small

echo "== injection smoke campaign =="
"$CLI" campaign xsbench --small --inject corrupt-load --seed 5
"$CLI" campaign rsbench --small --inject skip-barrier --seed 11

echo "== domain-parallel engine: bit-identity suite =="
# sequential vs domain-sharded launches must agree byte-for-byte:
# per-team counters, totals, faults (kind + site + team), injection
# sites, sanitizer verdicts and campaign CSV rows
dune exec test/test_main.exe -- test domains

echo "== domain-parallel campaign smoke =="
# the full supervised campaign path sharded over 4 domains; every row
# must validate, and the CSV must match a sequential campaign
# byte-for-byte once the trailing domains/cache/latency columns are
# stripped (the last three fields of every row)
"$CLI" campaign xsbench --small --domains 4 > _build/ci_campaign_d4.out
"$CLI" campaign xsbench --small > _build/ci_campaign_d1.out
sed -n '/^proxy,build/,$p' _build/ci_campaign_d4.out | sed 's/\(,[^,]*\)\{3\}$//' > _build/ci_d4.csv
sed -n '/^proxy,build/,$p' _build/ci_campaign_d1.out | sed 's/\(,[^,]*\)\{3\}$//' > _build/ci_d1.csv
diff _build/ci_d1.csv _build/ci_d4.csv || {
  echo "FAIL: campaign CSV differs between --domains 1 and --domains 4"; exit 1; }
echo "domain-parallel campaign OK: CSV identical to sequential"

echo "== threaded-code executor: bit-identity suite =="
# IR-interpreter vs threaded-code launches must agree byte-for-byte:
# counters, faults, injection sites, sanitizer verdicts, campaign CSV
# rows, compile-key separation and the parallel-copy property suite
dune exec test/test_main.exe -- test vm

echo "== threaded-code campaign smoke =="
# the full supervised campaign on the vm execution path (every proxy
# build row); the CSV must match the ir-path campaign byte-for-byte once
# the trailing exec/domains/cache/latency columns are stripped (the last
# four fields of every row — the only column allowed to differ is exec)
"$CLI" campaign xsbench --small --exec vm > _build/ci_campaign_vm.out
sed -n '/^proxy,build/,$p' _build/ci_campaign_vm.out | sed 's/\(,[^,]*\)\{4\}$//' > _build/ci_vm.csv
sed -n '/^proxy,build/,$p' _build/ci_campaign_d1.out | sed 's/\(,[^,]*\)\{4\}$//' > _build/ci_ir.csv
diff _build/ci_ir.csv _build/ci_vm.csv || {
  echo "FAIL: campaign CSV differs between --exec ir and --exec vm"; exit 1; }
grep -q ",vm," _build/ci_campaign_vm.out || {
  echo "FAIL: --exec vm campaign rows do not record the vm path"; exit 1; }
echo "threaded-code campaign OK: CSV identical to the IR interpreter"

echo "== threaded-code: ozo vm smoke =="
# the VM-form dump must expose per-function shape + the executor plan,
# and the spill-free kernel must actually be on the compiled plan
plan=$("$CLI" vm xsbench --small --csv | awk -F, '$2 == "New RT" { print $12 }')
[ "$plan" = "vm" ] || {
  echo "FAIL: ozo vm reports plan '${plan:-}' for xsbench (want vm)"; exit 1; }
echo "xsbench kernel on the threaded-code plan"

echo "== analysis manager: differential invalidation =="
# every pass x config x proxy with after-each-pass coherence checking,
# plus the cached-vs-uncached bit-identical IR pin
dune exec test/test_main.exe -- test analysis

echo "== analysis cache smoke =="
# --profile prints "analysis cache: N hits, ..."; require a nonzero hit
# count so a silently-disabled cache fails CI
hits=$("$CLI" run xsbench --small --profile | sed -n 's/^analysis cache: \([0-9]*\) hits.*/\1/p')
[ -n "$hits" ] && [ "$hits" -gt 0 ] || {
  echo "FAIL: analysis cache reported no hits (got '${hits:-}')"; exit 1; }
echo "analysis cache hits: $hits"

echo "== backend: differential spill run =="
# a tiny register budget must force spills AND still validate (spilled
# execution is bit-identical to the unlimited-register run); plus the
# occupancy/resource suite against hand-computed A100 limits
dune exec test/test_main.exe -- test backend

echo "== backend: ozo regs smoke =="
# the resource table must expose regs/smem/occupancy/spills per build,
# and a spill-forcing budget must report nonzero spill traffic
"$CLI" regs xsbench --small --csv | grep -q "spill_loads" || {
  echo "FAIL: ozo regs --csv missing spill columns"; exit 1; }
spilled=$("$CLI" regs xsbench --small --csv --max-regs 8 \
  | awk -F, '$2 == "New RT" { print $11 }')
[ -n "$spilled" ] && [ "$spilled" -gt 0 ] || {
  echo "FAIL: ozo regs --max-regs 8 reported no spilled registers (got '${spilled:-}')"; exit 1; }
echo "spilled registers at budget 8: $spilled"

echo "== trace smoke =="
# emit a Chrome trace and re-validate it: schema, pass-span nesting under
# the compile span, phase spans under the launch span, hot-spot events
"$CLI" trace testsnap --small --out _build/trace_smoke.json --check

echo "== fuzz: differential smoke (fixed seeds) =="
# 25 generated kernels through O0 / full / spilled-regalloc; any variant
# disagreement or fault is a differential failure and exits non-zero
"$CLI" fuzz --seeds 25 --seed 1 --out _build/fuzz_smoke.ir

echo "== fuzz: planted miscompile must be caught and shrunk =="
if "$CLI" fuzz --seeds 1 --seed 1 --plant flip-add --out _build/fuzz_plant.ir; then
  echo "FAIL: planted miscompile went undetected"; exit 1
fi
[ -s _build/fuzz_plant.ir ] || {
  echo "FAIL: no minimized repro written for the planted miscompile"; exit 1; }
echo "planted miscompile caught; repro at _build/fuzz_plant.ir"

echo "== campaign: kill + resume from journal =="
# abort after 3 fresh rows (simulated crash), resume from the journal,
# and require the resumed CSV to be byte-identical to an uninterrupted run
JOURNAL=_build/ci_journal.jsonl
rm -f "$JOURNAL"
if "$CLI" campaign xsbench --small --journal "$JOURNAL" --abort-after 3 \
     > _build/ci_campaign_killed.out 2>&1; then
  echo "FAIL: --abort-after did not abort the campaign"; exit 1
fi
"$CLI" campaign xsbench --small --journal "$JOURNAL" --resume \
  > _build/ci_campaign_resumed.out
"$CLI" campaign xsbench --small > _build/ci_campaign_full.out
sed -n '/^proxy,build/,$p' _build/ci_campaign_resumed.out > _build/ci_resumed.csv
sed -n '/^proxy,build/,$p' _build/ci_campaign_full.out > _build/ci_full.csv
diff _build/ci_full.csv _build/ci_resumed.csv || {
  echo "FAIL: resumed campaign CSV differs from uninterrupted run"; exit 1; }
echo "resume OK: CSV byte-identical after kill at row 3"

echo "== serving tier: content-addressed cache + batched service =="
# a 2-domain service over a duplicated request list (two passes via
# --repeat 2) must serve every second-pass compile from cache (>= 50%
# hit rate), and its CSV must be byte-identical to the sequential
# supervised campaign modulo the trailing domains/cache/latency columns
REQS=_build/ci_requests.txt
: > "$REQS"
for b in old-rt new-rt-nightly new-rt-no-assumptions new-rt cuda; do
  echo "xsbench $b" >> "$REQS"
done
"$CLI" serve --requests "$REQS" --small --repeat 2 --domains 2 \
  > _build/ci_serve.out
hitrate=$(sed -n 's/.*(\([0-9]*\)% hit rate).*/\1/p' _build/ci_serve.out)
[ -n "$hitrate" ] && [ "$hitrate" -ge 50 ] || {
  echo "FAIL: serve hit rate below 50% (got '${hitrate:-}')"; exit 1; }
"$CLI" campaign xsbench --small --repeat 2 > _build/ci_campaign_r2.out
sed -n '/^proxy,build/,$p' _build/ci_serve.out | sed '/^serve:/d' \
  | sed 's/\(,[^,]*\)\{3\}$//' > _build/ci_serve.csv
sed -n '/^proxy,build/,$p' _build/ci_campaign_r2.out \
  | sed 's/\(,[^,]*\)\{3\}$//' > _build/ci_seq.csv
diff _build/ci_seq.csv _build/ci_serve.csv || {
  echo "FAIL: served CSV differs from the sequential campaign"; exit 1; }
echo "serve OK: ${hitrate}% cache hit rate, CSV identical to sequential campaign"

echo "== serving tier: warm-cache bench =="
# two passes over every proxy x build against one cache: the warm pass
# must recompile nothing (100% hit rate) and reproduce the cold rows
# bit-identically; prints cold vs warm launches/sec + latency percentiles
"$CLI" bench-service --small

echo "== portability: per-machine bit-identity + tuner suites =="
# per machine descriptor (incl. the 64-wide mi250): counters, checks and
# campaign CSV bytes identical across --domains {1,4} x --exec {ir,vm};
# plus the autotuner/matrix determinism and soundness suites
dune exec test/test_main.exe -- test portability
dune exec test/test_main.exe -- test tune

echo "== machines smoke =="
# every descriptor the matrix sweeps must be listed, with its wavefront
"$CLI" machines | grep -q "^mi250 *64" || {
  echo "FAIL: ozo machines does not list the 64-wide mi250"; exit 1; }

echo "== autotuner determinism smoke =="
# two identical searches must emit byte-identical candidate CSVs, and
# exactly one candidate row must be marked chosen
"$CLI" tune xsbench --small --machine mi250 --csv > _build/ci_tune_1.csv
"$CLI" tune xsbench --small --machine mi250 --csv > _build/ci_tune_2.csv
diff _build/ci_tune_1.csv _build/ci_tune_2.csv || {
  echo "FAIL: ozo tune is not deterministic"; exit 1; }
chosen=$(grep -c ",yes$" _build/ci_tune_1.csv || true)
[ "$chosen" -eq 1 ] || {
  echo "FAIL: expected exactly 1 chosen candidate, got '${chosen:-}'"; exit 1; }
echo "tuner deterministic; 1 chosen shape"

echo "== 64-wide campaign smoke =="
# a full supervised campaign on the 64-wide descriptor: every row must
# validate and record the machine column
"$CLI" campaign xsbench --small --machine mi250 > _build/ci_campaign_mi250.out
grep -q ",mi250," _build/ci_campaign_mi250.out || {
  echo "FAIL: --machine mi250 campaign rows do not record the machine"; exit 1; }
echo "64-wide campaign OK"

echo "== cross-machine matrix determinism =="
# the matrix CSV (rel-perf + app-efficiency per proxy x build x machine)
# must be byte-identical across two runs
"$CLI" matrix --small --proxy xsbench --machines vgpu,mi250 --csv \
  > _build/ci_matrix_1.csv
"$CLI" matrix --small --proxy xsbench --machines vgpu,mi250 --csv \
  > _build/ci_matrix_2.csv
diff _build/ci_matrix_1.csv _build/ci_matrix_2.csv || {
  echo "FAIL: ozo matrix CSV differs between runs"; exit 1; }
echo "matrix OK: CSV deterministic"

echo "== perf micro-suite (smoke) =="
# under a wall-clock deadline: a wedged benchmark fails CI instead of
# hanging it
timeout 600 scripts/bench.sh --smoke

echo "CI OK"
