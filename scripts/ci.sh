#!/bin/sh
# Tier-1 CI: build, full test suite, then two smoke runs of the hardened
# execution path — a clean sanitized campaign (must report zero findings)
# and a seeded fault-injection campaign (must complete end-to-end via the
# fallback ladder with every row validating).
set -eu
cd "$(dirname "$0")/.."

echo "== build =="
dune build

echo "== tests =="
dune runtest

CLI=_build/default/bin/ozo_cli.exe

echo "== sanitizer: clean proxy =="
"$CLI" sanitize xsbench --small

echo "== injection smoke campaign =="
"$CLI" campaign xsbench --small --inject corrupt-load --seed 5
"$CLI" campaign rsbench --small --inject skip-barrier --seed 11

echo "== trace smoke =="
# emit a Chrome trace and re-validate it: schema, pass-span nesting under
# the compile span, phase spans under the launch span, hot-spot events
"$CLI" trace testsnap --small --out _build/trace_smoke.json --check

echo "== perf micro-suite (smoke) =="
scripts/bench.sh --smoke

echo "CI OK"
