examples/inspect_pipeline.mli:
