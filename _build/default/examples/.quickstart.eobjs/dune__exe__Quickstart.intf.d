examples/quickstart.mli:
