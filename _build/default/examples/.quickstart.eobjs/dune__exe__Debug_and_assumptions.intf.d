examples/debug_and_assumptions.mli:
