examples/quickstart.ml: Array Float Fmt List Ozo_core Ozo_frontend Ozo_vgpu
