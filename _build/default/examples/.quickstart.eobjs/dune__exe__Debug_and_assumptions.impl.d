examples/debug_and_assumptions.ml: Fmt Ozo_core Ozo_frontend Ozo_vgpu
