(* Quickstart: write an OpenMP-style kernel, compile it under the paper's
   build configurations, run it on the virtual GPU and compare.

     dune exec examples/quickstart.exe

   The kernel is a `target teams distribute parallel for` SAXPY. Watch the
   co-design happen: under "New RT" the entire OpenMP runtime folds away
   and the binary is identical to the CUDA build — zero barriers, zero
   runtime calls, zero shared memory. *)

open Ozo_frontend.Ast
module C = Ozo_core.Codesign
module Device = Ozo_vgpu.Device
module Engine = Ozo_vgpu.Engine

(* #pragma omp target teams distribute parallel for
   for (i = 0; i < n; i++) out[i] = a * x[i] + y[i];                     *)
let saxpy =
  { k_name = "saxpy";
    k_params = [ ("a", TFloat); ("x", TInt); ("y", TInt); ("out", TInt); ("n", TInt) ];
    k_construct =
      Distribute_parallel_for
        ( "i",
          P "n",
          [ Store
              ( P "out", P "i", MF64,
                Add (Mul (P "a", Ld (P "x", P "i", MF64)), Ld (P "y", P "i", MF64)) )
          ] ) }

let n = 4096
let threads = 64
(* one thread per element, as the CUDA version would launch (also the
   precondition of the oversubscription flags) *)
let teams = (n + threads - 1) / threads

let run (build : C.build) =
  let compiled = C.compile build saxpy in
  let dev = C.device compiled in
  (* allocate and fill device buffers *)
  let x = Device.alloc dev (n * 8) and y = Device.alloc dev (n * 8) in
  let out = Device.alloc dev (n * 8) in
  Device.write_f64_array dev x (Array.init n float_of_int);
  Device.write_f64_array dev y (Array.init n (fun i -> float_of_int (2 * i)));
  match
    C.launch compiled dev ~teams ~threads
      [ Engine.Af 3.0; Ai (Device.ptr x); Ai (Device.ptr y); Ai (Device.ptr out); Ai n ]
  with
  | Error e -> Fmt.pr "%-26s launch error: %a@." build.C.b_label Device.pp_error e
  | Ok m ->
    (* validate on the host *)
    let got = Device.read_f64_array dev out n in
    let ok = ref true in
    Array.iteri
      (fun i v -> if Float.abs (v -. (5.0 *. float_of_int i)) > 1e-9 then ok := false)
      got;
    Fmt.pr
      "%-26s %-5s ktime=%8.0f cyc  regs=%2d  smem=%5dB  runtime calls=%d  barriers=%d@."
      build.C.b_label
      (if !ok then "ok" else "WRONG")
      m.C.m_kernel_cycles m.C.m_regs m.C.m_smem m.C.m_counters.calls
      m.C.m_counters.barriers

let () =
  Fmt.pr "SAXPY (n = %d) under the paper's five build configurations:@.@." n;
  List.iter run C.standard_builds;
  Fmt.pr
    "@.The 'New RT' rows should match 'CUDA (NVCC)': the co-designed runtime@.\
     and optimizations eliminate every trace of OpenMP from the kernel.@."
