(* A domain-specific example beyond the bundled proxies: a 2-D 5-point
   heat-diffusion stencil written once in the kernel DSL and executed
   under every build configuration, time-stepped from the host like a real
   solver would be (one kernel launch per step, ping-pong buffers).

     dune exec examples/heat_stencil.exe *)

open Ozo_frontend.Ast
module C = Ozo_core.Codesign
module Device = Ozo_vgpu.Device
module Engine = Ozo_vgpu.Engine

let nx = 64
let ny = 64
let steps = 4
let alpha = 0.1

(* out[x,y] = in[x,y] + alpha * (N + S + E + W - 4 * in[x,y]), interior only *)
let kernel =
  let idx x y = Add (Mul (y, Int nx), x) in
  let at x y = Ld (P "inp", idx x y, MF64) in
  { k_name = "heat_step";
    k_params = [ ("inp", TInt); ("outp", TInt); ("n", TInt) ];
    k_construct =
      Distribute_parallel_for
        ( "cell",
          P "n",
          [ Let ("x", Rem (P "cell", Int nx));
            Let ("y", Div (P "cell", Int nx));
            Let ("interior",
                 And
                   ( And (Cmp (CGt, P "x", Int 0), Cmp (CLt, P "x", Int (nx - 1))),
                     And (Cmp (CGt, P "y", Int 0), Cmp (CLt, P "y", Int (ny - 1))) ));
            If
              ( P "interior",
                [ Let ("c", at (P "x") (P "y"));
                  Let
                    ( "lap",
                      Sub
                        ( Add
                            ( Add (at (Sub (P "x", Int 1)) (P "y"), at (Add (P "x", Int 1)) (P "y")),
                              Add (at (P "x") (Sub (P "y", Int 1)), at (P "x") (Add (P "y", Int 1))) ),
                          Mul (Float 4.0, P "c") ) );
                  Store (P "outp", idx (P "x") (P "y"), MF64, Add (P "c", Mul (Float alpha, P "lap")))
                ],
                [ Store (P "outp", idx (P "x") (P "y"), MF64, at (P "x") (P "y")) ] )
          ] ) }

(* host reference for validation *)
let host_step src dst =
  for y = 0 to ny - 1 do
    for x = 0 to nx - 1 do
      let i = (y * nx) + x in
      if x > 0 && x < nx - 1 && y > 0 && y < ny - 1 then begin
        let c = src.(i) in
        let lap = src.(i - 1) +. src.(i + 1) +. src.(i - nx) +. src.(i + nx) -. (4.0 *. c) in
        dst.(i) <- c +. (alpha *. lap)
      end
      else dst.(i) <- src.(i)
    done
  done

let initial = Array.init (nx * ny) (fun i -> if i = ((ny / 2) * nx) + (nx / 2) then 1000.0 else 0.0)

let expected () =
  let a = Array.copy initial and b = Array.make (nx * ny) 0.0 in
  let src = ref a and dst = ref b in
  for _ = 1 to steps do
    host_step !src !dst;
    let t = !src in
    src := !dst;
    dst := t
  done;
  !src

let run (build : C.build) =
  let n = nx * ny in
  let compiled = C.compile build kernel in
  let dev = C.device compiled in
  let a = Device.alloc dev (n * 8) and b = Device.alloc dev (n * 8) in
  Device.write_f64_array dev a initial;
  let total = ref 0.0 in
  let src = ref a and dst = ref b in
  let teams = (n + 63) / 64 in
  (try
     for _ = 1 to steps do
       (match
          C.launch compiled dev ~teams ~threads:64
            [ Engine.Ai (Device.ptr !src); Ai (Device.ptr !dst); Ai n ]
        with
       | Ok m -> total := !total +. m.C.m_kernel_cycles
       | Error e -> Fmt.failwith "%a" Device.pp_error e);
       let t = !src in
       src := !dst;
       dst := t
     done;
     let got = Device.read_f64_array dev !src n in
     let exp = expected () in
     let ok = ref true in
     Array.iteri (fun i v -> if Float.abs (v -. exp.(i)) > 1e-9 then ok := false) got;
     Fmt.pr "  %-26s %-5s total=%9.0f cycles over %d steps@." build.C.b_label
       (if !ok then "ok" else "WRONG")
       !total steps
   with Failure msg -> Fmt.pr "  %-26s error: %s@." build.C.b_label msg)

let () =
  Fmt.pr "2-D heat diffusion, %dx%d grid, %d time steps (one launch per step):@.@." nx ny
    steps;
  List.iter run C.standard_builds;
  Fmt.pr
    "@.Launch-heavy solvers amplify fixed runtime overheads — exactly the@.\
     pattern where the paper's near-zero-overhead runtime pays off.@."
