(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (Section V) from live compilation + simulation, and
   provides one Bechamel micro-benchmark per table/figure measuring the
   end-to-end cost of regenerating it.

   Usage:
     bench/main.exe                 regenerate all figures/tables
     bench/main.exe fig10a|fig10b|fig10c|fig10d|fig10e
     bench/main.exe fig11 | fig12 | fig13
     bench/main.exe ablation-xs | ablation-fmm
     bench/main.exe csv             machine-readable dump of everything
     bench/main.exe bechamel        Bechamel timings (one per figure)

   Figure ids follow DESIGN.md's experiment index:
     fig10a=xsbench  fig10b=rsbench  fig10c=testsnap  fig10d=minifmm
     (fig10e=gridmini relative row, see also fig12)                     *)

module E = Ozo_harness.Experiments
module R = Ozo_harness.Report
module Registry = Ozo_proxies.Registry

let fig10_ids =
  [ ("fig10a", "xsbench"); ("fig10b", "rsbench"); ("fig10c", "testsnap");
    ("fig10d", "minifmm"); ("fig10e", "gridmini") ]

let run_fig10 name =
  let p = E.find_proxy name in
  let ms = E.fig10 p in
  Fmt.pr "%a" R.pp_fig10 (name, ms);
  ms

let run_fig11 () =
  List.iter
    (fun p ->
      let ms = E.fig11 p in
      Fmt.pr "%a" R.pp_fig11 (p.Ozo_proxies.Proxy.p_name, ms))
    (Registry.all ())

let run_fig12 () = Fmt.pr "%a" R.pp_fig12 (E.fig12 ())

let run_ablation name =
  let p = E.find_proxy name in
  Fmt.pr "%a" R.pp_ablation (name, E.ablation p)

let run_csv () =
  Fmt.pr "%a" R.pp_csv_header ();
  List.iter
    (fun p -> List.iter (fun m -> Fmt.pr "%a" R.pp_csv m) (E.fig10 p))
    (Registry.all ())

let run_all () =
  Fmt.pr "=== Reproduction of 'Co-Designing an OpenMP GPU Runtime and Optimizations \
          for Near-Zero Overhead Execution' (IPDPS'22) ===@.";
  Fmt.pr "(simulated virtual-GPU cycles; shapes, not absolute times, are the claim)@.";
  Fmt.pr "@.--- Figure 10: relative performance per proxy application ---@.";
  List.iter (fun (_, name) -> ignore (run_fig10 name)) fig10_ids;
  Fmt.pr "@.--- Figure 11: kernel time / registers / shared memory ---@.";
  run_fig11 ();
  Fmt.pr "@.--- Figure 12: GridMini flops/cycle ---@.";
  run_fig12 ();
  Fmt.pr "@.--- Figure 13: GridMini optimization ablation ---@.";
  run_ablation "gridmini";
  Fmt.pr "@.--- Section V-C: XSBench / MiniFMM ablations ---@.";
  run_ablation "xsbench";
  run_ablation "minifmm";
  Fmt.pr "@.--- Section III-G: debug-mode runs (all runtime assumptions verified) ---@.";
  List.iter
    (fun p ->
      let m = E.debug_run p in
      let rel = E.measure p (E.new_rt_for p) in
      Fmt.pr "  %-10s debug build: %s (ktime %.0f cycles, %+.0f%% vs release)@."
        p.Ozo_proxies.Proxy.p_name
        (match m.E.r_check with
        | Ok () -> "results ok, assumptions hold"
        | Error e -> "FAILED: " ^ e)
        m.E.r_cycles
        (100.0 *. ((m.E.r_cycles /. rel.E.r_cycles) -. 1.0)))
    (Registry.all ())

(* --- Bechamel micro-benchmarks: one Test.make per table/figure --------- *)

let bechamel () =
  let open Bechamel in
  let small name =
    Registry.all_small () |> List.find (fun p -> p.Ozo_proxies.Proxy.p_name = name)
  in
  let test_fig10 id pname =
    Test.make ~name:id (Staged.stage (fun () -> ignore (E.fig10 (small pname))))
  in
  let tests =
    [ test_fig10 "fig10a-xsbench" "xsbench";
      test_fig10 "fig10b-rsbench" "rsbench";
      test_fig10 "fig10c-testsnap" "testsnap";
      test_fig10 "fig10d-minifmm" "minifmm";
      Test.make ~name:"fig11-all-builds"
        (Staged.stage (fun () ->
             List.iter (fun p -> ignore (E.fig11 p)) (Registry.all_small ())));
      Test.make ~name:"fig12-gridmini"
        (Staged.stage (fun () -> ignore (E.fig10 (small "gridmini"))));
      Test.make ~name:"fig13-ablation-gridmini"
        (Staged.stage (fun () -> ignore (E.ablation (small "gridmini"))))
    ]
  in
  let benchmark test =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 1.0) () in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
    Analyze.all ols Toolkit.Instance.monotonic_clock results
  in
  Fmt.pr "Bechamel: wall-clock cost of regenerating each figure (test-size workloads)@.";
  List.iter
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Fmt.pr "  %-26s %12.0f ns/run@." name est
          | _ -> Fmt.pr "  %-26s (no estimate)@." name)
        results)
    tests

let () =
  match if Array.length Sys.argv > 1 then Some Sys.argv.(1) else None with
  | None -> run_all ()
  | Some "csv" -> run_csv ()
  | Some "fig11" -> run_fig11 ()
  | Some "fig12" -> run_fig12 ()
  | Some "fig13" -> run_ablation "gridmini"
  | Some "ablation-xs" -> run_ablation "xsbench"
  | Some "ablation-fmm" -> run_ablation "minifmm"
  | Some "bechamel" -> bechamel ()
  | Some id -> (
    match List.assoc_opt id fig10_ids with
    | Some pname -> ignore (run_fig10 pname)
    | None -> (
      match Registry.find id with
      | Some _ -> ignore (run_fig10 id)
      | None ->
        Fmt.epr "unknown target %s@." id;
        exit 1))
