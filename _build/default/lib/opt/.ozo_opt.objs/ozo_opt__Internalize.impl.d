lib/opt/internalize.ml: Hashtbl List Option Ozo_ir Remarks
