lib/opt/spmdize.ml: Hashtbl Internalize List Ozo_ir Ozo_runtime Printf Ptrres Remarks
