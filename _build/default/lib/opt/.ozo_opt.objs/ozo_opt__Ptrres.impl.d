lib/opt/ptrres.ml: Hashtbl Int64 List Ozo_ir
