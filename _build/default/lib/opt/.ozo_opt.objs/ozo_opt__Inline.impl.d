lib/opt/inline.ml: Hashtbl List Option Ozo_ir Printf Remarks
