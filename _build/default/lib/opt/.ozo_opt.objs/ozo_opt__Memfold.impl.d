lib/opt/memfold.ml: Fmt Hashtbl List Option Ozo_ir Printf Ptrres Remarks
