lib/opt/cse.ml: Hashtbl List Option Ozo_ir
