lib/opt/remarks.ml: Fmt Format List
