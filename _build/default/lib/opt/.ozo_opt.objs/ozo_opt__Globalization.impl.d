lib/opt/globalization.ml: Hashtbl Int64 Internalize List Ozo_ir Ozo_runtime Remarks
