lib/opt/strip.ml: Hashtbl List Ozo_ir Remarks
