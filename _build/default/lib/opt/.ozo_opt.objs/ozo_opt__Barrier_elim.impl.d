lib/opt/barrier_elim.ml: Array List Ozo_ir Ptrres Remarks
