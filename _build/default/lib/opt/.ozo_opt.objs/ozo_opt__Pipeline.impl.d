lib/opt/pipeline.ml: Barrier_elim Cse Fmt Globalization Inline Internalize List Local_opt Memfold Ozo_ir Spmdize Strip
