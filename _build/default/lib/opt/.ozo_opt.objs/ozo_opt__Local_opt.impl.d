lib/opt/local_opt.ml: Float Fmt Hashtbl Int64 List Option Ozo_ir
