(* Pointer resolution: trace an operand back to the memory objects it may
   point into, with byte offsets where they are constant.

   This is the foundation of the field-sensitive access analysis (paper
   Section IV-B1): accesses are binned by (object, offset, size), and the
   conditional-pointer broadcast idiom (select between a real slot and the
   dummy sink, Fig. 7b) resolves to a *known set* of targets instead of
   "unknown", which is what keeps the analysis field-sensitive in the
   presence of guarded writes. *)

open Ozo_ir.Types

type obj =
  | Glob of string (* module global *)
  | Alc of reg     (* alloca in the current function *)

type tgt = { t_obj : obj; t_off : int option (* None = unknown offset *) }

type res =
  | Known of tgt list (* may point into exactly these objects *)
  | Unknown

let shift off delta =
  match (off, delta) with Some o, Some d -> Some (o + d), true | _ -> None, true

type defs = (reg, inst) Hashtbl.t

let build_defs (f : func) : defs =
  let t = Hashtbl.create 64 in
  List.iter
    (fun b ->
      List.iter
        (fun i -> match inst_def i with Some r -> Hashtbl.replace t r i | None -> ())
        b.b_insts)
    f.f_blocks;
  t

let as_const = function Imm_int (v, _) -> Some (Int64.to_int v) | _ -> None

(* Resolve [o] to its may-point-to targets. Bounded depth keeps this
   linear in practice (chains of ptradds). *)
let resolve (defs : defs) (o : operand) : res =
  let rec go depth o =
    if depth > 64 then Unknown
    else
      match o with
      | Global_addr g -> Known [ { t_obj = Glob g; t_off = Some 0 } ]
      | Reg r -> (
        match Hashtbl.find_opt defs r with
        | Some (Alloca (_, _)) -> Known [ { t_obj = Alc r; t_off = Some 0 } ]
        | Some (Ptradd (_, base, off)) -> (
          match go (depth + 1) base with
          | Unknown -> Unknown
          | Known ts ->
            let delta = as_const off in
            Known
              (List.map
                 (fun t ->
                   match (t.t_off, delta) with
                   | Some o, Some d -> { t with t_off = Some (o + d) }
                   | _ -> { t with t_off = None })
                 ts))
        | Some (Select (_, _, _, a, b)) -> (
          match (go (depth + 1) a, go (depth + 1) b) with
          | Known ta, Known tb -> Known (ta @ tb)
          | _ -> Unknown)
        | _ -> Unknown)
      | Imm_int _ | Imm_float _ | Func_addr _ | Undef _ -> Unknown
  in
  ignore shift;
  go 0 o

(* Does the resolution touch the given global? *)
let touches_global res name =
  match res with
  | Unknown -> false
  | Known ts -> List.exists (fun t -> t.t_obj = Glob name) ts
