(* Optimization remarks, the analog of -Rpass=openmp-opt /
   -Rpass-missed=openmp-opt (paper Section VII): passes report what they
   did and, more importantly, what they could not do and why. *)

type kind = Applied | Missed | Analysis

type t = { r_pass : string; r_kind : kind; r_func : string; r_msg : string }

let store : t list ref = ref []
let enabled = ref true

let emit ~pass ~kind ~func fmt =
  Format.kasprintf
    (fun msg ->
      if !enabled then store := { r_pass = pass; r_kind = kind; r_func = func; r_msg = msg } :: !store)
    fmt

let applied ~pass ~func fmt = emit ~pass ~kind:Applied ~func fmt
let missed ~pass ~func fmt = emit ~pass ~kind:Missed ~func fmt

let reset () = store := []
let all () = List.rev !store

let pp ppf r =
  let k = match r.r_kind with Applied -> "applied" | Missed -> "missed" | Analysis -> "analysis" in
  Fmt.pf ppf "[%s:%s] %s: %s" r.r_pass k r.r_func r.r_msg

let dump ppf () = List.iter (fun r -> Fmt.pf ppf "%a@." pp r) (all ())
