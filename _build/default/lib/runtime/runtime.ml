(* Entry point: build a device runtime module for a configuration. *)

let build (cfg : Config.t) : Ozo_ir.Types.modul =
  match cfg.Config.variant with
  | Config.New_rt -> New_rt.build cfg
  | Config.Old_rt -> Old_rt.build cfg
