(* Names and memory layout shared between the runtime builders, the
   frontend lowering, and the co-designed optimization pass. Exposing this
   is the point of the paper: the runtime's state layout is a compiler-
   visible contract, not an opaque blob. *)

(* --- runtime entry points (the "kmpc" ABI) --------------------------- *)

let target_init = "__kmpc_target_init"
let target_deinit = "__kmpc_target_deinit"
let parallel = "__kmpc_parallel"
let distribute_for_loop = "__kmpc_distribute_for_loop"
let for_loop = "__kmpc_for_loop"
let barrier = "__kmpc_barrier"
let alloc_shared = "__kmpc_alloc_shared"
let free_shared = "__kmpc_free_shared"
let push_icv_state = "__kmpc_push_icv_state"
let pop_icv_state = "__kmpc_pop_icv_state"
let worker_loop = "__kmpc_worker_loop"
let omp_assert = "__omp_assert"
let get_thread_num = "omp_get_thread_num"
let get_num_threads = "omp_get_num_threads"
let get_level = "omp_get_level"
let get_team_num = "omp_get_team_num"
let get_num_teams = "omp_get_num_teams"

(* old-runtime specific worksharing (split distribute/for, chunked) *)
let old_distribute_init = "__kmpc_old_distribute_static_init"
let old_for_static_init = "__kmpc_old_for_static_init"
let old_dispatch_next = "__kmpc_old_dispatch_next"

(* --- device state globals -------------------------------------------- *)

let spmd_flag = "__omp_spmd_flag"
let team_icv = "__omp_team_icv"
let thread_states = "__omp_thread_states"
let smem_stack = "__omp_smem_stack"
(* per-thread stack pointers: the stack is partitioned into fixed
   per-thread slices so concurrent allocate/free cannot interleave into
   corruption (a single bump pointer is not a valid concurrent allocator) *)
let smem_stack_sps = "__omp_smem_stack_sps"
let work_fn = "__omp_work_fn"
let work_args = "__omp_work_args"
let work_nt = "__omp_work_nt"
let dummy = "__omp_dummy"

(* old runtime state *)
let old_team_state = "__old_omp_team_state"   (* global memory, per team *)
let old_data_share = "__old_omp_data_share"   (* shared-memory sharing slots *)
let old_data_share_sps = "__old_omp_data_share_sps"
let old_wds = "__old_omp_wds"                 (* worksharing descriptor, shared *)

(* --- compile-time configuration globals ------------------------------ *)
(* Constant-space, [g_const = true]: the runtime "reads" them and the
   compiler folds the loads, exactly the paper's -fopenmp-*oversubscription
   and debug-mode machinery (Sections III-F, III-G). *)

let cfg_debug = "__omp_cfg_debug"
let cfg_assume_teams_oversub = "__omp_cfg_assume_teams_oversub"
let cfg_assume_threads_oversub = "__omp_cfg_assume_threads_oversub"

(* --- ICV state layout -------------------------------------------------- *)

let icv_levels = 0          (* levels-var: nesting depth *)
let icv_nthreads = 8        (* nthreads-var: threads for the next parallel *)
let icv_active_levels = 16
let icv_thread_limit = 24
let icv_run_sched = 32
let icv_size = 40

(* a thread ICV state adds a link to the previous state *)
let ts_prev = icv_size
let ts_size = icv_size + 8

let all_icv_offsets =
  [ icv_levels; icv_nthreads; icv_active_levels; icv_thread_limit; icv_run_sched ]

(* --- generic-mode execution layout ------------------------------------ *)

(* In generic mode the last warp hosts the main thread (its other lanes
   park immediately); workers are the threads below the last warp. *)
let warp_size = 32
