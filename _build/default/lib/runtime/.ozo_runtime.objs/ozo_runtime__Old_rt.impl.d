lib/runtime/old_rt.ml: Config Layout Ozo_ir
