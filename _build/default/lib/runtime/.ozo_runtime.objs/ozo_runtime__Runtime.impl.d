lib/runtime/runtime.ml: Config New_rt Old_rt Ozo_ir
