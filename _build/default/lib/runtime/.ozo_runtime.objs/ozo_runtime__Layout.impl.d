lib/runtime/layout.ml:
