lib/runtime/new_rt.ml: Config Layout List Ozo_ir
