lib/runtime/config.ml:
