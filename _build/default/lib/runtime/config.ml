(* Build-time configuration of the device runtime — the analog of the
   paper's compiler flags. [debug] and the two oversubscription assumptions
   are materialized as constant globals the runtime "reads", so turning
   them on/off changes which code the optimizer can prove dead
   (Sections III-F and III-G). *)

type variant = New_rt | Old_rt

type t = {
  variant : variant;
  debug : bool;
  assume_teams_oversub : bool;   (* -fopenmp-assume-teams-oversubscription *)
  assume_threads_oversub : bool; (* -fopenmp-assume-threads-oversubscription *)
  max_threads : int;             (* thread-state slots per team *)
  stack_bytes : int;             (* shared-memory stack size *)
  max_teams : int;               (* old runtime: global team-state slots *)
}

let default =
  { variant = New_rt; debug = false; assume_teams_oversub = false;
    assume_threads_oversub = false; max_threads = 128; stack_bytes = 9216;
    max_teams = 256 }

let old_rt = { default with variant = Old_rt }

let with_assumptions c = { c with assume_teams_oversub = true; assume_threads_oversub = true }

let with_teams_assumption c = { c with assume_teams_oversub = true }

let with_debug c = { c with debug = true }
