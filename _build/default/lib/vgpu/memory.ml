(* Byte-addressed memory for the virtual GPU.

   Pointers are 63-bit integers carrying the address space in the top tag
   bits: [tag << tag_shift | offset]. Global and constant memories are
   device-wide; shared memory is one instance per team (teams execute
   sequentially, so a single buffer is re-initialized per team); local
   memory is a per-thread stack. *)

open Ozo_ir.Types

let tag_shift = 44
let tag_global = 1
let tag_shared = 2
let tag_local = 3
let tag_const = 4

let tag_of_space = function
  | Global -> tag_global
  | Shared -> tag_shared
  | Local -> tag_local
  | Constant -> tag_const

let encode space offset = (tag_of_space space lsl tag_shift) lor offset

let decode ptr =
  let tag = ptr lsr tag_shift in
  let offset = ptr land ((1 lsl tag_shift) - 1) in
  let space =
    if tag = tag_global then Global
    else if tag = tag_shared then Shared
    else if tag = tag_local then Local
    else if tag = tag_const then Constant
    else ir_error "invalid pointer 0x%x (bad tag %d)" ptr tag
  in
  (space, offset)

let null = 0

type buf = { mutable data : Bytes.t; mutable used : int }

let create_buf initial = { data = Bytes.make initial '\000'; used = 0 }

let ensure buf size =
  if size > Bytes.length buf.data then begin
    let cap = max size (2 * Bytes.length buf.data) in
    let data = Bytes.make cap '\000' in
    Bytes.blit buf.data 0 data 0 (Bytes.length buf.data);
    buf.data <- data
  end

(* Bump allocation; [free] is a no-op (the device heap is released when the
   device is destroyed, like a simple arena allocator). *)
let bump buf size =
  let aligned = (buf.used + 7) land lnot 7 in
  ensure buf (aligned + size);
  buf.used <- aligned + size;
  aligned

type t = {
  global : buf;
  constant : buf;
  shared : buf; (* current team's instance *)
  mutable shared_size : int; (* static shared allocation per team *)
  locals : Bytes.t array; (* per thread in the current team *)
  local_sp : int array;   (* per-thread stack pointer *)
}

let local_stack_bytes = 16 * 1024

let create ~threads_per_team =
  { global = create_buf (1 lsl 16);
    constant = create_buf (1 lsl 12);
    shared = create_buf (1 lsl 12);
    shared_size = 0;
    locals = Array.init threads_per_team (fun _ -> Bytes.make local_stack_bytes '\000');
    local_sp = Array.make threads_per_team 0 }

let buf_of t = function
  | Global -> t.global
  | Constant -> t.constant
  | Shared -> t.shared
  | Local -> ir_error "local memory access requires a thread index"

(* Raw accessors. Local space needs the in-team thread index. *)

let read_bytes t ~thread ptr n =
  let space, off = decode ptr in
  match space with
  | Local -> Bytes.sub t.locals.(thread) off n
  | _ ->
    let b = buf_of t space in
    ensure b (off + n);
    Bytes.sub b.data off n

let write_bytes t ~thread ptr src =
  let space, off = decode ptr in
  let n = Bytes.length src in
  match space with
  | Local -> Bytes.blit src 0 t.locals.(thread) off n
  | Constant -> ir_error "store to constant memory at 0x%x" ptr
  | _ ->
    let b = buf_of t space in
    ensure b (off + n);
    Bytes.blit src 0 b.data off n

let load_int t ~thread ptr = function
  | I1 -> Char.code (Bytes.get (read_bytes t ~thread ptr 1) 0) land 1
  | I32 -> Int32.to_int (Bytes.get_int32_le (read_bytes t ~thread ptr 4) 0)
  | I64 | Ptr _ -> Int64.to_int (Bytes.get_int64_le (read_bytes t ~thread ptr 8) 0)
  | F64 -> ir_error "integer load of f64"

let store_int t ~thread ptr typ v =
  let b =
    match typ with
    | I1 -> Bytes.make 1 (Char.chr (v land 1))
    | I32 ->
      let b = Bytes.create 4 in
      Bytes.set_int32_le b 0 (Int32.of_int v);
      b
    | I64 | Ptr _ ->
      let b = Bytes.create 8 in
      Bytes.set_int64_le b 0 (Int64.of_int v);
      b
    | F64 -> ir_error "integer store of f64"
  in
  write_bytes t ~thread ptr b

let load_float t ~thread ptr =
  Int64.float_of_bits (Bytes.get_int64_le (read_bytes t ~thread ptr 8) 0)

let store_float t ~thread ptr v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.bits_of_float v);
  write_bytes t ~thread ptr b

(* Initialize a global variable's storage at [offset] in its space. *)
let init_global t g offset =
  let write_words buf ws =
    ensure buf (offset + g.g_size);
    List.iteri
      (fun i w ->
        if (i * 8) + 8 <= g.g_size then Bytes.set_int64_le buf.data (offset + (i * 8)) w)
      ws
  in
  match g.g_space with
  | Local -> ir_error "global %s in local address space" g.g_name
  | space -> (
    let buf = buf_of t space in
    ensure buf (offset + g.g_size);
    match g.g_init with
    | No_init -> ()
    | Zero_init -> Bytes.fill buf.data offset g.g_size '\000'
    | Words_init ws -> write_words buf ws)

(* Reset per-team state before a team starts executing. *)
let reset_team t ~shared_globals =
  Bytes.fill t.shared.data 0 (Bytes.length t.shared.data) '\000';
  List.iter (fun (g, off) -> init_global t g off) shared_globals;
  Array.fill t.local_sp 0 (Array.length t.local_sp) 0

let alloca t ~thread size =
  let sp = t.local_sp.(thread) in
  let aligned = (sp + 7) land lnot 7 in
  if aligned + size > local_stack_bytes then ir_error "thread-local stack overflow";
  t.local_sp.(thread) <- aligned + size;
  encode Local aligned

let local_sp t ~thread = t.local_sp.(thread)
let set_local_sp t ~thread sp = t.local_sp.(thread) <- sp

let malloc t size = encode Global (bump t.global size)
let alloc_const t size = encode Constant (bump t.constant size)
let alloc_global t size = encode Global (bump t.global size)
