(* Execution statistics collected by the SIMT engine, the reproduction's
   stand-in for Nsight Compute counters. *)

type t = {
  mutable warp_instructions : int;  (* instruction issues (per strand) *)
  mutable lane_instructions : int;  (* instruction executions (per active lane) *)
  mutable barriers : int;
  mutable aligned_barriers : int;
  mutable global_transactions : int;
  mutable shared_accesses : int;
  mutable atomics : int;
  mutable mallocs : int;
  mutable calls : int;
  mutable divergent_branches : int;
  mutable cycles : int;             (* accumulated cost-model cycles *)
  mutable traps : int;
}

let create () =
  { warp_instructions = 0; lane_instructions = 0; barriers = 0; aligned_barriers = 0;
    global_transactions = 0; shared_accesses = 0; atomics = 0; mallocs = 0; calls = 0;
    divergent_branches = 0; cycles = 0; traps = 0 }

let add a b =
  { warp_instructions = a.warp_instructions + b.warp_instructions;
    lane_instructions = a.lane_instructions + b.lane_instructions;
    barriers = a.barriers + b.barriers;
    aligned_barriers = a.aligned_barriers + b.aligned_barriers;
    global_transactions = a.global_transactions + b.global_transactions;
    shared_accesses = a.shared_accesses + b.shared_accesses;
    atomics = a.atomics + b.atomics;
    mallocs = a.mallocs + b.mallocs;
    calls = a.calls + b.calls;
    divergent_branches = a.divergent_branches + b.divergent_branches;
    cycles = a.cycles + b.cycles;
    traps = a.traps + b.traps }

(* cycles attributable to the memory system under the cost model [p];
   the latency-hiding part of the makespan estimate *)
let memory_cycles (p : Cost.params) c =
  (c.global_transactions * p.Cost.c_global_segment)
  + (c.shared_accesses * p.Cost.c_shared_access)
  + (c.atomics * p.Cost.c_atomic_global)
  + (c.mallocs * p.Cost.c_malloc)

let pp ppf c =
  Fmt.pf ppf
    "@[<v>warp insts   %d@,lane insts   %d@,barriers     %d (aligned %d)@,\
     global txns  %d@,shared accs  %d@,atomics      %d@,mallocs      %d@,\
     calls        %d@,div branches %d@,cycles       %d@]"
    c.warp_instructions c.lane_instructions c.barriers c.aligned_barriers
    c.global_transactions c.shared_accesses c.atomics c.mallocs c.calls
    c.divergent_branches c.cycles
