lib/vgpu/memory.ml: Array Bytes Char Int32 Int64 List Ozo_ir
