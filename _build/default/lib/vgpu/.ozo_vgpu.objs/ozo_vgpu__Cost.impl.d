lib/vgpu/cost.ml: Float List
