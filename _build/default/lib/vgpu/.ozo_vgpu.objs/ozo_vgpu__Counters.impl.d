lib/vgpu/counters.ml: Cost Fmt
