lib/vgpu/device.ml: Array Cost Counters Engine Fmt Hashtbl List Memory Ozo_ir Result
