lib/vgpu/engine.ml: Array Cost Counters Float Fmt Format Hashtbl Int64 List Memory Ozo_ir Printf
