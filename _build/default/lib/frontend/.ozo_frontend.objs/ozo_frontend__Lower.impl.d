lib/frontend/lower.ml: Ast Format List Map Ozo_ir Ozo_runtime Printf SSet String
