lib/frontend/ast.ml: List Set String
