(* Lowering from the kernel AST to IR.

   Three ABIs:
   - [Omp New_abi]  — codegen against the new runtime: combined CUDA-style
     work-sharing calls, conservative globalization via __kmpc_alloc_shared,
     TRegion-style *generic* kernels by default (SPMD-ization is left to
     the optimizer, which flips the __kmpc_target_init mode constant).
   - [Omp Old_abi]  — codegen against the old runtime: split distribute /
     for_static_init work-sharing through stack out-parameters, defensive
     barriers after work-sharing loops.
   - [Cuda]         — direct grid-stride lowering with no runtime at all;
     the baseline the paper compares against.

   Clang-like conservatism: every mutable local and every outlined-region
   argument pack is allocated with __kmpc_alloc_shared ("globalization",
   Section IV-A2); proving them thread-private and demoting them to
   private stack memory is the optimizer's job, not the frontend's. *)

open Ast
open Ozo_ir.Types
module B = Ozo_ir.Builder
module L = Ozo_runtime.Layout
module SMap = Map.Make (String)

type omp_abi = New_abi | Old_abi

type abi = Omp of omp_abi | Cuda

exception Lower_error of string

let err fmt = Format.kasprintf (fun s -> raise (Lower_error s)) fmt

type binding =
  | Val of operand * ety          (* immutable value *)
  | Mut of operand * ety          (* pointer to a mutable scalar *)
  | Arr of operand * mty          (* pointer to a local array *)

type ctx = {
  b : B.t;
  abi : abi;
  spmd_at_frontend : bool;
  kname : string;
  mutable counter : int;
  (* outlined functions pending construction (built after the current
     function is finished, since the builder is single-function) *)
  mutable pending : (unit -> unit) list;
  (* shared allocations of the current function, to release at its end *)
  mutable shared_allocs : (operand * int) list;
}

let fresh_name ctx hint =
  ctx.counter <- ctx.counter + 1;
  Printf.sprintf "%s__%s%d" ctx.kname hint ctx.counter

let typ_of_ety = function TInt -> I64 | TFloat -> F64

let ir_mty = function MF64 -> F64 | MI64 -> I64 | MI32 -> I32

(* ------------------------------------------------------------------ *)
(* Expression typing                                                   *)
(* ------------------------------------------------------------------ *)

let rec typeof env = function
  | Int _ -> TInt
  | Float _ -> TFloat
  | P n -> (
    match SMap.find_opt n env with
    | Some (Val (_, t)) | Some (Mut (_, t)) -> t
    | Some (Arr _) -> TInt (* array name denotes its base pointer *)
    | None -> err "unbound variable %s" n)
  | Add (a, _) | Sub (a, _) | Mul (a, _) | Div (a, _) | Min (a, _) | Max (a, _)
  | Neg a -> typeof env a
  | Rem _ | Band _ | Bxor _ | Shl _ | Shr _ -> TInt
  | Sqrt _ | Expf _ | Logf _ | Sinf _ | Cosf _ | Fabs _ | ToFloat _ -> TFloat
  | ToInt _ -> TInt
  | Cmp _ | And _ | Or _ | Not _ -> TInt
  | Select (_, a, _) -> typeof env a
  | Ld (_, _, m) -> ety_of_mty m
  | OmpThreadNum | OmpNumThreads | OmpLevel | OmpTeamNum | OmpNumTeams -> TInt

(* ------------------------------------------------------------------ *)
(* Expression lowering                                                 *)
(* ------------------------------------------------------------------ *)

(* current thread-number value inside a parallel region, if statically
   available (the outlined function's tid parameter) *)
type tctx = { tid : operand option }

let rec lower_expr ctx env tctx (e : expr) : operand =
  let b = ctx.b in
  let recur e = lower_expr ctx env tctx e in
  let arith fi ff a b' =
    let t = typeof env a in
    let x = recur a and y = recur b' in
    B.binop b (if t = TInt then fi else ff) x y
  in
  match e with
  | Int n -> B.i64 n
  | Float x -> B.f64 x
  | P n -> (
    match SMap.find_opt n env with
    | Some (Val (o, _)) -> o
    | Some (Mut (p, t)) -> B.load b (typ_of_ety t) p
    | Some (Arr (p, _)) -> p
    | None -> err "unbound variable %s" n)
  | Add (a, c) -> arith Ozo_ir.Types.Add Fadd a c
  | Sub (a, c) -> arith Ozo_ir.Types.Sub Fsub a c
  | Mul (a, c) -> arith Ozo_ir.Types.Mul Fmul a c
  | Div (a, c) -> arith Sdiv Fdiv a c
  | Min (a, c) -> arith Smin Fmin a c
  | Max (a, c) -> arith Smax Fmax a c
  | Rem (a, c) -> B.srem b (recur a) (recur c)
  | Band (a, c) -> B.and_ b (recur a) (recur c)
  | Bxor (a, c) -> B.xor b (recur a) (recur c)
  | Shl (a, c) -> B.shl b (recur a) (recur c)
  | Shr (a, c) -> B.binop b Ashr (recur a) (recur c)
  | Neg a ->
    if typeof env a = TInt then B.sub b (B.i64 0) (recur a)
    else B.unop b Fneg (recur a)
  | Sqrt a -> B.unop b Fsqrt (recur a)
  | Expf a -> B.unop b Fexp (recur a)
  | Logf a -> B.unop b Flog (recur a)
  | Sinf a -> B.unop b Fsin (recur a)
  | Cosf a -> B.unop b Fcos (recur a)
  | Fabs a -> B.unop b Fabs (recur a)
  | ToFloat a -> B.unop b Sitofp (recur a)
  | ToInt a -> B.unop b Fptosi (recur a)
  | Cmp (op, a, c) ->
    let t = typeof env a in
    if t = TInt then
      let iop =
        match op with CEq -> Eq | CNe -> Ne | CLt -> Slt | CLe -> Sle | CGt -> Sgt
        | CGe -> Sge
      in
      B.icmp b iop (recur a) (recur c)
    else
      let fop =
        match op with CEq -> Feq | CNe -> Fne | CLt -> Flt | CLe -> Fle | CGt -> Fgt
        | CGe -> Fge
      in
      B.fcmp b fop (recur a) (recur c)
  | And (a, c) -> B.and_ b (recur a) (recur c)
  | Or (a, c) -> B.or_ b (recur a) (recur c)
  | Not a -> B.xor b (recur a) (B.i64 1)
  | Select (c, x, y) ->
    let t = typeof env x in
    B.select b (typ_of_ety t) (recur c) (recur x) (recur y)
  | Ld (base, idx, m) ->
    let addr = elem_addr ctx env tctx base idx m in
    B.load b (ir_mty m) addr
  | OmpThreadNum -> (
    match tctx.tid with
    | Some o -> o
    | None -> (
      match ctx.abi with
      | Cuda -> B.thread_id b
      | Omp _ -> B.call_val b L.get_thread_num []))
  | OmpNumThreads -> (
    match ctx.abi with
    | Cuda -> B.block_dim b
    | Omp _ -> B.call_val b L.get_num_threads [])
  | OmpLevel -> (
    match ctx.abi with Cuda -> B.i64 0 | Omp _ -> B.call_val b L.get_level [])
  | OmpTeamNum -> (
    match ctx.abi with
    | Cuda -> B.block_id b
    | Omp _ -> B.call_val b L.get_team_num [])
  | OmpNumTeams -> (
    match ctx.abi with
    | Cuda -> B.grid_dim b
    | Omp _ -> B.call_val b L.get_num_teams [])

and elem_addr ctx env tctx base idx m =
  let b = ctx.b in
  let bp = lower_expr ctx env tctx base in
  let off = B.mul b (lower_expr ctx env tctx idx) (B.i64 (size_of_mty m)) in
  B.ptradd b bp off

(* ------------------------------------------------------------------ *)
(* Local variable storage                                              *)
(* ------------------------------------------------------------------ *)

(* Names referenced from regions that will be outlined into separate
   functions within [stmts] (and may therefore execute on *other*
   threads): Parallel bodies always, Ws_for bodies in the new ABI (the
   old ABI and CUDA keep work-shared bodies inline). Nested regions of an
   outlined body belong to that body's own function and are not
   collected here. *)
let outlined_captures ~abi (stmts : stmt list) : SSet.t =
  let acc = ref SSet.empty in
  let rec go s =
    match s with
    | Parallel (_, body) -> acc := SSet.union !acc (free_vars body)
    | Ws_for (_, _, body) -> (
      match abi with
      | Omp New_abi -> acc := SSet.union !acc (free_vars body)
      | Omp Old_abi | Cuda -> List.iter go body)
    | If (_, t, f) ->
      List.iter go t;
      List.iter go f
    | For (_, _, _, body) | While (_, body) | Nested_parallel body -> List.iter go body
    | Let _ | Local _ | LocalArr _ | Set _ | Store _ | AtomicAdd _ | Assert _
    | Trace _ -> ()
  in
  List.iter go stmts;
  !acc

(* Allocate storage for every Local/LocalArr of a function body at the
   function entry. Locals that may be accessed by other threads — they
   are captured by reference into an outlined region — are *globalized*
   through __kmpc_alloc_shared (Section IV-A2); everything else lives on
   the private stack. CUDA has no cross-thread locals and always uses the
   stack. *)
let allocate_locals ctx (body : stmt list) : (operand * binding) SMap.t =
  let b = ctx.b in
  let decls = local_decls body in
  let escaping =
    match ctx.abi with Cuda -> SSet.empty | Omp _ -> outlined_captures ~abi:ctx.abi body
  in
  List.fold_left
    (fun acc (name, kind) ->
      if SMap.mem name acc then err "duplicate local %s in one function scope" name;
      let size =
        match kind with
        | `Scalar _ -> 8
        | `Arr (m, n) -> size_of_mty m * n
      in
      let ptr =
        if SSet.mem name escaping then begin
          let p = B.call_val b L.alloc_shared [ B.i64 size ] in
          ctx.shared_allocs <- (p, size) :: ctx.shared_allocs;
          p
        end
        else B.alloca b size
      in
      let binding =
        match kind with
        | `Scalar t -> Mut (ptr, t)
        | `Arr (m, _) -> Arr (ptr, m)
      in
      SMap.add name (ptr, binding) acc)
    SMap.empty decls

let release_locals ctx =
  (match ctx.abi with
  | Cuda -> ()
  | Omp _ ->
    List.iter
      (fun (p, size) -> B.call_void ctx.b L.free_shared [ p; B.i64 size ])
      ctx.shared_allocs);
  ctx.shared_allocs <- []

(* ------------------------------------------------------------------ *)
(* Capture packs for outlined regions                                  *)
(* ------------------------------------------------------------------ *)

type capture = { c_name : string; c_slot : int; c_binding : binding }

(* Build the capture list for a region body given the current env.
   [exclude] removes region-bound names (the loop variable); [extra] adds
   synthetic captures such as the trip count. *)
let captures_of env ?(extra = []) ?(exclude = []) (body : stmt list) : capture list =
  let names =
    SSet.elements (free_vars body) @ extra
    |> List.filter (fun n -> not (List.mem n exclude))
  in
  let names = List.sort_uniq compare names in
  List.mapi
    (fun i n ->
      match SMap.find_opt n env with
      | Some bind -> { c_name = n; c_slot = i; c_binding = bind }
      | None -> err "captured variable %s is unbound" n)
    names

(* Store captured values into an argument pack. *)
let store_captures ctx env tctx (pack : operand) (caps : capture list) =
  let b = ctx.b in
  List.iter
    (fun c ->
      let addr = B.ptradd b pack (B.i64 (c.c_slot * 8)) in
      match c.c_binding with
      | Val (o, TInt) -> B.store b I64 o addr
      | Val (o, TFloat) -> B.store b F64 o addr
      | Mut (p, _) | Arr (p, _) -> B.store b I64 p addr)
    caps;
  ignore env;
  ignore tctx

(* Rebind captured values inside an outlined function from its pack. *)
let load_captures ctx (pack : operand) (caps : capture list) : binding SMap.t =
  let b = ctx.b in
  List.fold_left
    (fun acc c ->
      let addr = B.ptradd b pack (B.i64 (c.c_slot * 8)) in
      let bind =
        match c.c_binding with
        | Val (_, TInt) -> Val (B.load b I64 addr, TInt)
        | Val (_, TFloat) -> Val (B.load b F64 addr, TFloat)
        | Mut (_, t) -> Mut (B.load b I64 addr, t)
        | Arr (_, m) -> Arr (B.load b I64 addr, m)
      in
      SMap.add c.c_name bind acc)
    SMap.empty caps

(* ------------------------------------------------------------------ *)
(* Statement lowering                                                  *)
(* ------------------------------------------------------------------ *)

let rec lower_stmts ctx env tctx (stmts : stmt list) : binding SMap.t =
  List.fold_left (fun env s -> lower_stmt ctx env tctx s) env stmts

and lower_stmt ctx env tctx (s : stmt) : binding SMap.t =
  let b = ctx.b in
  let expr e = lower_expr ctx env tctx e in
  match s with
  | Let (n, e) ->
    let t = typeof env e in
    SMap.add n (Val (expr e, t)) env
  | Local (n, _t, init) ->
    (* storage was hoisted to the function entry; [env] already holds the
       binding under a reserved key *)
    let bind =
      match SMap.find_opt ("__storage." ^ n) env with
      | Some bind -> bind
      | None -> err "missing hoisted storage for local %s" n
    in
    let env = SMap.add n bind env in
    (match (init, bind) with
    | Some e, Mut (p, et) ->
      B.store b (typ_of_ety et) (lower_expr ctx env tctx e) p
    | Some _, _ -> err "initializer on array local %s" n
    | None, _ -> ());
    env
  | LocalArr (n, _, _) ->
    let bind =
      match SMap.find_opt ("__storage." ^ n) env with
      | Some bind -> bind
      | None -> err "missing hoisted storage for local array %s" n
    in
    SMap.add n bind env
  | Set (n, e) ->
    (match SMap.find_opt n env with
    | Some (Mut (p, t)) -> B.store b (typ_of_ety t) (expr e) p
    | Some _ -> err "%s is not a mutable local" n
    | None -> err "unbound variable %s" n);
    env
  | Store (base, idx, m, v) ->
    let addr = elem_addr ctx env tctx base idx m in
    B.store b (ir_mty m) (expr v) addr;
    env
  | AtomicAdd (base, idx, m, v) ->
    let addr = elem_addr ctx env tctx base idx m in
    let value = expr v in
    B.atomic_add b (ir_mty m) addr value;
    env
  | If (c, t, f) ->
    let cv = expr c in
    B.if_then_else b cv
      ~then_:(fun () -> ignore (lower_stmts ctx env tctx t))
      ~else_:(fun () -> ignore (lower_stmts ctx env tctx f));
    env
  | For (v, lo, hi, body) ->
    let lov = expr lo and hiv = expr hi in
    ignore
      (B.for_loop b ~lo:lov ~hi:hiv ~step:(B.i64 1) ~body:(fun iv ->
           ignore (lower_stmts ctx (SMap.add v (Val (iv, TInt)) env) tctx body)));
    env
  | While (c, body) ->
    let lh = B.fresh_label b "while.head" in
    let lb = B.fresh_label b "while.body" in
    let lx = B.fresh_label b "while.exit" in
    B.br b lh;
    B.set_block b lh;
    let cv = expr c in
    B.cond_br b cv lb lx;
    B.set_block b lb;
    ignore (lower_stmts ctx env tctx body);
    if not (B.is_terminated b) then B.br b lh;
    B.set_block b lx;
    env
  | Assert e -> (
    match ctx.abi with
    | Cuda ->
      let c = expr e in
      let bad = B.icmp b Eq c (B.i64 0) in
      B.if_then b bad ~then_:(fun () -> B.trap b "assertion failed");
      env
    | Omp _ ->
      B.call_void b L.omp_assert [ expr e ];
      env)
  | Trace (msg, es) ->
    B.debug_print b msg (List.map expr es);
    env
  | Ws_for (var, n, body) -> lower_ws_for ctx env tctx ~var ~n ~body
  | Parallel (nt, body) -> lower_parallel ctx env tctx ~nt ~body
  | Nested_parallel body -> (
    match ctx.abi with
    | Cuda -> err "nested parallel is not expressible in the CUDA lowering"
    | Omp _ ->
      (* serialized nested region: materialize a thread ICV state (this is
         what defeats the zero-thread-state optimization, Fig. 4) and
         advance its nesting level *)
      let ts = B.call_val b L.push_icv_state [] in
      let lvl_addr = B.ptradd b ts (B.i64 L.icv_levels) in
      let lvl = B.load b I64 lvl_addr in
      B.store b I64 (B.add b lvl (B.i64 1)) lvl_addr;
      ignore (lower_stmts ctx env { tid = Some (B.i64 0) } body);
      B.call_void b L.pop_icv_state [];
      env)

(* Work-shared loop inside a parallel region. *)
and lower_ws_for ctx env tctx ~var ~n ~body : binding SMap.t =
  let b = ctx.b in
  match ctx.abi with
  | Cuda ->
    (* thread-strided loop; the inline body needs its own local storage *)
    let storage = allocate_locals ctx body in
    let env =
      SMap.fold (fun n (_, bind) acc -> SMap.add ("__storage." ^ n) bind acc) storage env
    in
    let nv = lower_expr ctx env tctx n in
    let tid = match tctx.tid with Some t -> t | None -> B.thread_id b in
    let bdim = B.block_dim b in
    ignore
      (B.for_loop b ~lo:tid ~hi:nv ~step:bdim ~body:(fun iv ->
           ignore (lower_stmts ctx (SMap.add var (Val (iv, TInt)) env) tctx body)));
    env
  | Omp Old_abi ->
    (* split static-init work-sharing with stack out-parameters and a
       defensive trailing barrier, old-Clang style; body is inline *)
    let storage = allocate_locals ctx body in
    let env =
      SMap.fold (fun n (_, bind) acc -> SMap.add ("__storage." ^ n) bind acc) storage env
    in
    let nv = lower_expr ctx env tctx n in
    let a_lb = B.alloca b 8 and a_ub = B.alloca b 8 and a_st = B.alloca b 8 in
    B.call_void b L.old_for_static_init [ a_lb; a_ub; a_st; B.i64 0; nv ];
    let lb = B.load b I64 a_lb and ub = B.load b I64 a_ub in
    ignore
      (B.for_loop b ~lo:lb ~hi:ub ~step:(B.i64 1) ~body:(fun iv ->
           ignore (lower_stmts ctx (SMap.add var (Val (iv, TInt)) env) tctx body)));
    B.call_void b L.barrier [];
    env
  | Omp New_abi ->
    (* combined CUDA-style runtime loop over an outlined body *)
    let caps = captures_of env ~exclude:[ var ] body in
    let fn_name = fresh_name ctx "ws_body" in
    let pack = B.call_val b L.alloc_shared [ B.i64 (max 8 (List.length caps * 8)) ] in
    store_captures ctx env tctx pack caps;
    let nv = lower_expr ctx env tctx n in
    B.call_void b L.for_loop [ Func_addr fn_name; pack; nv ];
    B.call_void b L.free_shared [ pack; B.i64 (max 8 (List.length caps * 8)) ];
    queue_outline ctx ~name:fn_name ~param_var:var ~caps ~body ~tid_param:false;
    env

(* Fork a parallel region. *)
and lower_parallel ctx env tctx ~nt ~body : binding SMap.t =
  let b = ctx.b in
  match ctx.abi with
  | Cuda -> err "parallel is not expressible in the CUDA lowering"
  | Omp _ ->
    let caps = captures_of env body in
    let fn_name = fresh_name ctx "par" in
    let size = max 8 (List.length caps * 8) in
    let pack = B.call_val b L.alloc_shared [ B.i64 size ] in
    store_captures ctx env tctx pack caps;
    let ntv = match nt with Some k -> B.i64 k | None -> B.i64 (-1) in
    B.call_void b L.parallel [ Func_addr fn_name; pack; ntv ];
    B.call_void b L.free_shared [ pack; B.i64 size ];
    queue_outline ctx ~name:fn_name ~param_var:"" ~caps ~body ~tid_param:true;
    env

(* Queue construction of an outlined function (iv/tid, args) -> void. *)
and queue_outline ctx ~name ~param_var ~caps ~body ~tid_param =
  let build () =
    let b = ctx.b in
    match B.begin_func b ~name ~params:[ I64; I64 ] ~ret:None () with
    | [ p0; pack ] ->
      B.set_block b "entry";
      let saved_allocs = ctx.shared_allocs in
      ctx.shared_allocs <- [];
      let env0 = load_captures ctx pack caps in
      (* hoisted storage for this function's locals *)
      let storage = allocate_locals ctx body in
      let env0 =
        SMap.fold
          (fun n (_, bind) acc -> SMap.add ("__storage." ^ n) bind acc)
          storage env0
      in
      let env0, tctx =
        if tid_param then (env0, { tid = Some p0 })
        else (SMap.add param_var (Val (p0, TInt)) env0, { tid = None })
      in
      ignore (lower_stmts ctx env0 tctx body);
      release_locals ctx;
      ctx.shared_allocs <- saved_allocs;
      B.ret b None;
      ignore (B.end_func b)
    | _ -> assert false
  in
  ctx.pending <- ctx.pending @ [ build ]

(* ------------------------------------------------------------------ *)
(* Kernel-level lowering                                               *)
(* ------------------------------------------------------------------ *)

(* Lower a function-level body: hoist local storage, lower statements. *)
let lower_function_body ctx env tctx body =
  let storage = allocate_locals ctx body in
  let env =
    SMap.fold (fun n (_, bind) acc -> SMap.add ("__storage." ^ n) bind acc) storage env
  in
  ignore (lower_stmts ctx env tctx body);
  release_locals ctx

(* CUDA lowering of the combined construct, in the style the CUDA versions
   of the proxy apps are written: one thread per element with a bounds
   guard (`i = blockIdx*blockDim + threadIdx; if (i < n) ...`). Launches
   must cover the iteration space, which is also the precondition of the
   OpenMP oversubscription flags — keeping the comparison fair. *)
let cuda_one_per_thread ctx env tctx ~var ~count ~body =
  let b = ctx.b in
  (* hoist the loop body's locals to the kernel entry *)
  let storage = allocate_locals ctx body in
  let env =
    SMap.fold (fun n (_, bind) acc -> SMap.add ("__storage." ^ n) bind acc) storage env
  in
  let nv = lower_expr ctx env tctx count in
  let tid = B.thread_id b in
  let bdim = B.block_dim b in
  let bid = B.block_id b in
  let iv = B.add b (B.mul b bid bdim) tid in
  let inb = B.icmp b Slt iv nv in
  B.if_then b inb ~then_:(fun () ->
      ignore (lower_stmts ctx (SMap.add var (Val (iv, TInt)) env) tctx body))

(* The OpenMP combined construct, TRegion style: a generic-mode kernel
   whose main thread immediately forks the distributed loop. The optimizer
   is expected to SPMD-ize it (Section IV-A3). *)
let omp_combined ctx env tctx ~var ~count ~body ~mode =
  let b = ctx.b in
  let abi = match ctx.abi with Omp a -> a | Cuda -> assert false in
  let is_spmd = if mode = `Spmd then 1 else 0 in
  let r = B.call_val b L.target_init [ B.i64 is_spmd ] in
  let proceed = B.icmp b Eq r (B.i64 1) in
  B.if_then b proceed ~then_:(fun () ->
      let env = SMap.add "__omp.trip_count" (Val (lower_expr ctx env tctx count, TInt)) env in
      let wrapper = fresh_name ctx "par_ws" in
      let caps = captures_of env ~extra:[ "__omp.trip_count" ] ~exclude:[ var ] body in
      let size = max 8 (List.length caps * 8) in
      let pack = B.call_val b L.alloc_shared [ B.i64 size ] in
      store_captures ctx env tctx pack caps;
      B.call_void b L.parallel [ Func_addr wrapper; pack; B.i64 (-1) ];
      B.call_void b L.free_shared [ pack; B.i64 size ];
      (* outlined parallel wrapper: runs the distributed loop *)
      let build_wrapper () =
        match B.begin_func b ~name:wrapper ~params:[ I64; I64 ] ~ret:None () with
        | [ _tid; pack ] ->
          B.set_block b "entry";
          let saved = ctx.shared_allocs in
          ctx.shared_allocs <- [];
          let env0 = load_captures ctx pack caps in
          let nv =
            match SMap.find_opt "__omp.trip_count" env0 with
            | Some (Val (o, _)) -> o
            | _ -> assert false
          in
          (match abi with
          | New_abi ->
            (* combined CUDA-style loop over a second outline *)
            let body_fn = fresh_name ctx "ws_body" in
            B.call_void b L.distribute_for_loop [ Func_addr body_fn; pack; nv ];
            queue_outline ctx ~name:body_fn ~param_var:var ~caps ~body ~tid_param:false
          | Old_abi ->
            (* split distribute + for_static_init through out-params *)
            let storage = allocate_locals ctx body in
            let env0 =
              SMap.fold
                (fun n (_, bind) acc -> SMap.add ("__storage." ^ n) bind acc)
                storage env0
            in
            let a_lb = B.alloca b 8 and a_ub = B.alloca b 8 and a_st = B.alloca b 8 in
            B.call_void b L.old_distribute_init [ a_lb; a_ub; nv ];
            let tlb = B.load b I64 a_lb and tub = B.load b I64 a_ub in
            B.call_void b L.old_for_static_init [ a_lb; a_ub; a_st; tlb; tub ];
            let lb = B.load b I64 a_lb and ub = B.load b I64 a_ub in
            ignore
              (B.for_loop b ~lo:lb ~hi:ub ~step:(B.i64 1) ~body:(fun iv ->
                   ignore
                     (lower_stmts ctx
                        (SMap.add var (Val (iv, TInt)) env0)
                        { tid = None } body)));
            B.call_void b L.barrier [];
            release_locals ctx);
          ctx.shared_allocs <- saved;
          B.ret b None;
          ignore (B.end_func b)
        | _ -> assert false
      in
      ctx.pending <- ctx.pending @ [ build_wrapper ];
      B.call_void b L.target_deinit [ B.i64 is_spmd ])

let lower_kernel ctx (k : kernel) =
  let b = ctx.b in
  let param_types = List.map (fun (_, t) -> typ_of_ety t) k.k_params in
  let param_ops =
    B.begin_func b ~name:k.k_name ~linkage:External ~kernel:true ~params:param_types
      ~ret:None ()
  in
  B.set_block b "entry";
  let env =
    List.fold_left2
      (fun acc (n, t) o -> SMap.add n (Val (o, t)) acc)
      SMap.empty k.k_params param_ops
  in
  let tctx = { tid = None } in
  (match (k.k_construct, ctx.abi) with
  | Distribute_parallel_for (var, count, body), Cuda ->
    cuda_one_per_thread ctx env tctx ~var ~count ~body
  | Distribute_parallel_for (var, count, body), Omp _ ->
    let mode = if ctx.spmd_at_frontend then `Spmd else `Generic in
    omp_combined ctx env tctx ~var ~count ~body ~mode
  | Spmd body, Cuda -> lower_function_body ctx env tctx body
  | Spmd body, Omp _ ->
    let r = B.call_val b L.target_init [ B.i64 1 ] in
    let proceed = B.icmp b Eq r (B.i64 1) in
    B.if_then b proceed ~then_:(fun () ->
        lower_function_body ctx env tctx body;
        B.call_void b L.target_deinit [ B.i64 1 ])
  | Generic _, Cuda -> err "generic target regions have no direct CUDA lowering"
  | Generic body, Omp _ ->
    let r = B.call_val b L.target_init [ B.i64 0 ] in
    let proceed = B.icmp b Eq r (B.i64 1) in
    B.if_then b proceed ~then_:(fun () ->
        lower_function_body ctx env tctx body;
        B.call_void b L.target_deinit [ B.i64 0 ]));
  if not (B.is_terminated b) then B.ret b None;
  ignore (B.end_func b);
  (* drain outlined-function queue (outlines can enqueue more) *)
  let rec drain () =
    match ctx.pending with
    | [] -> ()
    | f :: rest ->
      ctx.pending <- rest;
      f ();
      drain ()
  in
  drain ()

(* Lower a kernel to a standalone application module (link it with a
   runtime module before execution, except for CUDA). *)
let lower ?(spmd_at_frontend = false) ~(abi : abi) (k : kernel) : modul =
  let b = B.create (k.k_name ^ "_app") in
  let ctx =
    { b; abi; spmd_at_frontend; kname = k.k_name; counter = 0; pending = [];
      shared_allocs = [] }
  in
  lower_kernel ctx k;
  B.finish b
